package exec_test

import (
	"context"
	"reflect"
	"testing"

	"r2c/internal/defense"
	"r2c/internal/exec"
)

func TestBuildImagesDeterministicAcrossWidths(t *testing.T) {
	m := testModule(t)
	cfg := defense.R2CFull()
	seeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8}

	serial := exec.New(1, nil)
	parallel := exec.New(8, nil)
	a, err := serial.BuildImages(context.Background(), m, cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}
	b, err := parallel.BuildImages(context.Background(), m, cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seeds {
		la, lb := a[i].LayoutSummary(), b[i].LayoutSummary()
		if !reflect.DeepEqual(la, lb) {
			t.Fatalf("variant %d: layout differs between -jobs 1 and -jobs 8", i)
		}
	}
}

func TestBuildImagesSharesCache(t *testing.T) {
	m := testModule(t)
	cfg := defense.R2CFull()
	e := exec.New(4, nil)
	imgs, err := e.BuildImages(context.Background(), m, cfg, []uint64{9, 9, 10})
	if err != nil {
		t.Fatal(err)
	}
	if imgs[0] != imgs[1] {
		t.Error("identical seeds did not share one cached image")
	}
	if imgs[0] == imgs[2] {
		t.Error("distinct seeds shared an image")
	}
	hits, misses, _ := e.Cache.Stats()
	if hits != 1 || misses != 2 {
		t.Errorf("cache stats = %d hits / %d misses, want 1/2", hits, misses)
	}
}

func TestBuildImagesCancelledContext(t *testing.T) {
	m := testModule(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := exec.New(1, nil)
	imgs, err := e.BuildImages(ctx, m, defense.Off(), []uint64{1, 2})
	be, ok := exec.AsBatchError(err)
	if !ok {
		t.Fatalf("err = %v, want *BatchError", err)
	}
	if len(be.Failures) != 2 {
		t.Fatalf("failures = %d, want 2", len(be.Failures))
	}
	for i, img := range imgs {
		if img != nil {
			t.Errorf("variant %d built despite cancelled context", i)
		}
	}
}
