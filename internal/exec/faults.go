package exec

import (
	"fmt"
	"strconv"
	"strings"
)

// FaultKind enumerates the failures the injection hook can force on a cell.
type FaultKind int

const (
	// FaultNone means no injected fault.
	FaultNone FaultKind = iota
	// FaultBuildFail fails the cell before its build, as a compile error would.
	FaultBuildFail
	// FaultExecFail fails the cell after load, as a sim fault would.
	FaultExecFail
	// FaultPanic panics on the worker goroutine, exercising the pool's
	// recover barrier.
	FaultPanic
	// FaultStall blocks the cell until its watchdog context fires,
	// exercising the wall-clock deadline.
	FaultStall
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultBuildFail:
		return "build-fail"
	case FaultExecFail:
		return "exec-fail"
	case FaultPanic:
		return "panic"
	case FaultStall:
		return "stall"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// anyAttempt is the wildcard attempt number in a FaultPlan entry: the fault
// fires on every attempt, so even retries keep failing.
const anyAttempt = -1

type faultAt struct {
	cell    int
	attempt int
}

// FaultPlan is the deterministic fault-injection hook: a map from (cell
// index, attempt number) to the failure to force there. It exists so tests
// and the -faults flag can script hangs, panics, and build/exec failures at
// exact points of a sweep and assert the engine degrades the way the
// fault-tolerance machinery promises. A nil plan injects nothing, and an
// engine with a nil plan takes no branch the clean path doesn't.
//
// Plans are written before the engine runs and only read afterwards; they
// must not be mutated mid-sweep.
type FaultPlan struct {
	m map[faultAt]FaultKind
}

// Set schedules kind at (cell, attempt). attempt counts from 0 (the first
// try); AnyAttempt entries are set via SetAll.
func (p *FaultPlan) Set(cell, attempt int, kind FaultKind) *FaultPlan {
	if p.m == nil {
		p.m = make(map[faultAt]FaultKind)
	}
	p.m[faultAt{cell, attempt}] = kind
	return p
}

// SetAll schedules kind at cell on every attempt, so the fault survives
// retries.
func (p *FaultPlan) SetAll(cell int, kind FaultKind) *FaultPlan {
	return p.Set(cell, anyAttempt, kind)
}

// At returns the fault scheduled for (cell, attempt): an exact-attempt entry
// wins over an every-attempt one, and a nil plan returns FaultNone.
func (p *FaultPlan) At(cell, attempt int) FaultKind {
	if p == nil || p.m == nil {
		return FaultNone
	}
	if k, ok := p.m[faultAt{cell, attempt}]; ok {
		return k
	}
	return p.m[faultAt{cell, anyAttempt}]
}

// Len returns the number of scheduled faults.
func (p *FaultPlan) Len() int {
	if p == nil {
		return 0
	}
	return len(p.m)
}

// ParseFaultPlan parses the -faults CLI syntax: a comma-separated list of
// CELL:KIND or CELL@ATTEMPT:KIND entries, where KIND is one of build-fail,
// exec-fail, panic, stall. Without @ATTEMPT the fault fires on every
// attempt. Example: "3:panic,7@0:exec-fail" panics cell 3 always and fails
// cell 7's first execution (so a retry succeeds). An empty string is a nil
// plan.
func ParseFaultPlan(s string) (*FaultPlan, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	p := &FaultPlan{}
	for _, ent := range strings.Split(s, ",") {
		ent = strings.TrimSpace(ent)
		loc, kindName, ok := strings.Cut(ent, ":")
		if !ok {
			return nil, fmt.Errorf("fault plan: entry %q: want CELL[@ATTEMPT]:KIND", ent)
		}
		var kind FaultKind
		switch kindName {
		case "build-fail":
			kind = FaultBuildFail
		case "exec-fail":
			kind = FaultExecFail
		case "panic":
			kind = FaultPanic
		case "stall":
			kind = FaultStall
		default:
			return nil, fmt.Errorf("fault plan: entry %q: unknown kind %q (want build-fail, exec-fail, panic or stall)", ent, kindName)
		}
		cellStr, attemptStr, hasAttempt := strings.Cut(loc, "@")
		cell, err := strconv.Atoi(cellStr)
		if err != nil || cell < 0 {
			return nil, fmt.Errorf("fault plan: entry %q: bad cell index %q", ent, cellStr)
		}
		attempt := anyAttempt
		if hasAttempt {
			attempt, err = strconv.Atoi(attemptStr)
			if err != nil || attempt < 0 {
				return nil, fmt.Errorf("fault plan: entry %q: bad attempt %q", ent, attemptStr)
			}
		}
		p.Set(cell, attempt, kind)
	}
	return p, nil
}
