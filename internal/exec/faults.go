package exec

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// FaultKind enumerates the failures the injection hook can force on a cell.
type FaultKind int

const (
	// FaultNone means no injected fault.
	FaultNone FaultKind = iota
	// FaultBuildFail fails the cell before its build, as a compile error would.
	FaultBuildFail
	// FaultExecFail fails the cell after load, as a sim fault would.
	FaultExecFail
	// FaultPanic panics on the worker goroutine, exercising the pool's
	// recover barrier.
	FaultPanic
	// FaultStall blocks the cell until its watchdog context fires,
	// exercising the wall-clock deadline.
	FaultStall
	// FaultSlow sleeps for the entry's delay before running the cell
	// normally — an artificial slowdown, not a failure. It exists so the
	// regression gate (-compare) can be exercised end to end: the sleep
	// inflates the wall-clock latency histograms without perturbing any
	// modeled number.
	FaultSlow
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultBuildFail:
		return "build-fail"
	case FaultExecFail:
		return "exec-fail"
	case FaultPanic:
		return "panic"
	case FaultStall:
		return "stall"
	case FaultSlow:
		return "slow"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// anyAttempt is the wildcard attempt number in a FaultPlan entry: the fault
// fires on every attempt, so even retries keep failing. anyCell is the
// wildcard cell index ("*" in the CLI syntax): the fault fires on every
// cell, which is how a whole sweep is slowed down for regression-gate tests.
const (
	anyAttempt = -1
	anyCell    = -1
)

type faultAt struct {
	cell    int
	attempt int
}

type faultSpec struct {
	kind  FaultKind
	delay time.Duration // FaultSlow only
}

// DefaultSlowDelay is the sleep a slow fault injects when the plan entry
// does not carry an explicit duration.
const DefaultSlowDelay = 25 * time.Millisecond

// FaultPlan is the deterministic fault-injection hook: a map from (cell
// index, attempt number) to the failure to force there. It exists so tests
// and the -faults flag can script hangs, panics, slowdowns and build/exec
// failures at exact points of a sweep and assert the engine degrades the
// way the fault-tolerance machinery promises. A nil plan injects nothing,
// and an engine with a nil plan takes no branch the clean path doesn't.
//
// Plans are written before the engine runs and only read afterwards; they
// must not be mutated mid-sweep.
type FaultPlan struct {
	m map[faultAt]faultSpec
}

// Set schedules kind at (cell, attempt). attempt counts from 0 (the first
// try); AnyAttempt entries are set via SetAll. FaultSlow entries set this
// way sleep DefaultSlowDelay; use SetSlow for an explicit delay.
func (p *FaultPlan) Set(cell, attempt int, kind FaultKind) *FaultPlan {
	return p.set(cell, attempt, faultSpec{kind: kind, delay: DefaultSlowDelay})
}

// SetAll schedules kind at cell on every attempt, so the fault survives
// retries.
func (p *FaultPlan) SetAll(cell int, kind FaultKind) *FaultPlan {
	return p.Set(cell, anyAttempt, kind)
}

// SetSlow schedules an artificial delay of d at (cell, attempt). Pass
// AnyCell/AnyAttempt semantics via SetSlowAll.
func (p *FaultPlan) SetSlow(cell, attempt int, d time.Duration) *FaultPlan {
	return p.set(cell, attempt, faultSpec{kind: FaultSlow, delay: d})
}

// SetSlowAll schedules an artificial delay of d on every cell and attempt —
// the whole-sweep slowdown the regression-gate tests inject.
func (p *FaultPlan) SetSlowAll(d time.Duration) *FaultPlan {
	return p.set(anyCell, anyAttempt, faultSpec{kind: FaultSlow, delay: d})
}

func (p *FaultPlan) set(cell, attempt int, s faultSpec) *FaultPlan {
	if p.m == nil {
		p.m = make(map[faultAt]faultSpec)
	}
	p.m[faultAt{cell, attempt}] = s
	return p
}

// at resolves the spec scheduled for (cell, attempt), most specific entry
// first: exact (cell, attempt), then (cell, any), (any, attempt), (any, any).
func (p *FaultPlan) at(cell, attempt int) faultSpec {
	if p == nil || p.m == nil {
		return faultSpec{}
	}
	for _, q := range [...]faultAt{
		{cell, attempt}, {cell, anyAttempt}, {anyCell, attempt}, {anyCell, anyAttempt},
	} {
		if s, ok := p.m[q]; ok {
			return s
		}
	}
	return faultSpec{}
}

// At returns the fault scheduled for (cell, attempt); a nil plan returns
// FaultNone.
func (p *FaultPlan) At(cell, attempt int) FaultKind {
	return p.at(cell, attempt).kind
}

// Delay returns the artificial delay scheduled for (cell, attempt), or 0
// when the entry there is not a slow fault.
func (p *FaultPlan) Delay(cell, attempt int) time.Duration {
	s := p.at(cell, attempt)
	if s.kind != FaultSlow {
		return 0
	}
	return s.delay
}

// Len returns the number of scheduled faults.
func (p *FaultPlan) Len() int {
	if p == nil {
		return 0
	}
	return len(p.m)
}

// ParseFaultPlan parses the -faults CLI syntax: a comma-separated list of
// CELL:KIND or CELL@ATTEMPT:KIND entries, where KIND is one of build-fail,
// exec-fail, panic, stall, or slow[=DURATION]. CELL may be "*" to hit every
// cell. Without @ATTEMPT the fault fires on every attempt. Examples:
// "3:panic,7@0:exec-fail" panics cell 3 always and fails cell 7's first
// execution (so a retry succeeds); "*:slow=50ms" sleeps 50ms in every cell,
// the injected slowdown the -compare regression gate is tested with. An
// empty string is a nil plan.
func ParseFaultPlan(s string) (*FaultPlan, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	p := &FaultPlan{}
	for _, ent := range strings.Split(s, ",") {
		ent = strings.TrimSpace(ent)
		loc, kindName, ok := strings.Cut(ent, ":")
		if !ok {
			return nil, fmt.Errorf("fault plan: entry %q: want CELL[@ATTEMPT]:KIND", ent)
		}
		spec := faultSpec{delay: DefaultSlowDelay}
		kindName, delayStr, hasDelay := strings.Cut(kindName, "=")
		switch kindName {
		case "build-fail":
			spec.kind = FaultBuildFail
		case "exec-fail":
			spec.kind = FaultExecFail
		case "panic":
			spec.kind = FaultPanic
		case "stall":
			spec.kind = FaultStall
		case "slow":
			spec.kind = FaultSlow
		default:
			return nil, fmt.Errorf("fault plan: entry %q: unknown kind %q (want build-fail, exec-fail, panic, stall or slow[=DURATION])", ent, kindName)
		}
		if hasDelay {
			if spec.kind != FaultSlow {
				return nil, fmt.Errorf("fault plan: entry %q: only slow takes a =DURATION", ent)
			}
			d, err := time.ParseDuration(delayStr)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("fault plan: entry %q: bad duration %q", ent, delayStr)
			}
			spec.delay = d
		}
		cellStr, attemptStr, hasAttempt := strings.Cut(loc, "@")
		cell := anyCell
		if cellStr != "*" {
			var err error
			cell, err = strconv.Atoi(cellStr)
			if err != nil || cell < 0 {
				return nil, fmt.Errorf("fault plan: entry %q: bad cell index %q", ent, cellStr)
			}
		}
		attempt := anyAttempt
		if hasAttempt {
			var err error
			attempt, err = strconv.Atoi(attemptStr)
			if err != nil || attempt < 0 {
				return nil, fmt.Errorf("fault plan: entry %q: bad attempt %q", ent, attemptStr)
			}
		}
		p.set(cell, attempt, spec)
	}
	return p, nil
}
