package exec_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"r2c/internal/defense"
	"r2c/internal/exec"
	"r2c/internal/incident"
	"r2c/internal/telemetry"
	"r2c/internal/tir"
	"r2c/internal/vm"
)

// crashModule builds a module whose entry dereferences far-unmapped memory —
// the plain-crash signal the incident log records as a "fault".
func crashModule(t *testing.T) *tir.Module {
	t.Helper()
	mb := tir.NewModule("crasher")
	fb := mb.NewFunc("main", 0)
	wild := fb.Const(0xdead0000)
	fb.Load(wild, 0)
	fb.RetVoid()
	mb.SetEntry("main")
	m, err := mb.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// The acceptance property of the observatory: the incident timeline (records,
// campaign summaries, and their JSON serialization) is byte-identical whether
// the cells ran serially or across eight workers.
func TestIncidentTimelineDeterministicAcrossWidths(t *testing.T) {
	m := crashModule(t)
	run := func(jobs int) []byte {
		obs := &telemetry.Observer{Registry: telemetry.NewRegistry(), FlightCap: 32}
		eng := exec.New(jobs, obs)
		eng.Incidents = incident.NewLog()
		cells := make([]exec.Cell, 8)
		for i := range cells {
			cells[i] = exec.Cell{Module: m, Cfg: defense.R2CFull(), Seed: uint64(100 + i), Prof: vm.EPYCRome()}
		}
		// Every cell faults; the batch error is the expected outcome, the
		// incident log is what we are comparing.
		if _, err := eng.RunCells(context.Background(), cells); err == nil {
			t.Fatal("crash cells completed without error")
		}
		if eng.Incidents.Len() == 0 {
			t.Fatal("faulting cells produced no incident records")
		}
		var buf bytes.Buffer
		if err := eng.Incidents.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := run(1)
	wide := run(8)
	if !bytes.Equal(serial, wide) {
		t.Fatalf("incident timeline differs between -jobs 1 and -jobs 8:\n%s\nvs\n%s", serial, wide)
	}
	var tl incident.Timeline
	if err := json.Unmarshal(serial, &tl); err != nil {
		t.Fatal(err)
	}
	if tl.Total != 8 || len(tl.Campaigns) != 1 || tl.Campaigns[0].Campaign != "exec/crasher" {
		t.Fatalf("timeline = total %d, campaigns %+v", tl.Total, tl.Campaigns)
	}
	for _, r := range tl.Incidents {
		if r.Kind != "fault" || r.Addr != 0xdead0000 || r.ID == "" {
			t.Fatalf("unexpected record %+v", r)
		}
		if len(r.Flight) == 0 {
			t.Fatalf("record %s carries no flight snapshot despite FlightCap", r.ID)
		}
	}
}

// A fault-injected run must trip a threshold alert rule over the engine's
// failure counter and report firing; the same rule over a clean run stays
// quiet — the CI contract behind -alert-rules' nonzero exit.
func TestAlertRuleFiresOnFaultedRun(t *testing.T) {
	rules, err := telemetry.ParseAlertRules(strings.NewReader(
		"cell-failures: count(exec.cell.failures) >= 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	run := func(inject bool) []telemetry.AlertState {
		reg := telemetry.NewRegistry()
		eng := exec.New(2, &telemetry.Observer{Registry: reg})
		if inject {
			eng.Faults = (&exec.FaultPlan{}).SetAll(0, exec.FaultExecFail)
		}
		_, err := eng.RunCells(context.Background(), cellsN(testModule(t), 3))
		if inject && err == nil {
			t.Fatal("fault-injected run reported success")
		}
		if !inject && err != nil {
			t.Fatal(err)
		}
		return telemetry.EvalAlerts(rules, reg.Snapshot(), time.Second)
	}
	if n := telemetry.FiringCount(run(true)); n != 1 {
		t.Errorf("faulted run: %d rules firing, want 1", n)
	}
	states := run(false)
	if n := telemetry.FiringCount(states); n != 0 {
		t.Errorf("clean run: %d rules firing, want 0: %+v", n, states)
	}
}

// The engine's time-series rings live on the submission-ordered merge loop,
// so their contents — like the incident timeline — are byte-identical at any
// worker-pool width.
func TestEngineSeriesDeterministicAcrossWidths(t *testing.T) {
	m := testModule(t)
	run := func(jobs int) []byte {
		eng := exec.New(jobs, nil)
		eng.Series = telemetry.NewSeriesSet(0, nil)
		eng.SampleEvery = 4
		if _, err := eng.RunCells(context.Background(), cellsN(m, 12)); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := eng.Series.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := run(1)
	wide := run(8)
	if !bytes.Equal(serial, wide) {
		t.Fatalf("engine time series differ between -jobs 1 and -jobs 8:\n%s\nvs\n%s", serial, wide)
	}
	var snap telemetry.SeriesSnapshot
	if err := json.Unmarshal(serial, &snap); err != nil {
		t.Fatal(err)
	}
	byName := map[string]int{}
	for _, sd := range snap.Series {
		byName[sd.Name] = len(sd.Points)
	}
	// 12 cells at stride 4 = 3 ticks per series.
	for _, name := range []string{"exec.cells.done", "exec.run.cycles.p50", "exec.run.cycles.p99", "exec.run.cycles.mean"} {
		if byName[name] != 3 {
			t.Errorf("series %s has %d points, want 3 (all: %v)", name, byName[name], byName)
		}
	}
}

// Satellite (d): the ops endpoints must be safe to scrape while the engine is
// mutating the registry, the progress tracker and the incident log from its
// worker pool. Run under -race this is a data-race detector for the whole
// read path.
func TestOpsServerConcurrentScrapes(t *testing.T) {
	reg := telemetry.NewRegistry()
	obs := &telemetry.Observer{Registry: reg, FlightCap: 16}
	eng := exec.New(4, obs)
	eng.Incidents = incident.NewLog()
	eng.Series = telemetry.NewSeriesSet(0, obs)
	eng.SampleEvery = 1
	srv, err := telemetry.ServeOpsSources("127.0.0.1:0", telemetry.OpsSources{
		Registry:  reg,
		Progress:  func() any { return eng.Progress() },
		Incidents: func() any { return eng.Incidents.Timeline() },
		Series:    eng.Series,
		Health:    func() string { return "" },
		Alerts: func() any {
			return telemetry.EvalAlerts(nil, reg.Snapshot(), time.Second)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	for _, path := range []string{"/metrics", "/progress", "/incidents", "/alerts", "/timeseries", "/timeseries?series=exec.run&last=4", "/dashboard", "/healthz"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(srv.URL() + path)
				if err != nil {
					t.Errorf("%s: %v", path, err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("%s: status %d: %s", path, resp.StatusCode, body)
					return
				}
			}
		}(path)
	}

	// Crash cells mutate the registry (trap/fault counters), the flight
	// recorders and the incident log while the scrapers read.
	m := crashModule(t)
	cells := make([]exec.Cell, 16)
	for i := range cells {
		cells[i] = exec.Cell{Module: m, Cfg: defense.R2CFull(), Seed: uint64(300 + i), Prof: vm.EPYCRome()}
	}
	if _, err := eng.RunCells(context.Background(), cells); err == nil {
		t.Error("crash cells completed without error")
	}
	close(done)
	wg.Wait()

	// One final scrape after the dust settles must see the incidents.
	resp, err := http.Get(srv.URL() + "/incidents")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tl incident.Timeline
	if err := json.NewDecoder(resp.Body).Decode(&tl); err != nil {
		t.Fatal(err)
	}
	if tl.Total != 16 {
		t.Errorf("/incidents total = %d, want 16", tl.Total)
	}
}
