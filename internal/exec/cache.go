// Package exec is the experiment execution engine: a bounded worker pool
// that fans independent simulation cells across goroutines with a
// deterministic, submission-ordered merge, plus a content-addressed build
// cache that memoizes the compile+link half of the toolchain. The paper's
// evaluation sweeps configs × workloads × machines × seeds with a fresh
// re-diversified build per run (Section 6.2); the sweep cells are pure
// functions of (module content, defense config, seed, machine profile), so
// they parallelize and memoize freely — the engine exploits both without
// giving up the bit-for-bit determinism the sim determinism tests lock in.
package exec

import (
	"sync"
	"sync/atomic"
	"time"

	"r2c/internal/defense"
	"r2c/internal/image"
	"r2c/internal/rt"
	"r2c/internal/sim"
	"r2c/internal/telemetry"
	"r2c/internal/tir"
)

// KeySchema versions the derived artifacts attached to a cached image beyond
// the architectural bytes themselves. Bump it whenever the predecoded form
// changes shape or meaning (pcode opcodes, superinstruction set, block/class
// packing), so persisted journals and cross-process comparisons never treat
// images predecoded under different layouts as interchangeable.
//
// Schema history:
//
//	1: architectural image only (pre-predecode)
//	2: pcode v1 — dense ops, XPushImm2/XPushImmCall/XAluAddImmCall/XVLoadStore
//	   superinstructions, packed per-block class counts, return-site indices
const KeySchema = 2

// Key identifies one build: module content, configuration fingerprint, and
// diversification seed, plus the derived-artifact schema version. Builds with
// equal keys are bit-identical, because the whole toolchain (codegen, linker,
// loader, predecoder) is a pure function of these values.
type Key struct {
	Module string // hex of tir.Module.ContentHash
	Config string // defense.Config.Fingerprint
	Seed   uint64
	Schema int // KeySchema at build time
}

// KeyFor computes the build-cache key for a cell. Module content hashes are
// memoized per *Module (workload builders return a fresh, immutable module
// per call; hashing a browser-scale module once instead of once per cell
// keeps the key computation off the profile).
func KeyFor(m *tir.Module, cfg defense.Config, seed uint64) Key {
	return Key{Module: moduleHash(m), Config: cfg.Fingerprint(), Seed: seed, Schema: KeySchema}
}

// moduleHashes memoizes ContentHash by module pointer. Modules handed to the
// engine must not be mutated afterwards — the same immutability the parallel
// cells themselves rely on (codegen only reads the module).
var moduleHashes sync.Map // *tir.Module -> string

func moduleHash(m *tir.Module) string {
	if h, ok := moduleHashes.Load(m); ok {
		return h.(string)
	}
	sum := m.ContentHash()
	const hexdigits = "0123456789abcdef"
	b := make([]byte, 0, 2*len(sum))
	for _, x := range sum {
		b = append(b, hexdigits[x>>4], hexdigits[x&0xf])
	}
	h, _ := moduleHashes.LoadOrStore(m, string(b))
	return h.(string)
}

// Cache memoizes sim.BuildImage results by content-addressed key. The cached
// value is the immutable linked image; every run instantiates a fresh
// rt.Process from it, so mutable process state (memory, heap, BTDP placement
// RNG) never leaks between cells. Concurrent requests for the same key build
// once (single-flight) and share the result.
//
// The one image mutator in the tree, rt.RerollBTRAs, only runs for configs
// with InsecureDynamicBTRAs set (the Section 4.1 property-B ablation); the
// cache refuses to memoize those configs so a reroll can never poison a
// shared image.
type Cache struct {
	// Obs receives hit/miss counters and an entry-count gauge under the
	// "exec.cache.*" namespace. Nil disables telemetry.
	Obs *telemetry.Observer

	mu      sync.Mutex
	entries map[Key]*cacheEntry

	hits     atomic.Uint64
	misses   atomic.Uint64
	bypasses atomic.Uint64
}

type cacheEntry struct {
	once sync.Once
	img  *image.Image
	err  error
}

// NewCache returns an empty build cache reporting into obs (may be nil).
func NewCache(obs *telemetry.Observer) *Cache {
	return &Cache{Obs: obs, entries: make(map[Key]*cacheEntry)}
}

// cacheable reports whether builds under cfg may be shared between runs.
func cacheable(cfg *defense.Config) bool { return !cfg.InsecureDynamicBTRAs }

// Image returns the linked image for (m, cfg, seed), building it on first
// use and serving the identical *image.Image on every later request with the
// same key. hit reports whether the image came from the cache.
func (c *Cache) Image(m *tir.Module, cfg defense.Config, seed uint64) (img *image.Image, hit bool, err error) {
	return c.ImageSpan(m, cfg, seed, nil, nil)
}

// ImageSpan is Image with pipeline tracing: a "cache-lookup" child span under
// parent for the key resolution, and — when this requester is the one that
// runs the build — a "build" child wrapping compile+link. track, when
// non-nil, is called with the coarse phase name ("cache-lookup", "build")
// as the cell moves through the pipeline, feeding the engine's /progress
// snapshot. Both hooks are observational; the image built is identical to
// Image's.
//
// Under cache sharing, which requester runs the single-flight build closure
// is a scheduling accident, so the build span's parent (and thus its span id)
// is only deterministic across -jobs widths when cells carry distinct keys.
func (c *Cache) ImageSpan(m *tir.Module, cfg defense.Config, seed uint64, parent *telemetry.Span, track func(phase string)) (img *image.Image, hit bool, err error) {
	if track != nil {
		track("cache-lookup")
	}
	if c == nil || !cacheable(&cfg) {
		if c != nil {
			c.bypasses.Add(1)
			c.Obs.Counter("exec.cache.bypasses").Inc()
		}
		if track != nil {
			track("build")
		}
		bs := parent.Child("build", seed)
		bs.SetAttr("cache", "bypass")
		img, err = sim.BuildImageSpan(m, cfg, seed, bs)
		bs.End()
		return img, false, err
	}
	ls := parent.Child("cache-lookup", seed)
	lookupStart := time.Now()
	key := KeyFor(m, cfg, seed)

	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
		c.Obs.Gauge("exec.cache.entries").Set(float64(len(c.entries)))
	}
	c.mu.Unlock()
	// Lookup latency covers key computation (the module content hash on
	// first sight) plus the map critical section — the part every cell
	// pays whether it hits or misses.
	c.Obs.LogHist("exec.cache.lookup.seconds", telemetry.LatencyScheme).Observe(time.Since(lookupStart).Seconds())
	ls.SetAttr("hit", ok)
	ls.End()

	// Single-flight: every requester offers the build closure; exactly one
	// runs it and the rest block inside Do until the image is ready. The
	// entry creator counts as the miss, later arrivals as hits (their work
	// was shared even if they blocked on the in-flight build).
	e.once.Do(func() {
		if track != nil {
			track("build")
		}
		bs := parent.Child("build", seed)
		bs.SetAttr("cache", "miss")
		e.img, e.err = sim.BuildImageSpan(m, cfg, seed, bs)
		bs.End()
	})
	if ok {
		c.hits.Add(1)
		c.Obs.Counter("exec.cache.hits").Inc()
	} else {
		c.misses.Add(1)
		c.Obs.Counter("exec.cache.misses").Inc()
	}
	return e.img, ok, e.err
}

// Process builds (or fetches) the image for (m, cfg, seed) and loads it into
// a fresh process, exactly as sim.BuildObserved would: same seed derivation,
// same load-time randomness, same telemetry hooks.
func (c *Cache) Process(m *tir.Module, cfg defense.Config, seed uint64, obs *telemetry.Observer) (*rt.Process, error) {
	img, _, err := c.Image(m, cfg, seed)
	if err != nil {
		return nil, err
	}
	return sim.NewProcessFromImage(img, seed, obs)
}

// Stats returns the cumulative hit/miss/bypass counts.
func (c *Cache) Stats() (hits, misses, bypasses uint64) {
	if c == nil {
		return 0, 0, 0
	}
	return c.hits.Load(), c.misses.Load(), c.bypasses.Load()
}

// HitRate returns hits/(hits+misses), or 0 before any lookup. Bypassed
// (uncacheable) builds are excluded.
func (c *Cache) HitRate() float64 {
	h, m, _ := c.Stats()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Len returns the number of cached images.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
