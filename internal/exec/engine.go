package exec

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"r2c/internal/defense"
	"r2c/internal/incident"
	"r2c/internal/rt"
	"r2c/internal/sim"
	"r2c/internal/telemetry"
	"r2c/internal/tir"
	"r2c/internal/vm"
)

// Cell is one independent simulation: build (module, cfg, seed), load a
// fresh process, run it to completion on a machine profile. Cells are pure —
// the result is a function of the four fields — which is what lets the
// engine run them in any order, reuse builds across them, and replay
// journaled results on resume.
type Cell struct {
	Module *tir.Module
	Cfg    defense.Config
	Seed   uint64
	Prof   *vm.Profile
}

// CellError wraps a cell failure with the index of the cell that failed, so
// callers can attach experiment-level context (benchmark name, config) to
// exactly the right cell.
type CellError struct {
	Index int
	Err   error
}

func (e *CellError) Error() string { return fmt.Sprintf("cell %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying cell error to errors.Is/As.
func (e *CellError) Unwrap() error { return e.Err }

// SplitError extracts the failing cell index and the underlying cause from
// a RunCells error, so callers can re-wrap the cause with the cell's
// experiment-level context. Non-CellError errors return index 0 and the
// error unchanged.
func SplitError(err error) (int, error) {
	var ce *CellError
	if errors.As(err, &ce) {
		return ce.Index, ce.Err
	}
	return 0, err
}

// Engine bundles the worker pool and the build cache behind one handle — the
// thing experiment drivers carry around. A nil Engine is not usable; bench
// constructs a default one when none is supplied.
type Engine struct {
	Pool  *Pool
	Cache *Cache
	// Obs is attached to every process the engine loads and receives the
	// engine's own metrics (per-cell timers, pool gauges, cache counters,
	// retry/timeout/panic counters) and the pipeline spans (batch → cell →
	// cache-lookup/build/load/exec).
	Obs *telemetry.Observer

	// CellTimeout is the per-cell wall-clock deadline (-cell-timeout);
	// 0 disables it. CellFuel is the per-cell VM instruction allowance
	// (-cell-fuel); 0 means sim.DefaultBudget. Either watchdog kills a hung
	// cell with a *CellTimeoutError instead of hanging the sweep.
	CellTimeout time.Duration
	CellFuel    uint64

	// Retries is how many times a failed cell is re-attempted (-retries);
	// retry attempts run with a seed deterministically derived from the
	// cell's content key, so results never depend on wall clock or
	// scheduling. Backoff is the base delay before the first retry,
	// doubling per attempt; it shapes only when retries run, never what
	// they compute.
	Retries int
	Backoff time.Duration

	// Faults is the fault-injection hook: tests and the -faults flag
	// script build/exec failures, panics, and stalls at exact (cell,
	// attempt) points. Nil injects nothing.
	Faults *FaultPlan

	// Journal, when set, persists completed cell results keyed by the
	// content-addressed build key + machine profile; cells already
	// journaled replay without executing (-resume).
	Journal *Journal

	// Incidents, when set, collects an incident record (trap provenance +
	// flight-recorder snapshot) for every cell that stops on a trap or
	// fault. Cells replayed from the journal never produce incidents: a
	// replay has no process to snapshot, and the original run already
	// recorded the incident.
	Incidents *incident.Log

	// Series, when set, receives deterministic time-series samples from the
	// ordered merge loop: the trajectory axis is the cumulative completed
	// cell count (never wall clock), so -timeseries-out artifacts are
	// byte-identical at any -jobs width. SampleEvery is the cell stride
	// between samples (0 = 16).
	Series      *telemetry.SeriesSet
	SampleEvery int

	// prog backs Progress; batchSeq keys one "exec.batch" root span per
	// RunCells call. Both are observational only.
	prog     progressState
	batchSeq atomic.Uint64

	// seriesMu orders Series sampling (and the cumulative cell counter)
	// across concurrent RunCells calls.
	seriesMu  sync.Mutex
	cellsDone int
}

// New returns an engine with a fresh cache and a pool of the given width
// (0 = GOMAXPROCS, 1 = serial). obs may be nil.
func New(jobs int, obs *telemetry.Observer) *Engine {
	return &Engine{Pool: NewPool(jobs, obs), Cache: NewCache(obs), Obs: obs}
}

// Jobs returns the engine's effective parallelism.
func (e *Engine) Jobs() int { return e.Pool.Width() }

// HitRateString formats a build-cache hit rate as a percentage, or "n/a"
// when no cacheable lookup has happened — a zero-build run has no meaningful
// rate, and 0/0 would otherwise render as NaN.
func HitRateString(hits, misses uint64) string {
	if hits+misses == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(hits)/float64(hits+misses))
}

// Footer returns the one-line run summary the cmd harnesses print on exit:
// effective parallelism and build-cache economy for the whole invocation.
func (e *Engine) Footer(tool string) string {
	hits, misses, bypasses := e.Cache.Stats()
	s := fmt.Sprintf("[%s: %d jobs; build cache: %d hits / %d misses (%s hit rate)",
		tool, e.Jobs(), hits, misses, HitRateString(hits, misses))
	if bypasses > 0 {
		s += fmt.Sprintf(", %d uncacheable", bypasses)
	}
	if jh := e.Journal.Hits(); jh > 0 {
		s += fmt.Sprintf("; journal: %d cells replayed", jh)
	}
	return s + "]"
}

// BuildProcess returns a fresh process for (m, cfg, seed), reusing a cached
// image when one exists. Behaviour is bit-identical to sim.BuildObserved.
func (e *Engine) BuildProcess(m *tir.Module, cfg defense.Config, seed uint64) (*rt.Process, error) {
	return e.Cache.Process(m, cfg, seed, e.Obs)
}

// Run executes one cell on the calling goroutine: cached build, fresh
// process, full run. It mirrors sim.RunObserved exactly, modulo the build
// memoization. It bypasses the watchdog/retry/journal machinery — callers
// that want fault tolerance go through RunCells.
func (e *Engine) Run(m *tir.Module, cfg defense.Config, seed uint64, prof *vm.Profile) (*vm.Result, *rt.Process, error) {
	proc, err := e.BuildProcess(m, cfg, seed)
	if err != nil {
		return nil, nil, err
	}
	res, err := sim.ExecProcess(proc, prof, e.Obs)
	return res, proc, err
}

// RetrySeed derives the diversification seed for retry attempt n of the cell
// identified by key. It hashes the content key rather than perturbing the
// original seed arithmetically, so retry seeds are deterministic across
// runs, widths, and resumes (no wall clock anywhere) yet never collide with
// the sweep's own seed schedule.
func RetrySeed(key Key, attempt int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key.Module))
	h.Write([]byte{0})
	h.Write([]byte(key.Config))
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(key.Seed >> (8 * i))
		buf[8+i] = byte(uint64(attempt) >> (8 * i))
	}
	h.Write(buf[:])
	return h.Sum64()
}

// RunCells fans the cells across the pool and returns their results in
// submission order. Every cell runs to completion even if another fails —
// failed cells leave a nil slot, and the returned error is a *BatchError
// listing every failed cell in index order (its Unwrap exposes the
// lowest-index *CellError), so both partial results and error reporting are
// independent of scheduling. Identical (module, cfg, seed) cells share one
// build through the cache but never a process.
//
// Per cell, the engine applies the configured fault tolerance: journal
// replay (skip already-completed cells on -resume), the wall-clock/fuel
// watchdog, panic isolation (a panicking cell becomes a *PanicError in its
// slot while its siblings finish), and bounded retry with content-derived
// seeds. Successful cells are byte-identical to a clean serial run at any
// -jobs width.
//
// When the engine's observer carries a span sink, the batch traces as one
// "exec.batch" root with a "cell" child per index (cache-lookup → build →
// load → sim.exec children; retries nest under a "retry" child) and a final
// "merge" child. Span ids derive from (parent, name, cell index), not from
// scheduling, so the same submission produces the same span tree at any
// -jobs width.
func (e *Engine) RunCells(ctx context.Context, cells []Cell) ([]*vm.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]*vm.Result, len(cells))
	batch := e.Obs.StartSpan("exec.batch", e.batchSeq.Add(1))
	batch.SetAttr("cells", len(cells))
	defer batch.End()
	e.prog.addBatch(len(cells))
	submitted := time.Now()
	timer := e.Obs.Timer("exec.cell")
	latency := e.Obs.LogHist("exec.cell.seconds", telemetry.LatencyScheme)
	errs := e.Pool.MapErrs(ctx, len(cells), func(i, w int) error {
		stop := timer.Time()
		defer stop()
		cellStart := time.Now()
		defer func() { latency.Observe(time.Since(cellStart).Seconds()) }()
		c := &cells[i]
		handle, track := e.prog.begin(i, w)
		defer e.prog.end(handle)
		sp := batch.Child("cell", uint64(i))
		defer sp.End()
		sp.SetTID(w + 1)
		sp.SetAttr("index", i)
		sp.SetAttr("worker", w)
		sp.SetAttr("seed", c.Seed)
		sp.SetAttr("config", c.Cfg.Name)
		sp.SetAttr("queued_ns", time.Since(submitted).Nanoseconds())
		res, err := e.runCellAttempts(ctx, i, c, sp, track)
		if err != nil {
			sp.SetAttr("status", "failed")
			sp.SetAttr("error", err.Error())
			return err
		}
		sp.SetAttr("status", "ok")
		results[i] = res
		return nil
	})
	var failures []*CellError
	for i, err := range errs {
		if err == nil {
			continue
		}
		ce, ok := err.(*CellError)
		if !ok {
			ce = &CellError{Index: i, Err: err}
		}
		failures = append(failures, ce)
		e.Obs.Counter("exec.cell.failures").Inc()
		var pe *PanicError
		var te *CellTimeoutError
		switch {
		case errors.As(err, &pe):
			e.Obs.Counter("exec.cell.panics").Inc()
		case errors.As(err, &te):
			e.Obs.Counter("exec.cell.timeouts").Inc()
		}
	}
	// The modeled-cycle distribution is observed here, in the ordered merge
	// loop, not on the workers: bucket counts would be order-independent
	// either way, but the float sum accumulates in fold order, and folding
	// in submission order is what keeps the histogram — and every baseline
	// derived from it — byte-identical between -jobs 1 and -jobs 8.
	cyc := e.Obs.LogHist("exec.run.cycles", telemetry.CycleScheme)
	if cyc == nil && e.Series != nil {
		// No observer, but a series sampler: the sampled quantiles still need
		// a histogram to fold into, so own a private one for this batch.
		cyc = telemetry.NewLogHist(telemetry.CycleScheme)
	}
	e.seriesMu.Lock()
	every := e.SampleEvery
	if every <= 0 {
		every = 16
	}
	for _, res := range results {
		if res == nil {
			continue
		}
		cyc.Observe(res.Cycles)
		// Time-series sampling shares the merge loop's determinism argument:
		// the axis is the submission-ordered completed-cell count and the
		// sampled quantiles come from the merge-ordered histogram, so the
		// rings never see scheduling. Wall-clock series (exec.cell.seconds)
		// are deliberately not sampled — they would break the byte-identical
		// -timeseries-out contract.
		if e.Series != nil {
			e.cellsDone++
			if e.cellsDone%every == 0 {
				t := float64(e.cellsDone)
				snap := cyc.Snapshot()
				e.Series.Sample(t, "exec.cells.done", t)
				e.Series.Sample(t, "exec.run.cycles.p50", snap.Quantile(0.50))
				e.Series.Sample(t, "exec.run.cycles.p99", snap.Quantile(0.99))
				if snap.Count > 0 {
					e.Series.Sample(t, "exec.run.cycles.mean", snap.Sum/float64(snap.Count))
				}
			}
		}
	}
	e.seriesMu.Unlock()
	merge := batch.Child("merge", 0)
	merge.SetAttr("cells", len(cells))
	var err error
	if len(failures) > 0 {
		be := &BatchError{Total: len(cells), Failures: failures}
		merge.SetAttr("failed", len(failures))
		merge.SetAttr("error", be.Error())
		err = be
	}
	merge.End()
	return results, err
}

// MapTracked runs fn(0..n-1) across the pool with Pool.Map's semantics —
// including panic isolation — while reporting each item to the engine's live
// Progress as an in-flight cell in the given phase, so campaigns that do not
// go through RunCells (the attack harness's Monte-Carlo trials) stay visible
// on /progress.
func (e *Engine) MapTracked(ctx context.Context, n int, phase string, fn func(i int) error) error {
	e.prog.addBatch(n)
	return e.Pool.MapW(ctx, n, func(i, w int) error {
		handle, track := e.prog.begin(i, w)
		defer e.prog.end(handle)
		track(phase)
		return fn(i)
	})
}

// runCellAttempts is the per-cell fault-tolerance wrapper around runCell:
// journal replay, then up to 1+Retries watchdogged attempts with
// exponential backoff between them. Retry attempts re-diversify with a
// RetrySeed-derived seed — a deterministic function of the cell's content
// key, never of time — and a success on any attempt journals under the
// cell's original key so a resume finds it.
func (e *Engine) runCellAttempts(ctx context.Context, i int, c *Cell, sp *telemetry.Span, track func(phase string)) (*vm.Result, error) {
	key := KeyFor(c.Module, c.Cfg, c.Seed)
	if cacheable(&c.Cfg) {
		if res, ok := e.Journal.Lookup(key, c.Prof.Name); ok {
			e.Obs.Counter("exec.journal.hits").Inc()
			sp.SetAttr("journal", "hit")
			track("journal")
			return res, nil
		}
	}
	var lastErr error
	for attempt := 0; attempt <= e.Retries; attempt++ {
		if attempt > 0 {
			e.Obs.Counter("exec.cell.retries").Inc()
			track("backoff")
			if e.Backoff > 0 {
				delay := e.Backoff << uint(attempt-1)
				t := time.NewTimer(delay)
				select {
				case <-ctx.Done():
					t.Stop()
					return nil, ctx.Err()
				case <-t.C:
				}
			}
		}
		res, err := e.runCellAttempt(ctx, i, attempt, c, key, sp, track)
		if err == nil {
			sp.SetAttr("attempts", attempt+1)
			if cacheable(&c.Cfg) {
				if jerr := e.Journal.Record(key, c.Prof.Name, res); jerr != nil {
					// A journaling failure must not fail a successful
					// cell; surface it observationally and move on.
					sp.SetAttr("journal_error", jerr.Error())
					e.Obs.Counter("exec.journal.errors").Inc()
				}
			}
			return res, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break // the whole run is cancelled; retrying is pointless
		}
	}
	return nil, lastErr
}

// runCellAttempt runs one watchdogged attempt: fault injection first (so
// tests can force the failure modes), then the traced build/load/exec
// pipeline under the attempt's deadline. Attempt 0 traces directly under the
// cell span — the clean-run span tree is unchanged — while retries nest
// under a "retry" child keyed by attempt number, keeping span ids unique
// and deterministic.
func (e *Engine) runCellAttempt(ctx context.Context, i, attempt int, c *Cell, key Key, parent *telemetry.Span, track func(phase string)) (*vm.Result, error) {
	sp := parent
	seed := c.Seed
	if attempt > 0 {
		sp = parent.Child("retry", uint64(attempt))
		defer sp.End()
		seed = RetrySeed(key, attempt)
		sp.SetAttr("attempt", attempt)
		sp.SetAttr("seed", seed)
	}
	actx := ctx
	if e.CellTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, e.CellTimeout)
		defer cancel()
	}
	switch e.Faults.At(i, attempt) {
	case FaultBuildFail:
		return nil, fmt.Errorf("fault injection: forced build failure (cell %d, attempt %d)", i, attempt)
	case FaultExecFail:
		return nil, fmt.Errorf("fault injection: forced exec failure (cell %d, attempt %d)", i, attempt)
	case FaultPanic:
		panic(fmt.Sprintf("fault injection: forced panic (cell %d, attempt %d)", i, attempt))
	case FaultStall:
		// A stall models a genuine hang: it holds the worker until the
		// watchdog (or the whole-run cancel) fires. Without either, it
		// hangs — exactly what the watchdog exists to prevent.
		track("stalled")
		<-actx.Done()
		if actx.Err() == context.DeadlineExceeded && ctx.Err() == nil {
			return nil, &CellTimeoutError{Index: i, Timeout: e.CellTimeout, Err: actx.Err()}
		}
		return nil, ctx.Err()
	case FaultSlow:
		// A slowdown, not a failure: sleep, then run the cell normally.
		// The sleep lands inside the cell's wall-clock window, so the
		// latency histograms (and any -compare against a clean baseline)
		// see it, while every modeled number stays untouched.
		track("slowed")
		t := time.NewTimer(e.Faults.Delay(i, attempt))
		select {
		case <-actx.Done():
			t.Stop()
			if actx.Err() == context.DeadlineExceeded && ctx.Err() == nil {
				return nil, &CellTimeoutError{Index: i, Timeout: e.CellTimeout, Err: actx.Err()}
			}
			return nil, ctx.Err()
		case <-t.C:
		}
	}
	res, err := e.runCell(actx, i, c, seed, sp, track)
	if err != nil {
		switch {
		case errors.Is(err, vm.ErrFuelExhausted):
			fuel := e.CellFuel
			if fuel == 0 {
				fuel = sim.DefaultBudget
			}
			return res, &CellTimeoutError{Index: i, Fuel: fuel, Err: err}
		case errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil:
			return res, &CellTimeoutError{Index: i, Timeout: e.CellTimeout, Err: err}
		}
	}
	return res, err
}

// runCell is the traced per-cell pipeline: cached image (cache-lookup and,
// on a miss, build spans inside ImageSpan), process load, execution under
// the attempt's context and the engine's fuel allowance. It is behaviorally
// identical to Run when neither watchdog fires — the span and track
// arguments only observe.
func (e *Engine) runCell(ctx context.Context, i int, c *Cell, seed uint64, sp *telemetry.Span, track func(phase string)) (*vm.Result, error) {
	imgStart := time.Now()
	img, hit, err := e.Cache.ImageSpan(c.Module, c.Cfg, seed, sp, track)
	if err != nil {
		return nil, err
	}
	// Phase latency histograms: a miss pays the build, a hit pays only the
	// (possibly blocking, under single-flight) cache load — the
	// build-vs-cached-load split that makes the cache's latency economy
	// visible in /metrics and the perf baselines.
	if hit {
		sp.SetAttr("cache", "hit")
		e.Obs.LogHist("exec.phase.seconds", telemetry.LatencyScheme, "phase", "cached-load").Observe(time.Since(imgStart).Seconds())
	} else {
		sp.SetAttr("cache", "miss")
		e.Obs.LogHist("exec.phase.seconds", telemetry.LatencyScheme, "phase", "build").Observe(time.Since(imgStart).Seconds())
	}
	track("load")
	ls := sp.Child("load", 0)
	loadStart := time.Now()
	proc, err := sim.NewProcessFromImage(img, seed, e.Obs)
	e.Obs.LogHist("exec.phase.seconds", telemetry.LatencyScheme, "phase", "load").Observe(time.Since(loadStart).Seconds())
	ls.End()
	if err != nil {
		return nil, err
	}
	track("execute")
	execStart := time.Now()
	res, err := sim.ExecProcessSpanCtx(ctx, proc, c.Prof, e.Obs, sp, e.CellFuel)
	e.Obs.LogHist("exec.phase.seconds", telemetry.LatencyScheme, "phase", "exec").Observe(time.Since(execStart).Seconds())
	// Incident capture happens here, not in the caller: ExecProcessSpanCtx
	// returns a non-nil result alongside its error on faults and traps, and
	// this is the last point where result and process are both in scope
	// (runCellAttempts drops the result on error).
	if e.Incidents != nil && res != nil {
		campaign := "exec/" + c.Module.Name
		switch {
		case res.Trap != nil:
			e.Incidents.Add(incident.FromTrap(campaign, c.Cfg.Name, seed, i, "exec", proc, *res.Trap, res.Instructions))
		case res.Fault != nil:
			e.Incidents.Add(incident.FromFault(campaign, c.Cfg.Name, seed, i, "exec", proc, res.Fault.Addr, res.Instructions))
		}
	}
	return res, err
}
