package exec

import (
	"errors"
	"fmt"

	"r2c/internal/defense"
	"r2c/internal/rt"
	"r2c/internal/sim"
	"r2c/internal/telemetry"
	"r2c/internal/tir"
	"r2c/internal/vm"
)

// Cell is one independent simulation: build (module, cfg, seed), load a
// fresh process, run it to completion on a machine profile. Cells are pure —
// the result is a function of the four fields — which is what lets the
// engine run them in any order and reuse builds across them.
type Cell struct {
	Module *tir.Module
	Cfg    defense.Config
	Seed   uint64
	Prof   *vm.Profile
}

// CellError wraps a cell failure with the index of the cell that failed, so
// callers can attach experiment-level context (benchmark name, config) to
// exactly the right cell.
type CellError struct {
	Index int
	Err   error
}

func (e *CellError) Error() string { return fmt.Sprintf("cell %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying cell error to errors.Is/As.
func (e *CellError) Unwrap() error { return e.Err }

// SplitError extracts the failing cell index and the underlying cause from
// a RunCells error, so callers can re-wrap the cause with the cell's
// experiment-level context. Non-CellError errors return index 0 and the
// error unchanged.
func SplitError(err error) (int, error) {
	var ce *CellError
	if errors.As(err, &ce) {
		return ce.Index, ce.Err
	}
	return 0, err
}

// Engine bundles the worker pool and the build cache behind one handle — the
// thing experiment drivers carry around. A nil Engine is not usable; bench
// constructs a default one when none is supplied.
type Engine struct {
	Pool  *Pool
	Cache *Cache
	// Obs is attached to every process the engine loads and receives the
	// engine's own metrics (per-cell timers, pool gauges, cache counters).
	Obs *telemetry.Observer
}

// New returns an engine with a fresh cache and a pool of the given width
// (0 = GOMAXPROCS, 1 = serial). obs may be nil.
func New(jobs int, obs *telemetry.Observer) *Engine {
	return &Engine{Pool: NewPool(jobs, obs), Cache: NewCache(obs), Obs: obs}
}

// Jobs returns the engine's effective parallelism.
func (e *Engine) Jobs() int { return e.Pool.Width() }

// BuildProcess returns a fresh process for (m, cfg, seed), reusing a cached
// image when one exists. Behaviour is bit-identical to sim.BuildObserved.
func (e *Engine) BuildProcess(m *tir.Module, cfg defense.Config, seed uint64) (*rt.Process, error) {
	return e.Cache.Process(m, cfg, seed, e.Obs)
}

// Run executes one cell on the calling goroutine: cached build, fresh
// process, full run. It mirrors sim.RunObserved exactly, modulo the build
// memoization.
func (e *Engine) Run(m *tir.Module, cfg defense.Config, seed uint64, prof *vm.Profile) (*vm.Result, *rt.Process, error) {
	proc, err := e.BuildProcess(m, cfg, seed)
	if err != nil {
		return nil, nil, err
	}
	res, err := sim.ExecProcess(proc, prof, e.Obs)
	return res, proc, err
}

// RunCells fans the cells across the pool and returns their results in
// submission order. Every cell runs to completion even if another fails; on
// failure the returned error is a *CellError for the lowest failing index,
// so both results and errors are independent of scheduling. Identical
// (module, cfg, seed) cells share one build through the cache but never a
// process.
func (e *Engine) RunCells(cells []Cell) ([]*vm.Result, error) {
	results := make([]*vm.Result, len(cells))
	timer := e.Obs.Timer("exec.cell")
	err := e.Pool.Map(len(cells), func(i int) error {
		stop := timer.Time()
		defer stop()
		c := &cells[i]
		res, _, err := e.Run(c.Module, c.Cfg, c.Seed, c.Prof)
		if err != nil {
			return &CellError{Index: i, Err: err}
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}
