package exec

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"r2c/internal/defense"
	"r2c/internal/rt"
	"r2c/internal/sim"
	"r2c/internal/telemetry"
	"r2c/internal/tir"
	"r2c/internal/vm"
)

// Cell is one independent simulation: build (module, cfg, seed), load a
// fresh process, run it to completion on a machine profile. Cells are pure —
// the result is a function of the four fields — which is what lets the
// engine run them in any order and reuse builds across them.
type Cell struct {
	Module *tir.Module
	Cfg    defense.Config
	Seed   uint64
	Prof   *vm.Profile
}

// CellError wraps a cell failure with the index of the cell that failed, so
// callers can attach experiment-level context (benchmark name, config) to
// exactly the right cell.
type CellError struct {
	Index int
	Err   error
}

func (e *CellError) Error() string { return fmt.Sprintf("cell %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying cell error to errors.Is/As.
func (e *CellError) Unwrap() error { return e.Err }

// SplitError extracts the failing cell index and the underlying cause from
// a RunCells error, so callers can re-wrap the cause with the cell's
// experiment-level context. Non-CellError errors return index 0 and the
// error unchanged.
func SplitError(err error) (int, error) {
	var ce *CellError
	if errors.As(err, &ce) {
		return ce.Index, ce.Err
	}
	return 0, err
}

// Engine bundles the worker pool and the build cache behind one handle — the
// thing experiment drivers carry around. A nil Engine is not usable; bench
// constructs a default one when none is supplied.
type Engine struct {
	Pool  *Pool
	Cache *Cache
	// Obs is attached to every process the engine loads and receives the
	// engine's own metrics (per-cell timers, pool gauges, cache counters)
	// and the pipeline spans (batch → cell → cache-lookup/build/load/exec).
	Obs *telemetry.Observer

	// prog backs Progress; batchSeq keys one "exec.batch" root span per
	// RunCells call. Both are observational only.
	prog     progressState
	batchSeq atomic.Uint64
}

// New returns an engine with a fresh cache and a pool of the given width
// (0 = GOMAXPROCS, 1 = serial). obs may be nil.
func New(jobs int, obs *telemetry.Observer) *Engine {
	return &Engine{Pool: NewPool(jobs, obs), Cache: NewCache(obs), Obs: obs}
}

// Jobs returns the engine's effective parallelism.
func (e *Engine) Jobs() int { return e.Pool.Width() }

// HitRateString formats a build-cache hit rate as a percentage, or "n/a"
// when no cacheable lookup has happened — a zero-build run has no meaningful
// rate, and 0/0 would otherwise render as NaN.
func HitRateString(hits, misses uint64) string {
	if hits+misses == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(hits)/float64(hits+misses))
}

// Footer returns the one-line run summary the cmd harnesses print on exit:
// effective parallelism and build-cache economy for the whole invocation.
func (e *Engine) Footer(tool string) string {
	hits, misses, bypasses := e.Cache.Stats()
	s := fmt.Sprintf("[%s: %d jobs; build cache: %d hits / %d misses (%s hit rate)",
		tool, e.Jobs(), hits, misses, HitRateString(hits, misses))
	if bypasses > 0 {
		s += fmt.Sprintf(", %d uncacheable", bypasses)
	}
	return s + "]"
}

// BuildProcess returns a fresh process for (m, cfg, seed), reusing a cached
// image when one exists. Behaviour is bit-identical to sim.BuildObserved.
func (e *Engine) BuildProcess(m *tir.Module, cfg defense.Config, seed uint64) (*rt.Process, error) {
	return e.Cache.Process(m, cfg, seed, e.Obs)
}

// Run executes one cell on the calling goroutine: cached build, fresh
// process, full run. It mirrors sim.RunObserved exactly, modulo the build
// memoization.
func (e *Engine) Run(m *tir.Module, cfg defense.Config, seed uint64, prof *vm.Profile) (*vm.Result, *rt.Process, error) {
	proc, err := e.BuildProcess(m, cfg, seed)
	if err != nil {
		return nil, nil, err
	}
	res, err := sim.ExecProcess(proc, prof, e.Obs)
	return res, proc, err
}

// RunCells fans the cells across the pool and returns their results in
// submission order. Every cell runs to completion even if another fails; on
// failure the returned error is a *CellError for the lowest failing index,
// so both results and errors are independent of scheduling. Identical
// (module, cfg, seed) cells share one build through the cache but never a
// process.
//
// When the engine's observer carries a span sink, the batch traces as one
// "exec.batch" root with a "cell" child per index (cache-lookup → build →
// load → sim.exec children) and a final "merge" child. Span ids derive from
// (parent, name, cell index), not from scheduling, so the same submission
// produces the same span tree at any -jobs width.
func (e *Engine) RunCells(cells []Cell) ([]*vm.Result, error) {
	results := make([]*vm.Result, len(cells))
	batch := e.Obs.StartSpan("exec.batch", e.batchSeq.Add(1))
	batch.SetAttr("cells", len(cells))
	defer batch.End()
	e.prog.addBatch(len(cells))
	submitted := time.Now()
	timer := e.Obs.Timer("exec.cell")
	err := e.Pool.MapW(len(cells), func(i, w int) error {
		stop := timer.Time()
		defer stop()
		c := &cells[i]
		handle, track := e.prog.begin(i, w)
		defer e.prog.end(handle)
		sp := batch.Child("cell", uint64(i))
		defer sp.End()
		sp.SetTID(w + 1)
		sp.SetAttr("index", i)
		sp.SetAttr("worker", w)
		sp.SetAttr("seed", c.Seed)
		sp.SetAttr("config", c.Cfg.Name)
		sp.SetAttr("queued_ns", time.Since(submitted).Nanoseconds())
		res, err := e.runCell(c, sp, track)
		if err != nil {
			sp.SetAttr("error", err.Error())
			return &CellError{Index: i, Err: err}
		}
		results[i] = res
		return nil
	})
	merge := batch.Child("merge", 0)
	merge.SetAttr("cells", len(cells))
	if err != nil {
		merge.SetAttr("error", err.Error())
	}
	merge.End()
	if err != nil {
		return nil, err
	}
	return results, nil
}

// MapTracked runs fn(0..n-1) across the pool with Pool.Map's semantics
// while reporting each item to the engine's live Progress as an in-flight
// cell in the given phase — so campaigns that do not go through RunCells
// (the attack harness's Monte-Carlo trials) stay visible on /progress.
func (e *Engine) MapTracked(n int, phase string, fn func(i int) error) error {
	e.prog.addBatch(n)
	return e.Pool.MapW(n, func(i, w int) error {
		handle, track := e.prog.begin(i, w)
		defer e.prog.end(handle)
		track(phase)
		return fn(i)
	})
}

// runCell is the traced per-cell pipeline: cached image (cache-lookup and,
// on a miss, build spans inside ImageSpan), process load, execution. It is
// behaviorally identical to Run — the span and track arguments only observe.
func (e *Engine) runCell(c *Cell, sp *telemetry.Span, track func(phase string)) (*vm.Result, error) {
	img, hit, err := e.Cache.ImageSpan(c.Module, c.Cfg, c.Seed, sp, track)
	if err != nil {
		return nil, err
	}
	if hit {
		sp.SetAttr("cache", "hit")
	} else {
		sp.SetAttr("cache", "miss")
	}
	track("load")
	ls := sp.Child("load", 0)
	proc, err := sim.NewProcessFromImage(img, c.Seed, e.Obs)
	ls.End()
	if err != nil {
		return nil, err
	}
	track("execute")
	return sim.ExecProcessSpan(proc, c.Prof, e.Obs, sp)
}
