package exec

import (
	"sort"
	"sync"
	"time"

	"r2c/internal/telemetry"
)

// progressState is the engine's live view of the run, feeding the ops
// endpoint's /progress. It is write-beside state in the same sense as
// telemetry: cells update it as they move through the pipeline, readers only
// snapshot it, and nothing in the simulation ever reads it back.
type progressState struct {
	mu       sync.Mutex
	start    time.Time
	total    int
	done     int
	inflight map[*inflightCell]struct{}
}

type inflightCell struct {
	index   int
	worker  int
	phase   string
	started time.Time
}

// addBatch registers n more cells as submitted.
func (p *progressState) addBatch(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.start.IsZero() {
		p.start = time.Now()
	}
	p.total += n
}

// begin marks cell i as picked up by worker w. It returns the in-flight
// handle (cells are keyed by handle, not index, so overlapping batches with
// colliding indices stay distinct) plus the phase-update hook handed down the
// pipeline.
func (p *progressState) begin(i, w int) (*inflightCell, func(phase string)) {
	c := &inflightCell{index: i, worker: w, phase: "queued", started: time.Now()}
	p.mu.Lock()
	if p.inflight == nil {
		p.inflight = make(map[*inflightCell]struct{})
	}
	p.inflight[c] = struct{}{}
	p.mu.Unlock()
	return c, func(phase string) {
		p.mu.Lock()
		c.phase = phase
		p.mu.Unlock()
	}
}

// end marks the cell as finished.
func (p *progressState) end(c *inflightCell) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.inflight, c)
	p.done++
}

// CellStatus describes one in-flight cell in a Progress snapshot.
type CellStatus struct {
	Index     int    `json:"index"`
	Worker    int    `json:"worker"`
	Phase     string `json:"phase"`
	ElapsedMs int64  `json:"elapsed_ms"`
}

// Progress is the point-in-time run snapshot served at /progress. Counts are
// cumulative over the engine's lifetime, spanning every RunCells batch.
type Progress struct {
	Done     int          `json:"done"`
	Total    int          `json:"total"`
	InFlight []CellStatus `json:"in_flight"`
	// CacheHits/CacheMisses mirror the engine cache; CacheHitRate is
	// hits/(hits+misses) as a percentage string, or "n/a" before any
	// cacheable lookup.
	CacheHits    uint64 `json:"cache_hits"`
	CacheMisses  uint64 `json:"cache_misses"`
	CacheHitRate string `json:"cache_hit_rate"`
	ElapsedMs    int64  `json:"elapsed_ms"`
	// EtaMs linearly extrapolates the remaining cells from the per-cell
	// throughput so far; -1 while no cell has finished. Eta is the human
	// rendering of the same value — "n/a" while there is no estimate —
	// so /progress consumers never see a sentinel or non-finite number.
	EtaMs int64  `json:"eta_ms"`
	Eta   string `json:"eta"`
}

// snapshot captures the current progress. now is time.Now, injectable for
// tests.
func (p *progressState) snapshot(now time.Time) Progress {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := Progress{Done: p.done, Total: p.total, EtaMs: -1, Eta: "n/a"}
	if !p.start.IsZero() {
		s.ElapsedMs = now.Sub(p.start).Milliseconds()
	}
	for c := range p.inflight {
		s.InFlight = append(s.InFlight, CellStatus{
			Index:     c.index,
			Worker:    c.worker,
			Phase:     c.phase,
			ElapsedMs: now.Sub(c.started).Milliseconds(),
		})
	}
	sort.Slice(s.InFlight, func(a, b int) bool { return s.InFlight[a].Index < s.InFlight[b].Index })
	if p.done > 0 && p.total > p.done && s.ElapsedMs > 0 {
		s.EtaMs = s.ElapsedMs * int64(p.total-p.done) / int64(p.done)
	}
	s.Eta = telemetry.FormatETA(float64(s.EtaMs))
	return s
}

// Progress returns the engine's live run snapshot: cumulative cell counts,
// the cells currently in flight with their pipeline phase and worker lane,
// cache effectiveness, and a throughput-extrapolated ETA. Safe to call from
// any goroutine while cells run; intended as the -listen /progress source.
func (e *Engine) Progress() Progress {
	s := e.prog.snapshot(time.Now())
	hits, misses, _ := e.Cache.Stats()
	s.CacheHits, s.CacheMisses = hits, misses
	s.CacheHitRate = HitRateString(hits, misses)
	return s
}
