package exec_test

import (
	"context"
	"testing"
	"time"

	"r2c/internal/exec"
	"r2c/internal/telemetry"
)

func TestParseFaultPlanSlow(t *testing.T) {
	p, err := exec.ParseFaultPlan("2:slow, *:slow=50ms, 4@1:slow=10ms")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		cell, attempt int
		want          time.Duration
	}{
		{2, 0, exec.DefaultSlowDelay}, // bare slow: default delay
		{2, 3, exec.DefaultSlowDelay},
		{4, 1, 10 * time.Millisecond}, // exact (cell, attempt) wins
		{4, 0, 50 * time.Millisecond}, // falls through to the wildcard
		{9, 2, 50 * time.Millisecond}, // wildcard covers every other cell
	} {
		if got := p.At(tc.cell, tc.attempt); got != exec.FaultSlow {
			t.Errorf("At(%d, %d) = %v, want slow", tc.cell, tc.attempt, got)
		}
		if got := p.Delay(tc.cell, tc.attempt); got != tc.want {
			t.Errorf("Delay(%d, %d) = %v, want %v", tc.cell, tc.attempt, got, tc.want)
		}
	}
	// Delay is zero for non-slow faults and nil plans.
	p2, err := exec.ParseFaultPlan("1:panic")
	if err != nil {
		t.Fatal(err)
	}
	if d := p2.Delay(1, 0); d != 0 {
		t.Errorf("Delay of a panic fault = %v, want 0", d)
	}
	var nilPlan *exec.FaultPlan
	if d := nilPlan.Delay(0, 0); d != 0 {
		t.Errorf("nil plan Delay = %v, want 0", d)
	}

	for _, bad := range []string{"3:slow=0s", "3:slow=-5ms", "3:slow=x", "3:build-fail=50ms", "*:"} {
		if _, err := exec.ParseFaultPlan(bad); err == nil {
			t.Errorf("spec %q parsed successfully", bad)
		}
	}
}

// TestSlowFaultDelaysWithoutFailing pins the property the regression gate's
// end-to-end check relies on: an injected slowdown stretches wall time (the
// latency histograms see it) but leaves results and modeled numbers exactly
// as a clean run produces them.
func TestSlowFaultDelaysWithoutFailing(t *testing.T) {
	m := testModule(t)
	n := 3

	clean := exec.New(1, nil)
	want, err := clean.RunCells(context.Background(), cellsN(m, n))
	if err != nil {
		t.Fatal(err)
	}

	obs := &telemetry.Observer{Registry: telemetry.NewRegistry()}
	eng := exec.New(1, obs)
	eng.Faults = new(exec.FaultPlan).SetSlowAll(5 * time.Millisecond)
	start := time.Now()
	got, err := eng.RunCells(context.Background(), cellsN(m, n))
	if err != nil {
		t.Fatalf("slowed run failed: %v", err)
	}
	minDelay := time.Duration(n) * 5 * time.Millisecond
	if elapsed := time.Since(start); elapsed < minDelay {
		t.Errorf("run took %v, want >= %v of injected delay", elapsed, minDelay)
	}
	for i := range want {
		if got[i] == nil || got[i].Cycles != want[i].Cycles || got[i].Instructions != want[i].Instructions {
			t.Errorf("cell %d: slowed result differs from clean run", i)
		}
	}
	snap := obs.Registry.Snapshot()
	if h, ok := snap.Histograms["exec.cell.seconds"]; !ok || h.Count != uint64(n) {
		t.Errorf("exec.cell.seconds histogram missing or short: %+v", snap.Histograms["exec.cell.seconds"])
	}
}
