package exec_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"r2c/internal/defense"
	"r2c/internal/exec"
	"r2c/internal/telemetry"
	"r2c/internal/tir"
	"r2c/internal/vm"
)

// spinModule builds a module whose entry loops forever — the runaway
// simulated program the fuel watchdog exists for.
func spinModule(t *testing.T) *tir.Module {
	t.Helper()
	mb := tir.NewModule("spin")
	fb := mb.NewFunc("main", 0)
	one := fb.Const(1)
	loop := fb.NewBlock()
	fb.SetBlock(0)
	fb.Br(loop)
	fb.SetBlock(loop)
	fb.Bin(tir.OpAdd, one, one)
	fb.Br(loop)
	mb.SetEntry("main")
	m, err := mb.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func cellsN(m *tir.Module, n int) []exec.Cell {
	cells := make([]exec.Cell, n)
	for i := range cells {
		cells[i] = exec.Cell{Module: m, Cfg: defense.R2CFull(), Seed: uint64(500 + i), Prof: vm.EPYCRome()}
	}
	return cells
}

// An infinite loop must trip the fuel limit and die with a typed
// CellTimeoutError well inside the wall-clock deadline, instead of hanging
// the sweep until the instruction budget (minutes) runs out.
func TestWatchdogFuelLimitKillsInfiniteLoop(t *testing.T) {
	eng := exec.New(1, nil)
	eng.CellFuel = 500_000
	eng.CellTimeout = 2 * time.Minute // backstop; fuel must fire first
	start := time.Now()
	results, err := eng.RunCells(context.Background(), cellsN(spinModule(t), 1))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("infinite loop completed successfully")
	}
	var te *exec.CellTimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("error %v is not a CellTimeoutError", err)
	}
	if te.Fuel != 500_000 || te.Timeout != 0 {
		t.Errorf("timeout error = fuel %d / deadline %v, want the fuel kill", te.Fuel, te.Timeout)
	}
	if !errors.Is(err, vm.ErrFuelExhausted) {
		t.Errorf("error %v does not wrap vm.ErrFuelExhausted", err)
	}
	if results[0] != nil {
		t.Error("killed cell left a result")
	}
	if elapsed > time.Minute {
		t.Errorf("fuel kill took %v — the watchdog did not bound the run", elapsed)
	}
}

// A stalled cell (a genuine hang, not a busy loop) must die on the
// wall-clock deadline.
func TestWatchdogWallClockKillsStall(t *testing.T) {
	eng := exec.New(1, nil)
	eng.CellTimeout = 50 * time.Millisecond
	eng.Faults = (&exec.FaultPlan{}).SetAll(0, exec.FaultStall)
	start := time.Now()
	_, err := eng.RunCells(context.Background(), cellsN(testModule(t), 1))
	if err == nil {
		t.Fatal("stalled cell completed successfully")
	}
	var te *exec.CellTimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("error %v is not a CellTimeoutError", err)
	}
	if te.Timeout != 50*time.Millisecond {
		t.Errorf("deadline = %v, want 50ms", te.Timeout)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("stall kill took %v", elapsed)
	}
}

// One panicking cell must degrade to a *PanicError in its slot while every
// other cell completes — with surviving results byte-identical to a clean
// serial run, at both widths.
func TestPanicIsolationDeterministicAcrossWidths(t *testing.T) {
	const n, bad = 6, 2
	m := testModule(t)

	clean := exec.New(1, nil)
	want, err := clean.RunCells(context.Background(), cellsN(m, n))
	if err != nil {
		t.Fatal(err)
	}

	for _, jobs := range []int{1, 8} {
		eng := exec.New(jobs, nil)
		eng.Faults = (&exec.FaultPlan{}).SetAll(bad, exec.FaultPanic)
		results, err := eng.RunCells(context.Background(), cellsN(m, n))
		if err == nil {
			t.Fatalf("jobs=%d: injected panic did not surface", jobs)
		}
		be, ok := exec.AsBatchError(err)
		if !ok {
			t.Fatalf("jobs=%d: error %v is not a BatchError", jobs, err)
		}
		if got := be.FailedIndices(); !reflect.DeepEqual(got, []int{bad}) {
			t.Fatalf("jobs=%d: failed indices %v, want [%d]", jobs, got, bad)
		}
		var pe *exec.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("jobs=%d: error %v is not a PanicError", jobs, err)
		}
		if len(pe.Stack) == 0 {
			t.Errorf("jobs=%d: panic error carries no stack", jobs)
		}
		if !strings.Contains(err.Error(), "worker panic") {
			t.Errorf("jobs=%d: error %q does not mention the panic", jobs, err)
		}
		for i := 0; i < n; i++ {
			if i == bad {
				if results[i] != nil {
					t.Errorf("jobs=%d: panicked cell %d left a result", jobs, i)
				}
				continue
			}
			if !reflect.DeepEqual(results[i], want[i]) {
				t.Errorf("jobs=%d: surviving cell %d diverges from the clean run", jobs, i)
			}
		}
	}
}

// A fault injected only at attempt 0 must be healed by one retry; a fault
// injected at every attempt must exhaust the retry budget and report the
// last attempt's failure.
func TestRetryHealsTransientFault(t *testing.T) {
	m := testModule(t)

	eng := exec.New(1, nil)
	eng.Retries = 1
	eng.Faults = (&exec.FaultPlan{}).Set(0, 0, exec.FaultExecFail)
	results, err := eng.RunCells(context.Background(), cellsN(m, 1))
	if err != nil {
		t.Fatalf("retry did not heal the transient fault: %v", err)
	}
	if results[0] == nil {
		t.Fatal("healed cell left no result")
	}

	eng2 := exec.New(1, nil)
	eng2.Retries = 2
	eng2.Faults = (&exec.FaultPlan{}).SetAll(0, exec.FaultExecFail)
	_, err = eng2.RunCells(context.Background(), cellsN(m, 1))
	if err == nil {
		t.Fatal("persistent fault healed unexpectedly")
	}
	if !strings.Contains(err.Error(), "attempt 2") {
		t.Errorf("error %q does not reflect the final attempt", err)
	}
}

// Retry seeds must derive from the content key alone — deterministic across
// processes and distinct per attempt.
func TestRetrySeedDeterministic(t *testing.T) {
	k := exec.Key{Module: "abc", Config: "cfg", Seed: 7}
	if exec.RetrySeed(k, 1) != exec.RetrySeed(k, 1) {
		t.Error("RetrySeed is not deterministic")
	}
	if exec.RetrySeed(k, 1) == exec.RetrySeed(k, 2) {
		t.Error("RetrySeed collides across attempts")
	}
	k2 := k
	k2.Seed = 8
	if exec.RetrySeed(k, 1) == exec.RetrySeed(k2, 1) {
		t.Error("RetrySeed collides across cell seeds")
	}
}

// A journaled run must replay — not re-execute — every completed cell in a
// resumed engine, with byte-identical results, and tolerate the torn final
// line a kill mid-append leaves behind.
func TestJournalResumeReplaysCompletedCells(t *testing.T) {
	const n = 3
	m := testModule(t)
	path := filepath.Join(t.TempDir(), "run.journal")

	j1, err := exec.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	eng1 := exec.New(2, nil)
	eng1.Journal = j1
	want, err := eng1.RunCells(context.Background(), cellsN(m, n))
	if err != nil {
		t.Fatal(err)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a kill mid-append: a torn trailing line must not poison the
	// intact entries before it.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":{"module":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := exec.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != n {
		t.Fatalf("reloaded journal has %d entries, want %d", j2.Len(), n)
	}
	eng2 := exec.New(2, nil)
	eng2.Journal = j2
	got, err := eng2.RunCells(context.Background(), cellsN(m, n))
	if err != nil {
		t.Fatal(err)
	}
	if j2.Hits() != n {
		t.Errorf("resume executed cells it should have replayed: %d/%d journal hits", j2.Hits(), n)
	}
	if hits, misses, _ := eng2.Cache.Stats(); hits+misses != 0 {
		t.Errorf("resume touched the build cache (%d hits / %d misses)", hits, misses)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("replayed results diverge from the original run")
	}
}

// The serial (width 1) path must report the same pool gauges the parallel
// path does.
func TestSerialPoolSetsGauges(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := exec.NewPool(1, &telemetry.Observer{Registry: reg})
	if err := p.Map(context.Background(), 3, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if v := reg.Gauge("exec.pool.workers").Value(); v != 1 {
		t.Errorf("exec.pool.workers = %v, want 1", v)
	}
	if v := reg.Gauge("exec.pool.queue_depth").Value(); v != 0 {
		t.Errorf("exec.pool.queue_depth = %v, want 0 after drain", v)
	}
}

// A cancelled context stops dispatch: no item runs, every slot reports the
// cancellation.
func TestPoolHonorsCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, jobs := range []int{1, 4} {
		p := exec.NewPool(jobs, nil)
		ran := false
		err := p.Map(ctx, 5, func(i int) error { ran = true; return nil })
		if !errors.Is(err, context.Canceled) {
			t.Errorf("jobs=%d: err = %v, want context.Canceled", jobs, err)
		}
		if ran {
			t.Errorf("jobs=%d: item ran under a cancelled context", jobs)
		}
	}
}

func TestParseFaultPlan(t *testing.T) {
	p, err := exec.ParseFaultPlan("3:panic, 7@0:exec-fail,1@2:stall")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		cell, attempt int
		want          exec.FaultKind
	}{
		{3, 0, exec.FaultPanic},
		{3, 5, exec.FaultPanic}, // no @ATTEMPT → every attempt
		{7, 0, exec.FaultExecFail},
		{7, 1, exec.FaultNone},
		{1, 2, exec.FaultStall},
		{1, 0, exec.FaultNone},
		{0, 0, exec.FaultNone},
	} {
		if got := p.At(tc.cell, tc.attempt); got != tc.want {
			t.Errorf("At(%d, %d) = %v, want %v", tc.cell, tc.attempt, got, tc.want)
		}
	}
	if p.Len() != 3 {
		t.Errorf("Len = %d, want 3", p.Len())
	}

	var nilPlan *exec.FaultPlan
	if nilPlan.At(0, 0) != exec.FaultNone {
		t.Error("nil plan injected a fault")
	}
	if p, err := exec.ParseFaultPlan(""); p != nil || err != nil {
		t.Errorf("empty spec = (%v, %v), want (nil, nil)", p, err)
	}
	for _, bad := range []string{"x:panic", "3:bogus", "3", "-1:panic", "3@x:panic", "3@-2:panic"} {
		if _, err := exec.ParseFaultPlan(bad); err == nil {
			t.Errorf("spec %q parsed successfully", bad)
		}
	}
}

// A batch with several failures must report all of them, index-ordered, and
// keep the legacy contract: errors.As finds the lowest-index CellError.
func TestBatchErrorAggregatesFailures(t *testing.T) {
	m := testModule(t)
	eng := exec.New(2, nil)
	eng.Faults = (&exec.FaultPlan{}).SetAll(1, exec.FaultBuildFail).SetAll(3, exec.FaultExecFail)
	results, err := eng.RunCells(context.Background(), cellsN(m, 4))
	be, ok := exec.AsBatchError(err)
	if !ok {
		t.Fatalf("error %v is not a BatchError", err)
	}
	if got := be.FailedIndices(); !reflect.DeepEqual(got, []int{1, 3}) {
		t.Fatalf("failed indices %v, want [1 3]", got)
	}
	if i, _ := exec.SplitError(err); i != 1 {
		t.Errorf("SplitError index = %d, want the lowest failing index 1", i)
	}
	var ce *exec.CellError
	if !errors.As(err, &ce) || ce.Index != 1 {
		t.Errorf("errors.As CellError = %+v, want index 1", ce)
	}
	if results[0] == nil || results[2] == nil {
		t.Error("surviving cells left no results")
	}
	if !strings.Contains(be.Summary(), "2/4 cells failed") {
		t.Errorf("summary %q lacks the failure count", be.Summary())
	}
}
