package exec_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"r2c/internal/defense"
	"r2c/internal/exec"
	"r2c/internal/sim"
	"r2c/internal/tir"
	"r2c/internal/vm"
	"r2c/internal/workload"
)

func testModule(t *testing.T) *tir.Module {
	t.Helper()
	b, ok := workload.ByName("nginx")
	if !ok {
		t.Fatal("nginx workload missing")
	}
	return b.Build(8)
}

// A second lookup with the same key must return the identical image object,
// not an equal rebuild.
func TestCacheHitReturnsIdenticalImage(t *testing.T) {
	c := exec.NewCache(nil)
	m := testModule(t)
	cfg := defense.R2CFull()

	img1, hit1, err := c.Image(m, cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	if hit1 {
		t.Error("first lookup reported a hit")
	}
	img2, hit2, err := c.Image(m, cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !hit2 {
		t.Error("second lookup missed")
	}
	if img1 != img2 {
		t.Error("cache hit returned a different image object")
	}
	if hits, misses, bypasses := c.Stats(); hits != 1 || misses != 1 || bypasses != 0 {
		t.Errorf("stats = %d/%d/%d, want 1/1/0", hits, misses, bypasses)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}

	// Content addressing: a different *tir.Module with identical content maps
	// to the same entry.
	if _, hit, err := c.Image(testModule(t), cfg, 9); err != nil || !hit {
		t.Errorf("content-identical module missed (hit=%v err=%v)", hit, err)
	}
}

// Distinct seeds and distinct configs must never collide.
func TestCacheKeysDoNotCollide(t *testing.T) {
	c := exec.NewCache(nil)
	m := testModule(t)
	seen := map[any]bool{}
	for _, cfg := range []defense.Config{defense.Off(), defense.R2CFull()} {
		for seed := uint64(1); seed <= 2; seed++ {
			img, hit, err := c.Image(m, cfg, seed)
			if err != nil {
				t.Fatal(err)
			}
			if hit {
				t.Errorf("%s seed %d: unexpected hit", cfg.Name, seed)
			}
			if seen[img] {
				t.Errorf("%s seed %d: image shared across distinct keys", cfg.Name, seed)
			}
			seen[img] = true
		}
	}
	if c.Len() != 4 {
		t.Errorf("Len = %d, want 4", c.Len())
	}
}

// A process loaded from a cached image must run bit-identically to one from
// a fresh, uncached build.
func TestCachedProcessMatchesFreshBuild(t *testing.T) {
	m := testModule(t)
	cfg := defense.R2CFull()
	eng := exec.New(1, nil)

	// First engine run populates the cache; the second is served from it.
	first, firstProc, err := eng.Run(m, cfg, 7, vm.EPYCRome())
	if err != nil {
		t.Fatal(err)
	}
	cached, cachedProc, err := eng.Run(m, cfg, 7, vm.EPYCRome())
	if err != nil {
		t.Fatal(err)
	}
	if hits, _, _ := eng.Cache.Stats(); hits == 0 {
		t.Fatal("second run did not hit the cache")
	}
	fresh, freshProc, err := sim.Run(m, cfg, 7, vm.EPYCRome())
	if err != nil {
		t.Fatal(err)
	}

	for _, pair := range []struct {
		name string
		got  *vm.Result
	}{{"first", first}, {"cached", cached}} {
		if pair.got.Cycles != fresh.Cycles {
			t.Errorf("%s: cycles %0.f, fresh build %0.f", pair.name, pair.got.Cycles, fresh.Cycles)
		}
		if pair.got.Instructions != fresh.Instructions {
			t.Errorf("%s: instructions %d, fresh build %d", pair.name, pair.got.Instructions, fresh.Instructions)
		}
		if !reflect.DeepEqual(pair.got.Output, fresh.Output) {
			t.Errorf("%s: program output diverges from fresh build", pair.name)
		}
		if pair.got.MaxRSSBytes != fresh.MaxRSSBytes {
			t.Errorf("%s: maxrss %d, fresh build %d", pair.name, pair.got.MaxRSSBytes, fresh.MaxRSSBytes)
		}
	}
	// Load-time randomness (guard pages, BTDP values) derives from the run
	// seed, not from whether the image was cached.
	if !reflect.DeepEqual(firstProc.GuardPages, freshProc.GuardPages) ||
		!reflect.DeepEqual(cachedProc.GuardPages, freshProc.GuardPages) {
		t.Error("guard pages diverge from fresh build")
	}
	if !reflect.DeepEqual(firstProc.BTDPValues, freshProc.BTDPValues) ||
		!reflect.DeepEqual(cachedProc.BTDPValues, freshProc.BTDPValues) {
		t.Error("BTDP values diverge from fresh build")
	}
	if firstProc == cachedProc {
		t.Error("engine returned a shared process for two runs")
	}
}

// Configs whose processes may patch the image after loading (the dynamic-
// BTRA ablation) must never share builds.
func TestCacheBypassesImageMutatingConfigs(t *testing.T) {
	c := exec.NewCache(nil)
	m := testModule(t)
	cfg := defense.R2CFull()
	cfg.Name = "r2c-dynamic-btras"
	cfg.InsecureDynamicBTRAs = true

	img1, hit1, err := c.Image(m, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	img2, hit2, err := c.Image(m, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if hit1 || hit2 {
		t.Error("uncacheable config reported a hit")
	}
	if img1 == img2 {
		t.Error("uncacheable config shared an image")
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d, want 0", c.Len())
	}
	if _, _, bypasses := c.Stats(); bypasses != 2 {
		t.Errorf("bypasses = %d, want 2", bypasses)
	}
}

// Map must run every index exactly once, merge by index, and report the
// lowest-index failure — at any width.
func TestPoolMapDeterministic(t *testing.T) {
	const n = 300
	for _, jobs := range []int{1, 8} {
		p := exec.NewPool(jobs, nil)
		out := make([]int, n)
		var calls atomic.Int64
		err := p.Map(context.Background(), n, func(i int) error {
			calls.Add(1)
			out[i] = i * i
			return nil
		})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if calls.Load() != n {
			t.Errorf("jobs=%d: %d calls, want %d", jobs, calls.Load(), n)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("jobs=%d: slot %d = %d", jobs, i, v)
			}
		}

		// Failures: every index still runs, and the lowest failing index wins
		// regardless of scheduling.
		calls.Store(0)
		err = p.Map(context.Background(), n, func(i int) error {
			calls.Add(1)
			if i%7 == 3 {
				return fmt.Errorf("fail %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail 3" {
			t.Errorf("jobs=%d: err = %v, want fail 3", jobs, err)
		}
		if calls.Load() != n {
			t.Errorf("jobs=%d: %d calls after failure, want %d", jobs, calls.Load(), n)
		}
	}
}

// RunCells wraps failures as CellError with the failing cell's index, so
// drivers can reconstruct exact per-cell error context.
func TestRunCellsCellError(t *testing.T) {
	m := testModule(t)
	eng := exec.New(2, nil)
	bad := &tir.Module{Name: "bad", Entry: "missing"}
	cells := []exec.Cell{
		{Module: m, Cfg: defense.Off(), Seed: 1, Prof: vm.EPYCRome()},
		{Module: bad, Cfg: defense.Off(), Seed: 1, Prof: vm.EPYCRome()},
	}
	_, err := eng.RunCells(context.Background(), cells)
	if err == nil {
		t.Fatal("module without entry function built successfully")
	}
	var ce *exec.CellError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v is not a CellError", err)
	}
	if i, cause := exec.SplitError(err); i != 1 || cause == nil {
		t.Errorf("SplitError = (%d, %v), want index 1", i, cause)
	}
}
