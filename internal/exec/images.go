package exec

import (
	"context"

	"r2c/internal/defense"
	"r2c/internal/image"
	"r2c/internal/tir"
)

// Image returns the linked image for (m, cfg, seed) through the engine's
// content-addressed build cache, without the batch span/progress scaffolding
// BuildImages wraps around a fan-out. It is the single-build path the
// serving fleet's live re-diversification uses: a quarantined variant's
// replacement is one fresh-seed build, and the fresh seed makes it a cache
// miss by construction, so the returned hit flag reports whether this exact
// re-diversification had already been built elsewhere.
func (e *Engine) Image(m *tir.Module, cfg defense.Config, seed uint64) (*image.Image, bool, error) {
	return e.Cache.Image(m, cfg, seed)
}

// BuildImages fans len(seeds) image builds of (m, cfg, seeds[i]) across the
// pool and returns the linked images in seed order. It is the build-only
// sibling of RunCells for callers that never execute the variants — the
// diversity auditor links N re-diversified images and analyzes their
// layouts. Builds share the content-addressed cache (re-auditing a config
// the sweep already built costs nothing), appear on /progress as in-flight
// cells in the "audit-build" phase, and trace as an "exec.images" root span
// with one "variant" child per index, ids derived from the index so the
// span tree is identical at any -jobs width.
//
// Every seed builds even when another fails; failed slots stay nil and the
// returned error is a *BatchError listing every failure in index order
// (panics included, via the pool's isolation), mirroring RunCells'
// partial-result contract.
func (e *Engine) BuildImages(ctx context.Context, m *tir.Module, cfg defense.Config, seeds []uint64) ([]*image.Image, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	images := make([]*image.Image, len(seeds))
	batch := e.Obs.StartSpan("exec.images", e.batchSeq.Add(1))
	batch.SetAttr("variants", len(seeds))
	batch.SetAttr("config", cfg.Name)
	defer batch.End()
	e.prog.addBatch(len(seeds))
	timer := e.Obs.Timer("exec.images.build")
	errs := e.Pool.MapErrs(ctx, len(seeds), func(i, w int) error {
		stop := timer.Time()
		defer stop()
		handle, track := e.prog.begin(i, w)
		defer e.prog.end(handle)
		track("audit-build")
		sp := batch.Child("variant", uint64(i))
		defer sp.End()
		sp.SetTID(w + 1)
		sp.SetAttr("index", i)
		sp.SetAttr("seed", seeds[i])
		img, hit, err := e.Cache.ImageSpan(m, cfg, seeds[i], sp, track)
		if err != nil {
			sp.SetAttr("status", "failed")
			sp.SetAttr("error", err.Error())
			return err
		}
		if hit {
			sp.SetAttr("cache", "hit")
		} else {
			sp.SetAttr("cache", "miss")
		}
		sp.SetAttr("status", "ok")
		images[i] = img
		return nil
	})
	var failures []*CellError
	for i, err := range errs {
		if err == nil {
			continue
		}
		ce, ok := err.(*CellError)
		if !ok {
			ce = &CellError{Index: i, Err: err}
		}
		failures = append(failures, ce)
		e.Obs.Counter("exec.images.failures").Inc()
	}
	if len(failures) > 0 {
		return images, &BatchError{Total: len(seeds), Failures: failures}
	}
	return images, nil
}
