package exec

import (
	"context"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"r2c/internal/telemetry"
)

// Pool is a bounded worker pool for independent work items. Items are
// identified by index; callers write results into index-addressed slots, so
// the merged output is in submission order no matter how the scheduler
// interleaves workers — the property that keeps a -jobs 8 sweep byte-
// identical to -jobs 1.
type Pool struct {
	// Jobs is the worker count: 0 means GOMAXPROCS, 1 runs serially on the
	// caller's goroutine.
	Jobs int
	// Obs receives the queue-depth gauge ("exec.pool.queue_depth") and the
	// worker-count gauge ("exec.pool.workers"). Nil disables telemetry.
	Obs *telemetry.Observer
}

// NewPool returns a pool with the given width (0 = GOMAXPROCS).
func NewPool(jobs int, obs *telemetry.Observer) *Pool {
	return &Pool{Jobs: jobs, Obs: obs}
}

// Width returns the effective worker count.
func (p *Pool) Width() int {
	if p == nil || p.Jobs <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p.Jobs
}

// Map runs fn(0..n-1) across the pool and blocks until every index has run.
// Every index runs even when another fails — partial execution would make
// "which cells ran" depend on scheduling — and the returned error is the
// failing cell with the lowest index, so error reporting is deterministic
// too. fn must be safe for concurrent invocation on distinct indices and
// should communicate results by writing to index-addressed storage.
func (p *Pool) Map(ctx context.Context, n int, fn func(i int) error) error {
	return p.MapW(ctx, n, func(i, _ int) error { return fn(i) })
}

// MapW is Map with the worker index (0..Width-1) passed alongside the item
// index, for instrumentation that wants to attribute work to lanes (span
// thread ids, per-worker progress). Which worker runs which item is a
// scheduling accident — results must never depend on w.
func (p *Pool) MapW(ctx context.Context, n int, fn func(i, w int) error) error {
	for _, err := range p.MapErrs(ctx, n, fn) {
		if err != nil {
			return err
		}
	}
	return nil
}

// safeCall runs fn(i, w) with a recover barrier: a panicking item becomes a
// *PanicError instead of killing the process, so one bad cell degrades to a
// reported failure while the rest of the sweep completes. The error message
// carries only the panic value (deterministic at any width); the goroutine
// stack rides along in the Stack field for forensics.
func safeCall(fn func(i, w int) error, i, w int) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return fn(i, w)
}

// MapErrs is the pool's core: it runs fn(0..n-1) and returns the per-index
// error slice, one slot per item, so callers that tolerate partial failure
// (RunCells' batch summary) see every failure instead of only the first.
// Panics in fn are isolated per item via safeCall. A cancelled ctx stops
// dispatch: items not yet started fail with ctx.Err() without running, while
// items already in flight finish on their own (the per-cell watchdog, not
// the pool, is responsible for interrupting them). ctx may be nil.
func (p *Pool) MapErrs(ctx context.Context, n int, fn func(i, w int) error) []error {
	if n <= 0 {
		return nil
	}
	width := p.Width()
	if width > n {
		width = n
	}

	var obs *telemetry.Observer
	if p != nil {
		obs = p.Obs
	}
	obs.Gauge("exec.pool.workers").Set(float64(width))
	depth := obs.Gauge("exec.pool.queue_depth")
	var pending atomic.Int64
	pending.Store(int64(n))
	depth.Set(float64(n))

	errs := make([]error, n)
	if width <= 1 {
		for i := 0; i < n; i++ {
			depth.Set(float64(pending.Add(-1)))
			if ctx != nil && ctx.Err() != nil {
				errs[i] = ctx.Err()
				continue
			}
			errs[i] = safeCall(fn, i, 0)
		}
		return errs
	}

	next := atomic.Int64{}
	var wg sync.WaitGroup
	wg.Add(width)
	for w := 0; w < width; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				depth.Set(float64(pending.Add(-1)))
				if ctx != nil && ctx.Err() != nil {
					errs[i] = ctx.Err()
					continue
				}
				errs[i] = safeCall(fn, i, w)
			}
		}(w)
	}
	wg.Wait()
	return errs
}
