package exec_test

import (
	"context"
	"reflect"
	"testing"

	"r2c/internal/defense"
	"r2c/internal/exec"
	"r2c/internal/telemetry"
	"r2c/internal/vm"
)

// spanShape is the scheduling-independent identity of one recorded span:
// content-derived ID, parent link, and name. Wall-clock fields and lane
// assignments (TID, worker attrs) legitimately vary between runs and widths.
type spanShape struct {
	ID, Parent uint64
	Name       string
}

// runCellsSpans executes n distinct-seed cells through a fresh engine at the
// given width and returns the recorded spans in deterministic (ID) order.
// Distinct seeds matter: under cache sharing, which requester runs the
// single-flight build closure is a scheduling accident, so only distinct
// build keys pin every build span to a deterministic parent cell.
func runCellsSpans(t *testing.T, jobs, n int) []telemetry.SpanData {
	t.Helper()
	col := &telemetry.SpanCollector{}
	eng := exec.New(jobs, &telemetry.Observer{Spans: col})
	m := testModule(t)
	cells := make([]exec.Cell, n)
	for i := range cells {
		cells[i] = exec.Cell{Module: m, Cfg: defense.R2CFull(), Seed: uint64(100 + i), Prof: vm.EPYCRome()}
	}
	if _, err := eng.RunCells(context.Background(), cells); err != nil {
		t.Fatal(err)
	}
	return col.Spans()
}

// The span tree of one batch must nest exactly as the pipeline executes:
// batch → cell → cache-lookup/build/load/sim.exec, with compile and link
// under the build span, and a final merge child under the batch.
func TestRunCellsSpanNesting(t *testing.T) {
	const n = 3
	spans := runCellsSpans(t, 1, n)
	byID := make(map[uint64]telemetry.SpanData, len(spans))
	for _, d := range spans {
		if _, dup := byID[d.ID]; dup {
			t.Fatalf("duplicate span ID %#x", d.ID)
		}
		byID[d.ID] = d
	}

	batchID := telemetry.SpanID(0, "exec.batch", 1)
	batch, ok := byID[batchID]
	if !ok || batch.Parent != 0 {
		t.Fatalf("missing root exec.batch span (id %#x)", batchID)
	}
	if batch.Attrs["cells"] != n {
		t.Errorf("batch cells attr = %v, want %d", batch.Attrs["cells"], n)
	}
	if _, ok := byID[telemetry.SpanID(batchID, "merge", 0)]; !ok {
		t.Error("missing merge span under the batch")
	}

	for i := 0; i < n; i++ {
		cellID := telemetry.SpanID(batchID, "cell", uint64(i))
		cell, ok := byID[cellID]
		if !ok {
			t.Fatalf("missing cell span %d", i)
		}
		if cell.Parent != batchID {
			t.Errorf("cell %d parent = %#x, want batch %#x", i, cell.Parent, batchID)
		}
		if cell.Attrs["index"] != i {
			t.Errorf("cell %d index attr = %v", i, cell.Attrs["index"])
		}
		if cell.Attrs["cache"] != "miss" {
			t.Errorf("cell %d cache attr = %v, want miss (distinct seeds)", i, cell.Attrs["cache"])
		}
		seed := uint64(100 + i)
		buildID := telemetry.SpanID(cellID, "build", seed)
		for _, want := range []struct {
			name   string
			id     uint64
			parent uint64
		}{
			{"cache-lookup", telemetry.SpanID(cellID, "cache-lookup", seed), cellID},
			{"build", buildID, cellID},
			{"sim.compile", telemetry.SpanID(buildID, "sim.compile", seed), buildID},
			{"sim.link", telemetry.SpanID(buildID, "sim.link", seed), buildID},
			{"load", telemetry.SpanID(cellID, "load", 0), cellID},
			{"sim.exec", telemetry.SpanID(cellID, "sim.exec", 0), cellID},
		} {
			d, ok := byID[want.id]
			if !ok {
				t.Errorf("cell %d: missing %s span", i, want.name)
				continue
			}
			if d.Name != want.name || d.Parent != want.parent {
				t.Errorf("cell %d: span %s = (name %q parent %#x), want (name %q parent %#x)",
					i, want.name, d.Name, d.Parent, want.name, want.parent)
			}
		}
	}
}

// The span tree's identity and structure must be independent of the worker
// width: -jobs 1 and -jobs 8 submissions of the same batch produce the same
// (ID, parent, name) set, the property that makes traces comparable across
// machines. Only wall-clock and lane fields may differ.
func TestRunCellsSpanTreeDeterministicAcrossWidths(t *testing.T) {
	const n = 8
	shapes := func(spans []telemetry.SpanData) []spanShape {
		out := make([]spanShape, len(spans))
		for i, d := range spans {
			out[i] = spanShape{ID: d.ID, Parent: d.Parent, Name: d.Name}
		}
		return out
	}
	serial := shapes(runCellsSpans(t, 1, n))
	parallel := shapes(runCellsSpans(t, 8, n))
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("span trees diverge between jobs=1 and jobs=8:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	// Sanity: the tree has the full pipeline, not a trivially-equal prefix.
	// batch + merge + n × (cell, cache-lookup, build, sim.compile, sim.link,
	// load, sim.exec).
	if want := 2 + 7*n; len(serial) != want {
		t.Errorf("recorded %d spans, want %d", len(serial), want)
	}
}
