package exec

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"r2c/internal/vm"
)

// journalKey identifies one journaled cell: the content-addressed build key
// plus the machine profile name. The profile matters because the same build
// produces different cycle counts on different modeled machines — Figure 6
// runs the identical image on four of them.
type journalKey struct {
	Key
	Prof string
}

// journalEntry is one JSONL line of the run journal.
type journalEntry struct {
	Key    Key        `json:"key"`
	Prof   string     `json:"prof"`
	Result *vm.Result `json:"result"`
}

// Journal persists completed cell results so an interrupted sweep can be
// resumed with -resume: cells whose (build key, machine profile) already
// appear in the journal replay their recorded Result without re-executing.
// Results are pure functions of the key (the same purity the build cache
// exploits), and JSON round-trips Go's float64 and integer fields exactly,
// so a replayed cell is byte-identical to a re-executed one in every table
// the drivers print.
//
// The format is append-only JSONL; a run killed mid-write leaves at most one
// truncated final line, which Open tolerates by discarding undecodable
// lines. Only successful cells are journaled — failures must re-execute.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	seen map[journalKey]*vm.Result
	hits uint64
}

// OpenJournal opens (creating if absent) the journal at path, loads every
// intact entry, and positions for appending new ones. The returned journal
// serves lookups from the loaded set, so a -resume run sees everything the
// killed run completed.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{f: f, seen: make(map[journalKey]*vm.Result)}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			// A kill mid-append leaves one torn trailing line; everything
			// before it is intact. Stop here and let appends follow it.
			break
		}
		if e.Result != nil {
			j.seen[journalKey{e.Key, e.Prof}] = e.Result
		}
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: read %s: %w", path, err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: %w", err)
	}
	j.w = bufio.NewWriter(f)
	return j, nil
}

// Len returns the number of loaded + recorded entries.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.seen)
}

// Hits returns how many lookups were served from the journal.
func (j *Journal) Hits() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.hits
}

// Lookup returns the journaled result for (k, prof), if any. Nil-safe.
func (j *Journal) Lookup(k Key, prof string) (*vm.Result, bool) {
	if j == nil {
		return nil, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	res, ok := j.seen[journalKey{k, prof}]
	if ok {
		j.hits++
	}
	return res, ok
}

// Record appends a completed cell's result and remembers it for Lookup.
// Each entry is written as one line and flushed, so at most the entry being
// written when the process dies is lost. Nil-safe.
func (j *Journal) Record(k Key, prof string, res *vm.Result) error {
	if j == nil {
		return nil
	}
	line, err := json.Marshal(journalEntry{Key: k, Prof: prof, Result: res})
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seen[journalKey{k, prof}] = res
	if _, err := j.w.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return j.w.Flush()
}

// Close flushes and closes the backing file. Nil-safe.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	ferr := j.w.Flush()
	cerr := j.f.Close()
	j.f = nil
	if ferr != nil {
		return ferr
	}
	return cerr
}
