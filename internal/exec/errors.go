package exec

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"
)

// PanicError is a worker panic converted to an ordinary error by the pool's
// recover barrier. The message is deterministic (the panic value only), so a
// panicking cell reports identically at any -jobs width; the goroutine stack
// — which legitimately varies with scheduling — rides along out-of-band for
// forensics.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack (debug.Stack at recover).
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("worker panic: %v", e.Value) }

// CellTimeoutError is a cell killed by the per-cell watchdog: either its
// wall-clock deadline (-cell-timeout) expired or its VM fuel allowance
// (-cell-fuel) ran out before the simulated program ended. Both mean the
// same thing operationally — a hung cell was put down instead of hanging
// the sweep.
type CellTimeoutError struct {
	Index int
	// Timeout is the wall-clock deadline that expired; zero for fuel kills.
	Timeout time.Duration
	// Fuel is the instruction allowance that ran out; zero for deadline kills.
	Fuel uint64
	// Err is the underlying cause (context.DeadlineExceeded or an error
	// wrapping vm.ErrFuelExhausted).
	Err error
}

func (e *CellTimeoutError) Error() string {
	if e.Timeout > 0 {
		return fmt.Sprintf("watchdog: exceeded %v wall-clock deadline", e.Timeout)
	}
	return fmt.Sprintf("watchdog: exceeded %d-instruction fuel limit", e.Fuel)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *CellTimeoutError) Unwrap() error { return e.Err }

// BatchError aggregates every failed cell of one RunCells batch. RunCells
// completes the whole batch and returns partial results alongside a
// *BatchError, so one bad cell degrades to a reported failure instead of
// discarding its siblings' work. Failures are ordered by cell index, and
// Unwrap exposes the lowest-index *CellError — preserving the pre-existing
// contract that errors.As/SplitError on a RunCells error find the first
// failing cell.
type BatchError struct {
	// Total is the batch size; Failures lists the cells that failed, in
	// index order, each a *CellError wrapping the final per-cell cause.
	Total    int
	Failures []*CellError
}

func (e *BatchError) Error() string {
	if len(e.Failures) == 1 {
		return fmt.Sprintf("%d/%d cells failed: %v", 1, e.Total, e.Failures[0])
	}
	return fmt.Sprintf("%d/%d cells failed (first: %v)", len(e.Failures), e.Total, e.Failures[0])
}

// Unwrap exposes the lowest-index cell failure.
func (e *BatchError) Unwrap() error { return e.Failures[0] }

// Summary renders the multi-line failed-cell report the harnesses print
// after a partially-failed sweep: one line per failed cell, index-ordered
// and scheduling-independent.
func (e *BatchError) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d/%d cells failed:", len(e.Failures), e.Total)
	for _, f := range e.Failures {
		fmt.Fprintf(&b, "\n  %v", f)
	}
	return b.String()
}

// FailedIndices returns the failing cell indices in ascending order.
func (e *BatchError) FailedIndices() []int {
	idx := make([]int, len(e.Failures))
	for i, f := range e.Failures {
		idx[i] = f.Index
	}
	sort.Ints(idx)
	return idx
}

// AsBatchError extracts a *BatchError from a (possibly wrapped) error chain.
func AsBatchError(err error) (*BatchError, bool) {
	var be *BatchError
	ok := errors.As(err, &be)
	return be, ok
}
