// Package perf is the committed-performance layer: a versioned baseline
// schema (BENCH_<label>.json), harvesting from a telemetry snapshot, and a
// Judge that diffs a fresh run against a committed baseline under
// configurable noise thresholds — the mechanism that turns "this PR made
// figure6 3% slower" from a claim into a CI-checkable fact.
//
// A baseline separates two metric classes. Deterministic metrics (modeled
// cycle counts, overhead geomeans, call counts) are pure functions of the
// tree and the run parameters: they are byte-stable across -jobs widths and
// machines, so any drift beyond a tiny epsilon is a real behavior change.
// Timing metrics (wall-clock latency quantiles per pipeline phase) are
// machine- and load-dependent: they gate only under generous thresholds,
// and drop to advisory when the baseline was recorded on a different
// environment.
package perf

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"r2c/internal/telemetry"
)

// SchemaVersion is the current baseline schema. Load refuses files with a
// different version rather than guessing at field semantics.
const SchemaVersion = 1

// Metric classes.
const (
	// ClassDeterministic marks metrics that are pure functions of the tree
	// and run parameters (modeled cycles, geomean overheads, counts).
	ClassDeterministic = "deterministic"
	// ClassTiming marks wall-clock metrics (latency quantiles).
	ClassTiming = "timing"
)

// Directions for Metric.Better.
const (
	// BetterLower means a smaller value is an improvement (cycles, latency,
	// overhead percent).
	BetterLower = "lower"
	// BetterHigher means a larger value is an improvement (detection rate).
	BetterHigher = "higher"
	// BetterExact means the value is a characteristic, not a score: any
	// drift beyond threshold is a mismatch (call counts, cell counts).
	BetterExact = "exact"
)

// Metric is one recorded scalar.
type Metric struct {
	Value float64 `json:"value"`
	// Class is ClassDeterministic or ClassTiming.
	Class string `json:"class"`
	// Better is the improvement direction: BetterLower, BetterHigher or
	// BetterExact.
	Better string `json:"better"`
	Unit   string `json:"unit,omitempty"`
}

// Phase is the latency distribution summary of one pipeline phase,
// harvested from its log-bucketed histogram. Quantiles are in seconds.
type Phase struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50_s"`
	P90   float64 `json:"p90_s"`
	P99   float64 `json:"p99_s"`
	Mean  float64 `json:"mean_s"`
}

// Baseline is one committed performance snapshot: the BENCH_<label>.json
// schema.
type Baseline struct {
	Schema     int        `json:"schema"`
	Label      string     `json:"label"`
	Provenance Provenance `json:"provenance"`
	// Params records the run parameters the numbers depend on (scale,
	// runs, trials); -compare adopts them so a comparison re-runs the
	// baseline's exact configuration.
	Params map[string]string `json:"params,omitempty"`
	// Metrics maps canonical telemetry keys to recorded values.
	Metrics map[string]Metric `json:"metrics"`
	// Phases maps latency-histogram keys to their quantile summaries.
	Phases map[string]Phase `json:"phases,omitempty"`
}

// cycleHist is the deterministic per-run cycle-count histogram the engine
// records in its ordered merge loop.
const cycleHist = "exec.run.cycles"

// detCounters are the registry counters harvested as deterministic metrics.
var detCounters = []string{"vm.instructions", "vm.calls"}

// FromSnapshot harvests a baseline from a telemetry snapshot:
//
//   - every "bench.*" gauge — the experiment drivers' deterministic
//     headline numbers (geomean overheads, detection rates, call medians);
//   - the exec.run.cycles histogram as deterministic count/sum/quantiles;
//   - the vm.instructions and vm.calls totals;
//   - every "*.seconds" histogram as a timing Phase summary.
func FromSnapshot(label string, snap *telemetry.Snapshot, prov Provenance, params map[string]string) *Baseline {
	b := &Baseline{
		Schema:     SchemaVersion,
		Label:      label,
		Provenance: prov,
		Params:     params,
		Metrics:    map[string]Metric{},
		Phases:     map[string]Phase{},
	}
	if snap == nil {
		return b
	}
	for k, v := range snap.Gauges {
		base, _ := telemetry.ParseKey(k)
		if !strings.HasPrefix(base, "bench.") {
			continue
		}
		better := BetterLower
		unit := ""
		switch {
		case strings.HasSuffix(base, "_pct"):
			unit = "pct"
		case strings.HasSuffix(base, "_rate"):
			better = BetterHigher
			unit = "ratio"
		case strings.HasSuffix(base, ".calls"):
			better = BetterExact
			unit = "count"
		}
		b.Metrics[k] = Metric{Value: v, Class: ClassDeterministic, Better: better, Unit: unit}
	}
	for _, name := range detCounters {
		if v, ok := snap.Counters[name]; ok {
			b.Metrics[name] = Metric{Value: float64(v), Class: ClassDeterministic, Better: BetterLower, Unit: "count"}
		}
	}
	for k, h := range snap.Histograms {
		base, _ := telemetry.ParseKey(k)
		if base == cycleHist {
			b.Metrics[k+".count"] = Metric{Value: float64(h.Count), Class: ClassDeterministic, Better: BetterExact, Unit: "count"}
			b.Metrics[k+".sum"] = Metric{Value: h.Sum, Class: ClassDeterministic, Better: BetterLower, Unit: "cycles"}
			b.Metrics[k+".p50"] = Metric{Value: h.Quantile(0.50), Class: ClassDeterministic, Better: BetterLower, Unit: "cycles"}
			b.Metrics[k+".p99"] = Metric{Value: h.Quantile(0.99), Class: ClassDeterministic, Better: BetterLower, Unit: "cycles"}
			continue
		}
		if strings.HasSuffix(base, ".seconds") && h.Count > 0 {
			b.Phases[k] = Phase{
				Count: h.Count,
				P50:   h.Quantile(0.50),
				P90:   h.Quantile(0.90),
				P99:   h.Quantile(0.99),
				Mean:  h.Sum / float64(h.Count),
			}
		}
	}
	return b
}

// Save writes the baseline as indented JSON. encoding/json sorts map keys,
// so the file is deterministic for given contents — a re-emitted identical
// baseline produces no git diff.
func (b *Baseline) Save(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("perf: marshal baseline: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("perf: write baseline: %w", err)
	}
	return nil
}

// Load reads and validates a baseline file.
func Load(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("perf: read baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("perf: parse baseline %s: %w", path, err)
	}
	if b.Schema != SchemaVersion {
		return nil, fmt.Errorf("perf: baseline %s has schema %d, this binary speaks %d (refresh the baseline or update the tool)", path, b.Schema, SchemaVersion)
	}
	if b.Label == "" {
		return nil, fmt.Errorf("perf: baseline %s has no label", path)
	}
	return &b, nil
}

// DeterministicJSON serializes the reproducible core of the baseline —
// schema, label, params, and the deterministic metrics only — with sorted
// keys. Two runs of the same tree at any -jobs width must produce
// byte-identical DeterministicJSON; the determinism gate pins exactly that.
// Timing phases and provenance (which may carry a -dirty git state) are
// excluded, as they legitimately differ between runs.
func (b *Baseline) DeterministicJSON() ([]byte, error) {
	det := struct {
		Schema  int               `json:"schema"`
		Label   string            `json:"label"`
		Params  map[string]string `json:"params,omitempty"`
		Metrics map[string]Metric `json:"metrics"`
	}{Schema: b.Schema, Label: b.Label, Params: b.Params, Metrics: map[string]Metric{}}
	for k, m := range b.Metrics {
		if m.Class == ClassDeterministic && !math.IsNaN(m.Value) {
			det.Metrics[k] = m
		}
	}
	return json.MarshalIndent(det, "", "  ")
}

// MetricKeys returns the baseline's metric keys in sorted order.
func (b *Baseline) MetricKeys() []string {
	keys := make([]string, 0, len(b.Metrics))
	for k := range b.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// PhaseKeys returns the baseline's phase keys in sorted order.
func (b *Baseline) PhaseKeys() []string {
	keys := make([]string, 0, len(b.Phases))
	for k := range b.Phases {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
