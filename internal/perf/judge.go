package perf

import (
	"fmt"
	"io"
	"math"
)

// Thresholds are the noise allowances the Judge applies, as percentages of
// the baseline value.
type Thresholds struct {
	// DeterministicPct is the allowed drift for deterministic metrics.
	// Modeled numbers should be bit-equal on an unchanged tree; the small
	// default absorbs last-ulp float differences across Go versions and
	// architectures, nothing more.
	DeterministicPct float64
	// TimingPct is the allowed slowdown for wall-clock quantiles. Wall
	// time is noisy (scheduler, thermal state, co-tenants), so the default
	// is generous: a genuine regression the gate should catch — a new
	// O(n²) pass, an accidental sleep, lost cache hits — moves latency by
	// integer factors, not tens of percent.
	TimingPct float64
	// TimingAdvisory reports timing regressions without failing the
	// comparison — the CI warn-only mode, and the automatic mode when the
	// baseline was recorded on a different environment.
	TimingAdvisory bool
}

// DefaultThresholds returns the standard noise allowances: 1% deterministic,
// 100% (2x) timing.
func DefaultThresholds() Thresholds {
	return Thresholds{DeterministicPct: 1.0, TimingPct: 100.0}
}

// Verdict is the per-metric outcome of a comparison.
type Verdict string

const (
	// VerdictOK: within threshold.
	VerdictOK Verdict = "ok"
	// VerdictRegressed: worse than the baseline beyond threshold.
	VerdictRegressed Verdict = "regressed"
	// VerdictImproved: better than the baseline beyond threshold — not a
	// failure, but a cue to refresh the committed baseline.
	VerdictImproved Verdict = "improved"
	// VerdictMismatch: an exact-class metric drifted; the runs are not
	// comparing the same work.
	VerdictMismatch Verdict = "mismatch"
	// VerdictMissing: present in the baseline, absent from the fresh run.
	VerdictMissing Verdict = "missing"
	// VerdictAdded: absent from the baseline, present in the fresh run.
	VerdictAdded Verdict = "added"
)

// Delta is one metric's comparison row.
type Delta struct {
	Name    string
	Class   string
	Unit    string
	Old     float64
	New     float64
	Pct     float64 // (new-old)/|old| * 100; NaN when old == 0
	Verdict Verdict
	// Advisory marks a verdict that is reported but does not gate
	// (timing rows under TimingAdvisory, added rows).
	Advisory bool
}

// Report is the full outcome of judging a fresh run against a baseline.
type Report struct {
	Label  string
	Deltas []Delta
	// EnvMismatch lists provenance differences between baseline and fresh
	// run; non-empty forces timing rows to advisory.
	EnvMismatch []string
	// TimingAdvisory records whether timing rows gated.
	TimingAdvisory bool
}

// Judge compares a fresh baseline against a committed one and produces the
// per-metric verdicts. old is the committed reference, fresh the new run.
func Judge(old, fresh *Baseline, thr Thresholds) *Report {
	if thr.DeterministicPct <= 0 {
		thr.DeterministicPct = DefaultThresholds().DeterministicPct
	}
	if thr.TimingPct <= 0 {
		thr.TimingPct = DefaultThresholds().TimingPct
	}
	r := &Report{Label: old.Label}
	r.EnvMismatch = old.Provenance.EnvDiff(fresh.Provenance)
	timingAdvisory := thr.TimingAdvisory || len(r.EnvMismatch) > 0
	r.TimingAdvisory = timingAdvisory

	for _, k := range old.MetricKeys() {
		om := old.Metrics[k]
		nm, ok := fresh.Metrics[k]
		if !ok {
			r.Deltas = append(r.Deltas, Delta{Name: k, Class: om.Class, Unit: om.Unit, Old: om.Value, New: math.NaN(), Verdict: VerdictMissing})
			continue
		}
		d := Delta{Name: k, Class: om.Class, Unit: om.Unit, Old: om.Value, New: nm.Value}
		d.Pct = pctDelta(om.Value, nm.Value)
		limit := thr.DeterministicPct
		if om.Class == ClassTiming {
			limit = thr.TimingPct
			d.Advisory = timingAdvisory
		}
		d.Verdict = verdictFor(om, nm.Value, d.Pct, limit)
		r.Deltas = append(r.Deltas, d)
	}
	for _, k := range fresh.MetricKeys() {
		if _, ok := old.Metrics[k]; !ok {
			nm := fresh.Metrics[k]
			r.Deltas = append(r.Deltas, Delta{Name: k, Class: nm.Class, Unit: nm.Unit, Old: math.NaN(), New: nm.Value, Verdict: VerdictAdded, Advisory: true})
		}
	}

	// Phases compare quantile-by-quantile as timing metrics. Counts are
	// informational: cell totals are already gated by the deterministic
	// exec.run.cycles.count.
	for _, k := range old.PhaseKeys() {
		op := old.Phases[k]
		np, ok := fresh.Phases[k]
		if !ok {
			r.Deltas = append(r.Deltas, Delta{Name: k + ".p50", Class: ClassTiming, Unit: "s", Old: op.P50, New: math.NaN(), Verdict: VerdictMissing, Advisory: timingAdvisory})
			continue
		}
		for _, q := range [...]struct {
			suffix   string
			old, new float64
		}{{".p50", op.P50, np.P50}, {".p90", op.P90, np.P90}, {".p99", op.P99, np.P99}} {
			d := Delta{Name: k + q.suffix, Class: ClassTiming, Unit: "s", Old: q.old, New: q.new, Advisory: timingAdvisory}
			d.Pct = pctDelta(q.old, q.new)
			d.Verdict = verdictFor(Metric{Better: BetterLower}, q.new, d.Pct, thr.TimingPct)
			r.Deltas = append(r.Deltas, d)
		}
	}
	return r
}

// pctDelta is the signed percent change from old to new, NaN when old is 0
// (no meaningful relative change) unless new is also 0.
func pctDelta(old, new float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return math.NaN()
	}
	return (new - old) / math.Abs(old) * 100
}

// verdictFor classifies one value change under the metric's improvement
// direction and the threshold (in percent).
func verdictFor(m Metric, newV, pct, limit float64) Verdict {
	if math.IsNaN(pct) {
		// old == 0, new != 0: treat as drift.
		if m.Better == BetterExact {
			return VerdictMismatch
		}
		return VerdictRegressed
	}
	if math.Abs(pct) <= limit {
		return VerdictOK
	}
	switch m.Better {
	case BetterExact:
		return VerdictMismatch
	case BetterHigher:
		if pct > 0 {
			return VerdictImproved
		}
		return VerdictRegressed
	default: // BetterLower and unspecified
		if pct < 0 {
			return VerdictImproved
		}
		return VerdictRegressed
	}
}

// Failed reports whether the comparison should gate: any non-advisory
// regressed, mismatched or missing row.
func (r *Report) Failed() bool {
	for _, d := range r.Deltas {
		if d.Advisory {
			continue
		}
		switch d.Verdict {
		case VerdictRegressed, VerdictMismatch, VerdictMissing:
			return true
		}
	}
	return false
}

// Counts tallies the verdicts (advisory rows included).
func (r *Report) Counts() map[Verdict]int {
	c := map[Verdict]int{}
	for _, d := range r.Deltas {
		c[d.Verdict]++
	}
	return c
}

// WriteTable renders the regression table: one row per metric, worst news
// first within each class, deterministic rows before timing rows.
func (r *Report) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "perf compare vs baseline %q\n", r.Label)
	for _, m := range r.EnvMismatch {
		fmt.Fprintf(w, "note: environment differs from baseline (%s); timing verdicts are advisory\n", m)
	}
	fmt.Fprintf(w, "%-58s %14s %14s %9s  %s\n", "metric", "baseline", "current", "delta", "verdict")
	order := func(class string) {
		for _, d := range r.Deltas {
			if d.Class != class {
				continue
			}
			verdict := string(d.Verdict)
			if d.Advisory && (d.Verdict == VerdictRegressed || d.Verdict == VerdictMissing) {
				verdict += " (advisory)"
			}
			fmt.Fprintf(w, "%-58s %14s %14s %9s  %s\n", d.Name, fmtVal(d.Old), fmtVal(d.New), fmtPct(d.Pct), verdict)
		}
	}
	order(ClassDeterministic)
	order(ClassTiming)
	c := r.Counts()
	fmt.Fprintf(w, "[%d ok, %d regressed, %d improved, %d mismatch, %d missing, %d added]\n",
		c[VerdictOK], c[VerdictRegressed], c[VerdictImproved], c[VerdictMismatch], c[VerdictMissing], c[VerdictAdded])
}

func fmtVal(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e6 || math.Abs(v) < 1e-3:
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

func fmtPct(p float64) string {
	if math.IsNaN(p) {
		return "n/a"
	}
	return fmt.Sprintf("%+.2f%%", p)
}
