package perf

import (
	"fmt"
	"os/exec"
	"runtime"
	"strings"
)

// Provenance records the environment a baseline (or metrics snapshot) was
// produced in. Modeled numbers (cycles, overhead geomeans) are pure
// functions of the tree and therefore comparable across machines; wall-clock
// latencies are not — the provenance stamp is what lets a reader (and the
// Judge) tell which comparison they are looking at.
type Provenance struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// GitDescribe is `git describe --tags --always --dirty` when the tree
	// is a git checkout and the git binary is available; "" otherwise. It
	// ties a committed BENCH_*.json to the commit that produced it.
	GitDescribe string `json:"git_describe,omitempty"`
}

// Collect captures the current environment. It never fails: a missing git
// binary or a non-checkout just leaves GitDescribe empty.
func Collect() Provenance {
	return Provenance{
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GitDescribe: gitDescribe(),
	}
}

func gitDescribe() string {
	out, err := exec.Command("git", "describe", "--tags", "--always", "--dirty").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// Meta renders the provenance as the flat string map the -metrics-out JSON
// header uses.
func (p Provenance) Meta() map[string]string {
	m := map[string]string{
		"go_version": p.GoVersion,
		"goos":       p.GOOS,
		"goarch":     p.GOARCH,
		"num_cpu":    fmt.Sprintf("%d", p.NumCPU),
	}
	if p.GitDescribe != "" {
		m["git_describe"] = p.GitDescribe
	}
	return m
}

// EnvDiff lists the environment fields that differ between two provenance
// stamps — the signal that wall-clock comparisons are cross-machine and
// should be advisory. GitDescribe is excluded: differing commits are the
// point of a comparison, not an environment mismatch.
func (p Provenance) EnvDiff(o Provenance) []string {
	var diff []string
	if p.GoVersion != o.GoVersion {
		diff = append(diff, fmt.Sprintf("go_version %s vs %s", p.GoVersion, o.GoVersion))
	}
	if p.GOOS != o.GOOS {
		diff = append(diff, fmt.Sprintf("goos %s vs %s", p.GOOS, o.GOOS))
	}
	if p.GOARCH != o.GOARCH {
		diff = append(diff, fmt.Sprintf("goarch %s vs %s", p.GOARCH, o.GOARCH))
	}
	if p.NumCPU != o.NumCPU {
		diff = append(diff, fmt.Sprintf("num_cpu %d vs %d", p.NumCPU, o.NumCPU))
	}
	return diff
}
