package perf

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"r2c/internal/telemetry"
)

func sampleSnapshot() *telemetry.Snapshot {
	reg := telemetry.NewRegistry()
	reg.Gauge("bench.figure6.geomean_pct", "machine", "epyc").Set(7.6)
	reg.Gauge("bench.table3.detection_rate", "defense", "r2c-full").Set(0.69)
	reg.Gauge("bench.table2.calls", "benchmark", "gcc").Set(41234)
	reg.Counter("vm.instructions").Add(123456)
	cyc := reg.LogHist("exec.run.cycles", telemetry.CycleScheme)
	cyc.Observe(2e6)
	cyc.Observe(3e6)
	lat := reg.LogHist("exec.cell.seconds", telemetry.LatencyScheme)
	lat.Observe(0.01)
	lat.Observe(0.03)
	lat.Observe(0.5)
	snap := reg.Snapshot()
	return snap
}

func TestFromSnapshotHarvest(t *testing.T) {
	b := FromSnapshot("figure6", sampleSnapshot(), Collect(), map[string]string{"scale": "8"})
	cases := []struct {
		key, class, better string
	}{
		{"bench.figure6.geomean_pct{machine=epyc}", ClassDeterministic, BetterLower},
		{"bench.table3.detection_rate{defense=r2c-full}", ClassDeterministic, BetterHigher},
		{"bench.table2.calls{benchmark=gcc}", ClassDeterministic, BetterExact},
		{"vm.instructions", ClassDeterministic, BetterLower},
		{"exec.run.cycles.count", ClassDeterministic, BetterExact},
		{"exec.run.cycles.sum", ClassDeterministic, BetterLower},
	}
	for _, tc := range cases {
		m, ok := b.Metrics[tc.key]
		if !ok {
			t.Errorf("metric %q not harvested; have %v", tc.key, b.MetricKeys())
			continue
		}
		if m.Class != tc.class || m.Better != tc.better {
			t.Errorf("metric %q = %s/%s, want %s/%s", tc.key, m.Class, m.Better, tc.class, tc.better)
		}
	}
	ph, ok := b.Phases["exec.cell.seconds"]
	if !ok {
		t.Fatalf("phase exec.cell.seconds not harvested; have %v", b.PhaseKeys())
	}
	if ph.Count != 3 || ph.P50 <= 0 || ph.P99 < ph.P50 {
		t.Errorf("phase summary implausible: %+v", ph)
	}
	// The latency histogram must NOT appear among deterministic metrics.
	for k, m := range b.Metrics {
		if strings.Contains(k, "exec.cell.seconds") && m.Class == ClassDeterministic {
			t.Errorf("wall-clock metric %q classified deterministic", k)
		}
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_test.json")
	b := FromSnapshot("figure6", sampleSnapshot(), Collect(), map[string]string{"scale": "8", "runs": "1"})
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != "figure6" || got.Schema != SchemaVersion || got.Params["scale"] != "8" {
		t.Errorf("roundtrip lost fields: %+v", got)
	}
	if len(got.Metrics) != len(b.Metrics) || len(got.Phases) != len(b.Phases) {
		t.Errorf("roundtrip lost entries: %d/%d metrics, %d/%d phases",
			len(got.Metrics), len(b.Metrics), len(got.Phases), len(b.Phases))
	}

	// Saving the identical baseline again must be byte-identical (no git
	// churn from map iteration order).
	path2 := filepath.Join(dir, "BENCH_test2.json")
	if err := b.Save(path2); err != nil {
		t.Fatal(err)
	}
	d1, _ := os.ReadFile(path)
	d2, _ := os.ReadFile(path2)
	if !bytes.Equal(d1, d2) {
		t.Errorf("re-saved baseline differs byte-wise")
	}
}

func TestLoadRejectsBadFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := Load(write("wrong-schema.json", `{"schema": 99, "label": "x", "metrics": {}}`)); err == nil {
		t.Errorf("Load accepted wrong schema version")
	}
	if _, err := Load(write("no-label.json", `{"schema": 1, "metrics": {}}`)); err == nil {
		t.Errorf("Load accepted unlabeled baseline")
	}
	if _, err := Load(write("garbage.json", `{{{`)); err == nil {
		t.Errorf("Load accepted malformed JSON")
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Errorf("Load accepted a missing file")
	}
}

func baselineWith(metrics map[string]Metric, phases map[string]Phase) *Baseline {
	return &Baseline{Schema: SchemaVersion, Label: "t", Provenance: Collect(), Metrics: metrics, Phases: phases}
}

func TestJudgeVerdicts(t *testing.T) {
	old := baselineWith(map[string]Metric{
		"det.stable":    {Value: 100, Class: ClassDeterministic, Better: BetterLower},
		"det.regressed": {Value: 100, Class: ClassDeterministic, Better: BetterLower},
		"det.improved":  {Value: 100, Class: ClassDeterministic, Better: BetterLower},
		"det.higher":    {Value: 0.5, Class: ClassDeterministic, Better: BetterHigher},
		"det.exact":     {Value: 42, Class: ClassDeterministic, Better: BetterExact},
		"det.gone":      {Value: 7, Class: ClassDeterministic, Better: BetterLower},
	}, map[string]Phase{
		"exec.cell.seconds": {Count: 10, P50: 0.010, P90: 0.020, P99: 0.050},
	})
	fresh := baselineWith(map[string]Metric{
		"det.stable":    {Value: 100.5, Class: ClassDeterministic, Better: BetterLower},
		"det.regressed": {Value: 150, Class: ClassDeterministic, Better: BetterLower},
		"det.improved":  {Value: 50, Class: ClassDeterministic, Better: BetterLower},
		"det.higher":    {Value: 0.1, Class: ClassDeterministic, Better: BetterHigher},
		"det.exact":     {Value: 43, Class: ClassDeterministic, Better: BetterExact},
		"det.new":       {Value: 1, Class: ClassDeterministic, Better: BetterLower},
	}, map[string]Phase{
		// p50 regressed 5x (beyond the 2x default), p90/p99 stable.
		"exec.cell.seconds": {Count: 10, P50: 0.050, P90: 0.021, P99: 0.049},
	})

	rep := Judge(old, fresh, DefaultThresholds())
	want := map[string]Verdict{
		"det.stable":            VerdictOK, // 0.5% < the 1% epsilon
		"det.regressed":         VerdictRegressed,
		"det.improved":          VerdictImproved,
		"det.higher":            VerdictRegressed, // higher-is-better dropped
		"det.exact":             VerdictMismatch,
		"det.gone":              VerdictMissing,
		"det.new":               VerdictAdded,
		"exec.cell.seconds.p50": VerdictRegressed,
		"exec.cell.seconds.p90": VerdictOK,
		"exec.cell.seconds.p99": VerdictOK,
	}
	got := map[string]Verdict{}
	for _, d := range rep.Deltas {
		got[d.Name] = d.Verdict
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s: verdict %q, want %q", name, got[name], v)
		}
	}
	if !rep.Failed() {
		t.Errorf("report with regressions did not fail")
	}

	// Warn-only mode: timing rows stop gating, deterministic rows still do.
	warn := Judge(old, fresh, Thresholds{TimingAdvisory: true})
	if !warn.Failed() {
		t.Errorf("warn-only report must still fail on deterministic regressions")
	}
	detOnly := baselineWith(map[string]Metric{}, old.Phases)
	freshDetOnly := baselineWith(map[string]Metric{}, fresh.Phases)
	if Judge(detOnly, freshDetOnly, Thresholds{TimingAdvisory: true}).Failed() {
		t.Errorf("warn-only report failed on timing-only regressions")
	}

	// Identical baselines: everything ok, nothing fails.
	clean := Judge(old, old, DefaultThresholds())
	if clean.Failed() {
		t.Errorf("self-comparison failed: %+v", clean.Deltas)
	}
	for _, d := range clean.Deltas {
		if d.Verdict != VerdictOK {
			t.Errorf("self-comparison %s = %q", d.Name, d.Verdict)
		}
	}
}

func TestJudgeEnvMismatchForcesAdvisory(t *testing.T) {
	old := baselineWith(map[string]Metric{}, map[string]Phase{
		"exec.cell.seconds": {Count: 10, P50: 0.010, P90: 0.020, P99: 0.050},
	})
	fresh := baselineWith(map[string]Metric{}, map[string]Phase{
		"exec.cell.seconds": {Count: 10, P50: 0.500, P90: 0.800, P99: 0.900},
	})
	fresh.Provenance.NumCPU = old.Provenance.NumCPU + 64
	rep := Judge(old, fresh, DefaultThresholds())
	if len(rep.EnvMismatch) == 0 || !rep.TimingAdvisory {
		t.Fatalf("env mismatch not detected: %+v", rep)
	}
	if rep.Failed() {
		t.Errorf("cross-environment timing regression gated; must be advisory")
	}
	var buf bytes.Buffer
	rep.WriteTable(&buf)
	if !strings.Contains(buf.String(), "advisory") {
		t.Errorf("table does not mark advisory rows:\n%s", buf.String())
	}
}

func TestDeterministicJSONExcludesTimingAndNaN(t *testing.T) {
	b := baselineWith(map[string]Metric{
		"det.a":    {Value: 1, Class: ClassDeterministic, Better: BetterLower},
		"det.nan":  {Value: math.NaN(), Class: ClassDeterministic, Better: BetterLower},
		"timing.b": {Value: 2, Class: ClassTiming, Better: BetterLower},
	}, map[string]Phase{"exec.cell.seconds": {Count: 1, P50: 0.5}})
	data, err := b.DeterministicJSON()
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.Contains(s, "det.a") {
		t.Errorf("deterministic metric missing:\n%s", s)
	}
	for _, banned := range []string{"timing.b", "det.nan", "exec.cell.seconds", "provenance", "go_version"} {
		if strings.Contains(s, banned) {
			t.Errorf("DeterministicJSON leaked %q:\n%s", banned, s)
		}
	}
}

func TestProvenance(t *testing.T) {
	p := Collect()
	if p.GoVersion == "" || p.GOOS == "" || p.GOARCH == "" || p.NumCPU <= 0 {
		t.Errorf("Collect() incomplete: %+v", p)
	}
	m := p.Meta()
	for _, k := range []string{"go_version", "goos", "goarch", "num_cpu"} {
		if m[k] == "" {
			t.Errorf("Meta() missing %q: %v", k, m)
		}
	}
	if diff := p.EnvDiff(p); len(diff) != 0 {
		t.Errorf("EnvDiff(self) = %v", diff)
	}
	o := p
	o.GOARCH = "riscv64"
	o.GitDescribe = p.GitDescribe + "-other"
	diff := p.EnvDiff(o)
	if len(diff) != 1 || !strings.Contains(diff[0], "goarch") {
		t.Errorf("EnvDiff = %v, want only the goarch difference (git describe excluded)", diff)
	}
}
