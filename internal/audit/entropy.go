package audit

import (
	"math"
	"sort"
	"strings"
)

// This file holds the entropy estimators the diversity report is built
// from. Everything is plain counting plus -Σ p·log2(p); the estimators are
// exact for the empirical distribution (no bias correction), which is the
// right tool here: the report compares the observed variant set against the
// ideal where all N variants differ, so the natural ceiling is log2(N) and
// a plug-in estimate against that ceiling is directly interpretable.

// Dist is an integer-valued empirical distribution: value → observation
// count. The auditor uses it for every scalar diversity dimension (BTRA
// pre/post offsets, NOP runs, padding bytes, BTDP counts and slot offsets).
type Dist map[int64]uint64

// Observe adds one observation of v.
func (d Dist) Observe(v int64) { d[v]++ }

// Total returns the number of observations.
func (d Dist) Total() uint64 {
	var n uint64
	for _, c := range d {
		n += c
	}
	return n
}

// Shannon returns the Shannon entropy of the empirical distribution, in
// bits. An empty or single-valued distribution has zero entropy.
func (d Dist) Shannon() float64 {
	return shannon(counts(d))
}

// Support returns the distinct observed values in ascending order.
func (d Dist) Support() []int64 {
	out := make([]int64, 0, len(d))
	for v := range d {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// counts flattens a Dist to its count multiset.
func counts(d Dist) []uint64 {
	out := make([]uint64, 0, len(d))
	for _, c := range d {
		out = append(out, c)
	}
	return out
}

// shannon is the core estimator: entropy in bits of the distribution whose
// class counts are cs.
func shannon(cs []uint64) float64 {
	var total float64
	for _, c := range cs {
		total += float64(c)
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range cs {
		if c == 0 {
			continue
		}
		p := float64(c) / total
		h -= p * math.Log2(p)
	}
	// Clamp the tiny negative residue floating-point summation can leave
	// for a single-class distribution.
	if h < 0 {
		return 0
	}
	return h
}

// PermutationEntropy treats each order as one symbol (the whole permutation)
// and returns the Shannon entropy of the resulting distribution, in bits.
// With N variants the ceiling is log2(N), reached when every variant
// produced a distinct order; a constant order scores 0; an even split
// between two orders (a "single swap" population) scores exactly 1 bit.
func PermutationEntropy(orders [][]string) float64 {
	counts := map[string]uint64{}
	for _, o := range orders {
		counts[strings.Join(o, "\x00")]++
	}
	cs := make([]uint64, 0, len(counts))
	for _, c := range counts {
		cs = append(cs, c)
	}
	return shannon(cs)
}

// PositionalEntropy returns the mean per-position Shannon entropy of which
// element occupies each position, in bits. Unlike PermutationEntropy it
// rewards orders that differ in many places over orders that differ in one:
// two orders related by a single swap score near zero here even though they
// are distinct permutations. Orders of differing lengths are truncated to
// the shortest.
func PositionalEntropy(orders [][]string) float64 {
	if len(orders) == 0 {
		return 0
	}
	minLen := len(orders[0])
	for _, o := range orders[1:] {
		if len(o) < minLen {
			minLen = len(o)
		}
	}
	if minLen == 0 {
		return 0
	}
	var sum float64
	for pos := 0; pos < minLen; pos++ {
		occ := map[string]uint64{}
		for _, o := range orders {
			occ[o[pos]]++
		}
		cs := make([]uint64, 0, len(occ))
		for _, c := range occ {
			cs = append(cs, c)
		}
		sum += shannon(cs)
	}
	return sum / float64(minLen)
}

// SequenceEntropy is PermutationEntropy for arbitrary string sequences
// (register-allocation orders, strategy sequences): entropy in bits over
// the distinct sequences observed.
func SequenceEntropy(seqs []string) float64 {
	counts := map[string]uint64{}
	for _, s := range seqs {
		counts[s]++
	}
	cs := make([]uint64, 0, len(counts))
	for _, c := range counts {
		cs = append(cs, c)
	}
	return shannon(cs)
}

// EntropyStat packages an entropy estimate with its ceiling for the report:
// Bits is the estimate, MaxBits the log2 of the population size (the best
// any randomizer can do with that many variants), Normalized the ratio
// (0 when the ceiling is 0, i.e. a single variant).
type EntropyStat struct {
	Bits       float64 `json:"bits"`
	MaxBits    float64 `json:"max_bits"`
	Normalized float64 `json:"normalized"`
}

// NewEntropyStat builds an EntropyStat against a population of n variants.
func NewEntropyStat(bits float64, n int) EntropyStat {
	max := 0.0
	if n > 1 {
		max = math.Log2(float64(n))
	}
	norm := 0.0
	if max > 0 {
		norm = bits / max
	}
	return EntropyStat{Bits: roundStat(bits), MaxBits: roundStat(max), Normalized: roundStat(norm)}
}

// roundStat rounds to 6 decimal places so report floats have one canonical
// rendering: the JSON report is compared byte-for-byte across -jobs widths
// and against golden files, and sub-micro-bit noise would only obscure that.
func roundStat(v float64) float64 {
	return math.Round(v*1e6) / 1e6
}
