package audit

import (
	"math"
	"testing"
)

// The estimators are checked against closed-form values: a constant
// population has zero entropy, N all-distinct outcomes have log2(N) bits,
// and an even two-way split has exactly 1 bit.

const eps = 1e-9

func near(t *testing.T, got, want float64, what string) {
	t.Helper()
	if math.Abs(got-want) > eps {
		t.Errorf("%s = %v, want %v", what, got, want)
	}
}

func TestDistShannonClosedForms(t *testing.T) {
	constant := Dist{}
	for i := 0; i < 16; i++ {
		constant.Observe(7)
	}
	near(t, constant.Shannon(), 0, "constant dist entropy")

	uniform := Dist{}
	for i := int64(0); i < 8; i++ {
		uniform.Observe(i)
	}
	near(t, uniform.Shannon(), 3, "uniform-8 dist entropy")

	split := Dist{}
	for i := 0; i < 4; i++ {
		split.Observe(0)
		split.Observe(1)
	}
	near(t, split.Shannon(), 1, "even-split dist entropy")

	near(t, Dist{}.Shannon(), 0, "empty dist entropy")
}

func TestDistAccessors(t *testing.T) {
	d := Dist{}
	d.Observe(3)
	d.Observe(3)
	d.Observe(-1)
	if got := d.Total(); got != 3 {
		t.Errorf("Total = %d, want 3", got)
	}
	sup := d.Support()
	if len(sup) != 2 || sup[0] != -1 || sup[1] != 3 {
		t.Errorf("Support = %v, want [-1 3]", sup)
	}
}

func perms(n int, distinct bool) [][]string {
	base := []string{"a", "b", "c", "d"}
	out := make([][]string, n)
	for i := range out {
		o := append([]string(nil), base...)
		if distinct {
			// Rotate by i so every variant is a distinct permutation.
			o = append(base[i%len(base):], base[:i%len(base)]...)
		}
		out[i] = o
	}
	return out
}

func TestPermutationEntropyClosedForms(t *testing.T) {
	near(t, PermutationEntropy(perms(4, false)), 0, "constant orders")
	near(t, PermutationEntropy(perms(4, true)), 2, "4 distinct orders")

	// Single-swap population: half the variants swap one adjacent pair —
	// two distinct permutations, evenly split, exactly 1 bit.
	orders := [][]string{
		{"a", "b", "c"}, {"a", "b", "c"},
		{"b", "a", "c"}, {"b", "a", "c"},
	}
	near(t, PermutationEntropy(orders), 1, "single-swap split")
}

func TestPositionalEntropyClosedForms(t *testing.T) {
	near(t, PositionalEntropy(perms(4, false)), 0, "constant orders")

	// Full rotations: every element visits every position uniformly, so
	// each position contributes log2(4) = 2 bits.
	near(t, PositionalEntropy(perms(4, true)), 2, "rotated orders")

	// Single swap touching positions 0 and 1 of 3: those two positions
	// carry 1 bit each, the third none — mean 2/3.
	orders := [][]string{
		{"a", "b", "c"}, {"a", "b", "c"},
		{"b", "a", "c"}, {"b", "a", "c"},
	}
	near(t, PositionalEntropy(orders), 2.0/3.0, "single-swap positional")

	near(t, PositionalEntropy(nil), 0, "no orders")
}

func TestSequenceEntropy(t *testing.T) {
	near(t, SequenceEntropy([]string{"x", "x", "x"}), 0, "constant sequences")
	near(t, SequenceEntropy([]string{"a", "b", "c", "d"}), 2, "distinct sequences")
	near(t, SequenceEntropy([]string{"a", "a", "b", "b"}), 1, "even split")
}

func TestNewEntropyStat(t *testing.T) {
	s := NewEntropyStat(1.5, 8)
	near(t, s.Bits, 1.5, "bits")
	near(t, s.MaxBits, 3, "max bits")
	near(t, s.Normalized, 0.5, "normalized")

	z := NewEntropyStat(0, 1)
	near(t, z.MaxBits, 0, "single-variant ceiling")
	near(t, z.Normalized, 0, "single-variant normalized")
}

func TestNewDistStat(t *testing.T) {
	d := Dist{}
	for _, v := range []int64{2, 2, 4, 8} {
		d.Observe(v)
	}
	s := newDistStat(d)
	if s.Count != 4 || s.Distinct != 3 || s.Min != 2 || s.Max != 8 {
		t.Errorf("stat = %+v", s)
	}
	near(t, s.Mean, 4, "mean")
	near(t, s.Bits, 1.5, "bits") // counts {2,1,1} → 1.5 bits
	if len(s.Buckets) != 3 || s.Buckets[0] != (Bucket{2, 2}) {
		t.Errorf("buckets = %v", s.Buckets)
	}
}
