// Package audit is the variant diversity auditor: it links N re-diversified
// builds of one module under one defense configuration and quantifies how
// random the randomization actually is. R2C's security argument (and the
// AOCR profiling attacks of "Hiding in the Particles") hinges on decoys and
// layout being statistically indistinguishable from real values — so the
// auditor measures exactly what an AOCR adversary would: entropy of
// function/global placement orders, the distributions of BTRA pre/post
// offsets, NOP runs, padding and BTDP placement, register-allocation
// divergence, and the pairwise survivor surface — addresses, gadget-like
// instruction windows and data words that survive unchanged across variant
// pairs, the residue address-oblivious code reuse feeds on.
//
// Builds fan through the exec engine (shared build cache, pipeline spans,
// /progress visibility); everything downstream of the build is a serial,
// index-ordered fold over the variant summaries, so the report is
// byte-identical at any -jobs width.
package audit

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"

	"r2c/internal/codegen"
	"r2c/internal/defense"
	"r2c/internal/exec"
	"r2c/internal/image"
	"r2c/internal/telemetry"
	"r2c/internal/tir"
)

// DefaultGadgetLen is the instruction-window length of the gadget survivor
// analysis: long enough that a surviving window is a usable reuse target,
// short enough that survivors still occur in weak configs.
const DefaultGadgetLen = 5

// Options configures one audit run.
type Options struct {
	// Module and Cfg identify what is being audited; Variants is the
	// number of re-diversified builds (≥ 2 for any pairwise statistic).
	Module   *tir.Module
	Cfg      defense.Config
	Variants int
	// BaseSeed seeds variant i with BaseSeed+i.
	BaseSeed uint64
	// GadgetLen overrides DefaultGadgetLen (0 = default).
	GadgetLen int
	// Eng is the execution engine builds fan through; nil constructs a
	// fresh one from Jobs/Obs.
	Eng *exec.Engine
	// Jobs is the pool width when Eng is nil (0 = GOMAXPROCS).
	Jobs int
	// Obs receives the audit histograms and gauges (see Report.Publish)
	// and the build spans. Nil disables telemetry.
	Obs *telemetry.Observer
	// Ctx cancels the build fan-out; nil means context.Background().
	Ctx context.Context
}

// variantSummary is everything the report needs from one linked variant;
// images are released as soon as their summary is extracted.
type variantSummary struct {
	funcOrder   []string          // module functions in text order
	globalOrder []string          // module globals in data order
	funcOff     map[string]uint64 // every function → text offset
	globalOff   map[string]uint64 // every global → data offset
	gadgetSigs  map[uint64]uint64 // instr text offset → window signature
	dataWords   map[uint64]uint64 // data offset → normalized init word

	pre, post, nops []int64
	strategies      map[string]uint64 // push/avx2/none call-site counts
	padSizes        []int64
	btdpCounts      []int64
	btdpSlotOffs    []int64
	regOrders       map[string]string // function → reg-alloc pool order
}

// Run links opt.Variants re-diversified images and folds them into a
// diversity Report. Failed builds fail the audit (a diversity estimate over
// a partial variant set would silently understate the attack surface).
func Run(opt Options) (*Report, error) {
	if opt.Module == nil {
		return nil, fmt.Errorf("audit: nil module")
	}
	if opt.Variants < 2 {
		return nil, fmt.Errorf("audit: need at least 2 variants, got %d", opt.Variants)
	}
	gadgetLen := opt.GadgetLen
	if gadgetLen <= 0 {
		gadgetLen = DefaultGadgetLen
	}
	eng := opt.Eng
	if eng == nil {
		eng = exec.New(opt.Jobs, opt.Obs)
	}
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}

	seeds := make([]uint64, opt.Variants)
	for i := range seeds {
		seeds[i] = opt.BaseSeed + uint64(i)
	}
	images, err := eng.BuildImages(ctx, opt.Module, opt.Cfg, seeds)
	if err != nil {
		return nil, fmt.Errorf("audit: %w", err)
	}

	// Serial, index-ordered extraction and fold: the one place determinism
	// lives. Everything after this point is pure computation over the
	// summaries.
	vars := make([]*variantSummary, len(images))
	for i, img := range images {
		vars[i] = summarize(img, gadgetLen)
		images[i] = nil // release the image; summaries are self-contained
	}
	rep := fold(opt, gadgetLen, vars)
	rep.Publish(opt.Obs)
	return rep, nil
}

// summarize extracts one variant's diversity-relevant features.
func summarize(img *image.Image, gadgetLen int) *variantSummary {
	ls := img.LayoutSummary()
	v := &variantSummary{
		funcOrder:   ls.FuncNames(false),
		globalOrder: ls.GlobalNames(),
		funcOff:     make(map[string]uint64, len(ls.Funcs)),
		globalOff:   map[string]uint64{},
		gadgetSigs:  map[uint64]uint64{},
		dataWords:   make(map[uint64]uint64, len(img.DataInit)),
		strategies:  map[string]uint64{},
		regOrders:   map[string]string{},
	}
	for _, fs := range ls.Funcs {
		v.funcOff[fs.Name] = fs.Off
	}
	for _, d := range ls.Data {
		switch d.Kind {
		case image.DataGlobal:
			v.globalOff[d.Name] = d.Off
		case image.DataPad:
			v.padSizes = append(v.padSizes, int64(d.Size))
		}
	}

	// Per-function code-generation choices, in text order so the fold is
	// order-deterministic.
	for _, name := range img.FuncOrder {
		f := img.Funcs[name].F
		if f.BoobyTrap || f.Stub || name == image.EntrySym {
			continue
		}
		v.btdpCounts = append(v.btdpCounts, int64(f.NumBTDPs))
		for _, s := range f.Slots {
			if s.Kind == codegen.SlotBTDP {
				v.btdpSlotOffs = append(v.btdpSlotOffs, s.Offset)
			}
		}
		if len(f.RegAllocOrder) > 0 {
			key := ""
			for _, r := range f.RegAllocOrder {
				key += r.String() + ","
			}
			v.regOrders[name] = key
		}
		for _, cs := range f.CallSites {
			v.nops = append(v.nops, int64(cs.NumNOPs))
			switch {
			case cs.ArraySym != "":
				v.strategies["avx2"]++
			case cs.Pre+cs.Post > 0:
				v.strategies["push"]++
			default:
				v.strategies["none"]++
			}
			if cs.Pre+cs.Post > 0 {
				v.pre = append(v.pre, int64(cs.Pre))
				v.post = append(v.post, int64(cs.Post))
			}
		}
	}

	// Gadget-like instruction windows: for every instruction boundary,
	// hash the next gadgetLen instructions' operation shape (kinds and
	// registers, not resolved immediates — an attacker reusing a window
	// cares that the same operations on the same registers sit at the same
	// address). Windows stay within one function, like real gadget scans
	// stay within mapped code. Booby-trap bodies are excluded: the pool's
	// trap functions are deliberately homogeneous, so their windows collide
	// across variants at matching offsets — but transferring into one is a
	// detonation, not a reuse, so they are detection surface, not attack
	// surface.
	for _, name := range img.FuncOrder {
		pf := img.Funcs[name]
		if pf.F.BoobyTrap {
			continue
		}
		instrs := pf.F.Instrs
		for i := range instrs {
			if i+gadgetLen > len(instrs) {
				break
			}
			h := fnv.New64a()
			var buf [9]byte
			for j := i; j < i+gadgetLen; j++ {
				in := &instrs[j]
				buf[0] = byte(in.Kind)
				buf[1] = byte(in.Alu)
				buf[2] = byte(in.Cmp)
				buf[3] = byte(in.Sys)
				buf[4] = byte(in.Dst)
				buf[5] = byte(in.Src)
				buf[6] = byte(in.A)
				buf[7] = byte(in.B)
				buf[8] = byte(in.Base)
				h.Write(buf[:])
			}
			v.gadgetSigs[pf.InstrAddrs[i]-img.TextBase] = h.Sum64()
		}
	}

	// Initialized data words, ASLR-normalized: words pointing into a
	// segment are reduced to (segment tag, offset) so two variants that
	// differ only in their slides still compare equal — exactly the
	// adversary's view after rebasing a leak.
	for addr, w := range img.DataInit {
		v.dataWords[addr-img.DataBase] = normalizeWord(img, w)
	}
	return v
}

// normalizeWord maps a data word to an ASLR-independent representation:
// segment-relative offsets tagged per segment, raw value otherwise. Tags
// live in the top byte, far above any segment offset.
func normalizeWord(img *image.Image, w uint64) uint64 {
	const tagShift = 56
	switch {
	case w >= img.TextBase && w < img.TextEnd:
		return 1<<tagShift | (w - img.TextBase)
	case w >= img.DataBase && w < img.DataEnd:
		return 2<<tagShift | (w - img.DataBase)
	case w >= img.HeapBase && w < img.HeapEnd:
		return 3<<tagShift | (w - img.HeapBase)
	case w >= img.StackLow && w < img.StackHi:
		return 4<<tagShift | (w - img.StackLow)
	}
	return w
}

// distOf folds per-variant int64 observations into one Dist.
func distOf(vars []*variantSummary, pick func(*variantSummary) []int64) Dist {
	d := Dist{}
	for _, v := range vars {
		for _, x := range pick(v) {
			d.Observe(x)
		}
	}
	return d
}

// regAllocStats measures register-allocation divergence: for every function
// present in all variants, the entropy of its pool-order sequence across
// variants, averaged; plus the fraction of functions whose order diverged
// at all.
func regAllocStats(vars []*variantSummary, variants int) (meanEntropy EntropyStat, divergedFrac float64, measured int) {
	if len(vars) == 0 {
		return NewEntropyStat(0, variants), 0, 0
	}
	names := make([]string, 0, len(vars[0].regOrders))
	for name := range vars[0].regOrders {
		names = append(names, name)
	}
	sort.Strings(names)
	var sumBits float64
	diverged := 0
	for _, name := range names {
		seqs := make([]string, 0, len(vars))
		present := true
		for _, v := range vars {
			s, ok := v.regOrders[name]
			if !ok {
				present = false
				break
			}
			seqs = append(seqs, s)
		}
		if !present {
			continue
		}
		measured++
		bits := SequenceEntropy(seqs)
		sumBits += bits
		if bits > 0 {
			diverged++
		}
	}
	if measured == 0 {
		return NewEntropyStat(0, variants), 0, 0
	}
	return NewEntropyStat(sumBits/float64(measured), variants),
		roundStat(float64(diverged) / float64(measured)), measured
}
