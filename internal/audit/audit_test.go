package audit

import (
	"bytes"
	"strings"
	"testing"

	"r2c/internal/defense"
	"r2c/internal/telemetry"
	"r2c/internal/tir"
	"r2c/internal/workload"
)

func testModule(t *testing.T) *tir.Module {
	t.Helper()
	b, ok := workload.ByName("nginx")
	if !ok {
		t.Fatal("nginx workload missing")
	}
	return b.Build(8)
}

func runAudit(t *testing.T, jobs int, cfg defense.Config, obs *telemetry.Observer) *Report {
	t.Helper()
	rep, err := Run(Options{
		Module:   testModule(t),
		Cfg:      cfg,
		Variants: 6,
		BaseSeed: 42,
		Jobs:     jobs,
		Obs:      obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// The headline determinism guarantee: the JSON report is byte-identical
// whether the variants were built serially or eight-wide.
func TestReportByteIdenticalAcrossJobs(t *testing.T) {
	cfg := defense.R2CFull()
	var serial, parallel bytes.Buffer
	if err := runAudit(t, 1, cfg, nil).WriteJSON(&serial); err != nil {
		t.Fatal(err)
	}
	if err := runAudit(t, 8, cfg, nil).WriteJSON(&parallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Fatalf("report differs between -jobs 1 and -jobs 8:\n--- jobs 1 ---\n%s\n--- jobs 8 ---\n%s",
			serial.String(), parallel.String())
	}
}

// Full R2C must actually diversify: distinct placement orders, register
// allocation divergence, and a survivor surface well below the baseline.
func TestFullConfigDiversifies(t *testing.T) {
	rep := runAudit(t, 4, defense.R2CFull(), nil)
	if rep.FuncOrder.Permutation.Bits <= 0 {
		t.Error("function order never changed under full R2C")
	}
	if rep.GlobalOrder.Permutation.Bits <= 0 {
		t.Error("global order never changed under full R2C")
	}
	if rep.RegAlloc.DivergedFrac <= 0 {
		t.Error("register allocation never diverged under full R2C")
	}
	if rep.NOPLen.Distinct < 2 {
		t.Errorf("NOP runs took %d distinct lengths, want ≥ 2", rep.NOPLen.Distinct)
	}
	if rep.Survivor.MeanFuncOffset >= 1 {
		t.Error("every function offset survived every pair under full R2C")
	}
}

// The unprotected baseline is the degenerate case every estimator must
// agree on: zero entropy everywhere, survivor rates pinned at 1.
func TestBaselineIsFullySurviving(t *testing.T) {
	rep := runAudit(t, 4, defense.Off(), nil)
	if rep.FuncOrder.Permutation.Bits != 0 {
		t.Errorf("baseline func-order entropy = %v, want 0", rep.FuncOrder.Permutation.Bits)
	}
	if rep.GlobalOrder.Permutation.Bits != 0 {
		t.Errorf("baseline global-order entropy = %v, want 0", rep.GlobalOrder.Permutation.Bits)
	}
	s := rep.Survivor
	for _, v := range []float64{s.MeanFuncOffset, s.MeanGlobalOffset, s.MeanGadget, s.MeanDataWord} {
		if v != 1 {
			t.Errorf("baseline survivor rate = %v, want 1 (%+v)", v, s)
		}
	}
	if s.Pairs != 6*5/2 {
		t.Errorf("pairs = %d, want %d", s.Pairs, 6*5/2)
	}
}

func TestRunValidatesOptions(t *testing.T) {
	if _, err := Run(Options{Variants: 4}); err == nil {
		t.Error("nil module accepted")
	}
	if _, err := Run(Options{Module: testModule(t), Variants: 1}); err == nil {
		t.Error("single variant accepted")
	}
}

// Publish must land the audit histograms in the registry and serve them in
// Prometheus text exposition format, alongside entropy/survivor/knob gauges.
func TestPublishServesPrometheusHistograms(t *testing.T) {
	reg := telemetry.NewRegistry()
	obs := &telemetry.Observer{Registry: reg}
	runAudit(t, 4, defense.R2CFull(), obs)

	var buf bytes.Buffer
	if err := telemetry.WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	histograms := []string{"audit_btra_pre", "audit_nop_len", "audit_btdp_per_func"}
	for _, h := range histograms {
		if !strings.Contains(out, h+"_bucket") {
			t.Errorf("exposition missing %s_bucket", h)
		}
		if !strings.Contains(out, h+"_count") || !strings.Contains(out, h+"_sum") {
			t.Errorf("exposition missing %s _count/_sum series", h)
		}
		if !strings.Contains(out, `le="+Inf"`) {
			t.Errorf("exposition missing +Inf bucket")
		}
	}
	for _, g := range []string{"audit_entropy_bits", "audit_survivor_mean", "audit_knob"} {
		if !strings.Contains(out, g) {
			t.Errorf("exposition missing gauge %s", g)
		}
	}
	// Spot-check a knob gauge: full R2C inserts 10 BTRAs per call site.
	if g := reg.Gauge("audit.knob", "knob", "BTRAsPerCall", "config", "r2c-full"); g.Value() != 10 {
		t.Errorf("BTRAsPerCall knob gauge = %v, want 10", g.Value())
	}
}

// WriteText must render without panicking and carry the headline sections.
func TestWriteText(t *testing.T) {
	rep := runAudit(t, 4, defense.R2CFull(), nil)
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"diversity audit", "placement entropy", "survivor surface"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, buf.String())
		}
	}
}
