package audit

import "sort"

// This file is the survivor-surface analysis: the pairwise intersection of
// what an address-oblivious attacker could carry from one variant to
// another. AOCR works precisely because some addresses and code/data shapes
// survive re-randomization (Section 2.2 of the paper; the attack clusters
// leaked values and reuses whole functions whose relative placement it can
// re-derive) — so the auditor reports, for every variant pair, the fraction
// of function offsets, global offsets, gadget-like instruction windows and
// initialized data words that are bit-identical after rebasing out ASLR.
// A strong configuration drives every rate toward zero; the baseline sits
// at 1.0 by construction.

// PairRates holds the survivor rates of one variant pair (A < B, indices
// into the seed schedule).
type PairRates struct {
	A int `json:"a"`
	B int `json:"b"`
	// FuncOffset is the fraction of functions placed at the same text
	// offset in both variants; GlobalOffset the same for data globals.
	FuncOffset   float64 `json:"func_offset"`
	GlobalOffset float64 `json:"global_offset"`
	// Gadget is the fraction of common instruction-boundary offsets whose
	// gadget-length operation window is identical in both variants.
	Gadget float64 `json:"gadget"`
	// DataWord is the fraction of common initialized data offsets holding
	// the same ASLR-normalized word.
	DataWord float64 `json:"data_word"`
}

// SurvivorSym is one symbol with the number of pairs it survived in.
type SurvivorSym struct {
	Name  string `json:"name"`
	Pairs int    `json:"pairs"`
}

// SurvivorSummary aggregates the pairwise survivor rates.
type SurvivorSummary struct {
	Pairs int `json:"pairs"`
	// Mean/Max over all pairs, per surface. Max is the adversary's best
	// pair — the number that matters when the attacker can pick targets.
	MeanFuncOffset   float64 `json:"mean_func_offset"`
	MaxFuncOffset    float64 `json:"max_func_offset"`
	MeanGlobalOffset float64 `json:"mean_global_offset"`
	MaxGlobalOffset  float64 `json:"max_global_offset"`
	MeanGadget       float64 `json:"mean_gadget"`
	MaxGadget        float64 `json:"max_gadget"`
	MeanDataWord     float64 `json:"mean_data_word"`
	MaxDataWord      float64 `json:"max_data_word"`
	// TopFuncs and TopGlobals name the symbols that survived in the most
	// pairs — the concrete residual surface to fix, sorted by pair count
	// descending then name. Empty when nothing survived.
	TopFuncs   []SurvivorSym `json:"top_funcs,omitempty"`
	TopGlobals []SurvivorSym `json:"top_globals,omitempty"`
	// PerPair carries every pair's rates, in (A,B) lexicographic order.
	PerPair []PairRates `json:"per_pair"`
}

// topSurvivorLimit caps the per-symbol survivor tables.
const topSurvivorLimit = 10

// survivorAnalysis computes the full pairwise survivor summary.
func survivorAnalysis(vars []*variantSummary) SurvivorSummary {
	s := SurvivorSummary{}
	funcSurvivals := map[string]int{}
	globalSurvivals := map[string]int{}

	for a := 0; a < len(vars); a++ {
		for b := a + 1; b < len(vars); b++ {
			va, vb := vars[a], vars[b]
			pr := PairRates{A: a, B: b}
			pr.FuncOffset = offsetRate(va.funcOff, vb.funcOff, func(name string) { funcSurvivals[name]++ })
			pr.GlobalOffset = offsetRate(va.globalOff, vb.globalOff, func(name string) { globalSurvivals[name]++ })
			pr.Gadget = sigRate(va.gadgetSigs, vb.gadgetSigs)
			pr.DataWord = sigRate(va.dataWords, vb.dataWords)
			pr.FuncOffset = roundStat(pr.FuncOffset)
			pr.GlobalOffset = roundStat(pr.GlobalOffset)
			pr.Gadget = roundStat(pr.Gadget)
			pr.DataWord = roundStat(pr.DataWord)
			s.PerPair = append(s.PerPair, pr)
		}
	}
	s.Pairs = len(s.PerPair)
	if s.Pairs == 0 {
		return s
	}
	for _, pr := range s.PerPair {
		s.MeanFuncOffset += pr.FuncOffset
		s.MeanGlobalOffset += pr.GlobalOffset
		s.MeanGadget += pr.Gadget
		s.MeanDataWord += pr.DataWord
		s.MaxFuncOffset = maxf(s.MaxFuncOffset, pr.FuncOffset)
		s.MaxGlobalOffset = maxf(s.MaxGlobalOffset, pr.GlobalOffset)
		s.MaxGadget = maxf(s.MaxGadget, pr.Gadget)
		s.MaxDataWord = maxf(s.MaxDataWord, pr.DataWord)
	}
	n := float64(s.Pairs)
	s.MeanFuncOffset = roundStat(s.MeanFuncOffset / n)
	s.MeanGlobalOffset = roundStat(s.MeanGlobalOffset / n)
	s.MeanGadget = roundStat(s.MeanGadget / n)
	s.MeanDataWord = roundStat(s.MeanDataWord / n)
	s.TopFuncs = topSurvivors(funcSurvivals)
	s.TopGlobals = topSurvivors(globalSurvivals)
	return s
}

// offsetRate returns the fraction of symbols present in both maps whose
// offsets are equal, invoking onSurvive per surviving symbol.
func offsetRate(a, b map[string]uint64, onSurvive func(name string)) float64 {
	common, same := 0, 0
	for name, offA := range a {
		offB, ok := b[name]
		if !ok {
			continue
		}
		common++
		if offA == offB {
			same++
			if onSurvive != nil {
				onSurvive(name)
			}
		}
	}
	if common == 0 {
		return 0
	}
	return float64(same) / float64(common)
}

// sigRate returns the fraction of keys present in both maps whose values
// are equal — the gadget-window and data-word survivor estimator.
func sigRate(a, b map[uint64]uint64) float64 {
	common, same := 0, 0
	for k, va := range a {
		vb, ok := b[k]
		if !ok {
			continue
		}
		common++
		if va == vb {
			same++
		}
	}
	if common == 0 {
		return 0
	}
	return float64(same) / float64(common)
}

// topSurvivors sorts a survival count map into the bounded report table.
func topSurvivors(m map[string]int) []SurvivorSym {
	out := make([]SurvivorSym, 0, len(m))
	for name, n := range m {
		out = append(out, SurvivorSym{Name: name, Pairs: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pairs != out[j].Pairs {
			return out[i].Pairs > out[j].Pairs
		}
		return out[i].Name < out[j].Name
	})
	if len(out) > topSurvivorLimit {
		out = out[:topSurvivorLimit]
	}
	return out
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
