package audit

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"sort"

	"r2c/internal/defense"
	"r2c/internal/telemetry"
)

// Bucket is one (value, count) cell of a DistStat, in ascending value order.
type Bucket struct {
	Value int64  `json:"value"`
	Count uint64 `json:"count"`
}

// DistStat summarizes one scalar diversity dimension: the full empirical
// distribution plus the headline numbers a reader scans for.
type DistStat struct {
	Count    uint64   `json:"count"`
	Distinct int      `json:"distinct"`
	Min      int64    `json:"min"`
	Max      int64    `json:"max"`
	Mean     float64  `json:"mean"`
	Bits     float64  `json:"bits"`
	Buckets  []Bucket `json:"buckets,omitempty"`
}

// newDistStat folds a Dist into its report form.
func newDistStat(d Dist) DistStat {
	s := DistStat{Count: d.Total(), Distinct: len(d)}
	if s.Count == 0 {
		return s
	}
	support := d.Support()
	s.Min, s.Max = support[0], support[len(support)-1]
	var sum float64
	for _, v := range support {
		c := d[v]
		sum += float64(v) * float64(c)
		s.Buckets = append(s.Buckets, Bucket{Value: v, Count: c})
	}
	s.Mean = roundStat(sum / float64(s.Count))
	s.Bits = roundStat(d.Shannon())
	return s
}

// OrderStat reports the diversity of one placement order (functions in text,
// globals in data) along both axes that matter: whole-permutation entropy
// (did the order change at all?) and positional entropy (did it change
// everywhere, or just in one swap?).
type OrderStat struct {
	Items       int         `json:"items"`
	Permutation EntropyStat `json:"permutation"`
	Positional  EntropyStat `json:"positional"`
}

// RegAllocStat reports register-allocation divergence across variants.
type RegAllocStat struct {
	// Funcs is how many functions were measured (present in all variants
	// with a recorded allocation order).
	Funcs int `json:"funcs"`
	// MeanEntropy averages, over those functions, the entropy of the
	// allocation-pool order across variants.
	MeanEntropy EntropyStat `json:"mean_entropy"`
	// DivergedFrac is the fraction of functions whose order differed in at
	// least one variant pair.
	DivergedFrac float64 `json:"diverged_frac"`
}

// Report is the full diversity audit of one (module, config, N) triple. It
// is pure data: byte-identical JSON for identical inputs at any -jobs
// width, which the determinism tests and golden files rely on.
type Report struct {
	Module            string `json:"module"`
	ModuleHash        string `json:"module_hash"`
	Config            string `json:"config"`
	ConfigFingerprint string `json:"config_fingerprint"`
	Variants          int    `json:"variants"`
	BaseSeed          uint64 `json:"base_seed"`
	GadgetLen         int    `json:"gadget_len"`

	FuncOrder   OrderStat    `json:"func_order"`
	GlobalOrder OrderStat    `json:"global_order"`
	RegAlloc    RegAllocStat `json:"reg_alloc"`

	// StrategyMix counts call sites by BTRA setup strategy across all
	// variants (push / avx2 / none).
	StrategyMix map[string]uint64 `json:"strategy_mix"`

	BTRAPre     DistStat `json:"btra_pre"`
	BTRAPost    DistStat `json:"btra_post"`
	NOPLen      DistStat `json:"nop_len"`
	PadBytes    DistStat `json:"pad_bytes"`
	BTDPPerFunc DistStat `json:"btdp_per_func"`
	BTDPSlotOff DistStat `json:"btdp_slot_off"`

	Survivor SurvivorSummary `json:"survivor"`

	// cfg retains the audited configuration for Publish's per-knob gauges;
	// deliberately absent from the JSON report (the fingerprint identifies
	// it) and from reports rehydrated from JSON, where Publish simply skips
	// the knob gauges.
	cfg *defense.Config
}

// fold builds the report from the index-ordered variant summaries. It runs
// strictly serially; all parallelism ended with the builds.
func fold(opt Options, gadgetLen int, vars []*variantSummary) *Report {
	hash := opt.Module.ContentHash()
	rep := &Report{
		Module:            opt.Module.Name,
		ModuleHash:        hex.EncodeToString(hash[:]),
		Config:            opt.Cfg.Name,
		ConfigFingerprint: opt.Cfg.Fingerprint(),
		Variants:          len(vars),
		BaseSeed:          opt.BaseSeed,
		GadgetLen:         gadgetLen,
		StrategyMix:       map[string]uint64{},
		cfg:               &opt.Cfg,
	}

	funcOrders := make([][]string, len(vars))
	globalOrders := make([][]string, len(vars))
	for i, v := range vars {
		funcOrders[i] = v.funcOrder
		globalOrders[i] = v.globalOrder
		for k, c := range v.strategies {
			rep.StrategyMix[k] += c
		}
	}
	rep.FuncOrder = orderStat(funcOrders, len(vars))
	rep.GlobalOrder = orderStat(globalOrders, len(vars))
	rep.RegAlloc.MeanEntropy, rep.RegAlloc.DivergedFrac, rep.RegAlloc.Funcs =
		regAllocStats(vars, len(vars))

	rep.BTRAPre = newDistStat(distOf(vars, func(v *variantSummary) []int64 { return v.pre }))
	rep.BTRAPost = newDistStat(distOf(vars, func(v *variantSummary) []int64 { return v.post }))
	rep.NOPLen = newDistStat(distOf(vars, func(v *variantSummary) []int64 { return v.nops }))
	rep.PadBytes = newDistStat(distOf(vars, func(v *variantSummary) []int64 { return v.padSizes }))
	rep.BTDPPerFunc = newDistStat(distOf(vars, func(v *variantSummary) []int64 { return v.btdpCounts }))
	rep.BTDPSlotOff = newDistStat(distOf(vars, func(v *variantSummary) []int64 { return v.btdpSlotOffs }))

	rep.Survivor = survivorAnalysis(vars)
	return rep
}

// orderStat measures one order dimension across variants.
func orderStat(orders [][]string, variants int) OrderStat {
	items := 0
	if len(orders) > 0 {
		items = len(orders[0])
	}
	return OrderStat{
		Items:       items,
		Permutation: NewEntropyStat(PermutationEntropy(orders), variants),
		Positional:  NewEntropyStat(PositionalEntropy(orders), variants),
	}
}

// WriteJSON writes the canonical machine-readable report: indented JSON with
// struct-declared field order, sorted map keys, and roundStat-canonical
// floats — byte-identical for identical inputs.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText writes the human-readable report.
func (r *Report) WriteText(w io.Writer) error {
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	p("diversity audit: module %s (%s…)\n", r.Module, r.ModuleHash[:12])
	p("config %s (%s…), %d variants, base seed %d, gadget window %d\n\n",
		r.Config, r.ConfigFingerprint[:12], r.Variants, r.BaseSeed, r.GadgetLen)

	p("placement entropy (bits, ceiling %.2f):\n", r.FuncOrder.Permutation.MaxBits)
	p("  %-22s perm %6.3f (%.0f%%)  positional %6.3f\n", fmt.Sprintf("func order (%d):", r.FuncOrder.Items),
		r.FuncOrder.Permutation.Bits, 100*r.FuncOrder.Permutation.Normalized, r.FuncOrder.Positional.Bits)
	p("  %-22s perm %6.3f (%.0f%%)  positional %6.3f\n", fmt.Sprintf("global order (%d):", r.GlobalOrder.Items),
		r.GlobalOrder.Permutation.Bits, 100*r.GlobalOrder.Permutation.Normalized, r.GlobalOrder.Positional.Bits)
	p("  %-22s mean %6.3f (%.0f%%)  diverged %.0f%% of %d funcs\n\n", "reg-alloc order:",
		r.RegAlloc.MeanEntropy.Bits, 100*r.RegAlloc.MeanEntropy.Normalized,
		100*r.RegAlloc.DivergedFrac, r.RegAlloc.Funcs)

	p("code-generation distributions:\n")
	for _, row := range []struct {
		name string
		d    DistStat
	}{
		{"btra pre", r.BTRAPre}, {"btra post", r.BTRAPost}, {"nop run", r.NOPLen},
		{"global pad", r.PadBytes}, {"btdp/func", r.BTDPPerFunc}, {"btdp slot off", r.BTDPSlotOff},
	} {
		if row.d.Count == 0 {
			p("  %-14s (none)\n", row.name)
			continue
		}
		p("  %-14s n=%-6d distinct=%-3d range [%d,%d] mean %.2f entropy %.3f bits\n",
			row.name, row.d.Count, row.d.Distinct, row.d.Min, row.d.Max, row.d.Mean, row.d.Bits)
	}
	if len(r.StrategyMix) > 0 {
		keys := make([]string, 0, len(r.StrategyMix))
		for k := range r.StrategyMix {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		p("  %-14s", "btra setup")
		for _, k := range keys {
			p(" %s=%d", k, r.StrategyMix[k])
		}
		p("\n")
	}

	s := &r.Survivor
	p("\nsurvivor surface (%d pairs; mean/max fraction surviving):\n", s.Pairs)
	p("  %-14s %6.4f / %6.4f\n", "func offsets", s.MeanFuncOffset, s.MaxFuncOffset)
	p("  %-14s %6.4f / %6.4f\n", "global offsets", s.MeanGlobalOffset, s.MaxGlobalOffset)
	p("  %-14s %6.4f / %6.4f\n", "gadget windows", s.MeanGadget, s.MaxGadget)
	p("  %-14s %6.4f / %6.4f\n", "data words", s.MeanDataWord, s.MaxDataWord)
	if len(s.TopFuncs) > 0 {
		p("  surviving funcs:")
		for _, sym := range s.TopFuncs {
			p(" %s(%d)", sym.Name, sym.Pairs)
		}
		p("\n")
	}
	if len(s.TopGlobals) > 0 {
		p("  surviving globals:")
		for _, sym := range s.TopGlobals {
			p(" %s(%d)", sym.Name, sym.Pairs)
		}
		p("\n")
	}
	return nil
}

// Fixed histogram bounds per audit dimension. Content-independent constants
// so the /metrics output of two audits of the same module is comparable.
var (
	btraBounds    = []float64{0, 1, 2, 4, 6, 8, 12, 16}
	nopBounds     = []float64{0, 1, 2, 3, 4, 6, 8, 12, 16}
	padBounds     = []float64{0, 8, 16, 32, 64, 128, 256, 512}
	btdpBounds    = []float64{0, 1, 2, 3, 4, 5, 8}
	slotOffBounds = []float64{0, 8, 16, 32, 64, 128, 256}
)

// Publish exports the report into the observer's registry: one histogram
// per code-generation distribution, entropy and survivor gauges, and one
// gauge per defense knob — so a /metrics scrape carries both the measured
// diversity and the configuration that produced it. Nil-safe.
func (r *Report) Publish(obs *telemetry.Observer) {
	if obs == nil || obs.Reg() == nil {
		return
	}
	cfg := []string{"config", r.Config}
	observeDist := func(name string, bounds []float64, d DistStat) {
		h := obs.Histogram(name, bounds, cfg...)
		for _, b := range d.Buckets {
			for i := uint64(0); i < b.Count; i++ {
				h.Observe(float64(b.Value))
			}
		}
	}
	observeDist("audit.btra.pre", btraBounds, r.BTRAPre)
	observeDist("audit.btra.post", btraBounds, r.BTRAPost)
	observeDist("audit.nop.len", nopBounds, r.NOPLen)
	observeDist("audit.pad.bytes", padBounds, r.PadBytes)
	observeDist("audit.btdp.per_func", btdpBounds, r.BTDPPerFunc)
	observeDist("audit.btdp.slot_off", slotOffBounds, r.BTDPSlotOff)

	obs.Gauge("audit.variants", cfg...).Set(float64(r.Variants))
	obs.Gauge("audit.entropy.bits", append([]string{"order", "func"}, cfg...)...).Set(r.FuncOrder.Permutation.Bits)
	obs.Gauge("audit.entropy.bits", append([]string{"order", "global"}, cfg...)...).Set(r.GlobalOrder.Permutation.Bits)
	obs.Gauge("audit.entropy.bits", append([]string{"order", "regalloc"}, cfg...)...).Set(r.RegAlloc.MeanEntropy.Bits)
	surf := func(name string, mean, max float64) {
		obs.Gauge("audit.survivor.mean", append([]string{"surface", name}, cfg...)...).Set(mean)
		obs.Gauge("audit.survivor.max", append([]string{"surface", name}, cfg...)...).Set(max)
	}
	surf("func_offset", r.Survivor.MeanFuncOffset, r.Survivor.MaxFuncOffset)
	surf("global_offset", r.Survivor.MeanGlobalOffset, r.Survivor.MaxGlobalOffset)
	surf("gadget", r.Survivor.MeanGadget, r.Survivor.MaxGadget)
	surf("data_word", r.Survivor.MeanDataWord, r.Survivor.MaxDataWord)
	if r.cfg != nil {
		PublishConfig(obs, *r.cfg)
	}
}

// PublishConfig exports every numeric and boolean knob of a defense
// configuration as an audit.knob gauge labeled by knob and config name, so
// dashboards can correlate measured diversity with the settings that
// produced it.
func PublishConfig(obs *telemetry.Observer, cfg defense.Config) {
	if obs == nil || obs.Reg() == nil {
		return
	}
	v := reflect.ValueOf(cfg)
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		var val float64
		switch v.Field(i).Kind() {
		case reflect.Bool:
			if v.Field(i).Bool() {
				val = 1
			}
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			val = float64(v.Field(i).Int())
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			val = float64(v.Field(i).Uint())
		default:
			continue
		}
		obs.Gauge("audit.knob", "knob", f.Name, "config", cfg.Name).Set(val)
	}
}
