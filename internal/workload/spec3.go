package workload

import (
	"fmt"

	"r2c/internal/tir"
)

// Imagick models 638.imagick_s: an image-processing pipeline applying
// per-row filter kernels — medium call density, compute-heavy callees.
func Imagick(scale int) *tir.Module {
	const (
		rows   = 256
		rowPx  = 12
		numOps = 4
	)
	iters := div(20, scale)

	mb := tir.NewModule("imagick")
	mb.AddDefaultParam("magick_quality", 85)

	// Four row kernels: blur, sharpen, levels, quantize.
	for k := 0; k < numOps; k++ {
		f := mb.NewFunc(fmt.Sprintf("rowop%d", k), 2) // (rowPtr, seed)
		acc := f.NewReg()
		f.Mov(acc, f.Param(1))
		Loop(f, 0, rowPx, func(i tir.Reg) {
			c8 := f.Const(8)
			off := f.Bin(tir.OpMul, i, c8)
			slot := f.Bin(tir.OpAdd, f.Param(0), off)
			v := f.Load(slot, 0)
			cK := f.Const(uint64(k)*0x1003 + 7)
			v2 := f.Bin(tir.OpMul, v, cK)
			c3 := f.Const(3)
			v3 := f.Bin(tir.OpShr, v2, c3)
			f.Store(slot, 0, v3)
			f.BinTo(acc, tir.OpAdd, acc, v3)
		})
		f.Ret(acc)
	}

	main := mb.NewFunc("main", 0)
	bl := ballast(main, 26624) // ~104 MiB image
	sz := main.Const(rows * rowPx * 8)
	img := main.Alloc(sz)
	st := main.Const(0x3f84d5b5b5470917)
	Loop(main, 0, rows*rowPx, func(i tir.Reg) {
		v := Xorshift(main, st)
		c8 := main.Const(8)
		off := main.Bin(tir.OpMul, i, c8)
		slot := main.Bin(tir.OpAdd, img, off)
		main.Store(slot, 0, v)
	})
	chk := main.Const(0)
	Loop(main, 0, iters, func(it tir.Reg) {
		Loop(main, 0, rows, func(r tir.Reg) {
			cRow := main.Const(rowPx * 8)
			off := main.Bin(tir.OpMul, r, cRow)
			row := main.Bin(tir.OpAdd, img, off)
			for k := 0; k < numOps; k++ {
				v := main.Call(fmt.Sprintf("rowop%d", k), row, chk)
				main.BinTo(chk, tir.OpXor, chk, v)
			}
		})
	})
	main.Output(chk)
	main.Free(img)
	main.Free(bl)
	main.RetVoid()
	mb.SetEntry("main")
	return mb.MustBuild()
}

// Leela models 641.leela_s: Monte-Carlo tree search — playouts of small
// policy evaluations plus node allocation churn on the heap.
func Leela(scale int) *tir.Module {
	const movesPerPlayout = 32
	playouts := div(780, scale)

	mb := tir.NewModule("leela")
	mb.AddDefaultParam("leela_visits", 3200)

	policy := mb.NewFunc("policy_eval", 2) // (board, move)
	{
		loc := policy.NewLocal("feat", 8)
		la := policy.AddrLocal(loc)
		policy.Store(la, 0, policy.Param(0))
		b := policy.Load(la, 0)
		x := policy.Bin(tir.OpXor, b, policy.Param(1))
		policy.Ret(burnALU(policy, x, 60))
	}
	_ = policy

	playout := mb.NewFunc("playout", 1) // (seed) -> score
	{
		board := playout.NewReg()
		playout.Mov(board, playout.Param(0))
		score := playout.Const(0)
		Loop(playout, 0, movesPerPlayout, func(mv tir.Reg) {
			v := playout.Call("policy_eval", board, mv)
			playout.BinTo(board, tir.OpAdd, board, v)
			burnTo(playout, board, 12)
			playout.BinTo(score, tir.OpXor, score, v)
		})
		playout.Ret(score)
	}
	_ = playout

	main := mb.NewFunc("main", 0)
	bl := ballast(main, 19456) // ~76 MiB tree
	// Tree node churn: allocate a node per playout, free every other one.
	chk := main.Const(0)
	keepSlotSz := main.Const(8 * 64)
	keep := main.Alloc(keepSlotSz)
	st := main.Const(0x5dbe9028a5dcdf17)
	Loop(main, 0, playouts, func(p tir.Reg) {
		seed := Xorshift(main, st)
		s := main.Call("playout", seed)
		main.BinTo(chk, tir.OpXor, chk, s)
		nodeSz := main.Const(48)
		node := main.Alloc(nodeSz)
		main.Store(node, 0, s)
		c63 := main.Const(63)
		idx := main.Bin(tir.OpAnd, p, c63)
		c8 := main.Const(8)
		off := main.Bin(tir.OpMul, idx, c8)
		slot := main.Bin(tir.OpAdd, keep, off)
		main.Store(slot, 0, node)
		main.Free(node)
	})
	main.Output(chk)
	main.Free(keep)
	main.Free(bl)
	main.RetVoid()
	mb.SetEntry("main")
	return mb.MustBuild()
}

// NAB models 644.nab_s: molecular dynamics force computation — pairwise
// loops invoking a tiny distance/force kernel, producing by far the highest
// call count in Table 2 (135 billion).
func NAB(scale int) *tir.Module {
	const atoms = 740
	sweeps := div(1, scale) // pairwise loop is already ~273k calls

	mb := tir.NewModule("nab")
	mb.AddDefaultParam("nab_cutoff", 12)

	// The force kernel takes the full parameter set a real MD kernel does
	// (cutoff, well depth, radius, scaling, shift, exclusion mask, step):
	// nine parameters, of which three travel on the stack — the case
	// offset-invariant addressing exists for (Section 5.1.1).
	force := mb.NewFunc("pair_force", 9) // (xi, xj, cutoff, eps, sigma, scale, shift, mask, step)
	{
		d := force.Bin(tir.OpSub, force.Param(0), force.Param(1))
		d2 := force.Bin(tir.OpMul, d, d)
		r := force.Bin(tir.OpShr, d2, force.Param(2))
		e := force.Bin(tir.OpXor, force.Param(3), force.Param(4))
		e2 := force.Bin(tir.OpAnd, e, force.Param(7))
		s1 := force.Bin(tir.OpAdd, r, force.Param(5))
		s2 := force.Bin(tir.OpSub, s1, force.Param(6))
		s3 := force.Bin(tir.OpXor, s2, e2)
		one := force.Bin(tir.OpOr, s3, force.Param(8))
		force.Ret(one)
	}
	_ = force

	main := mb.NewFunc("main", 0)
	bl := ballast(main, 14336) // ~56 MiB trajectories
	sz := main.Const(atoms * 8)
	pos := main.Alloc(sz)
	st := main.Const(0x801f2e2858efc166)
	Loop(main, 0, atoms, func(i tir.Reg) {
		v := Xorshift(main, st)
		c8 := main.Const(8)
		off := main.Bin(tir.OpMul, i, c8)
		slot := main.Bin(tir.OpAdd, pos, off)
		main.Store(slot, 0, v)
	})
	energy := main.Const(0)
	cutoff := main.Const(7)
	eps := main.Const(0x1234)
	sigma := main.Const(0x77)
	fscale := main.Const(0xff00)
	shift := main.Const(3)
	mask := main.Const(0xffff)
	step := main.Const(0x10001)
	Loop(main, 0, sweeps, func(s tir.Reg) {
		Loop(main, 1, atoms, func(i tir.Reg) {
			c8 := main.Const(8)
			offI := main.Bin(tir.OpMul, i, c8)
			slotI := main.Bin(tir.OpAdd, pos, offI)
			xi := main.Load(slotI, 0)
			LoopTo(main, 0, i, func(j tir.Reg) {
				offJ := main.Bin(tir.OpMul, j, c8)
				slotJ := main.Bin(tir.OpAdd, pos, offJ)
				xj := main.Load(slotJ, 0)
				f := main.Call("pair_force", xi, xj, cutoff, eps, sigma, fscale, shift, mask, step)
				main.BinTo(energy, tir.OpAdd, energy, f)
				// Integrator bookkeeping between kernel calls.
				burnTo(main, energy, 30)
			})
		})
	})
	main.Output(energy)
	main.Free(pos)
	main.Free(bl)
	main.RetVoid()
	mb.SetEntry("main")
	return mb.MustBuild()
}

// XZ models 657.xz_s: LZMA-style compression — a hash-chain match finder
// with mostly inline work and occasional helper calls.
func XZ(scale int) *tir.Module {
	const words = 16384
	passes := div(1, scale)

	mb := tir.NewModule("xz")
	mb.AddDefaultParam("xz_dict_mb", 64)

	match := mb.NewFunc("find_match", 2) // (hash, word)
	{
		x := match.Bin(tir.OpXor, match.Param(0), match.Param(1))
		match.Ret(burnALU(match, x, 36))
	}
	_ = match
	encode := mb.NewFunc("range_encode", 2)
	{
		x := encode.Bin(tir.OpAdd, encode.Param(0), encode.Param(1))
		encode.Ret(burnALU(encode, x, 44))
	}
	_ = encode

	main := mb.NewFunc("main", 0)
	bl := ballast(main, 32768) // ~128 MiB dictionary
	sz := main.Const(words * 8)
	buf := main.Alloc(sz)
	st := main.Const(0x64a51195e0e3610d)
	Loop(main, 0, words, func(i tir.Reg) {
		v := Xorshift(main, st)
		c8 := main.Const(8)
		off := main.Bin(tir.OpMul, i, c8)
		slot := main.Bin(tir.OpAdd, buf, off)
		main.Store(slot, 0, v)
	})
	out := main.Const(0)
	Loop(main, 0, passes, func(p tir.Reg) {
		Loop(main, 0, words, func(i tir.Reg) {
			c8 := main.Const(8)
			off := main.Bin(tir.OpMul, i, c8)
			slot := main.Bin(tir.OpAdd, buf, off)
			w := main.Load(slot, 0)
			// Inline rolling hash.
			cMul := main.Const(0x9e3779b185ebca87)
			h := main.Bin(tir.OpMul, w, cMul)
			c29 := main.Const(29)
			h2 := main.Bin(tir.OpShr, h, c29)
			main.BinTo(out, tir.OpXor, out, h2)
			// Call the match finder on every third word.
			c3 := main.Const(3)
			rem := main.Bin(tir.OpRem, i, c3)
			z := main.Const(0)
			isZero := main.Bin(tir.OpEq, rem, z)
			If(main, isZero, func() {
				m := main.Call("find_match", h2, w)
				main.BinTo(out, tir.OpAdd, out, m)
			})
			// Emit a range-coded symbol every 16th word.
			c15 := main.Const(15)
			low := main.Bin(tir.OpAnd, i, c15)
			isEmit := main.Bin(tir.OpEq, low, z)
			If(main, isEmit, func() {
				e := main.Call("range_encode", out, w)
				main.BinTo(out, tir.OpXor, out, e)
			})
		})
	})
	main.Output(out)
	main.Free(buf)
	main.Free(bl)
	main.RetVoid()
	mb.SetEntry("main")
	return mb.MustBuild()
}
