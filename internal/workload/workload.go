// Package workload provides the benchmark programs of the evaluation: a
// synthetic stand-in for each C/C++ benchmark of SPEC CPU 2017 (Section
// 6.2), the webserver workloads (Section 6.2.4), and a browser-scale module
// for the scalability experiment (Section 6.3).
//
// SPEC CPU 2017 is proprietary, so each benchmark is replaced by a small
// program with the same two overhead drivers the paper identifies
// (Section 7.1): executed-call density (Table 2) and hot code footprint
// (instruction-cache pressure). Each synthetic program also borrows the
// original's structural character — perlbench dispatches bytecode through
// function-pointer tables, omnetpp drains an event queue through virtual
// handlers, nab runs tiny force kernels in pairwise loops, lbm is a nearly
// call-free stencil, and so on. Call counts are proportional to Table 2 at
// a fixed global scale (CallScale), so measured counts multiplied by the
// inverse scale regenerate the table.
package workload

import (
	"fmt"

	"r2c/internal/tir"
)

// CallScale is the global factor between a benchmark's simulated call count
// and the paper's Table 2 call count (median across inputs). Reported
// counts are scaled back up by 1/CallScale.
const CallScale = 2.0e-6

// Benchmark describes one SPEC-like workload.
type Benchmark struct {
	Name string
	// PaperCalls is the Table 2 median call frequency.
	PaperCalls uint64
	// Build constructs the program. scale divides the default iteration
	// count: 1 = full calibrated size, larger values shrink the run (used
	// by -short tests).
	Build func(scale int) *tir.Module
}

// SPEC returns the twelve C/C++ benchmarks of SPEC CPU 2017 in Table 2
// order.
func SPEC() []Benchmark {
	return []Benchmark{
		{"perlbench", 9_435_182_963, Perlbench},
		{"gcc", 7_471_474_392, GCC},
		{"mcf", 38_657_893_688, MCF},
		{"lbm", 20_906_700, LBM},
		{"omnetpp", 23_536_583_520, Omnetpp},
		{"xalancbmk", 12_430_137_048, Xalancbmk},
		{"x264", 3_400_115_007, X264},
		{"deepsjeng", 11_366_032_234, Deepsjeng},
		{"imagick", 10_441_212_712, Imagick},
		{"leela", 13_108_456_661, Leela},
		{"nab", 135_237_228_510, NAB},
		{"xz", 3_287_645_643, XZ},
	}
}

// ByName returns the benchmark with the given name.
func ByName(name string) (Benchmark, bool) {
	for _, b := range SPEC() {
		if b.Name == name {
			return b, true
		}
	}
	switch name {
	case "nginx":
		return Benchmark{Name: "nginx", Build: Nginx}, true
	case "apache":
		return Benchmark{Name: "apache", Build: Apache}, true
	}
	return Benchmark{}, false
}

// div scales an iteration count down, keeping at least 1.
func div(n uint64, scale int) uint64 {
	if scale < 1 {
		scale = 1
	}
	v := n / uint64(scale)
	if v == 0 {
		v = 1
	}
	return v
}

// Loop emits for (i = lo; i < hi; i++) { body(i) } into fb and leaves the
// builder positioned after the loop.
func Loop(fb *tir.FuncBuilder, lo, hi uint64, body func(i tir.Reg)) {
	n := fb.Const(hi)
	LoopTo(fb, lo, n, body)
}

// LoopTo is Loop with a register upper bound.
func LoopTo(fb *tir.FuncBuilder, lo uint64, hi tir.Reg, body func(i tir.Reg)) {
	i := fb.Const(lo)
	pre := fb.Block()
	head := fb.NewBlock()
	bodyB := fb.NewBlock()
	done := fb.NewBlock()
	fb.SetBlock(pre)
	fb.Br(head)
	fb.SetBlock(head)
	c := fb.Bin(tir.OpLt, i, hi)
	fb.CondBr(c, bodyB, done)
	fb.SetBlock(bodyB)
	body(i)
	one := fb.Const(1)
	fb.BinTo(i, tir.OpAdd, i, one)
	fb.Br(head)
	fb.SetBlock(done)
}

// If emits if (cond != 0) { then() } and continues after it.
func If(fb *tir.FuncBuilder, cond tir.Reg, then func()) {
	pre := fb.Block()
	thenB := fb.NewBlock()
	done := fb.NewBlock()
	fb.SetBlock(pre)
	fb.CondBr(cond, thenB, done)
	fb.SetBlock(thenB)
	then()
	fb.Br(done)
	fb.SetBlock(done)
}

// Xorshift emits an xorshift64 step on state (in place) and returns state.
// Workloads use it as their deterministic PRNG.
func Xorshift(fb *tir.FuncBuilder, state tir.Reg) tir.Reg {
	c13 := fb.Const(13)
	t := fb.Bin(tir.OpShl, state, c13)
	fb.BinTo(state, tir.OpXor, state, t)
	c7 := fb.Const(7)
	t2 := fb.Bin(tir.OpShr, state, c7)
	fb.BinTo(state, tir.OpXor, state, t2)
	c17 := fb.Const(17)
	t3 := fb.Bin(tir.OpShl, state, c17)
	fb.BinTo(state, tir.OpXor, state, t3)
	return state
}

// burnALU emits n dependent ALU operations on v and returns the result
// register — pure compute between calls. The sequence is a proper mixer
// (multiply / xor / add / xorshift), so the result stays uniformly
// distributed: several workloads use burned values for dispatch indexing,
// and a skewed distribution would collapse their hot code footprint.
func burnALU(fb *tir.FuncBuilder, v tir.Reg, n int) tir.Reg {
	acc := fb.NewReg()
	fb.Mov(acc, v)
	burnTo(fb, acc, n)
	return acc
}

// leafFamily generates n small leaf functions named prefix0..prefixN-1,
// each one parameter, each doing work ALU ops with a distinct constant mix
// — the "many small hot functions" pattern that spreads the hot footprint
// across the instruction cache. Each function keeps a small local scratch
// slot, so it has a stack frame: BTDP instrumentation applies (Section 5.2
// skips only functions without stack allocations) and stack-slot
// randomization has something to shuffle.
func leafFamily(mb *tir.ModuleBuilder, prefix string, n, work int) []string {
	names := make([]string, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("%s%d", prefix, i)
		names[i] = name
		f := mb.NewFunc(name, 1)
		loc := f.NewLocal("scratch", 8)
		a := f.AddrLocal(loc)
		f.Store(a, 0, f.Param(0))
		v := f.Load(a, 0)
		c := f.Const(uint64(i)*0x85eb + 0x1d)
		x := f.Bin(tir.OpXor, v, c)
		r := burnALU(f, x, work)
		f.Ret(r)
	}
	return names
}

// burnTo emits n dependent ALU ops folding into an existing accumulator
// register — inline work between calls in a hot loop. Like burnALU it is a
// mixer that preserves value uniformity.
func burnTo(fb *tir.FuncBuilder, acc tir.Reg, n int) {
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0:
			c := fb.Const(uint64(i)*0x9e3779b9 + 0xff51afd7ed558ccd)
			fb.BinTo(acc, tir.OpMul, acc, c)
		case 1:
			c := fb.Const(uint64(i)<<9 | 0x55)
			fb.BinTo(acc, tir.OpXor, acc, c)
		case 2:
			c := fb.Const(uint64(i)*0x2545 + 0x9)
			fb.BinTo(acc, tir.OpAdd, acc, c)
		case 3:
			c := fb.Const(23)
			t := fb.Bin(tir.OpShr, acc, c)
			fb.BinTo(acc, tir.OpXor, acc, t)
		}
	}
}
