package workload

import (
	"r2c/internal/rng"
	"r2c/internal/tir"
)

// Random generates a random but well-formed TIR program: a DAG of
// functions with random bodies (ALU chains, locals, loads/stores, loops,
// branches, direct/indirect/tail calls, heap use), every output fed by a
// checksum. The differential fuzzer and the
// codegen property tests feed on it: whatever the generator produces, every
// defense configuration must preserve its behaviour and every structural
// invariant must hold.
func Random(seed uint64) *tir.Module {
	r := rng.New(seed)
	mb := tir.NewModule("fuzz")

	nFuncs := r.IntRange(3, 8)
	names := make([]string, nFuncs)
	params := make([]int, nFuncs)
	for i := range names {
		names[i] = "f" + string(rune('a'+i))
		params[i] = r.IntRange(1, 8) // up to two stack args
	}
	mb.AddGlobal("gdata", 32, r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64())
	mb.AddDefaultParam("gparam", r.Uint64())
	mb.AddFuncPtr("gfp", names[0])

	// Functions may call only earlier functions (acyclic except for a
	// bounded self-recursion in f0).
	for i := nFuncs - 1; i >= 0; i-- {
		f := mb.NewFunc(names[i], params[i])
		emitRandomBody(r, mb, f, names[:i], params[:i], params[i], i == 0)
	}

	main := mb.NewFunc("main", 0)
	sz := main.Const(uint64(r.IntRange(1, 8)) * 64)
	buf := main.Alloc(sz)
	st := main.Const(r.Uint64() | 1)
	chk := main.Const(0)
	iters := uint64(r.IntRange(2, 6))
	// A loop calling the top-level functions with evolving arguments.
	i := main.Const(0)
	n := main.Const(iters)
	head := main.NewBlock()
	body := main.NewBlock()
	done := main.NewBlock()
	main.SetBlock(0)
	main.Br(head)
	main.SetBlock(head)
	c := main.Bin(tir.OpLt, i, n)
	main.CondBr(c, body, done)
	main.SetBlock(body)
	for fi := nFuncs - 1; fi >= 0; fi-- {
		args := make([]tir.Reg, params[fi])
		for ai := range args {
			switch r.Intn(3) {
			case 0:
				args[ai] = st
			case 1:
				args[ai] = chk
			default:
				args[ai] = main.Const(r.Uint64())
			}
		}
		v := main.Call(names[fi], args...)
		main.BinTo(chk, tir.OpXor, chk, v)
	}
	main.Store(buf, 0, chk)
	ld := main.Load(buf, 0)
	main.BinTo(chk, tir.OpAdd, chk, ld)
	one := main.Const(1)
	main.BinTo(i, tir.OpAdd, i, one)
	main.Br(head)
	main.SetBlock(done)
	main.Output(chk)
	main.Free(buf)
	main.RetVoid()

	mb.SetEntry("main")
	return mb.MustBuild()
}

// emitRandomBody fills f with random straight-line work, an optional inner
// loop, an optional call (direct, indirect, tail, or bounded recursion),
// and returns a value derived from everything it computed.
func emitRandomBody(r *rng.RNG, mb *tir.ModuleBuilder, f *tir.FuncBuilder, callees []string, calleeParams []int, nParams int, allowRecurse bool) {
	acc := f.NewReg()
	f.Mov(acc, f.Param(0))
	for p := 1; p < nParams; p++ {
		f.BinTo(acc, tir.OpXor, acc, f.Param(p))
	}

	// Locals.
	var localAddrs []tir.Reg
	for l := 0; l < r.Intn(3); l++ {
		loc := f.NewLocal("l", uint64(r.IntRange(1, 4))*8)
		a := f.AddrLocal(loc)
		f.Store(a, 0, acc)
		localAddrs = append(localAddrs, a)
	}

	// Straight-line ALU mix (division-free; the generator avoids UB).
	ops := []tir.Op{tir.OpAdd, tir.OpSub, tir.OpMul, tir.OpAnd, tir.OpOr, tir.OpXor, tir.OpShl, tir.OpShr}
	for k := 0; k < r.IntRange(2, 14); k++ {
		c := f.Const(r.Uint64() | 1)
		op := ops[r.Intn(len(ops))]
		if op == tir.OpShl || op == tir.OpShr {
			c = f.Const(uint64(r.Intn(31)))
		}
		f.BinTo(acc, op, acc, c)
	}

	// Global access.
	if r.Bool() {
		g := f.AddrGlobal("gdata")
		v := f.Load(g, int64(r.Intn(4))*8)
		f.BinTo(acc, tir.OpXor, acc, v)
	}

	// Optional inner loop.
	if r.Bool() {
		i := f.Const(0)
		n := f.Const(uint64(r.IntRange(1, 12)))
		pre := f.Block()
		head := f.NewBlock()
		body := f.NewBlock()
		done := f.NewBlock()
		f.SetBlock(pre)
		f.Br(head)
		f.SetBlock(head)
		c := f.Bin(tir.OpLt, i, n)
		f.CondBr(c, body, done)
		f.SetBlock(body)
		k := f.Const(0x9e3779b97f4a7c15)
		f.BinTo(acc, tir.OpMul, acc, k)
		one := f.Const(1)
		f.BinTo(i, tir.OpAdd, i, one)
		f.Br(head)
		f.SetBlock(done)
	}

	// Read back a local.
	if len(localAddrs) > 0 {
		v := f.Load(localAddrs[r.Intn(len(localAddrs))], 0)
		f.BinTo(acc, tir.OpAdd, acc, v)
	}

	// Optional call.
	switch {
	case allowRecurse && r.Intn(3) == 0:
		// Structurally bounded self-recursion: the first parameter shrinks
		// by four bits per level, so the depth is at most sixteen.
		bound := f.Const(0xff)
		deep := f.Bin(tir.OpGt, f.Param(0), bound)
		pre := f.Block()
		rec := f.NewBlock()
		out := f.NewBlock()
		f.SetBlock(pre)
		f.CondBr(deep, rec, out)
		f.SetBlock(rec)
		four := f.Const(4)
		dec := f.Bin(tir.OpShr, f.Param(0), four)
		args := make([]tir.Reg, nParams)
		for ai := range args {
			args[ai] = dec
		}
		rv := f.Call("fa", args...)
		f.BinTo(acc, tir.OpXor, acc, rv)
		f.Br(out)
		f.SetBlock(out)
	case len(callees) > 0 && r.Bool():
		ci := r.Intn(len(callees))
		args := make([]tir.Reg, calleeParams[ci])
		for ai := range args {
			args[ai] = acc
		}
		if r.Intn(4) == 0 && calleeParams[ci] <= 6 {
			f.TailCall(callees[ci], args...)
			return
		}
		if r.Intn(3) == 0 {
			fp := f.AddrFunc(callees[ci])
			rv := f.CallIndirect(fp, args...)
			f.BinTo(acc, tir.OpXor, acc, rv)
		} else {
			rv := f.Call(callees[ci], args...)
			f.BinTo(acc, tir.OpXor, acc, rv)
		}
	}
	f.Ret(acc)
}
