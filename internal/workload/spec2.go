package workload

import (
	"fmt"

	"r2c/internal/tir"
)

// Omnetpp models 620.omnetpp_s: a discrete-event simulator draining an
// event queue through per-module virtual handlers. The profile is extreme
// call density (Table 2: 23.5 billion calls) with tiny handlers spread over
// a wide code footprint — the benchmark where the push-based BTRA setup
// hurts most (21% in Section 6.2.1) and AVX2 helps most.
func Omnetpp(scale int) *tir.Module {
	const (
		numHandlers = 80
		qlen        = 256
	)
	events := div(11_600, scale)

	mb := tir.NewModule("omnetpp")
	mb.AddDefaultParam("omnet_sim_limit", 1<<20)

	// Per-event statistics recording, as omnetpp's result collection does.
	qstat := mb.NewFunc("qstat", 1)
	{
		loc := qstat.NewLocal("acc", 8)
		la := qstat.AddrLocal(loc)
		qstat.Store(la, 0, qstat.Param(0))
		v := qstat.Load(la, 0)
		qstat.Ret(burnALU(qstat, v, 6))
	}
	_ = qstat

	// Queue helpers: tiny functions called on every event.
	qpush := mb.NewFunc("qpush", 3) // (q, idx, val)
	{
		mask := qpush.Const(qlen - 1)
		i := qpush.Bin(tir.OpAnd, qpush.Param(1), mask)
		c8 := qpush.Const(8)
		off := qpush.Bin(tir.OpMul, i, c8)
		slot := qpush.Bin(tir.OpAdd, qpush.Param(0), off)
		qpush.Store(slot, 0, qpush.Param(2))
		qpush.Ret(qpush.Param(2))
	}
	_ = qpush
	qpop := mb.NewFunc("qpop", 2) // (q, idx)
	{
		mask := qpop.Const(qlen - 1)
		i := qpop.Bin(tir.OpAnd, qpop.Param(1), mask)
		c8 := qpop.Const(8)
		off := qpop.Bin(tir.OpMul, i, c8)
		slot := qpop.Bin(tir.OpAdd, qpop.Param(0), off)
		qpop.Ret(qpop.Load(slot, 0))
	}
	_ = qpop

	// Event handlers ("virtual" methods): tiny bodies with two call sites
	// each (schedule the follow-up event, record statistics). The many
	// small instrumented call sites spread over a near-capacity footprint
	// are what make the push-based setup the 21% outlier here while the
	// more compact AVX2 sequence stays inside the instruction cache.
	for i := 0; i < numHandlers; i++ {
		h := mb.NewFunc(fmt.Sprintf("handle%d", i), 3) // (q, idx, msg)
		loc := h.NewLocal("msgbuf", 8)
		la := h.AddrLocal(loc)
		h.Store(la, 0, h.Param(2))
		m := h.Load(la, 0)
		c := h.Const(uint64(i)*0x61c8 + 5)
		v := h.Bin(tir.OpXor, m, c)
		v = burnALU(h, v, 6+i%3)
		h.CallVoid("qpush", h.Param(0), h.Param(1), v)
		s := h.Call("qstat", v)
		h.Ret(h.Bin(tir.OpXor, v, s))
	}
	for i := 0; i < numHandlers; i++ {
		mb.AddFuncPtr(fmt.Sprintf("vtab%d", i), fmt.Sprintf("handle%d", i))
	}

	main := mb.NewFunc("main", 0)
	bl := ballast(main, 12288) // ~48 MiB of module state
	qsz := main.Const(qlen * 8)
	q := main.Alloc(qsz)
	st := main.Const(0xbe5466cf34e90c6c)
	Loop(main, 0, qlen, func(i tir.Reg) {
		v := Xorshift(main, st)
		c8 := main.Const(8)
		off := main.Bin(tir.OpMul, i, c8)
		slot := main.Bin(tir.OpAdd, q, off)
		main.Store(slot, 0, v)
	})
	// Packed vtable on the heap.
	tsz := main.Const(numHandlers * 8)
	vt := main.Alloc(tsz)
	for i := 0; i < numHandlers; i++ {
		a := main.AddrGlobal(fmt.Sprintf("vtab%d", i))
		fp := main.Load(a, 0)
		main.Store(vt, int64(i)*8, fp)
	}

	chk := main.Const(0)
	Loop(main, 0, events, func(ev tir.Reg) {
		msg := main.Call("qpop", q, ev)
		nh := main.Const(numHandlers)
		hIdx := main.Bin(tir.OpRem, msg, nh)
		c8 := main.Const(8)
		hOff := main.Bin(tir.OpMul, hIdx, c8)
		hSlot := main.Bin(tir.OpAdd, vt, hOff)
		h := main.Load(hSlot, 0)
		r := main.CallIndirect(h, q, ev, msg)
		main.BinTo(chk, tir.OpXor, chk, r)
		// Simulation-kernel bookkeeping between events (future-event-set
		// maintenance, simulation-time advance) — hot, cache-resident work.
		burnTo(main, chk, 35)
	})
	main.Output(chk)
	main.Free(q)
	main.Free(vt)
	main.Free(bl)
	main.RetVoid()
	mb.SetEntry("main")
	return mb.MustBuild()
}

// Xalancbmk models 623.xalancbmk_s: an XSLT processor streaming tokens
// through a very wide family of small node handlers — the i-cache-bound
// benchmark that tops the BTDP, prolog-trap and AVX rows of Table 1.
func Xalancbmk(scale int) *tir.Module {
	const (
		numKinds = 88
		tokens   = 512
	)
	iters := div(16, scale)

	mb := tir.NewModule("xalancbmk")
	hashes := leafFamily(mb, "strhash", 24, 16)
	mb.AddDefaultParam("xalan_output_mode", 3)

	// Node handlers: small bodies, each with one instrumented call site
	// (a string-hash helper), spread over a footprint that sits right at
	// instruction-cache capacity. This is what makes xalancbmk the maximum
	// of the BTDP, prolog and AVX rows of Table 1: even small per-function
	// code growth spills the working set.
	for i := 0; i < numKinds; i++ {
		h := mb.NewFunc(fmt.Sprintf("node%d", i), 1)
		loc := h.NewLocal("nodebuf", 16)
		la := h.AddrLocal(loc)
		h.Store(la, 0, h.Param(0))
		v0 := h.Load(la, 0)
		c := h.Const(uint64(i)<<7 | 0x2b)
		v := h.Bin(tir.OpAdd, v0, c)
		v = burnALU(h, v, 5+i%3)
		v = h.Call(hashes[i%len(hashes)], v)
		h.Ret(v)
	}
	for i := 0; i < numKinds; i++ {
		mb.AddFuncPtr(fmt.Sprintf("ttab%d", i), fmt.Sprintf("node%d", i))
	}

	// The template dispatcher: virtual dispatch through the template
	// table, like xalanc's element-handler vtables.
	dispatch := mb.NewFunc("apply_templates", 3) // (table, kind, val)
	{
		c8 := dispatch.Const(8)
		off := dispatch.Bin(tir.OpMul, dispatch.Param(1), c8)
		slot := dispatch.Bin(tir.OpAdd, dispatch.Param(0), off)
		h := dispatch.Load(slot, 0)
		r := dispatch.CallIndirect(h, dispatch.Param(2))
		dispatch.Ret(r)
	}
	_ = dispatch

	main := mb.NewFunc("main", 0)
	bl := ballast(main, 22528) // ~88 MiB DOM
	// Packed template table on the heap (the globals are shuffled).
	ttsz := main.Const(numKinds * 8)
	tt := main.Alloc(ttsz)
	for i := 0; i < numKinds; i++ {
		a := main.AddrGlobal(fmt.Sprintf("ttab%d", i))
		fp := main.Load(a, 0)
		main.Store(tt, int64(i)*8, fp)
	}
	sz := main.Const(tokens * 8)
	buf := main.Alloc(sz)
	st := main.Const(0xc0ac29b7c97c50dd)
	Loop(main, 0, tokens, func(i tir.Reg) {
		v := Xorshift(main, st)
		c8 := main.Const(8)
		off := main.Bin(tir.OpMul, i, c8)
		slot := main.Bin(tir.OpAdd, buf, off)
		main.Store(slot, 0, v)
	})
	chk := main.Const(0)
	Loop(main, 0, iters, func(it tir.Reg) {
		Loop(main, 0, tokens, func(i tir.Reg) {
			c8 := main.Const(8)
			off := main.Bin(tir.OpMul, i, c8)
			slot := main.Bin(tir.OpAdd, buf, off)
			tok := main.Load(slot, 0)
			nk := main.Const(numKinds)
			kind := main.Bin(tir.OpRem, tok, nk)
			r := main.Call("apply_templates", tt, kind, tok)
			main.BinTo(chk, tir.OpAdd, chk, r)
			// Serializer work between template applications.
			burnTo(main, chk, 55)
		})
	})
	main.Output(chk)
	main.Free(buf)
	main.Free(tt)
	main.Free(bl)
	main.RetVoid()
	mb.SetEntry("main")
	return mb.MustBuild()
}

// X264 models 625.x264_s: a video encoder spending its time in wide
// compute kernels (SAD, DCT) with comparatively few calls per unit work.
func X264(scale int) *tir.Module {
	const blocks = 450
	frames := div(10, scale)

	mb := tir.NewModule("x264")
	mb.AddDefaultParam("x264_qp", 23)

	sad := mb.NewFunc("sad16", 8) // (ref, cur, blk, stride, w, h, lambda, qp)
	{
		acc := sad.Const(0)
		Loop(sad, 0, 16, func(i tir.Reg) {
			c8 := sad.Const(8)
			off := sad.Bin(tir.OpMul, i, c8)
			a := sad.Bin(tir.OpAdd, sad.Param(0), off)
			b := sad.Bin(tir.OpAdd, sad.Param(1), off)
			va := sad.Load(a, 0)
			vb := sad.Load(b, 0)
			d := sad.Bin(tir.OpSub, va, vb)
			c63 := sad.Const(63)
			sign := sad.Bin(tir.OpShr, d, c63)
			d2 := sad.Bin(tir.OpXor, d, sign)
			sad.BinTo(acc, tir.OpAdd, acc, d2)
		})
		lam := sad.Bin(tir.OpMul, sad.Param(6), sad.Param(7))
		c4 := sad.Const(4)
		pen := sad.Bin(tir.OpShr, lam, c4)
		st := sad.Bin(tir.OpAnd, sad.Param(3), sad.Param(4))
		h := sad.Bin(tir.OpXor, st, sad.Param(5))
		sad.BinTo(acc, tir.OpAdd, acc, pen)
		sad.BinTo(acc, tir.OpXor, acc, h)
		sad.Ret(acc)
	}
	_ = sad
	dct := mb.NewFunc("dct8", 2) // (buf, blk)
	{
		acc := dct.NewReg()
		dct.Mov(acc, dct.Param(1))
		Loop(dct, 0, 8, func(i tir.Reg) {
			c8 := dct.Const(8)
			off := dct.Bin(tir.OpMul, i, c8)
			slot := dct.Bin(tir.OpAdd, dct.Param(0), off)
			v := dct.Load(slot, 0)
			s := dct.Bin(tir.OpAdd, v, acc)
			c1 := dct.Const(1)
			r := dct.Bin(tir.OpShr, s, c1)
			dct.Store(slot, 0, r)
			dct.Mov(acc, r)
		})
		dct.Ret(acc)
	}
	_ = dct

	main := mb.NewFunc("main", 0)
	bl := ballast(main, 18432) // ~72 MiB frame buffers
	sz := main.Const(256 * 8)
	ref := main.Alloc(sz)
	cur := main.Alloc(sz)
	st := main.Const(0x9216d5d98979fb1b)
	Loop(main, 0, 256, func(i tir.Reg) {
		c8 := main.Const(8)
		off := main.Bin(tir.OpMul, i, c8)
		v := Xorshift(main, st)
		ra := main.Bin(tir.OpAdd, ref, off)
		main.Store(ra, 0, v)
		v2 := Xorshift(main, st)
		ca := main.Bin(tir.OpAdd, cur, off)
		main.Store(ca, 0, v2)
	})
	cost := main.Const(0)
	stride := main.Const(16)
	wth := main.Const(16)
	hgt := main.Const(16)
	lambda := main.Const(21)
	qp := main.Const(23)
	Loop(main, 0, frames, func(f tir.Reg) {
		Loop(main, 0, blocks, func(b tir.Reg) {
			s := main.Call("sad16", ref, cur, b, stride, wth, hgt, lambda, qp)
			main.BinTo(cost, tir.OpAdd, cost, s)
			one := main.Const(1)
			low := main.Bin(tir.OpAnd, b, one)
			If(main, low, func() {
				d := main.Call("dct8", cur, b)
				main.BinTo(cost, tir.OpXor, cost, d)
			})
		})
	})
	main.Output(cost)
	main.Free(ref)
	main.Free(cur)
	main.Free(bl)
	main.RetVoid()
	mb.SetEntry("main")
	return mb.MustBuild()
}

// Deepsjeng models 631.deepsjeng_s: alpha-beta game-tree search — deep
// recursion with move generation and evaluation calls at every node.
func Deepsjeng(scale int) *tir.Module {
	const (
		branch = 4
		depth  = 5
	)
	rootMoves := div(8, scale)

	mb := tir.NewModule("deepsjeng")
	mb.AddDefaultParam("sjeng_hash_mb", 512)

	eval := mb.NewFunc("evaluate", 1)
	{
		loc := eval.NewLocal("pawnhash", 8)
		la := eval.AddrLocal(loc)
		eval.Store(la, 0, eval.Param(0))
		v0 := eval.Load(la, 0)
		v := burnALU(eval, v0, 130)
		eval.Ret(v)
	}
	_ = eval
	genmoves := mb.NewFunc("gen_moves", 1)
	{
		c := genmoves.Const(0x6a09e667f3bcc909)
		v := genmoves.Bin(tir.OpMul, genmoves.Param(0), c)
		c5 := genmoves.Const(5)
		genmoves.Ret(genmoves.Bin(tir.OpShr, v, c5))
	}
	_ = genmoves

	search := mb.NewFunc("search", 2) // (pos, depth)
	{
		zero := search.Const(0)
		isLeaf := search.Bin(tir.OpEq, search.Param(1), zero)
		leafB := search.NewBlock()
		recB := search.NewBlock()
		search.SetBlock(0)
		search.CondBr(isLeaf, leafB, recB)
		search.SetBlock(leafB)
		e := search.Call("evaluate", search.Param(0))
		search.Ret(e)
		search.SetBlock(recB)
		moves := search.Call("gen_moves", search.Param(0))
		best := search.Const(0)
		burnTo(search, moves, 60)
		one := search.Const(1)
		d1 := search.Bin(tir.OpSub, search.Param(1), one)
		Loop(search, 0, branch, func(m tir.Reg) {
			c := search.Const(0x87c37b91114253d5)
			pm := search.Bin(tir.OpMul, moves, c)
			child := search.Bin(tir.OpAdd, pm, m)
			v := search.Call("search", child, d1)
			gt := search.Bin(tir.OpGt, v, best)
			If(search, gt, func() { search.Mov(best, v) })
		})
		search.Ret(best)
	}
	_ = search

	main := mb.NewFunc("main", 0)
	bl := ballast(main, 16384) // ~64 MiB transposition table
	chk := main.Const(0)
	dep := main.Const(depth)
	Loop(main, 0, rootMoves, func(mv tir.Reg) {
		c := main.Const(0x4cf5ad432745937f)
		pos := main.Bin(tir.OpMul, mv, c)
		v := main.Call("search", pos, dep)
		main.BinTo(chk, tir.OpXor, chk, v)
	})
	main.Output(chk)
	main.Free(bl)
	main.RetVoid()
	mb.SetEntry("main")
	return mb.MustBuild()
}
