package workload

import (
	"math"
	"reflect"
	"testing"

	"r2c/internal/defense"
	"r2c/internal/sim"
	"r2c/internal/vm"
)

func testScale(t *testing.T) int {
	if testing.Short() {
		return 8
	}
	return 4
}

// TestSPECDifferential runs every SPEC workload under baseline and full R2C
// (both setups) and checks that outputs match: diversification must never
// change benchmark results.
func TestSPECDifferential(t *testing.T) {
	scale := testScale(t)
	for _, b := range SPEC() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			m := b.Build(scale)
			base, _, err := sim.Run(m, defense.Off(), 11, vm.EPYCRome())
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}
			if len(base.Output) == 0 {
				t.Fatal("no output")
			}
			for _, cfg := range []defense.Config{defense.R2CFull(), defense.R2CPush()} {
				got, _, err := sim.Run(m, cfg, 13, vm.EPYCRome())
				if err != nil {
					t.Fatalf("%s: %v", cfg.Name, err)
				}
				if !reflect.DeepEqual(got.Output, base.Output) {
					t.Errorf("%s: output diverged: %v vs %v", cfg.Name, got.Output, base.Output)
				}
			}
		})
	}
}

// TestWebserverDifferential does the same for the webserver workloads.
func TestWebserverDifferential(t *testing.T) {
	for _, name := range []string{"nginx", "apache"} {
		b, ok := ByName(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		m := b.Build(testScale(t) * 4)
		base, _, err := sim.Run(m, defense.Off(), 3, vm.I99900K())
		if err != nil {
			t.Fatalf("%s baseline: %v", name, err)
		}
		full, _, err := sim.Run(m, defense.R2CFull(), 5, vm.I99900K())
		if err != nil {
			t.Fatalf("%s full: %v", name, err)
		}
		if !reflect.DeepEqual(base.Output, full.Output) {
			t.Errorf("%s: output diverged", name)
		}
	}
}

// TestCallCountsTrackTable2 verifies that the measured executed-call counts
// are proportional to the paper's Table 2 within a reasonable tolerance:
// the Table 2 experiment depends on this proportionality.
func TestCallCountsTrackTable2(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale run")
	}
	for _, b := range SPEC() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			res, _, err := sim.Run(b.Build(1), defense.Off(), 1, vm.EPYCRome())
			if err != nil {
				t.Fatal(err)
			}
			want := float64(b.PaperCalls) * CallScale
			got := float64(res.Calls)
			ratio := got / want
			// lbm's call count is tiny; allow it a wider band.
			lo, hi := 0.5, 2.0
			if b.Name == "lbm" {
				lo, hi = 0.3, 4.0
			}
			if ratio < lo || ratio > hi {
				t.Errorf("calls = %v, want ≈ %.0f (ratio %.2f, log2 %.2f)",
					res.Calls, want, ratio, math.Log2(ratio))
			}
		})
	}
}

// TestBrowserScaleCompiles is the Section 6.3 scalability check at test
// size; the bench harness uses a larger module.
func TestBrowserScaleCompiles(t *testing.T) {
	m := BrowserScale(512)
	base, _, err := sim.Run(m, defense.Off(), 2, vm.Xeon8358())
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := sim.Run(m, defense.R2CFull(), 2, vm.Xeon8358())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Output, full.Output) {
		t.Error("browser-scale output diverged")
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("omnetpp"); !ok {
		t.Error("omnetpp not found")
	}
	if _, ok := ByName("nginx"); !ok {
		t.Error("nginx not found")
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Error("nonexistent benchmark found")
	}
}
