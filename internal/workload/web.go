package workload

import (
	"fmt"

	"r2c/internal/tir"
)

// WebRequests is the default number of requests a webserver run serves.
const WebRequests = 4000

// Nginx models the nginx throughput benchmark of Section 6.2.4: an
// event-loop server where each connection event runs a compact
// parse→route→respond pipeline over a 64-byte page, with per-request buffer
// churn on the heap. Throughput is requests per simulated second, so the
// R2C overhead per request translates directly into the throughput deficit
// the paper reports.
func Nginx(scale int) *tir.Module {
	return webserver("nginx", div(WebRequests, scale), false)
}

// Apache models the Apache benchmark: the same request semantics but a
// deeper per-request handler chain (module hooks), i.e. more calls per
// request — matching Apache's process/filter architecture.
func Apache(scale int) *tir.Module {
	return webserver("apache", div(WebRequests, scale), true)
}

// NginxRequest builds the single-request variant of the nginx module: one
// connection event (parse → route → respond with per-request heap churn) and
// done. It is the unit of work the serving fleet executes per simulated
// request, so fleet latency histograms measure exactly one request's cost.
func NginxRequest() *tir.Module {
	return webserver("nginx", 1, false)
}

// ApacheRequest is NginxRequest with the Apache handler chain — the deeper
// per-request call profile, for fleet runs that want more R2C-sensitive
// request handlers.
func ApacheRequest() *tir.Module {
	return webserver("apache", 1, true)
}

func webserver(name string, requests uint64, handlerChain bool) *tir.Module {
	const pageWords = 8 // the 64-byte page served by the benchmark

	mb := tir.NewModule(name)
	mb.AddGlobal("page64", pageWords*8,
		0x3c68746d6c3e0a20, 0x7233632d70616765, 0x2e2e2e2e2e2e2e2e, 0x2e2e2e2e2e2e2e2e,
		0x2e2e2e2e2e2e2e2e, 0x2e2e2e2e2e2e2e2e, 0x0a3c2f68746d6c3e, 0x0d0a0d0a00000000)
	mb.AddDefaultParam("worker_connections", 1024)

	// parse_request: scan the (synthetic) request buffer, extract a route
	// hash — the header-parsing hot path.
	parse := mb.NewFunc("parse_request", 1) // (reqBuf)
	{
		h := parse.Const(0xcbf29ce484222325)
		Loop(parse, 0, 16, func(i tir.Reg) {
			c8 := parse.Const(8)
			off := parse.Bin(tir.OpMul, i, c8)
			slot := parse.Bin(tir.OpAdd, parse.Param(0), off)
			w := parse.Load(slot, 0)
			parse.BinTo(h, tir.OpXor, h, w)
			prime := parse.Const(0x100000001b3)
			parse.BinTo(h, tir.OpMul, h, prime)
		})
		parse.Ret(h)
	}
	_ = parse

	// route: map the hash to a location block.
	route := mb.NewFunc("route", 1)
	{
		// Location matching: prefix comparisons over the location table.
		v := burnALU(route, route.Param(0), 24)
		c := route.Const(16)
		route.Ret(route.Bin(tir.OpRem, v, c))
	}
	_ = route

	// respond: copy the 64-byte page into the response buffer and checksum
	// it (standing in for writev).
	respond := mb.NewFunc("respond", 2) // (respBuf, loc)
	{
		pg := respond.AddrGlobal("page64")
		sum := respond.NewReg()
		respond.Mov(sum, respond.Param(1))
		Loop(respond, 0, pageWords, func(i tir.Reg) {
			c8 := respond.Const(8)
			off := respond.Bin(tir.OpMul, i, c8)
			src := respond.Bin(tir.OpAdd, pg, off)
			dst := respond.Bin(tir.OpAdd, respond.Param(0), off)
			w := respond.Load(src, 0)
			respond.Store(dst, 0, w)
			respond.BinTo(sum, tir.OpAdd, sum, w)
		})
		respond.Ret(sum)
	}
	_ = respond

	// Apache-style module hooks: a chain of small filters per request.
	var hooks []string
	if handlerChain {
		hooks = leafFamily(mb, "hook_", 2, 20)
	}

	// handle_conn: one connection event.
	handle := mb.NewFunc("handle_conn", 2) // (reqBuf, respBuf)
	{
		h := handle.Call("parse_request", handle.Param(0))
		// Header validation and keep-alive bookkeeping. Apache's
		// process-per-connection model does substantially more per-request
		// bookkeeping than nginx's event loop.
		if handlerChain {
			burnTo(handle, h, 110)
		} else {
			burnTo(handle, h, 40)
		}
		loc := handle.Call("route", h)
		for _, hk := range hooks {
			v := handle.Call(hk, loc)
			handle.BinTo(loc, tir.OpXor, loc, v)
			c4 := handle.Const(15)
			handle.BinTo(loc, tir.OpAnd, loc, c4)
		}
		r := handle.Call("respond", handle.Param(1), loc)
		handle.Ret(r)
	}
	_ = handle

	main := mb.NewFunc("main", 0)
	chk := main.Const(0)
	st := main.Const(0xd1310ba698dfb5ac)
	Loop(main, 0, requests, func(rq tir.Reg) {
		// Per-request buffers, as nginx's pool allocator would churn.
		rsz := main.Const(192)
		req := main.Alloc(rsz)
		rsz2 := main.Const(64)
		resp := main.Alloc(rsz2)
		Loop(main, 0, 16, func(i tir.Reg) {
			v := Xorshift(main, st)
			c8 := main.Const(8)
			off := main.Bin(tir.OpMul, i, c8)
			slot := main.Bin(tir.OpAdd, req, off)
			main.Store(slot, 0, v)
		})
		r := main.Call("handle_conn", req, resp)
		main.BinTo(chk, tir.OpXor, chk, r)
		main.Free(req)
		main.Free(resp)
	})
	main.Output(chk)
	main.RetVoid()
	mb.SetEntry("main")
	return mb.MustBuild()
}

// BrowserScale generates a browser-sized synthetic module for the
// scalability experiment (Section 6.3): numFuncs functions across deep call
// chains, wide dispatch families and function-pointer tables. With the
// default parameter it compiles to a module roughly three orders of
// magnitude larger than the SPEC workloads, exercising the toolchain the
// way WebKit/Chromium exercised the paper's compiler.
func BrowserScale(numFuncs int) *tir.Module {
	if numFuncs < 64 {
		numFuncs = 64
	}
	mb := tir.NewModule(fmt.Sprintf("browser%d", numFuncs))
	mb.AddDefaultParam("browser_flags", 1)

	// A broad family of leaf functions...
	nLeaves := numFuncs / 2
	leaves := leafFamily(mb, "bl", nLeaves, 6)
	// ...glued by mid-level functions calling a handful of leaves each...
	nMids := numFuncs - nLeaves - 1
	for i := 0; i < nMids; i++ {
		f := mb.NewFunc(fmt.Sprintf("bm%d", i), 1)
		v := f.Param(0)
		for j := 0; j < 3; j++ {
			v = f.Call(leaves[(i*3+j*7)%nLeaves], v)
		}
		f.Ret(v)
	}

	main := mb.NewFunc("main", 0)
	chk := main.Const(0)
	Loop(main, 0, 64, func(i tir.Reg) {
		nm := main.Const(uint64(nMids))
		which := main.Bin(tir.OpRem, i, nm)
		// Exercise a rotating subset of the mid-level functions.
		for k := 0; k < 4; k++ {
			ck := main.Const(uint64(k * 13))
			x := main.Bin(tir.OpAdd, which, ck)
			r := main.Call(fmt.Sprintf("bm%d", k*17%nMids), x)
			main.BinTo(chk, tir.OpXor, chk, r)
		}
	})
	main.Output(chk)
	main.RetVoid()
	mb.SetEntry("main")
	return mb.MustBuild()
}
