package workload

import (
	"fmt"

	"r2c/internal/tir"
)

// ballast allocates `pages` heap pages in main so the benchmark's resident
// set approximates the original's working-set magnitude — the denominator
// of the memory-overhead experiment (Section 6.2.5).
func ballast(fb *tir.FuncBuilder, pages uint64) tir.Reg {
	sz := fb.Const(pages * 4096)
	return fb.Alloc(sz)
}

// Perlbench models 600.perlbench_s: a bytecode interpreter whose dispatch
// loop calls opcode handlers through a function-pointer table — the
// indirect-call-heavy profile of a language runtime.
func Perlbench(scale int) *tir.Module {
	const (
		numOps     = 48
		numHelpers = 12
		progLen    = 512
	)
	dispatches := div(14_000, scale)

	mb := tir.NewModule("perlbench")
	helpers := leafFamily(mb, "ph", numHelpers, 10)

	// Opcode handlers: two params (vm state value, operand), moderate
	// work, roughly a third call a helper — averaging ~1.7 calls per
	// dispatch including the dispatch itself.
	for i := 0; i < numOps; i++ {
		h := mb.NewFunc(fmt.Sprintf("op%d", i), 2)
		loc := h.NewLocal("sv", 16)
		a := h.AddrLocal(loc)
		h.Store(a, 0, h.Param(0))
		base := h.Load(a, 0)
		x := h.Bin(tir.OpXor, base, h.Param(1))
		x = burnALU(h, x, 8+i%7)
		if i%3 == 0 {
			x = h.Call(helpers[i%numHelpers], x)
		}
		h.Ret(x)
	}
	for i := 0; i < numOps; i++ {
		mb.AddFuncPtr(fmt.Sprintf("optab%d", i), fmt.Sprintf("op%d", i))
	}
	mb.AddDefaultParam("perl_default_flags", 0x5a5a)

	main := mb.NewFunc("main", 0)
	bl := ballast(main, 16384) // ~64 MiB interpreter state
	// Fill a bytecode program into the heap.
	szr := main.Const(progLen * 8)
	prog := main.Alloc(szr)
	st := main.Const(0x243f6a8885a308d3)
	Loop(main, 0, progLen, func(i tir.Reg) {
		v := Xorshift(main, st)
		c8 := main.Const(8)
		off := main.Bin(tir.OpMul, i, c8)
		slot := main.Bin(tir.OpAdd, prog, off)
		main.Store(slot, 0, v)
	})

	// Copy the dispatch table to the heap once (the globals are shuffled
	// in the data section, so the interpreter indexes a packed copy — the
	// analogue of perl's op table).
	tszr := main.Const(numOps * 8)
	table := main.Alloc(tszr)
	for op := 0; op < numOps; op++ {
		a := main.AddrGlobal(fmt.Sprintf("optab%d", op))
		fp := main.Load(a, 0)
		main.Store(table, int64(op)*8, fp)
	}

	acc := main.Const(0)
	pc := main.Const(0)
	Loop(main, 0, dispatches, func(i tir.Reg) {
		// Fetch opcode word.
		mask := main.Const(progLen - 1)
		idx := main.Bin(tir.OpAnd, pc, mask)
		c8 := main.Const(8)
		off := main.Bin(tir.OpMul, idx, c8)
		slot := main.Bin(tir.OpAdd, prog, off)
		word := main.Load(slot, 0)
		// Computed-goto style dispatch through the packed table.
		nOps := main.Const(numOps)
		opIdx := main.Bin(tir.OpRem, word, nOps)
		toff := main.Bin(tir.OpMul, opIdx, c8)
		tslot := main.Bin(tir.OpAdd, table, toff)
		handler := main.Load(tslot, 0)
		r := main.CallIndirect(handler, acc, word)
		main.Mov(acc, r)
		// Interpreter bookkeeping between dispatches (stack/pad handling,
		// refcounts) — the inline work that sets perl's call spacing.
		burnTo(main, acc, 56)
		one := main.Const(1)
		main.BinTo(pc, tir.OpAdd, pc, one)
	})
	main.Free(table)
	main.Output(acc)
	main.Free(prog)
	main.Free(bl)
	main.RetVoid()

	mb.SetEntry("main")
	return mb.MustBuild()
}

// GCC models 602.gcc_s: a compiler pass pipeline sweeping an in-heap IR
// buffer, calling per-node-kind visitors — many mid-sized functions, a
// broad hot footprint, mostly direct calls.
func GCC(scale int) *tir.Module {
	const (
		numVisitors = 28
		nodes       = 620
	)
	passes := div(24, scale)

	mb := tir.NewModule("gcc")
	visitors := leafFamily(mb, "visit_", numVisitors, 12)
	mb.AddDefaultParam("gcc_opt_level", 2)

	// fold8 models the wide-signature helpers real compilers pass whole
	// contexts to: eight parameters, two on the stack.
	fold8 := mb.NewFunc("fold8", 8)
	{
		acc := fold8.Param(0)
		for i := 1; i < 8; i++ {
			if i%2 == 0 {
				acc = fold8.Bin(tir.OpXor, acc, fold8.Param(i))
			} else {
				acc = fold8.Bin(tir.OpAdd, acc, fold8.Param(i))
			}
		}
		fold8.Ret(acc)
	}
	_ = fold8

	// A pass walks all nodes and dispatches on node kind with a direct
	// call chain (the lowered form of a switch over tree codes).
	pass := mb.NewFunc("run_pass", 2) // (irBuf, passSeed)
	{
		acc := pass.NewReg()
		pass.Mov(acc, pass.Param(1))
		Loop(pass, 0, nodes, func(i tir.Reg) {
			c8 := pass.Const(8)
			off := pass.Bin(tir.OpMul, i, c8)
			slot := pass.Bin(tir.OpAdd, pass.Param(0), off)
			kindWord := pass.Load(slot, 0)
			nk := pass.Const(numVisitors)
			kind := pass.Bin(tir.OpRem, kindWord, nk)
			for v := 0; v < numVisitors; v++ {
				cv := pass.Const(uint64(v))
				eq := pass.Bin(tir.OpEq, kind, cv)
				v := v
				If(pass, eq, func() {
					r := pass.Call(visitors[v], acc)
					pass.BinTo(acc, tir.OpXor, acc, r)
				})
			}
			// Constant folding over the node context on every 8th node.
			c7f := pass.Const(7)
			low := pass.Bin(tir.OpAnd, i, c7f)
			z := pass.Const(0)
			isFold := pass.Bin(tir.OpEq, low, z)
			If(pass, isFold, func() {
				f := pass.Call("fold8", acc, kindWord, kind, i, pass.Param(1), kindWord, acc, i)
				pass.BinTo(acc, tir.OpAdd, acc, f)
			})
			pass.Store(slot, 0, acc)
		})
		pass.Ret(acc)
	}

	main := mb.NewFunc("main", 0)
	bl := ballast(main, 24576) // ~96 MiB of IR
	sz := main.Const(nodes * 8)
	ir := main.Alloc(sz)
	st := main.Const(0x13198a2e03707344)
	Loop(main, 0, nodes, func(i tir.Reg) {
		v := Xorshift(main, st)
		c8 := main.Const(8)
		off := main.Bin(tir.OpMul, i, c8)
		slot := main.Bin(tir.OpAdd, ir, off)
		main.Store(slot, 0, v)
	})
	sum := main.Const(0)
	Loop(main, 0, passes, func(p tir.Reg) {
		r := main.Call("run_pass", ir, p)
		main.BinTo(sum, tir.OpAdd, sum, r)
	})
	main.Output(sum)
	main.Free(ir)
	main.Free(bl)
	main.RetVoid()
	mb.SetEntry("main")
	return mb.MustBuild()
}

// MCF models 605.mcf_s: network-simplex style sweeps over an arc array with
// a tiny reduced-cost kernel called per arc — very high call density over a
// small hot footprint.
func MCF(scale int) *tir.Module {
	const arcs = 2400
	iters := div(20, scale)

	mb := tir.NewModule("mcf")
	mb.AddDefaultParam("mcf_pricing_rule", 1)

	reduced := mb.NewFunc("reduced_cost", 3) // (cost, potTail, potHead)
	{
		d := reduced.Bin(tir.OpSub, reduced.Param(1), reduced.Param(2))
		rc := reduced.Bin(tir.OpAdd, reduced.Param(0), d)
		reduced.Ret(burnALU(reduced, rc, 160))
	}
	pivot := mb.NewFunc("pivot", 2)
	{
		x := pivot.Bin(tir.OpXor, pivot.Param(0), pivot.Param(1))
		pivot.Ret(burnALU(pivot, x, 12))
	}

	main := mb.NewFunc("main", 0)
	bl := ballast(main, 20480) // ~80 MiB network
	sz := main.Const(arcs * 24)
	arr := main.Alloc(sz) // per arc: cost, potTail, potHead
	st := main.Const(0xa4093822299f31d0)
	Loop(main, 0, arcs, func(i tir.Reg) {
		c24 := main.Const(24)
		off := main.Bin(tir.OpMul, i, c24)
		slot := main.Bin(tir.OpAdd, arr, off)
		v := Xorshift(main, st)
		main.Store(slot, 0, v)
		v2 := Xorshift(main, st)
		main.Store(slot, 8, v2)
		v3 := Xorshift(main, st)
		main.Store(slot, 16, v3)
	})
	best := main.Const(0)
	Loop(main, 0, iters, func(it tir.Reg) {
		Loop(main, 0, arcs, func(i tir.Reg) {
			c24 := main.Const(24)
			off := main.Bin(tir.OpMul, i, c24)
			slot := main.Bin(tir.OpAdd, arr, off)
			c := main.Load(slot, 0)
			pt := main.Load(slot, 8)
			ph := main.Load(slot, 16)
			rc := main.Call("reduced_cost", c, pt, ph)
			one := main.Const(1)
			neg := main.Bin(tir.OpAnd, rc, one)
			If(main, neg, func() {
				p := main.Call("pivot", rc, best)
				main.Mov(best, p)
			})
		})
	})
	main.Output(best)
	main.Free(arr)
	main.Free(bl)
	main.RetVoid()
	mb.SetEntry("main")
	return mb.MustBuild()
}

// LBM models 619.lbm_s: a lattice-Boltzmann stencil — long pure-compute
// sweeps with almost no calls (Table 2: 20.9 million vs tens of billions
// elsewhere), so R2C's call-site instrumentation has nothing to amplify.
func LBM(scale int) *tir.Module {
	const cells = 4096
	sweeps := div(40, scale)

	mb := tir.NewModule("lbm")

	sweep := mb.NewFunc("stream_collide", 2) // (grid, phase)
	{
		acc := sweep.NewReg()
		sweep.Mov(acc, sweep.Param(1))
		Loop(sweep, 1, cells-1, func(i tir.Reg) {
			c8 := sweep.Const(8)
			off := sweep.Bin(tir.OpMul, i, c8)
			slot := sweep.Bin(tir.OpAdd, sweep.Param(0), off)
			l := sweep.Load(slot, -8)
			m := sweep.Load(slot, 0)
			r := sweep.Load(slot, 8)
			s := sweep.Bin(tir.OpAdd, l, r)
			c3 := sweep.Const(3)
			s3 := sweep.Bin(tir.OpMul, m, c3)
			v := sweep.Bin(tir.OpAdd, s, s3)
			c2 := sweep.Const(2)
			v2 := sweep.Bin(tir.OpShr, v, c2)
			sweep.Store(slot, 0, v2)
			sweep.BinTo(acc, tir.OpXor, acc, v2)
		})
		sweep.Ret(acc)
	}

	main := mb.NewFunc("main", 0)
	bl := ballast(main, 28672) // ~112 MiB lattice
	sz := main.Const(cells * 8)
	grid := main.Alloc(sz)
	st := main.Const(0x452821e638d01377)
	Loop(main, 0, cells, func(i tir.Reg) {
		v := Xorshift(main, st)
		c8 := main.Const(8)
		off := main.Bin(tir.OpMul, i, c8)
		slot := main.Bin(tir.OpAdd, grid, off)
		main.Store(slot, 0, v)
	})
	chk := main.Const(0)
	Loop(main, 0, sweeps, func(s tir.Reg) {
		r := main.Call("stream_collide", grid, s)
		main.BinTo(chk, tir.OpAdd, chk, r)
	})
	main.Output(chk)
	main.Free(grid)
	main.Free(bl)
	main.RetVoid()
	mb.SetEntry("main")
	return mb.MustBuild()
}
