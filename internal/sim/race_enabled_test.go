//go:build race

package sim_test

// raceEnabled reports whether this test binary was built with the race
// detector; see race_disabled_test.go for the counterpart.
const raceEnabled = true
