package sim_test

import (
	"bytes"
	"reflect"
	"testing"

	"r2c/internal/attack"
	"r2c/internal/bench"
	"r2c/internal/defense"
	"r2c/internal/rt"
	"r2c/internal/sim"
	"r2c/internal/telemetry"
	"r2c/internal/vm"
	"r2c/internal/workload"
)

// These tests are the fast-path interpreter's equivalence gate: the
// predecoded, superinstruction-fusing, block-batched dispatch loop must be
// observationally indistinguishable from the legacy per-instruction
// interpreter — identical Results (counters, cycles, faults, traps, output),
// identical error values, identical pause/resume points, and identical
// exported metrics. vm.ForceLegacyDispatch pins machines built inside
// library code (sim, bench, attack) to the reference loop for the "legacy"
// leg of each comparison.

// runBoth executes the same run under both interpreters and returns
// (legacy, fast) results plus their errors.
func runBoth(t *testing.T, build func() (*vm.Result, error)) (lr, fr *vm.Result, le, fe error) {
	t.Helper()
	vm.ForceLegacyDispatch.Store(true)
	lr, le = build()
	vm.ForceLegacyDispatch.Store(false)
	fr, fe = build()
	return lr, fr, le, fe
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// TestFastPathMatchesLegacyOnWorkloads runs all twelve SPEC workloads plus
// both webservers under the baseline and full-R2C configs on each
// interpreter and requires the entire Result struct to match field for
// field.
func TestFastPathMatchesLegacyOnWorkloads(t *testing.T) {
	scale := 16
	if testing.Short() {
		scale = 64
	}
	benches := workload.SPEC()
	for _, name := range []string{"nginx", "apache"} {
		b, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("workload %q missing", name)
		}
		benches = append(benches, b)
	}
	for _, b := range benches {
		m := b.Build(scale)
		for _, cfg := range []defense.Config{defense.Off(), defense.R2CFull()} {
			lr, fr, le, fe := runBoth(t, func() (*vm.Result, error) {
				res, _, err := sim.Run(m, cfg, 7, vm.EPYCRome())
				return res, err
			})
			if errString(le) != errString(fe) {
				t.Fatalf("%s/%s: errors diverge: legacy %v, fast %v", b.Name, cfg.Name, le, fe)
			}
			if !reflect.DeepEqual(lr, fr) {
				t.Fatalf("%s/%s: results diverge\nlegacy: %+v\nfast:   %+v", b.Name, cfg.Name, lr, fr)
			}
		}
	}
}

// TestFastPathMatchesLegacyOnRandomPrograms fuzzes the equivalence: random
// programs (some of which fault or run into traps by construction) must
// produce identical Results — including the Fault and Trap fields — and
// identical error strings under both interpreters.
func TestFastPathMatchesLegacyOnRandomPrograms(t *testing.T) {
	n := 40
	if testing.Short() {
		n = 10
	}
	cfgs := []defense.Config{defense.Off(), defense.R2CFull(), defense.R2CPush(), defense.CFIShadowStack()}
	for seed := uint64(1); seed <= uint64(n); seed++ {
		m := workload.Random(seed)
		cfg := cfgs[int(seed)%len(cfgs)]
		lr, fr, le, fe := runBoth(t, func() (*vm.Result, error) {
			res, _, err := sim.Run(m, cfg, seed, vm.EPYCRome())
			return res, err
		})
		if errString(le) != errString(fe) {
			t.Fatalf("seed %d %s: errors diverge: legacy %v, fast %v", seed, cfg.Name, le, fe)
		}
		if !reflect.DeepEqual(lr, fr) {
			t.Fatalf("seed %d %s: results diverge\nlegacy: %+v\nfast:   %+v", seed, cfg.Name, lr, fr)
		}
	}
}

// TestFastPathResumeAndKnobParity drives two identically-built machines in
// small chunks with the RSS-sampling and i-cache-flush knobs enabled. Every
// pause must land on the same PC with the same retired-instruction count —
// the fast path may only batch work it can attribute to the exact same
// boundaries the legacy loop observes.
func TestFastPathResumeAndKnobParity(t *testing.T) {
	b, _ := workload.ByName("nginx")
	m := b.Build(16)
	for _, cfg := range []defense.Config{defense.Off(), defense.R2CFull()} {
		mk := func(legacy bool) *vm.Machine {
			proc, err := sim.Build(m, cfg, 5)
			if err != nil {
				t.Fatalf("%s: build: %v", cfg.Name, err)
			}
			mach := vm.New(proc, vm.EPYCRome())
			mach.Legacy = legacy
			mach.SampleEvery = 5000
			mach.FlushICacheEvery = 9001
			return mach
		}
		lm, fm := mk(true), mk(false)
		const chunk = 7777 // deliberately misaligned with blocks and knobs
		for step := 0; ; step++ {
			lr, le := lm.Run(chunk)
			fr, fe := fm.Run(chunk)
			if errString(le) != errString(fe) {
				t.Fatalf("%s step %d: errors diverge: legacy %v, fast %v", cfg.Name, step, le, fe)
			}
			if lm.CPU.PC != fm.CPU.PC {
				t.Fatalf("%s step %d: pause PC diverges: legacy %#x, fast %#x", cfg.Name, step, lm.CPU.PC, fm.CPU.PC)
			}
			if !reflect.DeepEqual(lr, fr) {
				t.Fatalf("%s step %d: results diverge\nlegacy: %+v\nfast:   %+v", cfg.Name, step, lr, fr)
			}
			if le != vm.ErrInstructionBudget {
				if !lr.Halted {
					t.Fatalf("%s: run ended without halting: %v", cfg.Name, le)
				}
				break
			}
			if step > 100000 {
				t.Fatalf("%s: did not halt", cfg.Name)
			}
		}
	}
}

// TestFastPathTrapParity detonates the same booby trap under both
// interpreters: a shadow-stack violation planted through the attack
// framework. The recorded trap events — kind, PC, leaked address — must
// match exactly.
func TestFastPathTrapParity(t *testing.T) {
	type trapRun struct {
		outcome attack.Outcome
		pc      uint64
		traps   []rt.TrapEvent
	}
	run := func(legacy bool) trapRun {
		vm.ForceLegacyDispatch.Store(legacy)
		defer vm.ForceLegacyDispatch.Store(false)
		s, err := attack.NewScenario(defense.CFIShadowStack(), 3)
		if err != nil {
			t.Fatalf("legacy=%v: scenario: %v", legacy, err)
		}
		cands, err := s.RACandidates()
		if err != nil || len(cands) != 1 {
			t.Fatalf("legacy=%v: RA candidates: %d, %v", legacy, len(cands), err)
		}
		other := s.Proc.Img.Funcs[attack.SymLogHandler].Start
		if err := s.Write(cands[0].Addr, other); err != nil {
			t.Fatalf("legacy=%v: write: %v", legacy, err)
		}
		o := s.ResumeOutcomeOnly()
		return trapRun{outcome: o, pc: s.Mach.CPU.PC, traps: s.Proc.Traps()}
	}
	l, f := run(true), run(false)
	if l.outcome != attack.Detected || f.outcome != attack.Detected {
		t.Fatalf("outcomes: legacy %v, fast %v, want both detected", l.outcome, f.outcome)
	}
	if l.pc != f.pc {
		t.Fatalf("trap PC diverges: legacy %#x, fast %#x", l.pc, f.pc)
	}
	if !reflect.DeepEqual(l.traps, f.traps) {
		t.Fatalf("trap events diverge\nlegacy: %+v\nfast:   %+v", l.traps, f.traps)
	}
}

// TestFastPathMetricsJSONParity compares the -metrics-out artifact byte for
// byte: a fully instrumented run (registry + function profiler) must export
// the identical JSON under either interpreter, and instrumentation must not
// perturb the fast path's results either.
func TestFastPathMetricsJSONParity(t *testing.T) {
	b, _ := workload.ByName("xz")
	m := b.Build(16)
	run := func(legacy bool) (*vm.Result, []byte) {
		vm.ForceLegacyDispatch.Store(legacy)
		defer vm.ForceLegacyDispatch.Store(false)
		obs := &telemetry.Observer{Registry: telemetry.NewRegistry(), ProfileFuncs: true}
		res, _, err := sim.RunObserved(m, defense.R2CFull(), 11, vm.EPYCRome(), obs)
		if err != nil {
			t.Fatalf("legacy=%v: %v", legacy, err)
		}
		var buf bytes.Buffer
		if err := obs.Registry.WriteJSON(&buf); err != nil {
			t.Fatalf("legacy=%v: metrics JSON: %v", legacy, err)
		}
		return res, buf.Bytes()
	}
	lr, lj := run(true)
	fr, fj := run(false)
	if !reflect.DeepEqual(lr, fr) {
		t.Fatalf("instrumented results diverge\nlegacy: %+v\nfast:   %+v", lr, fr)
	}
	if !bytes.Equal(lj, fj) {
		t.Fatalf("metrics JSON diverges\nlegacy: %s\nfast:   %s", lj, fj)
	}
}

// TestFastPathPipelineParity runs the Figure 6 benchmark pipeline serial on
// the legacy interpreter and 8-wide on the fast path. Together with
// TestParallelEqualsSerial (fast, jobs 1 vs 8) this closes the square:
// neither the interpreter nor the scheduling may reach a reported number.
func TestFastPathPipelineParity(t *testing.T) {
	if raceEnabled {
		t.Skip("skipping double benchmark pipeline under the race detector")
	}
	if testing.Short() {
		t.Skip("skipping double benchmark pipeline in -short mode")
	}
	run := func(legacy bool, jobs int) (string, []bench.Figure6Series) {
		vm.ForceLegacyDispatch.Store(legacy)
		defer vm.ForceLegacyDispatch.Store(false)
		var buf bytes.Buffer
		f6, err := bench.Figure6(bench.Options{Scale: 16, Runs: 1, Out: &buf, Jobs: jobs})
		if err != nil {
			t.Fatalf("legacy=%v jobs=%d: %v", legacy, jobs, err)
		}
		return buf.String(), f6
	}
	lOut, lF6 := run(true, 1)
	fOut, fF6 := run(false, 8)
	if !reflect.DeepEqual(lF6, fF6) {
		t.Errorf("Figure 6 series diverge:\nlegacy/serial: %+v\nfast/parallel: %+v", lF6, fF6)
	}
	if lOut != fOut {
		t.Errorf("printed tables diverge:\n--- legacy/serial ---\n%s--- fast/parallel ---\n%s", lOut, fOut)
	}
}

// TestFastPathFlightRecorderParity requires the control-flow flight recorder
// to capture the identical event stream under both interpreters — same
// kinds, PCs, targets, and retired-instruction stamps — on a benign workload
// and on a run that detonates a booby trap. The fast path charges whole
// blocks up front, so any drift in its per-event instruction accounting
// shows up here.
func TestFastPathFlightRecorderParity(t *testing.T) {
	b, _ := workload.ByName("nginx")
	m := b.Build(16)
	for _, cfg := range []defense.Config{defense.Off(), defense.R2CFull()} {
		run := func(legacy bool) (uint64, []telemetry.FlightEvent) {
			vm.ForceLegacyDispatch.Store(legacy)
			defer vm.ForceLegacyDispatch.Store(false)
			obs := &telemetry.Observer{Registry: telemetry.NewRegistry(), FlightCap: 512}
			_, proc, err := sim.RunObserved(m, cfg, 7, vm.EPYCRome(), obs)
			if err != nil {
				t.Fatalf("%s legacy=%v: %v", cfg.Name, legacy, err)
			}
			if proc.Flight == nil {
				t.Fatalf("%s legacy=%v: no flight recorder attached", cfg.Name, legacy)
			}
			return proc.Flight.Total(), proc.Flight.Events()
		}
		lt, le := run(true)
		ft, fe := run(false)
		if lt == 0 {
			t.Fatalf("%s: flight recorder captured nothing", cfg.Name)
		}
		if lt != ft {
			t.Fatalf("%s: flight totals diverge: legacy %d, fast %d", cfg.Name, lt, ft)
		}
		if !reflect.DeepEqual(le, fe) {
			for i := range le {
				if i < len(fe) && le[i] != fe[i] {
					t.Logf("%s: first divergence at %d: legacy %+v, fast %+v", cfg.Name, i, le[i], fe[i])
					break
				}
			}
			t.Fatalf("%s: flight events diverge (legacy %d, fast %d events)", cfg.Name, len(le), len(fe))
		}
	}

	// Trap leg: the attack scenario's corrupted resume must leave identical
	// flight tails, including the probe and trap events.
	runTrap := func(legacy bool) []telemetry.FlightEvent {
		vm.ForceLegacyDispatch.Store(legacy)
		defer vm.ForceLegacyDispatch.Store(false)
		obs := &telemetry.Observer{Registry: telemetry.NewRegistry(), FlightCap: 256}
		s, err := attack.NewScenarioObserved(defense.CFIShadowStack(), 3, obs)
		if err != nil {
			t.Fatalf("legacy=%v: scenario: %v", legacy, err)
		}
		cands, err := s.RACandidates()
		if err != nil || len(cands) != 1 {
			t.Fatalf("legacy=%v: RA candidates: %d, %v", legacy, len(cands), err)
		}
		other := s.Proc.Img.Funcs[attack.SymLogHandler].Start
		if err := s.Write(cands[0].Addr, other); err != nil {
			t.Fatalf("legacy=%v: write: %v", legacy, err)
		}
		if o := s.ResumeOutcomeOnly(); o != attack.Detected {
			t.Fatalf("legacy=%v: outcome %v, want detected", legacy, o)
		}
		return s.Proc.Flight.Events()
	}
	l, f := runTrap(true), runTrap(false)
	if len(l) == 0 {
		t.Fatal("trap run captured no flight events")
	}
	if !reflect.DeepEqual(l, f) {
		t.Fatalf("trap-run flight events diverge\nlegacy: %+v\nfast:   %+v", l, f)
	}
}
