package sim

import (
	"reflect"
	"testing"

	"r2c/internal/defense"
	"r2c/internal/tir"
	"r2c/internal/vm"
	"r2c/internal/workload"
)

// TestFuzzTextRoundTrip marshals random modules to the TIR text format,
// re-parses them, and checks the reparsed program behaves identically —
// fuzzing the parser/printer pair alongside the toolchain.
func TestFuzzTextRoundTrip(t *testing.T) {
	n := 25
	if testing.Short() {
		n = 5
	}
	for seed := uint64(1); seed <= uint64(n); seed++ {
		m1 := workload.Random(seed)
		m2, err := tir.Parse(tir.Marshal(m1))
		if err != nil {
			t.Fatalf("seed %d: reparse: %v", seed, err)
		}
		a, _, err := Run(m1, defense.Off(), seed, vm.EPYCRome())
		if err != nil {
			t.Fatalf("seed %d: original: %v", seed, err)
		}
		b, _, err := Run(m2, defense.R2CFull(), seed, vm.EPYCRome())
		if err != nil {
			t.Fatalf("seed %d: reparsed under R2C: %v", seed, err)
		}
		if !reflect.DeepEqual(a.Output, b.Output) {
			t.Fatalf("seed %d: round-tripped module diverged", seed)
		}
	}
}

// TestFuzzDifferential is the toolchain fuzzer: random programs must behave
// identically under every defense configuration.
func TestFuzzDifferential(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 10
	}
	cfgs := []defense.Config{
		defense.R2CFull(), defense.R2CPush(), defense.BTRAAVX512(),
		defense.BTDPOnly(), defense.LayoutOnly(), defense.StackArmor(),
		defense.Readactor(), defense.OIAOnly(),
	}
	for seed := uint64(1); seed <= uint64(n); seed++ {
		m := workload.Random(seed)
		base, _, err := Run(m, defense.Off(), seed, vm.EPYCRome())
		if err != nil {
			t.Fatalf("seed %d baseline: %v", seed, err)
		}
		cfg := cfgs[int(seed)%len(cfgs)]
		got, _, err := Run(m, cfg, seed+1000, vm.EPYCRome())
		if err != nil {
			t.Fatalf("seed %d %s: %v", seed, cfg.Name, err)
		}
		if !reflect.DeepEqual(base.Output, got.Output) {
			t.Fatalf("seed %d %s: output diverged\n got %v\nwant %v",
				seed, cfg.Name, got.Output, base.Output)
		}
	}
}
