// Package sim wires the full toolchain together: compile a TIR module under
// a defense configuration, link it with ASLR, load it into a fresh process,
// and execute it on a machine profile. Everything downstream — workload
// benchmarks, the attack framework, the examples — goes through these
// helpers.
package sim

import (
	"context"
	"fmt"

	"r2c/internal/codegen"
	"r2c/internal/defense"
	"r2c/internal/image"
	"r2c/internal/rt"
	"r2c/internal/telemetry"
	"r2c/internal/tir"
	"r2c/internal/vm"
)

// DefaultBudget is the per-run instruction budget; workloads are sized well
// below it, so hitting it indicates a toolchain bug (e.g. a corrupted
// return address looping forever).
const DefaultBudget = 600_000_000

// Build compiles, links and loads a module. The single seed drives compile-
// time diversification, link-time layout (ASLR, shuffling) and load-time
// randomness (BTDP placement); different seeds produce fully re-diversified
// processes, like the paper's per-run recompilation with fresh seeds
// (Section 6.2).
func Build(m *tir.Module, cfg defense.Config, seed uint64) (*rt.Process, error) {
	return BuildObserved(m, cfg, seed, nil)
}

// BuildObserved is Build with a telemetry observer attached to the loaded
// process, so load-time events (the BTDP constructor) and later traps and
// faults reach the observer's sinks. obs may be nil.
func BuildObserved(m *tir.Module, cfg defense.Config, seed uint64, obs *telemetry.Observer) (*rt.Process, error) {
	img, err := BuildImage(m, cfg, seed)
	if err != nil {
		return nil, err
	}
	return NewProcessFromImage(img, seed, obs)
}

// BuildImage runs the immutable half of Build: compile and link, but do not
// load. The result depends only on (module content, cfg, seed), carries no
// mutable process state, and is what the exec build cache memoizes.
func BuildImage(m *tir.Module, cfg defense.Config, seed uint64) (*image.Image, error) {
	return BuildImageSpan(m, cfg, seed, nil)
}

// BuildImageSpan is BuildImage with "sim.compile" and "sim.link" child spans
// recorded under sp. The span is observational only — a nil sp (the
// uninstrumented path) builds the identical image.
func BuildImageSpan(m *tir.Module, cfg defense.Config, seed uint64, sp *telemetry.Span) (*image.Image, error) {
	cs := sp.Child("sim.compile", seed)
	prog, err := codegen.Compile(m, cfg, seed)
	cs.End()
	if err != nil {
		return nil, err
	}
	ls := sp.Child("sim.link", seed)
	img, err := image.Link(prog, seed*0x9e3779b97f4a7c15+1)
	ls.End()
	return img, err
}

// NewProcessFromImage runs the mutable half of Build: load img into a fresh
// address space and run load-time initialization, deriving the load-time
// randomness from the same run seed Build uses — so a process created from a
// cached image is bit-identical to one from a fresh build.
func NewProcessFromImage(img *image.Image, seed uint64, obs *telemetry.Observer) (*rt.Process, error) {
	return rt.NewProcessObserved(img, seed*0xbf58476d1ce4e5b9+2, obs)
}

// Run builds and executes a module to completion on the given profile.
func Run(m *tir.Module, cfg defense.Config, seed uint64, prof *vm.Profile) (*vm.Result, *rt.Process, error) {
	return RunObserved(m, cfg, seed, prof, nil)
}

// RunObserved is Run with telemetry: the loaded process streams trap/fault
// events to obs, the machine publishes its counters (instruction classes,
// i-cache, TLB, RSS, heap) into obs's registry when the run ends, and — when
// obs requests function profiling — per-function cycle attribution is
// collected and published too. A nil obs makes this identical to Run; the
// determinism test asserts the instrumented and plain paths produce the
// same Result and RNG-derived state.
func RunObserved(m *tir.Module, cfg defense.Config, seed uint64, prof *vm.Profile, obs *telemetry.Observer) (*vm.Result, *rt.Process, error) {
	proc, err := BuildObserved(m, cfg, seed, obs)
	if err != nil {
		return nil, nil, err
	}
	res, err := ExecProcess(proc, prof, obs)
	return res, proc, err
}

// ExecProcess runs an already-loaded process to completion on the given
// profile, with RunObserved's telemetry and error semantics. It is the
// shared back half of RunObserved and the exec engine's per-cell runner, so
// a cell executed through the worker pool reports results and errors
// identically to a serial sim.RunObserved call.
func ExecProcess(proc *rt.Process, prof *vm.Profile, obs *telemetry.Observer) (*vm.Result, error) {
	return ExecProcessSpan(proc, prof, obs, nil)
}

// ExecProcessSpan is ExecProcess with the run recorded under sp ("sim.exec"
// child span carrying the retired-instruction and modeled-cycle counts, plus
// how the run ended). sp may be nil.
func ExecProcessSpan(proc *rt.Process, prof *vm.Profile, obs *telemetry.Observer, sp *telemetry.Span) (*vm.Result, error) {
	return ExecProcessSpanCtx(context.Background(), proc, prof, obs, sp, 0)
}

// ExecProcessCtx is ExecProcess with a cancellation context and an explicit
// fuel budget — the seam the exec engine's per-cell watchdog uses. maxInstr
// is the total instruction allowance (0 means DefaultBudget); exhausting it
// returns an error wrapping vm.ErrFuelExhausted, and a cancelled ctx returns
// ctx.Err() unwrapped so callers can distinguish deadline from fuel. A
// background ctx with maxInstr 0 is identical to ExecProcess.
func ExecProcessCtx(ctx context.Context, proc *rt.Process, prof *vm.Profile, obs *telemetry.Observer, maxInstr uint64) (*vm.Result, error) {
	return ExecProcessSpanCtx(ctx, proc, prof, obs, nil, maxInstr)
}

// ExecProcessSpanCtx combines ExecProcessSpan and ExecProcessCtx: traced,
// cancellable, fuel-bounded execution. The chunked cancellable run retires
// the identical instruction stream as the plain one (vm.RunCtx resumes
// bit-exactly), so ctx and maxInstr never perturb a run they don't stop.
func ExecProcessSpanCtx(ctx context.Context, proc *rt.Process, prof *vm.Profile, obs *telemetry.Observer, sp *telemetry.Span, maxInstr uint64) (*vm.Result, error) {
	fuel := maxInstr
	if fuel == 0 {
		fuel = DefaultBudget
	}
	es := sp.Child("sim.exec", 0)
	defer es.End()
	mach := vm.New(proc, prof)
	if obs.Profiling() {
		mach.EnableProfiler()
	}
	res, err := mach.RunCtx(ctx, fuel, 0)
	if res != nil {
		es.SetAttr("instructions", res.Instructions)
		es.SetAttr("cycles", res.Cycles)
		switch {
		case res.Trap != nil:
			es.SetAttr("end", "trap")
		case res.Fault != nil:
			es.SetAttr("end", "fault")
		case res.Halted:
			es.SetAttr("end", "halt")
		case err == vm.ErrFuelExhausted:
			es.SetAttr("end", "fuel")
		case err != nil && ctx.Err() != nil:
			es.SetAttr("end", "cancelled")
		default:
			es.SetAttr("end", "budget")
		}
	}
	if reg := obs.Reg(); reg != nil {
		mach.PublishMetrics(reg)
		if p := mach.Profiler(); p != nil {
			p.Publish(reg)
		}
	}
	if err == vm.ErrFuelExhausted {
		es.SetAttr("error", "fuel exhausted")
		return res, fmt.Errorf("sim: fuel limit of %d instructions exhausted: %w", fuel, vm.ErrFuelExhausted)
	}
	if err != nil {
		return res, err
	}
	if res.Fault != nil {
		return res, fmt.Errorf("sim: run faulted: %v", res.Fault)
	}
	if res.Trap != nil {
		return res, fmt.Errorf("sim: booby trap fired at %#x (%v)", res.Trap.PC, res.Trap.Kind)
	}
	if !res.Halted {
		return res, fmt.Errorf("sim: did not halt")
	}
	return res, nil
}
