package sim

import (
	"reflect"
	"testing"

	"r2c/internal/defense"
	"r2c/internal/tir"
	"r2c/internal/vm"
)

// boundaryModule is the Section 7.4.2 end-to-end case: unprotected code
// calls protected stack-argument functions, directly and through a
// callback pointer. Both of the paper's resolutions (downgrade, trampoline)
// must preserve behaviour.
func boundaryModule() *tir.Module {
	mb := tir.NewModule("boundary-e2e")

	wide := mb.NewFunc("wide8", 8)
	acc := wide.Param(0)
	for i := 1; i < 8; i++ {
		acc = wide.Bin(tir.OpAdd, acc, wide.Param(i))
	}
	wide.Ret(acc)

	cb := mb.NewFunc("callback7", 7)
	x := cb.Bin(tir.OpXor, cb.Param(0), cb.Param(6))
	y := cb.Bin(tir.OpAdd, x, cb.Param(3))
	cb.Ret(y)
	mb.AddFuncPtr("cb_ptr", "callback7")

	lib := mb.NewFunc("libwrap", 1)
	lib.Unprotected()
	var args []tir.Reg
	for i := 0; i < 8; i++ {
		c := lib.Const(uint64(i + 1))
		args = append(args, lib.Bin(tir.OpMul, lib.Param(0), c))
	}
	r := lib.Call("wide8", args...)
	fpA := lib.AddrGlobal("cb_ptr")
	fp := lib.Load(fpA, 0)
	r2 := lib.CallIndirect(fp, args[:7]...)
	lib.Ret(lib.Bin(tir.OpAdd, r, r2))

	main := mb.NewFunc("main", 0)
	v := main.Const(3)
	main.Output(main.Call("libwrap", v))
	var margs []tir.Reg
	for i := 0; i < 8; i++ {
		margs = append(margs, main.Const(uint64(i+10)))
	}
	main.Output(main.Call("wide8", margs...))
	main.RetVoid()
	mb.SetEntry("main")
	return mb.MustBuild()
}

func TestBoundaryCallsAcrossConfigs(t *testing.T) {
	m := boundaryModule()
	base, _, err := Run(m, defense.Off(), 1, vm.EPYCRome())
	if err != nil {
		t.Fatal(err)
	}
	// Hand-computed expectation: libwrap(3) = wide8(3,6,...,24) +
	// callback7(3,6,...,21).
	var ws uint64
	for i := uint64(1); i <= 8; i++ {
		ws += 3 * i
	}
	cbv := (uint64(3) ^ uint64(21)) + 12
	if base.Output[0] != ws+cbv {
		t.Fatalf("libwrap(3) = %d, want %d", base.Output[0], ws+cbv)
	}

	tramp := defense.R2CFull()
	tramp.Name = "r2c-trampolines"
	tramp.StackArgTrampolines = true
	trampPush := defense.R2CPush()
	trampPush.Name = "r2c-push-trampolines"
	trampPush.StackArgTrampolines = true
	for _, cfg := range []defense.Config{defense.R2CFull(), defense.R2CPush(), defense.OIAOnly(), tramp, trampPush} {
		for seed := uint64(1); seed <= 4; seed++ {
			got, _, err := Run(m, cfg, seed, vm.EPYCRome())
			if err != nil {
				t.Fatalf("%s seed %d: %v", cfg.Name, seed, err)
			}
			if !reflect.DeepEqual(got.Output, base.Output) {
				t.Fatalf("%s seed %d: output %v, want %v", cfg.Name, seed, got.Output, base.Output)
			}
		}
	}
}
