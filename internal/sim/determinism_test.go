package sim_test

import (
	"bytes"
	"reflect"
	"testing"

	"r2c/internal/bench"
	"r2c/internal/defense"
	"r2c/internal/sim"
	"r2c/internal/telemetry"
	"r2c/internal/vm"
	"r2c/internal/workload"
)

// TestTelemetryDoesNotPerturbRuns is the telemetry-off determinism gate: a
// fully instrumented run (registry + tracer + function profiler) must produce
// bit-identical results to a plain run — same modeled cycles, same executed
// instruction stream, same program output, and the same RNG-derived load-time
// state (guard pages, BTDP values). Telemetry observes the simulation; it
// must never participate in it.
func TestTelemetryDoesNotPerturbRuns(t *testing.T) {
	b, _ := workload.ByName("nginx")
	m := b.Build(8)
	for _, cfg := range []defense.Config{defense.Off(), defense.R2CFull()} {
		spans := &telemetry.SpanCollector{}
		obs := &telemetry.Observer{
			Registry:     telemetry.NewRegistry(),
			Tracer:       &telemetry.Collector{},
			Spans:        spans,
			ProfileFuncs: true,
		}
		plainRes, plainProc, err := sim.Run(m, cfg, 7, vm.EPYCRome())
		if err != nil {
			t.Fatalf("%s plain: %v", cfg.Name, err)
		}
		// The observed run threads a live span tree through the same pipeline
		// RunObserved uses, so the gate covers the span hooks too.
		root := obs.StartSpan("determinism", 1)
		img, err := sim.BuildImageSpan(m, cfg, 7, root)
		if err != nil {
			t.Fatalf("%s observed build: %v", cfg.Name, err)
		}
		obsProc, err := sim.NewProcessFromImage(img, 7, obs)
		if err != nil {
			t.Fatalf("%s observed load: %v", cfg.Name, err)
		}
		obsRes, err := sim.ExecProcessSpan(obsProc, vm.EPYCRome(), obs, root)
		root.End()
		if err != nil {
			t.Fatalf("%s observed: %v", cfg.Name, err)
		}

		if plainRes.Cycles != obsRes.Cycles {
			t.Errorf("%s: cycles diverge: plain %.0f, observed %.0f", cfg.Name, plainRes.Cycles, obsRes.Cycles)
		}
		if plainRes.Instructions != obsRes.Instructions {
			t.Errorf("%s: instruction counts diverge: %d vs %d", cfg.Name, plainRes.Instructions, obsRes.Instructions)
		}
		if !reflect.DeepEqual(plainRes.Output, obsRes.Output) {
			t.Errorf("%s: program output diverges", cfg.Name)
		}
		if plainRes.MaxRSSBytes != obsRes.MaxRSSBytes {
			t.Errorf("%s: maxrss diverges: %d vs %d", cfg.Name, plainRes.MaxRSSBytes, obsRes.MaxRSSBytes)
		}
		// RNG-derived load-time state: both builds consumed their seeded
		// streams identically, so guard-page placement and the published
		// BTDP values must match exactly.
		if !reflect.DeepEqual(plainProc.GuardPages, obsProc.GuardPages) {
			t.Errorf("%s: guard pages diverge", cfg.Name)
		}
		if !reflect.DeepEqual(plainProc.BTDPValues, obsProc.BTDPValues) {
			t.Errorf("%s: BTDP values diverge", cfg.Name)
		}

		// And the instrumentation must actually have observed the run: the
		// registry's instruction counter equals the result's, proving the
		// comparison exercised the live telemetry path, not a disabled one.
		snap := obs.Registry.Snapshot()
		if got := snap.Counters[telemetry.Key("vm.instructions")]; got != obsRes.Instructions {
			t.Errorf("%s: registry saw %d instructions, result has %d", cfg.Name, got, obsRes.Instructions)
		}
		for _, name := range []string{"sim.compile", "sim.link", "sim.exec"} {
			if len(spans.ByName(name)) != 1 {
				t.Errorf("%s: span %q recorded %d times, want 1", cfg.Name, name, len(spans.ByName(name)))
			}
		}
	}
}

// TestParallelEqualsSerial is the worker-pool determinism gate: the full
// Table 1 and Figure 6 pipelines — printed tables included — must be
// byte-identical between a serial engine (jobs=1) and a wide one (jobs=8).
// The pool merges results by submission index and the build cache serves
// immutable images, so scheduling must never be able to reach a reported
// number.
func TestParallelEqualsSerial(t *testing.T) {
	if raceEnabled {
		// This is a determinism gate, not a race gate, and the double full
		// pipeline exceeds the race detector's budget on small machines; the
		// engine's concurrency is raced in internal/exec and internal/bench.
		t.Skip("skipping double benchmark pipeline under the race detector")
	}
	run := func(jobs int) (string, []bench.Table1Row, []bench.Figure6Series) {
		var buf bytes.Buffer
		opt := bench.Options{Scale: 16, Runs: 1, Out: &buf, Jobs: jobs}
		t1, err := bench.Table1(opt)
		if err != nil {
			t.Fatalf("jobs=%d table1: %v", jobs, err)
		}
		f6, err := bench.Figure6(opt)
		if err != nil {
			t.Fatalf("jobs=%d figure6: %v", jobs, err)
		}
		return buf.String(), t1, f6
	}
	serialOut, serialT1, serialF6 := run(1)
	parallelOut, parallelT1, parallelF6 := run(8)

	if !reflect.DeepEqual(serialT1, parallelT1) {
		t.Errorf("Table 1 rows diverge between jobs=1 and jobs=8:\nserial:   %+v\nparallel: %+v", serialT1, parallelT1)
	}
	if !reflect.DeepEqual(serialF6, parallelF6) {
		t.Errorf("Figure 6 series diverge between jobs=1 and jobs=8:\nserial:   %+v\nparallel: %+v", serialF6, parallelF6)
	}
	if serialOut != parallelOut {
		t.Errorf("printed tables diverge between jobs=1 and jobs=8:\n--- serial ---\n%s--- parallel ---\n%s", serialOut, parallelOut)
	}
}
