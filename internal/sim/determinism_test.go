package sim_test

import (
	"reflect"
	"testing"

	"r2c/internal/defense"
	"r2c/internal/sim"
	"r2c/internal/telemetry"
	"r2c/internal/vm"
	"r2c/internal/workload"
)

// TestTelemetryDoesNotPerturbRuns is the telemetry-off determinism gate: a
// fully instrumented run (registry + tracer + function profiler) must produce
// bit-identical results to a plain run — same modeled cycles, same executed
// instruction stream, same program output, and the same RNG-derived load-time
// state (guard pages, BTDP values). Telemetry observes the simulation; it
// must never participate in it.
func TestTelemetryDoesNotPerturbRuns(t *testing.T) {
	b, _ := workload.ByName("nginx")
	m := b.Build(8)
	for _, cfg := range []defense.Config{defense.Off(), defense.R2CFull()} {
		obs := &telemetry.Observer{
			Registry:     telemetry.NewRegistry(),
			Tracer:       &telemetry.Collector{},
			ProfileFuncs: true,
		}
		plainRes, plainProc, err := sim.Run(m, cfg, 7, vm.EPYCRome())
		if err != nil {
			t.Fatalf("%s plain: %v", cfg.Name, err)
		}
		obsRes, obsProc, err := sim.RunObserved(m, cfg, 7, vm.EPYCRome(), obs)
		if err != nil {
			t.Fatalf("%s observed: %v", cfg.Name, err)
		}

		if plainRes.Cycles != obsRes.Cycles {
			t.Errorf("%s: cycles diverge: plain %.0f, observed %.0f", cfg.Name, plainRes.Cycles, obsRes.Cycles)
		}
		if plainRes.Instructions != obsRes.Instructions {
			t.Errorf("%s: instruction counts diverge: %d vs %d", cfg.Name, plainRes.Instructions, obsRes.Instructions)
		}
		if !reflect.DeepEqual(plainRes.Output, obsRes.Output) {
			t.Errorf("%s: program output diverges", cfg.Name)
		}
		if plainRes.MaxRSSBytes != obsRes.MaxRSSBytes {
			t.Errorf("%s: maxrss diverges: %d vs %d", cfg.Name, plainRes.MaxRSSBytes, obsRes.MaxRSSBytes)
		}
		// RNG-derived load-time state: both builds consumed their seeded
		// streams identically, so guard-page placement and the published
		// BTDP values must match exactly.
		if !reflect.DeepEqual(plainProc.GuardPages, obsProc.GuardPages) {
			t.Errorf("%s: guard pages diverge", cfg.Name)
		}
		if !reflect.DeepEqual(plainProc.BTDPValues, obsProc.BTDPValues) {
			t.Errorf("%s: BTDP values diverge", cfg.Name)
		}

		// And the instrumentation must actually have observed the run: the
		// registry's instruction counter equals the result's, proving the
		// comparison exercised the live telemetry path, not a disabled one.
		snap := obs.Registry.Snapshot()
		if got := snap.Counters[telemetry.Key("vm.instructions")]; got != obsRes.Instructions {
			t.Errorf("%s: registry saw %d instructions, result has %d", cfg.Name, got, obsRes.Instructions)
		}
	}
}
