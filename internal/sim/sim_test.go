package sim

import (
	"reflect"
	"testing"

	"r2c/internal/defense"
	"r2c/internal/tir"
	"r2c/internal/vm"
)

// torture builds a module exercising every TIR feature the workloads rely
// on: arithmetic, control flow, direct/indirect/tail calls, recursion,
// stack arguments (>6 params), locals, heap allocation, globals, default
// parameters and function pointers. Output words form a checksum trace that
// must be identical under every defense configuration.
func torture() *tir.Module {
	mb := tir.NewModule("torture")

	mb.AddGlobal("table", 32, 11, 22, 33, 44)
	mb.AddDefaultParam("default_mode", 7)

	// add8(a..h) = a + 2b + 3c + ... + 8h, with 2 stack arguments.
	add8 := mb.NewFunc("add8", 8)
	{
		acc := add8.Const(0)
		for i := 0; i < 8; i++ {
			w := add8.Const(uint64(i + 1))
			t := add8.Bin(tir.OpMul, add8.Param(i), w)
			add8.BinTo(acc, tir.OpAdd, acc, t)
		}
		add8.Ret(acc)
	}

	// fib(n): recursion.
	fib := mb.NewFunc("fib", 1)
	{
		two := fib.Const(2)
		cmp := fib.Bin(tir.OpLt, fib.Param(0), two)
		base := fib.NewBlock()
		rec := fib.NewBlock()
		fib.SetBlock(0)
		fib.CondBr(cmp, base, rec)
		fib.SetBlock(base)
		fib.Ret(fib.Param(0))
		fib.SetBlock(rec)
		one := fib.Const(1)
		n1 := fib.Bin(tir.OpSub, fib.Param(0), one)
		two2 := fib.Const(2)
		n2 := fib.Bin(tir.OpSub, fib.Param(0), two2)
		a := fib.Call("fib", n1)
		b := fib.Call("fib", n2)
		fib.Ret(fib.Bin(tir.OpAdd, a, b))
	}

	// mix(x): locals, loads/stores, bit ops.
	mix := mb.NewFunc("mix", 1)
	{
		l := mix.NewLocal("tmp", 16)
		a := mix.AddrLocal(l)
		mix.Store(a, 0, mix.Param(0))
		c13 := mix.Const(13)
		sh := mix.Bin(tir.OpShl, mix.Param(0), c13)
		mix.Store(a, 8, sh)
		v0 := mix.Load(a, 0)
		v1 := mix.Load(a, 8)
		x := mix.Bin(tir.OpXor, v0, v1)
		c7 := mix.Const(7)
		x2 := mix.Bin(tir.OpShr, x, c7)
		mix.Ret(mix.Bin(tir.OpXor, x, x2))
	}

	// twice(x) = mix(mix(x)) via tail call.
	twice := mb.NewFunc("twice", 1)
	{
		v := twice.Call("mix", twice.Param(0))
		twice.TailCall("mix", v)
	}

	// apply(f, x) = f(x): indirect call.
	apply := mb.NewFunc("apply", 2)
	apply.Ret(apply.CallIndirect(apply.Param(0), apply.Param(1)))

	mb.AddFuncPtr("mix_ptr", "mix")

	main := mb.NewFunc("main", 0)
	{
		// Heap round trip.
		sz := main.Const(64)
		buf := main.Alloc(sz)
		v := main.Const(0xfeed)
		main.Store(buf, 0, v)
		main.Store(buf, 40, v)
		r := main.Load(buf, 40)
		main.Output(r)

		// Globals and default parameters.
		tb := main.AddrGlobal("table")
		g1 := main.Load(tb, 8)
		main.Output(g1)
		dp := main.AddrGlobal("default_mode")
		main.Output(main.Load(dp, 0))

		// Loop: sum of mix(i) for i in [0,50).
		i := main.Const(0)
		n := main.Const(50)
		acc := main.Const(0)
		head := main.NewBlock()
		body := main.NewBlock()
		done := main.NewBlock()
		main.SetBlock(0)
		main.Br(head)
		main.SetBlock(head)
		c := main.Bin(tir.OpLt, i, n)
		main.CondBr(c, body, done)
		main.SetBlock(body)
		h := main.Call("mix", i)
		main.BinTo(acc, tir.OpAdd, acc, h)
		one := main.Const(1)
		main.BinTo(i, tir.OpAdd, i, one)
		main.Br(head)
		main.SetBlock(done)
		main.Output(acc)

		// Stack arguments.
		var args []tir.Reg
		for k := 0; k < 8; k++ {
			args = append(args, main.Const(uint64(k+3)))
		}
		main.Output(main.Call("add8", args...))

		// Recursion, tail calls, indirect calls.
		tenArg := main.Const(10)
		main.Output(main.Call("fib", tenArg))
		tw := main.Const(0x1234)
		main.Output(main.Call("twice", tw))
		fp := main.AddrGlobal("mix_ptr")
		fn := main.Load(fp, 0)
		seed := main.Const(99)
		main.Output(main.CallIndirect(fn, seed))
		fn2 := main.AddrFunc("mix")
		seed2 := main.Const(77)
		main.Output(main.CallIndirect(fn2, seed2))

		main.Free(buf)
		main.RetVoid()
	}

	mb.SetEntry("main")
	return mb.MustBuild()
}

func allConfigs() []defense.Config {
	cfgs := []defense.Config{defense.Off(), defense.R2CFull(), defense.R2CPush(), defense.OIAOnly(), defense.BTRAAVX512()}
	cfgs = append(cfgs, defense.Components()...)
	cfgs = append(cfgs, defense.Baselines()...)
	cfgs = append(cfgs, defense.ReadactorPP(), defense.Smokestack(), defense.CFIShadowStack())
	checked := defense.R2CFull()
	checked.Name = "r2c-btra-checks"
	checked.CheckBTRAsOnReturn = true
	tramp := defense.R2CPush()
	tramp.Name = "r2c-push-trampolines"
	tramp.StackArgTrampolines = true
	combo := defense.R2CFull()
	combo.Name = "r2c-shadowstack"
	combo.ShadowStack = true
	cfgs = append(cfgs, checked, tramp, combo)
	return cfgs
}

// TestDifferentialAllConfigs is the toolchain's cornerstone test: the
// torture program must produce identical output under every defense
// configuration and several seeds — diversification must never change
// program semantics.
func TestDifferentialAllConfigs(t *testing.T) {
	m := torture()
	baseRes, _, err := Run(m, defense.Off(), 1, vm.EPYCRome())
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	if len(baseRes.Output) == 0 {
		t.Fatal("baseline produced no output")
	}
	for _, cfg := range allConfigs() {
		for seed := uint64(1); seed <= 3; seed++ {
			res, _, err := Run(m, cfg, seed, vm.EPYCRome())
			if err != nil {
				t.Fatalf("%s seed %d: %v", cfg.Name, seed, err)
			}
			if !reflect.DeepEqual(res.Output, baseRes.Output) {
				t.Fatalf("%s seed %d: output diverged\n got %v\nwant %v",
					cfg.Name, seed, res.Output, baseRes.Output)
			}
		}
	}
}

func TestExpectedOutputValues(t *testing.T) {
	// Spot-check semantic ground truth (computed by hand/host):
	// fib(10) = 55.
	res, _, err := Run(torture(), defense.Off(), 7, vm.EPYCRome())
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[0] != 0xfeed {
		t.Errorf("heap round trip = %#x", res.Output[0])
	}
	if res.Output[1] != 22 {
		t.Errorf("global load = %d", res.Output[1])
	}
	if res.Output[2] != 7 {
		t.Errorf("default param = %d", res.Output[2])
	}
	// add8(3..10) with weights 1..8 = sum (k+3)*(k+1) for k=0..7.
	want := uint64(0)
	for k := uint64(0); k < 8; k++ {
		want += (k + 3) * (k + 1)
	}
	if res.Output[4] != want {
		t.Errorf("add8 = %d, want %d", res.Output[4], want)
	}
	if res.Output[5] != 55 {
		t.Errorf("fib(10) = %d, want 55", res.Output[5])
	}
}

// TestDiversificationActuallyDiversifies verifies that two seeds produce
// different layouts under full R2C (and identical ones in the baseline).
func TestDiversificationActuallyDiversifies(t *testing.T) {
	m := torture()
	p1, err := Build(m, defense.R2CFull(), 1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Build(m, defense.R2CFull(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(p1.Img.FuncOrder, p2.Img.FuncOrder) {
		t.Error("function order identical across seeds")
	}
	// Same seed must reproduce the layout exactly.
	p1b, err := Build(m, defense.R2CFull(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1.Img.FuncOrder, p1b.Img.FuncOrder) {
		t.Error("same seed produced different function order")
	}
	if p1.Img.TextBase == p2.Img.TextBase {
		t.Error("ASLR produced identical text bases for different seeds")
	}
}

func TestInstructionCountsAreReasonable(t *testing.T) {
	m := torture()
	base, _, err := Run(m, defense.Off(), 1, vm.EPYCRome())
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := Run(m, defense.R2CFull(), 1, vm.EPYCRome())
	if err != nil {
		t.Fatal(err)
	}
	if full.Instructions <= base.Instructions {
		t.Errorf("full R2C executed fewer instructions (%d) than baseline (%d)",
			full.Instructions, base.Instructions)
	}
	if full.Calls != base.Calls {
		t.Errorf("call counts differ: %d vs %d (diversification must not add calls)",
			full.Calls, base.Calls)
	}
	if base.Calls == 0 {
		t.Error("no calls executed")
	}
}
