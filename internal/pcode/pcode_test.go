package pcode

import (
	"testing"

	"r2c/internal/isa"
	"r2c/internal/mem"
)

// place assigns consecutive encoded addresses starting at start and returns
// the per-instruction addresses plus the end-of-function address.
func place(start uint64, instrs []isa.Instr) ([]uint64, uint64) {
	addrs := make([]uint64, len(instrs))
	a := start
	for i := range instrs {
		addrs[i] = a
		a += uint64(instrs[i].EncodedSize())
	}
	return addrs, a
}

func fn(name string, start uint64, blockStarts []int, instrs ...isa.Instr) FuncIn {
	addrs, end := place(start, instrs)
	return FuncIn{Name: name, Instrs: instrs, Addrs: addrs, Start: start, End: end, BlockStarts: blockStarts}
}

// buildFixture is the shared multi-function program the tests pick apart:
//
//	f:  push-imm run ending in a call (fusion), a jz back to the entry, halt
//	g:  abs load, bad-width vector op, wild call, ret; BlockStarts leader at 1
//	h:  nops straddling an i-cache line boundary
//	q:  nops straddling a page boundary
//	nf: push-imm pair whose second op is a jump target (fusion must not fire)
func buildFixture() (*Program, map[string]FuncIn) {
	lineBoundary := uint64(2) << lineShift
	pageBoundary := uint64(16) << mem.PageShift // clear of the other functions
	funcs := []FuncIn{
		fn("f", 0x1000, nil,
			isa.Instr{Kind: isa.KPushImm, Imm: 7},
			isa.Instr{Kind: isa.KPushImm, Imm: 8},
			isa.Instr{Kind: isa.KPushImm, Imm: 9},
			isa.Instr{Kind: isa.KCall, Target: 0x2000},
			isa.Instr{Kind: isa.KJz, Src: 1, Target: 0x1000},
			isa.Instr{Kind: isa.KHalt},
		),
		fn("g", 0x2000, []int{1},
			isa.Instr{Kind: isa.KAluImm, Alu: isa.AluAdd, Dst: 2, Imm: 16},
			isa.Instr{Kind: isa.KLoad, Dst: 3, Base: isa.NoGPR, Target: 0x8000, Disp: 8},
			isa.Instr{Kind: isa.KVLoad, Base: isa.NoGPR, Target: 0x8000, Imm: 5},
			isa.Instr{Kind: isa.KCall, Target: 0x9999},
			isa.Instr{Kind: isa.KRet},
		),
		fn("h", lineBoundary-2, nil,
			isa.Instr{Kind: isa.KNop},
			isa.Instr{Kind: isa.KNop},
			isa.Instr{Kind: isa.KNop},
		),
		fn("q", pageBoundary-2, nil,
			isa.Instr{Kind: isa.KNop},
			isa.Instr{Kind: isa.KNop},
			isa.Instr{Kind: isa.KNop},
		),
	}
	// nf's jump targets its second push, so the pair straddles a block edge.
	nfStart := pageBoundary + 0x1000
	nf := fn("nf", nfStart, nil,
		isa.Instr{Kind: isa.KPushImm, Imm: 1},
		isa.Instr{Kind: isa.KPushImm, Imm: 2},
		isa.Instr{Kind: isa.KJmp},
	)
	nf.Instrs[2].Target = nf.Addrs[1]
	funcs = append(funcs, nf)

	byName := make(map[string]FuncIn, len(funcs))
	for _, f := range funcs {
		byName[f.Name] = f
	}
	return Build(funcs), byName
}

func TestIndexOfAndSentinels(t *testing.T) {
	p, fns := buildFixture()

	nInstr := 0
	for _, f := range fns {
		nInstr += len(f.Instrs)
	}
	if got, want := p.NumOps(), nInstr+len(fns); got != want {
		t.Fatalf("NumOps = %d, want %d (instrs + one sentinel per function)", got, want)
	}

	for name, f := range fns {
		for i, a := range f.Addrs {
			ix := p.IndexOf(a)
			if ix < 0 {
				t.Fatalf("%s instr %d at %#x not indexed", name, i, a)
			}
			if p.Ops[ix].Addr != a || p.Ops[ix].Kind != f.Instrs[i].Kind {
				t.Fatalf("%s instr %d: index %d resolves to wrong op", name, i, ix)
			}
		}
		// The sentinel sits right after the last instruction, carries the
		// function-end address, and is not addressable.
		last := p.IndexOf(f.Addrs[len(f.Addrs)-1])
		s := p.Ops[last+1]
		if s.Exec != XFellOff || s.Addr != f.End {
			t.Fatalf("%s sentinel: got exec=%d addr=%#x, want XFellOff at %#x", name, s.Exec, s.Addr, f.End)
		}
		if p.IndexOf(f.End) != -1 {
			t.Fatalf("%s: sentinel address %#x must not be in the index", name, f.End)
		}
	}
	if p.IndexOf(0xdeadbeef) != -1 {
		t.Fatal("IndexOf of an unmapped address must be -1")
	}
}

func TestTargetAndReturnResolution(t *testing.T) {
	p, fns := buildFixture()
	f, g := fns["f"], fns["g"]

	call := p.Ops[p.IndexOf(f.Addrs[3])]
	if want := p.IndexOf(g.Start); call.TIdx != want {
		t.Errorf("call TIdx = %d, want %d (g entry)", call.TIdx, want)
	}
	ra := f.Addrs[3] + uint64(f.Instrs[3].EncodedSize())
	if call.Imm != ra {
		t.Errorf("call precomputed RA = %#x, want %#x", call.Imm, ra)
	}
	if want := p.IndexOf(ra); call.RAIdx != want {
		t.Errorf("call RAIdx = %d, want %d", call.RAIdx, want)
	}

	jz := p.Ops[p.IndexOf(f.Addrs[4])]
	if want := p.IndexOf(f.Start); jz.TIdx != want {
		t.Errorf("jz TIdx = %d, want %d (f entry)", jz.TIdx, want)
	}

	// A call to an unmapped address stays unresolved, but its return site —
	// which is mapped — still gets a predictor index.
	wild := p.Ops[p.IndexOf(g.Addrs[3])]
	if wild.TIdx != -1 {
		t.Errorf("wild call TIdx = %d, want -1", wild.TIdx)
	}
	if want := p.IndexOf(g.Addrs[4]); wild.RAIdx != want {
		t.Errorf("wild call RAIdx = %d, want %d", wild.RAIdx, want)
	}
}

func TestDecodeSpecialCases(t *testing.T) {
	p, fns := buildFixture()
	g := fns["g"]

	load := p.Ops[p.IndexOf(g.Addrs[1])]
	if load.Exec != XLoadAbs || load.Imm != 0x8008 {
		t.Errorf("abs load: exec=%d imm=%#x, want XLoadAbs with precomputed %#x", load.Exec, load.Imm, uint64(0x8008))
	}

	bad := p.Ops[p.IndexOf(g.Addrs[2])]
	if bad.Exec != XBadVec || bad.Imm != 5 {
		t.Errorf("bad vector width: exec=%d imm=%d, want XBadVec keeping the width", bad.Exec, bad.Imm)
	}
}

func TestFusion(t *testing.T) {
	p, fns := buildFixture()
	f, nf := fns["f"], fns["nf"]

	i0 := p.IndexOf(f.Addrs[0])
	if got := p.Ops[i0].Exec; got != XPushImm2 {
		t.Errorf("f[0] exec = %d, want XPushImm2", got)
	}
	// The consumed second component keeps its unfused entry so it remains a
	// valid resume point.
	if got := p.Ops[i0+1].Exec; got != XPushImm {
		t.Errorf("f[1] exec = %d, want XPushImm (unfused second component)", got)
	}
	if got := p.Ops[i0+2].Exec; got != XPushImmCall {
		t.Errorf("f[2] exec = %d, want XPushImmCall", got)
	}
	if got := p.Ops[i0+3].Exec; got != XCall {
		t.Errorf("f[3] exec = %d, want XCall (component of the fused pair)", got)
	}

	// nf's second push is a jump target: a block leader, so no fusion.
	n0 := p.IndexOf(nf.Addrs[0])
	if got := p.Ops[n0].Exec; got != XPushImm {
		t.Errorf("nf[0] exec = %d, want XPushImm (fusion across a block edge)", got)
	}
}

func TestFetchElisionFlags(t *testing.T) {
	p, fns := buildFixture()
	h, q := fns["h"], fns["q"]

	// Function entries are leaders: always checked dynamically.
	if got := p.Ops[p.IndexOf(h.Start)].Flags; got != FNewLine|FNewPage {
		t.Errorf("h entry flags = %#x, want FNewLine|FNewPage", got)
	}
	// Second nop shares its predecessor's line and page.
	if got := p.Ops[p.IndexOf(h.Addrs[1])].Flags; got != 0 {
		t.Errorf("h[1] flags = %#x, want 0 (same line, same page)", got)
	}
	// Third nop crosses the line boundary but not the page boundary.
	if got := p.Ops[p.IndexOf(h.Addrs[2])].Flags; got != FNewLine {
		t.Errorf("h[2] flags = %#x, want FNewLine", got)
	}
	// q's third nop crosses a page boundary (which is also a line boundary).
	if got := p.Ops[p.IndexOf(q.Addrs[2])].Flags; got != FNewLine|FNewPage {
		t.Errorf("q[2] flags = %#x, want FNewLine|FNewPage", got)
	}
}

func TestBlocksAndClassCounts(t *testing.T) {
	p, fns := buildFixture()
	f, g := fns["f"], fns["g"]

	// Every op belongs to the block that claims it, and blocks tile the
	// whole op array.
	next := int32(0)
	for bi, b := range p.Blocks {
		if b.Start != next || b.End <= b.Start {
			t.Fatalf("block %d: extent [%d,%d) does not tile (expected start %d)", bi, b.Start, b.End, next)
		}
		next = b.End
		for i := b.Start; i < b.End; i++ {
			if p.Ops[i].Block != int32(bi) {
				t.Fatalf("op %d claims block %d, lives in block %d", i, p.Ops[i].Block, bi)
			}
		}
	}
	if next != int32(len(p.Ops)) {
		t.Fatalf("blocks cover %d ops, want %d", next, len(p.Ops))
	}

	// Packed class counts match a direct recount, excluding sentinels.
	total := uint32(0)
	for bi, b := range p.Blocks {
		var want [isa.KindCount]uint32
		for i := b.Start; i < b.End; i++ {
			if p.Ops[i].Exec != XFellOff {
				want[p.Ops[i].Kind]++
			}
		}
		var got [isa.KindCount]uint32
		for _, pk := range p.Classes[b.ClassOff : b.ClassOff+uint32(b.ClassN)] {
			got[pk>>24] += pk & 0xffffff
		}
		if got != want {
			t.Fatalf("block %d: packed class counts %v != recount %v", bi, got, want)
		}
		for _, c := range got {
			total += c
		}
	}
	nInstr := uint32(0)
	for _, fin := range fns {
		nInstr += uint32(len(fin.Instrs))
	}
	if total != nInstr {
		t.Fatalf("class counts sum to %d, want %d instructions", total, nInstr)
	}

	// f's entry block runs up to the call's successor: the push run and the
	// call retire as one block of 3 pushes + 1 call.
	eb := p.Blocks[p.Ops[p.IndexOf(f.Start)].Block]
	if eb.End-eb.Start != 4 {
		t.Errorf("f entry block spans %d ops, want 4", eb.End-eb.Start)
	}

	// g's lowering-time BlockStarts entry forces a leader mid-function.
	gi := p.IndexOf(g.Addrs[1])
	if b := p.Blocks[p.Ops[gi].Block]; b.Start != gi {
		t.Errorf("g BlockStarts leader: block starts at %d, want %d", b.Start, gi)
	}
}
