// Package pcode predecodes a linked image into the dense, execution-oriented
// form the VM's fast-path interpreter dispatches over. The architectural
// representation (isa.Instr slices per function, address-keyed decode map,
// binary-searched control transfers) stays the source of truth; pcode is a
// derived, immutable view built once at link time and shared by every
// process instantiated from the image — so it rides the content-addressed
// build cache for free.
//
// The predecoded form flattens all functions into one image-wide op array in
// text order, with:
//
//   - a one-byte exec opcode per op (operand addressing modes and ALU
//     suboperations folded in) driving a dense dispatch switch,
//   - control-transfer targets pre-resolved to array indices,
//   - call return addresses and absolute load addresses precomputed,
//   - basic-block extents with packed per-block instruction-class counts,
//     so the interpreter can charge a whole block's worth of architectural
//     counters on entry,
//   - static fetch-elision flags marking ops whose i-cache line / exec page
//     provably equals their predecessor's,
//   - fused superinstructions for the adjacent pairs that dominate defended
//     code (BTRA push runs, push-imm/call, the pre-call RSP adjust, and the
//     AVX2 vload/vstore setup pair).
//
// A synthetic sentinel op (XFellOff) sits between functions so the
// interpreter detects straight-line execution running off a function end
// without per-op bounds checks.
package pcode

import (
	"r2c/internal/isa"
	"r2c/internal/mem"
)

// Exec opcodes. The fast interpreter switches on these; the set is dense so
// the compiler lowers the switch to a jump table.
const (
	XMovImm uint8 = iota
	XMovReg
	XLoadAbs  // Dst = mem64[Imm] (absolute address precomputed)
	XLoadBase // Dst = mem64[R[Base] + Disp]
	XStore
	XLea
	XAluAddRR // the two hottest ALU ops get dedicated codes
	XAluAddRI
	XAluSubRR
	XAluSubRI
	XAluRR // remaining reg-reg ALU ops, suboperation in Alu
	XAluRI
	XSet
	XPush
	XPushImm
	XPop
	XCall // Imm = return address, TIdx = callee's dense index
	XCallInd
	XRet
	XJmp
	XJz
	XJnz
	XNop
	XTrap
	XVLoadAbs // Imm = absolute effective address
	XVLoadBase
	XVStore // absolute or base-relative, decided by Base
	XVStoreA
	XVZeroUpper
	XSys
	XHalt
	XBadVec // vector op with invalid width: reproduces the legacy error
	XUnimpl
	XFellOff // sentinel between functions

	// Superinstructions: the op at index i carries the fused code, the
	// second component at i+1 keeps its unfused entry (so it stays a valid
	// resume/branch-target point; fusion only happens when i+1 is not a
	// block leader, i.e. nothing can enter between the two).
	XPushImm2      // KPushImm ; KPushImm — BTRA push runs
	XPushImmCall   // KPushImm ; KCall — RA push + call
	XAluAddImmCall // KAluImm(add) ; KCall — pre-call RSP adjust
	XVLoadStore    // KVLoad(abs) ; KVStore — AVX2 BTRA setup pair
)

// Fetch-elision flags: set when the op's i-cache line / exec page may differ
// from the previously fetched instruction's, so the interpreter must run the
// dynamic transition check. Clear means the check provably short-circuits
// (same line/page as the dense predecessor within a straight-line block).
const (
	FNewLine uint8 = 1 << iota
	FNewPage
)

// lineShift matches the VM's per-line fetch dedupe granularity (64-byte
// lines, the same constant the legacy loop hardcodes).
const lineShift = 6

// Op is one predecoded instruction. Fields are laid out for density; the
// architectural Kind is retained for class accounting and cost lookup.
type Op struct {
	Addr   uint64
	Imm    uint64 // immediates; calls: return address; abs (v)loads: address
	Disp   int64
	Target uint64 // absolute control-transfer / vstore target
	TIdx   int32  // dense index of Target (-1: dynamic or wild)
	RAIdx  int32  // calls: dense index of the return-address site (-1: none)
	Block  int32  // index into Program.Blocks
	FuncIx int32  // index into Program.Funcs

	Exec  uint8
	Kind  isa.Kind
	Alu   isa.AluOp
	Cmp   isa.CmpOp
	Sys   isa.Sys
	Dst   isa.Reg
	Src   isa.Reg
	Base  isa.Reg
	A, B  isa.Reg
	VDst  isa.VReg
	VSrc  isa.VReg
	Lanes uint8
	Flags uint8
}

// Block is a basic block's extent in the dense op array, plus its packed
// per-kind instruction counts in Program.Classes.
type Block struct {
	Start, End int32 // op index range [Start, End)
	ClassOff   uint32
	ClassN     uint16
}

// FuncMeta is the per-function metadata the interpreter needs at dispatch
// time (profiler attribution, fell-off-end diagnostics).
type FuncMeta struct {
	Name       string
	Start, End uint64
}

// FuncIn is one function's input to Build, in text-placement order.
type FuncIn struct {
	Name        string
	Instrs      []isa.Instr
	Addrs       []uint64 // Addrs[i] is the address of Instrs[i]
	Start, End  uint64
	BlockStarts []int // lowering-time leader indices (may be nil)
}

// Program is the predecoded image. It is immutable after Build and safe to
// share across concurrently executing machines.
type Program struct {
	Ops    []Op
	Blocks []Block
	// Classes holds packed per-block class counts: kind<<24 | count.
	Classes []uint32
	Funcs   []FuncMeta

	byAddr map[uint64]int32
}

// IndexOf returns the dense index of the instruction at addr, or -1 when
// addr is not an instruction boundary (sentinels are not addressable).
func (p *Program) IndexOf(addr uint64) int32 {
	if i, ok := p.byAddr[addr]; ok {
		return i
	}
	return -1
}

// NumOps returns the op count including sentinels (a capacity indicator for
// consumers sizing per-op side tables).
func (p *Program) NumOps() int { return len(p.Ops) }

// Build predecodes the given functions (in text order). The input slices
// are only read; the resulting Program holds no references into them except
// Func names.
func Build(funcs []FuncIn) *Program {
	nops := len(funcs)
	for _, f := range funcs {
		nops += len(f.Instrs)
	}
	p := &Program{
		Ops:    make([]Op, 0, nops),
		Funcs:  make([]FuncMeta, 0, len(funcs)),
		byAddr: make(map[uint64]int32, nops),
	}

	// Pass 1: decode each instruction into its dense slot, with a sentinel
	// after each function so straight-line execution off the end is caught
	// by dispatch rather than a bounds check. Sentinel addresses are not
	// entered in the address map — they are not architectural instructions.
	base := make([]int32, len(funcs))
	for fi := range funcs {
		f := &funcs[fi]
		base[fi] = int32(len(p.Ops))
		for i := range f.Instrs {
			op := decode(&f.Instrs[i], f.Addrs[i])
			op.FuncIx = int32(fi)
			p.byAddr[f.Addrs[i]] = int32(len(p.Ops))
			p.Ops = append(p.Ops, op)
		}
		p.Ops = append(p.Ops, Op{
			Addr: f.End, Exec: XFellOff, Kind: isa.KNop,
			TIdx: -1, FuncIx: int32(fi),
		})
		p.Funcs = append(p.Funcs, FuncMeta{Name: f.Name, Start: f.Start, End: f.End})
	}

	// Pass 2: resolve static control-transfer targets to dense indices, and
	// calls' return-address sites (the fast interpreter's return predictor
	// pairs the pushed RA value with this index, so a matching return skips
	// the address-map lookup).
	for i := range p.Ops {
		op := &p.Ops[i]
		op.RAIdx = -1
		switch op.Exec {
		case XCall, XJmp, XJz, XJnz:
			if t, ok := p.byAddr[op.Target]; ok {
				op.TIdx = t
			}
		}
		switch op.Exec {
		case XCall, XCallInd:
			if r, ok := p.byAddr[op.Imm]; ok {
				op.RAIdx = r
			}
		}
	}

	// Pass 3: block leaders — function entries, sentinels, lowering-time
	// block starts, resolved branch targets, and terminator successors.
	// Completeness here is a performance property, not a correctness one:
	// control transfers landing mid-block fall back to the per-instruction
	// interpreter until the next leader.
	leader := make([]bool, len(p.Ops)+1)
	for fi := range funcs {
		f := &funcs[fi]
		b := int(base[fi])
		leader[b] = true
		leader[b+len(f.Instrs)] = true // sentinel
		for _, s := range f.BlockStarts {
			if s >= 0 && s < len(f.Instrs) {
				leader[b+s] = true
			}
		}
		for i := range f.Instrs {
			if f.Instrs[i].EndsBlock() {
				leader[b+i+1] = true
			}
		}
	}
	for i := range p.Ops {
		if t := p.Ops[i].TIdx; t >= 0 {
			leader[t] = true
		}
	}

	// Pass 4: static fetch-elision flags relative to the dense predecessor.
	// Leaders always check dynamically (anything can jump there); a
	// non-leader only executes straight-line after its predecessor, whose
	// line/page the machine's transition trackers then hold.
	for i := range p.Ops {
		op := &p.Ops[i]
		if i == 0 || leader[i] {
			op.Flags = FNewLine | FNewPage
			continue
		}
		prev := &p.Ops[i-1]
		if op.Addr>>lineShift != prev.Addr>>lineShift {
			op.Flags |= FNewLine
		}
		if op.Addr>>mem.PageShift != prev.Addr>>mem.PageShift {
			op.Flags |= FNewPage
		}
	}

	// Pass 5: fuse adjacent pairs inside a block. The second component must
	// not be a leader (no edge may enter between the components).
	for i := 0; i+1 < len(p.Ops); {
		if leader[i+1] {
			i++
			continue
		}
		a, b := &p.Ops[i], &p.Ops[i+1]
		switch {
		case a.Exec == XPushImm && b.Exec == XPushImm:
			a.Exec = XPushImm2
		case a.Exec == XPushImm && b.Exec == XCall:
			a.Exec = XPushImmCall
		case a.Exec == XAluAddRI && b.Exec == XCall:
			a.Exec = XAluAddImmCall
		case a.Exec == XVLoadAbs && b.Exec == XVStore:
			a.Exec = XVLoadStore
		default:
			i++
			continue
		}
		i += 2
	}

	// Pass 6: block extents and packed class counts (sentinels excluded —
	// they retire nothing).
	for s := 0; s < len(p.Ops); {
		e := s + 1
		for e < len(p.Ops) && !leader[e] {
			e++
		}
		var counts [isa.KindCount]uint32
		for i := s; i < e; i++ {
			if p.Ops[i].Exec != XFellOff {
				counts[p.Ops[i].Kind]++
			}
		}
		off := uint32(len(p.Classes))
		var n uint16
		for k, c := range counts {
			if c > 0 {
				p.Classes = append(p.Classes, uint32(k)<<24|c)
				n++
			}
		}
		bi := int32(len(p.Blocks))
		p.Blocks = append(p.Blocks, Block{Start: int32(s), End: int32(e), ClassOff: off, ClassN: n})
		for i := s; i < e; i++ {
			p.Ops[i].Block = bi
		}
		s = e
	}
	return p
}

// decode translates one placed instruction into its predecoded form.
func decode(in *isa.Instr, addr uint64) Op {
	op := Op{
		Addr: addr, Imm: in.Imm, Disp: in.Disp, Target: in.Target, TIdx: -1,
		Kind: in.Kind, Alu: in.Alu, Cmp: in.Cmp, Sys: in.Sys,
		Dst: in.Dst, Src: in.Src, Base: in.Base, A: in.A, B: in.B,
		VDst: in.VDst, VSrc: in.VSrc,
	}
	switch in.Kind {
	case isa.KMovImm:
		op.Exec = XMovImm
	case isa.KMovReg:
		op.Exec = XMovReg
	case isa.KLoad:
		if in.Base == isa.NoGPR {
			op.Exec = XLoadAbs
			op.Imm = in.Target + uint64(in.Disp)
		} else {
			op.Exec = XLoadBase
		}
	case isa.KStore:
		op.Exec = XStore
	case isa.KLea:
		op.Exec = XLea
	case isa.KAlu:
		switch in.Alu {
		case isa.AluAdd:
			op.Exec = XAluAddRR
		case isa.AluSub:
			op.Exec = XAluSubRR
		default:
			op.Exec = XAluRR
		}
	case isa.KAluImm:
		switch in.Alu {
		case isa.AluAdd:
			op.Exec = XAluAddRI
		case isa.AluSub:
			op.Exec = XAluSubRI
		default:
			op.Exec = XAluRI
		}
	case isa.KSet:
		op.Exec = XSet
	case isa.KPush:
		op.Exec = XPush
	case isa.KPushImm:
		op.Exec = XPushImm
	case isa.KPop:
		op.Exec = XPop
	case isa.KCall:
		op.Exec = XCall
		op.Imm = addr + uint64(in.EncodedSize()) // return address
	case isa.KCallInd:
		op.Exec = XCallInd
		op.Imm = addr + uint64(in.EncodedSize())
	case isa.KRet:
		op.Exec = XRet
	case isa.KJmp:
		op.Exec = XJmp
	case isa.KJz:
		op.Exec = XJz
	case isa.KJnz:
		op.Exec = XJnz
	case isa.KNop:
		op.Exec = XNop
	case isa.KTrap:
		op.Exec = XTrap
	case isa.KVLoad, isa.KVStore, isa.KVStoreA:
		lanes := int(in.Imm) / 8
		if lanes <= 0 || lanes > 8 {
			op.Exec = XBadVec // keep Imm: the error message prints the width
			break
		}
		op.Lanes = uint8(lanes)
		switch in.Kind {
		case isa.KVLoad:
			if in.Base == isa.NoGPR {
				op.Exec = XVLoadAbs
				op.Imm = in.Target + uint64(in.Disp)
			} else {
				op.Exec = XVLoadBase
			}
		case isa.KVStore:
			op.Exec = XVStore
		default:
			op.Exec = XVStoreA
		}
	case isa.KVZeroUpper:
		op.Exec = XVZeroUpper
	case isa.KSys:
		op.Exec = XSys
	case isa.KHalt:
		op.Exec = XHalt
	default:
		op.Exec = XUnimpl
	}
	return op
}
