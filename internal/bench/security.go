package bench

import (
	"fmt"
	"sort"

	"r2c/internal/attack"
	"r2c/internal/defense"
	"r2c/internal/stats"
	"r2c/internal/vm"
)

// Verdict condenses Monte-Carlo attack outcomes into a Table 3 cell.
type Verdict int

const (
	// Protected: the attack never succeeded.
	Protected Verdict = iota
	// Partial: the attack sometimes succeeds (probabilistic residual
	// surface, like PIROP vs R2C — Section 7.3).
	Partial
	// Vulnerable: the attack succeeds reliably.
	Vulnerable
)

func (v Verdict) String() string {
	switch v {
	case Protected:
		return "●"
	case Partial:
		return "◐"
	case Vulnerable:
		return "○"
	}
	return "?"
}

func verdictOf(t *attack.Tally) Verdict {
	switch r := t.SuccessRate(); {
	case r == 0:
		return Protected
	case r >= 0.5:
		return Vulnerable
	default:
		return Partial
	}
}

// MatrixRow is one defense's row of Table 3.
type MatrixRow struct {
	Defense     string
	OverheadPct float64
	Cxx         bool
	ROP         Verdict
	JITROP      Verdict
	PIROP       Verdict
	AOCR        Verdict
	// Tallies keeps the raw outcome counts per attack for the appendix.
	Tallies map[string]*attack.Tally
	// DetectionRate is the fraction of attempts (across all attacks) that
	// detonated a booby trap — the reactive component's yield.
	DetectionRate float64
	// Forensics holds the per-trial detection evidence (which trap class
	// caught which probe), in (attack, trial) order; PrintForensics renders
	// it when the harness runs with -forensics.
	Forensics []TrialForensics
}

// TrialForensics is one Monte-Carlo trial's detection evidence.
type TrialForensics struct {
	Attack  string
	Trial   int
	Outcome attack.Outcome
	Hits    []attack.ForensicHit
}

// table3Configs returns the Table 3 rows in order.
func table3Configs() []defense.Config {
	cfgs := defense.Baselines()
	return append(cfgs, defense.R2CFull())
}

// Table3 regenerates Table 3: each related defense and R2C versus the four
// attack classes, with overheads measured on our own workload suite (the
// paper quotes the respective original papers' SPEC numbers; rerunning them
// under one methodology is the fairer comparison its caption wishes for).
func Table3(opt Options, trials int, withOverheads bool) ([]MatrixRow, error) {
	if trials <= 0 {
		trials = 10
	}
	opt = opt.withEngine()
	defer opt.Obs.Timer("bench.experiment", "name", "table3").Time()()
	var rows []MatrixRow
	for _, cfg := range table3Configs() {
		row := MatrixRow{Defense: cfg.Name, Cxx: cfg.SupportsCxx, Tallies: map[string]*attack.Tally{}}
		attacks := []struct {
			name string
			run  func(*attack.Scenario) attack.Outcome
		}{
			{"rop", (*attack.Scenario).ROP},
			{"jitrop", func(s *attack.Scenario) attack.Outcome {
				// Worst case of direct and indirect JIT-ROP.
				if o := s.JITROP(); o == attack.Success {
					return o
				}
				return s.IndirectJITROP()
			}},
			{"pirop", nil}, // handled specially: persistent retries
			{"aocr", (*attack.Scenario).AOCR},
		}
		detections, total := 0, 0
		for _, a := range attacks {
			// Each trial is an independent campaign against a fresh victim
			// (its own seed, scenario and RNG), so the Monte-Carlo loop fans
			// across the pool; outcomes land in per-trial slots and are
			// tallied in trial order.
			a := a
			outcomes := make([]attack.Outcome, trials)
			evidence := make([][]attack.ForensicHit, trials)
			err := opt.Eng.MapTracked(opt.ctx(), trials, cfg.Name+"/"+a.name, func(i int) error {
				seed := uint64(1000*i+7) + uint64(len(rows))*31
				if a.run == nil { // PIROP: persistent across worker restarts
					outcomes[i], evidence[i] = attack.PIROPPersistentForensic(cfg, seed, 12)
					return nil
				}
				s, err := attack.NewScenarioObserved(cfg, seed, opt.Obs)
				if err != nil {
					return fmt.Errorf("%s/%s: %w", cfg.Name, a.name, err)
				}
				// Incident records correlate per (defense, attack) campaign
				// with the Monte-Carlo trial index.
				s.Campaign = "table3/" + cfg.Name + "/" + a.name
				s.Trial = i
				outcomes[i] = a.run(s)
				evidence[i] = s.Forensics
				return nil
			})
			if err != nil {
				return nil, err
			}
			tally := &attack.Tally{}
			for i, o := range outcomes {
				tally.Add(o)
				row.Forensics = append(row.Forensics, TrialForensics{
					Attack: a.name, Trial: i, Outcome: o, Hits: evidence[i],
				})
			}
			row.Tallies[a.name] = tally
			detections += tally.Detected
			total += tally.Trials()
		}
		row.ROP = verdictOf(row.Tallies["rop"])
		row.JITROP = verdictOf(row.Tallies["jitrop"])
		row.PIROP = verdictOf(row.Tallies["pirop"])
		row.AOCR = verdictOf(row.Tallies["aocr"])
		row.DetectionRate = float64(detections) / float64(total)
		publishHeadline(opt.Obs, "bench.table3.detection_rate", row.DetectionRate, "defense", row.Defense)
		rows = append(rows, row)
	}

	if withOverheads {
		var cfgs []defense.Config
		for _, c := range table3Configs() {
			cfgs = append(cfgs, c)
		}
		ovs, err := MeasureOverheads(cfgs, vm.EPYCRome(), opt)
		if err != nil {
			return nil, err
		}
		for i := range rows {
			rows[i].OverheadPct = stats.Pct(ovs[i].Geomean())
		}
	}

	opt.printf("Table 3: defense comparison (● protected  ◐ partial  ○ vulnerable)\n")
	opt.printf("%-12s %9s %4s %5s %8s %6s %5s %7s\n", "defense", "overhead", "C++", "ROP", "JIT-ROP", "PIROP", "AOCR", "detect%")
	for _, r := range rows {
		opt.printf("%-12s %8.1f%% %4v %5s %8s %6s %5s %6.0f%%\n",
			r.Defense, r.OverheadPct, r.Cxx, r.ROP, r.JITROP, r.PIROP, r.AOCR, r.DetectionRate*100)
	}
	return rows, nil
}

// PrintForensics renders the trap-provenance table behind the r2cattack
// -forensics flag: for every trial that ended in detection, which trap class
// caught the probe and which planted artifact (call-site BTRA slot, guard
// page, prolog trap) the attacker touched, followed by a per-class summary.
func PrintForensics(opt Options, rows []MatrixRow) {
	opt.printf("\ntrap provenance forensics (detected trials):\n")
	opt.printf("%-12s %-7s %5s  %s\n", "defense", "attack", "trial", "caught by")
	byClass := map[string]int{}
	hits := 0
	for _, r := range rows {
		for _, tf := range r.Forensics {
			for j, h := range tf.Hits {
				byClass[h.Prov.Kind.String()]++
				hits++
				if j == 0 {
					opt.printf("%-12s %-7s %5d  %s\n", r.Defense, tf.Attack, tf.Trial, h)
				} else {
					opt.printf("%-12s %-7s %5s  %s\n", "", "", "", h)
				}
			}
		}
	}
	if hits == 0 {
		opt.printf("(no detections)\n")
		return
	}
	classes := make([]string, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	opt.printf("trap classes:")
	for _, c := range classes {
		opt.printf(" %s=%d", c, byClass[c])
	}
	opt.printf(" (total %d hits)\n", hits)
}

// ProbPoint is one measurement of the BTRA guessing experiment.
type ProbPoint struct {
	R          int     // BTRAs per call site
	PerFrame   float64 // measured single-RA success rate
	Analytic   float64 // 1/(R+1)
	Chain4     float64 // measured^4 (n=4 chain)
	Analytic4  float64 // (1/(R+1))^4
	FramePicks int
}

// Prob regenerates the Section 7.2.1 analysis empirically: an attacker
// picking uniformly among each frame's return-address candidates succeeds
// per frame with probability ≈ 1/(R+1); a four-address ROP chain therefore
// succeeds with (1/(R+1))^4 ≈ 0.00007 for R=10.
func Prob(opt Options, trials int) ([]ProbPoint, error) {
	if trials <= 0 {
		trials = 60
	}
	opt = opt.withEngine()
	var out []ProbPoint
	for _, R := range []int{2, 5, 10} {
		cfg := defense.R2CFull()
		cfg.Name = fmt.Sprintf("r2c-%dbtras", R)
		cfg.BTRAsPerCall = R
		// Each trial's picks come from its own seeded scenario RNG, so the
		// trials parallelize; per-trial counts are summed in trial order.
		type trialCount struct{ hits, picks int }
		counts := make([]trialCount, trials)
		err := opt.Eng.MapTracked(opt.ctx(), trials, cfg.Name, func(i int) error {
			s, err := attack.NewScenarioObserved(cfg, uint64(i)*97+3, opt.Obs)
			if err != nil {
				return err
			}
			runs, err := s.CandidateRuns()
			if err != nil {
				return err
			}
			// The four innermost protected frames: helper, validate,
			// process, serve.
			n := 4
			if len(runs) < n {
				n = len(runs)
			}
			for _, run := range runs[:n] {
				pick := run[s.Rnd.Intn(len(run))]
				counts[i].picks++
				if s.IsRealRA(pick) {
					counts[i].hits++
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		hits, picks := 0, 0
		for _, c := range counts {
			hits += c.hits
			picks += c.picks
		}
		p := float64(hits) / float64(picks)
		pt := ProbPoint{
			R:          R,
			PerFrame:   p,
			Analytic:   1 / float64(R+1),
			Chain4:     p * p * p * p,
			Analytic4:  stats.BTRAGuessProbability(R, 4),
			FramePicks: picks,
		}
		out = append(out, pt)
		opt.printf("R=%2d: per-frame success %.4f (analytic %.4f), 4-chain %.2e (analytic %.2e), %d picks\n",
			pt.R, pt.PerFrame, pt.Analytic, pt.Chain4, pt.Analytic4, pt.FramePicks)
	}
	return out, nil
}

// SideChannelResult summarizes the Section 7.3 remaining-attack-surface
// demonstration.
type SideChannelResult struct {
	StaticAttempts   int
	StaticIdentified bool
	FreshIdentified  bool
}

// SideChannel demonstrates the crash side channel of Section 7.3: against a
// worker pool that restarts without re-randomizing, zeroing return-address
// candidates one restart at a time identifies the real return address in at
// most R+1 restarts; load-time re-randomization (fresh seed per restart)
// defeats the accumulation.
func SideChannel(opt Options) (*SideChannelResult, error) {
	cfg := defense.R2CFull()
	s, err := attack.NewScenarioObserved(cfg, 42, opt.Obs)
	if err != nil {
		return nil, err
	}
	attempts, identified, _ := s.CrashSideChannel(16, false)

	s2, err := attack.NewScenarioObserved(cfg, 43, opt.Obs)
	if err != nil {
		return nil, err
	}
	_, freshIdentified, _ := s2.CrashSideChannel(16, true)

	r := &SideChannelResult{
		StaticAttempts:   attempts,
		StaticIdentified: identified,
		FreshIdentified:  freshIdentified,
	}
	opt.printf("crash side channel (Section 7.3): static layout identified RA after %d restarts: %v; with load-time re-randomization: %v\n",
		r.StaticAttempts, r.StaticIdentified, r.FreshIdentified)
	return r, nil
}
