package bench

import (
	"fmt"

	"r2c/internal/audit"
	"r2c/internal/defense"
	"r2c/internal/workload"
)

// diversityVariants is the variant count per configuration in the Diversity
// experiment — enough for 28 pairwise comparisons per config while keeping
// the sweep light enough for CI.
const diversityVariants = 8

// Diversity runs the variant diversity audit across the paper's
// configurations — the unprotected baseline, each R2C component in
// isolation, and full R2C — over the nginx workload, and prints one
// comparison row per config: placement entropy, register-allocation
// divergence, and the mean pairwise survivor rates an AOCR adversary could
// exploit. It is the at-a-glance answer to "which knob buys how much
// diversity"; `r2caudit` is the deep single-config view.
//
// Builds fan through the shared engine, so a diversity sweep after a
// performance sweep reuses every cached image. Reports come back in config
// order and are byte-identical at any -jobs width.
func Diversity(opt Options) ([]*audit.Report, error) {
	opt = opt.withEngine()
	defer opt.Obs.Timer("bench.diversity").Time()()

	b, ok := workload.ByName("nginx")
	if !ok {
		return nil, fmt.Errorf("bench: nginx workload missing")
	}
	m := b.Build(opt.scale())

	configs := []defense.Config{defense.Off()}
	configs = append(configs, defense.Components()...)
	configs = append(configs, defense.R2CFull())

	opt.printf("Variant diversity (nginx, %d variants/config; entropy in bits, ceiling %.2f):\n",
		diversityVariants, audit.NewEntropyStat(0, diversityVariants).MaxBits)
	opt.printf("%-18s %9s %9s %9s | %9s %9s %9s %9s\n",
		"config", "func-ord", "glob-ord", "regalloc", "f-off", "g-off", "gadget", "data")

	reports := make([]*audit.Report, 0, len(configs))
	for _, cfg := range configs {
		rep, err := audit.Run(audit.Options{
			Module:   m,
			Cfg:      cfg,
			Variants: diversityVariants,
			BaseSeed: 71, // fixed schedule, like the perf sweeps' seed bases
			Eng:      opt.Eng,
			Obs:      opt.Obs,
			Ctx:      opt.ctx(),
		})
		if err != nil {
			return reports, fmt.Errorf("bench: diversity audit of %s: %w", cfg.Name, err)
		}
		reports = append(reports, rep)
		s := rep.Survivor
		opt.printf("%-18s %9.3f %9.3f %9.3f | %9.4f %9.4f %9.4f %9.4f\n",
			cfg.Name,
			rep.FuncOrder.Permutation.Bits,
			rep.GlobalOrder.Permutation.Bits,
			rep.RegAlloc.MeanEntropy.Bits,
			s.MeanFuncOffset, s.MeanGlobalOffset, s.MeanGadget, s.MeanDataWord)
	}
	return reports, nil
}
