package bench

import (
	"fmt"

	"r2c/internal/defense"
	"r2c/internal/exec"
	"r2c/internal/sim"
	"r2c/internal/stats"
	"r2c/internal/telemetry"
	"r2c/internal/tir"
	"r2c/internal/vm"
	"r2c/internal/workload"
)

// WebResult holds one server/machine throughput measurement.
type WebResult struct {
	Server     string
	Machine    string
	BaseRPS    float64
	R2CRPS     float64
	DeficitPct float64 // throughput decrease in percent
}

// webRun measures requests/second for one build. Requests per run and the
// connection-saturation sweep collapse to a single saturated run in the
// simulator: the VM is the single saturated core, so throughput is just
// requests over modeled time. On machines where the paper shares cores
// between wrk and the server (the 8-core i9-9900K), context-switch
// pollution is modeled by flushing the i-cache once per request.
func webRun(eng *exec.Engine, m *tir.Module, cfg defense.Config, prof *vm.Profile, seed uint64, requests float64, obs *telemetry.Observer) (float64, error) {
	proc, err := eng.BuildProcess(m, cfg, seed)
	if err != nil {
		return 0, err
	}
	mach := vm.New(proc, prof)
	if prof.Cores <= 8 {
		mach.FlushICacheEvery = 5400 // ≈ every few requests
	}
	res, err := mach.Run(sim.DefaultBudget)
	if reg := obs.Reg(); reg != nil {
		mach.PublishMetrics(reg)
	}
	if err != nil {
		return 0, err
	}
	if !res.Halted || res.Fault != nil {
		return 0, fmt.Errorf("web run did not complete: fault=%v", res.Fault)
	}
	return requests / res.Seconds(prof), nil
}

// Webserver regenerates the Section 6.2.4 experiment: nginx and Apache
// throughput under full R2C versus baseline, on the Intel i9-9900K and the
// AMD EPYC Rome profiles. Paper: −13% (nginx) and −12% (Apache) on i9,
// −3..4% on the AMD machines. Each number is the median of five runs.
func Webserver(opt Options) ([]WebResult, error) {
	opt = opt.withEngine()
	requests := float64(workload.WebRequests / opt.scale())
	runs := opt.runs()
	if runs < 5 {
		runs = 5 // the paper uses the median of five runs
	}
	profs := []*vm.Profile{vm.I99900K(), vm.EPYCRome()}
	servers := []string{"nginx", "apache"}

	// Flatten to independent tasks (webRun needs a custom machine setup, so
	// these go through the pool directly rather than as engine cells).
	type webTask struct {
		prof     *vm.Profile
		server   string
		m        *tir.Module
		cfg      defense.Config
		seed     uint64
		baseline bool
	}
	var tasks []webTask
	for _, prof := range profs {
		for _, server := range servers {
			b, _ := workload.ByName(server)
			m := b.Build(opt.scale())
			for i := 0; i < runs; i++ {
				seed := uint64(41 + i*131)
				tasks = append(tasks,
					webTask{prof, server, m, defense.Off(), seed, true},
					webTask{prof, server, m, defense.R2CFull(), seed + 7, false})
			}
		}
	}
	rps := make([]float64, len(tasks))
	err := opt.Eng.Pool.Map(opt.ctx(), len(tasks), func(i int) error {
		t := &tasks[i]
		r, err := webRun(opt.Eng, t.m, t.cfg, t.prof, t.seed, requests, opt.Obs)
		if err != nil {
			kind := "r2c"
			if t.baseline {
				kind = "baseline"
			}
			return fmt.Errorf("%s %s: %w", t.server, kind, err)
		}
		rps[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}

	var out []WebResult
	idx := 0
	for _, prof := range profs {
		for _, server := range servers {
			var base, prot []float64
			for i := 0; i < runs; i++ {
				base = append(base, rps[idx])
				prot = append(prot, rps[idx+1])
				idx += 2
			}
			mb2, mp := stats.Median(base), stats.Median(prot)
			r := WebResult{
				Server:     server,
				Machine:    prof.Name,
				BaseRPS:    mb2,
				R2CRPS:     mp,
				DeficitPct: (1 - mp/mb2) * 100,
			}
			out = append(out, r)
			opt.printf("%-8s on %-10s: baseline %10.0f req/s, R2C %10.0f req/s, deficit %5.1f%%\n",
				r.Server, r.Machine, r.BaseRPS, r.R2CRPS, r.DeficitPct)
		}
	}
	return out, nil
}

// MemResult summarizes the Section 6.2.5 memory-overhead experiment.
type MemResult struct {
	// SPECMaxrssMinPct/MaxPct bound the per-benchmark maxrss overhead
	// (paper: 1–3%).
	SPECMaxrssMinPct, SPECMaxrssMaxPct float64
	// SPECSampledPct is the sampled-RSS cross-check of Section 7.1 ("only
	// a few percent").
	SPECSampledPct float64
	// WebOverheadPct is the webserver sampled-RSS overhead (paper ≈100%).
	WebOverheadPct float64
	// WebBTDPSharePct is the fraction of that overhead attributable to
	// BTDP guard pages (paper ≈55%).
	WebBTDPSharePct float64
}

// Memory regenerates the memory-overhead experiment with both of the
// paper's methodologies: the maxrss rusage metric for SPEC, and a sampled
// median RSS (the separate monitoring process) for the webservers, where
// child-process maxrss would mislead.
func Memory(opt Options) (*MemResult, error) {
	opt = opt.withEngine()
	res := &MemResult{SPECMaxrssMinPct: 1e9}
	specs := workload.SPEC()
	type memRow struct {
		maxrssPct, sampledPct float64
	}
	memRows := make([]memRow, len(specs))
	err := opt.Eng.Pool.Map(opt.ctx(), len(specs), func(i int) error {
		b := specs[i]
		m := b.Build(opt.scale())
		base, _, err := opt.Eng.Run(m, defense.Off(), 3, vm.EPYCRome())
		if err != nil {
			return fmt.Errorf("%s: %w", b.Name, err)
		}
		full, _, err := opt.Eng.Run(m, defense.R2CFull(), 5, vm.EPYCRome())
		if err != nil {
			return fmt.Errorf("%s: %w", b.Name, err)
		}
		// Sampled-RSS methodology cross-check (the builds are cache hits —
		// same module content, config and seed as the maxrss runs above).
		bs, err2 := sampledMedianRSS(opt.Eng, m, defense.Off(), 3, opt.Obs)
		fs, err3 := sampledMedianRSS(opt.Eng, m, defense.R2CFull(), 5, opt.Obs)
		if err2 != nil || err3 != nil {
			return fmt.Errorf("%s sampling: %v %v", b.Name, err2, err3)
		}
		memRows[i] = memRow{
			maxrssPct:  (float64(full.MaxRSSBytes)/float64(base.MaxRSSBytes) - 1) * 100,
			sampledPct: (fs/bs - 1) * 100,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var sampled []float64
	for i, b := range specs {
		pct := memRows[i].maxrssPct
		if pct < res.SPECMaxrssMinPct {
			res.SPECMaxrssMinPct = pct
		}
		if pct > res.SPECMaxrssMaxPct {
			res.SPECMaxrssMaxPct = pct
		}
		sampled = append(sampled, memRows[i].sampledPct)
		opt.printf("%-10s maxrss %+5.1f%%  sampled %+5.1f%%\n", b.Name, pct, memRows[i].sampledPct)
	}
	res.SPECSampledPct = stats.Median(sampled)

	// Webservers: sampled median RSS plus guard-page attribution.
	bng, _ := workload.ByName("nginx")
	m := bng.Build(opt.scale())
	base, err := sampledMedianRSS(opt.Eng, m, defense.Off(), 9, opt.Obs)
	if err != nil {
		return nil, err
	}
	protProc, err := opt.Eng.BuildProcess(m, defense.R2CFull(), 11)
	if err != nil {
		return nil, err
	}
	mach := vm.New(protProc, vm.I99900K())
	mach.SampleEvery = 50_000
	r, err := mach.Run(sim.DefaultBudget)
	if err != nil {
		return nil, err
	}
	if reg := opt.Obs.Reg(); reg != nil {
		mach.PublishMetrics(reg)
	}
	if len(r.RSSSamples) == 0 {
		return nil, fmt.Errorf("no RSS samples collected")
	}
	var xs []float64
	for _, s := range r.RSSSamples {
		xs = append(xs, float64(s))
	}
	prot := stats.Median(xs)
	res.WebOverheadPct = (prot/base - 1) * 100
	guardBytes := float64(len(protProc.GuardPages)) * 4096
	res.WebBTDPSharePct = guardBytes / (prot - base) * 100

	opt.printf("SPEC maxrss overhead: %.1f%% – %.1f%% (sampled-RSS median %.1f%%)\n",
		res.SPECMaxrssMinPct, res.SPECMaxrssMaxPct, res.SPECSampledPct)
	opt.printf("webserver sampled-RSS overhead: %.0f%% (%.0f%% of it BTDP guard pages)\n",
		res.WebOverheadPct, res.WebBTDPSharePct)
	return res, nil
}

func sampledMedianRSS(eng *exec.Engine, m *tir.Module, cfg defense.Config, seed uint64, obs *telemetry.Observer) (float64, error) {
	proc, err := eng.BuildProcess(m, cfg, seed)
	if err != nil {
		return 0, err
	}
	mach := vm.New(proc, vm.I99900K())
	mach.SampleEvery = 50_000
	r, err := mach.Run(sim.DefaultBudget)
	if err != nil {
		return 0, err
	}
	if reg := obs.Reg(); reg != nil {
		mach.PublishMetrics(reg)
	}
	if len(r.RSSSamples) == 0 {
		return float64(r.MaxRSSBytes), nil
	}
	var xs []float64
	for _, s := range r.RSSSamples {
		xs = append(xs, float64(s))
	}
	return stats.Median(xs), nil
}

// ScaleResult summarizes the Section 6.3 scalability experiment.
type ScaleResult struct {
	Funcs       int
	TirInstrs   int
	TextKB      uint64
	TextGrowPct float64
	OutputOK    bool
}

// Scale regenerates the scalability experiment: compile a browser-scale
// synthetic module under full R2C, verify it runs correctly, and report
// the size handled (the paper compiles WebKit and Chromium, Section 6.3).
func Scale(opt Options, funcs int) (*ScaleResult, error) {
	// The engine's build cache matters most here: the browser-scale module is
	// by far the most expensive compile, and the measurement run plus the
	// size-inspection process share one build per config instead of two.
	opt = opt.withEngine()
	m := workload.BrowserScale(funcs)
	st := m.Stats()
	base, baseProc, err := opt.Eng.Run(m, defense.Off(), 1, vm.Xeon8358())
	if err != nil {
		return nil, err
	}
	full, fullProc, err := opt.Eng.Run(m, defense.R2CFull(), 1, vm.Xeon8358())
	if err != nil {
		return nil, err
	}
	ok := len(base.Output) == len(full.Output)
	for i := range base.Output {
		ok = ok && base.Output[i] == full.Output[i]
	}
	r := &ScaleResult{
		Funcs:       st.Funcs,
		TirInstrs:   st.Instrs,
		TextKB:      fullProc.Img.TextSize() / 1024,
		TextGrowPct: (float64(fullProc.Img.TextSize())/float64(baseProc.Img.TextSize()) - 1) * 100,
		OutputOK:    ok,
	}
	opt.printf("scalability: %d functions, %d TIR instrs, %d KiB protected text (+%.0f%%), correct=%v\n",
		r.Funcs, r.TirInstrs, r.TextKB, r.TextGrowPct, r.OutputOK)
	return r, nil
}
