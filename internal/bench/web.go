package bench

import (
	"fmt"

	"r2c/internal/defense"
	"r2c/internal/sim"
	"r2c/internal/stats"
	"r2c/internal/telemetry"
	"r2c/internal/tir"
	"r2c/internal/vm"
	"r2c/internal/workload"
)

// WebResult holds one server/machine throughput measurement.
type WebResult struct {
	Server     string
	Machine    string
	BaseRPS    float64
	R2CRPS     float64
	DeficitPct float64 // throughput decrease in percent
}

// webRun measures requests/second for one build. Requests per run and the
// connection-saturation sweep collapse to a single saturated run in the
// simulator: the VM is the single saturated core, so throughput is just
// requests over modeled time. On machines where the paper shares cores
// between wrk and the server (the 8-core i9-9900K), context-switch
// pollution is modeled by flushing the i-cache once per request.
func webRun(m *tir.Module, cfg defense.Config, prof *vm.Profile, seed uint64, requests float64, obs *telemetry.Observer) (float64, error) {
	proc, err := sim.BuildObserved(m, cfg, seed, obs)
	if err != nil {
		return 0, err
	}
	mach := vm.New(proc, prof)
	if prof.Cores <= 8 {
		mach.FlushICacheEvery = 5400 // ≈ every few requests
	}
	res, err := mach.Run(sim.DefaultBudget)
	if reg := obs.Reg(); reg != nil {
		mach.PublishMetrics(reg)
	}
	if err != nil {
		return 0, err
	}
	if !res.Halted || res.Fault != nil {
		return 0, fmt.Errorf("web run did not complete: fault=%v", res.Fault)
	}
	return requests / res.Seconds(prof), nil
}

// Webserver regenerates the Section 6.2.4 experiment: nginx and Apache
// throughput under full R2C versus baseline, on the Intel i9-9900K and the
// AMD EPYC Rome profiles. Paper: −13% (nginx) and −12% (Apache) on i9,
// −3..4% on the AMD machines. Each number is the median of five runs.
func Webserver(opt Options) ([]WebResult, error) {
	requests := float64(workload.WebRequests / opt.scale())
	var out []WebResult
	runs := opt.runs()
	if runs < 5 {
		runs = 5 // the paper uses the median of five runs
	}
	for _, prof := range []*vm.Profile{vm.I99900K(), vm.EPYCRome()} {
		for _, server := range []string{"nginx", "apache"} {
			b, _ := workload.ByName(server)
			m := b.Build(opt.scale())
			var base, prot []float64
			for i := 0; i < runs; i++ {
				seed := uint64(41 + i*131)
				rb, err := webRun(m, defense.Off(), prof, seed, requests, opt.Obs)
				if err != nil {
					return nil, fmt.Errorf("%s baseline: %w", server, err)
				}
				rp, err := webRun(m, defense.R2CFull(), prof, seed+7, requests, opt.Obs)
				if err != nil {
					return nil, fmt.Errorf("%s r2c: %w", server, err)
				}
				base = append(base, rb)
				prot = append(prot, rp)
			}
			mb2, mp := stats.Median(base), stats.Median(prot)
			r := WebResult{
				Server:     server,
				Machine:    prof.Name,
				BaseRPS:    mb2,
				R2CRPS:     mp,
				DeficitPct: (1 - mp/mb2) * 100,
			}
			out = append(out, r)
			opt.printf("%-8s on %-10s: baseline %10.0f req/s, R2C %10.0f req/s, deficit %5.1f%%\n",
				r.Server, r.Machine, r.BaseRPS, r.R2CRPS, r.DeficitPct)
		}
	}
	return out, nil
}

// MemResult summarizes the Section 6.2.5 memory-overhead experiment.
type MemResult struct {
	// SPECMaxrssMinPct/MaxPct bound the per-benchmark maxrss overhead
	// (paper: 1–3%).
	SPECMaxrssMinPct, SPECMaxrssMaxPct float64
	// SPECSampledPct is the sampled-RSS cross-check of Section 7.1 ("only
	// a few percent").
	SPECSampledPct float64
	// WebOverheadPct is the webserver sampled-RSS overhead (paper ≈100%).
	WebOverheadPct float64
	// WebBTDPSharePct is the fraction of that overhead attributable to
	// BTDP guard pages (paper ≈55%).
	WebBTDPSharePct float64
}

// Memory regenerates the memory-overhead experiment with both of the
// paper's methodologies: the maxrss rusage metric for SPEC, and a sampled
// median RSS (the separate monitoring process) for the webservers, where
// child-process maxrss would mislead.
func Memory(opt Options) (*MemResult, error) {
	res := &MemResult{SPECMaxrssMinPct: 1e9}
	var sampled []float64
	for _, b := range workload.SPEC() {
		m := b.Build(opt.scale())
		base, _, err := sim.RunObserved(m, defense.Off(), 3, vm.EPYCRome(), opt.Obs)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		full, _, err := sim.RunObserved(m, defense.R2CFull(), 5, vm.EPYCRome(), opt.Obs)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		pct := (float64(full.MaxRSSBytes)/float64(base.MaxRSSBytes) - 1) * 100
		if pct < res.SPECMaxrssMinPct {
			res.SPECMaxrssMinPct = pct
		}
		if pct > res.SPECMaxrssMaxPct {
			res.SPECMaxrssMaxPct = pct
		}
		// Sampled-RSS methodology cross-check.
		bs, err2 := sampledMedianRSS(m, defense.Off(), 3, opt.Obs)
		fs, err3 := sampledMedianRSS(m, defense.R2CFull(), 5, opt.Obs)
		if err2 != nil || err3 != nil {
			return nil, fmt.Errorf("%s sampling: %v %v", b.Name, err2, err3)
		}
		sampled = append(sampled, (fs/bs-1)*100)
		opt.printf("%-10s maxrss %+5.1f%%  sampled %+5.1f%%\n", b.Name, pct, (fs/bs-1)*100)
	}
	res.SPECSampledPct = stats.Median(sampled)

	// Webservers: sampled median RSS plus guard-page attribution.
	bng, _ := workload.ByName("nginx")
	m := bng.Build(opt.scale())
	base, err := sampledMedianRSS(m, defense.Off(), 9, opt.Obs)
	if err != nil {
		return nil, err
	}
	protProc, err := sim.BuildObserved(m, defense.R2CFull(), 11, opt.Obs)
	if err != nil {
		return nil, err
	}
	mach := vm.New(protProc, vm.I99900K())
	mach.SampleEvery = 50_000
	r, err := mach.Run(sim.DefaultBudget)
	if err != nil {
		return nil, err
	}
	if reg := opt.Obs.Reg(); reg != nil {
		mach.PublishMetrics(reg)
	}
	if len(r.RSSSamples) == 0 {
		return nil, fmt.Errorf("no RSS samples collected")
	}
	var xs []float64
	for _, s := range r.RSSSamples {
		xs = append(xs, float64(s))
	}
	prot := stats.Median(xs)
	res.WebOverheadPct = (prot/base - 1) * 100
	guardBytes := float64(len(protProc.GuardPages)) * 4096
	res.WebBTDPSharePct = guardBytes / (prot - base) * 100

	opt.printf("SPEC maxrss overhead: %.1f%% – %.1f%% (sampled-RSS median %.1f%%)\n",
		res.SPECMaxrssMinPct, res.SPECMaxrssMaxPct, res.SPECSampledPct)
	opt.printf("webserver sampled-RSS overhead: %.0f%% (%.0f%% of it BTDP guard pages)\n",
		res.WebOverheadPct, res.WebBTDPSharePct)
	return res, nil
}

func sampledMedianRSS(m *tir.Module, cfg defense.Config, seed uint64, obs *telemetry.Observer) (float64, error) {
	proc, err := sim.BuildObserved(m, cfg, seed, obs)
	if err != nil {
		return 0, err
	}
	mach := vm.New(proc, vm.I99900K())
	mach.SampleEvery = 50_000
	r, err := mach.Run(sim.DefaultBudget)
	if err != nil {
		return 0, err
	}
	if reg := obs.Reg(); reg != nil {
		mach.PublishMetrics(reg)
	}
	if len(r.RSSSamples) == 0 {
		return float64(r.MaxRSSBytes), nil
	}
	var xs []float64
	for _, s := range r.RSSSamples {
		xs = append(xs, float64(s))
	}
	return stats.Median(xs), nil
}

// ScaleResult summarizes the Section 6.3 scalability experiment.
type ScaleResult struct {
	Funcs       int
	TirInstrs   int
	TextKB      uint64
	TextGrowPct float64
	OutputOK    bool
}

// Scale regenerates the scalability experiment: compile a browser-scale
// synthetic module under full R2C, verify it runs correctly, and report
// the size handled (the paper compiles WebKit and Chromium, Section 6.3).
func Scale(opt Options, funcs int) (*ScaleResult, error) {
	m := workload.BrowserScale(funcs)
	st := m.Stats()
	base, _, err := sim.RunObserved(m, defense.Off(), 1, vm.Xeon8358(), opt.Obs)
	if err != nil {
		return nil, err
	}
	baseProc, err := sim.Build(m, defense.Off(), 1)
	if err != nil {
		return nil, err
	}
	fullProc, err := sim.Build(m, defense.R2CFull(), 1)
	if err != nil {
		return nil, err
	}
	full, _, err := sim.RunObserved(m, defense.R2CFull(), 1, vm.Xeon8358(), opt.Obs)
	if err != nil {
		return nil, err
	}
	ok := len(base.Output) == len(full.Output)
	for i := range base.Output {
		ok = ok && base.Output[i] == full.Output[i]
	}
	r := &ScaleResult{
		Funcs:       st.Funcs,
		TirInstrs:   st.Instrs,
		TextKB:      fullProc.Img.TextSize() / 1024,
		TextGrowPct: (float64(fullProc.Img.TextSize())/float64(baseProc.Img.TextSize()) - 1) * 100,
		OutputOK:    ok,
	}
	opt.printf("scalability: %d functions, %d TIR instrs, %d KiB protected text (+%.0f%%), correct=%v\n",
		r.Funcs, r.TirInstrs, r.TextKB, r.TextGrowPct, r.OutputOK)
	return r, nil
}
