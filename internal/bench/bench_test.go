package bench

import (
	"bytes"
	"strings"
	"testing"
)

// quickOpt shrinks workloads so the drivers can be exercised in unit tests.
func quickOpt() Options { return Options{Scale: 16, Runs: 1} }

func TestTable1Rows(t *testing.T) {
	if testing.Short() {
		t.Skip("perf harness")
	}
	rows, err := Table1(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Push", "AVX", "BTDP", "Prolog", "Layout"}
	if len(rows) != len(want) {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.Name != want[i] {
			t.Errorf("row %d = %s, want %s", i, r.Name, want[i])
		}
		if r.Geomean < 0.97 || r.Geomean > 1.5 {
			t.Errorf("%s geomean %.3f implausible", r.Name, r.Geomean)
		}
		if r.Max < r.Geomean-0.02 {
			t.Errorf("%s max %.3f below geomean %.3f", r.Name, r.Max, r.Geomean)
		}
	}
	// The push setup must cost more than the AVX2 setup (the Table 1
	// headline).
	if rows[0].Geomean <= rows[1].Geomean {
		t.Errorf("push (%.3f) should exceed AVX (%.3f)", rows[0].Geomean, rows[1].Geomean)
	}
}

func TestTable2RowsAndOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("perf harness")
	}
	var buf bytes.Buffer
	opt := quickOpt()
	opt.Out = &buf
	rows, err := Table2(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	// nab must dominate and lbm must be tiny, as in the paper.
	var nab, lbm Table2Row
	for _, r := range rows {
		if r.Benchmark == "nab" {
			nab = r
		}
		if r.Benchmark == "lbm" {
			lbm = r
		}
	}
	if nab.Measured <= lbm.Measured*100 {
		t.Errorf("nab (%d) should dwarf lbm (%d)", nab.Measured, lbm.Measured)
	}
	if !strings.Contains(buf.String(), "perlbench") {
		t.Error("table output missing rows")
	}
}

func TestOverheadsStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("perf harness")
	}
	ov := Overheads{Config: "x", ByBench: map[string]float64{"a": 1.1, "b": 1.2, "c": 1.0}}
	name, max := ov.Max()
	if name != "b" || max != 1.2 {
		t.Errorf("Max = %s %v", name, max)
	}
	g := ov.Geomean()
	if g < 1.09 || g > 1.11 {
		t.Errorf("geomean = %v", g)
	}
}

func TestVerdicts(t *testing.T) {
	if Protected.String() != "●" || Partial.String() != "◐" || Vulnerable.String() != "○" {
		t.Error("verdict glyphs wrong")
	}
}

func TestSideChannelExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("security harness")
	}
	r, err := SideChannel(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.StaticIdentified {
		t.Error("Section 7.3: the crash side channel must identify the RA against a static worker pool")
	}
	if r.FreshIdentified {
		t.Error("load-time re-randomization must defeat the crash side channel")
	}
	if r.StaticAttempts > 12 {
		t.Errorf("identification took %d restarts, should be ≤ R+1", r.StaticAttempts)
	}
}

func TestProbMatchesAnalytic(t *testing.T) {
	if testing.Short() {
		t.Skip("security harness")
	}
	pts, err := Prob(Options{}, 30)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		// Within a factor of two of the analytic value (Monte-Carlo noise
		// plus the alignment BTRA).
		if p.PerFrame > 2*p.Analytic || p.PerFrame < p.Analytic/2.5 {
			t.Errorf("R=%d: per-frame %.4f vs analytic %.4f", p.R, p.PerFrame, p.Analytic)
		}
	}
}
