package bench

import (
	"bytes"
	"io"
	"testing"

	"r2c/internal/perf"
	"r2c/internal/telemetry"
)

// harvestFigure6 runs Figure6 at the given worker-pool width into a fresh
// registry and returns the deterministic core of the harvested baseline.
func harvestFigure6(t *testing.T, jobs int) []byte {
	t.Helper()
	obs := &telemetry.Observer{Registry: telemetry.NewRegistry()}
	opt := Options{Scale: 16, Runs: 1, Jobs: jobs, Obs: obs, Out: io.Discard}
	if _, err := Figure6(opt); err != nil {
		t.Fatal(err)
	}
	snap := obs.Registry.Snapshot()
	b := perf.FromSnapshot("figure6", snap, perf.Provenance{}, map[string]string{"scale": "16", "runs": "1"})
	data, err := b.DeterministicJSON()
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Metrics) == 0 {
		t.Fatal("harvested baseline has no metrics")
	}
	return data
}

// TestBaselineDeterministicAcrossJobs pins the property committed baselines
// rely on: the deterministic metric core — headline gauges, cycle counters,
// and the exec.run.cycles histogram (observed in the engine's submission-
// ordered merge loop, never on workers) — is byte-identical whether the
// cells ran serially or on an 8-wide pool.
func TestBaselineDeterministicAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("perf harness")
	}
	serial := harvestFigure6(t, 1)
	parallel := harvestFigure6(t, 8)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("deterministic baseline differs between -jobs 1 and -jobs 8:\n--- jobs=1\n%s\n--- jobs=8\n%s", serial, parallel)
	}
}

// TestBaselineHarvestsEngineHistograms checks the engine's latency and cycle
// histograms land in the right baseline halves: wall-clock phases as timing
// summaries, modeled cycles as deterministic metrics.
func TestBaselineHarvestsEngineHistograms(t *testing.T) {
	if testing.Short() {
		t.Skip("perf harness")
	}
	obs := &telemetry.Observer{Registry: telemetry.NewRegistry()}
	opt := Options{Scale: 16, Runs: 1, Jobs: 2, Obs: obs, Out: io.Discard}
	if _, err := Figure6(opt); err != nil {
		t.Fatal(err)
	}
	snap := obs.Registry.Snapshot()
	b := perf.FromSnapshot("figure6", snap, perf.Collect(), nil)
	for _, key := range []string{"exec.run.cycles.count", "exec.run.cycles.sum", "exec.run.cycles.p50", "exec.run.cycles.p99"} {
		m, ok := b.Metrics[key]
		if !ok {
			t.Errorf("baseline lacks %s", key)
			continue
		}
		if m.Class != perf.ClassDeterministic {
			t.Errorf("%s classified %q, want deterministic", key, m.Class)
		}
		if m.Value <= 0 {
			t.Errorf("%s = %v, want > 0", key, m.Value)
		}
	}
	for _, key := range []string{"exec.cell.seconds", "exec.cache.lookup.seconds"} {
		if _, ok := b.Phases[key]; !ok {
			t.Errorf("baseline lacks phase %s; has %v", key, b.PhaseKeys())
		}
	}
	if _, ok := b.Phases["exec.phase.seconds{phase=exec}"]; !ok {
		t.Errorf("baseline lacks the exec phase split; has %v", b.PhaseKeys())
	}
}
