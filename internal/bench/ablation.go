package bench

import (
	"r2c/internal/defense"
	"r2c/internal/stats"
	"r2c/internal/vm"
)

// AblationResult collects the design-choice performance ablations the paper
// reports in passing and DESIGN.md section 4 calls out.
type AblationResult struct {
	// BTDPSkipSavingPct is the geomean saving of the Section 5.2
	// optimization (skip functions without stack allocations); the paper
	// reports ≈1%.
	BTDPSkipSavingPct float64
	// VZeroUpperPenaltyPct is the geomean extra cost of omitting
	// vzeroupper after the AVX2 setup (Section 5.1.2 reports up to 50%).
	VZeroUpperPenaltyPct float64
	// VZeroUpperPenaltyMaxPct is the worst benchmark.
	VZeroUpperPenaltyMaxPct float64
	// BTRACountPct maps BTRAs-per-call-site to geomean overhead (the
	// security/performance dial of Section 7.1).
	BTRACountPct map[int]float64
	// CheckBTRAsCostPct is the geomean cost of the Section 7.3 consistency
	// checks on top of full R2C.
	CheckBTRAsCostPct float64
}

// Ablations measures the design-choice ablations on the EPYC Rome profile.
func Ablations(opt Options) (*AblationResult, error) {
	// One engine across the four sweeps: every sweep re-measures the same
	// baselines, which the shared build cache collapses to one build each.
	opt = opt.withEngine()
	res := &AblationResult{BTRACountPct: map[int]float64{}}
	prof := vm.EPYCRome()

	// (1) BTDP skip optimization (Section 5.2 / 6.2.2).
	withSkip := defense.BTDPOnly()
	noSkip := defense.BTDPOnly()
	noSkip.Name = "btdp-noskip"
	noSkip.BTDPSkipNoStackFuncs = false
	ovs, err := MeasureOverheads([]defense.Config{withSkip, noSkip}, prof, opt)
	if err != nil {
		return nil, err
	}
	res.BTDPSkipSavingPct = stats.Pct(ovs[1].Geomean()) - stats.Pct(ovs[0].Geomean())
	opt.printf("BTDP skip optimization saves %.2f%% geomean (paper: ≈1%%)\n", res.BTDPSkipSavingPct)

	// (2) vzeroupper (Section 5.1.2).
	avx := defense.BTRAAVXOnly()
	noVZ := defense.BTRAAVXOnly()
	noVZ.Name = "btra-avx-novzeroupper"
	noVZ.OmitVZeroUpper = true
	ovs, err = MeasureOverheads([]defense.Config{avx, noVZ}, prof, opt)
	if err != nil {
		return nil, err
	}
	res.VZeroUpperPenaltyPct = stats.Pct(ovs[1].Geomean()) - stats.Pct(ovs[0].Geomean())
	_, m1 := ovs[1].Max()
	res.VZeroUpperPenaltyMaxPct = stats.Pct(m1)
	opt.printf("omitting vzeroupper costs +%.1f%% geomean, worst benchmark %.1f%% (paper: up to 50%%)\n",
		res.VZeroUpperPenaltyPct, res.VZeroUpperPenaltyMaxPct)

	// (3) BTRA count sweep (Section 7.1: more BTRAs buy security).
	var sweep []defense.Config
	for _, n := range []int{5, 10, 20} {
		c := defense.BTRAAVXOnly()
		c.Name = "btra-avx-" + string(rune('0'+n/10)) + string(rune('0'+n%10))
		c.BTRAsPerCall = n
		sweep = append(sweep, c)
	}
	ovs, err = MeasureOverheads(sweep, prof, opt)
	if err != nil {
		return nil, err
	}
	for i, n := range []int{5, 10, 20} {
		res.BTRACountPct[n] = stats.Pct(ovs[i].Geomean())
		opt.printf("AVX2 setup with %2d BTRAs per call site: %.2f%% geomean\n", n, res.BTRACountPct[n])
	}

	// (4) Section 7.3 consistency checks.
	full := defense.R2CFull()
	checked := defense.R2CFull()
	checked.Name = "r2c-btra-checks"
	checked.CheckBTRAsOnReturn = true
	ovs, err = MeasureOverheads([]defense.Config{full, checked}, prof, opt)
	if err != nil {
		return nil, err
	}
	res.CheckBTRAsCostPct = stats.Pct(ovs[1].Geomean()) - stats.Pct(ovs[0].Geomean())
	opt.printf("BTRA consistency checks cost +%.2f%% geomean on top of full R2C\n", res.CheckBTRAsCostPct)
	return res, nil
}
