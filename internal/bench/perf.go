// Package bench contains the experiment drivers that regenerate every table
// and figure of the paper's evaluation (Section 6): Table 1 (component
// overheads), Table 2 (call frequencies), Figure 6 (full-R2C overhead on
// four machines), the webserver throughput experiment (Section 6.2.4), the
// memory-overhead experiment (Section 6.2.5), the offset-invariant
// addressing measurement (Section 6.2.1), the AVX-512 variant (Section
// 7.1), and the scalability experiment (Section 6.3).
package bench

import (
	"fmt"
	"io"
	"sort"

	"r2c/internal/defense"
	"r2c/internal/sim"
	"r2c/internal/stats"
	"r2c/internal/telemetry"
	"r2c/internal/tir"
	"r2c/internal/vm"
	"r2c/internal/workload"
)

// Options control experiment size.
type Options struct {
	// Scale divides workload iteration counts (1 = calibrated full size).
	Scale int
	// Runs is the number of differently-seeded builds per measurement; the
	// paper takes medians over repeated runs with fresh seeds.
	Runs int
	// Out receives the printed table (may be nil).
	Out io.Writer
	// Obs receives telemetry from every build and run the experiment
	// performs (counters, trap/fault events, optional function profiles).
	// Nil disables collection; the measured cycle counts are identical
	// either way.
	Obs *telemetry.Observer
}

func (o Options) scale() int {
	if o.Scale < 1 {
		return 1
	}
	return o.Scale
}

func (o Options) runs() int {
	if o.Runs < 1 {
		return 3
	}
	return o.Runs
}

func (o Options) printf(format string, args ...any) {
	if o.Out != nil {
		fmt.Fprintf(o.Out, format, args...)
	}
}

// medianCycles builds and runs m under cfg `runs` times with distinct seeds
// and returns the median modeled cycle count.
func medianCycles(m *tir.Module, cfg defense.Config, prof *vm.Profile, runs int, seedBase uint64, obs *telemetry.Observer) (float64, error) {
	var cycles []float64
	for i := 0; i < runs; i++ {
		res, _, err := sim.RunObserved(m, cfg, seedBase+uint64(i)*1000003, prof, obs)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", cfg.Name, err)
		}
		cycles = append(cycles, res.Cycles)
	}
	return stats.Median(cycles), nil
}

// Overheads holds per-benchmark overhead ratios for one configuration.
type Overheads struct {
	Config  string
	ByBench map[string]float64 // ratio, e.g. 1.06
}

// Geomean returns the geometric mean ratio across benchmarks.
func (o *Overheads) Geomean() float64 {
	var xs []float64
	for _, v := range o.ByBench {
		xs = append(xs, v)
	}
	return stats.GeoMean(xs)
}

// Max returns the maximum ratio and the benchmark it occurs on.
func (o *Overheads) Max() (string, float64) {
	bestN, bestV := "", 0.0
	names := make([]string, 0, len(o.ByBench))
	for n := range o.ByBench {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if v := o.ByBench[n]; v > bestV {
			bestN, bestV = n, v
		}
	}
	return bestN, bestV
}

// MeasureOverheads computes per-benchmark overhead ratios of each config
// against the unprotected baseline on the given machine profile.
func MeasureOverheads(cfgs []defense.Config, prof *vm.Profile, opt Options) ([]Overheads, error) {
	defer opt.Obs.Timer("bench.measure", "machine", prof.Name).Time()()
	specs := workload.SPEC()
	base := make(map[string]float64)
	modules := make(map[string]*tir.Module)
	for _, b := range specs {
		m := b.Build(opt.scale())
		modules[b.Name] = m
		c, err := medianCycles(m, defense.Off(), prof, opt.runs(), 17, opt.Obs)
		if err != nil {
			return nil, fmt.Errorf("%s baseline: %w", b.Name, err)
		}
		base[b.Name] = c
	}
	var out []Overheads
	for _, cfg := range cfgs {
		ov := Overheads{Config: cfg.Name, ByBench: map[string]float64{}}
		for _, b := range specs {
			c, err := medianCycles(modules[b.Name], cfg, prof, opt.runs(), 31, opt.Obs)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", b.Name, cfg.Name, err)
			}
			ov.ByBench[b.Name] = stats.Overhead(c, base[b.Name])
		}
		out = append(out, ov)
	}
	return out, nil
}

// Table1Row is one row of Table 1.
type Table1Row struct {
	Name         string
	Max, Geomean float64 // ratios, paper prints e.g. 1.21 / 1.06
}

// Table1 regenerates Table 1: the maximum and geometric-mean overhead of
// R2C's components (Push, AVX, BTDP, Prolog, Layout), measured on the EPYC
// Rome profile like the paper's component analysis (Section 6.2).
func Table1(opt Options) ([]Table1Row, error) {
	cfgs := defense.Components()
	ovs, err := MeasureOverheads(cfgs, vm.EPYCRome(), opt)
	if err != nil {
		return nil, err
	}
	label := map[string]string{
		"btra-push": "Push", "btra-avx": "AVX", "btdp": "BTDP",
		"prolog": "Prolog", "layout": "Layout",
	}
	var rows []Table1Row
	opt.printf("Table 1: component overheads (relative to baseline)\n")
	opt.printf("%-8s %6s %9s\n", "", "max", "geomean")
	for _, ov := range ovs {
		_, max := ov.Max()
		r := Table1Row{Name: label[ov.Config], Max: max, Geomean: ov.Geomean()}
		rows = append(rows, r)
		opt.printf("%-8s %6.2f %9.2f\n", r.Name, r.Max, r.Geomean)
	}
	return rows, nil
}

// Table2Row is one row of Table 2.
type Table2Row struct {
	Benchmark string
	// Measured is the median executed-call count in the simulation;
	// Scaled is Measured / CallScale, the Table 2 magnitude.
	Measured uint64
	Scaled   uint64
	Paper    uint64
}

// Table2 regenerates Table 2: median executed call frequencies per
// benchmark (call instructions only; tail calls are jumps and excluded,
// Section 7.1). Each benchmark is run with several inputs — seeds vary the
// synthetic input data — and the median is reported. The workloads always
// run at their calibrated full size here (a baseline-only run is cheap and
// several benchmarks have a fixed-size hot loop that cannot scale down).
func Table2(opt Options) ([]Table2Row, error) {
	var rows []Table2Row
	opt.printf("Table 2: median call frequencies (scaled to paper magnitude)\n")
	opt.printf("%-10s %15s %18s %18s\n", "benchmark", "measured", "scaled", "paper")
	for _, b := range workload.SPEC() {
		var counts []uint64
		for i := 0; i < opt.runs(); i++ {
			// Different seeds act as different inputs.
			res, _, err := sim.RunObserved(b.Build(1), defense.Off(), 100+uint64(i)*77, vm.EPYCRome(), opt.Obs)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", b.Name, err)
			}
			counts = append(counts, res.Calls)
		}
		med := stats.MedianU64(counts)
		row := Table2Row{
			Benchmark: b.Name,
			Measured:  med,
			Scaled:    uint64(float64(med) / workload.CallScale),
			Paper:     b.PaperCalls,
		}
		rows = append(rows, row)
		opt.printf("%-10s %15d %18d %18d\n", row.Benchmark, row.Measured, row.Scaled, row.Paper)
	}
	return rows, nil
}

// Figure6Series is the full-R2C overhead series for one machine.
type Figure6Series struct {
	Machine string
	ByBench map[string]float64 // percent overhead
	Geomean float64            // percent
}

// Figure6 regenerates Figure 6: full R2C (all protections, BTRAs also on
// calls to unprotected code) on the four machine profiles. The paper's
// geomean band is 6.6–8.5%.
func Figure6(opt Options) ([]Figure6Series, error) {
	var out []Figure6Series
	for _, prof := range vm.AllMachines() {
		ovs, err := MeasureOverheads([]defense.Config{defense.R2CFull()}, prof, opt)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", prof.Name, err)
		}
		s := Figure6Series{Machine: prof.Name, ByBench: map[string]float64{}}
		for n, v := range ovs[0].ByBench {
			s.ByBench[n] = stats.Pct(v)
		}
		s.Geomean = stats.Pct(ovs[0].Geomean())
		out = append(out, s)
	}
	opt.printf("Figure 6: full R2C performance impact (%%)\n%-10s", "benchmark")
	for _, s := range out {
		opt.printf(" %12s", s.Machine)
	}
	opt.printf("\n")
	for _, b := range workload.SPEC() {
		opt.printf("%-10s", b.Name)
		for _, s := range out {
			opt.printf(" %12.1f", s.ByBench[b.Name])
		}
		opt.printf("\n")
	}
	opt.printf("%-10s", "geomean")
	for _, s := range out {
		opt.printf(" %12.1f", s.Geomean)
	}
	opt.printf("\n")
	return out, nil
}

// OIAResult is the offset-invariant addressing measurement.
type OIAResult struct {
	GeomeanPct, MaxPct float64
	MaxBench           string
}

// OIA regenerates the offset-invariant addressing measurement of Section
// 6.2.1 (paper: 0.79% geomean, 3.61% max): OIA enabled, everything else
// off, so the cost is rbp bookkeeping at stack-argument call sites plus the
// lost frame-pointer omission.
func OIA(opt Options) (*OIAResult, error) {
	ovs, err := MeasureOverheads([]defense.Config{defense.OIAOnly()}, vm.EPYCRome(), opt)
	if err != nil {
		return nil, err
	}
	name, max := ovs[0].Max()
	r := &OIAResult{
		GeomeanPct: stats.Pct(ovs[0].Geomean()),
		MaxPct:     stats.Pct(max),
		MaxBench:   name,
	}
	opt.printf("Offset-invariant addressing alone: geomean %.2f%%, max %.2f%% (%s)\n",
		r.GeomeanPct, r.MaxPct, r.MaxBench)
	return r, nil
}

// AVX512Result compares the AVX2 and AVX-512 BTRA setups (Section 7.1).
type AVX512Result struct {
	AVX2GeomeanPct      float64
	AVX512GeomeanPct    float64 // same 10 BTRAs, wider moves
	AVX512x20GeomeanPct float64 // twice the BTRAs in the same move count
}

// AVX512 regenerates the Section 7.1 claim: with the same number of vector
// moves, AVX-512 performance is roughly identical to AVX2, and one can use
// twice as many BTRAs for a similar cost.
func AVX512(opt Options) (*AVX512Result, error) {
	avx2 := defense.BTRAAVXOnly()
	avx512 := defense.BTRAAVX512()
	avx512x2 := defense.BTRAAVX512()
	avx512x2.Name = "btra-avx512x20"
	avx512x2.BTRAsPerCall = 20
	ovs, err := MeasureOverheads([]defense.Config{avx2, avx512, avx512x2}, vm.Xeon8358(), opt)
	if err != nil {
		return nil, err
	}
	r := &AVX512Result{
		AVX2GeomeanPct:      stats.Pct(ovs[0].Geomean()),
		AVX512GeomeanPct:    stats.Pct(ovs[1].Geomean()),
		AVX512x20GeomeanPct: stats.Pct(ovs[2].Geomean()),
	}
	opt.printf("AVX2 10 BTRAs: %.2f%%  AVX-512 10 BTRAs: %.2f%%  AVX-512 20 BTRAs: %.2f%%\n",
		r.AVX2GeomeanPct, r.AVX512GeomeanPct, r.AVX512x20GeomeanPct)
	return r, nil
}
