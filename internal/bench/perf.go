// Package bench contains the experiment drivers that regenerate every table
// and figure of the paper's evaluation (Section 6): Table 1 (component
// overheads), Table 2 (call frequencies), Figure 6 (full-R2C overhead on
// four machines), the webserver throughput experiment (Section 6.2.4), the
// memory-overhead experiment (Section 6.2.5), the offset-invariant
// addressing measurement (Section 6.2.1), the AVX-512 variant (Section
// 7.1), and the scalability experiment (Section 6.3).
package bench

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"

	"r2c/internal/defense"
	"r2c/internal/exec"
	"r2c/internal/stats"
	"r2c/internal/telemetry"
	"r2c/internal/tir"
	"r2c/internal/vm"
	"r2c/internal/workload"
)

// Options control experiment size.
type Options struct {
	// Scale divides workload iteration counts (1 = calibrated full size).
	Scale int
	// Runs is the number of differently-seeded builds per measurement; the
	// paper takes medians over repeated runs with fresh seeds.
	Runs int
	// Out receives the printed table (may be nil).
	Out io.Writer
	// Obs receives telemetry from every build and run the experiment
	// performs (counters, trap/fault events, optional function profiles).
	// Nil disables collection; the measured cycle counts are identical
	// either way.
	Obs *telemetry.Observer
	// Jobs is the worker-pool width used when Eng is nil (0 = GOMAXPROCS,
	// 1 = serial). Reported numbers are byte-identical at any width.
	Jobs int
	// Eng is the execution engine (bounded worker pool + content-addressed
	// build cache) the experiments fan their simulation cells through. Nil
	// makes each experiment construct its own from Jobs/Obs; the cmd
	// harnesses share one engine across experiments so identical
	// (module, config, seed) builds memoize across tables and figures.
	Eng *exec.Engine
	// Ctx cancels the whole sweep (the cmd harnesses wire Ctrl-C/SIGTERM
	// here); nil means context.Background(). Per-cell deadlines are the
	// engine's CellTimeout, not this.
	Ctx context.Context
}

// ctx returns the sweep context, never nil.
func (o Options) ctx() context.Context {
	if o.Ctx == nil {
		return context.Background()
	}
	return o.Ctx
}

// withEngine returns opt with Eng populated, constructing a default engine
// from Jobs/Obs when the caller did not supply a shared one.
func (o Options) withEngine() Options {
	if o.Eng == nil {
		o.Eng = exec.New(o.Jobs, o.Obs)
	}
	return o
}

func (o Options) scale() int {
	if o.Scale < 1 {
		return 1
	}
	return o.Scale
}

func (o Options) runs() int {
	if o.Runs < 1 {
		return 3
	}
	return o.Runs
}

func (o Options) printf(format string, args ...any) {
	if o.Out != nil {
		fmt.Fprintf(o.Out, format, args...)
	}
}

// cellsFor plans one run group: `runs` cells over m/cfg/prof with the
// historical seed schedule seedBase + i*1000003.
func cellsFor(m *tir.Module, cfg defense.Config, prof *vm.Profile, runs int, seedBase uint64) []exec.Cell {
	cells := make([]exec.Cell, runs)
	for i := range cells {
		cells[i] = exec.Cell{Module: m, Cfg: cfg, Seed: seedBase + uint64(i)*1000003, Prof: prof}
	}
	return cells
}

// medianCycles reduces one run group's results to the median modeled cycle
// count over the runs that survived — failed cells leave nil slots under
// partial-failure tolerance. ok is false when no run survived.
func medianCycles(results []*vm.Result) (float64, bool) {
	cycles := make([]float64, 0, len(results))
	for _, res := range results {
		if res != nil {
			cycles = append(cycles, res.Cycles)
		}
	}
	m, err := stats.MedianErr(cycles)
	return m, err == nil
}

// fmtRatio renders a ratio/percent cell with the given verb, or "n/a" for
// the NaN a skipped (failed or baseline-less) measurement leaves behind.
func fmtRatio(format string, v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf(format, v)
}

// Overheads holds per-benchmark overhead ratios for one configuration.
type Overheads struct {
	Config  string
	ByBench map[string]float64 // ratio, e.g. 1.06
}

// Geomean returns the geometric mean ratio across benchmarks. Benchmarks are
// folded in sorted name order: float accumulation is order-sensitive, and a
// map-range order here would make repeated runs differ in the last bits.
// Ratios a partially-failed sweep marked unusable (NaN or non-positive) are
// excluded; with none left the geomean itself is NaN ("n/a" in tables)
// instead of a panic.
func (o *Overheads) Geomean() float64 {
	names := make([]string, 0, len(o.ByBench))
	for n := range o.ByBench {
		names = append(names, n)
	}
	sort.Strings(names)
	xs := make([]float64, 0, len(names))
	for _, n := range names {
		if v := o.ByBench[n]; !math.IsNaN(v) && v > 0 {
			xs = append(xs, v)
		}
	}
	g, err := stats.GeoMeanErr(xs)
	if err != nil {
		return math.NaN()
	}
	return g
}

// Max returns the maximum ratio and the benchmark it occurs on. NaN
// (skipped) ratios are ignored; with no usable ratio at all it returns
// ("", NaN).
func (o *Overheads) Max() (string, float64) {
	bestN, bestV := "", math.NaN()
	names := make([]string, 0, len(o.ByBench))
	for n := range o.ByBench {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if v := o.ByBench[n]; !math.IsNaN(v) && (math.IsNaN(bestV) || v > bestV) {
			bestN, bestV = n, v
		}
	}
	return bestN, bestV
}

// MeasureOverheads computes per-benchmark overhead ratios of each config
// against the unprotected baseline on the given machine profile. All
// (benchmark × config × run) cells are planned up front and fanned through
// the execution engine; results merge in submission order, so the measured
// ratios are byte-identical at every pool width.
func MeasureOverheads(cfgs []defense.Config, prof *vm.Profile, opt Options) ([]Overheads, error) {
	opt = opt.withEngine()
	defer opt.Obs.Timer("bench.measure", "machine", prof.Name).Time()()
	specs := workload.SPEC()
	runs := opt.runs()

	// Plan the flat cell list: every benchmark's baseline group first, then
	// one group per (config, benchmark), preserving the historical seed
	// schedule (base 17 for baselines, 31 for configs, stride 1000003).
	type cellMeta struct {
		bench, cfg string
		baseline   bool
	}
	var cells []exec.Cell
	var metas []cellMeta
	addGroup := func(m *tir.Module, bench string, cfg defense.Config, seedBase uint64, baseline bool) {
		cells = append(cells, cellsFor(m, cfg, prof, runs, seedBase)...)
		for i := 0; i < runs; i++ {
			metas = append(metas, cellMeta{bench: bench, cfg: cfg.Name, baseline: baseline})
		}
	}
	modules := make(map[string]*tir.Module)
	for _, b := range specs {
		m := b.Build(opt.scale())
		modules[b.Name] = m
		addGroup(m, b.Name, defense.Off(), 17, true)
	}
	for _, cfg := range cfgs {
		for _, b := range specs {
			addGroup(modules[b.Name], b.Name, cfg, 31, false)
		}
	}

	results, err := opt.Eng.RunCells(opt.ctx(), cells)
	if err != nil {
		if cerr := opt.ctx().Err(); cerr != nil {
			return nil, cerr // the whole run was cancelled; no partial tables
		}
		be, ok := exec.AsBatchError(err)
		if !ok {
			i, cause := exec.SplitError(err)
			mt := metas[i]
			inner := fmt.Errorf("%s: %w", mt.cfg, cause)
			if mt.baseline {
				return nil, fmt.Errorf("%s baseline: %w", mt.bench, inner)
			}
			return nil, fmt.Errorf("%s %s: %w", mt.bench, mt.cfg, inner)
		}
		// Partial failure: report every dead cell, then compute whatever
		// the survivors support. The caller still sees the *BatchError so
		// harnesses can reflect the failure in their exit code.
		for _, f := range be.Failures {
			mt := metas[f.Index]
			if mt.baseline {
				opt.printf("warning: %s baseline run failed: %v\n", mt.bench, f.Err)
			} else {
				opt.printf("warning: %s %s run failed: %v\n", mt.bench, mt.cfg, f.Err)
			}
		}
	}

	// Reduce each run group to its median, skipping groups with no
	// survivors or an unusable (zero-cycle) baseline: their ratios become
	// NaN, which the table printers render as "n/a".
	base := make(map[string]float64)
	off := 0
	for _, b := range specs {
		med, ok := medianCycles(results[off : off+runs])
		if !ok {
			opt.printf("warning: %s: no surviving baseline runs; its ratios are n/a\n", b.Name)
			med = math.NaN()
		} else if med <= 0 {
			opt.printf("warning: %s: zero-cycle baseline; its ratios are n/a\n", b.Name)
			med = math.NaN()
		}
		base[b.Name] = med
		off += runs
	}
	var out []Overheads
	for _, cfg := range cfgs {
		ov := Overheads{Config: cfg.Name, ByBench: map[string]float64{}}
		for _, b := range specs {
			med, ok := medianCycles(results[off : off+runs])
			ratio := math.NaN()
			if ok && !math.IsNaN(base[b.Name]) {
				if r, rerr := stats.OverheadErr(med, base[b.Name]); rerr == nil {
					ratio = r
				}
			} else if !ok && err == nil {
				// Unreachable without a BatchError; keep the warning in
				// case a future path produces empty groups silently.
				opt.printf("warning: %s %s: no surviving runs\n", b.Name, cfg.Name)
			}
			ov.ByBench[b.Name] = ratio
			off += runs
		}
		out = append(out, ov)
	}
	return out, err
}

// Table1Row is one row of Table 1.
type Table1Row struct {
	Name         string
	Max, Geomean float64 // ratios, paper prints e.g. 1.21 / 1.06
}

// Table1 regenerates Table 1: the maximum and geometric-mean overhead of
// R2C's components (Push, AVX, BTDP, Prolog, Layout), measured on the EPYC
// Rome profile like the paper's component analysis (Section 6.2).
func Table1(opt Options) ([]Table1Row, error) {
	cfgs := defense.Components()
	ovs, err := MeasureOverheads(cfgs, vm.EPYCRome(), opt)
	if ovs == nil {
		return nil, err
	}
	label := map[string]string{
		"btra-push": "Push", "btra-avx": "AVX", "btdp": "BTDP",
		"prolog": "Prolog", "layout": "Layout",
	}
	var rows []Table1Row
	opt.printf("Table 1: component overheads (relative to baseline)\n")
	opt.printf("%-8s %6s %9s\n", "", "max", "geomean")
	for _, ov := range ovs {
		_, max := ov.Max()
		r := Table1Row{Name: label[ov.Config], Max: max, Geomean: ov.Geomean()}
		rows = append(rows, r)
		publishHeadline(opt.Obs, "bench.table1.geomean_pct", stats.Pct(r.Geomean), "component", r.Name)
		publishHeadline(opt.Obs, "bench.table1.max_pct", stats.Pct(r.Max), "component", r.Name)
		opt.printf("%-8s %6s %9s\n", r.Name, fmtRatio("%.2f", r.Max), fmtRatio("%.2f", r.Geomean))
	}
	return rows, err
}

// publishHeadline records one deterministic experiment headline (a geomean
// overhead, a scaled call count) as a gauge, the series the perf baselines
// harvest. NaN — a partially-failed sweep's "n/a" — is skipped rather than
// published: a baseline should either carry a real number or omit the
// metric so a later -compare reports it as missing.
func publishHeadline(obs *telemetry.Observer, name string, v float64, labels ...string) {
	if math.IsNaN(v) {
		return
	}
	obs.Gauge(name, labels...).Set(v)
}

// Table2Row is one row of Table 2.
type Table2Row struct {
	Benchmark string
	// Measured is the median executed-call count in the simulation;
	// Scaled is Measured / CallScale, the Table 2 magnitude.
	Measured uint64
	Scaled   uint64
	Paper    uint64
}

// Table2 regenerates Table 2: median executed call frequencies per
// benchmark (call instructions only; tail calls are jumps and excluded,
// Section 7.1). Each benchmark is run with several inputs — seeds vary the
// synthetic input data — and the median is reported. The workloads always
// run at their calibrated full size here (a baseline-only run is cheap and
// several benchmarks have a fixed-size hot loop that cannot scale down).
func Table2(opt Options) ([]Table2Row, error) {
	opt = opt.withEngine()
	specs := workload.SPEC()
	runs := opt.runs()
	var cells []exec.Cell
	for _, b := range specs {
		m := b.Build(1)
		for i := 0; i < runs; i++ {
			// Different seeds act as different inputs.
			cells = append(cells, exec.Cell{Module: m, Cfg: defense.Off(), Seed: 100 + uint64(i)*77, Prof: vm.EPYCRome()})
		}
	}
	results, err := opt.Eng.RunCells(opt.ctx(), cells)
	if err != nil {
		if cerr := opt.ctx().Err(); cerr != nil {
			return nil, cerr
		}
		be, ok := exec.AsBatchError(err)
		if !ok {
			i, cause := exec.SplitError(err)
			return nil, fmt.Errorf("%s: %w", specs[i/runs].Name, cause)
		}
		for _, f := range be.Failures {
			opt.printf("warning: %s run failed: %v\n", specs[f.Index/runs].Name, f.Err)
		}
	}
	var rows []Table2Row
	opt.printf("Table 2: median call frequencies (scaled to paper magnitude)\n")
	opt.printf("%-10s %15s %18s %18s\n", "benchmark", "measured", "scaled", "paper")
	for bi, b := range specs {
		counts := make([]uint64, 0, runs)
		for i := 0; i < runs; i++ {
			if res := results[bi*runs+i]; res != nil {
				counts = append(counts, res.Calls)
			}
		}
		if len(counts) == 0 {
			opt.printf("%-10s %15s %18s %18d\n", b.Name, "n/a", "n/a", b.PaperCalls)
			continue
		}
		med := stats.MedianU64(counts)
		row := Table2Row{
			Benchmark: b.Name,
			Measured:  med,
			Scaled:    uint64(float64(med) / workload.CallScale),
			Paper:     b.PaperCalls,
		}
		rows = append(rows, row)
		publishHeadline(opt.Obs, "bench.table2.calls", float64(row.Measured), "benchmark", row.Benchmark)
		opt.printf("%-10s %15d %18d %18d\n", row.Benchmark, row.Measured, row.Scaled, row.Paper)
	}
	return rows, err
}

// Figure6Series is the full-R2C overhead series for one machine.
type Figure6Series struct {
	Machine string
	ByBench map[string]float64 // percent overhead
	Geomean float64            // percent
}

// Figure6 regenerates Figure 6: full R2C (all protections, BTRAs also on
// calls to unprotected code) on the four machine profiles. The paper's
// geomean band is 6.6–8.5%.
func Figure6(opt Options) ([]Figure6Series, error) {
	// One engine for all four machines: the modeled machines share builds
	// (compile+link is machine-independent), so after the first profile every
	// build is a cache hit.
	opt = opt.withEngine()
	var out []Figure6Series
	var firstErr error
	for _, prof := range vm.AllMachines() {
		ovs, err := MeasureOverheads([]defense.Config{defense.R2CFull()}, prof, opt)
		if ovs == nil {
			return nil, fmt.Errorf("%s: %w", prof.Name, err)
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("%s: %w", prof.Name, err)
		}
		s := Figure6Series{Machine: prof.Name, ByBench: map[string]float64{}}
		names := make([]string, 0, len(ovs[0].ByBench))
		for n := range ovs[0].ByBench {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			s.ByBench[n] = stats.Pct(ovs[0].ByBench[n])
		}
		s.Geomean = stats.Pct(ovs[0].Geomean())
		publishHeadline(opt.Obs, "bench.figure6.geomean_pct", s.Geomean, "machine", s.Machine)
		for n, pct := range s.ByBench {
			publishHeadline(opt.Obs, "bench.figure6.overhead_pct", pct, "machine", s.Machine, "benchmark", n)
		}
		out = append(out, s)
	}
	opt.printf("Figure 6: full R2C performance impact (%%)\n%-10s", "benchmark")
	for _, s := range out {
		opt.printf(" %12s", s.Machine)
	}
	opt.printf("\n")
	for _, b := range workload.SPEC() {
		opt.printf("%-10s", b.Name)
		for _, s := range out {
			opt.printf(" %12s", fmtRatio("%.1f", s.ByBench[b.Name]))
		}
		opt.printf("\n")
	}
	opt.printf("%-10s", "geomean")
	for _, s := range out {
		opt.printf(" %12s", fmtRatio("%.1f", s.Geomean))
	}
	opt.printf("\n")
	return out, firstErr
}

// OIAResult is the offset-invariant addressing measurement.
type OIAResult struct {
	GeomeanPct, MaxPct float64
	MaxBench           string
}

// OIA regenerates the offset-invariant addressing measurement of Section
// 6.2.1 (paper: 0.79% geomean, 3.61% max): OIA enabled, everything else
// off, so the cost is rbp bookkeeping at stack-argument call sites plus the
// lost frame-pointer omission.
func OIA(opt Options) (*OIAResult, error) {
	ovs, err := MeasureOverheads([]defense.Config{defense.OIAOnly()}, vm.EPYCRome(), opt)
	if err != nil {
		return nil, err
	}
	name, max := ovs[0].Max()
	r := &OIAResult{
		GeomeanPct: stats.Pct(ovs[0].Geomean()),
		MaxPct:     stats.Pct(max),
		MaxBench:   name,
	}
	publishHeadline(opt.Obs, "bench.oia.geomean_pct", r.GeomeanPct)
	publishHeadline(opt.Obs, "bench.oia.max_pct", r.MaxPct)
	opt.printf("Offset-invariant addressing alone: geomean %.2f%%, max %.2f%% (%s)\n",
		r.GeomeanPct, r.MaxPct, r.MaxBench)
	return r, nil
}

// AVX512Result compares the AVX2 and AVX-512 BTRA setups (Section 7.1).
type AVX512Result struct {
	AVX2GeomeanPct      float64
	AVX512GeomeanPct    float64 // same 10 BTRAs, wider moves
	AVX512x20GeomeanPct float64 // twice the BTRAs in the same move count
}

// AVX512 regenerates the Section 7.1 claim: with the same number of vector
// moves, AVX-512 performance is roughly identical to AVX2, and one can use
// twice as many BTRAs for a similar cost.
func AVX512(opt Options) (*AVX512Result, error) {
	avx2 := defense.BTRAAVXOnly()
	avx512 := defense.BTRAAVX512()
	avx512x2 := defense.BTRAAVX512()
	avx512x2.Name = "btra-avx512x20"
	avx512x2.BTRAsPerCall = 20
	ovs, err := MeasureOverheads([]defense.Config{avx2, avx512, avx512x2}, vm.Xeon8358(), opt)
	if err != nil {
		return nil, err
	}
	r := &AVX512Result{
		AVX2GeomeanPct:      stats.Pct(ovs[0].Geomean()),
		AVX512GeomeanPct:    stats.Pct(ovs[1].Geomean()),
		AVX512x20GeomeanPct: stats.Pct(ovs[2].Geomean()),
	}
	publishHeadline(opt.Obs, "bench.avx512.geomean_pct", r.AVX2GeomeanPct, "setup", "avx2-10")
	publishHeadline(opt.Obs, "bench.avx512.geomean_pct", r.AVX512GeomeanPct, "setup", "avx512-10")
	publishHeadline(opt.Obs, "bench.avx512.geomean_pct", r.AVX512x20GeomeanPct, "setup", "avx512-20")
	opt.printf("AVX2 10 BTRAs: %.2f%%  AVX-512 10 BTRAs: %.2f%%  AVX-512 20 BTRAs: %.2f%%\n",
		r.AVX2GeomeanPct, r.AVX512GeomeanPct, r.AVX512x20GeomeanPct)
	return r, nil
}
