package incident

import (
	"fmt"
	"io"
	"math"
	"sort"

	"r2c/internal/telemetry"
)

// Correlation: fold incident records into per-campaign summaries — the view
// a defender (or ROADMAP's serving fleet) acts on. Everything here is a
// pure function of the canonical record order, so summaries inherit the
// log's any-jobs-width determinism.

// GapScheme buckets inter-probe gaps measured in retired instructions:
// half-decade buckets from 1 to ~10^8. Reuses the LogHist machinery so gap
// distributions merge and quantile like every other histogram in the repo.
var GapScheme = telemetry.LogScheme{Min: 1, Growth: 3.1622776601683795, Buckets: 16}

// KindCount is one (kind, count) pair in a deterministic slice (maps would
// marshal fine — JSON sorts keys — but slices keep the fold explicit).
type KindCount struct {
	Kind  string `json:"kind"`
	Count int    `json:"count"`
}

// GapSummary describes the inter-probe gap distribution of a campaign.
// All-zero when fewer than two probe points exist (never NaN: the JSON
// encoder rejects it).
type GapSummary struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Mean  float64 `json:"mean"`
}

// CampaignSummary aggregates one campaign's incidents: who got hit, how
// fast the probes came, and what the probe pattern looks like.
type CampaignSummary struct {
	Campaign  string      `json:"campaign"`
	Config    string      `json:"config,omitempty"`
	Incidents int         `json:"incidents"`
	Trials    int         `json:"trials"`
	ByKind    []KindCount `json:"by_kind,omitempty"`
	// ByOrigin counts incidents per defense origin (the provenance string)
	// — which planted artifact is actually catching this campaign.
	ByOrigin []KindCount `json:"by_origin,omitempty"`
	// ProbeEvents counts probe-like flight events (near-guard loads and
	// attacker oracle probes) across all snapshots; ProbeRate is probes per
	// incident — how much reconnaissance each detonation cost the attacker.
	ProbeEvents int     `json:"probe_events"`
	ProbeRate   float64 `json:"probe_rate"`
	// Gaps summarizes deltas between consecutive probe addresses' record
	// points (in retired instructions where available, else record order).
	Gaps GapSummary `json:"gaps"`
	// Pattern classifies the probe-address pattern: "linear-scan",
	// "clustered", "crash-restart", "sparse" or "mixed" (the campaign
	// shapes in the paper's detection-probability model).
	Pattern string `json:"pattern"`
}

// probePoints extracts the campaign's probe observations in canonical
// order: each near-guard load / oracle probe on any flight snapshot, plus
// each incident's own faulting address.
type probePoint struct {
	addr  uint64
	instr uint64
}

func campaignProbes(recs []Record) []probePoint {
	var pts []probePoint
	for _, r := range recs {
		for _, f := range r.Flight {
			if f.Kind == "load" || f.Kind == "probe" {
				pts = append(pts, probePoint{addr: f.To, instr: f.Instr})
			}
		}
		if r.Addr != 0 {
			pts = append(pts, probePoint{addr: r.Addr, instr: r.Instr})
		}
	}
	return pts
}

// Correlate folds canonical-order records into per-campaign summaries,
// sorted by campaign name.
func Correlate(recs []Record) []CampaignSummary {
	byCampaign := map[string][]Record{}
	var names []string
	for _, r := range recs {
		if _, ok := byCampaign[r.Campaign]; !ok {
			names = append(names, r.Campaign)
		}
		byCampaign[r.Campaign] = append(byCampaign[r.Campaign], r)
	}
	sort.Strings(names)
	out := make([]CampaignSummary, 0, len(names))
	for _, name := range names {
		out = append(out, summarize(name, byCampaign[name]))
	}
	return out
}

func foldCounts(m map[string]int) []KindCount {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]KindCount, 0, len(keys))
	for _, k := range keys {
		out = append(out, KindCount{Kind: k, Count: m[k]})
	}
	return out
}

func summarize(name string, recs []Record) CampaignSummary {
	s := CampaignSummary{Campaign: name, Incidents: len(recs)}
	kinds, origins := map[string]int{}, map[string]int{}
	trials := map[int]bool{}
	for _, r := range recs {
		if s.Config == "" {
			s.Config = r.Config
		}
		kinds[r.Kind]++
		if r.Origin != "" {
			origins[r.Origin]++
		}
		trials[r.Trial] = true
	}
	s.Trials = len(trials)
	s.ByKind = foldCounts(kinds)
	s.ByOrigin = foldCounts(origins)

	pts := campaignProbes(recs)
	for _, r := range recs {
		for _, f := range r.Flight {
			if f.Kind == "load" || f.Kind == "probe" {
				s.ProbeEvents++
			}
		}
	}
	if len(recs) > 0 {
		s.ProbeRate = float64(s.ProbeEvents) / float64(len(recs))
	}
	s.Gaps = gapSummary(pts)
	s.Pattern = classify(recs, pts)
	return s
}

// gapSummary buckets instruction-count deltas between consecutive probe
// points into GapScheme and reads off the quantiles. Points without
// instruction counts (Instr 0) contribute no gap.
func gapSummary(pts []probePoint) GapSummary {
	h := telemetry.NewLogHist(GapScheme)
	n := 0
	for i := 1; i < len(pts); i++ {
		if pts[i].instr == 0 || pts[i-1].instr == 0 {
			continue
		}
		d := int64(pts[i].instr) - int64(pts[i-1].instr)
		if d < 0 {
			d = -d
		}
		h.Observe(float64(d))
		n++
	}
	if n == 0 {
		return GapSummary{}
	}
	snap := h.Snapshot()
	g := GapSummary{
		Count: n,
		P50:   snap.Quantile(0.50),
		P90:   snap.Quantile(0.90),
		P99:   snap.Quantile(0.99),
		Mean:  snap.Sum / float64(snap.Count),
	}
	// Quantiles over a populated histogram are finite, but guard anyway:
	// NaN poisons json.Marshal for the whole timeline.
	for _, v := range []*float64{&g.P50, &g.P90, &g.P99, &g.Mean} {
		if math.IsNaN(*v) || math.IsInf(*v, 0) {
			*v = 0
		}
	}
	return g
}

// classify labels the campaign's probe-address pattern:
//
//   - "sparse": fewer than 4 probe points — not enough signal.
//   - "crash-restart": many incidents, few probes per incident — the
//     restart-and-probe-again brute force (each probe costs a crash).
//   - "linear-scan": a dominant constant address stride — a sweep.
//   - "clustered": most probes land within one 4KiB page of each other —
//     a focused dig around a leak.
//   - "mixed": none of the above dominates.
func classify(recs []Record, pts []probePoint) string {
	if len(pts) < 4 {
		return "sparse"
	}
	if len(recs) >= 4 && float64(len(pts))/float64(len(recs)) <= 2 {
		return "crash-restart"
	}

	// Stride analysis over probe addresses in observation order.
	strides := map[int64]int{}
	for i := 1; i < len(pts); i++ {
		strides[int64(pts[i].addr)-int64(pts[i-1].addr)]++
	}
	total := len(pts) - 1
	var modal int64
	modalN := 0
	for d, n := range strides {
		if n > modalN || (n == modalN && d < modal) {
			modal, modalN = d, n
		}
	}
	if modal != 0 && float64(modalN)/float64(total) >= 0.6 {
		return "linear-scan"
	}

	// Cluster analysis: the largest set of probes within one 4KiB window.
	addrs := make([]uint64, len(pts))
	for i, p := range pts {
		addrs[i] = p.addr
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	best, lo := 0, 0
	for hi := range addrs {
		for addrs[hi]-addrs[lo] > 4096 {
			lo++
		}
		if n := hi - lo + 1; n > best {
			best = n
		}
	}
	if float64(best)/float64(len(addrs)) >= 0.6 {
		return "clustered"
	}
	return "mixed"
}

// WriteSummary renders the campaign summaries as an aligned text table —
// what r2cattack -forensics appends below the provenance table.
func WriteSummary(w io.Writer, sums []CampaignSummary) {
	if len(sums) == 0 {
		return
	}
	fmt.Fprintf(w, "\nincident correlation (per campaign):\n")
	fmt.Fprintf(w, "%-28s %9s %6s %7s %10s %9s  %s\n",
		"campaign", "incidents", "trials", "probes", "probe/inc", "gap-p50", "pattern")
	for _, s := range sums {
		fmt.Fprintf(w, "%-28s %9d %6d %7d %10.1f %9.0f  %s\n",
			s.Campaign, s.Incidents, s.Trials, s.ProbeEvents, s.ProbeRate, s.Gaps.P50, s.Pattern)
	}
}
