package incident

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"r2c/internal/rt"
)

func trapRec(campaign string, seed uint64, trial int, pc, addr uint64) Record {
	r := Record{
		Campaign: campaign, Config: "r2c-full", Seed: seed, Trial: trial,
		Kind: "trap", Via: "resume", PC: pc, Addr: addr, Instr: 1000,
		Trap: "btra", Origin: "btra slot 3",
	}
	r.Seal()
	return r
}

func TestSealContentDerived(t *testing.T) {
	a := trapRec("c", 1, 0, 0x100, 0x200)
	b := trapRec("c", 1, 0, 0x100, 0x200)
	if a.ID == "" || a.ID != b.ID {
		t.Fatalf("identical content must hash identically: %q vs %q", a.ID, b.ID)
	}
	c := trapRec("c", 1, 0, 0x100, 0x201)
	if c.ID == a.ID {
		t.Fatalf("different content must not collide: %q", c.ID)
	}
	// Flight frames are part of the content.
	d := trapRec("c", 1, 0, 0x100, 0x200)
	d.Flight = []FlightFrame{{Kind: "call", PC: 1, To: 2, Instr: 3}}
	d.Seal()
	if d.ID == a.ID {
		t.Fatalf("flight snapshot must contribute to the ID")
	}
}

func TestFromTrapFromFaultNilProcess(t *testing.T) {
	r := FromTrap("camp", "cfg", 7, 2, "probe", nil, rt.TrapEvent{Kind: rt.TrapBTRA, PC: 0x123}, 0)
	if r.Kind != "trap" || r.Trap == "" || r.ID == "" {
		t.Fatalf("FromTrap(nil proc) = %+v", r)
	}
	f := FromFault("camp", "cfg", 7, 2, "exec", nil, 0xdead, 42)
	if f.Kind != "fault" || f.Addr != 0xdead || f.Instr != 42 || f.ID == "" {
		t.Fatalf("FromFault(nil proc) = %+v", f)
	}
}

func TestLogNilSafe(t *testing.T) {
	var l *Log
	l.Add(Record{})
	if l.Len() != 0 || l.Records() != nil {
		t.Fatalf("nil log must be inert")
	}
	tl := l.Timeline()
	if tl.Total != 0 {
		t.Fatalf("nil log timeline total = %d", tl.Total)
	}
}

func TestRecordsCanonicalOrder(t *testing.T) {
	// Insertion order is adversarial: later campaigns, seeds and trials
	// first. Records must come back content-sorted regardless.
	l := NewLog()
	l.Add(trapRec("b", 2, 1, 0x30, 0))
	l.Add(trapRec("b", 1, 1, 0x20, 0))
	l.Add(trapRec("a", 9, 0, 0x10, 0))
	l.Add(trapRec("b", 1, 0, 0x40, 0))
	recs := l.Records()
	got := make([]string, len(recs))
	for i, r := range recs {
		got[i] = r.Campaign
	}
	want := []string{"a", "b", "b", "b"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("campaign order = %v, want %v", got, want)
		}
	}
	if recs[1].Seed != 1 || recs[1].Trial != 0 || recs[2].Trial != 1 || recs[3].Seed != 2 {
		t.Fatalf("within-campaign order wrong: %+v", recs[1:])
	}
}

func TestWriteJSONOrderIndependent(t *testing.T) {
	// The acceptance property behind -jobs determinism: two logs fed the
	// same records in different arrival orders serialize byte-identically.
	recs := []Record{
		trapRec("t3/rop", 1, 0, 0x100, 0x1000),
		trapRec("t3/rop", 1, 1, 0x110, 0x2000),
		trapRec("t3/aocr", 2, 0, 0x120, 0x3000),
	}
	a, b := NewLog(), NewLog()
	for _, r := range recs {
		a.Add(r)
	}
	for i := len(recs) - 1; i >= 0; i-- {
		b.Add(recs[i])
	}
	var ba, bb bytes.Buffer
	if err := a.WriteJSON(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatalf("timeline JSON depends on arrival order:\n%s\nvs\n%s", ba.String(), bb.String())
	}
	var tl Timeline
	if err := json.Unmarshal(ba.Bytes(), &tl); err != nil {
		t.Fatalf("timeline JSON does not round-trip: %v", err)
	}
	if tl.Total != 3 || len(tl.Campaigns) != 2 {
		t.Fatalf("timeline = total %d, %d campaigns", tl.Total, len(tl.Campaigns))
	}
}

// probeRecord builds one record whose flight snapshot probes the given
// addresses at 1000-instruction intervals.
func probeRecord(campaign string, trial int, addrs ...uint64) Record {
	r := Record{Campaign: campaign, Config: "r2c-full", Seed: uint64(trial), Trial: trial, Kind: "trap", Trap: "btdp"}
	for i, a := range addrs {
		r.Flight = append(r.Flight, FlightFrame{Kind: "probe", To: a, Instr: uint64(1000 * (i + 1))})
	}
	r.Seal()
	return r
}

func TestClassifyPatterns(t *testing.T) {
	cases := []struct {
		name string
		recs []Record
		want string
	}{
		{"sparse", []Record{probeRecord("c", 0, 0x1000, 0x2000)}, "sparse"},
		{"linear-scan", []Record{probeRecord("c", 0, 0x1000, 0x2000, 0x3000, 0x4000, 0x5000, 0x6000)}, "linear-scan"},
		{"clustered", []Record{probeRecord("c", 0, 0x5000, 0x5040, 0x50c0, 0x5100, 0x5110, 0x9000)}, "clustered"},
		{"mixed", []Record{probeRecord("c", 0, 0x1000, 0x3000, 0x2000, 0x9000, 0x20000, 0x100)}, "mixed"},
	}
	// Crash-restart: many incidents, one probe point (the faulting address)
	// each — every observation costs the attacker a crash.
	var crash []Record
	for i := 0; i < 8; i++ {
		r := Record{Campaign: "c", Seed: uint64(i), Trial: i, Kind: "fault", Addr: 0x7000 + uint64(i)*8}
		r.Seal()
		crash = append(crash, r)
	}
	cases = append(cases, struct {
		name string
		recs []Record
		want string
	}{"crash-restart", crash, "crash-restart"})

	for _, tc := range cases {
		sums := Correlate(tc.recs)
		if len(sums) != 1 {
			t.Fatalf("%s: %d campaigns", tc.name, len(sums))
		}
		if sums[0].Pattern != tc.want {
			t.Errorf("%s: pattern = %q, want %q", tc.name, sums[0].Pattern, tc.want)
		}
	}
}

func TestCorrelateSummaries(t *testing.T) {
	l := NewLog()
	l.Add(probeRecord("beta", 0, 0x1000, 0x2000, 0x3000, 0x4000))
	l.Add(probeRecord("beta", 1, 0x1000, 0x2000, 0x3000, 0x4000))
	r := trapRec("alpha", 1, 0, 0x100, 0x200)
	l.Add(r)
	f := FromFault("alpha", "r2c-full", 2, 1, "exec", nil, 0x300, 7)
	l.Add(f)

	sums := Correlate(l.Records())
	if len(sums) != 2 || sums[0].Campaign != "alpha" || sums[1].Campaign != "beta" {
		t.Fatalf("campaigns = %+v", sums)
	}
	a := sums[0]
	if a.Incidents != 2 || a.Trials != 2 {
		t.Fatalf("alpha = %+v", a)
	}
	wantKinds := map[string]int{"trap": 1, "fault": 1}
	for _, kc := range a.ByKind {
		if wantKinds[kc.Kind] != kc.Count {
			t.Fatalf("alpha kinds = %+v", a.ByKind)
		}
		delete(wantKinds, kc.Kind)
	}
	if len(wantKinds) != 0 {
		t.Fatalf("missing kinds: %v", wantKinds)
	}
	if len(a.ByOrigin) != 1 || a.ByOrigin[0].Kind != "btra slot 3" {
		t.Fatalf("alpha origins = %+v", a.ByOrigin)
	}

	b := sums[1]
	if b.ProbeEvents != 8 || b.ProbeRate != 4 {
		t.Fatalf("beta probes = %d rate %v", b.ProbeEvents, b.ProbeRate)
	}
	// Within each record the probes are 1000 instructions apart; the
	// cross-record gap (4000 -> 1000) folds in as |delta| = 3000.
	if b.Gaps.Count != 7 || b.Gaps.P50 <= 0 || b.Gaps.Mean <= 0 {
		t.Fatalf("beta gaps = %+v", b.Gaps)
	}
}

func TestWriteSummaryRenders(t *testing.T) {
	sums := Correlate([]Record{probeRecord("t3/r2c/rop", 0, 0x1000, 0x2000, 0x3000, 0x4000)})
	var buf bytes.Buffer
	WriteSummary(&buf, sums)
	out := buf.String()
	for _, want := range []string{"incident correlation", "t3/r2c/rop", "linear-scan"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
	var empty bytes.Buffer
	WriteSummary(&empty, nil)
	if empty.Len() != 0 {
		t.Fatalf("empty summary must render nothing, got %q", empty.String())
	}
}
