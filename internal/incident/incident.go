// Package incident is the correlation layer of the security observatory:
// it folds individual trap/fault/divergence events — each carrying a
// snapshot of the process's control-flow flight recorder and the PR 3
// defense provenance — into deterministic incident records, and aggregates
// records across trials and variants into campaign timelines (probe rates,
// inter-probe gap distributions, per-origin hit counts, probe-pattern
// classification per the paper's detection-probability model).
//
// Determinism discipline: records carry only content-derived fields (no
// wall-clock timestamps, no arrival order), IDs are content hashes, and
// every accessor returns records in a content-derived sort order — so the
// incident log and the /incidents JSON are byte-identical at any -jobs
// width, the same contract spans and audit reports honor.
package incident

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"

	"r2c/internal/rt"
)

// FlightFrame is one flight-recorder event in serialized form.
type FlightFrame struct {
	Kind  string `json:"kind"`
	PC    uint64 `json:"pc"`
	To    uint64 `json:"to"`
	Instr uint64 `json:"instr"`
}

// Record is one security incident: a trap detonation, a stopping fault, or
// an MVEE divergence, with enough context to reconstruct the moments before
// it (the flight snapshot) and attribute it to a planted defense artifact
// (the provenance fields).
type Record struct {
	// ID is the content hash of the record (Seal); records with identical
	// content get identical IDs regardless of when or where they fold in.
	ID string `json:"id"`
	// Campaign names the experiment context, e.g. "attack/r2c" or
	// "exec/spec-gcc"; Config the defense configuration; Seed/Trial the
	// victim instance within the campaign.
	Campaign string `json:"campaign"`
	Config   string `json:"config,omitempty"`
	Seed     uint64 `json:"seed"`
	Trial    int    `json:"trial"`
	// Kind is "trap", "fault" or "divergence"; Via names the harness path
	// that observed it ("exec", "probe", "resume", "mvee", ...).
	Kind string `json:"kind"`
	Via  string `json:"via,omitempty"`
	// PC/Addr locate the event; Instr is the victim's retired-instruction
	// count when the run stopped (0 when unknown).
	PC    uint64 `json:"pc,omitempty"`
	Addr  uint64 `json:"addr,omitempty"`
	Instr uint64 `json:"instr,omitempty"`
	// Trap provenance (trap records only): the trap class, containing
	// function, and the defense origin that planted the consumed artifact.
	Trap   string `json:"trap,omitempty"`
	Func   string `json:"func,omitempty"`
	Origin string `json:"origin,omitempty"`
	Source string `json:"source,omitempty"`
	// Trap-ring accounting at snapshot time.
	TrapsTotal   uint64 `json:"traps_total,omitempty"`
	TrapsDropped uint64 `json:"traps_dropped,omitempty"`
	// Flight is the control-flow flight-recorder snapshot, oldest first.
	Flight []FlightFrame `json:"flight,omitempty"`
}

// Seal computes the content-derived ID. Call after all other fields are
// set; folding code relies on identical content hashing identically.
func (r *Record) Seal() {
	h := fnv.New64a()
	w := func(s string) { h.Write([]byte(s)); h.Write([]byte{0}) }
	w(r.Campaign)
	w(r.Config)
	fmt.Fprintf(h, "%d/%d\x00", r.Seed, r.Trial)
	w(r.Kind)
	w(r.Via)
	fmt.Fprintf(h, "%x/%x/%d\x00", r.PC, r.Addr, r.Instr)
	w(r.Trap)
	w(r.Func)
	w(r.Origin)
	w(r.Source)
	fmt.Fprintf(h, "%d/%d\x00", r.TrapsTotal, r.TrapsDropped)
	for _, f := range r.Flight {
		fmt.Fprintf(h, "%s/%x/%x/%d\x00", f.Kind, f.PC, f.To, f.Instr)
	}
	r.ID = fmt.Sprintf("%016x", h.Sum64())
}

// snapshotFlight serializes the process's flight recorder, oldest first.
func snapshotFlight(p *rt.Process) []FlightFrame {
	if p == nil {
		return nil
	}
	evs := p.Flight.Events()
	if len(evs) == 0 {
		return nil
	}
	out := make([]FlightFrame, len(evs))
	for i, ev := range evs {
		out[i] = FlightFrame{Kind: ev.Kind.String(), PC: ev.PC, To: ev.To, Instr: ev.Instr}
	}
	return out
}

// FromTrap builds a sealed incident record for a booby-trap detonation,
// resolving the PR 3 defense provenance and snapshotting the flight
// recorder. instr is the victim's retired-instruction count at the stop.
func FromTrap(campaign, config string, seed uint64, trial int, via string, p *rt.Process, ev rt.TrapEvent, instr uint64) Record {
	r := Record{
		Campaign: campaign, Config: config, Seed: seed, Trial: trial,
		Kind: "trap", Via: via,
		PC: ev.PC, Addr: ev.Addr, Instr: instr,
		Trap: ev.Kind.String(),
	}
	if p != nil {
		pv := p.TrapProvenance(ev)
		r.Func = pv.Func
		r.Origin = pv.String()
		r.Source = pv.Source
		r.TrapsTotal = p.TrapCount()
		r.TrapsDropped = p.DroppedTraps()
		r.Flight = snapshotFlight(p)
	}
	r.Seal()
	return r
}

// FromFault builds a sealed incident record for a stopping memory fault
// that was not classified as a trap (a plain crash — the signal the
// crash-restart brute-force literature keys on).
func FromFault(campaign, config string, seed uint64, trial int, via string, p *rt.Process, faultAddr uint64, instr uint64) Record {
	r := Record{
		Campaign: campaign, Config: config, Seed: seed, Trial: trial,
		Kind: "fault", Via: via,
		Addr: faultAddr, Instr: instr,
	}
	if p != nil {
		r.PC = p.LastFaultPC()
		r.TrapsTotal = p.TrapCount()
		r.TrapsDropped = p.DroppedTraps()
		r.Flight = snapshotFlight(p)
	}
	r.Seal()
	return r
}

// FromDivergence builds a sealed incident record for an MVEE divergence —
// the supervisor-only signal the paper's Section 7.3 argues complements
// R2C's reactive traps. reason is the supervisor's verdict text (which
// variant diverged, and how: output mismatch, simulator error, or a liveness
// hang); there is no single faulting process behind a divergence, so no
// provenance or flight snapshot attaches.
func FromDivergence(campaign, config string, seed uint64, trial int, via, reason string, instr uint64) Record {
	r := Record{
		Campaign: campaign, Config: config, Seed: seed, Trial: trial,
		Kind: "divergence", Via: via,
		Origin: reason, Instr: instr,
	}
	r.Seal()
	return r
}

// Log collects incident records from concurrent producers (exec workers,
// attack scenarios, the MVEE). It is unbounded by design: a bounded log
// under concurrent adds would drop records nondeterministically, and every
// accessor must be byte-identical at any -jobs width. All methods are
// nil-safe so unwired paths pay nothing.
type Log struct {
	mu   sync.Mutex
	recs []Record
}

// NewLog returns an empty incident log.
func NewLog() *Log { return &Log{} }

// Add appends one record. Nil-safe.
func (l *Log) Add(r Record) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.recs = append(l.recs, r)
	l.mu.Unlock()
}

// Len returns the number of collected records. Nil-safe.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.recs)
}

// Records returns the collected records in the canonical content-derived
// order (campaign, config, seed, trial, instr, kind, pc, id) — arrival
// order never leaks out, so concurrent production cannot perturb output.
// Nil-safe.
func (l *Log) Records() []Record {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := append([]Record(nil), l.recs...)
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.Campaign != b.Campaign {
			return a.Campaign < b.Campaign
		}
		if a.Config != b.Config {
			return a.Config < b.Config
		}
		if a.Seed != b.Seed {
			return a.Seed < b.Seed
		}
		if a.Trial != b.Trial {
			return a.Trial < b.Trial
		}
		if a.Instr != b.Instr {
			return a.Instr < b.Instr
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.PC != b.PC {
			return a.PC < b.PC
		}
		return a.ID < b.ID
	})
	return out
}

// Timeline is the /incidents payload: the canonical record list plus the
// per-campaign correlation summaries.
type Timeline struct {
	Total     int               `json:"total"`
	Campaigns []CampaignSummary `json:"campaigns,omitempty"`
	Incidents []Record          `json:"incidents,omitempty"`
}

// Timeline assembles the full observatory view. Nil-safe.
func (l *Log) Timeline() Timeline {
	recs := l.Records()
	return Timeline{Total: len(recs), Campaigns: Correlate(recs), Incidents: recs}
}

// WriteJSON writes the timeline as indented JSON — the -incidents-out
// artifact and the /incidents response body.
func (l *Log) WriteJSON(w io.Writer) error {
	body, err := json.MarshalIndent(l.Timeline(), "", "  ")
	if err != nil {
		return fmt.Errorf("incident: marshal timeline: %w", err)
	}
	_, err = w.Write(append(body, '\n'))
	return err
}
