// Package isa defines the simulated machine's instruction set — the target
// the code generator lowers TIR to and the language the VM executes.
//
// The machine is an idealized x86_64: sixteen 64-bit general purpose
// registers (RSP is the stack pointer, RBP the frame pointer), 256-bit
// vector registers for the AVX2 BTRA setup sequence (Section 5.1.2), x86
// push/call/ret stack semantics (CALL decrements RSP by 8 and stores the
// return address before transferring control — the property the BTRA setup
// exploits in step 3 of Figure 3), and byte-addressed instructions with
// realistic encoded sizes so that code layout, NOP/trap insertion, and the
// instruction-cache model are all meaningful.
//
// Instructions are kept as structured values rather than encoded bytes; the
// program image assigns each instruction an address and a size, and maps the
// covering text pages execute-only. Reading text therefore faults exactly as
// it would on a machine with execute-only memory, while fetching decodes via
// the image's instruction table.
package isa

import "fmt"

// Reg names a general-purpose register.
type Reg int8

// General-purpose registers (x86_64 names).
const (
	RAX Reg = iota
	RBX
	RCX
	RDX
	RSI
	RDI
	RBP
	RSP
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	// NumRegs is the size of the GPR file.
	NumRegs

	// NoGPR marks an absent register operand.
	NoGPR Reg = -1
)

var regNames = [...]string{
	"rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "rsp",
	"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
}

func (r Reg) String() string {
	if r >= 0 && int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("r?%d", int8(r))
}

// VReg names a 256-bit vector register (ymm0..ymm15).
type VReg int8

func (v VReg) String() string { return fmt.Sprintf("ymm%d", int8(v)) }

// ArgRegs are the integer argument registers in order, per the System V
// AMD64 ABI. Arguments beyond the sixth go on the stack above the return
// address — the case offset-invariant addressing exists for (Section 5.1.1).
var ArgRegs = []Reg{RDI, RSI, RDX, RCX, R8, R9}

// RetReg is the integer return value register.
const RetReg = RAX

// CalleeSaved are the registers a callee must preserve. The register
// allocator (and its randomization) draws from both this set and the
// caller-saved scratch set.
var CalleeSaved = []Reg{RBX, R12, R13, R14, R15}

// Scratch are caller-saved registers available as allocation targets in
// addition to argument registers.
var Scratch = []Reg{R10, R11}

// AluOp is an arithmetic/logic suboperation.
type AluOp int8

// ALU suboperations.
const (
	AluAdd AluOp = iota
	AluSub
	AluMul
	AluDiv // unsigned; divide by zero raises a machine trap
	AluRem
	AluAnd
	AluOr
	AluXor
	AluShl
	AluShr
)

var aluNames = [...]string{"add", "sub", "mul", "div", "rem", "and", "or", "xor", "shl", "shr"}

func (a AluOp) String() string {
	if int(a) < len(aluNames) {
		return aluNames[a]
	}
	return fmt.Sprintf("alu?%d", int8(a))
}

// CmpOp is a comparison suboperation for Set instructions.
type CmpOp int8

// Comparison suboperations (unsigned).
const (
	CmpEq CmpOp = iota
	CmpNeq
	CmpLt
	CmpLeq
	CmpGt
	CmpGeq
)

var cmpNames = [...]string{"eq", "neq", "lt", "leq", "gt", "geq"}

func (c CmpOp) String() string {
	if int(c) < len(cmpNames) {
		return cmpNames[c]
	}
	return fmt.Sprintf("cmp?%d", int8(c))
}

// Kind is the instruction opcode.
type Kind int8

// Instruction kinds.
const (
	// KMovImm: Dst = Imm.
	KMovImm Kind = iota
	// KMovReg: Dst = Src.
	KMovReg
	// KLoad: Dst = mem64[Base + Disp].
	KLoad
	// KStore: mem64[Base + Disp] = Src.
	KStore
	// KLea: Dst = Base + Disp.
	KLea
	// KAlu: Dst = Dst <AluOp> Src.
	KAlu
	// KAluImm: Dst = Dst <AluOp> Imm.
	KAluImm
	// KSet: Dst = (A <CmpOp> B) ? 1 : 0.
	KSet
	// KPush: mem64[RSP-8] = Src; RSP -= 8.
	KPush
	// KPushImm: mem64[RSP-8] = Imm; RSP -= 8. The BTRA push setup uses this
	// (the immediate is resolved from the symbolic Target at link time; on
	// real hardware it is a push from the GOT or a pair of push imm32).
	KPushImm
	// KPop: Dst = mem64[RSP]; RSP += 8.
	KPop
	// KCall: push return address, jump to Target. Implicitly performs the
	// two operations of x86 call: write RA at the new RSP, then transfer.
	KCall
	// KCallInd: like KCall but the target address is in Src.
	KCallInd
	// KRet: pop return address into PC.
	KRet
	// KJmp: PC = Target.
	KJmp
	// KJz: if Src == 0 then PC = Target.
	KJz
	// KJnz: if Src != 0 then PC = Target.
	KJnz
	// KNop: no operation (NOP insertion at call sites, Section 4.3).
	KNop
	// KTrap: booby trap / int3. Executing one means an attack (or a bug)
	// redirected control flow into a trap; the VM raises a TrapEvent.
	KTrap
	// KVLoad: VDst = mem256[Base + Disp] (vmovdqu-style, unaligned ok).
	KVLoad
	// KVStore: mem256[Base + Disp] = VSrc (vmovdqu-style).
	KVStore
	// KVStoreA: aligned store; the effective address must be 16-byte
	// aligned or the machine faults (the crash the paper's stack-alignment
	// padding prevents, Section 5.1).
	KVStoreA
	// KVZeroUpper: clears upper vector state. Omitting it after the AVX2
	// BTRA sequence costs heavily (Section 5.1.2); the VM's cost model
	// charges an SSE/AVX transition penalty to calls executed in dirty
	// vector state.
	KVZeroUpper
	// KSys: runtime service (allocator, output, exit). Runtime stub
	// functions — the simulated unprotected libc — wrap these.
	KSys
	// KHalt: stop the machine (end of _start).
	KHalt

	// KindCount is the number of instruction kinds, for dense per-kind
	// tables (predecode dispatch, class counters).
	KindCount = int(KHalt) + 1
)

var kindNames = [...]string{
	"movimm", "mov", "load", "store", "lea", "alu", "aluimm", "set",
	"push", "pushimm", "pop", "call", "callind", "ret", "jmp", "jz", "jnz",
	"nop", "trap", "vload", "vstore", "vstorea", "vzeroupper", "sys", "halt",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind?%d", int8(k))
}

// Sys enumerates runtime services.
type Sys int8

// Runtime service codes.
const (
	// SysAlloc: RAX = malloc(RDI).
	SysAlloc Sys = iota
	// SysFree: free(RDI).
	SysFree
	// SysOutput: append RDI to the program output stream.
	SysOutput
	// SysExit: terminate the program with status RDI.
	SysExit
	// SysProtect: mprotect(RDI=addr, RSI=len, RDX=perm). The BTDP
	// constructor uses it to revoke access from guard pages.
	SysProtect
)

var sysNames = [...]string{"alloc", "free", "output", "exit", "protect"}

func (s Sys) String() string {
	if int(s) < len(sysNames) {
		return sysNames[s]
	}
	return fmt.Sprintf("sys?%d", int8(s))
}

// Instr is one machine instruction. Before linking, control-transfer and
// address-bearing instructions carry symbolic targets (Sym / LocalTarget);
// the linker resolves them into Target/Imm absolute addresses.
type Instr struct {
	Kind Kind
	Alu  AluOp
	Cmp  CmpOp
	Sys  Sys

	Dst  Reg
	Src  Reg
	A, B Reg
	Base Reg

	VDst VReg
	VSrc VReg

	Imm  uint64
	Disp int64

	// Target is an absolute code/data address after linking.
	Target uint64
	// Sym is a pre-link symbol reference ("" when absent). For KCall it is
	// the callee; for KPushImm/KMovImm with RA semantics it names the
	// return-address label; for KVLoad it may name a data symbol.
	Sym string
	// SymOff is added to the resolved symbol address.
	SymOff int64
	// LocalTarget is a pre-link intra-function instruction index for jumps
	// (-1 when absent).
	LocalTarget int

	// RetAddr marks an immediate that must resolve to "address of the
	// instruction after call site CallSiteID" (the pre-pushed return
	// address of the BTRA setup, and the RA entry of the AVX2 array).
	RetAddr bool
	// CallSiteID links RetAddr immediates and the KCall they belong to.
	CallSiteID int

	// BTRA marks a pushed/stored immediate as a booby-trapped return
	// address. The flag is toolchain metadata only — it is never visible in
	// memory, where BTRAs are indistinguishable from real return addresses.
	BTRA bool
}

// EncodedSize returns the instruction's size in bytes in the simulated
// encoding. Sizes approximate x86_64 and feed address assignment and the
// i-cache model; what matters is their relative magnitude (a push-based
// BTRA setup occupies ~50% more code bytes than the AVX2 sequence).
func (in *Instr) EncodedSize() int {
	switch in.Kind {
	case KMovImm:
		return 10 // mov r64, imm64
	case KMovReg:
		return 3
	case KLoad, KStore:
		return 4
	case KLea:
		return 4
	case KAlu:
		return 3
	case KAluImm:
		return 4
	case KSet:
		return 7 // cmp + setcc + movzx
	case KPush:
		return 2
	case KPushImm:
		return 6 // push m64 via GOT / push imm32 pair
	case KPop:
		return 2
	case KCall:
		return 5 // call rel32
	case KCallInd:
		return 3
	case KRet:
		return 1
	case KJmp:
		return 5
	case KJz, KJnz:
		return 9 // test + jcc
	case KNop:
		return 1
	case KTrap:
		return 4 // ud2 padded to a 4-byte slot, as trap-insertion passes emit
	case KVLoad:
		return 8
	case KVStore, KVStoreA:
		return 6
	case KVZeroUpper:
		return 3
	case KSys:
		return 2
	case KHalt:
		return 2
	}
	return 4
}

// String disassembles the instruction (post-link form when Target is set).
func (in *Instr) String() string {
	t := func() string {
		if in.Sym != "" {
			if in.SymOff != 0 {
				return fmt.Sprintf("%s%+d", in.Sym, in.SymOff)
			}
			return in.Sym
		}
		if in.LocalTarget >= 0 && in.Target == 0 {
			return fmt.Sprintf("@%d", in.LocalTarget)
		}
		return fmt.Sprintf("%#x", in.Target)
	}
	switch in.Kind {
	case KMovImm:
		if in.RetAddr {
			return fmt.Sprintf("mov %s, <ra:%d>", in.Dst, in.CallSiteID)
		}
		return fmt.Sprintf("mov %s, %#x", in.Dst, in.Imm)
	case KMovReg:
		return fmt.Sprintf("mov %s, %s", in.Dst, in.Src)
	case KLoad:
		return fmt.Sprintf("mov %s, [%s%+d]", in.Dst, in.Base, in.Disp)
	case KStore:
		return fmt.Sprintf("mov [%s%+d], %s", in.Base, in.Disp, in.Src)
	case KLea:
		return fmt.Sprintf("lea %s, [%s%+d]", in.Dst, in.Base, in.Disp)
	case KAlu:
		return fmt.Sprintf("%s %s, %s", in.Alu, in.Dst, in.Src)
	case KAluImm:
		return fmt.Sprintf("%s %s, %#x", in.Alu, in.Dst, in.Imm)
	case KSet:
		return fmt.Sprintf("set%s %s, %s, %s", in.Cmp, in.Dst, in.A, in.B)
	case KPush:
		return fmt.Sprintf("push %s", in.Src)
	case KPushImm:
		if in.RetAddr {
			if in.Target == 0 {
				return fmt.Sprintf("push <ra:%d>", in.CallSiteID)
			}
			return fmt.Sprintf("push %#x <ra:%d>", in.Target, in.CallSiteID)
		}
		if in.BTRA {
			return fmt.Sprintf("push %s <btra>", t())
		}
		return fmt.Sprintf("push %s", t())
	case KPop:
		return fmt.Sprintf("pop %s", in.Dst)
	case KCall:
		return fmt.Sprintf("call %s", t())
	case KCallInd:
		return fmt.Sprintf("call *%s", in.Src)
	case KRet:
		return "ret"
	case KJmp:
		return fmt.Sprintf("jmp %s", t())
	case KJz:
		return fmt.Sprintf("jz %s, %s", in.Src, t())
	case KJnz:
		return fmt.Sprintf("jnz %s, %s", in.Src, t())
	case KNop:
		return "nop"
	case KTrap:
		return "int3"
	case KVLoad:
		if in.Base == NoGPR {
			return fmt.Sprintf("vmovdqu %s, [%s]", in.VDst, t())
		}
		return fmt.Sprintf("vmovdqu %s, [%s%+d]", in.VDst, in.Base, in.Disp)
	case KVStore:
		return fmt.Sprintf("vmovdqu [%s%+d], %s", in.Base, in.Disp, in.VSrc)
	case KVStoreA:
		return fmt.Sprintf("vmovdqa [%s%+d], %s", in.Base, in.Disp, in.VSrc)
	case KVZeroUpper:
		return "vzeroupper"
	case KSys:
		return fmt.Sprintf("sys %s", in.Sys)
	case KHalt:
		return "hlt"
	}
	return in.Kind.String()
}

// IsControlTransfer reports whether the instruction can redirect the PC.
func (in *Instr) IsControlTransfer() bool {
	switch in.Kind {
	case KCall, KCallInd, KRet, KJmp, KJz, KJnz:
		return true
	}
	return false
}

// EndsBlock reports whether the instruction terminates a basic block: every
// control transfer, plus the kinds that can stop or redirect the machine
// without being a branch (traps detonate, sys can halt or fail). The
// instruction after one of these starts a new block.
func (in *Instr) EndsBlock() bool {
	switch in.Kind {
	case KCall, KCallInd, KRet, KJmp, KJz, KJnz, KTrap, KSys, KHalt:
		return true
	}
	return false
}
