package isa

import (
	"strings"
	"testing"
)

func TestEncodedSizesPositive(t *testing.T) {
	for k := KMovImm; k <= KHalt; k++ {
		in := Instr{Kind: k}
		if in.EncodedSize() <= 0 {
			t.Errorf("%v has non-positive size", k)
		}
		if in.EncodedSize() > 16 {
			t.Errorf("%v has implausible size %d", k, in.EncodedSize())
		}
	}
}

func TestRelativeSizes(t *testing.T) {
	// The i-cache model depends on these relations: a push-based BTRA setup
	// occupies substantially more code bytes than the AVX2 sequence.
	push := (&Instr{Kind: KPushImm}).EncodedSize()
	vload := (&Instr{Kind: KVLoad}).EncodedSize()
	vstore := (&Instr{Kind: KVStore}).EncodedSize()
	vzero := (&Instr{Kind: KVZeroUpper}).EncodedSize()
	// 10 BTRAs: push setup = 12 pushes + add; AVX = 3 loads + 3 stores +
	// vzeroupper + sub.
	pushBytes := 12*push + 4
	avxBytes := 3*vload + 3*vstore + vzero + 4
	if pushBytes <= avxBytes {
		t.Fatalf("push setup (%dB) must outweigh AVX setup (%dB)", pushBytes, avxBytes)
	}
	if (&Instr{Kind: KNop}).EncodedSize() != 1 {
		t.Error("NOP must be 1 byte")
	}
}

func TestRegisterNames(t *testing.T) {
	if RSP.String() != "rsp" || RBP.String() != "rbp" || RAX.String() != "rax" {
		t.Error("register names wrong")
	}
	if NumRegs != 16 {
		t.Errorf("GPR file = %d, want 16", NumRegs)
	}
	if len(ArgRegs) != 6 {
		t.Errorf("System V passes 6 register args, got %d", len(ArgRegs))
	}
	if ArgRegs[0] != RDI || ArgRegs[1] != RSI {
		t.Error("arg register order is not System V")
	}
}

func TestDisassembly(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Kind: KMovImm, Dst: RAX, Imm: 0x10}, "mov rax, 0x10"},
		{Instr{Kind: KLoad, Dst: RBX, Base: RSP, Disp: 8}, "mov rbx, [rsp+8]"},
		{Instr{Kind: KStore, Base: RSP, Disp: -8, Src: RCX}, "mov [rsp-8], rcx"},
		{Instr{Kind: KPushImm, Sym: "__bt3", SymOff: 2, BTRA: true}, "push __bt3+2 <btra>"},
		{Instr{Kind: KPushImm, RetAddr: true, CallSiteID: 7}, "push <ra:7>"},
		{Instr{Kind: KCall, Sym: "main"}, "call main"},
		{Instr{Kind: KCallInd, Src: R11}, "call *r11"},
		{Instr{Kind: KRet}, "ret"},
		{Instr{Kind: KAluImm, Alu: AluSub, Dst: RSP, Imm: 0x10}, "sub rsp, 0x10"},
		{Instr{Kind: KVZeroUpper}, "vzeroupper"},
		{Instr{Kind: KTrap}, "int3"},
		{Instr{Kind: KSys, Sys: SysAlloc}, "sys alloc"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestIsControlTransfer(t *testing.T) {
	for _, k := range []Kind{KCall, KCallInd, KRet, KJmp, KJz, KJnz} {
		if !(&Instr{Kind: k}).IsControlTransfer() {
			t.Errorf("%v should be a control transfer", k)
		}
	}
	for _, k := range []Kind{KMovImm, KPush, KNop, KTrap, KSys} {
		if (&Instr{Kind: k}).IsControlTransfer() {
			t.Errorf("%v should not be a control transfer", k)
		}
	}
}

func TestEnumStringsDistinct(t *testing.T) {
	seen := map[string]bool{}
	for k := KMovImm; k <= KHalt; k++ {
		s := k.String()
		if strings.HasPrefix(s, "kind?") {
			t.Errorf("kind %d has no name", k)
		}
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
}
