package defense

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Fingerprint returns a stable digest of every configuration knob. Configs
// with equal fingerprints drive the toolchain identically, so the
// fingerprint serves as the config component of a build-cache key.
//
// The digest is computed over the %#v rendering of the struct, which spells
// out each field by name in declaration order: a Config is a flat record of
// strings, integers and booleans, so the rendering is deterministic, and any
// field added to Config in the future is picked up automatically — a new
// knob can never silently alias two distinct configurations onto one cached
// build.
func (c Config) Fingerprint() string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%#v", c)))
	return hex.EncodeToString(sum[:])
}
