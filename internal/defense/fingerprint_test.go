package defense

import (
	"reflect"
	"testing"
)

// Every knob must perturb the fingerprint: the fingerprint is the config
// component of the build-cache key, so a knob it missed would alias two
// different configurations onto one cached build. The test walks Config by
// reflection, so a future field that %#v somehow failed to distinguish
// (e.g. a pointer or map rendered by address) is caught the day it is
// added, not when the cache serves a stale image.
func TestFingerprintCoversEveryKnob(t *testing.T) {
	base := R2CFull()
	baseFP := base.Fingerprint()

	typ := reflect.TypeOf(base)
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		mut := base
		fv := reflect.ValueOf(&mut).Elem().Field(i)
		switch fv.Kind() {
		case reflect.Bool:
			fv.SetBool(!fv.Bool())
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			fv.SetInt(fv.Int() + 1)
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			fv.SetUint(fv.Uint() + 1)
		case reflect.String:
			fv.SetString(fv.String() + "x")
		default:
			t.Fatalf("field %s has kind %s the fingerprint test cannot perturb; extend the test", f.Name, fv.Kind())
		}
		if mut.Fingerprint() == baseFP {
			t.Errorf("flipping %s did not change the fingerprint", f.Name)
		}
	}
}

// Fingerprints must be stable across calls and value copies.
func TestFingerprintIsStable(t *testing.T) {
	a := R2CFull()
	b := a
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("copies of one config fingerprint differently")
	}
	if a.Fingerprint() != a.Fingerprint() {
		t.Error("fingerprint is not deterministic across calls")
	}
	if Off().Fingerprint() == a.Fingerprint() {
		t.Error("distinct configs share a fingerprint")
	}
}
