// Package defense defines defense configurations: which diversification and
// protection techniques the toolchain applies. A Config both drives the code
// generator/linker/runtime and identifies rows of the paper's comparisons —
// R2C's components in Table 1, full R2C in Figure 6, and the related-work
// baselines in Table 3.
package defense

// BTRAMode selects the booby-trapped return address setup sequence.
type BTRAMode int

const (
	// BTRAOff disables BTRAs.
	BTRAOff BTRAMode = iota
	// BTRAPush uses the push-based setup (Section 5.1, Figure 3).
	BTRAPush
	// BTRAAVX2 uses the AVX2 vectorized setup (Section 5.1.2, Figure 4).
	BTRAAVX2
)

func (m BTRAMode) String() string {
	switch m {
	case BTRAOff:
		return "off"
	case BTRAPush:
		return "push"
	case BTRAAVX2:
		return "avx2"
	}
	return "?"
}

// Config enumerates every knob of the toolchain. The zero value is the
// unprotected baseline.
type Config struct {
	Name string

	// --- BTRAs (Sections 4.1, 5.1) ---

	// BTRASetup selects off/push/AVX2.
	BTRASetup BTRAMode
	// BTRAsPerCall is the total number of BTRAs inserted per call site
	// (pre + post, before alignment padding). The paper evaluates 10.
	BTRAsPerCall int
	// BTRAPoolSize is the number of booby-trap functions distributed over
	// the text section that BTRAs point into.
	BTRAPoolSize int
	// BTRAUnprotectedCalls also instruments call sites whose callee is not
	// compiled by R2C. This measures worst-case overhead (Section 6.2);
	// the default behaviour disables those BTRAs (Section 7.4.1).
	BTRAUnprotectedCalls bool
	// VectorWidthBits is the vector register width for the AVX2 setup
	// (256 for AVX2, 512 for the AVX-512 variant of Section 7.1).
	VectorWidthBits int
	// OmitVZeroUpper is a performance ablation: skip the vzeroupper after
	// the AVX2 setup. The paper observed up to 50% overhead without it
	// (Section 5.1.2); the VM charges the SSE/AVX transition penalty.
	OmitVZeroUpper bool

	// InsecureDynamicBTRAs is an ablation of property (B) in Section 4.1:
	// re-randomize a call site's BTRA set on every invocation. Two leaked
	// frames then suffice to identify the return address. Never enabled in
	// a real configuration; exists so the attack suite can demonstrate why.
	InsecureDynamicBTRAs bool
	// InsecureCalleeBTRAs is an ablation of property (C): the BTRA set is
	// chosen per callee instead of per call site, so frames of different
	// call sites differ only in the return address.
	InsecureCalleeBTRAs bool

	// --- BTDPs (Sections 4.2, 5.2) ---

	// BTDP enables booby-trapped data pointers.
	BTDP bool
	// BTDPMaxPerFunc is the upper bound of the uniform 0..max BTDP count
	// per function (the paper uses 5).
	BTDPMaxPerFunc int
	// BTDPGuardPages is the number of guard pages kept by the constructor.
	BTDPGuardPages int
	// BTDPScatterAllocs is how many page allocations the constructor makes
	// before freeing all but BTDPGuardPages of them, scattering the rest.
	BTDPScatterAllocs int
	// BTDPArrayLen is the number of pointers in the BTDP pointer array.
	BTDPArrayLen int
	// BTDPDataDecoys is the number of additional decoy BTDPs placed in the
	// data section to camouflage the array pointer (Figure 5, hardened).
	BTDPDataDecoys int
	// BTDPSkipNoStackFuncs enables the optimization of Section 5.2: skip
	// instrumenting functions without stack allocations.
	BTDPSkipNoStackFuncs bool
	// BTDPNaiveDataArray is the Figure 5 "naive" ablation: the BTDP array
	// lives directly in the data section, so an attacker who can read the
	// data section can intersect it with stack values to spot BTDPs.
	BTDPNaiveDataArray bool

	// --- Code & data layout randomization (Section 4.3) ---

	// ShuffleFunctions randomizes function order in the text section.
	ShuffleFunctions bool
	// ShuffleGlobals randomizes global order in the data section.
	ShuffleGlobals bool
	// GlobalPadding inserts random padding between globals (Readactor++
	// style, Section 4).
	GlobalPadding bool
	// NOPMin/NOPMax bound the NOPs inserted before each call site
	// (the paper uses 1..9).
	NOPMin, NOPMax int
	// PrologTrapMin/Max bound the traps inserted into each function prolog
	// (the paper uses 1..5).
	PrologTrapMin, PrologTrapMax int
	// ShuffleStackSlots permutes stack-slot assignment per function.
	ShuffleStackSlots bool
	// RandomizeRegAlloc shuffles the register allocation order.
	RandomizeRegAlloc bool
	// OffsetInvariantAddressing moves frame-pointer setup for stack
	// arguments to the call site (Section 5.1.1). Implied by BTRAs; can be
	// enabled alone to measure its cost (Section 6.2.1).
	OffsetInvariantAddressing bool
	// CheckBTRAsOnReturn enables the Section 7.3 hardening the paper
	// proposes against corruption side channels: after each call returns,
	// the caller verifies a randomly chosen BTRA against its compile-time
	// value and detonates on mismatch, so overwriting return-address
	// candidates is no longer silent.
	CheckBTRAsOnReturn bool
	// StackArgTrampolines enables the Section 7.4.2 alternative: instead of
	// downgrading protected stack-parameter functions that unprotected code
	// calls directly, emit an adapter trampoline so they keep full
	// protection. (Address-escaped callback functions are still downgraded,
	// as in the paper's evaluation.)
	StackArgTrampolines bool

	// --- Memory protection / environment (Section 3) ---

	// XOnlyText maps the text section execute-only.
	XOnlyText bool

	// --- Baseline-defense behaviours (Table 3) ---

	// CPH models Readactor's code-pointer hiding: code pointers stored in
	// readable memory point at trampolines in execute-only memory instead
	// of functions. It hides gadget addresses but remains vulnerable to
	// AOCR whole-function reuse (Section 2.2).
	CPH bool
	// ReRandomizePeriod > 0 models TASR/Shuffler/CodeArmor-style periodic
	// re-randomization: attacker observations go stale after this many
	// simulated events.
	ReRandomizePeriod int
	// ZeroInitStack models StackArmor's zero-initialization of frames.
	ZeroInitStack bool
	// ShadowStack models backward-edge CFI (Section 8.2): the machine
	// keeps a protected copy of every pushed return address and kills the
	// process when a RET would consume anything else. Orthogonal to R2C
	// ("R2C and CFI are orthogonal defenses and could in principle
	// strengthen each other").
	ShadowStack bool
	// SupportsCxx records whether the modelled system handles C++
	// workloads (Table 3 column); purely descriptive.
	SupportsCxx bool
	// SupportsExceptions records exception-handling support (Table 3
	// footnote 1); descriptive.
	SupportsExceptions bool
}

// BTRAEnabled reports whether any BTRA insertion happens.
func (c *Config) BTRAEnabled() bool { return c.BTRASetup != BTRAOff && c.BTRAsPerCall > 0 }

// OIAEnabled reports whether offset-invariant addressing is in effect —
// either explicitly or because BTRAs force it.
func (c *Config) OIAEnabled() bool { return c.OffsetInvariantAddressing || c.BTRAEnabled() }

// Off returns the unprotected baseline configuration.
func Off() Config {
	return Config{Name: "baseline", SupportsCxx: true, SupportsExceptions: true}
}

// r2cCommon holds the settings shared by every R2C configuration.
func r2cCommon(name string) Config {
	return Config{
		Name:               name,
		XOnlyText:          true,
		SupportsCxx:        true,
		SupportsExceptions: true,
	}
}

// R2CFull returns the full R2C configuration evaluated in Figure 6:
// AVX2 BTRAs (10 per call site), BTDPs (0..5 per function), NOP insertion
// (1..9), prolog traps (1..5), and all layout randomizations. BTRAs are also
// enabled for calls to unprotected code, matching the paper's worst-case
// measurement methodology (Section 6.2).
func R2CFull() Config {
	c := r2cCommon("r2c-full")
	c.BTRASetup = BTRAAVX2
	c.BTRAsPerCall = 10
	c.BTRAPoolSize = 256
	c.BTRAUnprotectedCalls = true
	c.VectorWidthBits = 256
	c.BTDP = true
	c.BTDPMaxPerFunc = 5
	c.BTDPGuardPages = 224
	c.BTDPScatterAllocs = 640
	c.BTDPArrayLen = 128
	c.BTDPDataDecoys = 16
	c.BTDPSkipNoStackFuncs = true
	c.ShuffleFunctions = true
	c.ShuffleGlobals = true
	c.GlobalPadding = true
	c.NOPMin, c.NOPMax = 1, 9
	c.PrologTrapMin, c.PrologTrapMax = 1, 5
	c.ShuffleStackSlots = true
	c.RandomizeRegAlloc = true
	return c
}

// R2CPush is full R2C with the push-based BTRA setup.
func R2CPush() Config {
	c := R2CFull()
	c.Name = "r2c-full-push"
	c.BTRASetup = BTRAPush
	return c
}

// BTRAPushOnly isolates push-based BTRAs: 10 BTRAs and 1..9 NOPs per call
// site, everything else off (Table 1 "Push" row; Section 6.2.1).
func BTRAPushOnly() Config {
	c := r2cCommon("btra-push")
	c.BTRASetup = BTRAPush
	c.BTRAsPerCall = 10
	c.BTRAPoolSize = 256
	c.BTRAUnprotectedCalls = true
	c.NOPMin, c.NOPMax = 1, 9
	return c
}

// BTRAAVXOnly isolates AVX2 BTRAs (Table 1 "AVX" row).
func BTRAAVXOnly() Config {
	c := BTRAPushOnly()
	c.Name = "btra-avx"
	c.BTRASetup = BTRAAVX2
	c.VectorWidthBits = 256
	return c
}

// BTRAAVX512 is the AVX-512 variant discussed in Section 7.1.
func BTRAAVX512() Config {
	c := BTRAAVXOnly()
	c.Name = "btra-avx512"
	c.VectorWidthBits = 512
	return c
}

// BTDPOnly isolates BTDPs: 0..5 per function (Table 1 "BTDP" row).
func BTDPOnly() Config {
	c := r2cCommon("btdp")
	c.BTDP = true
	c.BTDPMaxPerFunc = 5
	c.BTDPGuardPages = 64
	c.BTDPScatterAllocs = 256
	c.BTDPArrayLen = 128
	c.BTDPDataDecoys = 16
	c.BTDPSkipNoStackFuncs = true
	c.ShuffleStackSlots = true // BTDP slots shuffle with locals (Section 5.2)
	return c
}

// PrologOnly isolates prolog trap insertion, 1..5 traps (Table 1 "Prolog").
func PrologOnly() Config {
	c := r2cCommon("prolog")
	c.PrologTrapMin, c.PrologTrapMax = 1, 5
	return c
}

// LayoutOnly isolates the layout randomizations: stack slot shuffling,
// global shuffling, register-allocation randomization, function shuffling
// (Table 1 "Layout" row; Section 6.2.3).
func LayoutOnly() Config {
	c := r2cCommon("layout")
	c.ShuffleFunctions = true
	c.ShuffleGlobals = true
	c.GlobalPadding = true
	c.ShuffleStackSlots = true
	c.RandomizeRegAlloc = true
	return c
}

// OIAOnly isolates offset-invariant addressing (Section 6.2.1: 0.79%
// geomean, 3.61% max).
func OIAOnly() Config {
	c := r2cCommon("oia")
	c.OffsetInvariantAddressing = true
	return c
}

// --- Related-work baselines (Table 3) ---
// Each baseline enables only the mechanisms the corresponding system has;
// the attack suite derives Table 3's security columns from these configs,
// and the notes columns come from the descriptive fields.

// Readactor models Readactor: fine-grained code randomization, execute-only
// memory, and code-pointer hiding; no data diversification.
func Readactor() Config {
	return Config{
		Name:              "readactor",
		XOnlyText:         true,
		ShuffleFunctions:  true,
		NOPMin:            1,
		NOPMax:            9,
		PrologTrapMin:     1,
		PrologTrapMax:     5,
		RandomizeRegAlloc: true,
		CPH:               true,
		SupportsCxx:       true,
	}
}

// ReadactorPP models Readactor++: Readactor plus function-table/global
// randomization and booby traps, still without stack data diversification.
func ReadactorPP() Config {
	c := Readactor()
	c.Name = "readactor++"
	c.ShuffleGlobals = true
	c.GlobalPadding = true
	return c
}

// KRX models kR^X's return-address decoys: a single decoy per return
// address and fine-grained code diversification (Section 8.1: "single
// decoy; no heap pointer protection"). kR^X is a kernel defense; we model
// its user-space analogue.
func KRX() Config {
	return Config{
		Name:             "krx",
		XOnlyText:        true,
		ShuffleFunctions: true,
		NOPMin:           1,
		NOPMax:           9,
		BTRASetup:        BTRAPush,
		BTRAsPerCall:     1, // the single decoy
		BTRAPoolSize:     64,
	}
}

// StackArmor models StackArmor: stack frame location diversification and
// zero initialization, no code-pointer or heap-pointer protection.
func StackArmor() Config {
	return Config{
		Name:              "stackarmor",
		ShuffleStackSlots: true,
		ZeroInitStack:     true,
	}
}

// TASR models TASR: timely code re-randomization on I/O system calls; no
// data diversification. C only, per Table 3.
func TASR() Config {
	return Config{
		Name:              "tasr",
		ShuffleFunctions:  true,
		ReRandomizePeriod: 1,
	}
}

// CodeArmor models CodeArmor: code-space virtualization with continuous
// re-randomization; code locators translated at runtime (CPH-like), no data
// diversification.
func CodeArmor() Config {
	return Config{
		Name:              "codearmor",
		XOnlyText:         true,
		ShuffleFunctions:  true,
		ReRandomizePeriod: 1, // continuous re-randomization
		CPH:               true,
	}
}

// CFIShadowStack models a backward-edge CFI deployment (Section 8.2): a
// hardware-style shadow stack with no diversification at all. It stops
// every return-address corruption outright but leaves forward-edge
// whole-function reuse — AOCR's vector — untouched when the hijacked
// transfer is a plausible indirect call ("CFI generally prevents ROP and
// JIT-ROP, but its effectiveness against AOCR depends on whether the
// malicious control-flow transfers are valid in the approximated CFG").
func CFIShadowStack() Config {
	return Config{
		Name:               "cfi-shadowstack",
		ShadowStack:        true,
		SupportsCxx:        true,
		SupportsExceptions: true,
	}
}

// Smokestack models Smokestack: per-invocation stack object permutation
// against data-only attacks; the return address is not randomized.
func Smokestack() Config {
	return Config{
		Name:              "smokestack",
		ShuffleStackSlots: true,
		SupportsCxx:       true,
	}
}

// ByName returns a named configuration: "baseline"/"off", "r2c"/"full",
// "push", the Table 1 component names, or a Table 3 baseline name.
func ByName(name string) (Config, bool) {
	switch name {
	case "baseline", "off", "none":
		return Off(), true
	case "r2c", "full", "r2c-full":
		return R2CFull(), true
	case "r2c-push", "full-push":
		return R2CPush(), true
	case "btra-push", "push":
		return BTRAPushOnly(), true
	case "btra-avx", "avx":
		return BTRAAVXOnly(), true
	case "btra-avx512", "avx512":
		return BTRAAVX512(), true
	case "btdp":
		return BTDPOnly(), true
	case "prolog":
		return PrologOnly(), true
	case "layout":
		return LayoutOnly(), true
	case "oia":
		return OIAOnly(), true
	case "readactor":
		return Readactor(), true
	case "readactor++":
		return ReadactorPP(), true
	case "krx":
		return KRX(), true
	case "stackarmor":
		return StackArmor(), true
	case "tasr":
		return TASR(), true
	case "codearmor":
		return CodeArmor(), true
	case "smokestack":
		return Smokestack(), true
	case "cfi", "cfi-shadowstack", "shadowstack":
		return CFIShadowStack(), true
	}
	return Config{}, false
}

// Components returns the per-component configurations of Table 1, in the
// table's row order.
func Components() []Config {
	return []Config{BTRAPushOnly(), BTRAAVXOnly(), BTDPOnly(), PrologOnly(), LayoutOnly()}
}

// Baselines returns the related-work configurations of Table 3, in the
// table's row order.
func Baselines() []Config {
	return []Config{CodeArmor(), TASR(), StackArmor(), Readactor(), KRX()}
}
