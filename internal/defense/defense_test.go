package defense

import "testing"

func TestOffIsZeroProtection(t *testing.T) {
	c := Off()
	if c.BTRAEnabled() || c.BTDP || c.ShuffleFunctions || c.XOnlyText || c.OIAEnabled() {
		t.Error("baseline config enables protections")
	}
}

func TestR2CFullMatchesPaperParameters(t *testing.T) {
	c := R2CFull()
	if !c.BTRAEnabled() || c.BTRASetup != BTRAAVX2 {
		t.Error("full R2C must use AVX2 BTRAs")
	}
	if c.BTRAsPerCall != 10 {
		t.Errorf("paper evaluates 10 BTRAs per call site, got %d", c.BTRAsPerCall)
	}
	if c.BTDPMaxPerFunc != 5 {
		t.Errorf("paper inserts 0..5 BTDPs per function, got %d", c.BTDPMaxPerFunc)
	}
	if c.NOPMin != 1 || c.NOPMax != 9 {
		t.Errorf("paper inserts 1..9 NOPs, got %d..%d", c.NOPMin, c.NOPMax)
	}
	if c.PrologTrapMin != 1 || c.PrologTrapMax != 5 {
		t.Errorf("paper inserts 1..5 prolog traps, got %d..%d", c.PrologTrapMin, c.PrologTrapMax)
	}
	if !c.BTRAUnprotectedCalls {
		t.Error("the paper measures worst case with BTRAs on calls to unprotected code")
	}
	if !c.OIAEnabled() {
		t.Error("BTRAs imply offset-invariant addressing")
	}
	if !c.ShuffleFunctions || !c.ShuffleGlobals || !c.ShuffleStackSlots || !c.RandomizeRegAlloc {
		t.Error("full R2C must enable all layout randomizations")
	}
}

func TestOIAOnlyIsolatesOIA(t *testing.T) {
	c := OIAOnly()
	if !c.OIAEnabled() {
		t.Error("OIA not enabled")
	}
	if c.BTRAEnabled() || c.BTDP || c.NOPMax > 0 || c.ShuffleStackSlots {
		t.Error("OIAOnly enables other diversification")
	}
}

func TestComponentsMatchTable1Rows(t *testing.T) {
	comps := Components()
	want := []string{"btra-push", "btra-avx", "btdp", "prolog", "layout"}
	if len(comps) != len(want) {
		t.Fatalf("components = %d rows, want %d", len(comps), len(want))
	}
	for i, c := range comps {
		if c.Name != want[i] {
			t.Errorf("row %d = %s, want %s", i, c.Name, want[i])
		}
	}
}

func TestBaselinesMatchTable3Rows(t *testing.T) {
	rows := Baselines()
	want := []string{"codearmor", "tasr", "stackarmor", "readactor", "krx"}
	if len(rows) != len(want) {
		t.Fatalf("baselines = %d rows, want %d", len(rows), len(want))
	}
	for i, c := range rows {
		if c.Name != want[i] {
			t.Errorf("row %d = %s, want %s", i, c.Name, want[i])
		}
	}
}

func TestKRXIsSingleDecoy(t *testing.T) {
	c := KRX()
	if c.BTRAsPerCall != 1 {
		t.Errorf("kR^X models a single return-address decoy, got %d", c.BTRAsPerCall)
	}
	if c.BTDP {
		t.Error("kR^X has no heap pointer protection")
	}
}

func TestByName(t *testing.T) {
	names := []string{"baseline", "r2c", "push", "avx", "avx512", "btdp",
		"prolog", "layout", "oia", "readactor", "readactor++", "krx",
		"stackarmor", "tasr", "codearmor", "smokestack"}
	for _, n := range names {
		if _, ok := ByName(n); !ok {
			t.Errorf("ByName(%q) not found", n)
		}
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Error("ByName accepted garbage")
	}
	if c, _ := ByName("r2c"); c.Name != "r2c-full" {
		t.Errorf("r2c resolves to %s", c.Name)
	}
}

func TestReRandomizingDefenses(t *testing.T) {
	if TASR().ReRandomizePeriod <= 0 {
		t.Error("TASR must re-randomize")
	}
	if CodeArmor().ReRandomizePeriod <= 0 || !CodeArmor().CPH {
		t.Error("CodeArmor must re-randomize and use locator translation")
	}
	if Readactor().CPH != true {
		t.Error("Readactor models code-pointer hiding")
	}
}
