package vm

import (
	"r2c/internal/isa"
	"r2c/internal/telemetry"
)

// rssBucketBounds are the fixed histogram buckets for RSS samples (bytes).
var rssBucketBounds = []float64{
	256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20, 1 << 30,
}

// PublishMetrics exports the machine's accumulated counters into reg. The
// export is delta-based: a machine resumed across several Run calls can be
// published after each (or once at the end) without double counting, and
// many machines can share one registry, which then aggregates a whole
// experiment. A nil registry is a no-op.
func (m *Machine) PublishMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	du := func(cur uint64, prev *uint64) uint64 { d := cur - *prev; *prev = cur; return d }
	df := func(cur float64, prev *float64) float64 { d := cur - *prev; *prev = cur; return d }

	reg.Counter("vm.instructions").Add(du(m.res.Instructions, &m.pub.instructions))
	reg.Counter("vm.calls").Add(du(m.res.Calls, &m.pub.calls))
	reg.Gauge("vm.cycles").Add(df(m.res.Cycles, &m.pub.cycles))
	reg.Gauge("vm.icache.stall_cycles").Add(df(m.res.ICacheStallCycles, &m.pub.stallCycles))

	reg.Counter("vm.icache.refs").Add(du(m.res.ICacheRefs, &m.pub.icRefs))
	reg.Counter("vm.icache.misses").Add(du(m.res.ICacheMisses, &m.pub.icMisses))
	if m.res.ICacheRefs > 0 {
		reg.Gauge("vm.icache.hit_rate").Set(1 - float64(m.res.ICacheMisses)/float64(m.res.ICacheRefs))
	}
	reg.Counter("vm.tlb.hits").Add(du(m.res.TLBHits, &m.pub.tlbHits))
	reg.Counter("vm.tlb.misses").Add(du(m.res.TLBMisses, &m.pub.tlbMisses))

	for k := range m.res.ClassInstr {
		if n := du(m.res.ClassInstr[k], &m.pub.classInstr[k]); n > 0 {
			reg.Counter("vm.instr", "kind", isa.Kind(k).String()).Add(n)
		}
		if c := df(m.res.ClassCycles[k], &m.pub.classCycles[k]); c > 0 {
			reg.Gauge("vm.instr_cycles", "kind", isa.Kind(k).String()).Add(c)
		}
	}

	reg.Gauge("vm.rss.max_bytes").SetMax(float64(m.res.MaxRSSBytes))
	if n := len(m.res.RSSSamples); n > m.pub.rssSamples {
		h := reg.Histogram("vm.rss.sample_bytes", rssBucketBounds)
		for _, s := range m.res.RSSSamples[m.pub.rssSamples:] {
			h.Observe(float64(s))
		}
		m.pub.rssSamples = n
	}

	if m.Proc != nil && m.Proc.Heap != nil {
		m.Proc.Heap.PublishMetrics(reg)
	}
}
