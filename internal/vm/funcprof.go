package vm

import (
	"fmt"
	"io"
	"sort"

	"r2c/internal/telemetry"
)

// FuncStat is one function's share of the simulated cycle budget.
type FuncStat struct {
	Name string
	// SelfCycles are cycles charged while this function's code executed.
	SelfCycles float64
	// CumCycles are cycles elapsed while the function was live on the call
	// stack (self plus callees; recursive activations counted once).
	CumCycles float64
	// Calls counts activations via an executed call instruction.
	Calls uint64
}

type profFrame struct {
	st    *FuncStat
	start float64
	// path is the folded call path ("caller;...;this") of the frame, built
	// incrementally at push time so folded-stack attribution never walks
	// the stack.
	path string
	// rec marks a recursive activation: the function was already live when
	// this frame was pushed, so closing it must not add to CumCycles again.
	rec bool
}

// FuncProfiler attributes simulated cycles to functions, keyed by the image
// symbol table. It observes only control transfers (call/ret/cross-function
// jump), so a profiled run executes the exact same instruction stream, RNG
// draws and cycle charges as an unprofiled one — attribution works on
// deltas of the machine's own cycle counter between transfers.
type FuncProfiler struct {
	stats   map[string]*FuncStat
	stack   []profFrame
	onStack map[*FuncStat]int
	cur     *FuncStat
	mark    float64 // machine cycles at the last attribution point
	// paths attributes self cycles to full call paths (semicolon-joined
	// frames, flamegraph.pl's folded-stack key) alongside the flat stats.
	paths map[string]float64
}

func newFuncProfiler(entry string, cycles float64) *FuncProfiler {
	p := &FuncProfiler{
		stats:   map[string]*FuncStat{},
		onStack: map[*FuncStat]int{},
		paths:   map[string]float64{},
		mark:    cycles,
	}
	st := p.stat(entry)
	p.cur = st
	p.push(st, entry, cycles)
	return p
}

func (p *FuncProfiler) stat(name string) *FuncStat {
	st := p.stats[name]
	if st == nil {
		st = &FuncStat{Name: name}
		p.stats[name] = st
	}
	return st
}

func (p *FuncProfiler) push(st *FuncStat, path string, cycles float64) {
	p.stack = append(p.stack, profFrame{st: st, start: cycles, path: path, rec: p.onStack[st] > 0})
	p.onStack[st]++
}

// curPath is the folded call path cycles are currently charged to. When the
// current function diverges from the top frame (a tail call or hijacked jump
// moved control without pushing), the divergent function is appended so the
// folded view shows where the time really went.
func (p *FuncProfiler) curPath() string {
	n := len(p.stack)
	if n == 0 {
		if p.cur != nil {
			return p.cur.Name
		}
		return ""
	}
	top := p.stack[n-1]
	if p.cur == nil || p.cur == top.st {
		return top.path
	}
	return top.path + ";" + p.cur.Name
}

// attribute charges the cycles since the last attribution point to the
// current function's self time and to the current folded call path.
func (p *FuncProfiler) attribute(cycles float64) {
	if delta := cycles - p.mark; p.cur != nil && delta != 0 {
		p.cur.SelfCycles += delta
		p.paths[p.curPath()] += delta
	}
	p.mark = cycles
}

// onCall records a call edge into callee at the given cycle count.
func (p *FuncProfiler) onCall(callee string, cycles float64) {
	p.attribute(cycles)
	path := p.curPath() + ";" + callee
	st := p.stat(callee)
	st.Calls++
	p.push(st, path, cycles)
	p.cur = st
}

// onRet records a return landing in now.
func (p *FuncProfiler) onRet(now string, cycles float64) {
	p.attribute(cycles)
	if n := len(p.stack); n > 0 {
		f := p.stack[n-1]
		p.stack = p.stack[:n-1]
		p.onStack[f.st]--
		if !f.rec {
			f.st.CumCycles += cycles - f.start
		}
	}
	// Trust the machine, not our shadow stack: a corrupted return address
	// may land anywhere (that mismatch is exactly what attacks exploit).
	p.cur = p.stat(now)
}

// onJump records a cross-function jump (a tail call, or a hijacked branch).
// The open frame keeps its original start; its cumulative span closes when
// the eventual return pops it.
func (p *FuncProfiler) onJump(now string, cycles float64) {
	p.attribute(cycles)
	p.cur = p.stat(now)
}

// sync flushes self-time attribution up to the given cycle count; the
// machine calls it whenever a Run ends (halt, fault, trap or budget pause).
func (p *FuncProfiler) sync(cycles float64) { p.attribute(cycles) }

// Snapshot returns per-function stats sorted by descending self cycles.
// Cumulative time for frames still open (a paused or trapped machine)
// extends to the last synced cycle count.
func (p *FuncProfiler) Snapshot() []FuncStat {
	out := make([]FuncStat, 0, len(p.stats))
	open := map[*FuncStat]float64{}
	for _, f := range p.stack {
		if !f.rec {
			if _, dup := open[f.st]; !dup {
				open[f.st] = p.mark - f.start
			}
		}
	}
	for _, st := range p.stats {
		c := *st
		c.CumCycles += open[st]
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SelfCycles != out[j].SelfCycles {
			return out[i].SelfCycles > out[j].SelfCycles
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// WriteTable renders the top-n hot functions as a flat-profile table.
func (p *FuncProfiler) WriteTable(w io.Writer, n int) {
	stats := p.Snapshot()
	var total float64
	for _, st := range stats {
		total += st.SelfCycles
	}
	if n <= 0 || n > len(stats) {
		n = len(stats)
	}
	fmt.Fprintf(w, "%-4s %-24s %14s %7s %14s %10s\n", "#", "function", "self-cycles", "self%", "cum-cycles", "calls")
	for i, st := range stats[:n] {
		pct := 0.0
		if total > 0 {
			pct = st.SelfCycles / total * 100
		}
		fmt.Fprintf(w, "%-4d %-24s %14.0f %6.1f%% %14.0f %10d\n",
			i+1, st.Name, st.SelfCycles, pct, st.CumCycles, st.Calls)
	}
	if n < len(stats) {
		fmt.Fprintf(w, "     ... (%d more functions)\n", len(stats)-n)
	}
}

// FoldedStacks returns the per-call-path self-cycle attribution sorted by
// path — one entry per distinct folded stack ("caller;...;callee").
func (p *FuncProfiler) FoldedStacks() []FoldedStack {
	out := make([]FoldedStack, 0, len(p.paths))
	for path, cycles := range p.paths {
		out = append(out, FoldedStack{Path: path, Cycles: cycles})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// FoldedStack is one call path's share of the cycle budget.
type FoldedStack struct {
	Path   string
	Cycles float64
}

// WriteFolded renders the profile in folded-stack format — one
// "frame;frame;frame count" line per distinct call path, the input
// flamegraph.pl and speedscope consume directly.
func (p *FuncProfiler) WriteFolded(w io.Writer) {
	for _, fs := range p.FoldedStacks() {
		fmt.Fprintf(w, "%s %.0f\n", fs.Path, fs.Cycles)
	}
}

// Publish adds the profile's totals to the registry as counters keyed by
// function name (flat profile) and by folded call path (stack profile).
// Call it once per profiler (typically when its run ends); repeated runs
// into the same registry accumulate, which is what a harness that
// aggregates many seeded runs wants.
func (p *FuncProfiler) Publish(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	for _, st := range p.Snapshot() {
		reg.Counter("vm.func.self_cycles", "fn", st.Name).Add(uint64(st.SelfCycles))
		reg.Counter("vm.func.cum_cycles", "fn", st.Name).Add(uint64(st.CumCycles))
		reg.Counter("vm.func.calls", "fn", st.Name).Add(st.Calls)
	}
	for _, fs := range p.FoldedStacks() {
		reg.Counter("vm.stack.self_cycles", "stack", fs.Path).Add(uint64(fs.Cycles))
	}
}
