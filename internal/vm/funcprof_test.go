package vm_test

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"

	"r2c/internal/defense"
	"r2c/internal/sim"
	"r2c/internal/telemetry"
	"r2c/internal/vm"
)

func profiledRun(t *testing.T) *vm.FuncProfiler {
	t.Helper()
	img, err := sim.BuildImage(smallModule(), defense.Off(), 1)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := sim.NewProcessFromImage(img, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	mach := vm.New(proc, vm.EPYCRome())
	mach.EnableProfiler()
	if _, err := mach.Run(sim.DefaultBudget); err != nil {
		t.Fatal(err)
	}
	p := mach.Profiler()
	if p == nil {
		t.Fatal("profiler enabled but nil after run")
	}
	return p
}

// TestProfilerFoldedStacks checks the call-path attribution behind
// -profile-format folded: paths are semicolon-joined from the entry down,
// tail calls extend the caller's path, and the folded mass equals the flat
// profile's self-cycle mass exactly (both fold the same deltas).
func TestProfilerFoldedStacks(t *testing.T) {
	p := profiledRun(t)
	stacks := p.FoldedStacks()
	if len(stacks) == 0 {
		t.Fatal("no folded stacks recorded")
	}
	byPath := map[string]float64{}
	var foldedTotal float64
	for _, fs := range stacks {
		if fs.Cycles <= 0 {
			t.Errorf("path %q has non-positive cycles %v", fs.Path, fs.Cycles)
		}
		byPath[fs.Path] = fs.Cycles
		foldedTotal += fs.Cycles
	}
	// main calls sq directly, and calls tail which tail-calls into sq: the
	// divergence shows up as a third frame on tail's path.
	for _, want := range []string{"_start;main", "_start;main;sq", "_start;main;tail;sq"} {
		if _, ok := byPath[want]; !ok {
			t.Errorf("missing folded path %q; have %v", want, keys(byPath))
		}
	}
	var flatTotal float64
	for _, st := range p.Snapshot() {
		flatTotal += st.SelfCycles
	}
	// Both totals fold the same per-transfer deltas, just grouped
	// differently, so they agree up to float summation order.
	if diff := math.Abs(foldedTotal - flatTotal); diff > 1e-6*flatTotal {
		t.Errorf("folded mass %v != flat self-cycle mass %v", foldedTotal, flatTotal)
	}
}

func keys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestProfilerWriteFolded pins the on-disk format: "path cycles" lines,
// sorted by path, integer-rendered cycles — what flamegraph.pl and
// speedscope parse.
func TestProfilerWriteFolded(t *testing.T) {
	p := profiledRun(t)
	var buf bytes.Buffer
	p.WriteFolded(&buf)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(p.FoldedStacks()) {
		t.Fatalf("%d lines for %d stacks", len(lines), len(p.FoldedStacks()))
	}
	prev := ""
	for _, line := range lines {
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed folded line %q", line)
		}
		path, count := line[:i], line[i+1:]
		if path <= prev {
			t.Errorf("paths not strictly sorted: %q after %q", path, prev)
		}
		prev = path
		if _, err := strconv.ParseUint(count, 10, 64); err != nil {
			t.Errorf("count %q on line %q is not an integer: %v", count, line, err)
		}
	}
}

// TestProfilerPublishStacks checks Publish lands per-path counters in the
// registry (what Sinks.WriteFolded aggregates across runs).
func TestProfilerPublishStacks(t *testing.T) {
	p := profiledRun(t)
	reg := telemetry.NewRegistry()
	p.Publish(reg)
	snap := reg.Snapshot()
	found := 0
	for k := range snap.Counters {
		if strings.HasPrefix(k, "vm.stack.self_cycles{") {
			found++
		}
	}
	if want := len(p.FoldedStacks()); found != want {
		t.Errorf("%d vm.stack.self_cycles series published, want %d", found, want)
	}
}
