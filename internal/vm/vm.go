package vm

import (
	"errors"
	"fmt"
	"sync/atomic"

	"r2c/internal/image"
	"r2c/internal/isa"
	"r2c/internal/mem"
	"r2c/internal/rt"
	"r2c/internal/telemetry"
)

// ForceLegacyDispatch, when set, makes newly created Machines execute on the
// reference per-instruction interpreter instead of the predecoded fast path.
// The differential tests flip it to prove the two paths are observationally
// identical; it is not a performance knob.
var ForceLegacyDispatch atomic.Bool

// ErrInstructionBudget is returned when execution exceeds the step budget.
var ErrInstructionBudget = errors.New("vm: instruction budget exhausted")

// ErrFuelExhausted is returned by RunCtx when the caller's total fuel
// allowance runs out — the typed signal a runaway program (an infinite loop
// in lowered code) hands to the execution engine's watchdog, distinct from
// the incremental pause ErrInstructionBudget models.
var ErrFuelExhausted = errors.New("vm: fuel limit exhausted")

// CPU is the architectural register state.
type CPU struct {
	PC uint64
	R  [isa.NumRegs]uint64
	V  [16][8]uint64 // 256/512-bit vector registers as word lanes
	// DirtyUpper models the SSE/AVX transition state vzeroupper clears.
	DirtyUpper bool
}

// Result summarizes one execution.
type Result struct {
	// Cycles is the modeled cycle count; Seconds converts via the profile.
	Cycles       float64
	Instructions uint64
	// Calls counts executed call instructions — the Table 2 metric. Tail
	// calls are jumps and are not counted, matching the paper's
	// methodology (Section 7.1).
	Calls        uint64
	ICacheMisses uint64
	ICacheRefs   uint64

	// ICacheStallCycles is the share of Cycles spent on L1i miss penalties
	// (the paper's i-cache-pressure attribution, Section 7.1).
	ICacheStallCycles float64
	// TLBHits/TLBMisses count the VM's data-TLB slab cache behaviour.
	TLBHits   uint64
	TLBMisses uint64
	// ClassInstr/ClassCycles attribute executed instructions and modeled
	// cycles to instruction classes (indexed by isa.Kind).
	ClassInstr  [32]uint64
	ClassCycles [32]float64

	Halted     bool
	ExitStatus uint64
	// Fault is set when execution stopped on a memory fault.
	Fault *mem.Fault
	// Trap is set when a booby trap detonated (possibly alongside Fault
	// for BTDP guard-page hits).
	Trap *rt.TrapEvent

	// MaxRSSBytes is the peak resident set (the maxrss methodology of
	// Section 6.2.5); RSSSamples holds periodic samples (the monitoring-
	// process methodology).
	MaxRSSBytes uint64
	RSSSamples  []uint64

	Output []uint64
}

// Seconds converts modeled cycles to wall-clock time on profile p.
func (r *Result) Seconds(p *Profile) float64 { return r.Cycles / (p.GHz * 1e9) }

type tlbEntry struct {
	page  uint64
	data  []byte
	perm  mem.Perm
	valid bool
}

// Machine executes a loaded process under a machine profile.
type Machine struct {
	Proc *rt.Process
	Img  *image.Image
	Prof *Profile
	CPU  CPU

	// SampleEvery, when non-zero, records an RSS sample every N
	// instructions (the separate-monitoring-process methodology).
	SampleEvery uint64
	// FlushICacheEvery, when non-zero, empties the instruction cache every
	// N instructions — modeling context-switch pollution when the server
	// shares cores with the load generator (Section 6.2.4). Programs with
	// larger protected text pay a larger re-warm cost.
	FlushICacheEvery uint64

	// Legacy pins this machine to the reference per-instruction
	// interpreter. The fast path delegates to it anyway for mid-block
	// resumes and sampling boundaries, so both paths stay live.
	Legacy bool

	ic           *icache
	lastLine     uint64
	lastExecPage uint64
	tlb          [8]tlbEntry

	// shadow is the backward-edge CFI shadow stack (Section 8.2), active
	// when the defense configuration enables it. It lives outside the
	// simulated address space, like a hardware shadow stack.
	shadow []uint64

	// rstack is the fast path's return predictor: each executed call pushes
	// (RA value, RA dense index); a return whose popped RA matches the
	// predicted value reuses the index without an address-map lookup. Purely
	// an optimization — a mismatched or stale entry just falls back to the
	// map, and a matched entry is always correct because the index was
	// derived from the same address at predecode time. Not architectural
	// state: the legacy interpreter ignores it.
	rstack []retPred

	// profiler, when enabled, attributes cycles to functions. It observes
	// only control transfers, never the architectural state, so a profiled
	// run is cycle-identical to an unprofiled one.
	profiler *FuncProfiler

	// rec mirrors Proc.Flight: the control-flow flight recorder both
	// dispatch loops feed at block boundaries. Nil — the common case —
	// keeps the hooks to a single pointer test; recording never touches
	// architectural state, so an instrumented run is cycle-identical to an
	// uninstrumented one.
	rec *telemetry.FlightRecorder

	res Result
	pub published
}

// retPred is one return-predictor entry (see Machine.rstack).
type retPred struct {
	addr uint64
	idx  int32
}

// published remembers what PublishMetrics already exported, so repeated
// publishes (a machine resumed across Run calls) add only deltas.
type published struct {
	instructions uint64
	calls        uint64
	cycles       float64
	stallCycles  float64
	icMisses     uint64
	icRefs       uint64
	tlbHits      uint64
	tlbMisses    uint64
	rssSamples   int
	classInstr   [32]uint64
	classCycles  [32]float64
}

// New prepares a machine at the image entry point.
func New(proc *rt.Process, prof *Profile) *Machine {
	m := &Machine{
		Proc: proc, Img: proc.Img, Prof: prof,
		ic:       newICache(prof),
		lastLine: ^uint64(0), lastExecPage: ^uint64(0),
		rec: proc.Flight,
	}
	m.CPU.PC = proc.Img.Entry
	m.CPU.R[isa.RSP] = proc.InitialRSP
	m.Legacy = ForceLegacyDispatch.Load()
	return m
}

// EnableProfiler turns on per-function cycle attribution and returns the
// profiler. Call before the first Run; the profiler survives budget pauses
// and accumulates across resumed Run calls.
func (m *Machine) EnableProfiler() *FuncProfiler {
	if m.profiler == nil {
		entry := ""
		if f := m.Img.FuncAt(m.CPU.PC); f != nil {
			entry = f.F.Name
		}
		m.profiler = newFuncProfiler(entry, m.res.Cycles)
	}
	return m.profiler
}

// Profiler returns the enabled profiler, or nil.
func (m *Machine) Profiler() *FuncProfiler { return m.profiler }

// charge adds cost to the modeled cycle count and attributes it to the
// instruction class. Small enough to inline into the dispatch loop.
func (m *Machine) charge(k isa.Kind, cost float64) {
	m.res.Cycles += cost
	m.res.ClassCycles[k] += cost
}

func (m *Machine) flushTLB() {
	for i := range m.tlb {
		m.tlb[i].valid = false
	}
}

func (m *Machine) slab(addr uint64) *tlbEntry {
	page := addr >> mem.PageShift
	e := &m.tlb[page&7]
	if e.valid && e.page == page {
		m.res.TLBHits++
		return e
	}
	m.res.TLBMisses++
	data, perm, ok := m.Proc.Space.Slab(addr)
	if !ok {
		return nil
	}
	e.page, e.data, e.perm, e.valid = page, data, perm, true
	return e
}

func (m *Machine) read64(addr uint64) (uint64, *mem.Fault) {
	off := addr & mem.PageMask
	if off <= mem.PageSize-8 {
		if e := m.slab(addr); e != nil {
			if e.perm&mem.PermRead == 0 {
				return 0, &mem.Fault{Addr: addr, Access: mem.AccessRead, Perm: e.perm}
			}
			b := e.data[off : off+8]
			return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
				uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56, nil
		}
		return 0, &mem.Fault{Addr: addr, Access: mem.AccessRead, Unmapped: true}
	}
	v, err := m.Proc.Space.Read64(addr)
	if err != nil {
		var f *mem.Fault
		errors.As(err, &f)
		return 0, f
	}
	return v, nil
}

func (m *Machine) write64(addr, v uint64) *mem.Fault {
	off := addr & mem.PageMask
	if off <= mem.PageSize-8 {
		if e := m.slab(addr); e != nil {
			if e.perm&mem.PermWrite == 0 {
				return &mem.Fault{Addr: addr, Access: mem.AccessWrite, Perm: e.perm}
			}
			b := e.data[off : off+8]
			b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
			b[4], b[5], b[6], b[7] = byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56)
			return nil
		}
		return &mem.Fault{Addr: addr, Access: mem.AccessWrite, Unmapped: true}
	}
	if err := m.Proc.Space.Write64(addr, v); err != nil {
		var f *mem.Fault
		errors.As(err, &f)
		return f
	}
	return nil
}

// stopFault finalizes execution on a memory fault, classifying booby traps.
func (m *Machine) stopFault(pc uint64, f *mem.Fault) {
	m.res.Fault = f
	m.Proc.NoteFault(pc, f)
	if kind := m.Proc.ClassifyFault(pc, f); kind != rt.TrapNone {
		ev := rt.TrapEvent{Kind: kind, PC: pc, Addr: f.Addr}
		m.Proc.RecordTrap(ev)
		m.res.Trap = &ev
	}
}

// Run executes until halt, fault, booby trap, or until maxInstr further
// instructions have executed (the budget is incremental, so a paused
// machine can be resumed with another Run call — how the attack framework
// models Malicious Thread Blocking). The returned Result is valid in all
// cases and accumulates across calls; err is non-nil only for
// simulator-level problems (budget exhaustion, malformed images, division
// by zero, heap exhaustion).
//
// Execution normally runs on the predecoded fast path (runFast, fast.go);
// runLegacy is the reference per-instruction interpreter the fast path
// must match observable-state-for-observable-state, and to which it
// delegates the boundary cases (mid-block entry, budget or sampling
// boundaries inside a block).
func (m *Machine) Run(maxInstr uint64) (*Result, error) {
	if code := m.Img.Code; code != nil && !m.Legacy {
		return m.runFast(code, maxInstr)
	}
	return m.runLegacy(maxInstr)
}

// finish syncs derived result fields on any stop (halt, fault, trap, pause
// or error) and returns the accumulated result.
func (m *Machine) finish() *Result {
	m.res.ICacheMisses = m.ic.misses
	m.res.ICacheRefs = m.ic.accesses
	m.res.MaxRSSBytes = m.Proc.Space.MaxRSSBytes()
	m.res.Output = m.Proc.Output
	m.res.ExitStatus = m.Proc.ExitStatus
	if m.profiler != nil {
		m.profiler.sync(m.res.Cycles)
	}
	return &m.res
}

func (m *Machine) runLegacy(maxInstr uint64) (*Result, error) {
	img, prof, cpu := m.Img, m.Prof, &m.CPU
	limit := m.res.Instructions + maxInstr
	knobs := m.SampleEvery | m.FlushICacheEvery

	curF := img.FuncAt(cpu.PC)
	if curF == nil {
		return &m.res, fmt.Errorf("vm: entry %#x not in text", cpu.PC)
	}
	curIdx := curF.InstrIndexAt(cpu.PC)
	if curIdx < 0 {
		return &m.res, fmt.Errorf("vm: entry %#x not an instruction", cpu.PC)
	}

	// jump transfers control to an absolute address, updating the current
	// function and index. Returns false (and stops) on wild transfers.
	jump := func(target uint64) bool {
		if target >= curF.Start && target < curF.End {
			if i := curF.InstrIndexAt(target); i >= 0 {
				curIdx = i
				return true
			}
		} else if pf := img.FuncAt(target); pf != nil {
			if i := pf.InstrIndexAt(target); i >= 0 {
				curF, curIdx = pf, i
				return true
			}
		}
		m.stopFault(cpu.PC, &mem.Fault{Addr: target, Access: mem.AccessExec, Unmapped: true})
		return false
	}

	finish := m.finish

	for {
		if m.res.Instructions >= limit {
			// Pause with PC at the *next* instruction so a later Run call
			// resumes exactly where this one stopped.
			cpu.PC = curF.InstrAddrs[curIdx]
			return finish(), ErrInstructionBudget
		}
		in := &curF.F.Instrs[curIdx]
		addr := curF.InstrAddrs[curIdx]
		cpu.PC = addr

		// Fetch permission, checked per page transition.
		if pg := addr >> mem.PageShift; pg != m.lastExecPage {
			if err := m.Proc.Space.CheckExec(addr); err != nil {
				var f *mem.Fault
				errors.As(err, &f)
				m.stopFault(addr, f)
				return finish(), nil
			}
			m.lastExecPage = pg
		}

		// Instruction cache, modeled per line transition.
		if line := addr >> 6; line != m.lastLine {
			if m.ic.access(addr) {
				m.res.Cycles += prof.ICacheMissPenalty
				m.res.ICacheStallCycles += prof.ICacheMissPenalty
			}
			m.lastLine = line
		}

		m.res.Instructions++
		m.res.ClassInstr[in.Kind]++
		if knobs != 0 {
			if m.SampleEvery > 0 && m.res.Instructions%m.SampleEvery == 0 {
				m.res.RSSSamples = append(m.res.RSSSamples, m.Proc.Space.RSSBytes())
			}
			if m.FlushICacheEvery > 0 && m.res.Instructions%m.FlushICacheEvery == 0 {
				m.ic.flush()
				m.lastLine = ^uint64(0)
			}
		}
		cost := prof.Cost[in.Kind]
		next := curIdx + 1

		switch in.Kind {
		case isa.KMovImm:
			cpu.R[in.Dst] = in.Imm
		case isa.KMovReg:
			cpu.R[in.Dst] = cpu.R[in.Src]
		case isa.KLoad:
			a := in.Target + uint64(in.Disp)
			if in.Base != isa.NoGPR {
				a = cpu.R[in.Base] + uint64(in.Disp)
			}
			if m.rec != nil && m.rec.NearGuard(a) {
				m.rec.Record(telemetry.FlightLoad, addr, a, m.res.Instructions)
			}
			v, f := m.read64(a)
			if f != nil {
				m.stopFault(addr, f)
				return finish(), nil
			}
			cpu.R[in.Dst] = v
		case isa.KStore:
			if f := m.write64(cpu.R[in.Base]+uint64(in.Disp), cpu.R[in.Src]); f != nil {
				m.stopFault(addr, f)
				return finish(), nil
			}
		case isa.KLea:
			cpu.R[in.Dst] = cpu.R[in.Base] + uint64(in.Disp)
		case isa.KAlu, isa.KAluImm:
			b := in.Imm
			if in.Kind == isa.KAlu {
				b = cpu.R[in.Src]
			}
			v, c, err := aluExec(in.Alu, cpu.R[in.Dst], b, prof, cost)
			if err != nil {
				return finish(), fmt.Errorf("vm: at %#x: %w", addr, err)
			}
			cpu.R[in.Dst] = v
			cost = c
		case isa.KSet:
			cpu.R[in.Dst] = cmpExec(in.Cmp, cpu.R[in.A], cpu.R[in.B])
		case isa.KPush, isa.KPushImm:
			v := in.Imm
			if in.Kind == isa.KPush {
				v = cpu.R[in.Src]
			}
			cpu.R[isa.RSP] -= 8
			if f := m.write64(cpu.R[isa.RSP], v); f != nil {
				m.stopFault(addr, f)
				return finish(), nil
			}
		case isa.KPop:
			v, f := m.read64(cpu.R[isa.RSP])
			if f != nil {
				m.stopFault(addr, f)
				return finish(), nil
			}
			cpu.R[in.Dst] = v
			cpu.R[isa.RSP] += 8
		case isa.KCall, isa.KCallInd:
			target := in.Target
			if in.Kind == isa.KCallInd {
				target = cpu.R[in.Src]
			}
			ra := addr + uint64(in.EncodedSize())
			cpu.R[isa.RSP] -= 8
			if f := m.write64(cpu.R[isa.RSP], ra); f != nil {
				m.stopFault(addr, f)
				return finish(), nil
			}
			if m.Proc.Cfg.ShadowStack {
				m.shadow = append(m.shadow, ra)
			}
			m.res.Calls++
			if cpu.DirtyUpper {
				cost += prof.AVXDirtyPenalty
			}
			m.charge(in.Kind, cost)
			if m.rec != nil {
				k := telemetry.FlightCall
				if in.Kind == isa.KCallInd {
					k = telemetry.FlightCallInd
				}
				// Recorded before target resolution, so wild transfers —
				// the attack signal — land on the flight record too.
				m.rec.Record(k, addr, target, m.res.Instructions)
			}
			if !jump(target) {
				return finish(), nil
			}
			if m.profiler != nil {
				m.profiler.onCall(curF.F.Name, m.res.Cycles)
			}
			continue
		case isa.KRet:
			ra, f := m.read64(cpu.R[isa.RSP])
			if f != nil {
				m.stopFault(addr, f)
				return finish(), nil
			}
			cpu.R[isa.RSP] += 8
			if m.Proc.Cfg.ShadowStack {
				if n := len(m.shadow); n == 0 || m.shadow[n-1] != ra {
					ev := rt.TrapEvent{Kind: rt.TrapShadowStack, PC: addr, Addr: ra}
					m.Proc.RecordTrap(ev)
					m.res.Trap = &ev
					return finish(), nil
				}
				m.shadow = m.shadow[:len(m.shadow)-1]
			}
			if cpu.DirtyUpper {
				cost += prof.AVXDirtyPenalty
			}
			m.charge(in.Kind, cost)
			if m.rec != nil {
				m.rec.Record(telemetry.FlightRet, addr, ra, m.res.Instructions)
			}
			if !jump(ra) {
				return finish(), nil
			}
			if m.profiler != nil {
				m.profiler.onRet(curF.F.Name, m.res.Cycles)
			}
			continue
		case isa.KJmp:
			m.charge(in.Kind, cost)
			if m.rec != nil {
				m.rec.Record(telemetry.FlightJump, addr, in.Target, m.res.Instructions)
			}
			prev := curF
			if !jump(in.Target) {
				return finish(), nil
			}
			if m.profiler != nil && curF != prev {
				m.profiler.onJump(curF.F.Name, m.res.Cycles)
			}
			continue
		case isa.KJz, isa.KJnz:
			taken := (cpu.R[in.Src] == 0) == (in.Kind == isa.KJz)
			if taken {
				m.charge(in.Kind, cost)
				if m.rec != nil {
					m.rec.Record(telemetry.FlightJump, addr, in.Target, m.res.Instructions)
				}
				prev := curF
				if !jump(in.Target) {
					return finish(), nil
				}
				if m.profiler != nil && curF != prev {
					m.profiler.onJump(curF.F.Name, m.res.Cycles)
				}
				continue
			}
		case isa.KNop:
			// fetch cost only
		case isa.KTrap:
			kind := m.Proc.ClassifyFault(addr, nil)
			if kind == rt.TrapNone {
				kind = rt.TrapProlog // a trap in regular code
			}
			ev := rt.TrapEvent{Kind: kind, PC: addr}
			m.Proc.RecordTrap(ev)
			m.res.Trap = &ev
			return finish(), nil
		case isa.KVLoad, isa.KVStore, isa.KVStoreA:
			lanes := int(in.Imm) / 8
			if lanes <= 0 || lanes > 8 {
				return finish(), fmt.Errorf("vm: at %#x: bad vector width %d", addr, in.Imm)
			}
			a := in.Target + uint64(in.Disp)
			if in.Base != isa.NoGPR {
				a = cpu.R[in.Base] + uint64(in.Disp)
			}
			if in.Kind == isa.KVStoreA && a%16 != 0 {
				return finish(), fmt.Errorf("vm: at %#x: misaligned vector store to %#x", addr, a)
			}
			for l := 0; l < lanes; l++ {
				la := a + uint64(l)*8
				if in.Kind == isa.KVLoad {
					v, f := m.read64(la)
					if f != nil {
						m.stopFault(addr, f)
						return finish(), nil
					}
					cpu.V[in.VDst][l] = v
				} else {
					if f := m.write64(la, cpu.V[in.VSrc][l]); f != nil {
						m.stopFault(addr, f)
						return finish(), nil
					}
				}
			}
			if lanes*8 > 16 {
				cpu.DirtyUpper = true
			}
			if lanes > 4 {
				cost *= 1.3 // 512-bit moves are slightly pricier per op
			}
		case isa.KVZeroUpper:
			cpu.DirtyUpper = false
			for i := range cpu.V {
				for l := 2; l < 8; l++ {
					cpu.V[i][l] = 0
				}
			}
		case isa.KSys:
			cost = prof.SysCost
			if err := m.sys(in.Sys); err != nil {
				return finish(), fmt.Errorf("vm: at %#x: %w", addr, err)
			}
			m.flushTLB()
			if m.res.Halted {
				m.charge(in.Kind, cost)
				return finish(), nil
			}
		case isa.KHalt:
			m.res.Halted = true
			m.charge(in.Kind, cost)
			return finish(), nil
		default:
			return finish(), fmt.Errorf("vm: at %#x: unimplemented %v", addr, in.Kind)
		}

		m.charge(in.Kind, cost)
		curIdx = next
		if curIdx >= len(curF.F.Instrs) {
			return finish(), fmt.Errorf("vm: fell off the end of %s", curF.F.Name)
		}
	}
}

func (m *Machine) sys(s isa.Sys) error {
	cpu := &m.CPU
	switch s {
	case isa.SysAlloc:
		a, err := m.Proc.Heap.Alloc(cpu.R[isa.RDI])
		if err != nil {
			return err
		}
		cpu.R[isa.RAX] = a
	case isa.SysFree:
		return m.Proc.Heap.Free(cpu.R[isa.RDI])
	case isa.SysOutput:
		m.Proc.Output = append(m.Proc.Output, cpu.R[isa.RDI])
	case isa.SysExit:
		m.Proc.ExitStatus = cpu.R[isa.RDI]
		m.res.Halted = true
	case isa.SysProtect:
		perm := mem.Perm(cpu.R[isa.RDX])
		return m.Proc.Space.Protect(cpu.R[isa.RDI], cpu.R[isa.RSI], perm)
	default:
		return fmt.Errorf("unknown sys %v", s)
	}
	return nil
}

func aluExec(op isa.AluOp, a, b uint64, prof *Profile, base float64) (uint64, float64, error) {
	switch op {
	case isa.AluAdd:
		return a + b, base, nil
	case isa.AluSub:
		return a - b, base, nil
	case isa.AluMul:
		return a * b, prof.MulCost, nil
	case isa.AluDiv:
		if b == 0 {
			return 0, base, errors.New("division by zero")
		}
		return a / b, prof.DivCost, nil
	case isa.AluRem:
		if b == 0 {
			return 0, base, errors.New("division by zero")
		}
		return a % b, prof.DivCost, nil
	case isa.AluAnd:
		return a & b, base, nil
	case isa.AluOr:
		return a | b, base, nil
	case isa.AluXor:
		return a ^ b, base, nil
	case isa.AluShl:
		return a << (b & 63), base, nil
	case isa.AluShr:
		return a >> (b & 63), base, nil
	}
	return 0, base, fmt.Errorf("unknown alu op %v", op)
}

func cmpExec(op isa.CmpOp, a, b uint64) uint64 {
	var r bool
	switch op {
	case isa.CmpEq:
		r = a == b
	case isa.CmpNeq:
		r = a != b
	case isa.CmpLt:
		r = a < b
	case isa.CmpLeq:
		r = a <= b
	case isa.CmpGt:
		r = a > b
	case isa.CmpGeq:
		r = a >= b
	}
	if r {
		return 1
	}
	return 0
}
