// Package vm executes linked program images on the simulated machine and
// charges every instruction against a microarchitectural cost model: base
// costs per instruction kind plus a set-associative instruction-cache
// simulation. The i-cache is the load-bearing part — the paper attributes
// the push-vs-AVX2 gap and the prolog-trap overhead to instruction-cache
// pressure (Section 7.1) — and the per-machine profiles reproduce the
// hardware spread of Figure 6.
package vm

import "r2c/internal/isa"

// Profile models one evaluation machine (Section 6.1).
type Profile struct {
	Name string
	// GHz converts cycles to wall-clock seconds in reports.
	GHz float64

	// Instruction cache geometry.
	ICacheBytes       int
	ICacheLineB       int
	ICacheWays        int
	ICacheMissPenalty float64 // cycles per L1i miss

	// Base instruction costs in cycles (reciprocal-throughput flavored;
	// below 1.0 models superscalar issue).
	Cost [32]float64

	// MulCost/DivCost override KAlu for the expensive suboperations.
	MulCost, DivCost float64

	// AVXDirtyPenalty is the SSE/AVX transition penalty charged to a call
	// executed with dirty upper vector state (the cost vzeroupper avoids,
	// Section 5.1.2).
	AVXDirtyPenalty float64

	// VecWidthBits is the widest supported vector operation.
	VecWidthBits int

	// SysCost is the flat cost of a runtime service (allocator, output).
	SysCost float64

	// Cores is the physical core count; the webserver experiment models
	// wrk/server core sharing (context-switch cache pollution) on small
	// machines (Section 6.2.4 splits cores between wrk and the server).
	Cores int
}

// baseCosts fills a cost table with common defaults; profiles tweak it.
func baseCosts() [32]float64 {
	var c [32]float64
	set := func(k isa.Kind, v float64) { c[k] = v }
	set(isa.KMovImm, 0.25)
	set(isa.KMovReg, 0.25)
	set(isa.KLoad, 0.6)
	set(isa.KStore, 0.6)
	set(isa.KLea, 0.25)
	set(isa.KAlu, 0.3)
	set(isa.KAluImm, 0.3)
	set(isa.KSet, 0.6)
	set(isa.KPush, 0.6)
	set(isa.KPushImm, 0.7)
	set(isa.KPop, 0.6)
	set(isa.KCall, 2.2)
	set(isa.KCallInd, 3.5)
	set(isa.KRet, 2.0)
	set(isa.KJmp, 0.9)
	set(isa.KJz, 0.8)
	set(isa.KJnz, 0.8)
	set(isa.KNop, 0.12)
	set(isa.KTrap, 1)
	set(isa.KVLoad, 0.6)
	set(isa.KVStore, 0.8)
	set(isa.KVStoreA, 0.8)
	set(isa.KVZeroUpper, 1.2)
	set(isa.KSys, 1)
	set(isa.KHalt, 1)
	return c
}

// EPYCRome models the AMD EPYC Rome 7H12 machine (Zen 2: 32 KiB 8-way L1i,
// fast short stores, moderate L2 latency).
func EPYCRome() *Profile {
	return &Profile{
		Name: "EPYC Rome", GHz: 3.2,
		ICacheBytes: 32 << 10, ICacheLineB: 64, ICacheWays: 8,
		ICacheMissPenalty: 15,
		Cost:              baseCosts(),
		MulCost:           3, DivCost: 14,
		AVXDirtyPenalty: 45,
		VecWidthBits:    256,
		SysCost:         38,
		Cores:           64,
	}
}

// I99900K models the Intel Core i9-9900K (Coffee Lake: 32 KiB 8-way L1i,
// slightly pricier push-heavy code and a larger miss penalty, which is why
// perlbench suffers more there in Figure 6).
func I99900K() *Profile {
	p := &Profile{
		Name: "i9-9900K", GHz: 3.6,
		ICacheBytes: 32 << 10, ICacheLineB: 64, ICacheWays: 8,
		ICacheMissPenalty: 18,
		Cost:              baseCosts(),
		MulCost:           3, DivCost: 21,
		AVXDirtyPenalty: 70,
		VecWidthBits:    256,
		SysCost:         55,
		Cores:           8,
	}
	p.Cost[isa.KPush] = 0.7
	p.Cost[isa.KPushImm] = 0.8
	p.Cost[isa.KCall] = 2.5
	return p
}

// TR3970X models the AMD Threadripper 3970X (Zen 2, higher clock, slower
// memory configuration in the paper's setup).
func TR3970X() *Profile {
	p := EPYCRome()
	p.Name = "TR 3970X"
	p.GHz = 3.7
	p.ICacheMissPenalty = 15.5
	p.Cores = 32
	return p
}

// Xeon8358 models the Intel Xeon Platinum 8358 (Ice Lake SP: 32 KiB 8-way
// L1i and a long L2 round trip on the mesh — the highest-overhead machine
// in Figure 6 at 8.5% geomean).
func Xeon8358() *Profile {
	p := &Profile{
		Name: "Xeon", GHz: 2.6,
		ICacheBytes: 32 << 10, ICacheLineB: 64, ICacheWays: 8,
		ICacheMissPenalty: 21,
		Cost:              baseCosts(),
		MulCost:           3, DivCost: 18,
		AVXDirtyPenalty: 65,
		VecWidthBits:    512,
		SysCost:         60,
		Cores:           32,
	}
	p.Cost[isa.KPush] = 0.75
	p.Cost[isa.KPushImm] = 0.85
	p.Cost[isa.KCall] = 2.6
	return p
}

// Xeon8358AVX512 is the Xeon profile used for the AVX-512 experiment of
// Section 7.1 (same machine; the codegen config selects 512-bit moves).
func Xeon8358AVX512() *Profile {
	p := Xeon8358()
	p.Name = "Xeon (AVX-512)"
	return p
}

// AllMachines returns the four evaluation machines in Figure 6's legend
// order.
func AllMachines() []*Profile {
	return []*Profile{I99900K(), EPYCRome(), TR3970X(), Xeon8358()}
}

// icache is a set-associative LRU instruction cache model.
type icache struct {
	sets     [][]uint64 // per-set tag stacks, most recent first
	ways     int
	lineBits uint
	setMask  uint64
	misses   uint64
	accesses uint64
}

func newICache(p *Profile) *icache {
	lineBits := uint(0)
	for 1<<lineBits < p.ICacheLineB {
		lineBits++
	}
	nSets := p.ICacheBytes / (p.ICacheLineB * p.ICacheWays)
	if nSets < 1 {
		nSets = 1
	}
	c := &icache{
		ways:     p.ICacheWays,
		lineBits: lineBits,
		setMask:  uint64(nSets - 1),
		sets:     make([][]uint64, nSets),
	}
	for i := range c.sets {
		c.sets[i] = make([]uint64, 0, p.ICacheWays)
	}
	return c
}

// flush empties the cache (used to model a context switch polluting the
// instruction cache when server and load generator share cores).
func (c *icache) flush() {
	for i := range c.sets {
		c.sets[i] = c.sets[i][:0]
	}
}

// access touches the line containing addr and reports whether it missed.
func (c *icache) access(addr uint64) bool {
	line := addr >> c.lineBits
	set := c.sets[line&c.setMask]
	for i, tag := range set {
		if tag == line {
			// Move to front (LRU).
			copy(set[1:i+1], set[:i])
			set[0] = line
			c.accesses++
			return false
		}
	}
	c.accesses++
	c.misses++
	if len(set) < c.ways {
		set = append(set, 0)
	}
	copy(set[1:], set)
	set[0] = line
	c.sets[line&c.setMask] = set
	return true
}
