package vm_test

import (
	"testing"

	"r2c/internal/defense"
	"r2c/internal/image"
	"r2c/internal/sim"
	"r2c/internal/telemetry"
	"r2c/internal/tir"
	"r2c/internal/vm"
)

// Microbenchmarks for the interpreter core, each run on both dispatch
// engines so `go test -bench BenchmarkVM ./internal/vm/` prints the
// fast-vs-legacy ratio directly. Every iteration executes a freshly loaded
// process to completion; programs are sized so load time is noise.

// aluLoopModule is a tight arithmetic kernel: one hot block, no calls, no
// memory traffic — the best case for block-batched accounting and the
// dense-switch dispatch.
func aluLoopModule() *tir.Module {
	mb := tir.NewModule("bench-alu-loop")
	main := mb.NewFunc("main", 0)
	i := main.Const(0)
	n := main.Const(100_000)
	acc := main.Const(0x9e3779b9)
	head := main.NewBlock()
	body := main.NewBlock()
	done := main.NewBlock()
	main.SetBlock(0)
	main.Br(head)
	main.SetBlock(head)
	c := main.Bin(tir.OpLt, i, n)
	main.CondBr(c, body, done)
	main.SetBlock(body)
	c13 := main.Const(13)
	sh := main.Bin(tir.OpShl, acc, c13)
	main.BinTo(acc, tir.OpXor, acc, sh)
	c7 := main.Const(7)
	sr := main.Bin(tir.OpShr, acc, c7)
	main.BinTo(acc, tir.OpXor, acc, sr)
	main.BinTo(acc, tir.OpAdd, acc, i)
	one := main.Const(1)
	main.BinTo(i, tir.OpAdd, i, one)
	main.Br(head)
	main.SetBlock(done)
	main.Output(acc)
	main.RetVoid()
	mb.SetEntry("main")
	return mb.MustBuild()
}

// callDenseModule hammers the call/return machinery: a short leaf called
// from a hot loop. Under R2C configs each call site carries BTRA pushes —
// the code shape the push superinstructions target.
func callDenseModule() *tir.Module {
	mb := tir.NewModule("bench-call-dense")
	leaf := mb.NewFunc("leaf", 1)
	c3 := leaf.Const(3)
	t := leaf.Bin(tir.OpMul, leaf.Param(0), c3)
	one := leaf.Const(1)
	leaf.Ret(leaf.Bin(tir.OpAdd, t, one))

	main := mb.NewFunc("main", 0)
	i := main.Const(0)
	n := main.Const(60_000)
	acc := main.Const(0)
	head := main.NewBlock()
	body := main.NewBlock()
	done := main.NewBlock()
	main.SetBlock(0)
	main.Br(head)
	main.SetBlock(head)
	c := main.Bin(tir.OpLt, i, n)
	main.CondBr(c, body, done)
	main.SetBlock(body)
	v := main.Call("leaf", i)
	main.BinTo(acc, tir.OpAdd, acc, v)
	one2 := main.Const(1)
	main.BinTo(i, tir.OpAdd, i, one2)
	main.Br(head)
	main.SetBlock(done)
	main.Output(acc)
	main.RetVoid()
	mb.SetEntry("main")
	return mb.MustBuild()
}

// loadStoreModule churns the data path: every iteration stores and reloads
// through a local buffer, exercising the TLB slab cache and the fast path's
// memory helpers.
func loadStoreModule() *tir.Module {
	mb := tir.NewModule("bench-load-store")
	main := mb.NewFunc("main", 0)
	l := main.NewLocal("buf", 64)
	base := main.AddrLocal(l)
	i := main.Const(0)
	n := main.Const(60_000)
	acc := main.Const(0)
	head := main.NewBlock()
	body := main.NewBlock()
	done := main.NewBlock()
	main.SetBlock(0)
	main.Br(head)
	main.SetBlock(head)
	c := main.Bin(tir.OpLt, i, n)
	main.CondBr(c, body, done)
	main.SetBlock(body)
	main.Store(base, 0, i)
	main.Store(base, 8, acc)
	v0 := main.Load(base, 0)
	v1 := main.Load(base, 8)
	x := main.Bin(tir.OpXor, v0, v1)
	main.BinTo(acc, tir.OpAdd, acc, x)
	main.Store(base, 16, acc)
	v2 := main.Load(base, 16)
	main.BinTo(acc, tir.OpXor, acc, v2)
	one := main.Const(1)
	main.BinTo(i, tir.OpAdd, i, one)
	main.Br(head)
	main.SetBlock(done)
	main.Output(acc)
	main.RetVoid()
	mb.SetEntry("main")
	return mb.MustBuild()
}

func buildBenchImage(b *testing.B, m *tir.Module, cfg defense.Config) *image.Image {
	b.Helper()
	img, err := sim.BuildImage(m, cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	return img
}

func runBenchImage(b *testing.B, img *image.Image, legacy bool) {
	b.Helper()
	var instrs uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proc, err := sim.NewProcessFromImage(img, 1, nil)
		if err != nil {
			b.Fatal(err)
		}
		mach := vm.New(proc, vm.EPYCRome())
		mach.Legacy = legacy
		res, err := mach.Run(sim.DefaultBudget)
		if err != nil || !res.Halted {
			b.Fatalf("run: halted=%v err=%v", res.Halted, err)
		}
		instrs += res.Instructions
	}
	b.StopTimer()
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

func benchBoth(b *testing.B, m *tir.Module, cfg defense.Config) {
	b.Helper()
	img := buildBenchImage(b, m, cfg)
	b.Run("fast", func(b *testing.B) { runBenchImage(b, img, false) })
	b.Run("legacy", func(b *testing.B) { runBenchImage(b, img, true) })
}

func BenchmarkVMAluLoop(b *testing.B) {
	benchBoth(b, aluLoopModule(), defense.Off())
}

func BenchmarkVMCallDenseOff(b *testing.B) {
	benchBoth(b, callDenseModule(), defense.Off())
}

func BenchmarkVMCallDenseR2CFull(b *testing.B) {
	benchBoth(b, callDenseModule(), defense.R2CFull())
}

func BenchmarkVMCallDenseR2CPush(b *testing.B) {
	benchBoth(b, callDenseModule(), defense.R2CPush())
}

func BenchmarkVMLoadStore(b *testing.B) {
	benchBoth(b, loadStoreModule(), defense.Off())
}

// runBenchImageFlight is runBenchImage with a flight recorder attached —
// the enabled-but-idle overhead gate for the security observatory: the
// recorder hooks fire on every call/ret/jump, so this measures their
// steady-state dispatch cost against the recorder-free numbers above.
func runBenchImageFlight(b *testing.B, img *image.Image, legacy bool) {
	b.Helper()
	obs := &telemetry.Observer{FlightCap: 64}
	var instrs uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proc, err := sim.NewProcessFromImage(img, 1, obs)
		if err != nil {
			b.Fatal(err)
		}
		if proc.Flight == nil {
			b.Fatal("flight recorder not attached")
		}
		mach := vm.New(proc, vm.EPYCRome())
		mach.Legacy = legacy
		res, err := mach.Run(sim.DefaultBudget)
		if err != nil || !res.Halted {
			b.Fatalf("run: halted=%v err=%v", res.Halted, err)
		}
		instrs += res.Instructions
	}
	b.StopTimer()
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

func BenchmarkVMCallDenseR2CFullFlight(b *testing.B) {
	img := buildBenchImage(b, callDenseModule(), defense.R2CFull())
	b.Run("fast", func(b *testing.B) { runBenchImageFlight(b, img, false) })
	b.Run("legacy", func(b *testing.B) { runBenchImageFlight(b, img, true) })
}
