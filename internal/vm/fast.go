package vm

import (
	"errors"
	"fmt"

	"r2c/internal/isa"
	"r2c/internal/mem"
	"r2c/internal/pcode"
	"r2c/internal/rt"
	"r2c/internal/telemetry"
)

// runFast executes on the predecoded program (image.Code). It must be
// observationally identical to runLegacy: same Result fields bit for bit,
// same fault/trap PCs, same pause/resume points, same error strings.
//
// Structure: the outer loop walks basic blocks. A block whose full extent
// fits inside the remaining budget, is entered at its leader, and crosses no
// RSS-sampling or i-cache-flush boundary is retired on the fast inner loop —
// its architectural instruction and class counts are charged up front from
// the predecoded per-block summary (rolled back exactly if a fault, trap or
// VM error stops execution mid-block), and each op dispatches through a
// dense switch with statically elided fetch checks. Everything else (the
// budget edge, knob boundaries, mid-block entry after a resume) is delegated
// to runLegacy for exactly the instructions up to the boundary, so boundary
// semantics are the reference semantics by construction.
//
// Cycle accounting (float64) deliberately stays per-op and in program
// order: float addition is not associative, so block-summed charging would
// change Result.Cycles in the low bits. Only the integer counters are
// batched.
func (m *Machine) runFast(code *pcode.Program, maxInstr uint64) (*Result, error) {
	prof, cpu := m.Prof, &m.CPU
	limit := m.res.Instructions + maxInstr

	start := code.IndexOf(cpu.PC)
	if start < 0 {
		if m.Img.FuncAt(cpu.PC) == nil {
			return &m.res, fmt.Errorf("vm: entry %#x not in text", cpu.PC)
		}
		return &m.res, fmt.Errorf("vm: entry %#x not an instruction", cpu.PC)
	}
	idx := int(start)
	ops := code.Ops
	knobs := m.SampleEvery | m.FlushICacheEvery

blocks:
	for {
		op := &ops[idx]
		if op.Exec == pcode.XFellOff {
			// Straight-line execution ran off the function end. The legacy
			// loop reports this right after retiring the last instruction,
			// before any budget pause, with the PC still at it.
			cpu.PC = ops[idx-1].Addr
			return m.finish(), fmt.Errorf("vm: fell off the end of %s", code.Funcs[op.FuncIx].Name)
		}
		blk := &code.Blocks[op.Block]
		end := int(blk.End)
		n := uint64(end - idx)
		var rem uint64
		if m.res.Instructions < limit {
			rem = limit - m.res.Instructions
		}
		// db is the distance (in retired instructions) to the next
		// sampling/flush boundary; those actions must fire at exact
		// instruction counts, so a block crossing one is not batchable.
		db := ^uint64(0)
		if knobs != 0 {
			if s := m.SampleEvery; s > 0 {
				if d := s - m.res.Instructions%s; d < db {
					db = d
				}
			}
			if f := m.FlushICacheEvery; f > 0 {
				if d := f - m.res.Instructions%f; d < db {
					db = d
				}
			}
		}
		if idx != int(blk.Start) || n > rem || db <= n {
			step := n
			if rem < step {
				step = rem
			}
			if db < step {
				step = db
			}
			// The fast loop only syncs the architectural PC at stops;
			// delegation resumes the reference loop from it, so sync now.
			cpu.PC = op.Addr
			if step == 0 {
				// Budget exhausted: pause with the PC at the next
				// instruction, exactly as the legacy loop does.
				return m.finish(), ErrInstructionBudget
			}
			res, err := m.runLegacy(step)
			if err != ErrInstructionBudget {
				return res, err
			}
			idx = int(code.IndexOf(cpu.PC))
			continue
		}

		// Fast block: charge the architectural counters for the whole
		// extent up front. Any mid-block stop rolls back the unretired
		// suffix, so the counters are exact at every exit.
		m.res.Instructions += n
		for _, pk := range code.Classes[blk.ClassOff : blk.ClassOff+uint32(blk.ClassN)] {
			m.res.ClassInstr[pk>>24] += uint64(pk & 0xffffff)
		}

		for idx < end {
			op = &ops[idx]
			if op.Flags&pcode.FNewPage != 0 {
				if pg := op.Addr >> mem.PageShift; pg != m.lastExecPage {
					if err := m.Proc.Space.CheckExec(op.Addr); err != nil {
						var f *mem.Fault
						errors.As(err, &f)
						cpu.PC = op.Addr
						m.stopFault(op.Addr, f)
						m.rollback(code, idx, end) // fetch fault: op not retired
						return m.finish(), nil
					}
					m.lastExecPage = pg
				}
			}
			if op.Flags&pcode.FNewLine != 0 {
				if line := op.Addr >> 6; line != m.lastLine {
					if m.ic.access(op.Addr) {
						m.res.Cycles += prof.ICacheMissPenalty
						m.res.ICacheStallCycles += prof.ICacheMissPenalty
					}
					m.lastLine = line
				}
			}

			switch op.Exec {
			case pcode.XMovImm:
				cpu.R[op.Dst] = op.Imm
				m.charge(isa.KMovImm, prof.Cost[isa.KMovImm])
				idx++
			case pcode.XMovReg:
				cpu.R[op.Dst] = cpu.R[op.Src]
				m.charge(isa.KMovReg, prof.Cost[isa.KMovReg])
				idx++
			case pcode.XLoadAbs:
				if m.rec != nil && m.rec.NearGuard(op.Imm) {
					// The block was charged up front; subtract the not-yet-
					// retired suffix so the recorded instruction count
					// matches the legacy loop's at this op.
					m.rec.Record(telemetry.FlightLoad, op.Addr, op.Imm, m.res.Instructions-uint64(end-idx-1))
				}
				v, f := m.read64(op.Imm)
				if f != nil {
					cpu.PC = op.Addr
					m.stopFault(op.Addr, f)
					m.rollback(code, idx+1, end)
					return m.finish(), nil
				}
				cpu.R[op.Dst] = v
				m.charge(isa.KLoad, prof.Cost[isa.KLoad])
				idx++
			case pcode.XLoadBase:
				a := cpu.R[op.Base] + uint64(op.Disp)
				if m.rec != nil && m.rec.NearGuard(a) {
					m.rec.Record(telemetry.FlightLoad, op.Addr, a, m.res.Instructions-uint64(end-idx-1))
				}
				v, f := m.read64(a)
				if f != nil {
					cpu.PC = op.Addr
					m.stopFault(op.Addr, f)
					m.rollback(code, idx+1, end)
					return m.finish(), nil
				}
				cpu.R[op.Dst] = v
				m.charge(isa.KLoad, prof.Cost[isa.KLoad])
				idx++
			case pcode.XStore:
				if f := m.write64(cpu.R[op.Base]+uint64(op.Disp), cpu.R[op.Src]); f != nil {
					cpu.PC = op.Addr
					m.stopFault(op.Addr, f)
					m.rollback(code, idx+1, end)
					return m.finish(), nil
				}
				m.charge(isa.KStore, prof.Cost[isa.KStore])
				idx++
			case pcode.XLea:
				cpu.R[op.Dst] = cpu.R[op.Base] + uint64(op.Disp)
				m.charge(isa.KLea, prof.Cost[isa.KLea])
				idx++
			case pcode.XAluAddRR:
				cpu.R[op.Dst] += cpu.R[op.Src]
				m.charge(isa.KAlu, prof.Cost[isa.KAlu])
				idx++
			case pcode.XAluAddRI:
				cpu.R[op.Dst] += op.Imm
				m.charge(isa.KAluImm, prof.Cost[isa.KAluImm])
				idx++
			case pcode.XAluSubRR:
				cpu.R[op.Dst] -= cpu.R[op.Src]
				m.charge(isa.KAlu, prof.Cost[isa.KAlu])
				idx++
			case pcode.XAluSubRI:
				cpu.R[op.Dst] -= op.Imm
				m.charge(isa.KAluImm, prof.Cost[isa.KAluImm])
				idx++
			case pcode.XAluRR:
				v, c, err := aluExec(op.Alu, cpu.R[op.Dst], cpu.R[op.Src], prof, prof.Cost[isa.KAlu])
				if err != nil {
					cpu.PC = op.Addr
					m.rollback(code, idx+1, end)
					return m.finish(), fmt.Errorf("vm: at %#x: %w", op.Addr, err)
				}
				cpu.R[op.Dst] = v
				m.charge(isa.KAlu, c)
				idx++
			case pcode.XAluRI:
				v, c, err := aluExec(op.Alu, cpu.R[op.Dst], op.Imm, prof, prof.Cost[isa.KAluImm])
				if err != nil {
					cpu.PC = op.Addr
					m.rollback(code, idx+1, end)
					return m.finish(), fmt.Errorf("vm: at %#x: %w", op.Addr, err)
				}
				cpu.R[op.Dst] = v
				m.charge(isa.KAluImm, c)
				idx++
			case pcode.XSet:
				cpu.R[op.Dst] = cmpExec(op.Cmp, cpu.R[op.A], cpu.R[op.B])
				m.charge(isa.KSet, prof.Cost[isa.KSet])
				idx++
			case pcode.XPush:
				cpu.R[isa.RSP] -= 8
				if f := m.write64(cpu.R[isa.RSP], cpu.R[op.Src]); f != nil {
					cpu.PC = op.Addr
					m.stopFault(op.Addr, f)
					m.rollback(code, idx+1, end)
					return m.finish(), nil
				}
				m.charge(isa.KPush, prof.Cost[isa.KPush])
				idx++
			case pcode.XPushImm:
				cpu.R[isa.RSP] -= 8
				if f := m.write64(cpu.R[isa.RSP], op.Imm); f != nil {
					cpu.PC = op.Addr
					m.stopFault(op.Addr, f)
					m.rollback(code, idx+1, end)
					return m.finish(), nil
				}
				m.charge(isa.KPushImm, prof.Cost[isa.KPushImm])
				idx++
			case pcode.XPop:
				v, f := m.read64(cpu.R[isa.RSP])
				if f != nil {
					cpu.PC = op.Addr
					m.stopFault(op.Addr, f)
					m.rollback(code, idx+1, end)
					return m.finish(), nil
				}
				cpu.R[op.Dst] = v
				cpu.R[isa.RSP] += 8
				m.charge(isa.KPop, prof.Cost[isa.KPop])
				idx++
			case pcode.XCall:
				t, stop := m.fastCall(code, idx, end, false)
				if stop {
					return m.finish(), nil
				}
				idx = t
				continue blocks
			case pcode.XCallInd:
				t, stop := m.fastCall(code, idx, end, true)
				if stop {
					return m.finish(), nil
				}
				idx = t
				continue blocks
			case pcode.XRet:
				t, stop := m.fastRet(code, idx, end)
				if stop {
					return m.finish(), nil
				}
				idx = t
				continue blocks
			case pcode.XJmp:
				t, stop := m.fastJump(code, idx, end, isa.KJmp)
				if stop {
					return m.finish(), nil
				}
				idx = t
				continue blocks
			case pcode.XJz:
				if cpu.R[op.Src] == 0 {
					t, stop := m.fastJump(code, idx, end, isa.KJz)
					if stop {
						return m.finish(), nil
					}
					idx = t
					continue blocks
				}
				m.charge(isa.KJz, prof.Cost[isa.KJz])
				idx++
			case pcode.XJnz:
				if cpu.R[op.Src] != 0 {
					t, stop := m.fastJump(code, idx, end, isa.KJnz)
					if stop {
						return m.finish(), nil
					}
					idx = t
					continue blocks
				}
				m.charge(isa.KJnz, prof.Cost[isa.KJnz])
				idx++
			case pcode.XNop:
				m.charge(isa.KNop, prof.Cost[isa.KNop])
				idx++
			case pcode.XTrap:
				kind := m.Proc.ClassifyFault(op.Addr, nil)
				if kind == rt.TrapNone {
					kind = rt.TrapProlog
				}
				ev := rt.TrapEvent{Kind: kind, PC: op.Addr}
				m.Proc.RecordTrap(ev)
				m.res.Trap = &ev
				cpu.PC = op.Addr
				m.rollback(code, idx+1, end)
				return m.finish(), nil
			case pcode.XVLoadAbs, pcode.XVLoadBase:
				a := op.Imm
				if op.Exec == pcode.XVLoadBase {
					a = cpu.R[op.Base] + uint64(op.Disp)
				}
				lanes := int(op.Lanes)
				faulted := false
				for l := 0; l < lanes; l++ {
					v, f := m.read64(a + uint64(l)*8)
					if f != nil {
						cpu.PC = op.Addr
						m.stopFault(op.Addr, f)
						m.rollback(code, idx+1, end)
						faulted = true
						break
					}
					cpu.V[op.VDst][l] = v
				}
				if faulted {
					return m.finish(), nil
				}
				cost := prof.Cost[isa.KVLoad]
				if lanes*8 > 16 {
					cpu.DirtyUpper = true
				}
				if lanes > 4 {
					cost *= 1.3
				}
				m.charge(isa.KVLoad, cost)
				idx++
			case pcode.XVStore, pcode.XVStoreA:
				a := op.Target + uint64(op.Disp)
				if op.Base != isa.NoGPR {
					a = cpu.R[op.Base] + uint64(op.Disp)
				}
				if op.Exec == pcode.XVStoreA && a%16 != 0 {
					cpu.PC = op.Addr
					m.rollback(code, idx+1, end)
					return m.finish(), fmt.Errorf("vm: at %#x: misaligned vector store to %#x", op.Addr, a)
				}
				lanes := int(op.Lanes)
				faulted := false
				for l := 0; l < lanes; l++ {
					if f := m.write64(a+uint64(l)*8, cpu.V[op.VSrc][l]); f != nil {
						cpu.PC = op.Addr
						m.stopFault(op.Addr, f)
						m.rollback(code, idx+1, end)
						faulted = true
						break
					}
				}
				if faulted {
					return m.finish(), nil
				}
				cost := prof.Cost[op.Kind]
				if lanes*8 > 16 {
					cpu.DirtyUpper = true
				}
				if lanes > 4 {
					cost *= 1.3
				}
				m.charge(op.Kind, cost)
				idx++
			case pcode.XVZeroUpper:
				cpu.DirtyUpper = false
				for i := range cpu.V {
					for l := 2; l < 8; l++ {
						cpu.V[i][l] = 0
					}
				}
				m.charge(isa.KVZeroUpper, prof.Cost[isa.KVZeroUpper])
				idx++
			case pcode.XSys:
				if err := m.sys(op.Sys); err != nil {
					cpu.PC = op.Addr
					m.rollback(code, idx+1, end)
					return m.finish(), fmt.Errorf("vm: at %#x: %w", op.Addr, err)
				}
				m.flushTLB()
				m.charge(isa.KSys, prof.SysCost)
				if m.res.Halted {
					cpu.PC = op.Addr
					return m.finish(), nil
				}
				idx++
			case pcode.XHalt:
				m.res.Halted = true
				m.charge(isa.KHalt, prof.Cost[isa.KHalt])
				cpu.PC = op.Addr
				return m.finish(), nil
			case pcode.XBadVec:
				cpu.PC = op.Addr
				m.rollback(code, idx+1, end)
				return m.finish(), fmt.Errorf("vm: at %#x: bad vector width %d", op.Addr, op.Imm)

			case pcode.XPushImm2:
				cpu.R[isa.RSP] -= 8
				if f := m.write64(cpu.R[isa.RSP], op.Imm); f != nil {
					cpu.PC = op.Addr
					m.stopFault(op.Addr, f)
					m.rollback(code, idx+1, end)
					return m.finish(), nil
				}
				m.charge(isa.KPushImm, prof.Cost[isa.KPushImm])
				o2 := &ops[idx+1]
				if !m.fetch2(o2) {
					m.rollback(code, idx+1, end)
					return m.finish(), nil
				}
				cpu.R[isa.RSP] -= 8
				if f := m.write64(cpu.R[isa.RSP], o2.Imm); f != nil {
					cpu.PC = o2.Addr
					m.stopFault(o2.Addr, f)
					m.rollback(code, idx+2, end)
					return m.finish(), nil
				}
				m.charge(isa.KPushImm, prof.Cost[isa.KPushImm])
				idx += 2
			case pcode.XPushImmCall:
				cpu.R[isa.RSP] -= 8
				if f := m.write64(cpu.R[isa.RSP], op.Imm); f != nil {
					cpu.PC = op.Addr
					m.stopFault(op.Addr, f)
					m.rollback(code, idx+1, end)
					return m.finish(), nil
				}
				m.charge(isa.KPushImm, prof.Cost[isa.KPushImm])
				if !m.fetch2(&ops[idx+1]) {
					m.rollback(code, idx+1, end)
					return m.finish(), nil
				}
				t, stop := m.fastCall(code, idx+1, end, false)
				if stop {
					return m.finish(), nil
				}
				idx = t
				continue blocks
			case pcode.XAluAddImmCall:
				cpu.R[op.Dst] += op.Imm
				m.charge(isa.KAluImm, prof.Cost[isa.KAluImm])
				if !m.fetch2(&ops[idx+1]) {
					m.rollback(code, idx+1, end)
					return m.finish(), nil
				}
				t, stop := m.fastCall(code, idx+1, end, false)
				if stop {
					return m.finish(), nil
				}
				idx = t
				continue blocks
			case pcode.XVLoadStore:
				lanes := int(op.Lanes)
				faulted := false
				for l := 0; l < lanes; l++ {
					v, f := m.read64(op.Imm + uint64(l)*8)
					if f != nil {
						cpu.PC = op.Addr
						m.stopFault(op.Addr, f)
						m.rollback(code, idx+1, end)
						faulted = true
						break
					}
					cpu.V[op.VDst][l] = v
				}
				if faulted {
					return m.finish(), nil
				}
				cost := prof.Cost[isa.KVLoad]
				if lanes*8 > 16 {
					cpu.DirtyUpper = true
				}
				if lanes > 4 {
					cost *= 1.3
				}
				m.charge(isa.KVLoad, cost)
				o2 := &ops[idx+1]
				if !m.fetch2(o2) {
					m.rollback(code, idx+1, end)
					return m.finish(), nil
				}
				a2 := o2.Target + uint64(o2.Disp)
				if o2.Base != isa.NoGPR {
					a2 = cpu.R[o2.Base] + uint64(o2.Disp)
				}
				lanes2 := int(o2.Lanes)
				for l := 0; l < lanes2; l++ {
					if f := m.write64(a2+uint64(l)*8, cpu.V[o2.VSrc][l]); f != nil {
						cpu.PC = o2.Addr
						m.stopFault(o2.Addr, f)
						m.rollback(code, idx+2, end)
						faulted = true
						break
					}
				}
				if faulted {
					return m.finish(), nil
				}
				cost = prof.Cost[isa.KVStore]
				if lanes2*8 > 16 {
					cpu.DirtyUpper = true
				}
				if lanes2 > 4 {
					cost *= 1.3
				}
				m.charge(isa.KVStore, cost)
				idx += 2

			default: // XUnimpl (XFellOff cannot appear inside a block)
				cpu.PC = op.Addr
				m.rollback(code, idx+1, end)
				return m.finish(), fmt.Errorf("vm: at %#x: unimplemented %v", op.Addr, op.Kind)
			}
		}
	}
}

// rollback undoes the block-entry charge for the unretired ops [from, end) —
// called when a fault, trap or VM error stops execution mid-block. Faulting
// fetches pass the faulting op itself; faulting executions pass the
// successor (the instruction retired architecturally even though it did not
// complete, matching the legacy counters).
func (m *Machine) rollback(code *pcode.Program, from, end int) {
	for i := from; i < end; i++ {
		m.res.ClassInstr[code.Ops[i].Kind]--
	}
	m.res.Instructions -= uint64(end - from)
}

// fetch2 applies the fetch prelude (exec-permission per page transition,
// i-cache access per line transition) for the second component of a fused
// pair. Returns false on an exec fault, with the fault recorded and the PC
// at the unretired component.
func (m *Machine) fetch2(op *pcode.Op) bool {
	if op.Flags&pcode.FNewPage != 0 {
		if pg := op.Addr >> mem.PageShift; pg != m.lastExecPage {
			if err := m.Proc.Space.CheckExec(op.Addr); err != nil {
				var f *mem.Fault
				errors.As(err, &f)
				m.CPU.PC = op.Addr
				m.stopFault(op.Addr, f)
				return false
			}
			m.lastExecPage = pg
		}
	}
	if op.Flags&pcode.FNewLine != 0 {
		if line := op.Addr >> 6; line != m.lastLine {
			if m.ic.access(op.Addr) {
				m.res.Cycles += m.Prof.ICacheMissPenalty
				m.res.ICacheStallCycles += m.Prof.ICacheMissPenalty
			}
			m.lastLine = line
		}
	}
	return true
}

// fastCall executes the tail of a call op at idx: push the return address,
// maintain the shadow stack and call counter, charge the (possibly
// AVX-transition-penalized) cost, and transfer. Returns the callee's dense
// index, or stop=true when the run ended (push fault, shadow-stack trap or
// wild target) — rollback for the block suffix has then been applied.
func (m *Machine) fastCall(code *pcode.Program, idx, end int, indirect bool) (next int, stop bool) {
	op := &code.Ops[idx]
	cpu := &m.CPU
	kind := isa.KCall
	tIdx := op.TIdx
	target := op.Target
	if indirect {
		kind = isa.KCallInd
		target = cpu.R[op.Src]
		tIdx = code.IndexOf(target)
	}
	cpu.R[isa.RSP] -= 8
	if f := m.write64(cpu.R[isa.RSP], op.Imm); f != nil {
		cpu.PC = op.Addr
		m.stopFault(op.Addr, f)
		m.rollback(code, idx+1, end)
		return 0, true
	}
	if m.Proc.Cfg.ShadowStack {
		m.shadow = append(m.shadow, op.Imm)
	}
	m.res.Calls++
	if op.RAIdx >= 0 {
		if len(m.rstack) >= 4096 {
			m.rstack = m.rstack[:0] // deep unbalance: predict nothing
		}
		m.rstack = append(m.rstack, retPred{addr: op.Imm, idx: op.RAIdx})
	}
	cost := m.Prof.Cost[kind]
	if cpu.DirtyUpper {
		cost += m.Prof.AVXDirtyPenalty
	}
	m.charge(kind, cost)
	if m.rec != nil {
		// Control transfers are block-final, so the up-front block charge
		// has exactly retired through this op; recording happens before
		// target resolution so wild calls are captured too.
		fk := telemetry.FlightCall
		if indirect {
			fk = telemetry.FlightCallInd
		}
		m.rec.Record(fk, op.Addr, target, m.res.Instructions)
	}
	if tIdx < 0 {
		cpu.PC = op.Addr
		m.stopFault(op.Addr, &mem.Fault{Addr: target, Access: mem.AccessExec, Unmapped: true})
		m.rollback(code, idx+1, end)
		return 0, true
	}
	if m.profiler != nil {
		m.profiler.onCall(code.Funcs[code.Ops[tIdx].FuncIx].Name, m.res.Cycles)
	}
	return int(tIdx), false
}

// fastRet executes a return op at idx; same contract as fastCall.
func (m *Machine) fastRet(code *pcode.Program, idx, end int) (next int, stop bool) {
	op := &code.Ops[idx]
	cpu := &m.CPU
	ra, f := m.read64(cpu.R[isa.RSP])
	if f != nil {
		cpu.PC = op.Addr
		m.stopFault(op.Addr, f)
		m.rollback(code, idx+1, end)
		return 0, true
	}
	cpu.R[isa.RSP] += 8
	if m.Proc.Cfg.ShadowStack {
		if n := len(m.shadow); n == 0 || m.shadow[n-1] != ra {
			ev := rt.TrapEvent{Kind: rt.TrapShadowStack, PC: op.Addr, Addr: ra}
			m.Proc.RecordTrap(ev)
			m.res.Trap = &ev
			cpu.PC = op.Addr
			m.rollback(code, idx+1, end)
			return 0, true
		}
		m.shadow = m.shadow[:len(m.shadow)-1]
	}
	cost := m.Prof.Cost[isa.KRet]
	if cpu.DirtyUpper {
		cost += m.Prof.AVXDirtyPenalty
	}
	m.charge(isa.KRet, cost)
	if m.rec != nil {
		m.rec.Record(telemetry.FlightRet, op.Addr, ra, m.res.Instructions)
	}
	t := int32(-1)
	if n := len(m.rstack); n > 0 {
		e := m.rstack[n-1]
		m.rstack = m.rstack[:n-1]
		if e.addr == ra {
			t = e.idx
		}
	}
	if t < 0 {
		t = code.IndexOf(ra)
	}
	if t < 0 {
		cpu.PC = op.Addr
		m.stopFault(op.Addr, &mem.Fault{Addr: ra, Access: mem.AccessExec, Unmapped: true})
		m.rollback(code, idx+1, end)
		return 0, true
	}
	if m.profiler != nil {
		m.profiler.onRet(code.Funcs[code.Ops[t].FuncIx].Name, m.res.Cycles)
	}
	return int(t), false
}

// fastJump executes a taken jump at idx; same contract as fastCall.
func (m *Machine) fastJump(code *pcode.Program, idx, end int, k isa.Kind) (next int, stop bool) {
	op := &code.Ops[idx]
	m.charge(k, m.Prof.Cost[k])
	if m.rec != nil {
		m.rec.Record(telemetry.FlightJump, op.Addr, op.Target, m.res.Instructions)
	}
	t := op.TIdx
	if t < 0 {
		m.CPU.PC = op.Addr
		m.stopFault(op.Addr, &mem.Fault{Addr: op.Target, Access: mem.AccessExec, Unmapped: true})
		m.rollback(code, idx+1, end)
		return 0, true
	}
	if m.profiler != nil && code.Ops[t].FuncIx != op.FuncIx {
		m.profiler.onJump(code.Funcs[code.Ops[t].FuncIx].Name, m.res.Cycles)
	}
	return int(t), false
}
