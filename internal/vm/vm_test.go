package vm_test

import (
	"errors"
	"testing"

	"r2c/internal/defense"
	"r2c/internal/isa"
	"r2c/internal/sim"
	"r2c/internal/tir"
	"r2c/internal/vm"
)

// smallModule: main computes via calls and loops, outputs a checksum.
func smallModule() *tir.Module {
	mb := tir.NewModule("vmtest")
	sq := mb.NewFunc("sq", 1)
	sq.Ret(sq.Bin(tir.OpMul, sq.Param(0), sq.Param(0)))
	tail := mb.NewFunc("tail", 1)
	tail.TailCall("sq", tail.Param(0))
	main := mb.NewFunc("main", 0)
	i := main.Const(0)
	n := main.Const(20)
	acc := main.Const(0)
	head := main.NewBlock()
	body := main.NewBlock()
	done := main.NewBlock()
	main.SetBlock(0)
	main.Br(head)
	main.SetBlock(head)
	c := main.Bin(tir.OpLt, i, n)
	main.CondBr(c, body, done)
	main.SetBlock(body)
	s := main.Call("sq", i)
	tv := main.Call("tail", i)
	main.BinTo(acc, tir.OpAdd, acc, s)
	main.BinTo(acc, tir.OpXor, acc, tv)
	one := main.Const(1)
	main.BinTo(i, tir.OpAdd, i, one)
	main.Br(head)
	main.SetBlock(done)
	main.Output(acc)
	main.RetVoid()
	mb.SetEntry("main")
	return mb.MustBuild()
}

func TestRunToCompletion(t *testing.T) {
	res, _, err := sim.Run(smallModule(), defense.Off(), 1, vm.EPYCRome())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted || len(res.Output) != 1 {
		t.Fatalf("res = %+v", res)
	}
	if res.Cycles <= 0 || res.Instructions == 0 {
		t.Fatal("no cost accounted")
	}
}

func TestCallCountingExcludesTailCalls(t *testing.T) {
	res, _, err := sim.Run(smallModule(), defense.Off(), 1, vm.EPYCRome())
	if err != nil {
		t.Fatal(err)
	}
	// Per iteration: call sq + call tail (the tail->sq transfer is a jump).
	// Plus _start's call to main and output/exit stubs? Output is a stub
	// call per Output op. 20 iterations × (sq + tail) + main + output = 42.
	want := uint64(20*2 + 1 + 1)
	if res.Calls != want {
		t.Fatalf("calls = %d, want %d (tail calls must not count)", res.Calls, want)
	}
}

func TestPauseResumeEquivalence(t *testing.T) {
	m := smallModule()
	full, _, err := sim.Run(m, defense.R2CFull(), 3, vm.EPYCRome())
	if err != nil {
		t.Fatal(err)
	}
	// Same build, run in many small slices: identical totals.
	proc, err := sim.Build(m, defense.R2CFull(), 3)
	if err != nil {
		t.Fatal(err)
	}
	mach := vm.New(proc, vm.EPYCRome())
	var res *vm.Result
	for {
		res, err = mach.Run(137)
		if errors.Is(err, vm.ErrInstructionBudget) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		break
	}
	if res.Instructions != full.Instructions {
		t.Fatalf("sliced run: %d instructions, want %d", res.Instructions, full.Instructions)
	}
	if res.Cycles != full.Cycles {
		t.Fatalf("sliced run: %v cycles, want %v", res.Cycles, full.Cycles)
	}
	if len(res.Output) != len(full.Output) || res.Output[0] != full.Output[0] {
		t.Fatalf("sliced run output diverged")
	}
}

func TestVZeroUpperAblation(t *testing.T) {
	// Omitting vzeroupper must cost substantially more (Section 5.1.2:
	// "without vzeroupper we observed a performance impact of up to 50%").
	m := smallModule()
	good, _, err := sim.Run(m, defense.BTRAAVXOnly(), 5, vm.I99900K())
	if err != nil {
		t.Fatal(err)
	}
	bad := defense.BTRAAVXOnly()
	bad.OmitVZeroUpper = true
	worse, _, err := sim.Run(m, bad, 5, vm.I99900K())
	if err != nil {
		t.Fatal(err)
	}
	if worse.Cycles <= good.Cycles*1.1 {
		t.Fatalf("omitting vzeroupper cost only %.1f%% extra",
			(worse.Cycles/good.Cycles-1)*100)
	}
}

func TestStackAlignmentAtVectorStores(t *testing.T) {
	// The AVX2 setup's vector stores execute without alignment faults on
	// every seed — the invariant the alignment BTRA maintains (Section 5.1).
	m := smallModule()
	for seed := uint64(1); seed <= 12; seed++ {
		if _, _, err := sim.Run(m, defense.BTRAAVXOnly(), seed, vm.EPYCRome()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestDivisionByZeroIsAnError(t *testing.T) {
	mb := tir.NewModule("divzero")
	main := mb.NewFunc("main", 0)
	a := main.Const(1)
	z := main.Const(0)
	d := main.Bin(tir.OpDiv, a, z)
	main.Output(d)
	main.RetVoid()
	mb.SetEntry("main")
	_, _, err := sim.Run(mb.MustBuild(), defense.Off(), 1, vm.EPYCRome())
	if err == nil {
		t.Fatal("division by zero did not error")
	}
}

func TestExitStatus(t *testing.T) {
	proc, err := sim.Build(smallModule(), defense.Off(), 1)
	if err != nil {
		t.Fatal(err)
	}
	mach := vm.New(proc, vm.EPYCRome())
	res, err := mach.Run(sim.DefaultBudget)
	if err != nil || !res.Halted {
		t.Fatalf("run: %v %+v", err, res)
	}
}

func TestRSSSampling(t *testing.T) {
	proc, err := sim.Build(smallModule(), defense.R2CFull(), 2)
	if err != nil {
		t.Fatal(err)
	}
	mach := vm.New(proc, vm.EPYCRome())
	mach.SampleEvery = 200
	res, err := mach.Run(sim.DefaultBudget)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RSSSamples) == 0 {
		t.Fatal("no RSS samples")
	}
	if res.MaxRSSBytes == 0 {
		t.Fatal("no maxrss")
	}
	for _, s := range res.RSSSamples {
		if s > res.MaxRSSBytes {
			t.Fatal("sample exceeds maxrss")
		}
	}
}

func TestICacheFlushCostsCycles(t *testing.T) {
	m := smallModule()
	build := func(flush uint64) *vm.Result {
		proc, err := sim.Build(m, defense.Off(), 4)
		if err != nil {
			t.Fatal(err)
		}
		mach := vm.New(proc, vm.EPYCRome())
		mach.FlushICacheEvery = flush
		res, err := mach.Run(sim.DefaultBudget)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	noFlush := build(0)
	flushed := build(100)
	if flushed.Cycles <= noFlush.Cycles {
		t.Fatal("icache flushing did not cost cycles")
	}
	if flushed.ICacheMisses <= noFlush.ICacheMisses {
		t.Fatal("icache flushing did not add misses")
	}
}

func TestProfilesDiffer(t *testing.T) {
	m := smallModule()
	var cycles []float64
	for _, p := range vm.AllMachines() {
		res, _, err := sim.Run(m, defense.R2CFull(), 6, p)
		if err != nil {
			t.Fatal(err)
		}
		cycles = append(cycles, res.Cycles)
		if res.Seconds(p) <= 0 {
			t.Fatal("no wall-clock conversion")
		}
	}
	same := true
	for i := 1; i < len(cycles); i++ {
		if cycles[i] != cycles[0] {
			same = false
		}
	}
	if same {
		t.Fatal("all machine profiles produced identical cycle counts")
	}
}

// TestUnwinderWalksBTRAFrames pauses a run mid-call-chain and unwinds
// through BTRA-instrumented frames — the Section 7.2.4 exception-handling
// support.
func TestUnwinderWalksBTRAFrames(t *testing.T) {
	mb := tir.NewModule("unwind")
	inner := mb.NewFunc("inner", 1)
	{
		l := inner.NewLocal("x", 8)
		a := inner.AddrLocal(l)
		inner.Store(a, 0, inner.Param(0))
		// A long loop to pause inside.
		i := inner.Const(0)
		n := inner.Const(100000)
		head := inner.NewBlock()
		body := inner.NewBlock()
		done := inner.NewBlock()
		inner.SetBlock(0)
		inner.Br(head)
		inner.SetBlock(head)
		c := inner.Bin(tir.OpLt, i, n)
		inner.CondBr(c, body, done)
		inner.SetBlock(body)
		one := inner.Const(1)
		inner.BinTo(i, tir.OpAdd, i, one)
		inner.Br(head)
		inner.SetBlock(done)
		inner.Ret(inner.Load(a, 0))
	}
	mid := mb.NewFunc("mid", 1)
	mid.Ret(mid.Call("inner", mid.Param(0)))
	outer := mb.NewFunc("outer", 1)
	outer.Ret(outer.Call("mid", outer.Param(0)))
	main := mb.NewFunc("main", 0)
	v := main.Const(9)
	main.Output(main.Call("outer", v))
	main.RetVoid()
	mb.SetEntry("main")
	m := mb.MustBuild()

	for _, cfg := range []defense.Config{defense.Off(), defense.R2CFull(), defense.R2CPush()} {
		proc, err := sim.Build(m, cfg, 7)
		if err != nil {
			t.Fatal(err)
		}
		mach := vm.New(proc, vm.EPYCRome())
		if _, err := mach.Run(50_000); !errors.Is(err, vm.ErrInstructionBudget) {
			t.Fatalf("%s: did not pause: %v", cfg.Name, err)
		}
		pc := mach.CPU.PC
		if f := proc.Img.FuncAt(pc); f == nil || f.F.Name != "inner" {
			t.Skipf("%s: paused in %v, not inner", cfg.Name, pc)
		}
		frames, err := proc.Unwind(pc, mach.CPU.R[isa.RSP], 10)
		if err != nil {
			t.Fatalf("%s: unwind: %v", cfg.Name, err)
		}
		var names []string
		for _, fr := range frames {
			names = append(names, fr.FuncName)
		}
		want := []string{"inner", "mid", "outer", "main", "_start"}
		if len(names) != len(want) {
			t.Fatalf("%s: frames = %v, want %v", cfg.Name, names, want)
		}
		for i := range want {
			if names[i] != want[i] {
				t.Fatalf("%s: frames = %v, want %v", cfg.Name, names, want)
			}
		}
	}
}
