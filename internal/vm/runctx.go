package vm

import "context"

// DefaultCheckEvery is the chunk size RunCtx uses between cancellation
// checks when the caller passes 0. It is small enough that a watchdog
// deadline is honored within a few million modeled instructions, and large
// enough that the per-chunk bookkeeping is invisible next to the dispatch
// loop itself.
const DefaultCheckEvery = 2_000_000

// RunCtx executes like Run(fuel) but in chunks of checkEvery instructions,
// polling ctx between chunks — the seam the execution engine's per-cell
// watchdog hangs off. Because Run is resumable (the machine pauses with its
// PC on the next instruction and all counters, i-cache/TLB state, and
// profiler attribution intact), a chunked run retires the exact same
// instruction stream and produces a bit-identical Result to a single
// Run(fuel) call; ctx and chunking only decide when we stop looking.
//
// Termination is reported exactly one way per run: the process outcome
// (halt/fault/trap, err == nil apart from internal VM errors), ctx.Err()
// when the context is cancelled between chunks, or ErrFuelExhausted when
// fuel instructions have retired without the program ending. fuel <= 0
// returns immediately with ErrFuelExhausted; checkEvery <= 0 uses
// DefaultCheckEvery. In every case the partial Result so far is returned.
func (m *Machine) RunCtx(ctx context.Context, fuel, checkEvery uint64) (*Result, error) {
	if checkEvery == 0 {
		checkEvery = DefaultCheckEvery
	}
	var res *Result
	for {
		if ctx != nil {
			select {
			case <-ctx.Done():
				if res == nil {
					res = &m.res
				}
				return res, ctx.Err()
			default:
			}
		}
		if fuel == 0 {
			if res == nil {
				res = &m.res
			}
			return res, ErrFuelExhausted
		}
		chunk := checkEvery
		if chunk > fuel {
			chunk = fuel
		}
		var err error
		res, err = m.Run(chunk)
		if err != ErrInstructionBudget {
			return res, err
		}
		fuel -= chunk
	}
}
