package mem

import (
	"errors"
	"testing"
	"testing/quick"
)

func mustMap(t *testing.T, s *Space, addr, size uint64, perm Perm) {
	t.Helper()
	if err := s.Map(addr, size, perm); err != nil {
		t.Fatal(err)
	}
}

func TestMapReadWriteRoundTrip(t *testing.T) {
	s := NewSpace()
	mustMap(t, s, 0x1000, 2*PageSize, PermRW)
	data := []byte("hello, address space")
	if err := s.Write(0x1100, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := s.Read(0x1100, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Fatalf("round trip mismatch: %q", got)
	}
}

func TestCrossPageAccess(t *testing.T) {
	s := NewSpace()
	mustMap(t, s, 0x1000, 2*PageSize, PermRW)
	addr := uint64(0x1000 + PageSize - 3)
	if err := s.Write64(addr, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	v, err := s.Read64(addr)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x1122334455667788 {
		t.Fatalf("cross-page word = %#x", v)
	}
}

func TestLittleEndian(t *testing.T) {
	s := NewSpace()
	mustMap(t, s, 0x1000, PageSize, PermRW)
	if err := s.Write64(0x1000, 0x0102030405060708); err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 8)
	if err := s.Read(0x1000, b); err != nil {
		t.Fatal(err)
	}
	if b[0] != 0x08 || b[7] != 0x01 {
		t.Fatalf("not little endian: % x", b)
	}
}

func TestUnmappedFault(t *testing.T) {
	s := NewSpace()
	_, err := s.Read64(0xdead000)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("want Fault, got %v", err)
	}
	if !f.Unmapped || f.Access != AccessRead {
		t.Fatalf("unexpected fault: %+v", f)
	}
}

func TestPermissionFaults(t *testing.T) {
	s := NewSpace()
	mustMap(t, s, 0x1000, PageSize, PermRead)

	if err := s.Write64(0x1000, 1); err == nil {
		t.Fatal("write to read-only page succeeded")
	}
	if err := s.CheckExec(0x1000); err == nil {
		t.Fatal("exec of non-exec page succeeded")
	}
	if _, err := s.Read64(0x1000); err != nil {
		t.Fatalf("read of readable page failed: %v", err)
	}
}

func TestExecuteOnlyMemory(t *testing.T) {
	// The leakage-resilience property: execute-only text can be fetched
	// but a JIT-ROP style read of it faults.
	s := NewSpace()
	mustMap(t, s, 0x400000, PageSize, PermXOnly)
	if err := s.CheckExec(0x400000); err != nil {
		t.Fatalf("fetch from execute-only page failed: %v", err)
	}
	_, err := s.Read64(0x400000)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("read of execute-only page did not fault: %v", err)
	}
	if f.Unmapped {
		t.Fatal("fault should be a permission violation, not unmapped")
	}
}

func TestGuardPageFaultsOnEverything(t *testing.T) {
	s := NewSpace()
	mustMap(t, s, 0x7000, PageSize, PermNone)
	if _, err := s.Read64(0x7000); err == nil {
		t.Fatal("guard page read succeeded")
	}
	if err := s.Write64(0x7100, 0); err == nil {
		t.Fatal("guard page write succeeded")
	}
	if err := s.CheckExec(0x7200); err == nil {
		t.Fatal("guard page exec succeeded")
	}
}

func TestProtectRevokesAccess(t *testing.T) {
	s := NewSpace()
	mustMap(t, s, 0x1000, PageSize, PermRW)
	if err := s.Write64(0x1000, 42); err != nil {
		t.Fatal(err)
	}
	if err := s.Protect(0x1000, PageSize, PermNone); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read64(0x1000); err == nil {
		t.Fatal("read after protect(None) succeeded")
	}
	// DebugRead bypasses permissions and still sees the value.
	v, err := s.DebugRead64(0x1000)
	if err != nil || v != 42 {
		t.Fatalf("DebugRead64 = %d, %v", v, err)
	}
}

func TestDoubleMapRejected(t *testing.T) {
	s := NewSpace()
	mustMap(t, s, 0x1000, 2*PageSize, PermRW)
	if err := s.Map(0x2000, PageSize, PermRW); err == nil {
		t.Fatal("overlapping map succeeded")
	}
}

func TestUnalignedMapRejected(t *testing.T) {
	s := NewSpace()
	if err := s.Map(0x1001, PageSize, PermRW); err == nil {
		t.Fatal("unaligned map succeeded")
	}
	if err := s.Map(0x1000, 100, PermRW); err == nil {
		t.Fatal("unaligned size succeeded")
	}
}

func TestUnmapFreesAndFaults(t *testing.T) {
	s := NewSpace()
	mustMap(t, s, 0x1000, PageSize, PermRW)
	if err := s.Unmap(0x1000, PageSize); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read64(0x1000); err == nil {
		t.Fatal("read of unmapped page succeeded")
	}
	if err := s.Unmap(0x1000, PageSize); err == nil {
		t.Fatal("double unmap succeeded")
	}
}

func TestRSSAccounting(t *testing.T) {
	s := NewSpace()
	mustMap(t, s, 0x1000, 4*PageSize, PermRW)
	if s.RSSPages() != 4 || s.MaxRSSPages() != 4 {
		t.Fatalf("rss=%d max=%d", s.RSSPages(), s.MaxRSSPages())
	}
	if err := s.Unmap(0x1000, 2*PageSize); err != nil {
		t.Fatal(err)
	}
	if s.RSSPages() != 2 {
		t.Fatalf("rss after unmap = %d", s.RSSPages())
	}
	// maxrss is a high-water mark: it must not decrease.
	if s.MaxRSSPages() != 4 {
		t.Fatalf("maxrss dropped to %d", s.MaxRSSPages())
	}
	mustMap(t, s, 0x100000, 8*PageSize, PermRW)
	if s.MaxRSSPages() != 10 {
		t.Fatalf("maxrss = %d, want 10", s.MaxRSSPages())
	}
}

func TestRegionsCoalesce(t *testing.T) {
	s := NewSpace()
	mustMap(t, s, 0x1000, 2*PageSize, PermRW)
	mustMap(t, s, 0x3000, PageSize, PermXOnly)
	mustMap(t, s, 0x4000, PageSize, PermXOnly)
	mustMap(t, s, 0x6000, PageSize, PermRW)
	r := s.Regions()
	want := []Region{
		{0x1000, 2 * PageSize, PermRW},
		{0x3000, 2 * PageSize, PermXOnly},
		{0x6000, PageSize, PermRW},
	}
	if len(r) != len(want) {
		t.Fatalf("regions = %+v", r)
	}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("region %d = %+v, want %+v", i, r[i], want[i])
		}
	}
}

func TestPermString(t *testing.T) {
	cases := map[Perm]string{
		PermNone:  "---",
		PermRead:  "r--",
		PermRW:    "rw-",
		PermRX:    "r-x",
		PermXOnly: "--x",
	}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("%v.String() = %q, want %q", uint8(p), p.String(), want)
		}
	}
}

func TestAlign(t *testing.T) {
	if AlignUp(1, PageSize) != PageSize || AlignUp(PageSize, PageSize) != PageSize {
		t.Fatal("AlignUp wrong")
	}
	if AlignDown(PageSize+1, PageSize) != PageSize || AlignDown(0, PageSize) != 0 {
		t.Fatal("AlignDown wrong")
	}
}

func TestReadWriteQuick(t *testing.T) {
	// Property: any word written inside a mapped RW window reads back.
	s := NewSpace()
	const base, size = 0x10000, 16 * PageSize
	mustMap(t, s, base, size, PermRW)
	err := quick.Check(func(off uint32, v uint64) bool {
		addr := base + uint64(off)%(size-8)
		if err := s.Write64(addr, v); err != nil {
			return false
		}
		got, err := s.Read64(addr)
		return err == nil && got == v
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPartialFaultStopsAccess(t *testing.T) {
	// A write that starts on a writable page and runs into an unmapped one
	// must fault rather than silently truncate.
	s := NewSpace()
	mustMap(t, s, 0x1000, PageSize, PermRW)
	buf := make([]byte, 16)
	if err := s.Write(0x1000+PageSize-8, buf); err == nil {
		t.Fatal("write spilling into unmapped page succeeded")
	}
}
