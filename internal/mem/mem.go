// Package mem implements the simulated 64-bit address space that the whole
// system runs on: the loader maps text/data segments into it, the runtime
// allocates heap and stack from it, the VM fetches and executes code out of
// it, and the attacker leaks and corrupts it.
//
// The model is a sparse map of 4 KiB pages, each with independent R/W/X
// permissions. Two permission combinations matter for the paper:
//
//   - execute-only text (X without R), the leakage-resilience prerequisite
//     R2C assumes (Section 3): instruction fetch succeeds, data reads fault;
//   - unreadable guard pages (no permissions at all), which back BTDPs
//     (Section 5.2): any access faults immediately, which is the reactive
//     booby-trap signal.
//
// All multi-byte accesses are little-endian, matching x86_64.
package mem

import (
	"fmt"
	"sort"
)

// Page geometry mirrors x86_64 4 KiB pages.
const (
	PageSize  = 4096
	PageShift = 12
	PageMask  = PageSize - 1
)

// WordSize is the machine word size in bytes (x86_64).
const WordSize = 8

// Perm is a page permission bit set.
type Perm uint8

const (
	// PermRead allows data loads.
	PermRead Perm = 1 << iota
	// PermWrite allows data stores.
	PermWrite
	// PermExec allows instruction fetch.
	PermExec

	// PermNone marks a mapped but fully inaccessible page (a guard page).
	PermNone Perm = 0
	// PermRW is the usual data permission.
	PermRW = PermRead | PermWrite
	// PermRX is conventional text.
	PermRX = PermRead | PermExec
	// PermXOnly is execute-only text: fetchable, not readable. This is the
	// execute-only memory R2C's threat model assumes for the text section.
	PermXOnly = PermExec
)

// String renders the permission in the familiar rwx form.
func (p Perm) String() string {
	b := []byte("---")
	if p&PermRead != 0 {
		b[0] = 'r'
	}
	if p&PermWrite != 0 {
		b[1] = 'w'
	}
	if p&PermExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// AccessKind says what kind of access caused a fault.
type AccessKind int

const (
	// AccessRead is a data load.
	AccessRead AccessKind = iota
	// AccessWrite is a data store.
	AccessWrite
	// AccessExec is an instruction fetch.
	AccessExec
)

func (a AccessKind) String() string {
	switch a {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessExec:
		return "exec"
	}
	return "unknown"
}

// Fault is the simulated SIGSEGV. The runtime's fault handler inspects it to
// decide whether a booby trap fired (Section 4.2: "dereferencing a BTDP
// causes an immediate fault, giving defenders a way to respond").
type Fault struct {
	Addr     uint64
	Access   AccessKind
	Unmapped bool // true: no page; false: permission violation
	Perm     Perm // permissions of the page, when mapped
}

// Error implements the error interface.
func (f *Fault) Error() string {
	if f.Unmapped {
		return fmt.Sprintf("segfault: %s of unmapped address %#x", f.Access, f.Addr)
	}
	return fmt.Sprintf("segfault: %s of %#x violates page permission %s", f.Access, f.Addr, f.Perm)
}

type page struct {
	perm Perm
	data []byte // lazily allocated on first write
}

// Space is a sparse simulated address space.
type Space struct {
	pages map[uint64]*page // keyed by page number (addr >> PageShift)

	// RSS accounting (Section 6.2.5 reproduces both the maxrss and the
	// sampled-RSS methodology). A page counts toward RSS once mapped.
	rssPages    int
	maxRSSPages int
}

// NewSpace returns an empty address space.
func NewSpace() *Space {
	return &Space{pages: make(map[uint64]*page)}
}

// Map creates pages covering [addr, addr+size) with the given permissions.
// addr and size must be page-aligned. Mapping an already-mapped page is an
// error: segment placement bugs should fail loudly, not silently overlap.
func (s *Space) Map(addr, size uint64, perm Perm) error {
	if addr&PageMask != 0 || size&PageMask != 0 {
		return fmt.Errorf("mem: unaligned map addr=%#x size=%#x", addr, size)
	}
	first, n := addr>>PageShift, size>>PageShift
	for i := uint64(0); i < n; i++ {
		if _, dup := s.pages[first+i]; dup {
			return fmt.Errorf("mem: page %#x already mapped", (first+i)<<PageShift)
		}
	}
	for i := uint64(0); i < n; i++ {
		s.pages[first+i] = &page{perm: perm}
	}
	s.rssPages += int(n)
	if s.rssPages > s.maxRSSPages {
		s.maxRSSPages = s.rssPages
	}
	return nil
}

// Unmap removes the pages covering [addr, addr+size).
func (s *Space) Unmap(addr, size uint64) error {
	if addr&PageMask != 0 || size&PageMask != 0 {
		return fmt.Errorf("mem: unaligned unmap addr=%#x size=%#x", addr, size)
	}
	first, n := addr>>PageShift, size>>PageShift
	for i := uint64(0); i < n; i++ {
		if _, ok := s.pages[first+i]; !ok {
			return fmt.Errorf("mem: unmap of unmapped page %#x", (first+i)<<PageShift)
		}
	}
	for i := uint64(0); i < n; i++ {
		delete(s.pages, first+i)
	}
	s.rssPages -= int(n)
	return nil
}

// Protect changes the permissions of the pages covering [addr, addr+size).
// This is the simulated mprotect; the BTDP constructor uses it to revoke
// read access from guard pages (Section 5.2).
func (s *Space) Protect(addr, size uint64, perm Perm) error {
	if addr&PageMask != 0 || size&PageMask != 0 {
		return fmt.Errorf("mem: unaligned protect addr=%#x size=%#x", addr, size)
	}
	first, n := addr>>PageShift, size>>PageShift
	for i := uint64(0); i < n; i++ {
		if _, ok := s.pages[first+i]; !ok {
			return fmt.Errorf("mem: protect of unmapped page %#x", (first+i)<<PageShift)
		}
	}
	for i := uint64(0); i < n; i++ {
		s.pages[first+i].perm = perm
	}
	return nil
}

// IsMapped reports whether addr falls on a mapped page.
func (s *Space) IsMapped(addr uint64) bool {
	_, ok := s.pages[addr>>PageShift]
	return ok
}

// PermAt returns the permissions of the page containing addr.
func (s *Space) PermAt(addr uint64) (Perm, bool) {
	p, ok := s.pages[addr>>PageShift]
	if !ok {
		return 0, false
	}
	return p.perm, true
}

func (s *Space) check(addr uint64, access AccessKind) (*page, error) {
	p, ok := s.pages[addr>>PageShift]
	if !ok {
		return nil, &Fault{Addr: addr, Access: access, Unmapped: true}
	}
	var need Perm
	switch access {
	case AccessRead:
		need = PermRead
	case AccessWrite:
		need = PermWrite
	case AccessExec:
		need = PermExec
	}
	if p.perm&need == 0 {
		return nil, &Fault{Addr: addr, Access: access, Perm: p.perm}
	}
	return p, nil
}

func (p *page) ensure() []byte {
	if p.data == nil {
		p.data = make([]byte, PageSize)
	}
	return p.data
}

// Read copies len(buf) bytes starting at addr into buf, honoring page
// permissions. A fault aborts the read; buf contents are then unspecified.
func (s *Space) Read(addr uint64, buf []byte) error {
	return s.access(addr, buf, AccessRead)
}

// Write copies buf into memory at addr, honoring page permissions.
func (s *Space) Write(addr uint64, buf []byte) error {
	return s.access(addr, buf, AccessWrite)
}

func (s *Space) access(addr uint64, buf []byte, kind AccessKind) error {
	for done := 0; done < len(buf); {
		p, err := s.check(addr, kind)
		if err != nil {
			return err
		}
		off := int(addr & PageMask)
		n := PageSize - off
		if rem := len(buf) - done; n > rem {
			n = rem
		}
		data := p.ensure()
		if kind == AccessWrite {
			copy(data[off:off+n], buf[done:done+n])
		} else {
			copy(buf[done:done+n], data[off:off+n])
		}
		done += n
		addr += uint64(n)
	}
	return nil
}

// Read64 loads a little-endian 64-bit word.
func (s *Space) Read64(addr uint64) (uint64, error) {
	var b [8]byte
	if err := s.Read(addr, b[:]); err != nil {
		return 0, err
	}
	return le64(b[:]), nil
}

// Write64 stores a little-endian 64-bit word.
func (s *Space) Write64(addr, v uint64) error {
	var b [8]byte
	put64(b[:], v)
	return s.Write(addr, b[:])
}

// CheckExec verifies that addr is fetchable (mapped with PermExec).
func (s *Space) CheckExec(addr uint64) error {
	_, err := s.check(addr, AccessExec)
	return err
}

// DebugRead reads memory ignoring permissions. It exists for test assertions
// and human-readable dumps only; neither the VM nor the attacker uses it.
func (s *Space) DebugRead(addr uint64, buf []byte) error {
	for done := 0; done < len(buf); {
		p, ok := s.pages[addr>>PageShift]
		if !ok {
			return &Fault{Addr: addr, Access: AccessRead, Unmapped: true}
		}
		off := int(addr & PageMask)
		n := PageSize - off
		if rem := len(buf) - done; n > rem {
			n = rem
		}
		copy(buf[done:done+n], p.ensure()[off:off+n])
		done += n
		addr += uint64(n)
	}
	return nil
}

// DebugRead64 is DebugRead for a single word.
func (s *Space) DebugRead64(addr uint64) (uint64, error) {
	var b [8]byte
	if err := s.DebugRead(addr, b[:]); err != nil {
		return 0, err
	}
	return le64(b[:]), nil
}

// Slab exposes the backing bytes and permission of the page containing
// addr, for fast word access by the VM (which performs its own permission
// checks and caches the slab in a software TLB). The returned slice aliases
// page storage: callers must invalidate cached slabs after Unmap/Protect.
func (s *Space) Slab(addr uint64) ([]byte, Perm, bool) {
	p, ok := s.pages[addr>>PageShift]
	if !ok {
		return nil, 0, false
	}
	return p.ensure(), p.perm, true
}

// RSSPages returns the current resident page count.
func (s *Space) RSSPages() int { return s.rssPages }

// MaxRSSPages returns the peak resident page count — the simulated maxrss
// rusage metric the paper's SPEC memory methodology reads (Section 6.2.5).
func (s *Space) MaxRSSPages() int { return s.maxRSSPages }

// RSSBytes returns the current resident set size in bytes.
func (s *Space) RSSBytes() uint64 { return uint64(s.rssPages) * PageSize }

// MaxRSSBytes returns the peak resident set size in bytes.
func (s *Space) MaxRSSBytes() uint64 { return uint64(s.maxRSSPages) * PageSize }

// Region describes one contiguous run of identically-permissioned pages.
type Region struct {
	Addr uint64
	Size uint64
	Perm Perm
}

// Regions returns the mapped regions sorted by address, coalescing adjacent
// pages with identical permissions — the simulated /proc/self/maps.
func (s *Space) Regions() []Region {
	if len(s.pages) == 0 {
		return nil
	}
	nums := make([]uint64, 0, len(s.pages))
	for n := range s.pages {
		nums = append(nums, n)
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	var out []Region
	for _, n := range nums {
		p := s.pages[n]
		addr := n << PageShift
		if len(out) > 0 {
			last := &out[len(out)-1]
			if last.Addr+last.Size == addr && last.Perm == p.perm {
				last.Size += PageSize
				continue
			}
		}
		out = append(out, Region{Addr: addr, Size: PageSize, Perm: p.perm})
	}
	return out
}

// AlignUp rounds v up to the next multiple of align (a power of two).
func AlignUp(v, align uint64) uint64 {
	return (v + align - 1) &^ (align - 1)
}

// AlignDown rounds v down to a multiple of align (a power of two).
func AlignDown(v, align uint64) uint64 {
	return v &^ (align - 1)
}

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func put64(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
