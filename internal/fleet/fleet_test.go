package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"r2c/internal/defense"
	"r2c/internal/exec"
	"r2c/internal/incident"
	"r2c/internal/telemetry"
	"r2c/internal/tir"
	"r2c/internal/vm"
	"r2c/internal/workload"
)

// runFleet executes one fleet run and returns the report, the deterministic
// half as JSON, the incident timeline as JSON, and the sampled time-series
// rings as JSON (the -timeseries-out artifact).
func runFleet(t *testing.T, o Options) (*Report, string, string, string) {
	t.Helper()
	ilog := incident.NewLog()
	o.Incidents = ilog
	fl, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fl.Serve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sim, err := json.Marshal(rep.Sim)
	if err != nil {
		t.Fatal(err)
	}
	var inc bytes.Buffer
	if err := ilog.WriteJSON(&inc); err != nil {
		t.Fatal(err)
	}
	var series bytes.Buffer
	if err := fl.Series().WriteJSON(&series); err != nil {
		t.Fatal(err)
	}
	return rep, string(sim), inc.String(), series.String()
}

func webOptions(jobs int) Options {
	return Options{
		Module:   workload.NginxRequest(),
		Cfg:      defense.R2CFull(),
		Prof:     vm.EPYCRome(),
		Variants: 4,
		BaseSeed: 1,
		Requests: 300,
		MVEE:     2,
		Attack: Schedule{
			Start: 40, Every: 20,
			Mode: ModeOverwrite, Target: "page64", Value: 0xbadc0ffee,
			Adaptive: true,
		},
		Eng: exec.New(jobs, nil),
	}
}

// TestSupervisedFleetDetectsAndHeals drives the whole closed loop under an
// adaptive attacker: every landed corruption must be detected (no silent
// corruptions), detection must quarantine, and every quarantined variant
// must re-enter rotation re-diversified.
func TestSupervisedFleetDetectsAndHeals(t *testing.T) {
	rep, _, inc, series := runFleet(t, webOptions(0))
	s := rep.Sim
	if s.AttackRequests == 0 || s.InjectionsAccepted == 0 {
		t.Fatalf("attack schedule never landed: %+v", s)
	}
	if s.Detections["divergence"] == 0 {
		t.Fatalf("no divergence detections under attack: %+v", s.Detections)
	}
	if s.SilentCorruptions != 0 || s.AttackerWins != 0 {
		t.Fatalf("supervised fleet let corruption through: %d silent, %d wins", s.SilentCorruptions, s.AttackerWins)
	}
	if s.Quarantines == 0 || s.Recoveries != s.Quarantines {
		t.Fatalf("heal loop did not close: %d quarantines, %d recoveries", s.Quarantines, s.Recoveries)
	}
	if rep.Wall.Rebuilds == 0 || rep.Wall.ReplaceMeanSeconds <= 0 {
		t.Fatalf("no wall time-to-replace measured: %+v", rep.Wall)
	}
	if s.ThroughputRPS <= 0 || s.LatencyP99 < s.LatencyP50 {
		t.Fatalf("serving numbers inconsistent: %+v", s)
	}
	served := 0
	for _, sl := range s.Slots {
		served += sl.Served
	}
	// MVEE×2 runs every request on two variants.
	if served != 2*s.Requests {
		t.Fatalf("slot serve counts sum to %d, want %d", served, 2*s.Requests)
	}
	if !bytes.Contains([]byte(inc), []byte(`"kind": "divergence"`)) {
		t.Fatal("incident timeline carries no divergence records")
	}
	// The run samples its trajectory: the core fleet series must be present
	// with real points.
	var snap telemetry.SeriesSnapshot
	if err := json.Unmarshal([]byte(series), &snap); err != nil {
		t.Fatalf("series JSON: %v", err)
	}
	byName := map[string]int{}
	for _, sd := range snap.Series {
		byName[sd.Name] = len(sd.Points)
	}
	for _, name := range []string{"fleet.served", "fleet.throughput.rps", "fleet.sojourn.p99", "fleet.quarantines"} {
		if byName[name] < 2 {
			t.Errorf("series %s has %d points, want >= 2 (all series: %v)", name, byName[name], byName)
		}
	}
}

// TestFleetDeterministicAcrossJobs pins the width-determinism contract: the
// simulated-domain report and the incident timeline are byte-identical
// whether replacement builds run serially or on a wide pool.
func TestFleetDeterministicAcrossJobs(t *testing.T) {
	_, sim1, inc1, ts1 := runFleet(t, webOptions(1))
	_, sim8, inc8, ts8 := runFleet(t, webOptions(8))
	if sim1 != sim8 {
		t.Errorf("sim report differs between -jobs 1 and -jobs 8:\n%s\nvs\n%s", sim1, sim8)
	}
	if inc1 != inc8 {
		t.Error("incident timeline differs between -jobs 1 and -jobs 8")
	}
	if ts1 != ts8 {
		t.Error("time-series rings differ between -jobs 1 and -jobs 8")
	}
}

// TestSingleVariantAttackIsSilent is the control: without MVEE supervision
// the same data-only corruption produces wrong responses and no detection
// signal — the ground-truth gap the supervised fleet closes.
func TestSingleVariantAttackIsSilent(t *testing.T) {
	o := webOptions(0)
	o.MVEE = 0
	o.Requests = 120
	o.Attack.Adaptive = false
	rep, _, _, _ := runFleet(t, o)
	s := rep.Sim
	if len(s.Detections) != 0 || s.Quarantines != 0 {
		t.Fatalf("data-only corruption should be invisible to a single variant: %+v", s)
	}
	if s.SilentCorruptions == 0 {
		t.Fatalf("expected silent corruptions in the ground truth, got %+v", s)
	}
}

// boundedLoopModule reads its loop bound from a global, so an overwrite
// attack can hang the handler.
func boundedLoopModule() *tir.Module {
	mb := tir.NewModule("bounded")
	mb.AddGlobal("bound", 8, 4)
	main := mb.NewFunc("main", 0)
	bp := main.AddrGlobal("bound")
	n := main.Load(bp, 0)
	acc := main.Const(0)
	workload.LoopTo(main, 0, n, func(i tir.Reg) {
		main.BinTo(acc, tir.OpAdd, acc, i)
	})
	main.Output(acc)
	main.RetVoid()
	mb.SetEntry("main")
	return mb.MustBuild()
}

// TestHangDetectionQuarantines pins the liveness path end to end: a
// corruption that sends the handler into an unbounded loop exhausts the
// request fuel, is classified as a hang, quarantines the variant, and the
// incident log records it.
func TestHangDetectionQuarantines(t *testing.T) {
	o := Options{
		Module:   boundedLoopModule(),
		Cfg:      defense.R2CFull(),
		Prof:     vm.EPYCRome(),
		Variants: 3,
		BaseSeed: 9,
		Requests: 200,
		// Pin the arrival rate and quarantine window so the schedule extends
		// well past the hung request's fuel burn and its rejoin time — the
		// recovery must land inside the simulated run.
		RateRPS:        5e6,
		RebuildLatency: 2e-6,
		RequestFuel:    50_000,
		Attack: Schedule{
			Start: 10, Every: 20,
			Mode: ModeOverwrite, Target: "bound", Value: 1 << 40,
		},
		Eng: exec.New(0, nil),
	}
	rep, _, inc, _ := runFleet(t, o)
	s := rep.Sim
	if s.Detections["hang"] == 0 {
		t.Fatalf("hung request not detected: %+v", s.Detections)
	}
	if s.Quarantines == 0 || s.Recoveries == 0 {
		t.Fatalf("hang did not quarantine and heal: %+v", s)
	}
	if !bytes.Contains([]byte(inc), []byte(`"kind": "hang"`)) {
		t.Fatal("incident timeline carries no hang records")
	}
}

// TestDriftEarlyWarningPrecedesDivergence pins the tentpole ordering: a
// variant whose service time compounds upward (injected Degrade) trips the
// EWMA drift early warning strictly before the attack schedule produces the
// first output-level divergence — the temporal detector leads the
// correctness detector.
func TestDriftEarlyWarningPrecedesDivergence(t *testing.T) {
	o := webOptions(0)
	o.Degrade = Degrade{Slot: 0, After: 5, Growth: 1.3}
	// Push the attack late so the timing anomaly has the stage to itself
	// first; the divergence records then bound the drift warning from above.
	o.Attack.Start = 80
	rep, _, inc, _ := runFleet(t, o)
	if rep.Sim.DriftWarnings == 0 {
		t.Fatalf("degraded slot raised no drift warnings: %+v", rep.Sim)
	}
	if rep.Sim.Detections["divergence"] == 0 {
		t.Fatalf("attack produced no divergence to compare against: %+v", rep.Sim.Detections)
	}

	var tl incident.Timeline
	if err := json.Unmarshal([]byte(inc), &tl); err != nil {
		t.Fatalf("incidents JSON: %v", err)
	}
	firstDrift, firstDiv := -1, -1
	for _, r := range tl.Incidents {
		switch r.Kind {
		case "drift":
			if firstDrift < 0 || r.Trial < firstDrift {
				firstDrift = r.Trial
			}
		case "divergence":
			if firstDiv < 0 || r.Trial < firstDiv {
				firstDiv = r.Trial
			}
		}
	}
	if firstDrift < 0 {
		t.Fatal("no drift incident records in the timeline")
	}
	if firstDiv < 0 {
		t.Fatal("no divergence incident records in the timeline")
	}
	if firstDrift >= firstDiv {
		t.Fatalf("drift warning at trial %d did not precede first divergence at trial %d", firstDrift, firstDiv)
	}
}

// TestDegradeRunStaysCorrect: the synthetic slowdown perturbs timing only —
// the supervised outputs still agree, so it must not add detections beyond
// what the attack schedule causes on its own.
func TestDegradeRunStaysCorrect(t *testing.T) {
	o := webOptions(0)
	o.Attack = Schedule{} // benign traffic, pure degradation
	o.Degrade = Degrade{Slot: 1, After: 10, Growth: 1.2}
	rep, _, _, _ := runFleet(t, o)
	if n := len(rep.Sim.Detections); n != 0 {
		t.Fatalf("degradation alone must not trip output detectors: %+v", rep.Sim.Detections)
	}
	if rep.Sim.Quarantines != 0 {
		t.Fatalf("degradation alone must not quarantine: %+v", rep.Sim)
	}
	if rep.Sim.DriftWarnings == 0 {
		t.Fatal("degradation did not raise a drift warning")
	}
}

// TestHealthThroughQuarantine drives Health() through the full degradation
// cycle and pins the /healthz contract on a live ops server: 200 "ok" while
// all variants serve, 503 "degraded" while a quarantine's heal is in flight,
// and 200 again after the rejoin.
func TestHealthThroughQuarantine(t *testing.T) {
	o := webOptions(0)
	ilog := incident.NewLog()
	o.Incidents = ilog
	fl, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := telemetry.ServeOpsSources("127.0.0.1:0", telemetry.OpsSources{Health: fl.Health})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := &http.Client{Timeout: 5 * time.Second}
	defer client.CloseIdleConnections()
	get := func() (int, string) {
		t.Helper()
		resp, err := client.Get(srv.URL() + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if err := fl.buildInitial(context.Background()); err != nil {
		t.Fatal(err)
	}
	if code, body := get(); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthy fleet /healthz = %d %q", code, body)
	}

	// Quarantine one slot the way a detection would; the heal build runs in
	// the background while /healthz reports degraded.
	fl.rep = &Report{}
	fl.quarantine(fl.slots[2], 1.0, 0.5)
	if code, body := get(); code != 503 || !strings.Contains(body, "degraded: 1 variant(s) quarantined") {
		t.Fatalf("degraded fleet /healthz = %d %q", code, body)
	}

	// Rejoin at a time past the window; health recovers.
	replaceH := telemetry.NewLogHist(telemetry.LatencyScheme)
	if err := fl.rejoinDue(2.0, 0.5, replaceH); err != nil {
		t.Fatal(err)
	}
	if code, body := get(); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("recovered fleet /healthz = %d %q", code, body)
	}
}

// TestRerollHealKeepsLeakedAddressesValid is the fleet-level "more dynamism
// is less effective" ablation: against a non-adaptive attacker, fresh-seed
// rebuilds obsolete the leak after the first heal, while BTRA-only rerolls
// leave the leaked layout valid — the attacker keeps landing and the fleet
// churns through quarantines forever.
func TestRerollHealKeepsLeakedAddressesValid(t *testing.T) {
	base := func() Options {
		o := webOptions(0)
		o.Requests = 200
		o.Attack.Start = 20
		o.Attack.Adaptive = false
		return o
	}
	ro := base()
	ro.Heal = HealReroll
	reroll, _, _, _ := runFleet(t, ro)
	rebuild, _, _, _ := runFleet(t, base())
	if reroll.Sim.Detections["divergence"] <= rebuild.Sim.Detections["divergence"] {
		t.Fatalf("reroll healing should keep the leak alive: reroll %v vs rebuild %v",
			reroll.Sim.Detections, rebuild.Sim.Detections)
	}
	if rebuild.Sim.SilentCorruptions != 0 || reroll.Sim.SilentCorruptions != 0 {
		t.Fatal("supervised runs must not pass corrupted output")
	}
}
