package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"r2c/internal/defense"
	"r2c/internal/exec"
	"r2c/internal/incident"
	"r2c/internal/tir"
	"r2c/internal/vm"
	"r2c/internal/workload"
)

// runFleet executes one fleet run and returns the report, the deterministic
// half as JSON, and the incident timeline as JSON.
func runFleet(t *testing.T, o Options) (*Report, string, string) {
	t.Helper()
	ilog := incident.NewLog()
	o.Incidents = ilog
	fl, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fl.Serve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sim, err := json.Marshal(rep.Sim)
	if err != nil {
		t.Fatal(err)
	}
	var inc bytes.Buffer
	if err := ilog.WriteJSON(&inc); err != nil {
		t.Fatal(err)
	}
	return rep, string(sim), inc.String()
}

func webOptions(jobs int) Options {
	return Options{
		Module:   workload.NginxRequest(),
		Cfg:      defense.R2CFull(),
		Prof:     vm.EPYCRome(),
		Variants: 4,
		BaseSeed: 1,
		Requests: 300,
		MVEE:     2,
		Attack: Schedule{
			Start: 40, Every: 20,
			Mode: ModeOverwrite, Target: "page64", Value: 0xbadc0ffee,
			Adaptive: true,
		},
		Eng: exec.New(jobs, nil),
	}
}

// TestSupervisedFleetDetectsAndHeals drives the whole closed loop under an
// adaptive attacker: every landed corruption must be detected (no silent
// corruptions), detection must quarantine, and every quarantined variant
// must re-enter rotation re-diversified.
func TestSupervisedFleetDetectsAndHeals(t *testing.T) {
	rep, _, inc := runFleet(t, webOptions(0))
	s := rep.Sim
	if s.AttackRequests == 0 || s.InjectionsAccepted == 0 {
		t.Fatalf("attack schedule never landed: %+v", s)
	}
	if s.Detections["divergence"] == 0 {
		t.Fatalf("no divergence detections under attack: %+v", s.Detections)
	}
	if s.SilentCorruptions != 0 || s.AttackerWins != 0 {
		t.Fatalf("supervised fleet let corruption through: %d silent, %d wins", s.SilentCorruptions, s.AttackerWins)
	}
	if s.Quarantines == 0 || s.Recoveries != s.Quarantines {
		t.Fatalf("heal loop did not close: %d quarantines, %d recoveries", s.Quarantines, s.Recoveries)
	}
	if rep.Wall.Rebuilds == 0 || rep.Wall.ReplaceMeanSeconds <= 0 {
		t.Fatalf("no wall time-to-replace measured: %+v", rep.Wall)
	}
	if s.ThroughputRPS <= 0 || s.LatencyP99 < s.LatencyP50 {
		t.Fatalf("serving numbers inconsistent: %+v", s)
	}
	served := 0
	for _, sl := range s.Slots {
		served += sl.Served
	}
	// MVEE×2 runs every request on two variants.
	if served != 2*s.Requests {
		t.Fatalf("slot serve counts sum to %d, want %d", served, 2*s.Requests)
	}
	if !bytes.Contains([]byte(inc), []byte(`"kind": "divergence"`)) {
		t.Fatal("incident timeline carries no divergence records")
	}
}

// TestFleetDeterministicAcrossJobs pins the width-determinism contract: the
// simulated-domain report and the incident timeline are byte-identical
// whether replacement builds run serially or on a wide pool.
func TestFleetDeterministicAcrossJobs(t *testing.T) {
	_, sim1, inc1 := runFleet(t, webOptions(1))
	_, sim4, inc4 := runFleet(t, webOptions(4))
	if sim1 != sim4 {
		t.Errorf("sim report differs between -jobs 1 and -jobs 4:\n%s\nvs\n%s", sim1, sim4)
	}
	if inc1 != inc4 {
		t.Error("incident timeline differs between -jobs 1 and -jobs 4")
	}
}

// TestSingleVariantAttackIsSilent is the control: without MVEE supervision
// the same data-only corruption produces wrong responses and no detection
// signal — the ground-truth gap the supervised fleet closes.
func TestSingleVariantAttackIsSilent(t *testing.T) {
	o := webOptions(0)
	o.MVEE = 0
	o.Requests = 120
	o.Attack.Adaptive = false
	rep, _, _ := runFleet(t, o)
	s := rep.Sim
	if len(s.Detections) != 0 || s.Quarantines != 0 {
		t.Fatalf("data-only corruption should be invisible to a single variant: %+v", s)
	}
	if s.SilentCorruptions == 0 {
		t.Fatalf("expected silent corruptions in the ground truth, got %+v", s)
	}
}

// boundedLoopModule reads its loop bound from a global, so an overwrite
// attack can hang the handler.
func boundedLoopModule() *tir.Module {
	mb := tir.NewModule("bounded")
	mb.AddGlobal("bound", 8, 4)
	main := mb.NewFunc("main", 0)
	bp := main.AddrGlobal("bound")
	n := main.Load(bp, 0)
	acc := main.Const(0)
	workload.LoopTo(main, 0, n, func(i tir.Reg) {
		main.BinTo(acc, tir.OpAdd, acc, i)
	})
	main.Output(acc)
	main.RetVoid()
	mb.SetEntry("main")
	return mb.MustBuild()
}

// TestHangDetectionQuarantines pins the liveness path end to end: a
// corruption that sends the handler into an unbounded loop exhausts the
// request fuel, is classified as a hang, quarantines the variant, and the
// incident log records it.
func TestHangDetectionQuarantines(t *testing.T) {
	o := Options{
		Module:   boundedLoopModule(),
		Cfg:      defense.R2CFull(),
		Prof:     vm.EPYCRome(),
		Variants: 3,
		BaseSeed: 9,
		Requests: 200,
		// Pin the arrival rate and quarantine window so the schedule extends
		// well past the hung request's fuel burn and its rejoin time — the
		// recovery must land inside the simulated run.
		RateRPS:        5e6,
		RebuildLatency: 2e-6,
		RequestFuel:    50_000,
		Attack: Schedule{
			Start: 10, Every: 20,
			Mode: ModeOverwrite, Target: "bound", Value: 1 << 40,
		},
		Eng: exec.New(0, nil),
	}
	rep, _, inc := runFleet(t, o)
	s := rep.Sim
	if s.Detections["hang"] == 0 {
		t.Fatalf("hung request not detected: %+v", s.Detections)
	}
	if s.Quarantines == 0 || s.Recoveries == 0 {
		t.Fatalf("hang did not quarantine and heal: %+v", s)
	}
	if !bytes.Contains([]byte(inc), []byte(`"kind": "hang"`)) {
		t.Fatal("incident timeline carries no hang records")
	}
}

// TestRerollHealKeepsLeakedAddressesValid is the fleet-level "more dynamism
// is less effective" ablation: against a non-adaptive attacker, fresh-seed
// rebuilds obsolete the leak after the first heal, while BTRA-only rerolls
// leave the leaked layout valid — the attacker keeps landing and the fleet
// churns through quarantines forever.
func TestRerollHealKeepsLeakedAddressesValid(t *testing.T) {
	base := func() Options {
		o := webOptions(0)
		o.Requests = 200
		o.Attack.Start = 20
		o.Attack.Adaptive = false
		return o
	}
	ro := base()
	ro.Heal = HealReroll
	reroll, _, _ := runFleet(t, ro)
	rebuild, _, _ := runFleet(t, base())
	if reroll.Sim.Detections["divergence"] <= rebuild.Sim.Detections["divergence"] {
		t.Fatalf("reroll healing should keep the leak alive: reroll %v vs rebuild %v",
			reroll.Sim.Detections, rebuild.Sim.Detections)
	}
	if rebuild.Sim.SilentCorruptions != 0 || reroll.Sim.SilentCorruptions != 0 {
		t.Fatal("supervised runs must not pass corrupted output")
	}
}
