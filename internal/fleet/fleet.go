// Package fleet runs R2C as a long-lived multi-variant serving service —
// the closed loop the paper's Section 7.3 and the "instant re-randomization"
// principle point at: an open-loop request generator drives simulated
// traffic across N diversified variants of one workload, every request is
// screened for detection signals (booby traps, faults, liveness hangs, and
// — in supervised mode — MVEE divergence), and any signal quarantines the
// variant and re-diversifies it live with a fresh seed while the rest of
// the fleet keeps serving.
//
// Time is split into two domains. The *simulated* domain is a deterministic
// discrete-event simulation: request arrivals follow a Poisson process from
// the repository's seeded RNG, service times are the VM's modeled seconds,
// and queueing, quarantine windows and rejoin times all live on that clock —
// so throughput, tail latency and every incident record are byte-identical
// across runs and -jobs widths. The *wall-clock* domain is where the real
// re-diversification work happens: a quarantined variant's replacement
// image is built concurrently (through the exec engine's content-addressed
// cache) while the serve loop keeps executing requests, and the measured
// wall seconds per replacement are the fleet's real time-to-replace.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"time"

	"r2c/internal/attack"
	"r2c/internal/defense"
	"r2c/internal/exec"
	"r2c/internal/image"
	"r2c/internal/incident"
	"r2c/internal/mvee"
	"r2c/internal/rng"
	"r2c/internal/rt"
	"r2c/internal/sim"
	"r2c/internal/telemetry"
	"r2c/internal/tir"
	"r2c/internal/vm"
)

// Attack injection modes.
const (
	// ModeOverwrite writes Value at the Target data symbol's address — the
	// plain AOCR data-corruption payload. Under MVEE supervision the same
	// absolute write lands differently in every variant and diverges; in
	// single-variant mode it is silent (the ground-truth counter the
	// report surfaces as the MVEE's value).
	ModeOverwrite = "overwrite"
	// ModeHijack replays the attack victim's control-flow hijack: unlock
	// secret_key with the magic argument and repoint admin_ptr at
	// secret_disclose, using addresses leaked from the pinned variant.
	ModeHijack = "hijack"
)

// Heal strategies for a quarantined variant.
const (
	// HealRebuild builds a replacement image with a fresh diversification
	// seed — full re-diversification, obsoleting every address the
	// attacker leaked (the "instant re-randomization" response).
	HealRebuild = "rebuild"
	// HealReroll re-randomizes only the BTRA artifacts of the existing
	// image in place (rt.RerollBTRAs persisted into the image). Cheap, but
	// the layout survives, so leaked code/data addresses stay valid — the
	// paper's "more dynamism is less effective" ablation as a fleet
	// response policy.
	HealReroll = "reroll"
)

// Schedule scripts the attack pressure: from request Start, every Every-th
// request carries a corrupting payload against the pinned victim variant.
type Schedule struct {
	// Start is the first attacked request index; Every the attack period.
	// Every <= 0 or an empty Mode disables injection.
	Start int
	Every int
	// Mode is ModeOverwrite or ModeHijack.
	Mode string
	// Target is the data symbol ModeOverwrite corrupts; Value what it
	// writes there.
	Target string
	Value  uint64
	// Adaptive lets the attacker re-leak the victim's layout after a heal
	// (a repeated-leak JIT-ROP-style adversary); otherwise the knowledge
	// from the first leak goes stale the moment the variant re-diversifies.
	Adaptive bool
}

// active reports whether request req carries the corrupting payload.
func (s Schedule) active(req int) bool {
	return s.Mode != "" && s.Every > 0 && req >= s.Start && (req-s.Start)%s.Every == 0
}

// Degrade scripts a deterministic synthetic degradation of one variant: from
// request After on, slot Slot's modeled service seconds are multiplied by
// Growth^(req-After) — a compounding slowdown modeling a resource leak or a
// data-only corruption that costs time instead of correctness. It is the
// fault-injection counterpart of Schedule for the *temporal* detectors: the
// EWMA drift early warning and the windowed alert rules see it long before
// any output diverges. Growth <= 1 disables it.
type Degrade struct {
	Slot   int
	After  int
	Growth float64
}

// factorFor returns the service-time multiplier for slot id at request req.
// The exponent is capped so a long schedule cannot overflow the multiplier
// into Inf (which would poison every downstream histogram).
func (d Degrade) factorFor(id, req int) float64 {
	if d.Growth <= 1 || id != d.Slot || req < d.After {
		return 1
	}
	f := math.Pow(d.Growth, float64(req-d.After))
	if f > 1e4 {
		return 1e4
	}
	return f
}

// Options configures a fleet run.
type Options struct {
	Module *tir.Module
	Cfg    defense.Config
	Prof   *vm.Profile

	// Variants is the fleet size; BaseSeed seeds variant i with BaseSeed+i
	// and replacement builds with fresh seeds above that range.
	Variants int
	BaseSeed uint64

	// Requests is how many requests the generator emits. RateRPS is the
	// open-loop Poisson arrival rate in simulated requests/second; <= 0
	// auto-calibrates to ~70% of the fleet's measured service capacity.
	Requests int
	RateRPS  float64

	// MVEE >= 2 supervises every request across that many variants and
	// adds divergence detection; otherwise each request runs on a single
	// variant with trap/fault/hang detection only.
	MVEE int
	// SliceInstrs/MaxSlices bound the supervisor's lockstep slices (MVEE
	// mode); RequestFuel bounds a single-variant request's instructions.
	// Zeros pick defaults sized for single-request handlers.
	SliceInstrs int
	MaxSlices   int
	RequestFuel uint64

	// Heal selects the quarantine response (HealRebuild default).
	// RebuildLatency is the simulated seconds a quarantined variant stays
	// out of rotation; <= 0 derives it from the measured service time.
	Heal           string
	RebuildLatency float64

	Attack Schedule

	// Degrade scripts a synthetic per-variant slowdown (see Degrade) — the
	// injected degradation the drift detector and windowed alerts exist to
	// catch. Zero value disables it.
	Degrade Degrade

	// SampleEvery is the simulated seconds between time-series ticks. 0
	// auto-derives ~240 ticks across the expected schedule; < 0 disables
	// sampling. Ticks live on the simulated clock, so the sampled series
	// are byte-identical at any -jobs width. SeriesCap bounds each ring
	// (0 = telemetry.DefaultSeriesCap).
	SampleEvery float64
	SeriesCap   int

	// Eng runs replacement builds (and the initial fan-out) through the
	// worker pool and build cache. Required.
	Eng *exec.Engine
	// Obs receives fleet metrics; Incidents detection records. Either may
	// be nil.
	Obs       *telemetry.Observer
	Incidents *incident.Log
	// Campaign labels incident records ("" = "fleet/<module>").
	Campaign string
}

// Slot states.
const (
	stateServing     = "serving"
	stateQuarantined = "quarantined"
	stateFailed      = "failed"
)

// slot is one variant position in the fleet. The serve loop owns all
// fields; the fleet mutex guards the subset the live view reads.
type slot struct {
	id   int
	seed uint64
	gen  int
	img  *image.Image

	state    string
	freeAt   float64 // simulated time the variant is next idle
	rejoinAt float64 // simulated time a quarantined variant re-enters rotation
	served   int
	quars    int

	// lastSvc is the variant's most recent per-request modeled seconds;
	// drift is its EWMA anomaly tracker. Both reset when a heal rejoins —
	// a fresh image has a fresh timing baseline.
	lastSvc float64
	drift   driftState

	heal     chan healDone
	wallQuar time.Time
}

// driftState is one variant's EWMA sojourn model: exponentially-weighted
// mean and variance of its per-request service seconds, plus the one-shot
// fired latch (one early warning per slot generation, not a storm).
type driftState struct {
	mean, varz float64
	n          int
	fired      bool
}

// EWMA drift detector tuning: the smoothing constant, the samples a fresh
// baseline needs before z-scores mean anything, and the z threshold. The
// variance floor (relative to the mean) keeps z finite on deterministic
// workloads whose benign service time never varies at all.
const (
	driftAlpha   = 0.3
	driftWarmup  = 4
	driftZ       = 6.0
	driftSdFloor = 1e-3
)

type healDone struct {
	img  *image.Image
	seed uint64
	err  error
}

type write struct{ addr, value uint64 }

// Fleet is a serving fleet mid-run. Create with New, drive with Serve;
// Live may be polled from other goroutines (the ops endpoint) at any time.
type Fleet struct {
	o        Options
	campaign string
	width    int // slots per request: 1 or o.MVEE

	mu          sync.Mutex
	slots       []*slot
	served      int
	simClock    float64
	quarantines int
	recoveries  int

	// Attacker state: the leaked write list, the slot it is pinned to and
	// the generation it was leaked from.
	atkWrites []write
	atkSlot   int
	atkGen    int
	leaks     int

	nextSeed uint64
	golden   []uint64
	goldenS  float64
	rep      *Report

	// series collects the deterministic sim-tick trajectories (/timeseries,
	// -timeseries-out, windowed alerts). It has its own lock, so the ops
	// endpoint snapshots it without touching the fleet mutex.
	series *telemetry.SeriesSet
}

// New validates the options and prepares a fleet (no builds yet — Serve
// performs the initial fan-out so the ops endpoint can watch it).
func New(o Options) (*Fleet, error) {
	if o.Module == nil || o.Prof == nil || o.Eng == nil {
		return nil, errors.New("fleet: Module, Prof and Eng are required")
	}
	if o.Variants < 2 {
		return nil, fmt.Errorf("fleet: need at least two variants, got %d", o.Variants)
	}
	if o.MVEE == 1 || o.MVEE < 0 {
		return nil, fmt.Errorf("fleet: MVEE width must be 0 (single-variant) or >= 2, got %d", o.MVEE)
	}
	if o.MVEE > o.Variants {
		return nil, fmt.Errorf("fleet: MVEE width %d exceeds fleet size %d", o.MVEE, o.Variants)
	}
	if o.Requests <= 0 {
		return nil, fmt.Errorf("fleet: need a positive request count, got %d", o.Requests)
	}
	switch o.Heal {
	case "":
		o.Heal = HealRebuild
	case HealRebuild:
	case HealReroll:
		if o.Cfg.BTRAPoolSize <= 0 {
			return nil, fmt.Errorf("fleet: heal %q needs a booby-trap pool (config %s has none)", HealReroll, o.Cfg.Name)
		}
	default:
		return nil, fmt.Errorf("fleet: unknown heal strategy %q", o.Heal)
	}
	switch o.Attack.Mode {
	case "", ModeOverwrite, ModeHijack:
	default:
		return nil, fmt.Errorf("fleet: unknown attack mode %q", o.Attack.Mode)
	}
	if o.Attack.Mode == ModeOverwrite && o.Attack.Every > 0 && o.Attack.Target == "" {
		return nil, errors.New("fleet: overwrite attack needs a target symbol")
	}
	if o.Degrade.Growth != 0 && o.Degrade.Growth <= 1 {
		return nil, fmt.Errorf("fleet: degrade growth must exceed 1 to degrade, got %g", o.Degrade.Growth)
	}
	if o.Degrade.Growth > 1 && (o.Degrade.Slot < 0 || o.Degrade.Slot >= o.Variants) {
		return nil, fmt.Errorf("fleet: degrade slot %d out of range [0,%d)", o.Degrade.Slot, o.Variants)
	}
	if o.SliceInstrs <= 0 {
		o.SliceInstrs = 100_000
	}
	if o.MaxSlices <= 0 {
		o.MaxSlices = 50
	}
	if o.RequestFuel == 0 {
		o.RequestFuel = 5_000_000
	}
	f := &Fleet{
		o:        o,
		campaign: o.Campaign,
		width:    1,
		atkSlot:  -1,
		atkGen:   -1,
		nextSeed: o.BaseSeed + uint64(o.Variants),
	}
	if o.MVEE >= 2 {
		f.width = o.MVEE
	}
	if f.campaign == "" {
		f.campaign = "fleet/" + o.Module.Name
	}
	f.series = telemetry.NewSeriesSet(o.SeriesCap, o.Obs)
	return f, nil
}

// Series exposes the fleet's time-series rings for the ops endpoint and
// -timeseries-out. Safe to snapshot concurrently with Serve.
func (f *Fleet) Series() *telemetry.SeriesSet { return f.series }

// Health returns "" while every variant is serving, and a degradation
// reason while any is quarantined (heal in flight) or failed — the /healthz
// signal a load balancer would use to drain a degraded fleet. Safe to call
// concurrently with Serve.
func (f *Fleet) Health() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	quar, failed := 0, 0
	for _, s := range f.slots {
		switch s.state {
		case stateQuarantined:
			quar++
		case stateFailed:
			failed++
		}
	}
	switch {
	case failed > 0:
		return fmt.Sprintf("%d variant(s) failed permanently", failed)
	case quar > 0:
		return fmt.Sprintf("%d variant(s) quarantined, heal in flight", quar)
	}
	return ""
}

// buildInitial links the fleet's starting images. Rebuild-healed fleets
// share the engine's content-addressed cache; reroll-healed fleets build
// private images, because rerolling mutates the image in place and a cached
// image is shared with every other caller of the same (module, cfg, seed).
func (f *Fleet) buildInitial(ctx context.Context) error {
	o := f.o
	imgs := make([]*image.Image, o.Variants)
	if o.Heal == HealReroll {
		for i := range imgs {
			img, err := sim.BuildImage(o.Module, o.Cfg, o.BaseSeed+uint64(i))
			if err != nil {
				return fmt.Errorf("fleet: variant %d: %w", i, err)
			}
			imgs[i] = img
		}
	} else {
		seeds := make([]uint64, o.Variants)
		for i := range seeds {
			seeds[i] = o.BaseSeed + uint64(i)
		}
		var err error
		imgs, err = o.Eng.BuildImages(ctx, o.Module, o.Cfg, seeds)
		if err != nil {
			return fmt.Errorf("fleet: initial build: %w", err)
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.slots = make([]*slot, o.Variants)
	for i, img := range imgs {
		f.slots[i] = &slot{id: i, seed: o.BaseSeed + uint64(i), img: img, state: stateServing}
	}
	return nil
}

// Serve runs the whole request schedule and returns the report. The serve
// loop is a single goroutine over the simulated clock; replacement builds
// run concurrently on their own goroutines and are joined at rejoin time.
func (f *Fleet) Serve(ctx context.Context) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o := f.o
	wallStart := time.Now()
	if err := f.buildInitial(ctx); err != nil {
		return nil, err
	}

	// Golden run: the differential property says every benign variant
	// agrees on output, so one clean run of variant 0 yields both the
	// ground-truth response and the reference service time.
	gproc, err := sim.NewProcessFromImage(f.slots[0].img, f.slots[0].seed, o.Obs)
	if err != nil {
		return nil, fmt.Errorf("fleet: golden load: %w", err)
	}
	gres, err := sim.ExecProcessCtx(ctx, gproc, o.Prof, o.Obs, o.RequestFuel)
	if err != nil {
		return nil, fmt.Errorf("fleet: golden run: %w", err)
	}
	f.golden = append([]uint64(nil), gres.Output...)
	f.goldenS = gres.Seconds(o.Prof)

	if o.Attack.active(o.Attack.Start) { // attack configured: resolve once to fail fast
		if _, err := resolveWrites(o.Attack, f.slots[0].img); err != nil {
			return nil, err
		}
	}

	rate := o.RateRPS
	if rate <= 0 {
		// Auto-calibrate the open-loop rate to ~70% of capacity: the fleet
		// serves Variants/width requests concurrently, each costing the
		// golden service time (MVEE lockstep occupies width slots per
		// request).
		rate = 0.7 * float64(o.Variants) / (float64(f.width) * f.goldenS)
	}
	rebuildLat := o.RebuildLatency
	if rebuildLat <= 0 {
		// Default quarantine window: ~20 request service times, long
		// enough that degraded capacity is visible in the tail latency.
		rebuildLat = 20 * f.goldenS
	}
	// Time-series tick cadence: ticks live on the simulated clock, emitted
	// from the serve loop right after it advances, so every sampled value is
	// a deterministic function of the schedule — never of -jobs width.
	tickEvery := o.SampleEvery
	if tickEvery == 0 {
		// Auto: ~240 ticks across the expected makespan (sparkline density).
		tickEvery = float64(o.Requests) / rate / 240
	}
	nextTick := tickEvery

	arrivals := rng.New(o.BaseSeed ^ 0xf1ee7a27c0ffee42)
	// With an observer the histograms live in its registry (exported via
	// /metrics and -metrics-out); without one the fleet still needs them
	// for the report's quantiles, so it owns private instances.
	hist := func(name string) *telemetry.LogHist {
		if h := o.Obs.LogHist(name, telemetry.LatencyScheme); h != nil {
			return h
		}
		return telemetry.NewLogHist(telemetry.LatencyScheme)
	}
	sojournH := hist("fleet.request.seconds")
	serviceH := hist("fleet.service.seconds")
	replaceH := hist("fleet.replace.wall.seconds")

	rep := &Report{}
	rep.Sim.Workload = o.Module.Name
	rep.Sim.Config = o.Cfg.Name
	rep.Sim.Variants = o.Variants
	rep.Sim.MVEEWidth = o.MVEE
	rep.Sim.Requests = o.Requests
	rep.Sim.RateRPS = rate
	rep.Sim.RebuildLatency = rebuildLat
	rep.Sim.GoldenServiceSeconds = f.goldenS
	rep.Sim.Detections = map[string]int{}
	f.rep = rep

	arrival := 0.0
	for i := 0; i < o.Requests; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Open-loop Poisson arrivals: the generator never waits for the
		// fleet, which is what makes overload visible as queueing delay.
		arrival += expInterarrival(arrivals, rate)

		if err := f.rejoinDue(arrival, rebuildLat, replaceH); err != nil {
			return nil, err
		}
		chosen, startFloor, stalled, err := f.dispatch(arrival, rebuildLat, replaceH)
		if err != nil {
			return nil, err
		}
		if stalled {
			rep.Sim.Stalls++
			f.o.Obs.Counter("fleet.stalls").Inc()
		}
		start := startFloor
		for _, s := range chosen {
			if s.freeAt > start {
				start = s.freeAt
			}
		}

		if err := f.serveRequest(ctx, i, chosen, arrival, start, rebuildLat, sojournH, serviceH); err != nil {
			return nil, err
		}
		for tickEvery > 0 && nextTick <= f.simClock {
			f.sampleTick(nextTick, sojournH)
			nextTick += tickEvery
		}
	}
	if tickEvery > 0 {
		// One final tick at the makespan, so exit-time windowed alerts and
		// -timeseries-out see the run's end state.
		f.sampleTick(f.simClock, sojournH)
	}

	// Join stragglers: replacement builds still in flight at shutdown are
	// waited for (their goroutines hold the engine), but slots past the end
	// of the schedule keep their final state in the report.
	f.mu.Lock()
	for _, s := range f.slots {
		if s.state == stateQuarantined {
			<-s.heal
		}
	}
	slots := make([]SlotReport, len(f.slots))
	for i, s := range f.slots {
		slots[i] = SlotReport{ID: s.id, Seed: s.seed, Gen: s.gen, State: s.state, Served: s.served, Quarantines: s.quars}
	}
	rep.Sim.Slots = slots
	rep.Sim.Quarantines = f.quarantines
	rep.Sim.Recoveries = f.recoveries
	rep.Sim.Leaks = f.leaks
	rep.Sim.MakespanSeconds = f.simClock
	f.mu.Unlock()

	if rep.Sim.MakespanSeconds > 0 {
		rep.Sim.ThroughputRPS = float64(o.Requests) / rep.Sim.MakespanSeconds
	}
	snap := sojournH.Snapshot()
	rep.Sim.LatencyP50 = snap.Quantile(0.50)
	rep.Sim.LatencyP90 = snap.Quantile(0.90)
	rep.Sim.LatencyP99 = snap.Quantile(0.99)
	if snap.Count > 0 {
		rep.Sim.LatencyMean = snap.Sum / float64(snap.Count)
	}
	rsnap := replaceH.Snapshot()
	rep.Wall.Rebuilds = int(rsnap.Count)
	if rsnap.Count > 0 {
		rep.Wall.ReplaceMeanSeconds = rsnap.Sum / float64(rsnap.Count)
		rep.Wall.ReplaceP99Seconds = rsnap.Quantile(0.99)
	}
	rep.Wall.ElapsedSeconds = time.Since(wallStart).Seconds()
	rep.Publish(o.Obs)
	return rep, nil
}

// sampleTick records one deterministic time-series tick at simulated time t.
// It runs on the serve goroutine and reads only serve-loop-owned state (the
// sojourn histogram is fed exclusively by this loop), so the resulting rings
// are byte-identical at any -jobs width. Wall-clock values (replace
// latency, cache economy) are deliberately absent: they belong to the live
// /metrics view, not to a deterministic artifact.
func (f *Fleet) sampleTick(t float64, sojournH *telemetry.LogHist) {
	f.series.Sample(t, "fleet.served", float64(f.served))
	if t > 0 {
		f.series.Sample(t, "fleet.throughput.rps", float64(f.served)/t)
	}
	snap := sojournH.Snapshot()
	f.series.Sample(t, "fleet.sojourn.p50", snap.Quantile(0.50))
	f.series.Sample(t, "fleet.sojourn.p99", snap.Quantile(0.99))
	f.series.Sample(t, "fleet.quarantines", float64(f.quarantines))
	f.series.Sample(t, "fleet.recoveries", float64(f.recoveries))
	f.series.Sample(t, "fleet.attacks", float64(f.rep.Sim.AttackRequests))
	f.series.Sample(t, "fleet.drift.warnings", float64(f.rep.Sim.DriftWarnings))
	quar := 0
	for _, s := range f.slots {
		if s.state == stateQuarantined {
			quar++
		}
	}
	f.series.Sample(t, "fleet.slots.quarantined", float64(quar))
	for _, s := range f.slots {
		if s.lastSvc > 0 {
			f.series.Sample(t, telemetry.Key("fleet.variant.sojourn", "slot", strconv.Itoa(s.id)), s.lastSvc)
		}
	}
}

// observeDrift feeds one per-variant service-time sample into the slot's
// EWMA model and emits the early-warning incident when the z-score clears
// the threshold — the temporal detector that sees a degrading variant long
// before its output diverges. One warning per slot generation: the latch
// (and the whole baseline) resets when a heal rejoins.
func (f *Fleet) observeDrift(s *slot, trial int, v float64) {
	d := &s.drift
	d.n++
	if d.n == 1 {
		d.mean, d.varz = v, 0
		return
	}
	sd := math.Sqrt(d.varz)
	if fl := driftSdFloor * math.Abs(d.mean); sd < fl {
		sd = fl
	}
	if sd < 1e-12 {
		sd = 1e-12
	}
	z := (v - d.mean) / sd
	if d.n > driftWarmup && !d.fired && math.Abs(z) >= driftZ {
		d.fired = true
		f.rep.Sim.DriftWarnings++
		f.o.Obs.Counter("fleet.drift.warnings").Inc()
		f.o.Obs.Emit("fleet-drift", map[string]any{"slot": s.id, "gen": s.gen, "z": z, "trial": trial})
		if f.o.Incidents != nil {
			rec := incident.Record{
				Campaign: f.campaign, Config: f.o.Cfg.Name, Seed: s.seed, Trial: trial,
				Kind: "drift", Via: "fleet-ewma",
				Origin: fmt.Sprintf("slot %d gen %d sojourn drift: service %.6gs vs ewma %.6gs (z=%.1f)",
					s.id, s.gen, v, d.mean, z),
			}
			rec.Seal()
			f.o.Incidents.Add(rec)
		}
	}
	delta := v - d.mean
	d.mean += driftAlpha * delta
	d.varz = (1 - driftAlpha) * (d.varz + driftAlpha*delta*delta)
}

// expInterarrival draws one exponential interarrival gap.
func expInterarrival(r *rng.RNG, rate float64) float64 {
	u := r.Float64()
	// -ln(1-u) with u in [0,1): never Inf because 1-u > 0.
	return -math.Log1p(-u) / rate
}

// dispatch picks the request's serving slots: the width earliest-available
// serving variants (ties by id). When fewer than width variants are
// serving, the earliest quarantined rejoins are pulled forward and the
// request stalls until they land.
func (f *Fleet) dispatch(arrival, rebuildLat float64, replaceH *telemetry.LogHist) ([]*slot, float64, bool, error) {
	serving := f.servingSlots()
	stalled := false
	floor := arrival
	for len(serving) < f.width {
		var quar []*slot
		for _, s := range f.slots {
			if s.state == stateQuarantined {
				quar = append(quar, s)
			}
		}
		if len(quar) == 0 {
			return nil, 0, false, fmt.Errorf("fleet: exhausted — %d/%d variants failed permanently", len(f.slots)-len(serving), len(f.slots))
		}
		sort.Slice(quar, func(i, j int) bool {
			if quar[i].rejoinAt != quar[j].rejoinAt {
				return quar[i].rejoinAt < quar[j].rejoinAt
			}
			return quar[i].id < quar[j].id
		})
		need := f.width - len(serving)
		if need > len(quar) {
			need = len(quar)
		}
		t := quar[need-1].rejoinAt
		if t > floor {
			floor = t
		}
		stalled = true
		if err := f.rejoinDue(floor, rebuildLat, replaceH); err != nil {
			return nil, 0, false, err
		}
		serving = f.servingSlots()
	}
	sort.Slice(serving, func(i, j int) bool {
		if serving[i].freeAt != serving[j].freeAt {
			return serving[i].freeAt < serving[j].freeAt
		}
		return serving[i].id < serving[j].id
	})
	chosen := serving[:f.width]
	// A pinned attacker directs its malicious requests at the variant it
	// leaked (connection pinning); swap it into the group when serving.
	if f.atkSlot >= 0 && f.o.Attack.active(f.served) {
		if v := f.slots[f.atkSlot]; v.state == stateServing {
			inGroup := false
			for _, s := range chosen {
				if s.id == v.id {
					inGroup = true
					break
				}
			}
			if !inGroup {
				chosen = append([]*slot{v}, chosen[:f.width-1]...)
			}
		}
	}
	return chosen, floor, stalled, nil
}

func (f *Fleet) servingSlots() []*slot {
	var out []*slot
	for _, s := range f.slots {
		if s.state == stateServing {
			out = append(out, s)
		}
	}
	return out
}

// serveRequest executes request i on the chosen slots, applies scheduled
// corruption, classifies detection signals, and quarantines compromised
// variants.
func (f *Fleet) serveRequest(ctx context.Context, i int, chosen []*slot, arrival, start, rebuildLat float64, sojournH, serviceH *telemetry.LogHist) error {
	o := f.o
	attacked := o.Attack.active(i)
	procs := make([]*rt.Process, len(chosen))
	for j, s := range chosen {
		p, err := sim.NewProcessFromImage(s.img, s.seed, o.Obs)
		if err != nil {
			return fmt.Errorf("fleet: request %d: load variant %d: %w", i, s.id, err)
		}
		procs[j] = p
	}

	var writes []write
	if attacked {
		var err error
		writes, err = f.attackerWrites(chosen[0])
		if err != nil {
			return err
		}
		f.rep.Sim.AttackRequests++
		o.Obs.Counter("fleet.attacks").Inc()
	}

	var (
		service  float64
		perVar   []float64 // per-chosen-slot modeled seconds (drift input)
		detected []int     // indices into chosen to quarantine
		kinds    []string
		output   []uint64
	)
	perVar = make([]float64, len(chosen))
	if f.width >= 2 {
		me := &mvee.Engine{Incidents: o.Incidents, Campaign: f.campaign, Trial: i}
		for j, s := range chosen {
			me.Variants = append(me.Variants, &mvee.Variant{Seed: s.seed, Proc: procs[j], Mach: vm.New(procs[j], o.Prof)})
		}
		for _, w := range writes {
			// CorruptAll replicates the malicious input's absolute write to
			// every supervised variant and records where it landed — the
			// injector's ground truth.
			for _, landed := range me.CorruptAll(w.addr, w.value) {
				f.recordInjection(landed)
			}
		}
		verdict, err := me.Run(o.SliceInstrs, o.MaxSlices)
		if err != nil {
			return fmt.Errorf("fleet: request %d: supervisor: %w", i, err)
		}
		for j, r := range verdict.Results {
			if r != nil {
				perVar[j] = r.Seconds(o.Prof)
			}
		}
		service, detected, kinds, output = f.judgeVerdict(verdict)
	} else {
		for _, w := range writes {
			f.recordInjection(procs[0].Space.Write64(w.addr, w.value) == nil)
		}
		var kind string
		service, kind, output = f.runSingle(ctx, i, chosen[0], procs[0])
		perVar[0] = service
		if kind != "" {
			detected = []int{0}
			kinds = []string{kind}
		}
	}

	// Synthetic degradation: scale the degraded slot's modeled seconds (and
	// the request's service time with it — lockstep waits for the slowest
	// member). Output is untouched, so nothing here can trip the MVEE.
	for j, s := range chosen {
		if fac := o.Degrade.factorFor(s.id, i); fac > 1 {
			perVar[j] *= fac
			if perVar[j] > service {
				service = perVar[j]
			}
		}
	}

	done := start + service
	sojournH.Observe(done - arrival)
	serviceH.Observe(service)

	// Ground truth the defender cannot see: a run that finished clean with
	// the wrong output is a silent corruption (and, in hijack mode, the
	// attacker's win sentinel is an outright compromise).
	if len(detected) == 0 && output != nil {
		if !equalOutput(output, f.golden) {
			f.rep.Sim.SilentCorruptions++
			o.Obs.Counter("fleet.silent_corruptions").Inc()
		}
		if o.Attack.Mode == ModeHijack && attack.HasWin(output) {
			f.rep.Sim.AttackerWins++
			o.Obs.Counter("fleet.attacker_wins").Inc()
		}
	}

	f.mu.Lock()
	f.served++
	if done > f.simClock {
		f.simClock = done
	}
	for _, s := range chosen {
		s.freeAt = done
		s.served++
	}
	f.mu.Unlock()
	o.Obs.Counter("fleet.requests").Inc()

	// Drift early warning: feed each clean member's modeled seconds into its
	// slot's EWMA baseline. Detected members are skipped — they are about to
	// quarantine anyway, and a corrupted run's timing must not poison the
	// baseline the *next* requests are judged against.
	detSet := map[int]bool{}
	for _, j := range detected {
		detSet[j] = true
	}
	for j, s := range chosen {
		if detSet[j] || perVar[j] <= 0 {
			continue
		}
		s.lastSvc = perVar[j]
		f.observeDrift(s, i, perVar[j])
	}

	for k, j := range detected {
		f.rep.Sim.Detections[kinds[k]]++
		o.Obs.Counter("fleet.detections", "kind", kinds[k]).Inc()
		f.quarantine(chosen[j], done, rebuildLat)
	}
	return nil
}

// judgeVerdict turns a supervisor verdict into the request's service time,
// the group members to quarantine, and the detection kinds per member.
func (f *Fleet) judgeVerdict(v *mvee.Verdict) (service float64, detected []int, kinds []string, output []uint64) {
	for _, r := range v.Results {
		if r == nil {
			continue
		}
		if s := r.Seconds(f.o.Prof); s > service {
			service = s
		}
	}
	if len(v.Hung) > 0 {
		// A hung variant burned its whole slice budget; lockstep pins the
		// group's service time to that (modeled at ~1 instruction/cycle).
		if s := float64(f.o.SliceInstrs) * float64(f.o.MaxSlices) / (f.o.Prof.GHz * 1e9); s > service {
			service = s
		}
	}
	if !v.Detected() {
		if r := v.Results[0]; r != nil {
			output = r.Output
		}
		return service, nil, nil, output
	}
	// Attribution: members that trapped, hung or errored are individually
	// compromised; a pure output divergence cannot be attributed within
	// the group, so the whole group re-diversifies (the conservative MVEE
	// response — restart everything the corrupted input touched).
	for j, r := range v.Results {
		switch {
		case r != nil && r.Trap != nil:
			detected = append(detected, j)
			kinds = append(kinds, "trap")
		case r != nil && r.Fault != nil:
			detected = append(detected, j)
			kinds = append(kinds, "fault")
		case r == nil || v.Errs[j] != "":
			detected = append(detected, j)
			kinds = append(kinds, "divergence")
		}
	}
	if len(detected) == 0 {
		for j := range v.Results {
			detected = append(detected, j)
			kinds = append(kinds, "divergence")
		}
	}
	return service, detected, kinds, nil
}

// runSingle executes one unsupervised request and classifies its detection
// signal ("" = clean). A fuel exhaustion is a liveness signal — the same
// reasoning as the supervisor's slice budget — and quarantines the variant.
func (f *Fleet) runSingle(ctx context.Context, i int, s *slot, p *rt.Process) (service float64, kind string, output []uint64) {
	o := f.o
	res, err := sim.ExecProcessCtx(ctx, p, o.Prof, o.Obs, o.RequestFuel)
	if res != nil {
		service = res.Seconds(o.Prof)
		output = res.Output
	}
	switch {
	case res != nil && res.Trap != nil:
		kind = "trap"
		if o.Incidents != nil {
			o.Incidents.Add(incident.FromTrap(f.campaign, o.Cfg.Name, s.seed, i, "fleet", p, *res.Trap, res.Instructions))
		}
	case res != nil && res.Fault != nil:
		kind = "fault"
		if o.Incidents != nil {
			o.Incidents.Add(incident.FromFault(f.campaign, o.Cfg.Name, s.seed, i, "fleet", p, res.Fault.Addr, res.Instructions))
		}
	case errors.Is(err, vm.ErrFuelExhausted):
		kind = "hang"
		output = nil // an unfinished run has no comparable response
		if o.Incidents != nil {
			rec := incident.Record{
				Campaign: f.campaign, Config: o.Cfg.Name, Seed: s.seed, Trial: i,
				Kind: "hang", Via: "fleet",
				Origin: fmt.Sprintf("request exceeded the %d-instruction fuel allowance", o.RequestFuel),
				Instr:  res.Instructions,
			}
			rec.Seal()
			o.Incidents.Add(rec)
		}
	case err != nil:
		kind = "error"
		output = nil
		if o.Incidents != nil {
			rec := incident.Record{
				Campaign: f.campaign, Config: o.Cfg.Name, Seed: s.seed, Trial: i,
				Kind: "error", Via: "fleet", Origin: err.Error(),
			}
			if res != nil {
				rec.Instr = res.Instructions
			}
			rec.Seal()
			o.Incidents.Add(rec)
		}
	}
	return service, kind, output
}

func (f *Fleet) recordInjection(landed bool) {
	if landed {
		f.rep.Sim.InjectionsAccepted++
		f.o.Obs.Counter("fleet.injections", "result", "accepted").Inc()
	} else {
		f.rep.Sim.InjectionsRejected++
		f.o.Obs.Counter("fleet.injections", "result", "rejected").Inc()
	}
}

// quarantine pulls a variant out of rotation at simulated time t and starts
// its replacement build on a separate goroutine — the serve loop never
// blocks on the compiler; it joins the build when the rejoin time arrives.
func (f *Fleet) quarantine(s *slot, t, rebuildLat float64) {
	if s.state != stateServing {
		return // already quarantined by an earlier signal in the same request
	}
	o := f.o
	f.mu.Lock()
	s.state = stateQuarantined
	s.rejoinAt = t + rebuildLat
	s.quars++
	f.quarantines++
	f.mu.Unlock()
	s.wallQuar = time.Now()
	s.heal = make(chan healDone, 1)
	o.Obs.Counter("fleet.quarantines").Inc()
	o.Obs.Gauge("fleet.slots.quarantined").Add(1)
	o.Obs.Emit("fleet-quarantine", map[string]any{"slot": s.id, "gen": s.gen, "sim_time": t})

	switch o.Heal {
	case HealReroll:
		seed := f.nextSeed
		f.nextSeed++
		img, oldSeed := s.img, s.seed
		go func(ch chan healDone) {
			err := rerollImage(img, seed)
			ch <- healDone{img: img, seed: oldSeed, err: err}
		}(s.heal)
	default:
		seed := f.nextSeed
		f.nextSeed++
		go func(ch chan healDone) {
			img, _, err := o.Eng.Image(o.Module, o.Cfg, seed)
			ch <- healDone{img: img, seed: seed, err: err}
		}(s.heal)
	}
}

// rejoinDue completes every quarantined variant whose rejoin time has
// arrived: join the replacement build (waiting out any wall-clock remainder
// — simulated time is unaffected) and put the fresh variant back in
// rotation.
func (f *Fleet) rejoinDue(t, rebuildLat float64, replaceH *telemetry.LogHist) error {
	for _, s := range f.slots {
		if s.state != stateQuarantined || s.rejoinAt > t {
			continue
		}
		hd := <-s.heal
		wall := time.Since(s.wallQuar).Seconds()
		f.mu.Lock()
		if hd.err != nil {
			s.state = stateFailed
			f.rep.Sim.HealFailures++
			f.mu.Unlock()
			f.o.Obs.Counter("fleet.heal.failures").Inc()
			f.o.Obs.Emit("fleet-heal-failed", map[string]any{"slot": s.id, "error": hd.err.Error()})
			continue
		}
		s.img, s.seed = hd.img, hd.seed
		s.gen++
		s.state = stateServing
		s.freeAt = s.rejoinAt
		// A fresh image has a fresh timing baseline: reset the drift model
		// so the new generation is not judged against the old one's EWMA.
		s.drift = driftState{}
		s.lastSvc = 0
		f.recoveries++
		f.mu.Unlock()
		replaceH.Observe(wall)
		f.o.Obs.Counter("fleet.recoveries").Inc()
		f.o.Obs.Gauge("fleet.slots.quarantined").Add(-1)
		f.o.Obs.Emit("fleet-rejoin", map[string]any{"slot": s.id, "gen": s.gen, "wall_seconds": wall})
	}
	return nil
}

// attackerWrites returns the corrupting writes for the current request,
// leaking (or re-leaking, when adaptive) the target's layout as needed.
func (f *Fleet) attackerWrites(target *slot) ([]write, error) {
	if f.atkSlot < 0 {
		f.atkSlot = target.id
	}
	victim := f.slots[f.atkSlot]
	if f.atkWrites == nil || (f.o.Attack.Adaptive && victim.state == stateServing && f.atkGen != victim.gen) {
		ws, err := resolveWrites(f.o.Attack, victim.img)
		if err != nil {
			return nil, err
		}
		f.atkWrites = ws
		f.atkGen = victim.gen
		f.leaks++
		f.o.Obs.Counter("fleet.leaks").Inc()
	}
	return f.atkWrites, nil
}

// resolveWrites computes the injection payload from the leaked image — the
// absolute addresses an AOCR-style attacker would extract from a layout
// disclosure of that one variant.
func resolveWrites(s Schedule, img *image.Image) ([]write, error) {
	switch s.Mode {
	case ModeHijack:
		admin := img.DataSyms[attack.SymAdminPtr]
		key := img.DataSyms[attack.SymSecretKey]
		secret := img.Funcs[attack.SymSecretFunc]
		if admin == nil || key == nil || secret == nil {
			return nil, fmt.Errorf("fleet: hijack attack needs the victim workload's %s/%s/%s symbols", attack.SymAdminPtr, attack.SymSecretKey, attack.SymSecretFunc)
		}
		return []write{{key.Addr, attack.MagicArg}, {admin.Addr, secret.Start}}, nil
	default:
		ds := img.DataSyms[s.Target]
		if ds == nil {
			return nil, fmt.Errorf("fleet: overwrite target %q is not a data symbol of this workload", s.Target)
		}
		return []write{{ds.Addr, s.Value}}, nil
	}
}

// rerollImage re-randomizes the image's BTRA artifacts in place and
// persists them, so every process loaded from the image afterwards executes
// the rerolled values: push-mode immediates live in the (predecoded)
// instruction stream, which RerollBTRAs rewrites directly, while AVX-array
// decoy words live in the data section and are copied back into the image's
// initializer from the scratch process RerollBTRAs rewrote.
func rerollImage(img *image.Image, seed uint64) error {
	proc, err := rt.NewProcess(img, seed)
	if err != nil {
		return err
	}
	if err := proc.RerollBTRAs(seed); err != nil {
		return err
	}
	for _, b := range img.Prog.Blobs {
		ds := img.DataSyms[b.Name]
		if ds == nil {
			continue
		}
		for i, w := range b.Words {
			if !w.BTRA {
				continue
			}
			v, err := proc.Space.Read64(ds.Addr + uint64(i)*8)
			if err != nil {
				return err
			}
			img.DataInit[ds.Addr+uint64(i)*8] = v
		}
	}
	return nil
}

// SlotView is one variant's row in the live view.
type SlotView struct {
	ID     int    `json:"id"`
	State  string `json:"state"`
	Gen    int    `json:"gen"`
	Seed   uint64 `json:"seed"`
	Served int    `json:"served"`
}

// LiveView is the fleet's /progress payload: a point-in-time snapshot the
// ops endpoint can poll from another goroutine while Serve runs.
type LiveView struct {
	Requests    int        `json:"requests"`
	Served      int        `json:"served"`
	SimClock    float64    `json:"sim_clock_seconds"`
	Quarantines int        `json:"quarantines"`
	Recoveries  int        `json:"recoveries"`
	Slots       []SlotView `json:"slots"`
}

// Live snapshots the fleet mid-run. Safe to call concurrently with Serve.
func (f *Fleet) Live() LiveView {
	f.mu.Lock()
	defer f.mu.Unlock()
	lv := LiveView{
		Requests:    f.o.Requests,
		Served:      f.served,
		SimClock:    f.simClock,
		Quarantines: f.quarantines,
		Recoveries:  f.recoveries,
	}
	for _, s := range f.slots {
		lv.Slots = append(lv.Slots, SlotView{ID: s.id, State: s.state, Gen: s.gen, Seed: s.seed, Served: s.served})
	}
	return lv
}

func equalOutput(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
