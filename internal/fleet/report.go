package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"r2c/internal/telemetry"
)

// SlotReport is one variant's final state.
type SlotReport struct {
	ID          int    `json:"id"`
	Seed        uint64 `json:"seed"`
	Gen         int    `json:"gen"`
	State       string `json:"state"`
	Served      int    `json:"served"`
	Quarantines int    `json:"quarantines"`
}

// SimReport holds every deterministic result of a fleet run: everything in
// it derives from the simulated clock and the seeded RNG, so two runs with
// the same options marshal byte-identically at any -jobs width.
type SimReport struct {
	Workload             string  `json:"workload"`
	Config               string  `json:"config"`
	Variants             int     `json:"variants"`
	MVEEWidth            int     `json:"mvee_width"`
	Requests             int     `json:"requests"`
	RateRPS              float64 `json:"rate_rps"`
	RebuildLatency       float64 `json:"rebuild_latency_seconds"`
	GoldenServiceSeconds float64 `json:"golden_service_seconds"`

	MakespanSeconds float64 `json:"makespan_seconds"`
	ThroughputRPS   float64 `json:"throughput_rps"`
	LatencyMean     float64 `json:"latency_mean_seconds"`
	LatencyP50      float64 `json:"latency_p50_seconds"`
	LatencyP90      float64 `json:"latency_p90_seconds"`
	LatencyP99      float64 `json:"latency_p99_seconds"`

	AttackRequests     int            `json:"attack_requests"`
	Leaks              int            `json:"leaks"`
	InjectionsAccepted int            `json:"injections_accepted"`
	InjectionsRejected int            `json:"injections_rejected"`
	Detections         map[string]int `json:"detections"`
	SilentCorruptions  int            `json:"silent_corruptions"`
	AttackerWins       int            `json:"attacker_wins"`

	Quarantines  int `json:"quarantines"`
	Recoveries   int `json:"recoveries"`
	HealFailures int `json:"heal_failures"`
	Stalls       int `json:"stalls"`
	// DriftWarnings counts EWMA sojourn-drift early warnings — temporal
	// anomalies flagged before any output-level detection fired.
	DriftWarnings int          `json:"drift_warnings"`
	Slots         []SlotReport `json:"slots"`
}

// WallReport holds the measured (non-deterministic) side: the real seconds
// the live re-diversification pipeline took per replacement, and the run's
// elapsed time. Time-to-replace is the headline here — it is the window an
// adaptive attacker has against a quarantined-and-rebuilding variant.
type WallReport struct {
	Rebuilds           int     `json:"rebuilds"`
	ReplaceMeanSeconds float64 `json:"replace_mean_seconds"`
	ReplaceP99Seconds  float64 `json:"replace_p99_seconds"`
	ElapsedSeconds     float64 `json:"elapsed_seconds"`
}

// Report is a completed fleet run.
type Report struct {
	Sim  SimReport  `json:"sim"`
	Wall WallReport `json:"wall"`
}

// DetectionsTotal sums detections across kinds.
func (r *Report) DetectionsTotal() int {
	n := 0
	for _, c := range r.Sim.Detections {
		n += c
	}
	return n
}

// WriteJSON writes the full report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	body, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("fleet: marshal report: %w", err)
	}
	_, err = w.Write(append(body, '\n'))
	return err
}

// WriteText renders the human-readable run summary: the steady-state
// serving numbers first, then the attack/detect/heal loop's accounting.
func (r *Report) WriteText(w io.Writer) error {
	s, wl := &r.Sim, &r.Wall
	mode := "single-variant"
	if s.MVEEWidth >= 2 {
		mode = fmt.Sprintf("mvee×%d", s.MVEEWidth)
	}
	fmt.Fprintf(w, "fleet %s/%s: %d variants (%s), %d requests @ %.1f req/s\n",
		s.Workload, s.Config, s.Variants, mode, s.Requests, s.RateRPS)
	fmt.Fprintf(w, "  throughput  %.1f req/s over %.3fs simulated (golden service %.6fs)\n",
		s.ThroughputRPS, s.MakespanSeconds, s.GoldenServiceSeconds)
	fmt.Fprintf(w, "  latency     p50 %.6fs  p90 %.6fs  p99 %.6fs  mean %.6fs\n",
		s.LatencyP50, s.LatencyP90, s.LatencyP99, s.LatencyMean)
	if s.AttackRequests > 0 || s.InjectionsAccepted+s.InjectionsRejected > 0 {
		fmt.Fprintf(w, "  attack      %d malicious requests, %d leaks; injections %d accepted / %d rejected\n",
			s.AttackRequests, s.Leaks, s.InjectionsAccepted, s.InjectionsRejected)
	}
	if n := r.DetectionsTotal(); n > 0 {
		kinds := make([]string, 0, len(s.Detections))
		for k := range s.Detections {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		fmt.Fprintf(w, "  detections  %d total:", n)
		for _, k := range kinds {
			fmt.Fprintf(w, " %s=%d", k, s.Detections[k])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  healing     %d quarantines, %d recoveries, %d failures, %d stalls (quarantine window %.3fs sim)\n",
		s.Quarantines, s.Recoveries, s.HealFailures, s.Stalls, s.RebuildLatency)
	if s.SilentCorruptions > 0 || s.AttackerWins > 0 {
		fmt.Fprintf(w, "  ground truth: %d silent corruptions, %d attacker wins slipped past detection\n",
			s.SilentCorruptions, s.AttackerWins)
	}
	if wl.Rebuilds > 0 {
		fmt.Fprintf(w, "  time-to-replace (wall): mean %.4fs  p99 %.4fs over %d rebuilds\n",
			wl.ReplaceMeanSeconds, wl.ReplaceP99Seconds, wl.Rebuilds)
	}
	fmt.Fprintf(w, "  wall elapsed %.3fs\n", wl.ElapsedSeconds)
	return nil
}

// Publish exports the run's headline numbers as gauges so -metrics-out and
// the /metrics endpoint carry them alongside the live counters and
// histograms the serve loop already fed.
func (r *Report) Publish(obs *telemetry.Observer) {
	set := func(name string, v float64) { obs.Gauge(name).Set(v) }
	set("fleet.throughput.rps", r.Sim.ThroughputRPS)
	set("fleet.latency.p50.seconds", r.Sim.LatencyP50)
	set("fleet.latency.p90.seconds", r.Sim.LatencyP90)
	set("fleet.latency.p99.seconds", r.Sim.LatencyP99)
	set("fleet.makespan.seconds", r.Sim.MakespanSeconds)
	if r.Wall.Rebuilds > 0 {
		set("fleet.replace.wall.mean.seconds", r.Wall.ReplaceMeanSeconds)
	}
}
