package mvee

import (
	"strings"
	"testing"

	"r2c/internal/attack"
	"r2c/internal/defense"
	"r2c/internal/incident"
	"r2c/internal/tir"
	"r2c/internal/vm"
	"r2c/internal/workload"
)

func TestBenignRunAgrees(t *testing.T) {
	// Differently-seeded R2C variants of a real workload must agree on
	// every observable event — the precondition for MVEE supervision.
	b, _ := workload.ByName("xz")
	e, err := New(b.Build(8), defense.R2CFull(), 3, 11, vm.EPYCRome())
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.Run(100_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Detected() {
		t.Fatalf("benign run flagged: %+v", v.Reason)
	}
	if len(v.Results[0].Output) == 0 {
		t.Fatal("no output compared")
	}
}

func TestRequiresTwoVariants(t *testing.T) {
	b, _ := workload.ByName("xz")
	if _, err := New(b.Build(8), defense.Off(), 1, 1, vm.EPYCRome()); err == nil {
		t.Fatal("single-variant engine accepted")
	}
}

// TestCorruptionDiverges is the Section 7.3 claim: a memory corruption that
// would succeed (or fail silently) in one process diverges under the MVEE
// because the same absolute write lands differently in each variant.
func TestCorruptionDiverges(t *testing.T) {
	detected := 0
	trials := 6
	for seed := uint64(1); seed <= uint64(trials); seed++ {
		e, err := New(attack.Victim(), defense.R2CFull(), 2, seed*100, vm.EPYCRome())
		if err != nil {
			t.Fatal(err)
		}
		// The attacker corrupts variant 0's secret_key and admin_ptr using
		// variant-0 addresses (as a real exploit would after leaking them
		// from that variant); the supervisor replicates the input-induced
		// writes to every variant.
		img := e.Variants[0].Proc.Img
		key := img.DataSyms[attack.SymSecretKey]
		admin := img.DataSyms[attack.SymAdminPtr]
		secret := img.Funcs[attack.SymSecretFunc]
		e.CorruptAll(key.Addr, attack.MagicArg)
		e.CorruptAll(admin.Addr, secret.Start)

		v, err := e.Run(100_000, 0)
		if err != nil {
			t.Fatal(err)
		}
		if v.Detected() {
			detected++
		} else if attack.HasWin(v.Results[0].Output) {
			t.Errorf("seed %d: attack succeeded without MVEE detection", seed)
		}
	}
	if detected < trials-1 {
		t.Fatalf("MVEE detected only %d/%d corruption attempts", detected, trials)
	}
	t.Logf("MVEE detected %d/%d", detected, trials)
}

// TestSingleProcessAttackVsMVEE contrasts a single process, where the same
// corruption wins outright.
func TestSingleProcessAttackVsMVEE(t *testing.T) {
	e, err := New(attack.Victim(), defense.Off(), 2, 300, vm.EPYCRome())
	if err != nil {
		t.Fatal(err)
	}
	img := e.Variants[0].Proc.Img
	key := img.DataSyms[attack.SymSecretKey]
	admin := img.DataSyms[attack.SymAdminPtr]
	secret := img.Funcs[attack.SymSecretFunc]

	// Against variant 0 alone the attack wins...
	_ = e.Variants[0].Proc.Space.Write64(key.Addr, attack.MagicArg)
	_ = e.Variants[0].Proc.Space.Write64(admin.Addr, secret.Start)
	res, err := e.Variants[0].Mach.Run(100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !attack.HasWin(res.Output) {
		t.Fatal("direct corruption should win against a single unprotected process")
	}
	// ...but the second variant, fed the same writes, diverges.
	_ = e.Variants[1].Proc.Space.Write64(key.Addr, attack.MagicArg)
	_ = e.Variants[1].Proc.Space.Write64(admin.Addr, secret.Start)
	res2, err := e.Variants[1].Mach.Run(100_000_000)
	if err == nil && res2.Halted && res2.Fault == nil {
		if len(res2.Output) == len(res.Output) {
			same := true
			for i := range res.Output {
				if res.Output[i] != res2.Output[i] {
					same = false
				}
			}
			if same {
				t.Fatal("variants agreed on a corrupted run — no divergence signal")
			}
		}
	}
}

// boundedLoopModule runs a loop whose trip count is read from the "bound"
// global at runtime, so a corrupting write can send one variant into a
// multi-billion-iteration loop while its siblings finish normally.
func boundedLoopModule() *tir.Module {
	mb := tir.NewModule("bounded")
	mb.AddGlobal("bound", 8, 4)
	main := mb.NewFunc("main", 0)
	bp := main.AddrGlobal("bound")
	n := main.Load(bp, 0)
	acc := main.Const(0)
	workload.LoopTo(main, 0, n, func(i tir.Reg) {
		main.BinTo(acc, tir.OpAdd, acc, i)
	})
	main.Output(acc)
	main.RetVoid()
	mb.SetEntry("main")
	return mb.MustBuild()
}

// TestHungVariantDiverges pins the liveness-divergence contract: a variant
// that is still running when the slice budget expires must yield a Diverged
// verdict (with the hung variant identified and an incident recorded) — not
// a nil verdict or an engine error.
func TestHungVariantDiverges(t *testing.T) {
	e, err := New(boundedLoopModule(), defense.R2CFull(), 2, 7, vm.EPYCRome())
	if err != nil {
		t.Fatal(err)
	}
	e.Incidents = incident.NewLog()
	// The corrupting input inflates variant 1's loop bound; variant 0 keeps
	// the benign bound and finishes inside the first slice.
	bound := e.Variants[1].Proc.Img.DataSyms["bound"]
	if err := e.Variants[1].Proc.Space.Write64(bound.Addr, 1<<40); err != nil {
		t.Fatal(err)
	}
	v, err := e.Run(10_000, 5)
	if err != nil {
		t.Fatalf("hung variant must not be an engine error, got %v", err)
	}
	if !v.Diverged || !v.Detected() {
		t.Fatalf("hung variant not flagged as divergence: %+v", v)
	}
	if len(v.Hung) != 1 || v.Hung[0] != 1 {
		t.Fatalf("Hung = %v, want [1]", v.Hung)
	}
	if !strings.Contains(v.Reason, "exceeded the slice budget") {
		t.Fatalf("reason %q does not name the slice budget", v.Reason)
	}
	if v.Results[0] == nil || v.Results[0].Output[0] != 6 {
		t.Fatalf("finished variant's result lost: %+v", v.Results[0])
	}
	if v.Results[1] != nil {
		t.Fatalf("hung variant should have no final result, got %+v", v.Results[1])
	}
	recs := e.Incidents.Records()
	if len(recs) != 1 || recs[0].Kind != "divergence" || recs[0].Seed != e.Variants[1].Seed {
		t.Fatalf("want one divergence incident for the hung variant's seed, got %+v", recs)
	}
	if recs[0].Instr == 0 {
		t.Fatal("hung variant's incident lost its retired-instruction count")
	}
}

// derefModule dereferences whatever address sits in the "ptr" global, so a
// pre-run write can steer each variant at a different target.
func derefModule() *tir.Module {
	mb := tir.NewModule("deref")
	mb.AddGlobal("data", 8, 0x5a)
	mb.AddGlobal("ptr", 8, 0)
	main := mb.NewFunc("main", 0)
	pp := main.AddrGlobal("ptr")
	p := main.Load(pp, 0)
	v := main.Load(p, 0)
	main.Output(v)
	main.RetVoid()
	mb.SetEntry("main")
	return mb.MustBuild()
}

// TestTrapAndDivergenceBothSurface steers one variant's dereference into its
// own BTDP guard page: the trap and the divergence must both appear on the
// verdict, and the incident log must carry both records.
func TestTrapAndDivergenceBothSurface(t *testing.T) {
	e, err := New(derefModule(), defense.R2CFull(), 2, 21, vm.EPYCRome())
	if err != nil {
		t.Fatal(err)
	}
	e.Incidents = incident.NewLog()
	// Variant 0 dereferences its own data word (benign); variant 1 is sent
	// into one of its guard pages.
	p0 := e.Variants[0].Proc
	if err := p0.Space.Write64(p0.Img.DataSyms["ptr"].Addr, p0.Img.DataSyms["data"].Addr); err != nil {
		t.Fatal(err)
	}
	p1 := e.Variants[1].Proc
	if len(p1.GuardPages) == 0 {
		t.Fatal("r2c-full variant has no guard pages")
	}
	if err := p1.Space.Write64(p1.Img.DataSyms["ptr"].Addr, p1.GuardPages[0]); err != nil {
		t.Fatal(err)
	}
	v, err := e.Run(10_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Trapped {
		t.Fatalf("guard-page dereference did not trap: %+v", v)
	}
	if !v.Diverged {
		t.Fatalf("trap asymmetry did not diverge: %+v", v)
	}
	kinds := map[string]int{}
	for _, r := range e.Incidents.Records() {
		kinds[r.Kind]++
	}
	if kinds["trap"] == 0 || kinds["divergence"] == 0 {
		t.Fatalf("want both trap and divergence incidents, got %v", kinds)
	}
}

// divModule divides by the "den" global, so zeroing one variant's copy makes
// only that variant die with a simulator error.
func divModule() *tir.Module {
	mb := tir.NewModule("divm")
	mb.AddGlobal("den", 8, 3)
	main := mb.NewFunc("main", 0)
	dp := main.AddrGlobal("den")
	d := main.Load(dp, 0)
	x := main.Const(99)
	q := main.Bin(tir.OpDiv, x, d)
	main.Output(q)
	main.RetVoid()
	mb.SetEntry("main")
	return mb.MustBuild()
}

// TestErroredVariantDiverges pins the hardened simulator-error branch: a
// variant that dies with a VM error (division by zero only its corrupted
// state reaches) must surface as a divergence carrying the error text, and
// must never compare silently equal to the clean variant.
func TestErroredVariantDiverges(t *testing.T) {
	e, err := New(divModule(), defense.R2CFull(), 2, 33, vm.EPYCRome())
	if err != nil {
		t.Fatal(err)
	}
	e.Incidents = incident.NewLog()
	den := e.Variants[1].Proc.Img.DataSyms["den"]
	if err := e.Variants[1].Proc.Space.Write64(den.Addr, 0); err != nil {
		t.Fatal(err)
	}
	v, err := e.Run(10_000, 0)
	if err != nil {
		t.Fatalf("one errored variant must not fail the supervisor, got %v", err)
	}
	if !v.Diverged {
		t.Fatalf("errored variant not flagged: %+v", v)
	}
	if v.Errs[0] != "" || !strings.Contains(v.Errs[1], "division by zero") {
		t.Fatalf("Errs = %q, want variant 1's division-by-zero text", v.Errs)
	}
	if !strings.Contains(v.Reason, "simulator error") {
		t.Fatalf("reason %q does not name the simulator error", v.Reason)
	}
	if v.Results[0] == nil || v.Results[0].Output[0] != 33 {
		t.Fatalf("clean variant's result lost: %+v", v.Results[0])
	}
	if e.Incidents.Len() == 0 {
		t.Fatal("errored-variant divergence recorded no incident")
	}
}

// TestCorruptAllRecordsLanding pins the injection ground truth: the leaked
// variant always accepts the write at its own symbol address, and an address
// mapped in no variant is rejected everywhere.
func TestCorruptAllRecordsLanding(t *testing.T) {
	e, err := New(attack.Victim(), defense.R2CFull(), 3, 500, vm.EPYCRome())
	if err != nil {
		t.Fatal(err)
	}
	key := e.Variants[0].Proc.Img.DataSyms[attack.SymSecretKey]
	landed := e.CorruptAll(key.Addr, attack.MagicArg)
	if len(landed) != 3 {
		t.Fatalf("landed has %d entries, want 3", len(landed))
	}
	if !landed[0] {
		t.Fatal("the leaked variant rejected a write at its own symbol address")
	}
	for i, l := range e.CorruptAll(0xffff_ffff_f000, 1) {
		if l {
			t.Errorf("variant %d accepted a write at an unmapped address", i)
		}
	}
}
