package mvee

import (
	"testing"

	"r2c/internal/attack"
	"r2c/internal/defense"
	"r2c/internal/vm"
	"r2c/internal/workload"
)

func TestBenignRunAgrees(t *testing.T) {
	// Differently-seeded R2C variants of a real workload must agree on
	// every observable event — the precondition for MVEE supervision.
	b, _ := workload.ByName("xz")
	e, err := New(b.Build(8), defense.R2CFull(), 3, 11, vm.EPYCRome())
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.Run(100_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Detected() {
		t.Fatalf("benign run flagged: %+v", v.Reason)
	}
	if len(v.Results[0].Output) == 0 {
		t.Fatal("no output compared")
	}
}

func TestRequiresTwoVariants(t *testing.T) {
	b, _ := workload.ByName("xz")
	if _, err := New(b.Build(8), defense.Off(), 1, 1, vm.EPYCRome()); err == nil {
		t.Fatal("single-variant engine accepted")
	}
}

// TestCorruptionDiverges is the Section 7.3 claim: a memory corruption that
// would succeed (or fail silently) in one process diverges under the MVEE
// because the same absolute write lands differently in each variant.
func TestCorruptionDiverges(t *testing.T) {
	detected := 0
	trials := 6
	for seed := uint64(1); seed <= uint64(trials); seed++ {
		e, err := New(attack.Victim(), defense.R2CFull(), 2, seed*100, vm.EPYCRome())
		if err != nil {
			t.Fatal(err)
		}
		// The attacker corrupts variant 0's secret_key and admin_ptr using
		// variant-0 addresses (as a real exploit would after leaking them
		// from that variant); the supervisor replicates the input-induced
		// writes to every variant.
		img := e.Variants[0].Proc.Img
		key := img.DataSyms[attack.SymSecretKey]
		admin := img.DataSyms[attack.SymAdminPtr]
		secret := img.Funcs[attack.SymSecretFunc]
		e.CorruptAll(key.Addr, attack.MagicArg)
		e.CorruptAll(admin.Addr, secret.Start)

		v, err := e.Run(100_000, 0)
		if err != nil {
			t.Fatal(err)
		}
		if v.Detected() {
			detected++
		} else if attack.HasWin(v.Results[0].Output) {
			t.Errorf("seed %d: attack succeeded without MVEE detection", seed)
		}
	}
	if detected < trials-1 {
		t.Fatalf("MVEE detected only %d/%d corruption attempts", detected, trials)
	}
	t.Logf("MVEE detected %d/%d", detected, trials)
}

// TestSingleProcessAttackVsMVEE contrasts a single process, where the same
// corruption wins outright.
func TestSingleProcessAttackVsMVEE(t *testing.T) {
	e, err := New(attack.Victim(), defense.Off(), 2, 300, vm.EPYCRome())
	if err != nil {
		t.Fatal(err)
	}
	img := e.Variants[0].Proc.Img
	key := img.DataSyms[attack.SymSecretKey]
	admin := img.DataSyms[attack.SymAdminPtr]
	secret := img.Funcs[attack.SymSecretFunc]

	// Against variant 0 alone the attack wins...
	_ = e.Variants[0].Proc.Space.Write64(key.Addr, attack.MagicArg)
	_ = e.Variants[0].Proc.Space.Write64(admin.Addr, secret.Start)
	res, err := e.Variants[0].Mach.Run(100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !attack.HasWin(res.Output) {
		t.Fatal("direct corruption should win against a single unprotected process")
	}
	// ...but the second variant, fed the same writes, diverges.
	_ = e.Variants[1].Proc.Space.Write64(key.Addr, attack.MagicArg)
	_ = e.Variants[1].Proc.Space.Write64(admin.Addr, secret.Start)
	res2, err := e.Variants[1].Mach.Run(100_000_000)
	if err == nil && res2.Halted && res2.Fault == nil {
		if len(res2.Output) == len(res.Output) {
			same := true
			for i := range res.Output {
				if res.Output[i] != res2.Output[i] {
					same = false
				}
			}
			if same {
				t.Fatal("variants agreed on a corrupted run — no divergence signal")
			}
		}
	}
}
