// Package mvee implements the Multi-Variant Execution Engine extension the
// paper proposes in Section 7.3: "MVEEs and diversification defenses like
// R2C naturally complement each other. Considering that R2C diversifies
// along multiple dimensions, an MVEE would detect data corruption or
// leakage in one of the variants with high probability."
//
// The engine builds N variants of one program — same source, same defense
// configuration, different diversification seeds — and executes them in
// lockstep, comparing their observable event streams (output words, halt
// status, faults, booby traps). Because R2C diversification never changes
// program semantics (the repository's differential property), benign runs
// agree bit-for-bit; an attacker's memory corruption is address-dependent,
// so it perturbs each variant differently and surfaces as divergence even
// when it would be silent in a single process.
package mvee

import (
	"fmt"

	"r2c/internal/defense"
	"r2c/internal/incident"
	"r2c/internal/rt"
	"r2c/internal/sim"
	"r2c/internal/tir"
	"r2c/internal/vm"
)

// Variant is one diversified instance under the engine.
type Variant struct {
	Seed uint64
	Proc *rt.Process
	Mach *vm.Machine
}

// Engine supervises N variants.
type Engine struct {
	Variants []*Variant
	prof     *vm.Profile

	// Incidents, when set, receives one record per detection signal a
	// supervised run raises: each variant's trap, and the divergence
	// verdict itself (the MVEE-only signal the paper's Section 7.3 argues
	// complements R2C's reactive traps).
	Incidents *incident.Log

	// Campaign labels emitted incident records ("" defaults to "mvee").
	Campaign string

	// Trial labels emitted incident records with the supervised run's index
	// — the serving fleet sets it to the request id so incidents from many
	// supervised requests stay distinguishable. Variant identity is carried
	// by each record's Seed.
	Trial int
}

// New builds n variants of module m under cfg with seeds baseSeed,
// baseSeed+1, ...
func New(m *tir.Module, cfg defense.Config, n int, baseSeed uint64, prof *vm.Profile) (*Engine, error) {
	if n < 2 {
		return nil, fmt.Errorf("mvee: need at least two variants, got %d", n)
	}
	e := &Engine{prof: prof}
	for i := 0; i < n; i++ {
		proc, err := sim.Build(m, cfg, baseSeed+uint64(i))
		if err != nil {
			return nil, fmt.Errorf("mvee: variant %d: %w", i, err)
		}
		e.Variants = append(e.Variants, &Variant{
			Seed: baseSeed + uint64(i),
			Proc: proc,
			Mach: vm.New(proc, prof),
		})
	}
	return e, nil
}

// Verdict is the engine's judgment of one supervised run.
type Verdict struct {
	// Diverged is true when the variants' observable behaviour differed —
	// the MVEE's detection signal.
	Diverged bool
	// Reason describes the first divergence.
	Reason string
	// Trapped is true when any variant detonated a booby trap (the R2C
	// reactive signal, which the MVEE also surfaces).
	Trapped bool
	// Hung lists the variants that were still running when the slice budget
	// expired — a liveness divergence (an attacker could hide a hijacked
	// variant behind an infinite loop, as in crash/hang-tolerant
	// brute-force probing). Their Results slots stay nil.
	Hung []int
	// Errs records each variant's simulator-level error text ("" = clean
	// finish). Recording it on the verdict keeps an errored variant from
	// ever comparing silently equal to a clean one; two variants that fail
	// with the identical error are considered to agree.
	Errs []string
	// Results holds each variant's execution result; a slot is nil only
	// for a hung variant or a simulator error that produced no result.
	Results []*vm.Result
}

// Detected reports whether the supervisor would raise an alarm.
func (v *Verdict) Detected() bool { return v.Diverged || v.Trapped }

// Run executes the variants in bounded slices round-robin (modeled lockstep
// scheduling) and compares their observable event streams. A variant still
// running when the maxSlices budget expires is reported as a liveness
// divergence on the Verdict — never as an engine error — so a hung variant
// cannot stall the comparison forever, and the traps and incidents recorded
// by the variants that did finish survive alongside the hang signal. A
// simulator-level error in one variant (a division by zero only that layout
// reaches) is likewise a divergence, recorded as the variant's Errs text.
func (e *Engine) Run(sliceInstrs, maxSlices int) (*Verdict, error) {
	if sliceInstrs <= 0 {
		sliceInstrs = 200_000
	}
	if maxSlices <= 0 {
		maxSlices = 10_000
	}
	n := len(e.Variants)
	v := &Verdict{Results: make([]*vm.Result, n), Errs: make([]string, n)}
	done := make([]bool, n)
	// partial tracks each machine's live accumulated result, so a hung
	// variant's retired-instruction count is available for its incident
	// record even though its Results slot stays nil.
	partial := make([]*vm.Result, n)
	for slice := 0; slice < maxSlices; slice++ {
		allDone := true
		for i, va := range e.Variants {
			if done[i] {
				continue
			}
			res, err := va.Mach.Run(uint64(sliceInstrs))
			if err == vm.ErrInstructionBudget {
				partial[i] = res
				allDone = false
				continue
			}
			if err != nil {
				// Simulator-level error (e.g. the variant crashed into a
				// division by zero only one layout reaches): a divergence.
				// Record the error text so the comparison below can never
				// mistake the errored run for a clean one, and tolerate a
				// nil result — an errored variant is not "unfinished".
				v.Errs[i] = err.Error()
			}
			v.Results[i] = res
			done[i] = true
		}
		if allDone {
			break
		}
	}

	// Liveness divergence: a variant that exhausted the slice budget is a
	// detection signal (an attacker could hide behind a hang), not an
	// engine failure that would discard the whole verdict.
	hung := make([]bool, n)
	for i := range e.Variants {
		if done[i] {
			continue
		}
		hung[i] = true
		v.Hung = append(v.Hung, i)
		v.Diverged = true
		reason := fmt.Sprintf("variant %d exceeded the slice budget", i)
		if v.Reason == "" {
			v.Reason = reason
		}
		if v.Errs[i] == "" {
			v.Errs[i] = reason
		}
		if e.Incidents != nil {
			va := e.Variants[i]
			var instr uint64
			if partial[i] != nil {
				instr = partial[i].Instructions
			}
			e.Incidents.Add(incident.FromDivergence(e.campaign(), va.Proc.Cfg.Name, va.Seed, e.Trial, "mvee", reason, instr))
		}
	}

	for i, r := range v.Results {
		if r == nil {
			continue
		}
		if r.Trap != nil {
			v.Trapped = true
			if e.Incidents != nil {
				va := e.Variants[i]
				e.Incidents.Add(incident.FromTrap(e.campaign(), va.Proc.Cfg.Name, va.Seed, e.Trial, "mvee", va.Proc, *r.Trap, r.Instructions))
			}
		}
	}

	// Compare the event streams pairwise against variant 0. Error text
	// compares first: an errored variant diverges from a clean one even
	// when both produced no observable output.
	base := v.Results[0]
	for i := 1; i < n; i++ {
		if hung[i] {
			// Already reported (with its own incident) by the liveness pass;
			// comparing its budget-expiry text would double-count it.
			continue
		}
		r := v.Results[i]
		var diff string
		switch {
		case v.Errs[i] != v.Errs[0]:
			diff = fmt.Sprintf("simulator error %q vs %q", v.Errs[i], v.Errs[0])
		case r == nil || base == nil:
			// Hung on both sides (or hung vs errored-with-identical-text);
			// already reported above, nothing left to compare.
			continue
		default:
			diff = compare(base, r)
		}
		if diff != "" {
			v.Diverged = true
			reason := fmt.Sprintf("variant %d vs 0: %s", i, diff)
			if v.Reason == "" {
				v.Reason = reason
			}
			if e.Incidents != nil {
				va := e.Variants[i]
				var instr uint64
				if r != nil {
					instr = r.Instructions
				}
				e.Incidents.Add(incident.FromDivergence(e.campaign(), va.Proc.Cfg.Name, va.Seed, e.Trial, "mvee", reason, instr))
			}
			return v, nil
		}
	}
	return v, nil
}

func (e *Engine) campaign() string {
	if e.Campaign != "" {
		return e.Campaign
	}
	return "mvee"
}

func compare(a, b *vm.Result) string {
	if a.Halted != b.Halted {
		return fmt.Sprintf("halt status %v vs %v", a.Halted, b.Halted)
	}
	if (a.Fault == nil) != (b.Fault == nil) {
		return "one variant faulted"
	}
	if (a.Trap == nil) != (b.Trap == nil) {
		return "one variant detonated a booby trap"
	}
	if a.ExitStatus != b.ExitStatus {
		return fmt.Sprintf("exit status %d vs %d", a.ExitStatus, b.ExitStatus)
	}
	if len(a.Output) != len(b.Output) {
		return fmt.Sprintf("output length %d vs %d", len(a.Output), len(b.Output))
	}
	for i := range a.Output {
		if a.Output[i] != b.Output[i] {
			return fmt.Sprintf("output word %d: %#x vs %#x", i, a.Output[i], b.Output[i])
		}
	}
	return ""
}

// CorruptAll models an attacker whose malicious input induces the same
// absolute-address write in every variant (the supervisor replicates
// inputs, and a leaked address is only meaningful in the variant it leaked
// from). The corruption lands wherever each diversified layout puts that
// address; the returned slice records the per-variant outcome — landed[i]
// is true when variant i's address space accepted the write, false when it
// faulted (unmapped or protected there). A faulting write is deliberately
// not an error: that asymmetry is exactly what the MVEE later observes,
// and attack-pressure injectors use the record to report ground truth
// about where the corruption actually landed.
func (e *Engine) CorruptAll(addr, value uint64) []bool {
	landed := make([]bool, len(e.Variants))
	for i, va := range e.Variants {
		landed[i] = va.Proc.Space.Write64(addr, value) == nil
	}
	return landed
}
