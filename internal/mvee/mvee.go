// Package mvee implements the Multi-Variant Execution Engine extension the
// paper proposes in Section 7.3: "MVEEs and diversification defenses like
// R2C naturally complement each other. Considering that R2C diversifies
// along multiple dimensions, an MVEE would detect data corruption or
// leakage in one of the variants with high probability."
//
// The engine builds N variants of one program — same source, same defense
// configuration, different diversification seeds — and executes them in
// lockstep, comparing their observable event streams (output words, halt
// status, faults, booby traps). Because R2C diversification never changes
// program semantics (the repository's differential property), benign runs
// agree bit-for-bit; an attacker's memory corruption is address-dependent,
// so it perturbs each variant differently and surfaces as divergence even
// when it would be silent in a single process.
package mvee

import (
	"fmt"

	"r2c/internal/defense"
	"r2c/internal/incident"
	"r2c/internal/rt"
	"r2c/internal/sim"
	"r2c/internal/tir"
	"r2c/internal/vm"
)

// Variant is one diversified instance under the engine.
type Variant struct {
	Seed uint64
	Proc *rt.Process
	Mach *vm.Machine
}

// Engine supervises N variants.
type Engine struct {
	Variants []*Variant
	prof     *vm.Profile

	// Incidents, when set, receives one record per detection signal a
	// supervised run raises: each variant's trap, and the divergence
	// verdict itself (the MVEE-only signal the paper's Section 7.3 argues
	// complements R2C's reactive traps).
	Incidents *incident.Log

	// Campaign labels emitted incident records ("" defaults to "mvee").
	Campaign string
}

// New builds n variants of module m under cfg with seeds baseSeed,
// baseSeed+1, ...
func New(m *tir.Module, cfg defense.Config, n int, baseSeed uint64, prof *vm.Profile) (*Engine, error) {
	if n < 2 {
		return nil, fmt.Errorf("mvee: need at least two variants, got %d", n)
	}
	e := &Engine{prof: prof}
	for i := 0; i < n; i++ {
		proc, err := sim.Build(m, cfg, baseSeed+uint64(i))
		if err != nil {
			return nil, fmt.Errorf("mvee: variant %d: %w", i, err)
		}
		e.Variants = append(e.Variants, &Variant{
			Seed: baseSeed + uint64(i),
			Proc: proc,
			Mach: vm.New(proc, prof),
		})
	}
	return e, nil
}

// Verdict is the engine's judgment of one supervised run.
type Verdict struct {
	// Diverged is true when the variants' observable behaviour differed —
	// the MVEE's detection signal.
	Diverged bool
	// Reason describes the first divergence.
	Reason string
	// Trapped is true when any variant detonated a booby trap (the R2C
	// reactive signal, which the MVEE also surfaces).
	Trapped bool
	// Results holds each variant's execution result.
	Results []*vm.Result
}

// Detected reports whether the supervisor would raise an alarm.
func (v *Verdict) Detected() bool { return v.Diverged || v.Trapped }

// Run executes every variant to completion and compares event streams.
// Lockstep scheduling is modeled by running each variant in bounded slices
// round-robin, so a hung variant cannot stall the comparison forever.
func (e *Engine) Run(sliceInstrs, maxSlices int) (*Verdict, error) {
	if sliceInstrs <= 0 {
		sliceInstrs = 200_000
	}
	if maxSlices <= 0 {
		maxSlices = 10_000
	}
	v := &Verdict{Results: make([]*vm.Result, len(e.Variants))}
	done := make([]bool, len(e.Variants))
	for slice := 0; slice < maxSlices; slice++ {
		allDone := true
		for i, va := range e.Variants {
			if done[i] {
				continue
			}
			res, err := va.Mach.Run(uint64(sliceInstrs))
			if err == vm.ErrInstructionBudget {
				allDone = false
				continue
			}
			if err != nil {
				// Simulator-level error (e.g. the variant crashed into a
				// division by zero only one layout reaches): a divergence.
				v.Results[i] = res
				done[i] = true
				continue
			}
			v.Results[i] = res
			done[i] = true
		}
		if allDone {
			break
		}
	}
	for i, r := range v.Results {
		if r == nil {
			return nil, fmt.Errorf("mvee: variant %d did not finish", i)
		}
		if r.Trap != nil {
			v.Trapped = true
			if e.Incidents != nil {
				va := e.Variants[i]
				e.Incidents.Add(incident.FromTrap(e.campaign(), va.Proc.Cfg.Name, va.Seed, i, "mvee", va.Proc, *r.Trap, r.Instructions))
			}
		}
	}

	// Compare the event streams pairwise against variant 0.
	base := v.Results[0]
	for i, r := range v.Results[1:] {
		if diff := compare(base, r); diff != "" {
			v.Diverged = true
			v.Reason = fmt.Sprintf("variant %d vs 0: %s", i+1, diff)
			if e.Incidents != nil {
				va := e.Variants[i+1]
				rec := incident.Record{
					Campaign: e.campaign(), Config: va.Proc.Cfg.Name,
					Seed: va.Seed, Trial: i + 1,
					Kind: "divergence", Via: "mvee",
					Origin: v.Reason, Instr: r.Instructions,
				}
				rec.Seal()
				e.Incidents.Add(rec)
			}
			return v, nil
		}
	}
	return v, nil
}

func (e *Engine) campaign() string {
	if e.Campaign != "" {
		return e.Campaign
	}
	return "mvee"
}

func compare(a, b *vm.Result) string {
	if a.Halted != b.Halted {
		return fmt.Sprintf("halt status %v vs %v", a.Halted, b.Halted)
	}
	if (a.Fault == nil) != (b.Fault == nil) {
		return "one variant faulted"
	}
	if (a.Trap == nil) != (b.Trap == nil) {
		return "one variant detonated a booby trap"
	}
	if a.ExitStatus != b.ExitStatus {
		return fmt.Sprintf("exit status %d vs %d", a.ExitStatus, b.ExitStatus)
	}
	if len(a.Output) != len(b.Output) {
		return fmt.Sprintf("output length %d vs %d", len(a.Output), len(b.Output))
	}
	for i := range a.Output {
		if a.Output[i] != b.Output[i] {
			return fmt.Sprintf("output word %d: %#x vs %#x", i, a.Output[i], b.Output[i])
		}
	}
	return ""
}

// CorruptAll models an attacker whose malicious input induces the same
// absolute-address write in every variant (the supervisor replicates
// inputs, and a leaked address is only meaningful in the variant it leaked
// from). Writes that fault in a variant are recorded as a pre-execution
// perturbation of that variant rather than an error — the corruption lands
// wherever the diversified layout puts that address.
func (e *Engine) CorruptAll(addr, value uint64) {
	for _, va := range e.Variants {
		// Ignore errors: hitting an unmapped or protected page in some
		// variant is exactly the asymmetry the MVEE later observes (the
		// write simply has no effect there, or would have killed that
		// variant — either way behaviour diverges).
		_ = va.Proc.Space.Write64(addr, value)
	}
}
