package rt

import (
	"testing"

	"r2c/internal/codegen"
	"r2c/internal/defense"
	"r2c/internal/image"
	"r2c/internal/mem"
	"r2c/internal/telemetry"
	"r2c/internal/tir"
)

func buildProcess(t *testing.T, cfg defense.Config, seed uint64) *Process {
	t.Helper()
	mb := tir.NewModule("rttest")
	mb.AddGlobal("g", 8, 42)
	leaf := mb.NewFunc("leaf", 1)
	l := leaf.NewLocal("x", 8)
	a := leaf.AddrLocal(l)
	leaf.Store(a, 0, leaf.Param(0))
	leaf.Ret(leaf.Load(a, 0))
	main := mb.NewFunc("main", 0)
	v := main.Const(1)
	r := main.Call("leaf", v)
	main.Output(r)
	main.RetVoid()
	mb.SetEntry("main")
	m := mb.MustBuild()

	prog, err := codegen.Compile(m, cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	img, err := image.Link(prog, seed+5)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProcess(img, seed+9)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMemoryMapPermissions(t *testing.T) {
	p := buildProcess(t, defense.R2CFull(), 1)
	// Text is execute-only: fetch works, read faults.
	if err := p.Space.CheckExec(p.Img.Entry); err != nil {
		t.Fatalf("entry not executable: %v", err)
	}
	if _, err := p.Space.Read64(p.Img.Entry); err == nil {
		t.Fatal("execute-only text is readable")
	}
	// Without XOnlyText the text is readable.
	p2 := buildProcess(t, defense.Off(), 1)
	if _, err := p2.Space.Read64(p2.Img.Entry); err != nil {
		t.Fatalf("baseline text unreadable: %v", err)
	}
	// Data is initialized and readable.
	g := p.Img.DataSyms["g"]
	v, err := p.Space.Read64(g.Addr)
	if err != nil || v != 42 {
		t.Fatalf("global g = %d, %v", v, err)
	}
	// Stack is mapped and 16-byte aligned.
	if p.InitialRSP%16 != 0 {
		t.Fatalf("initial rsp %#x misaligned", p.InitialRSP)
	}
	if err := p.Space.Write64(p.InitialRSP-8, 1); err != nil {
		t.Fatalf("stack unwritable: %v", err)
	}
}

func TestBTDPConstructor(t *testing.T) {
	p := buildProcess(t, defense.R2CFull(), 3)
	cfg := p.Cfg
	if len(p.GuardPages) != cfg.BTDPGuardPages {
		t.Fatalf("guard pages = %d, want %d", len(p.GuardPages), cfg.BTDPGuardPages)
	}
	// Guard pages are page-aligned, protected, and scattered (not all
	// contiguous).
	contiguous := 0
	seen := map[uint64]bool{}
	for _, g := range p.GuardPages {
		if g%mem.PageSize != 0 {
			t.Fatalf("guard page %#x unaligned", g)
		}
		if seen[g] {
			t.Fatalf("duplicate guard page %#x", g)
		}
		seen[g] = true
		if _, err := p.Space.Read64(g); err == nil {
			t.Fatalf("guard page %#x readable", g)
		}
		if seen[g-mem.PageSize] || seen[g+mem.PageSize] {
			contiguous++
		}
	}
	if contiguous == len(p.GuardPages) {
		t.Error("guard pages are fully contiguous, not scattered")
	}
	// The pointer array lives on the heap (hardened layout) and every
	// value points into a kept guard page.
	hb, he := p.Heap.Bounds()
	if p.BTDPArray < hb || p.BTDPArray >= he {
		t.Fatalf("BTDP array at %#x not on the heap", p.BTDPArray)
	}
	if len(p.BTDPValues) != cfg.BTDPArrayLen {
		t.Fatalf("array has %d values, want %d", len(p.BTDPValues), cfg.BTDPArrayLen)
	}
	for _, v := range p.BTDPValues {
		if !p.IsGuardAddr(v) {
			t.Fatalf("BTDP %#x not inside a guard page", v)
		}
	}
	// The data section holds the array pointer.
	ds := p.Img.DataSyms[codegen.SymBTDPArrayPtr]
	got, err := p.Space.Read64(ds.Addr)
	if err != nil || got != p.BTDPArray {
		t.Fatalf("array pointer slot = %#x, want %#x (%v)", got, p.BTDPArray, err)
	}
	// Decoys point into guard pages but never occur in the array
	// (Section 5.2: "these additional BTDPs never occur on the stack").
	inArray := map[uint64]bool{}
	for _, v := range p.BTDPValues {
		inArray[v] = true
	}
	if len(p.DecoyVals) != cfg.BTDPDataDecoys {
		t.Fatalf("decoys = %d, want %d", len(p.DecoyVals), cfg.BTDPDataDecoys)
	}
	for _, d := range p.DecoyVals {
		if !p.IsGuardAddr(d) {
			t.Fatalf("decoy %#x not a guard pointer", d)
		}
		if inArray[d] {
			t.Fatalf("decoy %#x occurs in the BTDP array", d)
		}
	}
}

func TestNaiveBTDPArrayInData(t *testing.T) {
	cfg := defense.R2CFull()
	cfg.BTDPNaiveDataArray = true
	p := buildProcess(t, cfg, 4)
	ds := p.Img.DataSyms[codegen.SymBTDPArray]
	if ds == nil {
		t.Fatal("naive array symbol missing")
	}
	if p.BTDPArray != ds.Addr {
		t.Fatalf("naive array at %#x, want data section %#x", p.BTDPArray, ds.Addr)
	}
	v, err := p.Space.Read64(ds.Addr)
	if err != nil || !p.IsGuardAddr(v) {
		t.Fatalf("naive array word 0 = %#x (%v)", v, err)
	}
}

func TestClassifyFault(t *testing.T) {
	p := buildProcess(t, defense.R2CFull(), 5)
	// A BTDP dereference.
	f := &mem.Fault{Addr: p.BTDPValues[0], Access: mem.AccessRead}
	if k := p.ClassifyFault(p.Img.Entry, f); k != TrapBTDP {
		t.Fatalf("guard fault classified as %v", k)
	}
	// Control flow in a booby-trap function.
	var btAddr uint64
	for _, name := range p.Img.FuncOrder {
		if p.Img.Funcs[name].F.BoobyTrap {
			btAddr = p.Img.Funcs[name].Start
			break
		}
	}
	if k := p.ClassifyFault(btAddr, nil); k != TrapBTRA {
		t.Fatalf("booby trap pc classified as %v", k)
	}
	// A plain unmapped fault is no booby trap.
	f2 := &mem.Fault{Addr: 0xdead0000, Access: mem.AccessWrite, Unmapped: true}
	if k := p.ClassifyFault(p.Img.Entry, f2); k != TrapNone {
		t.Fatalf("plain fault classified as %v", k)
	}
}

func TestRerollBTRAsPreservesRAs(t *testing.T) {
	p := buildProcess(t, defense.R2CPush(), 6)
	type snap struct{ ras, btras []uint64 }
	take := func() snap {
		var s snap
		for _, name := range p.Img.FuncOrder {
			f := p.Img.Funcs[name].F
			for i := range f.Instrs {
				in := &f.Instrs[i]
				if in.Kind != 0 && in.RetAddr {
					s.ras = append(s.ras, in.Imm)
				}
				if in.BTRA {
					s.btras = append(s.btras, in.Imm)
				}
			}
		}
		return s
	}
	before := take()
	if err := p.RerollBTRAs(777); err != nil {
		t.Fatal(err)
	}
	after := take()
	for i := range before.ras {
		if before.ras[i] != after.ras[i] {
			t.Fatal("reroll changed a real return address")
		}
	}
	changed := 0
	for i := range before.btras {
		if before.btras[i] != after.btras[i] {
			changed++
		}
		if !p.Img.IsBoobyTrapAddr(after.btras[i]) {
			t.Fatal("rerolled BTRA does not point into a booby trap")
		}
	}
	if changed == 0 {
		t.Fatal("reroll changed nothing")
	}
}

// TestTrapRingBoundsGrowth drives RecordTrap far past the ring capacity and
// checks the invariants the observability layer depends on: memory stays
// bounded at TrapRingCap, TrapCount keeps the exact total, Traps returns the
// newest events oldest-first, LastTrap is the final event, and the telemetry
// counter matches the total per trap kind.
func TestTrapRingBoundsGrowth(t *testing.T) {
	p := buildProcess(t, defense.R2CFull(), 3)
	reg := telemetry.NewRegistry()
	p.Obs = &telemetry.Observer{Registry: reg}

	const n = 3*TrapRingCap + 17
	for i := 0; i < n; i++ {
		p.RecordTrap(TrapEvent{Kind: TrapBTRA, PC: uint64(i)})
	}
	if got := p.TrapCount(); got != n {
		t.Fatalf("TrapCount = %d, want %d", got, n)
	}
	traps := p.Traps()
	if len(traps) != TrapRingCap {
		t.Fatalf("retained %d traps, want ring cap %d", len(traps), TrapRingCap)
	}
	for i, ev := range traps {
		if want := uint64(n - TrapRingCap + i); ev.PC != want {
			t.Fatalf("traps[%d].PC = %d, want %d (oldest-first rotation)", i, ev.PC, want)
		}
	}
	if last := p.LastTrap(); last == nil || last.PC != n-1 {
		t.Fatalf("LastTrap = %v, want PC %d", last, n-1)
	}
	key := telemetry.Key("rt.traps", "kind", TrapBTRA.String())
	if got := reg.Snapshot().Counters[key]; got != n {
		t.Fatalf("telemetry counter %s = %d, want %d", key, got, n)
	}
}

// Once the ring overwrites, every overwrite must be accounted: the dropped
// counter (and its registry mirror) is the signal that forensic evidence was
// lost to ring pressure.
func TestDroppedTrapsAccounting(t *testing.T) {
	p := buildProcess(t, defense.R2CFull(), 5)
	reg := telemetry.NewRegistry()
	p.Obs = &telemetry.Observer{Registry: reg}

	const extra = 9
	for i := 0; i < TrapRingCap+extra; i++ {
		p.RecordTrap(TrapEvent{Kind: TrapBTRA, PC: uint64(i)})
	}
	if got := p.DroppedTraps(); got != extra {
		t.Fatalf("DroppedTraps = %d, want %d", got, extra)
	}
	key := telemetry.Key("rt.traps.dropped")
	if got := reg.Snapshot().Counters[key]; got != extra {
		t.Fatalf("counter %s = %d, want %d", key, got, extra)
	}
	// Under the cap no drops are charged.
	p2 := buildProcess(t, defense.R2CFull(), 5)
	p2.RecordTrap(TrapEvent{Kind: TrapBTRA, PC: 1})
	if got := p2.DroppedTraps(); got != 0 {
		t.Fatalf("DroppedTraps under cap = %d", got)
	}
}

// An observer with FlightCap attaches a recorder at load time, armed with
// the process's guard pages; trap and fault events stream onto it.
func TestFlightRecorderAttachesAndArms(t *testing.T) {
	mb := tir.NewModule("rttest")
	mb.AddGlobal("g", 8, 42)
	main := mb.NewFunc("main", 0)
	main.Output(main.Const(1))
	main.RetVoid()
	mb.SetEntry("main")
	m := mb.MustBuild()
	prog, err := codegen.Compile(m, defense.R2CFull(), 7)
	if err != nil {
		t.Fatal(err)
	}
	img, err := image.Link(prog, 12)
	if err != nil {
		t.Fatal(err)
	}
	obs := &telemetry.Observer{Registry: telemetry.NewRegistry(), FlightCap: 32}
	p, err := NewProcessObserved(img, 21, obs)
	if err != nil {
		t.Fatal(err)
	}
	if p.Flight == nil || p.Flight.Cap() != 32 {
		t.Fatalf("flight recorder not attached: %+v", p.Flight)
	}
	if len(p.GuardPages) == 0 {
		t.Fatal("r2c-full process kept no guard pages")
	}
	if !p.Flight.NearGuard(p.GuardPages[0] + 8) {
		t.Fatal("recorder not armed with the process's guard pages")
	}

	p.RecordTrap(TrapEvent{Kind: TrapBTDP, PC: 0x100, Addr: p.GuardPages[0]})
	p.NoteFault(0x200, &mem.Fault{Addr: 0xdead, Access: mem.AccessRead, Unmapped: true})
	if p.LastFaultPC() != 0x200 {
		t.Fatalf("LastFaultPC = %#x", p.LastFaultPC())
	}
	evs := p.Flight.Events()
	if len(evs) != 2 || evs[0].Kind != telemetry.FlightTrap || evs[1].Kind != telemetry.FlightFault {
		t.Fatalf("flight events = %+v", evs)
	}

	// Without FlightCap no recorder attaches and every hook is a no-op.
	p0, err := NewProcessObserved(img, 21, &telemetry.Observer{})
	if err != nil {
		t.Fatal(err)
	}
	if p0.Flight != nil {
		t.Fatal("recorder attached without FlightCap")
	}
	p0.NoteFault(0x300, &mem.Fault{Addr: 1, Access: mem.AccessRead})
}
