// Package rt is the process runtime: it loads a linked image into a fresh
// address space (applying the execute-only text mapping), runs the BTDP
// startup constructor (Section 5.2), services the VM's runtime calls
// (malloc/free/output/exit), classifies faults as booby-trap detonations,
// and implements the CFI-directive-driven stack unwinder (Section 7.2.4).
package rt

import (
	"errors"
	"fmt"

	"r2c/internal/codegen"
	"r2c/internal/defense"
	"r2c/internal/heap"
	"r2c/internal/image"
	"r2c/internal/isa"
	"r2c/internal/mem"
	"r2c/internal/rng"
	"r2c/internal/telemetry"
)

// TrapKind classifies a detonated booby trap.
type TrapKind int

const (
	// TrapNone: the fault was not a booby trap (a plain crash).
	TrapNone TrapKind = iota
	// TrapBTRA: control flow reached a booby-trap function — an attacker
	// followed or corrupted a return address into a BTRA (Section 4.1).
	TrapBTRA
	// TrapBTDP: a guard page was dereferenced — an attacker followed a
	// booby-trapped data pointer (Section 4.2).
	TrapBTDP
	// TrapProlog: execution hit a prolog trap — an attacker miscomputed a
	// gadget address from a leaked function pointer (Section 4.3).
	TrapProlog
	// TrapBTRACheck: a post-return BTRA consistency check failed — an
	// attacker corrupted return-address candidates (the Section 7.3
	// hardening against the crash side channel).
	TrapBTRACheck
	// TrapShadowStack: a RET consumed a return address that does not match
	// the protected shadow copy — backward-edge CFI enforcement
	// (Section 8.2).
	TrapShadowStack
)

func (k TrapKind) String() string {
	switch k {
	case TrapNone:
		return "none"
	case TrapBTRA:
		return "btra"
	case TrapBTDP:
		return "btdp"
	case TrapProlog:
		return "prolog-trap"
	case TrapBTRACheck:
		return "btra-check"
	case TrapShadowStack:
		return "shadow-stack"
	}
	return "?"
}

// TrapEvent records one booby-trap detonation — the reactive signal a
// monitoring system would act on.
type TrapEvent struct {
	Kind TrapKind
	PC   uint64
	Addr uint64 // faulting data address for TrapBTDP
}

// Process is a loaded program instance.
type Process struct {
	Img   *image.Image
	Cfg   *defense.Config
	Space *mem.Space
	Heap  *heap.Allocator

	// BTDP runtime state (ground truth for tests and the attack oracle).
	GuardPages []uint64 // page-aligned addresses of kept guard pages
	BTDPArray  uint64   // address of the pointer array (heap or data)
	BTDPValues []uint64 // pointer values in the array
	DecoyVals  []uint64 // decoy values placed in the data section

	// Output collects SysOutput words — the observable behaviour that
	// differential tests compare across defense configurations.
	Output []uint64
	// ExitStatus is set by SysExit.
	ExitStatus uint64

	// Obs receives structured trap/fault/constructor events and counters.
	// Nil disables telemetry; every use is nil-safe.
	Obs *telemetry.Observer

	// Flight is the control-flow flight recorder the VM dispatch loops feed
	// (calls, returns, jumps, loads near guard pages). Nil — the default —
	// disables recording; it is attached when the observer configures a
	// nonzero FlightCap, and armed with the BTDP guard-page geometry so
	// near-guard loads are captured. On a trap the ring is snapshotted into
	// an incident record.
	Flight *telemetry.FlightRecorder

	// InitialRSP is the stack pointer at entry.
	InitialRSP uint64

	// trapRing retains the most recent trap events (capped so long attack
	// campaigns cannot balloon memory); trapTotal counts every detonation
	// and trapDropped how many events the cap overwrote.
	trapRing    []TrapEvent
	trapHead    int
	trapTotal   uint64
	trapDropped uint64

	// lastFaultPC remembers the PC of the most recent NoteFault, so
	// incident records can attribute a fault to its faulting instruction
	// (vm.Result carries only the mem.Fault, not the PC).
	lastFaultPC uint64

	rnd *rng.RNG
}

// TrapRingCap is how many recent trap events a process retains. The total
// detonation count is unbounded (TrapCount); only the event details of the
// newest TrapRingCap detonations are kept.
const TrapRingCap = 256

// NewProcess maps the image and runs load-time initialization.
func NewProcess(img *image.Image, seed uint64) (*Process, error) {
	return NewProcessObserved(img, seed, nil)
}

// NewProcessObserved is NewProcess with a telemetry observer attached from
// the start, so load-time events (the BTDP constructor) are captured too.
// obs may be nil.
func NewProcessObserved(img *image.Image, seed uint64, obs *telemetry.Observer) (*Process, error) {
	cfg := &img.Prog.Config
	sp := mem.NewSpace()

	textPerm := mem.PermRX
	if cfg.XOnlyText {
		textPerm = mem.PermXOnly
	}
	if err := sp.Map(mem.AlignDown(img.TextBase, mem.PageSize), mem.AlignUp(img.TextEnd, mem.PageSize)-mem.AlignDown(img.TextBase, mem.PageSize), textPerm); err != nil {
		return nil, fmt.Errorf("rt: map text: %w", err)
	}
	if err := sp.Map(img.DataBase, img.DataEnd-img.DataBase, mem.PermRW); err != nil {
		return nil, fmt.Errorf("rt: map data: %w", err)
	}
	if err := sp.Map(img.StackLow, img.StackHi-img.StackLow, mem.PermRW); err != nil {
		return nil, fmt.Errorf("rt: map stack: %w", err)
	}

	r := rng.New(seed)
	h, err := heap.New(sp, img.HeapBase, img.HeapEnd, r.Split())
	if err != nil {
		return nil, fmt.Errorf("rt: heap: %w", err)
	}

	p := &Process{Img: img, Cfg: cfg, Space: sp, Heap: h, Obs: obs, rnd: r}

	// Write the initialized data section.
	for addr, w := range img.DataInit {
		if err := sp.Write64(addr, w); err != nil {
			return nil, fmt.Errorf("rt: data init at %#x: %w", addr, err)
		}
	}

	// The stack pointer starts 16-byte aligned below the stack top, per
	// the machine convention (body rsp % 16 == 0).
	p.InitialRSP = mem.AlignDown(img.StackHi-64, 16)

	if cfg.BTDP {
		if err := p.runBTDPConstructor(); err != nil {
			return nil, fmt.Errorf("rt: btdp constructor: %w", err)
		}
	}

	// Attach the flight recorder after the constructor, so its guard-zone
	// filter sees the final guard-page layout. Capacity 0 leaves Flight nil
	// and the VM hooks dormant.
	if cap := obs.FlightRecorderCap(); cap > 0 {
		p.Flight = telemetry.NewFlightRecorder(cap)
		p.Flight.ArmGuards(p.GuardPages, mem.PageSize)
	}
	return p, nil
}

// runBTDPConstructor performs the startup sequence of Section 5.2: allocate
// a batch of page-aligned, page-sized heap chunks; free all but a random
// subset, leaving the survivors scattered across the heap; revoke their
// read permission; and publish pointers to random offsets inside them.
// In the hardened layout (Figure 5, right) the pointer array itself lives
// on the heap and the data section holds only a pointer to it plus decoy
// BTDPs; in the naive ablation the array sits in the data section.
func (p *Process) runBTDPConstructor() error {
	cfg := p.Cfg
	if cfg.BTDPGuardPages <= 0 || cfg.BTDPScatterAllocs < cfg.BTDPGuardPages {
		return fmt.Errorf("invalid BTDP page parameters (%d of %d)", cfg.BTDPGuardPages, cfg.BTDPScatterAllocs)
	}

	pages := make([]uint64, cfg.BTDPScatterAllocs)
	for i := range pages {
		a, err := p.Heap.AllocAligned(mem.PageSize, mem.PageSize)
		if err != nil {
			return err
		}
		pages[i] = a
	}
	keepIdx := p.rnd.Perm(len(pages))[:cfg.BTDPGuardPages]
	kept := map[int]bool{}
	for _, i := range keepIdx {
		kept[i] = true
	}
	for i, a := range pages {
		if !kept[i] {
			if err := p.Heap.Free(a); err != nil {
				return err
			}
		}
	}
	for _, i := range keepIdx {
		p.GuardPages = append(p.GuardPages, pages[i])
	}

	// Pointer array: random offsets inside the guard pages. Offsets are
	// word-aligned so the values look like ordinary object pointers.
	p.BTDPValues = make([]uint64, cfg.BTDPArrayLen)
	for i := range p.BTDPValues {
		page := p.GuardPages[p.rnd.Intn(len(p.GuardPages))]
		p.BTDPValues[i] = page + uint64(p.rnd.Intn(mem.PageSize/8))*8
	}

	if cfg.BTDPNaiveDataArray {
		ds, ok := p.Img.DataSyms[codegen.SymBTDPArray]
		if !ok {
			return errors.New("naive BTDP array symbol missing")
		}
		p.BTDPArray = ds.Addr
		for i, v := range p.BTDPValues {
			if err := p.Space.Write64(ds.Addr+uint64(i)*8, v); err != nil {
				return err
			}
		}
	} else {
		arr, err := p.Heap.Alloc(uint64(cfg.BTDPArrayLen) * 8)
		if err != nil {
			return err
		}
		p.BTDPArray = arr
		for i, v := range p.BTDPValues {
			if err := p.Space.Write64(arr+uint64(i)*8, v); err != nil {
				return err
			}
		}
		ds, ok := p.Img.DataSyms[codegen.SymBTDPArrayPtr]
		if !ok {
			return errors.New("BTDP array pointer symbol missing")
		}
		if err := p.Space.Write64(ds.Addr, arr); err != nil {
			return err
		}
		// Decoy BTDPs in the data section: guard-page pointers that never
		// occur in the array (and therefore never on the stack), so
		// data-section/stack intersection cannot identify BTDPs.
		inArray := map[uint64]bool{}
		for _, v := range p.BTDPValues {
			inArray[v] = true
		}
		for i := 0; i < cfg.BTDPDataDecoys; i++ {
			name := fmt.Sprintf("%s%d", codegen.SymBTDPDecoyPrefix, i)
			ds, ok := p.Img.DataSyms[name]
			if !ok {
				return fmt.Errorf("decoy symbol %s missing", name)
			}
			var v uint64
			for {
				page := p.GuardPages[p.rnd.Intn(len(p.GuardPages))]
				v = page + uint64(p.rnd.Intn(mem.PageSize/8))*8
				if !inArray[v] {
					break
				}
			}
			p.DecoyVals = append(p.DecoyVals, v)
			if err := p.Space.Write64(ds.Addr, v); err != nil {
				return err
			}
		}
	}

	// Finally, revoke access: any dereference now faults immediately.
	for _, pg := range p.GuardPages {
		if err := p.Heap.Protect(pg, mem.PermNone); err != nil {
			return err
		}
	}

	p.Obs.Counter("rt.btdp.constructors").Inc()
	p.Obs.Gauge("rt.btdp.guard_pages").Set(float64(len(p.GuardPages)))
	p.Obs.Gauge("rt.btdp.array_len").Set(float64(len(p.BTDPValues)))
	p.Obs.Gauge("rt.btdp.data_decoys").Set(float64(len(p.DecoyVals)))
	p.Obs.Emit("btdp-init", map[string]any{
		"guard_pages": len(p.GuardPages),
		"array_addr":  p.BTDPArray,
		"array_len":   len(p.BTDPValues),
		"decoys":      len(p.DecoyVals),
		"naive_array": cfg.BTDPNaiveDataArray,
	})
	return nil
}

// IsGuardAddr reports whether addr falls inside a BTDP guard page.
func (p *Process) IsGuardAddr(addr uint64) bool {
	page := mem.AlignDown(addr, mem.PageSize)
	for _, g := range p.GuardPages {
		if g == page {
			return true
		}
	}
	return false
}

// ClassifyFault interprets a memory fault or trap location as a booby-trap
// signal. A monitoring system (or the program's own handler) would use this
// to respond to an ongoing attack (Section 4.2).
func (p *Process) ClassifyFault(pc uint64, f *mem.Fault) TrapKind {
	if f != nil && p.IsGuardAddr(f.Addr) {
		return TrapBTDP
	}
	if p.Img.IsBoobyTrapAddr(pc) {
		return TrapBTRA
	}
	if pf := p.Img.FuncAt(pc); pf != nil && !pf.F.BoobyTrap {
		if in, ok := p.Img.Instrs[pc]; ok && in.Kind == isa.KTrap {
			// A BTRA-tagged trap is a failed consistency check (Section
			// 7.3); otherwise it is a prolog trap.
			if in.BTRA {
				return TrapBTRACheck
			}
			return TrapProlog
		}
	}
	return TrapNone
}

// RecordTrap records a booby-trap detonation: it bumps the total count,
// stores the event in the bounded ring of recent detonations, and streams
// it to the telemetry observer. The ring cap keeps long attack campaigns
// (thousands of detonations across restarted workers) from ballooning the
// process's memory.
func (p *Process) RecordTrap(ev TrapEvent) {
	p.trapTotal++
	if len(p.trapRing) < TrapRingCap {
		p.trapRing = append(p.trapRing, ev)
	} else {
		// The cap overwrites the oldest retained event; account for the
		// loss so long campaigns can't silently eat forensic evidence.
		p.trapDropped++
		p.Obs.Counter("rt.traps.dropped").Inc()
		p.trapRing[p.trapHead] = ev
		p.trapHead = (p.trapHead + 1) % TrapRingCap
	}
	// The detonation itself goes on the flight record. Instr stays 0: the
	// fast path calls stopFault before its block rollback, so a live
	// instruction count here would differ between dispatch engines.
	p.Flight.Record(telemetry.FlightTrap, ev.PC, ev.Addr, 0)
	p.Obs.Counter("rt.traps", "kind", ev.Kind.String()).Inc()
	if p.Obs != nil && p.Obs.Tracer != nil {
		// Resolve defense provenance only when an event sink is listening:
		// the lookup is cheap but off the uninstrumented hot path.
		pv := p.TrapProvenance(ev)
		attrs := map[string]any{
			"trap": ev.Kind.String(), "pc": ev.PC, "addr": ev.Addr,
			"func": pv.Func, "origin": pv.String(),
		}
		if ev.Kind == TrapBTDP {
			attrs["source"] = pv.Source
			attrs["guard_page"] = pv.PageIndex
		}
		if len(pv.Origins) > 0 {
			o := pv.Origins[0]
			attrs["planted_by"] = o.Caller
			attrs["call_site"] = o.CallSiteID
			attrs["slot"] = o.Slot
			attrs["pre"] = o.Pre
		}
		p.Obs.Emit("trap", attrs)
	}
}

// Traps returns the retained trap events, oldest first. When more than
// TrapRingCap detonations occurred, only the newest TrapRingCap are
// returned; TrapCount still reports the true total.
func (p *Process) Traps() []TrapEvent {
	if p.trapHead == 0 {
		return append([]TrapEvent(nil), p.trapRing...)
	}
	out := make([]TrapEvent, 0, len(p.trapRing))
	out = append(out, p.trapRing[p.trapHead:]...)
	out = append(out, p.trapRing[:p.trapHead]...)
	return out
}

// LastTrap returns the most recent trap event, or nil when none fired.
func (p *Process) LastTrap() *TrapEvent {
	if len(p.trapRing) == 0 {
		return nil
	}
	i := p.trapHead - 1
	if i < 0 {
		i = len(p.trapRing) - 1
	}
	ev := p.trapRing[i]
	return &ev
}

// TrapCount returns the total number of detonations ever recorded.
func (p *Process) TrapCount() uint64 { return p.trapTotal }

// DroppedTraps returns how many trap events the ring cap overwrote — the
// evidence TrapRingCap discarded (also exported as the rt.traps.dropped
// counter).
func (p *Process) DroppedTraps() uint64 { return p.trapDropped }

// LastFaultPC returns the PC of the most recent fault NoteFault saw, or 0
// when no fault occurred.
func (p *Process) LastFaultPC() uint64 { return p.lastFaultPC }

// NoteFault streams a memory-fault event; the VM calls it for every fault
// that stops execution, before booby-trap classification.
func (p *Process) NoteFault(pc uint64, f *mem.Fault) {
	if f == nil {
		return
	}
	p.lastFaultPC = pc
	// Instr stays 0 for dispatch-engine parity; see RecordTrap.
	p.Flight.Record(telemetry.FlightFault, pc, f.Addr, 0)
	p.Obs.Counter("rt.faults", "access", f.Access.String()).Inc()
	p.Obs.Emit("fault", map[string]any{
		"pc": pc, "addr": f.Addr, "access": f.Access.String(), "unmapped": f.Unmapped,
	})
}

// Frame is one unwound stack frame.
type Frame struct {
	PC       uint64 // return address (or initial pc for frame 0)
	FuncName string
	RAAddr   uint64 // address of the return-address slot
}

// Unwind walks the stack from a PC inside a function body and its
// post-prologue stack pointer, driven by the emitted unwind metadata and
// the per-call-site CFI adjustments — the mechanism that keeps exception
// handling working despite BTRAs (Section 7.2.4). It returns the frames
// from innermost to outermost, stopping at _start or after maxFrames.
func (p *Process) Unwind(pc, rsp uint64, maxFrames int) ([]Frame, error) {
	var frames []Frame
	raBySite := p.Img.CallSiteRA
	// Reverse map RA value -> call site (RA values are unique per site).
	siteByRA := make(map[uint64]*codegen.CallSite)
	for _, name := range p.Img.FuncOrder {
		f := p.Img.Funcs[name].F
		for i := range f.CallSites {
			cs := &f.CallSites[i]
			if ra, ok := raBySite[cs.ID]; ok {
				siteByRA[ra] = cs
			}
		}
	}

	for len(frames) < maxFrames {
		pf := p.Img.FuncAt(pc)
		if pf == nil {
			return frames, fmt.Errorf("rt: unwind: pc %#x not in any function", pc)
		}
		if pf.F.Name == image.EntrySym {
			frames = append(frames, Frame{PC: pc, FuncName: pf.F.Name})
			return frames, nil
		}
		ue := p.Img.UnwindAt(pc)
		if ue == nil {
			return frames, fmt.Errorf("rt: unwind: no unwind entry for %#x (%s)", pc, pf.F.Name)
		}
		raAddr := rsp + uint64(ue.FrameSize) + uint64(ue.NumSaves)*8 + uint64(ue.PostOffset)*8
		ra, err := p.Space.Read64(raAddr)
		if err != nil {
			return frames, fmt.Errorf("rt: unwind: read RA at %#x: %w", raAddr, err)
		}
		frames = append(frames, Frame{PC: pc, FuncName: pf.F.Name, RAAddr: raAddr})

		// Per-call-site CFI data: the caller's stack adjustments around
		// this call (pre-offset, stack arguments, rbp save, padding).
		site, ok := siteByRA[ra]
		if !ok {
			if p.Img.FuncAt(ra) != nil && p.Img.Funcs[image.EntrySym].Start <= ra && ra < p.Img.Funcs[image.EntrySym].End {
				frames = append(frames, Frame{PC: ra, FuncName: image.EntrySym})
				return frames, nil
			}
			return frames, fmt.Errorf("rt: unwind: RA %#x matches no call site", ra)
		}
		callerRsp := raAddr + 8 + uint64(site.Pre)*8
		if site.StackArgs > 0 {
			words := site.StackArgs
			oia := p.Cfg.OIAEnabled()
			if oia {
				words++
			}
			if words%2 == 1 {
				words++ // alignment pad
			}
			callerRsp += uint64(words) * 8
		}
		pc, rsp = ra, callerRsp
	}
	return frames, nil
}

// RerollBTRAs re-randomizes every call site's BTRA set in place — the
// runtime support for the InsecureDynamicBTRAs ablation (Section 4.1
// property B: "more dynamism is less effective"). Real return addresses
// are left untouched; only decoy words in AVX arrays and push immediates
// change.
func (p *Process) RerollBTRAs(seed uint64) error {
	r := rng.New(seed)
	pool := p.Cfg.BTRAPoolSize
	if pool <= 0 {
		return errors.New("rt: no booby-trap pool")
	}
	freshAddr := func() uint64 {
		name := codegen.BoobyTrapSym(r.Intn(pool))
		pf := p.Img.Funcs[name]
		return pf.Start + 4*uint64(r.Intn(codegen.TrapFuncLen))
	}
	// Push-mode immediates live in (execute-only) text: rewrite the
	// instruction table.
	for _, name := range p.Img.FuncOrder {
		f := p.Img.Funcs[name].F
		for i := range f.Instrs {
			in := &f.Instrs[i]
			if in.Kind == isa.KPushImm && in.BTRA {
				v := freshAddr()
				in.Imm = v
				in.Target = v
			}
		}
	}
	// The predecoded fast-path program caches push immediates; refresh it
	// so the VM executes the rerolled values.
	p.Img.RebuildCode()
	// AVX-mode arrays live in the data section.
	for _, b := range p.Img.Prog.Blobs {
		ds := p.Img.DataSyms[b.Name]
		for i, w := range b.Words {
			if w.BTRA {
				if err := p.Space.Write64(ds.Addr+uint64(i)*8, freshAddr()); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
