package rt

import (
	"fmt"
	"strings"

	"r2c/internal/image"
	"r2c/internal/mem"
)

// Provenance explains a trap event in defense terms: which camouflage
// artifact the attacker touched and where the toolchain planted it. It is
// the forensic record a monitoring system (or the -forensics flag) renders;
// resolving it reads only immutable image metadata and the process's BTDP
// ground truth, never the simulation state.
type Provenance struct {
	// Kind echoes the trap class.
	Kind TrapKind
	// Func is the function containing the trap PC: the booby-trap function
	// for BTRA detonations, the victim function for prolog traps and check
	// failures ("" when the PC is outside any function).
	Func string
	// Origins lists the call sites that planted the consumed BTRA (empty
	// for non-BTRA traps, or when a rerolled/unknown value has no link-time
	// origin).
	Origins []image.BTRAOrigin
	// Guard fields (TrapBTDP only): the faulting guard page (page-aligned),
	// its index in the process's kept-page list, and the byte offset of the
	// access within the page.
	GuardPage uint64
	PageIndex int
	PageOff   uint64
	// Source says which BTDP artifact held the followed pointer: "array"
	// (with SlotIndex into the heap BTDP array), "decoy" (with SlotIndex
	// into the data-section decoys), or "guard" when the faulting address
	// matches no planted value (the attacker derived it).
	Source    string
	SlotIndex int
}

// String renders a one-line forensic summary.
func (pv *Provenance) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", pv.Kind)
	switch pv.Kind {
	case TrapBTRA:
		if len(pv.Origins) == 0 {
			fmt.Fprintf(&b, " in %s (no link-time origin)", pv.Func)
			break
		}
		o := pv.Origins[0]
		side := "post"
		if o.Pre {
			side = "pre"
		}
		fmt.Fprintf(&b, " in %s planted by %s call site %d (%s slot %d, %s setup)",
			o.TrapFunc, o.Caller, o.CallSiteID, side, o.Slot, o.Setup)
		if n := len(pv.Origins); n > 1 {
			fmt.Fprintf(&b, " +%d more sites", n-1)
		}
	case TrapBTDP:
		fmt.Fprintf(&b, " guard page %d (+%#x) via %s", pv.PageIndex, pv.PageOff, pv.Source)
		if pv.SlotIndex >= 0 {
			fmt.Fprintf(&b, "[%d]", pv.SlotIndex)
		}
	default:
		if pv.Func != "" {
			fmt.Fprintf(&b, " in %s", pv.Func)
		}
	}
	return b.String()
}

// TrapProvenance resolves a trap event against the image's link-time
// metadata and the process's load-time BTDP ground truth.
func (p *Process) TrapProvenance(ev TrapEvent) Provenance {
	pv := Provenance{Kind: ev.Kind, PageIndex: -1, SlotIndex: -1}
	if pf := p.Img.FuncAt(ev.PC); pf != nil {
		pv.Func = pf.F.Name
	}
	switch ev.Kind {
	case TrapBTRA:
		// A RET consuming a BTRA lands exactly on the planted word value,
		// so the detonation PC is the lookup key.
		pv.Origins = p.Img.BTRAOrigins(ev.PC)
	case TrapBTDP:
		pv.GuardPage = mem.AlignDown(ev.Addr, mem.PageSize)
		pv.PageOff = ev.Addr - pv.GuardPage
		for i, g := range p.GuardPages {
			if g == pv.GuardPage {
				pv.PageIndex = i
				break
			}
		}
		pv.Source = "guard"
		for i, v := range p.BTDPValues {
			if v == ev.Addr {
				pv.Source = "array"
				pv.SlotIndex = i
				break
			}
		}
		if pv.SlotIndex < 0 {
			for i, v := range p.DecoyVals {
				if v == ev.Addr {
					pv.Source = "decoy"
					pv.SlotIndex = i
					break
				}
			}
		}
	case TrapBTRACheck, TrapProlog, TrapShadowStack:
		// The owning function (already resolved above) is the provenance:
		// prolog traps and check failures detonate inside the victim
		// function; shadow-stack divergence reports the returning function.
	}
	return pv
}
