package rt

import (
	"strings"
	"testing"

	"r2c/internal/defense"
	"r2c/internal/mem"
)

// BTRA detonations resolve through the image's link-time index to the
// planting call site; BTDP faults resolve against the process's load-time
// guard-page and published-value ground truth.
func TestTrapProvenanceResolution(t *testing.T) {
	p := buildProcess(t, defense.R2CFull(), 3)
	img := p.Img

	// Find one planted BTRA address via the image index itself (the rt test
	// module is small, but every call site plants a full set).
	var btraAddr uint64
	for _, name := range img.FuncOrder {
		f := img.Funcs[name].F
		for i := range f.CallSites {
			for _, w := range f.CallSites[i].BTRAs {
				if w.BTRA && w.Sym != "" {
					btraAddr = img.Funcs[w.Sym].Start + uint64(w.Off)
				}
			}
		}
	}
	if btraAddr == 0 {
		t.Fatal("no planted BTRA in test image")
	}
	pv := p.TrapProvenance(TrapEvent{Kind: TrapBTRA, PC: btraAddr})
	if len(pv.Origins) == 0 {
		t.Fatal("planted BTRA resolved to no origin")
	}
	if !img.Funcs[pv.Func].F.BoobyTrap {
		t.Errorf("provenance func %q is not the booby trap", pv.Func)
	}
	if s := pv.String(); !strings.Contains(s, "planted by") {
		t.Errorf("BTRA provenance %q does not name the planting site", s)
	}

	// A published BTDP value faults as "array" with its slot index.
	if len(p.BTDPValues) == 0 || len(p.GuardPages) == 0 {
		t.Fatal("r2c-full process has no BTDP ground truth")
	}
	pv = p.TrapProvenance(TrapEvent{Kind: TrapBTDP, Addr: p.BTDPValues[0]})
	if pv.Source != "array" || pv.SlotIndex != 0 {
		t.Errorf("published BTDP resolved to (%s, %d), want (array, 0)", pv.Source, pv.SlotIndex)
	}
	if pv.GuardPage != mem.AlignDown(p.BTDPValues[0], mem.PageSize) {
		t.Errorf("guard page %#x not page-aligned to the fault", pv.GuardPage)
	}
	if pv.PageIndex < 0 {
		t.Error("published BTDP fault not attributed to a kept guard page")
	}

	// A derived address inside a guard page (not a planted value) reports
	// "guard": the attacker computed it, nothing published it.
	derived := p.GuardPages[0] + 9
	for _, v := range p.BTDPValues {
		if v == derived {
			t.Skip("derived probe collides with a published value")
		}
	}
	pv = p.TrapProvenance(TrapEvent{Kind: TrapBTDP, Addr: derived})
	if pv.Source == "array" {
		t.Errorf("derived address attributed to the published array")
	}
	if pv.PageIndex != 0 || pv.PageOff != 9 {
		t.Errorf("derived fault located at page %d +%#x, want 0 +0x9", pv.PageIndex, pv.PageOff)
	}

	// Non-BTRA trap kinds report the owning function only.
	pv = p.TrapProvenance(TrapEvent{Kind: TrapProlog, PC: img.Entry})
	if pv.Func == "" || len(pv.Origins) != 0 {
		t.Errorf("prolog provenance = %+v, want owning function only", pv)
	}
}
