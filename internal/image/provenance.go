package image

// Trap provenance: link-time metadata that answers, for a detonated booby
// trap, "which defense artifact did the attacker touch?". A RET consuming a
// BTRA lands exactly on the recorded word value, so resolving every
// call-site BTRA slot to its absolute address at link time yields an exact
// detonation-PC → planting-site index. The index is forensic only — the
// runtime never consults it on the simulation's hot path.

// BTRAOrigin identifies one call-site booby-trap slot: the protected call
// site that planted a BTRA and where that slot sits relative to the return
// address. One trap address can have several origins (trap-function offsets
// are drawn from a small pool), so forensics reports all of them.
type BTRAOrigin struct {
	// Caller is the function containing the planting call site; Callee is
	// its target ("" for indirect sites).
	Caller     string
	Callee     string
	CallSiteID int
	// Slot is the index into the site's BTRA list, topmost stack word
	// first; Pre reports whether the slot sits above the return address
	// (slots below it are the callee-chosen post-offset words).
	Slot int
	Pre  bool
	// Setup is how the site materialized its BTRAs: "push" or "avx2".
	Setup string
	// TrapFunc/TrapOff locate the detonation point inside the booby-trap
	// function the slot points into.
	TrapFunc string
	TrapOff  uint64
}

// buildBTRAOrigins indexes every call-site BTRA slot by its resolved
// absolute address. Iteration follows the deterministic text layout order,
// so the per-address origin lists are reproducible for a given image.
func (img *Image) buildBTRAOrigins() {
	idx := make(map[uint64][]BTRAOrigin)
	for _, name := range img.FuncOrder {
		f := img.Funcs[name].F
		for i := range f.CallSites {
			cs := &f.CallSites[i]
			setup := "push"
			if cs.ArraySym != "" {
				setup = "avx2"
			}
			for slot, w := range cs.BTRAs {
				if !w.BTRA || w.Sym == "" {
					continue
				}
				pf, ok := img.Funcs[w.Sym]
				if !ok {
					continue
				}
				addr := pf.Start + uint64(w.Off)
				idx[addr] = append(idx[addr], BTRAOrigin{
					Caller:     cs.Caller,
					Callee:     cs.Callee,
					CallSiteID: cs.ID,
					Slot:       slot,
					Pre:        slot < cs.Pre,
					Setup:      setup,
					TrapFunc:   w.Sym,
					TrapOff:    uint64(w.Off),
				})
			}
		}
	}
	img.btraOrigins = idx
}

// BTRAOrigins returns every call-site BTRA slot whose resolved value is
// addr — the provenance of a TrapBTRA detonation at pc=addr. The index is
// built once per image on first use; images are shared between cells, so
// the build is once-guarded and lookups are safe for concurrent use.
//
// The index reflects the link-time BTRA sets. Under the
// InsecureDynamicBTRAs ablation rt.RerollBTRAs replaces the live values
// without updating the call-site metadata, so rerolled detonation addresses
// may resolve to no origin — forensics then reports the trap function only.
func (img *Image) BTRAOrigins(addr uint64) []BTRAOrigin {
	img.provOnce.Do(img.buildBTRAOrigins)
	return img.btraOrigins[addr]
}
