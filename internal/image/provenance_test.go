package image

import (
	"testing"

	"r2c/internal/defense"
	"r2c/internal/isa"
)

// Every planted BTRA value must resolve through the provenance index back to
// at least one call-site slot, and each reported origin must re-derive the
// exact detonation address — the property the forensic table relies on.
func TestBTRAOriginsResolveEveryPlantedValue(t *testing.T) {
	img := link(t, defense.R2CPush(), 5)
	planted := 0
	for _, name := range img.FuncOrder {
		pf := img.Funcs[name]
		for i := range pf.F.Instrs {
			in := &pf.F.Instrs[i]
			if in.Kind != isa.KPushImm || !in.BTRA {
				continue
			}
			planted++
			origins := img.BTRAOrigins(in.Imm)
			if len(origins) == 0 {
				t.Fatalf("planted BTRA %#x has no origin", in.Imm)
			}
			for _, o := range origins {
				tf, ok := img.Funcs[o.TrapFunc]
				if !ok {
					t.Fatalf("origin trap func %q not in image", o.TrapFunc)
				}
				if !tf.F.BoobyTrap {
					t.Errorf("origin trap func %q is not a booby trap", o.TrapFunc)
				}
				if tf.Start+o.TrapOff != in.Imm {
					t.Errorf("origin %s#%d slot %d re-derives %#x, want %#x",
						o.Caller, o.CallSiteID, o.Slot, tf.Start+o.TrapOff, in.Imm)
				}
				if o.Caller == "" {
					t.Error("origin without a planting caller")
				}
				if o.Setup != "push" && o.Setup != "avx2" {
					t.Errorf("origin setup %q", o.Setup)
				}
			}
		}
	}
	if planted == 0 {
		t.Fatal("config planted no push BTRAs")
	}

	// Addresses the toolchain never planted resolve to nothing: a real
	// function entry is not a BTRA.
	if got := img.BTRAOrigins(img.Entry); len(got) != 0 {
		t.Errorf("entry address has %d BTRA origins", len(got))
	}
}

// Origins must distinguish pre slots (above the return address) from the
// callee-chosen post-offset words, because the slot side is what the
// Section 7.3 consistency checks sample.
func TestBTRAOriginsPreSlotClassification(t *testing.T) {
	img := link(t, defense.R2CPush(), 5)
	pre, post := 0, 0
	for _, name := range img.FuncOrder {
		f := img.Funcs[name].F
		for i := range f.CallSites {
			cs := &f.CallSites[i]
			for slot, w := range cs.BTRAs {
				if !w.BTRA || w.Sym == "" {
					continue
				}
				addr := img.Funcs[w.Sym].Start + uint64(w.Off)
				for _, o := range img.BTRAOrigins(addr) {
					if o.CallSiteID != cs.ID || o.Slot != slot {
						continue
					}
					if want := slot < cs.Pre; o.Pre != want {
						t.Errorf("site %d slot %d: Pre=%v, want %v", cs.ID, slot, o.Pre, want)
					}
					if o.Pre {
						pre++
					} else {
						post++
					}
				}
			}
		}
	}
	if pre == 0 || post == 0 {
		t.Errorf("classification degenerate: pre=%d post=%d", pre, post)
	}
}
