package image

import (
	"reflect"
	"testing"

	"r2c/internal/defense"
)

func TestLayoutSummaryMatchesPlacement(t *testing.T) {
	img := link(t, defense.R2CFull(), 21)
	ls := img.LayoutSummary()

	if ls.TextBase != img.TextBase || ls.TextEnd != img.TextEnd ||
		ls.DataBase != img.DataBase || ls.DataEnd != img.DataEnd {
		t.Fatal("segment bounds differ from image")
	}
	if len(ls.Funcs) != len(img.FuncOrder) {
		t.Fatalf("summary has %d funcs, image %d", len(ls.Funcs), len(img.FuncOrder))
	}
	for i, fs := range ls.Funcs {
		pf := img.Funcs[img.FuncOrder[i]]
		if fs.Name != img.FuncOrder[i] || fs.Order != i {
			t.Fatalf("func %d: name/order mismatch: %+v", i, fs)
		}
		if fs.Start != pf.Start || fs.Len != pf.End-pf.Start || fs.Off != pf.Start-img.TextBase {
			t.Fatalf("func %s: span mismatch: %+v", fs.Name, fs)
		}
		if fs.BoobyTrap != pf.F.BoobyTrap || fs.Stub != pf.F.Stub {
			t.Fatalf("func %s: classification mismatch", fs.Name)
		}
	}
	if len(ls.Data) != len(img.DataOrder) {
		t.Fatalf("summary has %d data syms, image %d", len(ls.Data), len(img.DataOrder))
	}
	for i, d := range ls.Data {
		sym := img.DataSyms[img.DataOrder[i]]
		if d.Name != sym.Name || d.Order != i || d.Addr != sym.Addr ||
			d.Off != sym.Addr-img.DataBase || d.Size != sym.Size || d.Kind != sym.Kind {
			t.Fatalf("data %d: mismatch: %+v vs %+v", i, d, sym)
		}
	}
}

func TestLayoutSummaryFuncNames(t *testing.T) {
	img := link(t, defense.R2CFull(), 22)
	ls := img.LayoutSummary()

	all := ls.FuncNames(true)
	if len(all) != len(img.FuncOrder) || !reflect.DeepEqual(all, img.FuncOrder) {
		t.Fatal("FuncNames(true) != FuncOrder")
	}
	mod := ls.FuncNames(false)
	if len(mod) == 0 || len(mod) >= len(all) {
		t.Fatalf("FuncNames(false) = %d names (all = %d)", len(mod), len(all))
	}
	for _, name := range mod {
		pf := img.Funcs[name]
		if pf.F.BoobyTrap || pf.F.Stub || name == EntrySym {
			t.Fatalf("FuncNames(false) kept synthesized function %s", name)
		}
	}
	// The test module has exactly leaf and main as module functions.
	seen := map[string]bool{}
	for _, n := range mod {
		seen[n] = true
	}
	if !seen["leaf"] || !seen["main"] {
		t.Fatalf("module functions missing from %v", mod)
	}
}

func TestLayoutSummaryDataQueries(t *testing.T) {
	img := link(t, defense.R2CFull(), 23)
	ls := img.LayoutSummary()

	globals := ls.GlobalNames()
	want := map[string]bool{"g1": true, "g2": true, "dp": true, "fp": true}
	if len(globals) != len(want) {
		t.Fatalf("GlobalNames = %v", globals)
	}
	for _, g := range globals {
		if !want[g] {
			t.Fatalf("unexpected global %q", g)
		}
	}
	if got := ls.DataKindCount(DataBTDPDecoy); got != img.Prog.Config.BTDPDataDecoys {
		t.Errorf("decoy count = %d, want %d", got, img.Prog.Config.BTDPDataDecoys)
	}
	pads := ls.PadSizes()
	if len(pads) != ls.DataKindCount(DataPad) {
		t.Error("PadSizes disagrees with DataKindCount")
	}
	for _, sz := range pads {
		if sz == 0 || sz%8 != 0 {
			t.Errorf("pad size %d not a positive multiple of 8", sz)
		}
	}
	if fs := ls.FuncSpanByName("leaf"); fs == nil || fs.Start != img.Funcs["leaf"].Start {
		t.Error("FuncSpanByName(leaf) wrong")
	}
	if ls.FuncSpanByName("no-such-func") != nil {
		t.Error("FuncSpanByName resolved a missing name")
	}
}

func TestLayoutSummaryIsDetached(t *testing.T) {
	// Summaries must be safe to hold and mutate without touching the image.
	img := link(t, defense.Off(), 24)
	ls := img.LayoutSummary()
	origFirst := img.FuncOrder[0]
	ls.Funcs[0].Name = "clobbered"
	ls.Data[0].Size = 0xdead
	if img.FuncOrder[0] != origFirst {
		t.Fatal("summary mutation leaked into image")
	}
	if img.DataSyms[img.DataOrder[0]].Size == 0xdead {
		t.Fatal("summary mutation leaked into data syms")
	}
}
