// Package image is the linker and loader front half: it places compiled
// functions in the text section (applying function shuffling and booby-trap
// distribution), lays out the data section (applying global shuffling,
// padding, BTDP decoy placement), resolves every symbolic operand, applies
// ASLR slides, and emits the ground-truth metadata the runtime, the VM, the
// attack framework and the experiments consume.
package image

import (
	"fmt"
	"sort"
	"sync"

	"r2c/internal/codegen"
	"r2c/internal/isa"
	"r2c/internal/mem"
	"r2c/internal/pcode"
	"r2c/internal/rng"
	"r2c/internal/tir"
)

// Address-space geometry. Bases are pre-ASLR; Link adds page-aligned slides.
// The regions are far apart so pointer values cluster by region — the
// property AOCR's statistical analysis exploits (Section 4.2) and BTDPs
// must blend into.
const (
	textRegion  = 0x0000_5555_0000_0000
	dataGap     = 0x0000_0000_0100_0000 // 16 MiB text→data gap
	heapGapMax  = 0x0000_0000_1000_0000 // up to 256 MiB data→heap gap
	heapSpan    = 0x0000_0002_0000_0000 // 8 GiB heap ceiling
	stackRegion = 0x0000_7fff_f000_0000
	stackSize   = 1 << 20 // 1 MiB main-thread stack
	aslrEntropy = 1 << 28 // 256 MiB of slide entropy per region
)

// EntrySym is the synthesized process entry point (the simulated _start).
const EntrySym = "_start"

// DataKind classifies data-section symbols for layout and introspection.
type DataKind int

const (
	// DataGlobal is a module global (its tir kind is in Global.Kind).
	DataGlobal DataKind = iota
	// DataBTRAArray is an AVX2 BTRA call-site array.
	DataBTRAArray
	// DataBTDPPtr is the single pointer to the heap BTDP array.
	DataBTDPPtr
	// DataBTDPArray is the naive-mode in-data BTDP array.
	DataBTDPArray
	// DataBTDPDecoy is a decoy BTDP word.
	DataBTDPDecoy
	// DataPad is random inter-global padding.
	DataPad
)

func (k DataKind) String() string {
	switch k {
	case DataGlobal:
		return "global"
	case DataBTRAArray:
		return "btra-array"
	case DataBTDPPtr:
		return "btdp-ptr"
	case DataBTDPArray:
		return "btdp-array"
	case DataBTDPDecoy:
		return "btdp-decoy"
	case DataPad:
		return "pad"
	}
	return "?"
}

// DataSym is a placed data-section symbol.
type DataSym struct {
	Name string
	Addr uint64
	Size uint64
	Kind DataKind
	Tir  *tir.Global // non-nil for DataGlobal
}

// PlacedFunc records a function's final placement.
type PlacedFunc struct {
	F          *codegen.Func
	Start, End uint64
	// InstrAddrs[i] is the address of F.Instrs[i].
	InstrAddrs []uint64
}

// UnwindEntry is one row of the simulated .eh_frame: enough metadata to
// unwind a frame from a PC inside the function body (Section 7.2.4).
// Entries are keyed by PC range, not symbol, and appear in the text-layout
// order — so function shuffling randomizes row positions.
type UnwindEntry struct {
	Start, End uint64
	PostOffset int
	FrameSize  int64
	NumSaves   int // callee-saved pushes (incl. rbp when used)
}

// Image is a linked, ASLR-slid program image.
type Image struct {
	Prog *codegen.Program

	TextBase, TextEnd uint64
	DataBase, DataEnd uint64
	HeapBase, HeapEnd uint64
	StackLow, StackHi uint64
	Entry             uint64

	// Instrs maps each instruction's address to the instruction. This is
	// the "decoder": fetch permission is still checked against the paged
	// memory, so execute-only text fetches work while reads fault.
	Instrs map[uint64]*isa.Instr

	Funcs     map[string]*PlacedFunc
	FuncOrder []string // final text-section order
	DataSyms  map[string]*DataSym
	DataOrder []string

	// DataInit holds the initial data-section words (resolved addresses
	// and global initializers), keyed by absolute address.
	DataInit map[uint64]uint64

	// CallSiteRA maps call-site ID to the real return-address value — the
	// toolchain ground truth the attack oracle judges guesses against.
	CallSiteRA map[int]uint64

	// Unwind is the simulated .eh_frame, sorted by Start.
	Unwind []UnwindEntry

	// Code is the predecoded program (package pcode): the dense form the
	// VM's fast-path interpreter executes. Built once at link time and
	// immutable thereafter, so cached images share it across processes.
	// RebuildCode refreshes it after the one sanctioned text mutation
	// (rt.RerollBTRAs, which only runs on uncached images).
	Code *pcode.Program

	// sortedFuncs is the placement sorted by start address, for fast
	// address-to-function lookup in the VM's hot path.
	sortedFuncs []*PlacedFunc

	// provOnce guards btraOrigins, the lazily built detonation-address →
	// planting-call-site index behind BTRAOrigins (see provenance.go).
	provOnce    sync.Once
	btraOrigins map[uint64][]BTRAOrigin
}

// Link places and resolves a compiled program. aslrSeed drives the ASLR
// slides and the link-stage randomizations (function and global shuffling);
// code-generation randomness was fixed earlier by the compile seed.
func Link(prog *codegen.Program, aslrSeed uint64) (*Image, error) {
	r := rng.New(aslrSeed)
	img := &Image{
		Prog:       prog,
		Instrs:     make(map[uint64]*isa.Instr),
		Funcs:      make(map[string]*PlacedFunc),
		DataSyms:   make(map[string]*DataSym),
		DataInit:   make(map[uint64]uint64),
		CallSiteRA: make(map[int]uint64),
	}

	slide := func() uint64 { return mem.AlignUp(r.Uint64n(aslrEntropy), mem.PageSize) }
	img.TextBase = textRegion + slide()

	if err := img.placeText(r); err != nil {
		return nil, err
	}
	img.Entry = img.Funcs[EntrySym].Start
	if err := img.placeData(r); err != nil {
		return nil, err
	}

	// Heap follows the data segment at a randomized gap (brk-style). The
	// gap is at least 16 MiB so the data and heap value ranges stay
	// distinguishable clusters, like separate mappings on a real system.
	img.HeapBase = mem.AlignUp(img.DataEnd+dataGap+mem.AlignUp(r.Uint64n(heapGapMax), mem.PageSize), mem.PageSize)
	img.HeapEnd = img.HeapBase + heapSpan

	img.StackHi = stackRegion + slide()
	img.StackLow = img.StackHi - stackSize

	if err := img.resolve(); err != nil {
		return nil, err
	}
	img.sortedFuncs = make([]*PlacedFunc, 0, len(img.Funcs))
	for _, pf := range img.Funcs {
		img.sortedFuncs = append(img.sortedFuncs, pf)
	}
	sort.Slice(img.sortedFuncs, func(i, j int) bool {
		return img.sortedFuncs[i].Start < img.sortedFuncs[j].Start
	})
	img.RebuildCode()
	return img, nil
}

// RebuildCode (re)derives the predecoded fast-path program from the current
// instruction table. Link calls it once; the only other caller is the
// InsecureDynamicBTRAs reroll path, which rewrites push immediates in text
// and must refresh the derived form before the process resumes.
func (img *Image) RebuildCode() {
	ins := make([]pcode.FuncIn, 0, len(img.FuncOrder))
	for _, name := range img.FuncOrder {
		pf := img.Funcs[name]
		ins = append(ins, pcode.FuncIn{
			Name:        name,
			Instrs:      pf.F.Instrs,
			Addrs:       pf.InstrAddrs,
			Start:       pf.Start,
			End:         pf.End,
			BlockStarts: pf.F.BlockStarts,
		})
	}
	img.Code = pcode.Build(ins)
}

// placeText assigns addresses to every function. With function shuffling
// enabled the order is a fresh permutation per link, and booby-trap
// functions end up randomly distributed over the text section — giving
// BTRAs the same value range as benign return addresses (Section 4.1).
func (img *Image) placeText(r *rng.RNG) error {
	prog := img.Prog

	// Synthesized entry: call main, then halt. It models the unprotected
	// libc startup code.
	start := &codegen.Func{
		Name: EntrySym,
		Instrs: []isa.Instr{
			{Kind: isa.KCall, Sym: prog.Module.Entry, CallSiteID: -1, LocalTarget: -1},
			{Kind: isa.KHalt, LocalTarget: -1},
		},
	}

	funcs := make([]*codegen.Func, 0, len(prog.Funcs)+1)
	funcs = append(funcs, prog.Funcs...)
	if prog.Config.ShuffleFunctions {
		r.Shuffle(len(funcs), func(i, j int) { funcs[i], funcs[j] = funcs[j], funcs[i] })
	}
	funcs = append([]*codegen.Func{start}, funcs...)

	cur := img.TextBase
	for _, f := range funcs {
		cur = mem.AlignUp(cur, 16)
		pf := &PlacedFunc{F: f, Start: cur, InstrAddrs: make([]uint64, len(f.Instrs))}
		for i := range f.Instrs {
			in := &f.Instrs[i]
			pf.InstrAddrs[i] = cur
			img.Instrs[cur] = in
			cur += uint64(in.EncodedSize())
		}
		pf.End = cur
		if _, dup := img.Funcs[f.Name]; dup {
			return fmt.Errorf("image: duplicate function %q", f.Name)
		}
		img.Funcs[f.Name] = pf
		img.FuncOrder = append(img.FuncOrder, f.Name)

		if !f.BoobyTrap && !f.Stub && f.Name != EntrySym {
			img.Unwind = append(img.Unwind, UnwindEntry{
				Start: pf.Start, End: pf.End,
				PostOffset: f.PostOffset,
				FrameSize:  f.FrameSize,
				NumSaves:   len(f.CalleeSaved),
			})
		}
	}
	img.TextEnd = mem.AlignUp(cur, mem.PageSize)
	sort.Slice(img.Unwind, func(i, j int) bool { return img.Unwind[i].Start < img.Unwind[j].Start })

	// Record return-address ground truth now that addresses are fixed.
	for _, name := range img.FuncOrder {
		pf := img.Funcs[name]
		for i := range pf.F.Instrs {
			in := &pf.F.Instrs[i]
			if (in.Kind == isa.KCall || in.Kind == isa.KCallInd) && in.CallSiteID >= 0 {
				img.CallSiteRA[in.CallSiteID] = pf.InstrAddrs[i] + uint64(in.EncodedSize())
			}
		}
	}
	return nil
}

// placeData lays out the data section: module globals (shuffled and padded
// per config), AVX2 BTRA arrays, and the BTDP symbols the runtime
// constructor fills (Section 5.2, Figure 5).
func (img *Image) placeData(r *rng.RNG) error {
	prog := img.Prog
	cfg := &prog.Config
	img.DataBase = mem.AlignUp(img.TextEnd+dataGap, mem.PageSize)
	cur := img.DataBase

	addSym := func(name string, size uint64, kind DataKind, g *tir.Global) *DataSym {
		cur = mem.AlignUp(cur, 8)
		s := &DataSym{Name: name, Addr: cur, Size: size, Kind: kind, Tir: g}
		img.DataSyms[name] = s
		img.DataOrder = append(img.DataOrder, name)
		cur += size
		return s
	}
	padCount := 0
	maybePad := func() {
		if cfg.GlobalPadding {
			if n := r.Intn(8); n > 0 {
				padCount++
				addSym(fmt.Sprintf("__pad%d", padCount), uint64(n)*8, DataPad, nil)
			}
		}
	}

	globals := append([]*tir.Global(nil), prog.Module.Globals...)
	if cfg.ShuffleGlobals {
		r.Shuffle(len(globals), func(i, j int) { globals[i], globals[j] = globals[j], globals[i] })
	}

	// Interleave BTDP decoys among the globals so the array pointer has
	// camouflage (Figure 5, hardened layout).
	type pendingDecoy struct{ name string }
	var decoys []pendingDecoy
	if cfg.BTDP && !cfg.BTDPNaiveDataArray {
		for i := 0; i < cfg.BTDPDataDecoys; i++ {
			decoys = append(decoys, pendingDecoy{fmt.Sprintf("%s%d", codegen.SymBTDPDecoyPrefix, i)})
		}
	}

	for _, g := range globals {
		maybePad()
		size := mem.AlignUp(g.Size, 8)
		sym := addSym(g.Name, size, DataGlobal, g)
		for i, w := range g.Init {
			img.DataInit[sym.Addr+uint64(i)*8] = w
		}
		// Sprinkle decoys between globals.
		if len(decoys) > 0 && r.Intn(2) == 0 {
			maybePad()
			addSym(decoys[0].name, 8, DataBTDPDecoy, nil)
			decoys = decoys[1:]
		}
	}
	for _, d := range decoys {
		maybePad()
		addSym(d.name, 8, DataBTDPDecoy, nil)
	}

	if cfg.BTDP {
		maybePad()
		if cfg.BTDPNaiveDataArray {
			addSym(codegen.SymBTDPArray, uint64(cfg.BTDPArrayLen)*8, DataBTDPArray, nil)
		} else {
			addSym(codegen.SymBTDPArrayPtr, 8, DataBTDPPtr, nil)
		}
	}

	for _, b := range prog.Blobs {
		addSym(b.Name, uint64(len(b.Words))*8, DataBTRAArray, nil)
	}

	img.DataEnd = mem.AlignUp(cur, mem.PageSize)
	return nil
}

// symAddr resolves a text or data symbol.
func (img *Image) symAddr(sym string) (uint64, error) {
	if pf, ok := img.Funcs[sym]; ok {
		return pf.Start, nil
	}
	if ds, ok := img.DataSyms[sym]; ok {
		return ds.Addr, nil
	}
	return 0, fmt.Errorf("image: unresolved symbol %q", sym)
}

// resolve patches every symbolic operand to an absolute address and
// materializes blob contents into DataInit.
func (img *Image) resolve() error {
	cphInit := img.Prog.Config.CPH
	for _, name := range img.FuncOrder {
		pf := img.Funcs[name]
		for i := range pf.F.Instrs {
			in := &pf.F.Instrs[i]
			switch {
			case in.RetAddr:
				ra, ok := img.CallSiteRA[in.CallSiteID]
				if !ok {
					return fmt.Errorf("image: %s: unresolved RA for call site %d", name, in.CallSiteID)
				}
				in.Imm = ra
				in.Target = ra
			case in.Sym != "":
				a, err := img.symAddr(in.Sym)
				if err != nil {
					return fmt.Errorf("image: %s: %w", name, err)
				}
				v := a + uint64(in.SymOff)
				in.Target = v
				if in.Kind == isa.KMovImm || in.Kind == isa.KPushImm {
					in.Imm = v
				}
			case in.LocalTarget >= 0 && (in.Kind == isa.KJmp || in.Kind == isa.KJz || in.Kind == isa.KJnz):
				if in.LocalTarget >= len(pf.InstrAddrs) {
					return fmt.Errorf("image: %s: jump target %d out of range", name, in.LocalTarget)
				}
				in.Target = pf.InstrAddrs[in.LocalTarget]
			}
		}
	}

	// Function-pointer globals: the loader writes the function (or, under
	// CPH, trampoline) address.
	for _, name := range img.DataOrder {
		ds := img.DataSyms[name]
		if ds.Kind == DataGlobal && ds.Tir != nil && ds.Tir.Kind == tir.GlobalFuncPtr {
			targets := ds.Tir.InitFuncs
			if len(targets) == 0 {
				targets = []string{ds.Tir.InitFunc}
			}
			for i, target := range targets {
				if cphInit {
					if _, ok := img.Funcs[codegen.TrampolineSym(target)]; ok {
						target = codegen.TrampolineSym(target)
					}
				}
				a, err := img.symAddr(target)
				if err != nil {
					return err
				}
				img.DataInit[ds.Addr+uint64(i)*8] = a
			}
		}
	}

	// AVX2 BTRA arrays.
	for _, b := range img.Prog.Blobs {
		ds, ok := img.DataSyms[b.Name]
		if !ok {
			return fmt.Errorf("image: blob %q not placed", b.Name)
		}
		for i, w := range b.Words {
			var v uint64
			if w.RetAddr {
				ra, ok := img.CallSiteRA[w.CallSiteID]
				if !ok {
					return fmt.Errorf("image: blob %q: unresolved RA %d", b.Name, w.CallSiteID)
				}
				v = ra
			} else {
				a, err := img.symAddr(w.Sym)
				if err != nil {
					return err
				}
				v = a + uint64(w.Off)
			}
			img.DataInit[ds.Addr+uint64(i)*8] = v
		}
	}
	return nil
}

// FuncAt returns the placed function containing addr, or nil.
func (img *Image) FuncAt(addr uint64) *PlacedFunc {
	fs := img.sortedFuncs
	if fs == nil {
		for _, pf := range img.Funcs {
			if addr >= pf.Start && addr < pf.End {
				return pf
			}
		}
		return nil
	}
	i := sort.Search(len(fs), func(i int) bool { return fs[i].End > addr })
	if i < len(fs) && addr >= fs[i].Start {
		return fs[i]
	}
	return nil
}

// InstrIndexAt returns the instruction index within pf whose address is
// addr, or -1 if addr is not an instruction boundary.
func (pf *PlacedFunc) InstrIndexAt(addr uint64) int {
	a := pf.InstrAddrs
	i := sort.Search(len(a), func(i int) bool { return a[i] >= addr })
	if i < len(a) && a[i] == addr {
		return i
	}
	return -1
}

// IsBoobyTrapAddr reports whether addr falls inside a booby-trap function —
// the oracle the attack framework uses to judge whether a candidate return
// address is a BTRA.
func (img *Image) IsBoobyTrapAddr(addr uint64) bool {
	pf := img.FuncAt(addr)
	return pf != nil && pf.F.BoobyTrap
}

// UnwindAt returns the unwind entry covering pc, or nil (Section 7.2.4).
func (img *Image) UnwindAt(pc uint64) *UnwindEntry {
	i := sort.Search(len(img.Unwind), func(i int) bool { return img.Unwind[i].End > pc })
	if i < len(img.Unwind) && pc >= img.Unwind[i].Start {
		return &img.Unwind[i]
	}
	return nil
}

// TextSize returns the text segment size in bytes.
func (img *Image) TextSize() uint64 { return img.TextEnd - img.TextBase }

// DataSize returns the data segment size in bytes.
func (img *Image) DataSize() uint64 { return img.DataEnd - img.DataBase }
