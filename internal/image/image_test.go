package image

import (
	"reflect"
	"testing"

	"r2c/internal/codegen"
	"r2c/internal/defense"
	"r2c/internal/isa"
	"r2c/internal/tir"
)

func testModule(t *testing.T) *tir.Module {
	t.Helper()
	mb := tir.NewModule("imgtest")
	mb.AddGlobal("g1", 8, 0x11)
	mb.AddGlobal("g2", 16, 0x22, 0x33)
	mb.AddDefaultParam("dp", 9)
	leaf := mb.NewFunc("leaf", 1)
	l := leaf.NewLocal("x", 8)
	a := leaf.AddrLocal(l)
	leaf.Store(a, 0, leaf.Param(0))
	leaf.Ret(leaf.Load(a, 0))
	mb.AddFuncPtr("fp", "leaf")
	main := mb.NewFunc("main", 0)
	v := main.Const(3)
	r := main.Call("leaf", v)
	main.Output(r)
	main.RetVoid()
	mb.SetEntry("main")
	return mb.MustBuild()
}

func link(t *testing.T, cfg defense.Config, seed uint64) *Image {
	t.Helper()
	p, err := codegen.Compile(testModule(t), cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	img, err := Link(p, seed+100)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestLayoutBasics(t *testing.T) {
	img := link(t, defense.Off(), 1)
	if img.TextBase >= img.TextEnd || img.DataBase >= img.DataEnd {
		t.Fatal("degenerate segments")
	}
	if img.TextEnd > img.DataBase || img.DataEnd > img.HeapBase || img.HeapEnd > img.StackLow {
		t.Fatal("segments out of order")
	}
	// The data→heap gap must exceed the clustering threshold so value
	// clustering can separate the regions.
	if img.HeapBase-img.DataEnd < 16<<20 {
		t.Errorf("data→heap gap too small: %#x", img.HeapBase-img.DataEnd)
	}
	if img.Entry != img.Funcs[EntrySym].Start {
		t.Error("entry is not _start")
	}
}

func TestInstructionAddressing(t *testing.T) {
	img := link(t, defense.R2CFull(), 2)
	for name, pf := range img.Funcs {
		prev := pf.Start
		for i := range pf.F.Instrs {
			addr := pf.InstrAddrs[i]
			if addr < pf.Start || addr >= pf.End {
				t.Fatalf("%s instr %d at %#x outside [%#x,%#x)", name, i, addr, pf.Start, pf.End)
			}
			if i > 0 && addr <= prev {
				t.Fatalf("%s instr %d not monotonically placed", name, i)
			}
			prev = addr
			if img.Instrs[addr] != &pf.F.Instrs[i] {
				t.Fatalf("%s instr table mismatch at %#x", name, addr)
			}
			if got := pf.InstrIndexAt(addr); got != i {
				t.Fatalf("InstrIndexAt(%#x) = %d, want %d", addr, got, i)
			}
		}
		if pf.InstrIndexAt(pf.Start+1) != -1 && pf.F.Instrs[0].EncodedSize() > 1 {
			t.Fatalf("%s: mid-instruction address resolved", name)
		}
	}
}

func TestFuncAt(t *testing.T) {
	img := link(t, defense.R2CFull(), 3)
	for name, pf := range img.Funcs {
		if got := img.FuncAt(pf.Start); got != pf {
			t.Fatalf("FuncAt(start of %s) wrong", name)
		}
		if got := img.FuncAt(pf.End - 1); got != pf {
			t.Fatalf("FuncAt(end of %s) wrong", name)
		}
	}
	if img.FuncAt(img.TextBase-16) != nil {
		t.Error("FuncAt resolved below text")
	}
	if img.FuncAt(img.TextEnd+0x10000) != nil {
		t.Error("FuncAt resolved above text")
	}
}

func TestReturnAddressGroundTruth(t *testing.T) {
	img := link(t, defense.R2CFull(), 4)
	if len(img.CallSiteRA) == 0 {
		t.Fatal("no call sites recorded")
	}
	for id, ra := range img.CallSiteRA {
		pf := img.FuncAt(ra)
		if pf == nil {
			t.Fatalf("site %d RA %#x not in text", id, ra)
		}
		// The RA must be the address right after a call instruction.
		i := pf.InstrIndexAt(ra)
		if i <= 0 {
			t.Fatalf("site %d RA %#x not an instruction boundary", id, ra)
		}
		prev := &pf.F.Instrs[i-1]
		if prev.Kind != isa.KCall && prev.Kind != isa.KCallInd {
			t.Fatalf("site %d RA %#x does not follow a call (%v)", id, ra, prev.Kind)
		}
	}
}

func TestBTRAResolution(t *testing.T) {
	img := link(t, defense.R2CPush(), 5)
	found := 0
	for _, name := range img.FuncOrder {
		pf := img.Funcs[name]
		for i := range pf.F.Instrs {
			in := &pf.F.Instrs[i]
			if in.Kind == isa.KPushImm && in.BTRA {
				found++
				if !img.IsBoobyTrapAddr(in.Imm) {
					t.Fatalf("BTRA %#x does not point into a booby trap", in.Imm)
				}
				// It must resolve to an instruction boundary (executing it
				// detonates cleanly).
				bt := img.FuncAt(in.Imm)
				if bt.InstrIndexAt(in.Imm) < 0 {
					t.Fatalf("BTRA %#x lands mid-instruction", in.Imm)
				}
			}
			if in.RetAddr && in.Kind == isa.KPushImm {
				if in.Imm != img.CallSiteRA[in.CallSiteID] {
					t.Fatalf("pre-pushed RA %#x != call site %d RA %#x",
						in.Imm, in.CallSiteID, img.CallSiteRA[in.CallSiteID])
				}
			}
		}
	}
	if found == 0 {
		t.Fatal("no BTRA pushes found")
	}
}

func TestAVXArrayResolution(t *testing.T) {
	img := link(t, defense.R2CFull(), 6)
	raSet := map[uint64]bool{}
	for _, ra := range img.CallSiteRA {
		raSet[ra] = true
	}
	arrays := 0
	for _, b := range img.Prog.Blobs {
		ds := img.DataSyms[b.Name]
		if ds == nil || ds.Kind != DataBTRAArray {
			t.Fatalf("array %s not placed as a BTRA array", b.Name)
		}
		arrays++
		ras := 0
		for i, w := range b.Words {
			v, ok := img.DataInit[ds.Addr+uint64(i)*8]
			if !ok {
				t.Fatalf("array %s word %d not initialized", b.Name, i)
			}
			if w.RetAddr {
				ras++
				if !raSet[v] {
					t.Fatalf("array %s RA word %#x is not a real RA", b.Name, v)
				}
			} else if !img.IsBoobyTrapAddr(v) {
				t.Fatalf("array %s word %d (%#x) is not a booby trap", b.Name, i, v)
			}
		}
		if ras != 1 {
			t.Fatalf("array %s has %d RA words", b.Name, ras)
		}
	}
	if arrays == 0 {
		t.Fatal("no arrays found")
	}
}

func TestShufflingDiversifies(t *testing.T) {
	a := link(t, defense.R2CFull(), 7).LayoutSummary()
	b := link(t, defense.R2CFull(), 8).LayoutSummary()
	if reflect.DeepEqual(a.FuncNames(true), b.FuncNames(true)) {
		t.Error("function order identical across links")
	}
	if reflect.DeepEqual(a.GlobalNames(), b.GlobalNames()) {
		t.Error("global order identical across links")
	}
	// Booby traps must be interspersed, not clumped at the end: at least
	// one trap before the last regular function.
	lastRegular := -1
	firstTrap := -1
	for _, fs := range a.Funcs {
		if fs.BoobyTrap {
			if firstTrap == -1 {
				firstTrap = fs.Order
			}
		} else {
			lastRegular = fs.Order
		}
	}
	if firstTrap == -1 || firstTrap > lastRegular {
		t.Error("booby traps not distributed among regular functions")
	}
}

func TestBaselineIsStableModuloASLR(t *testing.T) {
	a := link(t, defense.Off(), 9).LayoutSummary()
	b := link(t, defense.Off(), 10).LayoutSummary()
	if !reflect.DeepEqual(a.FuncNames(true), b.FuncNames(true)) {
		t.Error("baseline function order changed across seeds (monoculture broken)")
	}
	// Relative offsets identical.
	for _, fs := range a.Funcs {
		if other := b.FuncSpanByName(fs.Name); other == nil || other.Off != fs.Off {
			t.Errorf("%s: baseline offset differs (%#x vs %+v)", fs.Name, fs.Off, other)
		}
	}
	if a.TextBase == b.TextBase {
		t.Error("ASLR produced identical slides")
	}
}

func TestFuncPtrGlobalResolution(t *testing.T) {
	img := link(t, defense.Off(), 11)
	ds := img.DataSyms["fp"]
	v := img.DataInit[ds.Addr]
	if v != img.Funcs["leaf"].Start {
		t.Fatalf("fp = %#x, want leaf at %#x", v, img.Funcs["leaf"].Start)
	}
	// Under CPH it points at the trampoline instead.
	img2 := link(t, defense.Readactor(), 11)
	ds2 := img2.DataSyms["fp"]
	v2 := img2.DataInit[ds2.Addr]
	if v2 != img2.Funcs[codegen.TrampolineSym("leaf")].Start {
		t.Fatalf("fp under CPH = %#x, want trampoline", v2)
	}
}

func TestUnwindTable(t *testing.T) {
	img := link(t, defense.R2CFull(), 12)
	for i := 1; i < len(img.Unwind); i++ {
		if img.Unwind[i].Start < img.Unwind[i-1].End {
			t.Fatal("unwind entries overlap or are unsorted")
		}
	}
	pf := img.Funcs["leaf"]
	ue := img.UnwindAt(pf.Start + 5)
	if ue == nil || ue.Start != pf.Start {
		t.Fatalf("UnwindAt(leaf) = %+v", ue)
	}
	if img.UnwindAt(img.TextBase-100) != nil {
		t.Error("UnwindAt resolved outside text")
	}
	// Booby traps and stubs carry no unwind info.
	for _, ueX := range img.Unwind {
		f := img.FuncAt(ueX.Start).F
		if f.BoobyTrap || f.Stub {
			t.Errorf("%s should not have unwind info", f.Name)
		}
	}
}

func TestDataSectionContents(t *testing.T) {
	img := link(t, defense.R2CFull(), 13)
	// Every configured BTDP decoy symbol must exist, plus the array
	// pointer slot; padding appears between globals.
	if _, ok := img.DataSyms[codegen.SymBTDPArrayPtr]; !ok {
		t.Error("BTDP array pointer slot missing")
	}
	ls := img.LayoutSummary()
	if decoys := ls.DataKindCount(DataBTDPDecoy); decoys != img.Prog.Config.BTDPDataDecoys {
		t.Errorf("decoys = %d, want %d", decoys, img.Prog.Config.BTDPDataDecoys)
	}
	if ls.DataKindCount(DataPad) == 0 {
		t.Error("no inter-global padding emitted")
	}
	// Global initializers land at the right addresses.
	g2 := img.DataSyms["g2"]
	if img.DataInit[g2.Addr] != 0x22 || img.DataInit[g2.Addr+8] != 0x33 {
		t.Error("global initializer words wrong")
	}
}
