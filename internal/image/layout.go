package image

// This file is the image's layout-introspection API: a flattened, stable
// summary of where the linker put everything, expressed both absolutely and
// relative to the segment bases. The diversity auditor (internal/audit)
// consumes it to quantify how much the layout randomizations actually
// diversify — entropy of placement orders, padding distributions, offsets
// that survive across variants — and the image tests use it instead of
// poking at the raw placement maps.

// FuncSpan is one function's placement in the text section.
type FuncSpan struct {
	Name string `json:"name"`
	// Order is the text-section position (0 = first placed function).
	Order int `json:"order"`
	// Start is the absolute (post-ASLR) start address; Off is the
	// ASLR-independent offset from TextBase.
	Start uint64 `json:"start"`
	Off   uint64 `json:"off"`
	Len   uint64 `json:"len"`
	// BoobyTrap and Stub classify toolchain-synthesized functions; entries
	// with both false are module functions (plus the _start shim).
	BoobyTrap bool `json:"booby_trap,omitempty"`
	Stub      bool `json:"stub,omitempty"`
}

// DataSpan is one data-section symbol's placement.
type DataSpan struct {
	Name string `json:"name"`
	// Order is the data-section position (0 = first placed symbol).
	Order int `json:"order"`
	// Addr is the absolute address; Off is the offset from DataBase.
	Addr uint64   `json:"addr"`
	Off  uint64   `json:"off"`
	Size uint64   `json:"size"`
	Kind DataKind `json:"kind"`
}

// LayoutSummary is a point-in-time flattening of the image's layout, in
// placement order. It carries no pointers into the image, so callers may
// hold it beyond the image's lifetime and compare summaries across builds.
type LayoutSummary struct {
	TextBase, TextEnd uint64
	DataBase, DataEnd uint64
	// Funcs lists every placed function in text order; Data lists every
	// data symbol (globals, padding, BTRA arrays, BTDP symbols) in data
	// order.
	Funcs []FuncSpan
	Data  []DataSpan
}

// LayoutSummary flattens the image's placement into a LayoutSummary.
func (img *Image) LayoutSummary() *LayoutSummary {
	ls := &LayoutSummary{
		TextBase: img.TextBase, TextEnd: img.TextEnd,
		DataBase: img.DataBase, DataEnd: img.DataEnd,
		Funcs: make([]FuncSpan, 0, len(img.FuncOrder)),
		Data:  make([]DataSpan, 0, len(img.DataOrder)),
	}
	for i, name := range img.FuncOrder {
		pf := img.Funcs[name]
		ls.Funcs = append(ls.Funcs, FuncSpan{
			Name:      name,
			Order:     i,
			Start:     pf.Start,
			Off:       pf.Start - img.TextBase,
			Len:       pf.End - pf.Start,
			BoobyTrap: pf.F.BoobyTrap,
			Stub:      pf.F.Stub,
		})
	}
	for i, name := range img.DataOrder {
		ds := img.DataSyms[name]
		ls.Data = append(ls.Data, DataSpan{
			Name:  name,
			Order: i,
			Addr:  ds.Addr,
			Off:   ds.Addr - img.DataBase,
			Size:  ds.Size,
			Kind:  ds.Kind,
		})
	}
	return ls
}

// FuncNames returns the function names in text order. With includeSynth
// false, booby traps, stubs and the _start shim are dropped, leaving the
// module functions whose placement the shuffling knob permutes.
func (ls *LayoutSummary) FuncNames(includeSynth bool) []string {
	out := make([]string, 0, len(ls.Funcs))
	for _, f := range ls.Funcs {
		if !includeSynth && (f.BoobyTrap || f.Stub || f.Name == EntrySym) {
			continue
		}
		out = append(out, f.Name)
	}
	return out
}

// GlobalNames returns the module-global symbol names in data order —
// the permutation the global-shuffling knob randomizes.
func (ls *LayoutSummary) GlobalNames() []string {
	var out []string
	for _, d := range ls.Data {
		if d.Kind == DataGlobal {
			out = append(out, d.Name)
		}
	}
	return out
}

// DataKindCount returns how many data symbols have the given kind.
func (ls *LayoutSummary) DataKindCount(kind DataKind) int {
	n := 0
	for _, d := range ls.Data {
		if d.Kind == kind {
			n++
		}
	}
	return n
}

// PadSizes returns the sizes of the inter-global padding symbols in data
// order (empty when GlobalPadding is off).
func (ls *LayoutSummary) PadSizes() []uint64 {
	var out []uint64
	for _, d := range ls.Data {
		if d.Kind == DataPad {
			out = append(out, d.Size)
		}
	}
	return out
}

// FuncSpanByName returns the span of the named function, or nil.
func (ls *LayoutSummary) FuncSpanByName(name string) *FuncSpan {
	for i := range ls.Funcs {
		if ls.Funcs[i].Name == name {
			return &ls.Funcs[i]
		}
	}
	return nil
}
