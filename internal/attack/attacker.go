package attack

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"r2c/internal/defense"
	"r2c/internal/exec"
	"r2c/internal/image"
	"r2c/internal/incident"
	"r2c/internal/isa"
	"r2c/internal/rng"
	"r2c/internal/rt"
	"r2c/internal/sim"
	"r2c/internal/stats"
	"r2c/internal/telemetry"
	"r2c/internal/tir"
	"r2c/internal/vm"
)

// pauseBudget is the instruction count after which the victim thread is
// "blocked" — the Malicious Thread Blocking analogue (Section 3): the
// attacker can then inspect a deterministic, quiescent stack.
const pauseBudget = 400_000

// clusterGap is the value-proximity threshold of the statistical analysis:
// two pointers within this distance belong to the same memory region
// cluster. minPointer filters non-pointer words.
const (
	clusterGap = 4 << 20 // 4 MiB — mappings are ≥16 MiB apart
	minPointer = 1 << 32
)

// Scenario is one attack setting: a victim process paused mid-request, plus
// the attacker's own reference build of the same source (the monoculture
// copy). When the defense diversifies, the reference copy has a different
// seed; an undiversified baseline gives the attacker a layout-identical
// copy (modulo ASLR), which is exactly the monoculture assumption
// randomization-based defenses break.
type Scenario struct {
	Cfg    defense.Config
	Proc   *rt.Process
	Mach   *vm.Machine
	RefImg *image.Image // attacker's copy
	Rnd    *rng.RNG

	// Obs receives per-scenario telemetry: probe/leak counters, detection
	// events and outcome tallies. Nil disables collection.
	Obs *telemetry.Observer

	// Detections counts booby traps fired by attacker probes before the
	// victim even resumes (deref of a BTDP, etc.).
	Detections int
	// Forensics records, for every detection, which trap class caught the
	// probe and which planted artifact it touched — the evidence trail the
	// -forensics flag renders. Collection reads only immutable link/load
	// metadata, so it never perturbs the campaign.
	Forensics []ForensicHit
	// Campaign and Trial label this scenario's incident records: Campaign
	// names the experiment ("" defaults to "attack/<config>"), Trial the
	// Monte-Carlo trial index. Bench drivers set them right after
	// construction; records fold deterministically either way because both
	// are content, not timing.
	Campaign string
	Trial    int

	// staleness implements re-randomizing defenses (TASR, CodeArmor):
	// each primitive use advances time; leaked addresses expire after
	// cfg.ReRandomizePeriod steps.
	now int
	// baseSeed is the victim build seed (restart scenarios reuse it when
	// the server restarts without re-randomizing, Section 4).
	baseSeed uint64
}

// NewScenario builds and pauses a victim under cfg, MTB-style: the victim
// thread blocks inside the request handler (helper). victimSeed diversifies
// the victim build; the attacker's reference copy uses an unrelated seed,
// which only matters when the configuration actually randomizes layout.
func NewScenario(cfg defense.Config, victimSeed uint64) (*Scenario, error) {
	return newScenarioOpts(cfg, victimSeed, false, 0, "", nil)
}

// NewScenarioObserved is NewScenario with a telemetry observer: the victim
// process streams trap/fault events to it, and the scenario records
// probe/leak/outcome counters under the "attack.*" namespace.
func NewScenarioObserved(cfg defense.Config, victimSeed uint64, obs *telemetry.Observer) (*Scenario, error) {
	return newScenarioOpts(cfg, victimSeed, false, 0, "", obs)
}

// buildCache, when installed, memoizes victim and reference compile+link
// across scenarios. Monte-Carlo campaigns rebuild the same victim under the
// same (config, seed) many times — every worker-pool restart, every
// persistent-attack retry — and those builds are bit-identical, so the
// harnesses (cmd/r2cattack) share one content-addressed cache here.
var buildCache atomic.Pointer[exec.Cache]

// UseBuildCache routes all victim and reference builds through c. Pass the
// engine's cache once at harness startup; a nil c restores direct builds.
func UseBuildCache(c *exec.Cache) { buildCache.Store(c) }

// incidentLog, when installed, receives an incident record for every
// detection an attack scenario observes — probe-time BTDP detonations and
// resume-time traps — with the victim's flight-recorder snapshot attached.
// Same installable-global pattern as the build cache: the harness wires the
// shared log once at startup, and scenarios constructed anywhere (bench
// drivers, persistent-attack restarts) report into it.
var incidentLog atomic.Pointer[incident.Log]

// UseIncidentLog routes scenario detections into l; nil disables capture.
func UseIncidentLog(l *incident.Log) { incidentLog.Store(l) }

// campaign returns the scenario's incident-campaign label.
func (s *Scenario) campaign() string {
	if s.Campaign != "" {
		return s.Campaign
	}
	return "attack/" + s.Cfg.Name
}

// noteIncident folds one detection into the installed incident log.
func (s *Scenario) noteIncident(via string, ev rt.TrapEvent, instr uint64) {
	if l := incidentLog.Load(); l != nil {
		l.Add(incident.FromTrap(s.campaign(), s.Cfg.Name, s.baseSeed, s.Trial, via, s.Proc, ev, instr))
	}
}

// victimModule returns the module scenarios are built from. With a build
// cache installed the (immutable) victim module is shared across scenarios,
// so its content hash is computed once; otherwise each scenario gets its own
// copy, exactly as before.
var (
	victimOnce   sync.Once
	victimShared *tir.Module
)

func victimModule() *tir.Module {
	if buildCache.Load() == nil {
		return Victim()
	}
	victimOnce.Do(func() { victimShared = Victim() })
	return victimShared
}

// buildVictim loads a fresh victim process, through the build cache when one
// is installed. willMutate marks scenarios that patch the image after
// loading (the dynamic-BTRA reroll ablation); those always build privately
// so a mutation can never reach a shared cached image.
func buildVictim(m *tir.Module, cfg defense.Config, seed uint64, willMutate bool, obs *telemetry.Observer) (*rt.Process, error) {
	if c := buildCache.Load(); c != nil && !willMutate {
		return c.Process(m, cfg, seed, obs)
	}
	return sim.BuildObserved(m, cfg, seed, obs)
}

func buildRef(m *tir.Module, cfg defense.Config, seed uint64) (*image.Image, error) {
	if c := buildCache.Load(); c != nil {
		img, _, err := c.Image(m, cfg, seed)
		return img, err
	}
	p, err := sim.Build(m, cfg, seed)
	if err != nil {
		return nil, err
	}
	return p.Img, nil
}

// ForensicHit is one detected probe with its resolved defense provenance.
type ForensicHit struct {
	// Via names the detection point: "btdp-read" (a disclosure probe
	// dereferenced a guard page before the victim resumed) or "resume"
	// (the resumed victim consumed a corrupted value and detonated).
	Via  string
	Prov rt.Provenance
}

func (h ForensicHit) String() string { return fmt.Sprintf("%-9s %s", h.Via, h.Prov.String()) }

// noteForensic resolves and records the provenance of one detection.
func (s *Scenario) noteForensic(via string, ev rt.TrapEvent) {
	s.Forensics = append(s.Forensics, ForensicHit{Via: via, Prov: s.Proc.TrapProvenance(ev)})
}

// Leaked is a value the attacker read, with the time it was read (for
// staleness under re-randomizing defenses).
type Leaked struct {
	Addr, Value uint64
	at          int
}

// tick advances attack time (each primitive counts as one step; under
// TASR-style defenses every step may cross an I/O syscall boundary and
// trigger re-randomization).
func (s *Scenario) tick() { s.now++ }

// Stale reports whether a leaked value has been invalidated by
// re-randomization since it was read.
func (s *Scenario) Stale(l Leaked) bool {
	return s.Cfg.ReRandomizePeriod > 0 && s.now-l.at >= s.Cfg.ReRandomizePeriod
}

// Read is the attacker's disclosure primitive: a permission-checked read.
// Dereferencing a BTDP guard page faults and is *detected* (Section 4.2).
func (s *Scenario) Read(addr uint64) (Leaked, error) {
	s.tick()
	s.Obs.Counter("attack.probes", "op", "read").Inc()
	// Attacker-surface probes go on the victim's flight record too, so an
	// incident snapshot shows the reconnaissance sequence that led to the
	// detonation. Attack time stands in for the instruction clock: the
	// victim is paused while the attacker probes.
	s.Proc.Flight.Record(telemetry.FlightProbe, 0, addr, uint64(s.now))
	v, err := s.Proc.Space.Read64(addr)
	if err != nil {
		if s.Proc.IsGuardAddr(addr) {
			s.Detections++
			ev := rt.TrapEvent{Kind: rt.TrapBTDP, Addr: addr}
			s.noteForensic("btdp-read", ev)
			s.noteIncident("probe", ev, 0)
			s.Obs.Counter("attack.detections", "via", "btdp-read").Inc()
			s.Obs.Emit("attack.detect", map[string]any{"via": "btdp-read", "addr": addr})
			return Leaked{}, fmt.Errorf("attack: read %#x detonated a BTDP: %w", addr, err)
		}
		return Leaked{}, err
	}
	return Leaked{Addr: addr, Value: v, at: s.now}, nil
}

// Write is the attacker's corruption primitive.
func (s *Scenario) Write(addr, v uint64) error {
	s.tick()
	s.Obs.Counter("attack.probes", "op", "write").Inc()
	s.Proc.Flight.Record(telemetry.FlightProbe, 0, addr, uint64(s.now))
	return s.Proc.Space.Write64(addr, v)
}

// RSP returns the paused victim's stack pointer — MTB gives the attacker a
// thread whose stack location it knows (Section 2.3).
func (s *Scenario) RSP() uint64 { return s.Mach.CPU.R[isa.RSP] }

// LeakStack reads n bytes of the paused stack upward from RSP — "a
// statistical analysis of two pages of stack values suffices" (Section
// 4.2). Stack pages are readable, so this never faults.
func (s *Scenario) LeakStack(nBytes uint64) ([]Leaked, error) {
	s.tick()
	base := s.RSP()
	var out []Leaked
	for off := uint64(0); off < nBytes; off += 8 {
		addr := base + off
		if addr+8 > s.Proc.Img.StackHi {
			break
		}
		v, err := s.Proc.Space.Read64(addr)
		if err != nil {
			return out, err
		}
		out = append(out, Leaked{Addr: addr, Value: v, at: s.now})
	}
	s.Obs.Counter("attack.probes", "op", "stack-leak").Inc()
	s.Obs.Counter("attack.leaked_words").Add(uint64(len(out)))
	return out, nil
}

// Resume lets the victim run to completion and classifies what happened.
func (s *Scenario) Resume() Outcome {
	res, err := s.Mach.Run(sim.DefaultBudget)
	if res.Trap != nil {
		s.noteForensic("resume", *res.Trap)
		s.noteIncident("resume", *res.Trap, res.Instructions)
	}
	var o Outcome
	switch {
	case s.Detections > 0 || res.Trap != nil:
		o = Detected
	case err != nil || res.Fault != nil || !res.Halted:
		o = Crashed
	case HasWin(res.Output):
		o = Success
	default:
		o = Failed
	}
	s.noteOutcome(o)
	return o
}

// ResumeOutcomeOnly is Resume without counting earlier probe detections
// (for experiments that score only the final control-flow transfer).
func (s *Scenario) ResumeOutcomeOnly() Outcome {
	res, err := s.Mach.Run(sim.DefaultBudget)
	if res.Trap != nil {
		s.noteForensic("resume", *res.Trap)
		s.noteIncident("resume", *res.Trap, res.Instructions)
	}
	var o Outcome
	switch {
	case res.Trap != nil:
		o = Detected
	case err != nil || res.Fault != nil || !res.Halted:
		o = Crashed
	case HasWin(res.Output):
		o = Success
	default:
		o = Failed
	}
	s.noteOutcome(o)
	return o
}

// noteOutcome records the scenario's final classification and flushes the
// victim machine's counters into the observer's registry.
func (s *Scenario) noteOutcome(o Outcome) {
	if !s.Obs.Enabled() {
		return
	}
	s.Obs.Counter("attack.outcomes", "config", s.Cfg.Name, "result", o.String()).Inc()
	s.Obs.Emit("attack.outcome", map[string]any{
		"config": s.Cfg.Name, "result": o.String(), "detections": s.Detections,
	})
	s.Mach.PublishMetrics(s.Obs.Reg())
}

// Clusters runs the AOCR statistical analysis over leaked words and
// classifies the populous clusters into regions. The attacker reasons
// relatively (it knows its own read addresses, so the cluster containing
// them is the stack; the remaining clusters order as text/data < heap <
// stack in the conventional x86_64 layout it also sees in its own copy).
type Clusters struct {
	All   []*stats.Cluster
	Text  *stats.Cluster // code addresses (text region)
	Data  *stats.Cluster // static data region
	Heap  *stats.Cluster
	Stack *stats.Cluster
}

// Classify clusters the leaked values by proximity and assigns regions the
// way the AOCR analysis does: the attacker knows where its own probe reads
// landed (the stack), and knows the conventional region ordering
// text < data < heap < stack from its reference copy.
func (s *Scenario) Classify(leaks []Leaked) *Clusters {
	vals := make([]uint64, 0, len(leaks))
	for _, l := range leaks {
		vals = append(vals, l.Value)
	}
	// Filter non-canonical values first: x86_64 user pointers have the
	// top 17 bits clear, so anything above 2^47 cannot be a pointer.
	canon := vals[:0]
	for _, v := range vals {
		if v < 1<<47 {
			canon = append(canon, v)
		}
	}
	cs := stats.ClusterValues(canon, clusterGap, minPointer)
	out := &Clusters{All: cs}
	if len(cs) == 0 {
		return out
	}
	stackProbe := s.RSP()
	var below []*stats.Cluster
	for _, c := range cs {
		if c.Lo <= stackProbe+(1<<21) && c.Hi >= stackProbe-(1<<21) {
			out.Stack = c
			continue
		}
		below = append(below, c)
	}
	sort.Slice(below, func(i, j int) bool { return below[i].Lo < below[j].Lo })
	switch len(below) {
	case 0:
	case 1:
		out.Text = below[0]
	case 2:
		// Either text+heap (stack leak: no data pointers on the stack) or
		// data+heap: the attacker disambiguates by the magnitude of the
		// gap to the probe values it already attributed to text.
		out.Text = below[0]
		out.Heap = below[1]
	default:
		out.Text = below[0]
		out.Data = below[1]
		out.Heap = below[len(below)-1]
	}
	return out
}
