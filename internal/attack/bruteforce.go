package attack

import (
	"r2c/internal/defense"
)

// This file implements the brute-force attacks discussed in Sections 4.1
// and 7.2.3: classic Blind ROP (stop-gadget probing against a restarting
// worker pool) and the heap feng shui refinement of the BTDP analysis.

// BlindROPResult summarizes a Blind ROP campaign.
type BlindROPResult struct {
	// Probes is the number of worker restarts spent.
	Probes int
	// FoundGadget is true when a probe survived (control transferred to a
	// usable instruction without crashing the worker or tripping a trap).
	FoundGadget bool
	// Detections counts probes that detonated a booby trap — each one a
	// defender-visible alarm ("booby traps provide an effective way to
	// penalize such brute force attempts", Section 4.1).
	Detections int
}

// BlindROP mounts the classic stop-gadget scan (Section 4.1): the worker
// pool restarts with an unchanged image, and the attacker overwrites the
// innermost return address with guessed text addresses, observing hang
// (gadget candidate) versus crash. Execute-only memory already denies
// direct reads; the probe needs only crash observations. Against R2C the
// guesses land in interspersed booby-trap functions and prolog traps, so
// the campaign raises alarms long before it finds a gadget.
func BlindROP(cfg defense.Config, seed uint64, maxProbes int) (*BlindROPResult, error) {
	res := &BlindROPResult{}
	// One scouting pause to learn a code-cluster anchor value (Blind ROP
	// derives its probe range from an unrandomized or leaked base; the
	// value range of the text cluster is obtainable from any leaked code
	// pointer without knowing what it points to).
	scout, err := NewScenario(cfg, seed)
	if err != nil {
		return nil, err
	}
	cands, err := scout.RACandidates()
	if err != nil {
		return nil, err
	}
	anchor := cands[scout.Rnd.Intn(len(cands))].Value

	for probe := 0; probe < maxProbes; probe++ {
		res.Probes++
		w, err := NewScenario(cfg, seed) // same image: worker restart
		if err != nil {
			return nil, err
		}
		wc, err := w.RACandidates()
		if err != nil {
			return nil, err
		}
		// Guess: a random offset around the anchor, word-granular — the
		// blind scan of nearby text.
		guess := anchor + uint64(int64(w.Rnd.Intn(1<<14))-(1<<13))
		// Overwrite every candidate so the real RA is certainly hit (the
		// blunt variant; the candidate-by-candidate variant is the crash
		// side channel of Section 7.3).
		for _, c := range wc {
			if err := w.Write(c.Addr, guess); err != nil {
				return nil, err
			}
		}
		switch w.ResumeOutcomeOnly() {
		case Detected:
			res.Detections++
		case Failed, Success:
			// The worker survived the transfer: a stop-gadget candidate.
			res.FoundGadget = true
			return res, nil
		}
	}
	return res, nil
}

// FengShuiResult summarizes the heap-grooming refinement of Section 7.2.3.
type FengShuiResult struct {
	// PairsFound is the number of stack heap-pointer pairs exhibiting the
	// allocation-order distance the attacker predicted from its copy.
	PairsFound int
	// SafePicks / BTDPPicks classify the pointers the refined filter kept.
	SafePicks, BTDPPicks int
}

// FengShui implements the Section 7.2.3 observation: "by performing heap
// feng shui an attacker might be able to identify benign heap pointers with
// a known distance to each other". The victim allocates its two objects
// back to back, so in a deterministic allocator their pointers differ by a
// predictable delta; BTDPs are random guard-page offsets and almost never
// pair up. The attacker keeps only pointers that participate in an
// expected-delta pair. R2C's randomized chunk placement weakens the
// predicted delta, which is why the paper calls this attack's
// prerequisites "specific" — the experiment measures exactly how much
// filtering power survives.
func FengShui(cfg defense.Config, seed uint64, maxDelta uint64) (*FengShuiResult, error) {
	s, err := NewScenario(cfg, seed)
	if err != nil {
		return nil, err
	}
	leaks, err := s.LeakStack(2 * 4096)
	if err != nil {
		return nil, err
	}
	cl := s.Classify(leaks)
	res := &FengShuiResult{}
	if cl.Heap == nil {
		return res, nil
	}
	ptrs := dedup(cl.Heap.Values)
	kept := map[uint64]bool{}
	for i := 0; i < len(ptrs); i++ {
		for j := 0; j < len(ptrs); j++ {
			if i == j {
				continue
			}
			d := ptrs[j] - ptrs[i]
			if d > 0 && d <= maxDelta {
				kept[ptrs[i]] = true
				kept[ptrs[j]] = true
			}
		}
	}
	for v := range kept {
		res.PairsFound++
		if s.isBTDPValue(v) {
			res.BTDPPicks++
		} else {
			res.SafePicks++
		}
	}
	return res, nil
}
