package attack

import (
	"errors"
	"fmt"

	"r2c/internal/defense"
	"r2c/internal/isa"
	"r2c/internal/rng"
	"r2c/internal/telemetry"
	"r2c/internal/vm"
)

// This file implements the attacks that justify R2C's design decisions
// (Sections 4.1, 5.2): what an attacker gains when a design property is
// violated. Each ablation attack runs against both the weakened and the
// real configuration; the experiments assert the weakened one falls.

// newScenarioOpts builds a paused scenario with extra controls: an optional
// BTRA re-roll before execution (the dynamic-BTRA ablation) and an optional
// required caller of the paused helper frame (for the per-callee ablation,
// which must observe two distinct call sites).
func newScenarioOpts(cfg defense.Config, seed uint64, reroll bool, rerollSeed uint64, wantCaller string, obs *telemetry.Observer) (*Scenario, error) {
	m := victimModule()
	proc, err := buildVictim(m, cfg, seed, reroll, obs)
	if err != nil {
		return nil, err
	}
	if reroll {
		if err := proc.RerollBTRAs(rerollSeed); err != nil {
			return nil, err
		}
	}
	mach := vm.New(proc, vm.EPYCRome())
	helperPF := proc.Img.Funcs[SymHelper]
	paused := false
	for steps := 0; steps < 2048; steps++ {
		// Vary the step so sampling cannot alias with the request loop's
		// period (a fixed stride could stroboscopically skip helper).
		budget := uint64(4001 + (steps*613)%1777)
		_, err = mach.Run(budget)
		if !errors.Is(err, vm.ErrInstructionBudget) {
			return nil, fmt.Errorf("attack: victim finished before pausing: %v", err)
		}
		pc := mach.CPU.PC
		if pc < helperPF.Start || pc >= helperPF.End {
			continue
		}
		if wantCaller != "" {
			frames, err := proc.Unwind(pc, mach.CPU.R[isa.RSP], 3)
			if err != nil || len(frames) < 2 || frames[1].FuncName != wantCaller {
				continue
			}
		}
		paused = true
		break
	}
	if !paused {
		return nil, fmt.Errorf("attack: could not pause victim inside %s (caller %q)", SymHelper, wantCaller)
	}
	refImg, err := buildRef(m, cfg, seed+0x5eed)
	if err != nil {
		return nil, err
	}
	return &Scenario{
		Cfg:      cfg,
		Proc:     proc,
		Mach:     mach,
		RefImg:   refImg,
		Rnd:      rng.New(seed ^ 0xa77ac4e2),
		Obs:      obs,
		baseSeed: seed,
	}, nil
}

// CandidateRuns returns every contiguous run of code-range values found in
// a two-page stack leak, innermost frame first — one run per frame's
// return-address band.
func (s *Scenario) CandidateRuns() ([][]Leaked, error) {
	leaks, err := s.LeakStack(2 * 4096)
	if err != nil {
		return nil, err
	}
	cl := s.Classify(leaks)
	if cl.Text == nil {
		return nil, nil
	}
	var runs [][]Leaked
	var cur []Leaked
	for _, l := range leaks {
		if cl.textRange(l.Value) {
			cur = append(cur, l)
			continue
		}
		if len(cur) > 0 {
			runs = append(runs, cur)
			cur = nil
		}
	}
	if len(cur) > 0 {
		runs = append(runs, cur)
	}
	return runs, nil
}

// DynamicBTRAAttack demonstrates why property (B) of Section 4.1 — a call
// site's BTRA set must not change at run time — matters: with dynamic sets,
// two observations of the same call site differ only in the decoys, so
// intersecting them isolates the return address ("just two observations
// suffice to identify the return address"). Against compliant R2C the
// intersection keeps every candidate and yields nothing.
//
// It returns the number of candidates surviving the intersection and
// whether a unique survivor is the real return address.
func DynamicBTRAAttack(cfg defense.Config, seed uint64) (remaining int, isRA bool, err error) {
	s1, err := NewScenario(cfg, seed)
	if err != nil {
		return 0, false, err
	}
	c1, err := s1.RACandidates()
	if err != nil {
		return 0, false, err
	}

	// Second observation of the same worker: with dynamic BTRAs the decoy
	// sets re-randomize between invocations (the runtime re-roll), while
	// the return address necessarily stays.
	s2, err := newScenarioOpts(cfg, seed, cfg.InsecureDynamicBTRAs, seed^0xd15ea5e, "", nil)
	if err != nil {
		return 0, false, err
	}
	c2, err := s2.RACandidates()
	if err != nil {
		return 0, false, err
	}

	in2 := make(map[uint64]bool, len(c2))
	for _, l := range c2 {
		in2[l.Value] = true
	}
	var common []Leaked
	for _, l := range c1 {
		if in2[l.Value] {
			common = append(common, l)
		}
	}
	if len(common) == 1 {
		return 1, s1.IsRealRA(common[0]), nil
	}
	return len(common), false, nil
}

// CalleeBTRAAttack demonstrates property (C) of Section 4.1: if BTRA sets
// were chosen per callee, two call sites calling the same function would
// share all decoys and differ only in their return addresses — leaking two
// frames of the same callee reveals both RAs by set difference. With
// per-call-site sets the difference contains nearly everything and carries
// no signal.
//
// It returns the size of the symmetric difference of the two innermost
// candidate runs and whether every differing value is a real RA.
func CalleeBTRAAttack(cfg defense.Config, seed uint64) (uniques int, allRAs bool, err error) {
	s1, err := newScenarioOpts(cfg, seed, false, 0, SymValidate, nil)
	if err != nil {
		return 0, false, err
	}
	s2, err := newScenarioOpts(cfg, seed, false, 0, SymProcess2, nil)
	if err != nil {
		return 0, false, err
	}
	c1, err := s1.RACandidates()
	if err != nil {
		return 0, false, err
	}
	c2, err := s2.RACandidates()
	if err != nil {
		return 0, false, err
	}
	in1 := map[uint64]bool{}
	for _, l := range c1 {
		in1[l.Value] = true
	}
	in2 := map[uint64]bool{}
	for _, l := range c2 {
		in2[l.Value] = true
	}
	var unique []Leaked
	for _, l := range c1 {
		if !in2[l.Value] {
			unique = append(unique, l)
		}
	}
	for _, l := range c2 {
		if !in1[l.Value] {
			unique = append(unique, l)
		}
	}
	if len(unique) == 0 {
		return 0, false, nil
	}
	all := true
	for _, l := range unique {
		if !s1.IsRealRA(l) && !s2.IsRealRA(l) {
			all = false
		}
	}
	return len(unique), all, nil
}

// NaiveBTDPArrayAttack demonstrates the Figure 5 hardening: with the BTDP
// array in the data section, the attacker intersects data-section words
// with stack heap-cluster values and discards matches, leaving only benign
// heap pointers to dereference. It returns how many stack heap-cluster
// pointers survive the filter and how many of them are BTDPs (ground
// truth): with the naive layout no BTDP survives, so the attacker
// dereferences safely; with the hardened layout the filter removes nothing
// and the traps stay live.
func NaiveBTDPArrayAttack(cfg defense.Config, seed uint64) (kept, keptBTDPs int, err error) {
	s, err := NewScenario(cfg, seed)
	if err != nil {
		return 0, 0, err
	}
	leaks, err := s.LeakStack(2 * 4096)
	if err != nil {
		return 0, 0, err
	}
	cl := s.Classify(leaks)
	if cl.Heap == nil {
		return 0, 0, nil
	}
	// The attacker reached the data section via AOCR stage B; the
	// experiment shortcuts to the region directly.
	bannerDS := s.Proc.Img.DataSyms[SymBanner]
	lo, hi, ok := s.Region(bannerDS.Addr)
	if !ok {
		return 0, 0, nil
	}
	inData := map[uint64]bool{}
	for addr := lo; addr+8 <= hi; addr += 8 {
		w, err := s.Read(addr)
		if err != nil {
			return 0, 0, err
		}
		if cl.Heap.Contains(w.Value) {
			inData[w.Value] = true
		}
	}
	for _, v := range dedup(cl.Heap.Values) {
		if inData[v] {
			continue // filtered: occurs both in the data section and on the stack
		}
		kept++
		if s.isBTDPValue(v) {
			keptBTDPs++
		}
	}
	return kept, keptBTDPs, nil
}

// isBTDPValue is oracle ground truth: v is one of the published BTDPs.
func (s *Scenario) isBTDPValue(v uint64) bool {
	for _, b := range s.Proc.BTDPValues {
		if b == v {
			return true
		}
	}
	return false
}
