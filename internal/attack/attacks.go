package attack

import (
	"fmt"

	"r2c/internal/defense"
	"r2c/internal/isa"
	"r2c/internal/rng"
	"r2c/internal/rt"
)

// refHelperFrame returns the attacker-copy frame geometry of the paused
// function: the offset from the body stack pointer to the return-address
// slot. In a monoculture this is exact; under diversification the victim's
// actual geometry differs (random post-offset, shuffled slots, different
// callee-saved sets).
func (s *Scenario) refHelperFrame() (raOffset uint64, ok bool) {
	pf, ok2 := s.RefImg.Funcs[SymHelper]
	if !ok2 {
		return 0, false
	}
	f := pf.F
	saves := len(f.CalleeSaved)
	return uint64(f.FrameSize) + uint64(saves)*8 + uint64(f.PostOffset)*8, true
}

// textRange reports whether v looks like a code address, judged against the
// clusters the attacker computed from the stack leak.
func (c *Clusters) textRange(v uint64) bool {
	return c.Text != nil && v >= c.Text.Lo-(4<<20) && v <= c.Text.Hi+(4<<20)
}

// RACandidates scans the paused frame for return-address candidates: the
// contiguous run of code-range values nearest the predicted return-address
// slot. Without BTRAs the run has length one (the return address itself);
// with BTRAs it contains pre+1+post indistinguishable values (Section 4.1).
func (s *Scenario) RACandidates() ([]Leaked, error) {
	leaks, err := s.LeakStack(2 * 4096)
	if err != nil {
		return nil, err
	}
	cl := s.Classify(leaks)
	if cl.Text == nil {
		return nil, fmt.Errorf("attack: no code-range values on stack")
	}
	// Find the first code-range value scanning up from RSP, then extend
	// the contiguous run.
	first := -1
	for i, l := range leaks {
		if cl.textRange(l.Value) {
			first = i
			break
		}
	}
	if first == -1 {
		return nil, fmt.Errorf("attack: no RA candidates found")
	}
	run := []Leaked{leaks[first]}
	for i := first + 1; i < len(leaks) && cl.textRange(leaks[i].Value); i++ {
		run = append(run, leaks[i])
	}
	return run, nil
}

// PickRA implements the attacker's only remaining option against BTRAs:
// choose uniformly among the candidates (Section 7.2.1). It returns the
// chosen leak; the caller judges it via the oracle.
func (s *Scenario) PickRA() (Leaked, error) {
	cands, err := s.RACandidates()
	if err != nil {
		return Leaked{}, err
	}
	return cands[s.Rnd.Intn(len(cands))], nil
}

// IsRealRA is the oracle judgment: does the leaked value equal a real
// return address of the victim build? (Ground truth; never used by attack
// logic.)
func (s *Scenario) IsRealRA(l Leaked) bool {
	for _, ra := range s.Proc.Img.CallSiteRA {
		if ra == l.Value {
			return true
		}
	}
	return false
}

// IsBTRA is the oracle judgment for booby-trapped values.
func (s *Scenario) IsBTRA(l Leaked) bool {
	return s.Proc.Img.IsBoobyTrapAddr(l.Value)
}

// refCallSiteRA returns the reference copy's return-address value for the
// validate→helper call site — the attacker's basis for computing the
// victim's ASLR slide in a monoculture.
func (s *Scenario) refCallSiteRA() (uint64, bool) {
	pf, ok := s.RefImg.Funcs[SymValidate]
	if !ok {
		return 0, false
	}
	for _, cs := range pf.F.CallSites {
		if cs.Callee == SymHelper {
			ra, ok := s.RefImg.CallSiteRA[cs.ID]
			return ra, ok
		}
	}
	return 0, false
}

// gadgetSpec is an attacker-selected gadget in its reference copy.
type gadgetSpec struct {
	refAddr uint64
	kind    isa.Kind // instruction kind at refAddr
}

// refGadgets picks n "gadget" points from the reference copy's protected
// text (instruction boundaries the attacker intends to reuse).
func (s *Scenario) refGadgets(n int) []gadgetSpec {
	var out []gadgetSpec
	names := s.RefImg.FuncOrder
	for len(out) < n {
		name := names[s.Rnd.Intn(len(names))]
		pf := s.RefImg.Funcs[name]
		if pf.F.BoobyTrap || pf.F.Stub || len(pf.InstrAddrs) < 4 {
			continue
		}
		i := s.Rnd.Intn(len(pf.InstrAddrs))
		out = append(out, gadgetSpec{pf.InstrAddrs[i], pf.F.Instrs[i].Kind})
	}
	return out
}

// judgeTransfer is the oracle for one attacker-computed control transfer
// target in the victim: a booby trap is a detection, a non-instruction or
// unmapped target is a crash, a different instruction than intended is a
// failed gadget, and the intended instruction is a hit.
func (s *Scenario) judgeTransfer(victimAddr uint64, wantKind isa.Kind) Outcome {
	img := s.Proc.Img
	if img.IsBoobyTrapAddr(victimAddr) {
		s.noteForensic("transfer", rt.TrapEvent{Kind: rt.TrapBTRA, PC: victimAddr})
		return Detected
	}
	pf := img.FuncAt(victimAddr)
	if pf == nil {
		return Crashed
	}
	i := pf.InstrIndexAt(victimAddr)
	if i < 0 {
		return Crashed // lands mid-instruction
	}
	in := &pf.F.Instrs[i]
	// Executing an unintended trap (prolog traps) is a detection.
	if in.Kind == isa.KTrap {
		kind := rt.TrapProlog
		if in.BTRA {
			kind = rt.TrapBTRACheck
		}
		s.noteForensic("transfer", rt.TrapEvent{Kind: kind, PC: victimAddr})
		return Detected
	}
	if in.Kind == wantKind {
		return Success
	}
	return Failed
}

// ROP mounts the classic return-oriented attack (Section 2.1): identify a
// return address, derive the victim's ASLR slide from the monoculture
// layout, compute gadget addresses, and verify the chain would execute. It
// requires neither reading text nor any runtime inference — exactly the
// attack code-layout randomization exists to break.
func (s *Scenario) ROP() Outcome {
	ra, err := s.PickRA()
	if err != nil {
		return Failed
	}
	refRA, ok := s.refCallSiteRA()
	if !ok {
		return Failed
	}
	// Mounting the chain takes at least one request round trip; a
	// re-randomizing defense invalidates the leak in the meantime. (The
	// CPH-locator exemption applies only to pointers used verbatim, i.e.
	// AOCR's whole-function reuse — computed gadget addresses always go
	// stale.)
	s.tick()
	if s.Stale(ra) {
		return Crashed // re-randomized between leak and use
	}
	slide := ra.Value - refRA // garbage if ra is a BTRA or layouts diverge
	worst := Success
	for _, g := range s.refGadgets(4) {
		o := s.judgeTransfer(g.refAddr+slide, g.kind)
		if o > worst {
			worst = o
		}
		if o == Detected || o == Crashed {
			return o
		}
	}
	return worst
}

// JITROP mounts direct just-in-time code reuse (Section 2.1): follow a
// leaked code pointer and read gadgets out of the text section at runtime.
// Execute-only memory stops the read itself.
func (s *Scenario) JITROP() Outcome {
	ra, err := s.PickRA()
	if err != nil {
		return Failed
	}
	// Read a window of text around the leaked pointer.
	probe := ra.Value &^ 7
	for off := uint64(0); off < 256; off += 8 {
		if _, err := s.Read(probe + off); err != nil {
			// Execute-only memory: the disclosure faults.
			return Crashed
		}
	}
	s.tick()
	if s.Stale(ra) {
		return Crashed
	}
	// With readable text the attacker harvests real victim addresses, so
	// gadget locations are exact; the chain succeeds unless the leaked
	// anchor was itself a booby trap (the window read above would already
	// be inside a trap function's neighbourhood — judge by anchor).
	if s.IsBTRA(ra) {
		s.noteForensic("transfer", rt.TrapEvent{Kind: rt.TrapBTRA, PC: ra.Value})
		return Detected
	}
	return Success
}

// IndirectJITROP mounts indirect JIT-ROP (Section 2.1): no text reads;
// infer gadget addresses from a leaked return address plus intra-function
// offsets taken from the monoculture copy. Fine-grained randomization (NOP
// insertion) breaks the offsets even when function shuffling alone would
// not.
func (s *Scenario) IndirectJITROP() Outcome {
	ra, err := s.PickRA()
	if err != nil {
		return Failed
	}
	refRA, ok := s.refCallSiteRA()
	if !ok {
		return Failed
	}
	s.tick()
	if s.Stale(ra) {
		return Crashed
	}
	// Gadgets at small deltas from the return address, chosen in the copy:
	// pick instruction boundaries inside the reference caller function.
	refPF := s.RefImg.Funcs[SymValidate]
	worst := Success
	for k := 0; k < 4; k++ {
		i := s.Rnd.Intn(len(refPF.InstrAddrs))
		delta := int64(refPF.InstrAddrs[i]) - int64(refRA)
		kind := refPF.F.Instrs[i].Kind
		o := s.judgeTransfer(uint64(int64(ra.Value)+delta), kind)
		if o > worst {
			worst = o
		}
		if o == Detected || o == Crashed {
			return o
		}
	}
	return worst
}

// PIROP mounts position-independent code reuse (Section 7.2.5): corrupt
// only the low 16 bits of the frame's return address, so no absolute
// address knowledge is needed. The attacker aims the partial pointer at a
// reference-copy gadget in the same 64 KiB region; page-aligned ASLR
// preserves the low 12 bits, leaving 4 bits of slide luck. Against R2C the
// attacker additionally cannot tell which candidate word is the return
// address, and NOP insertion shifts the gadget's low bits.
func (s *Scenario) PIROP() Outcome {
	return s.PIROPAdjust(s.Rnd.Intn(16))
}

// PIROPAdjust is PIROP with an explicit guess k for the four ASLR bits
// between page (2^12) and 64 KiB (2^16) granularity: the attacker adds
// k·4096 to the reference gadget's low bits. The persistent attack probes
// all sixteen values across worker restarts.
func (s *Scenario) PIROPAdjust(k int) Outcome {
	cands, err := s.RACandidates()
	if err != nil {
		return Failed
	}
	target := cands[s.Rnd.Intn(len(cands))]
	// Choose a gadget near the reference return address.
	refRA, ok := s.refCallSiteRA()
	if !ok {
		return Failed
	}
	refPF := s.RefImg.Funcs[SymValidate]
	i := s.Rnd.Intn(len(refPF.InstrAddrs))
	kind := refPF.F.Instrs[i].Kind
	_ = refRA
	low := uint16(refPF.InstrAddrs[i] + uint64(k)*4096)
	// Partial overwrite: two low bytes of the chosen stack word. PIROP
	// needs no leaked absolute addresses, so re-randomization between
	// observations does not invalidate anything — the overwrite is
	// relative to whatever is there now.
	if err := s.Proc.Space.Write(target.Addr, []byte{byte(low), byte(low >> 8)}); err != nil {
		return Crashed
	}
	// If the corrupted word was a BTRA, it is never consumed: the partial
	// overwrite silently fizzles and the victim runs on. If it was the
	// real return address, control transfers to the partial pointer.
	if !s.IsRealRA(target) {
		// Run the victim: nothing should happen (failed attempt).
		if o := s.ResumeOutcomeOnly(); o == Success {
			return Success
		}
		return Failed
	}
	newVal := (target.Value &^ 0xffff) | uint64(low)
	return s.judgeTransfer(newVal, kind)
}

// PIROPPersistent retries PIROP across worker restarts, as the real attack
// does (iterative probing and memory massaging, Section 7.2.5). The worker
// restarts with the same image; each attempt is a fresh process instance.
// It returns the first non-Failed outcome, or Failed after maxRestarts.
func PIROPPersistent(cfg defense.Config, seed uint64, maxRestarts int) Outcome {
	o, _ := PIROPPersistentForensic(cfg, seed, maxRestarts)
	return o
}

// PIROPPersistentForensic is PIROPPersistent returning, alongside the
// outcome, the forensic hits accumulated across every restart of the
// campaign — each detection attributed to the trap class and planted
// artifact that caught it.
func PIROPPersistentForensic(cfg defense.Config, seed uint64, maxRestarts int) (Outcome, []ForensicHit) {
	worst := Failed
	var hits []ForensicHit
	for i := 0; i < maxRestarts; i++ {
		s, err := NewScenario(cfg, seed)
		if err != nil {
			return worst, hits
		}
		s.Rnd = rng.New(seed*1000003 + uint64(i)) // new attacker choices per try
		o := s.PIROPAdjust(i % 16)                // probe the ASLR nibble systematically
		hits = append(hits, s.Forensics...)
		if o == Success {
			return Success, hits
		}
		if o == Detected {
			return Detected, hits // the defender reacted; the campaign is burned
		}
		if o == Crashed {
			worst = Crashed
		}
	}
	return worst, hits
}

// CrashSideChannel is the remaining attack surface of Section 7.3: with a
// restarting worker that reuses its binary image, the attacker overwrites
// return-address candidates with zero one restart at a time; the candidate
// whose corruption crashes the worker is the real return address. Booby
// traps do not stop it because corrupted BTRAs are never consumed. Load
// time re-randomization (freshSeedPerRestart) defeats it: positions change
// every restart, so observations do not accumulate.
//
// It returns the attempts used, whether the RA was identified, and the
// outcome of the final verification restart.
func (s *Scenario) CrashSideChannel(maxRestarts int, freshSeedPerRestart bool) (int, bool, Outcome) {
	cands, err := s.RACandidates()
	if err != nil {
		return 0, false, Failed
	}
	order := s.Rnd.Perm(len(cands))
	attempts := 0
	for _, idx := range order {
		attempts++
		if attempts > maxRestarts {
			break
		}
		// Restart the worker: a fresh scenario. Same seed = same layout
		// (the nginx/Apache worker-restart behaviour, Section 4); fresh
		// seed models load-time re-randomization.
		seed := s.restartSeed(attempts, freshSeedPerRestart)
		w, err := NewScenario(s.Cfg, seed)
		if err != nil {
			return attempts, false, Failed
		}
		wCands, err := w.RACandidates()
		if err != nil || len(wCands) != len(cands) {
			continue
		}
		probe := wCands[idx]
		if err := w.Write(probe.Addr, 0); err != nil {
			continue
		}
		o := w.ResumeOutcomeOnly()
		if o == Crashed || o == Detected {
			// This candidate's corruption killed the worker — it is the
			// real return address if (and only if) layouts are stable
			// across restarts. Verify on three further restarts; under
			// load-time re-randomization the position does not reproduce.
			identified := true
			for k := 1; k <= 3; k++ {
				v, err := NewScenario(s.Cfg, s.restartSeed(attempts+k, freshSeedPerRestart))
				if err != nil {
					return attempts, false, Failed
				}
				vCands, err := v.RACandidates()
				if err != nil || idx >= len(vCands) || !v.IsRealRA(vCands[idx]) {
					identified = false
					break
				}
			}
			return attempts, identified, o
		}
	}
	return attempts, false, Failed
}

func (s *Scenario) restartSeed(attempt int, fresh bool) uint64 {
	if fresh {
		return uint64(attempt)*0x9e3779b97f4a7c15 + 0xbeef
	}
	return s.baseSeed
}
