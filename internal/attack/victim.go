// Package attack implements the attacker's side of the evaluation: the
// memory-disclosure and corruption primitives of the threat model (Section
// 3), the AOCR inference pipeline (Section 2.3), and the code-reuse attacks
// of Table 3 (ROP, JIT-ROP, indirect JIT-ROP, PIROP, Blind ROP, AOCR
// whole-function reuse), plus the ablation attacks that justify R2C's design
// decisions (dynamic BTRA sets, callee-chosen BTRA sets, the naive BTDP
// array).
//
// The attacker operates strictly on what the threat model grants: the
// victim's memory through permission-checked reads/writes (a disclosure and
// a corruption primitive), crash/no-crash observations, and an attacker-own
// copy of the binary built from the same source (the software monoculture) —
// but with a different diversification seed when the defense randomizes.
// Toolchain ground truth (which stack word really is the return address,
// which pointer is a BTDP) is used only by the experiment oracle to score
// outcomes, never by attack logic.
package attack

import (
	"fmt"

	"r2c/internal/tir"
	"r2c/internal/workload"
)

// Sentinel output values of the victim program.
const (
	// WinSentinel is emitted by secret_disclose when called with the magic
	// argument — the attacker's goal.
	WinSentinel = 0x57494e21 // "WIN!"
	// LoseSentinel is emitted by secret_disclose with a wrong argument.
	LoseSentinel = 0xdead
	// MagicArg is the argument value that unlocks secret_disclose.
	MagicArg = 0x1337
	// NormalResult marks a benign dispatch through the admin pointer.
	NormalResult = 0x0b11
)

// Victim symbol names the attack drivers reference (the attacker knows them
// from its binary copy; symbols are not secret, addresses are).
const (
	SymSecretKey    = "secret_key"
	SymAdminPtr     = "admin_ptr"
	SymHandlerTable = "handler_table"
	SymBanner       = "banner"
	SymSecretFunc   = "secret_disclose"
	SymLogHandler   = "log_handler"
	SymHelper       = "helper"
	SymValidate     = "validate"
	SymProcess      = "process"
	SymProcess2     = "process2"
	SymServe        = "serve"
)

// VictimRequests is the number of requests the victim serves before the
// final dispatch; pausing anywhere in this window lands inside the serving
// loop with frames on the stack.
const VictimRequests = 4000

// Victim builds the attack target: a server-like program with the assets
// the AOCR paper assumes (Figure 1): function pointers and a corruptible
// default parameter in the data section, heap objects that link the heap to
// the data section, heap pointers spilled to the stack, and an indirect
// dispatch the attacker wants to hijack.
//
// The win condition: make the final dispatch call secret_disclose with
// MagicArg, which emits WinSentinel. Normally the dispatch calls
// log_handler (via admin_ptr) with secret_key's benign value.
func Victim() *tir.Module {
	mb := tir.NewModule("victim")

	// The default parameter AOCR attack (C) corrupts (Section 2.3).
	mb.AddDefaultParam(SymSecretKey, 5)
	// A recognizable data global; heap objects point at it, giving the
	// attacker the heap→data stepping stone.
	mb.AddGlobal(SymBanner, 32, 0x5233432d53525652, 0x62616e6e65723031, 0x1111, 0x2222)
	// Handler table: a structure whose interior layout the attacker knows
	// ("[AOCR] makes assumptions on the layout of structures"). Entry 1 is
	// the juicy whole-function-reuse target.
	mb.AddFuncPtrTable(SymHandlerTable, SymLogHandler, SymSecretFunc)
	// Interleaved plain data, as any real data section has.
	mb.AddGlobal("request_count", 16, 0, 0)
	// The dispatch pointer the program actually calls at the end.
	mb.AddFuncPtr(SymAdminPtr, SymLogHandler)

	// secret_disclose(x): the sensitive function; only the magic argument
	// discloses.
	sd := mb.NewFunc(SymSecretFunc, 1)
	{
		magic := sd.Const(MagicArg)
		eq := sd.Bin(tir.OpEq, sd.Param(0), magic)
		win := sd.NewBlock()
		lose := sd.NewBlock()
		sd.SetBlock(0)
		sd.CondBr(eq, win, lose)
		sd.SetBlock(win)
		w := sd.Const(WinSentinel)
		sd.Output(w)
		sd.Ret(w)
		sd.SetBlock(lose)
		l := sd.Const(LoseSentinel)
		sd.Output(l)
		sd.Ret(l)
	}

	// log_handler(x): the benign dispatch target.
	lh := mb.NewFunc(SymLogHandler, 1)
	{
		n := lh.Const(NormalResult)
		x := lh.Bin(tir.OpXor, lh.Param(0), n)
		_ = x
		lh.Ret(n)
	}

	// helper(obj, v): leaf work; the pause point. Holds the heap object
	// pointer live across its loop so it is spilled to the stack (the
	// "registers containing heap pointers that are spilled" of Section
	// 7.2.3).
	hp := mb.NewFunc(SymHelper, 2)
	{
		acc := hp.NewReg()
		hp.Mov(acc, hp.Param(1))
		workload.Loop(hp, 0, 24, func(i tir.Reg) {
			v := hp.Load(hp.Param(0), 24) // read through the heap pointer
			hp.BinTo(acc, tir.OpAdd, acc, v)
			c := hp.Const(0x9e3779b97f4a7c15)
			hp.BinTo(acc, tir.OpMul, acc, c)
		})
		hp.Ret(acc)
	}

	// validate(obj, v): an intermediate frame between process and helper,
	// deepening the protected call chain (the RA-chain probability
	// experiment of Section 7.2.1 needs several protected frames).
	va := mb.NewFunc(SymValidate, 2)
	{
		chkLoc := va.NewLocal("vstate", 8)
		ca := va.AddrLocal(chkLoc)
		va.Store(ca, 0, va.Param(1))
		v := va.Load(ca, 0)
		r := va.Call(SymHelper, va.Param(0), v)
		va.Ret(r)
	}
	_ = va

	// process(obj, req): one request; a local buffer plus nested calls.
	pr := mb.NewFunc(SymProcess, 2)
	{
		buf := pr.NewLocal("reqbuf", 32)
		a := pr.AddrLocal(buf)
		pr.Store(a, 0, pr.Param(1))
		pr.Store(a, 8, pr.Param(0)) // heap pointer in a stack slot
		v := pr.Load(a, 0)
		r := pr.Call(SymValidate, pr.Param(0), v)
		pr.Store(a, 16, r)
		pr.Ret(pr.Load(a, 16))
	}

	// process2(obj, req): a second, rarer request path — a *different call
	// site* reaching helper, used by the property-(C) ablation attack.
	pr2 := mb.NewFunc(SymProcess2, 2)
	{
		buf := pr2.NewLocal("auditbuf", 16)
		a := pr2.AddrLocal(buf)
		pr2.Store(a, 0, pr2.Param(1))
		v := pr2.Load(a, 0)
		r := pr2.Call(SymHelper, pr2.Param(0), v)
		pr2.Ret(r)
	}
	_ = pr2

	// serve(obj, req): the dispatcher frame above process.
	sv := mb.NewFunc(SymServe, 2)
	{
		seven := sv.Const(7)
		bits := sv.Bin(tir.OpAnd, sv.Param(1), seven)
		z := sv.Const(0)
		isAudit := sv.Bin(tir.OpEq, bits, z)
		audit := sv.NewBlock()
		normal := sv.NewBlock()
		sv.SetBlock(0)
		sv.CondBr(isAudit, audit, normal)
		sv.SetBlock(audit)
		r2 := sv.Call(SymProcess2, sv.Param(0), sv.Param(1))
		sv.Ret(r2)
		sv.SetBlock(normal)
		r := sv.Call(SymProcess, sv.Param(0), sv.Param(1))
		sv.Ret(r)
	}
	_ = sv

	main := mb.NewFunc("main", 0)
	{
		// Heap object graph: obj -> banner (data section), plus payload.
		sz := main.Const(64)
		obj := main.Alloc(sz)
		ba := main.AddrGlobal(SymBanner)
		main.Store(obj, 0, ba) // heap word pointing into the data section
		c1 := main.Const(0xabcdef)
		main.Store(obj, 8, c1)
		hs := main.Const(64)
		obj2 := main.Alloc(hs)
		main.Store(obj, 16, obj2) // heap->heap pointer
		c2 := main.Const(0x42)
		main.Store(obj, 24, c2)

		chk := main.Const(0)
		workload.Loop(main, 0, VictimRequests, func(rq tir.Reg) {
			r := main.Call(SymServe, obj, rq)
			main.BinTo(chk, tir.OpXor, chk, r)
		})
		main.Output(chk)

		// The dispatch the attacker hijacks: call through admin_ptr with
		// the default parameter from the data section.
		ap := main.AddrGlobal(SymAdminPtr)
		fp := main.Load(ap, 0)
		ka := main.AddrGlobal(SymSecretKey)
		key := main.Load(ka, 0)
		res := main.CallIndirect(fp, key)
		main.Output(res)

		main.Free(obj)
		main.Free(obj2)
		main.RetVoid()
	}

	mb.SetEntry("main")
	return mb.MustBuild()
}

// HasWin reports whether the victim's output contains the win sentinel.
func HasWin(output []uint64) bool {
	for _, w := range output {
		if w == WinSentinel {
			return true
		}
	}
	return false
}

// Outcome classifies an attack attempt.
type Outcome int

const (
	// Success: the attacker reached the win condition.
	Success Outcome = iota
	// Failed: the attack completed without effect (wrong target, stale
	// address, benign result).
	Failed
	// Detected: a booby trap fired — the defender got an actionable signal
	// (the reactive component, Sections 4.1/4.2).
	Detected
	// Crashed: the victim crashed without tripping a booby trap.
	Crashed
)

func (o Outcome) String() string {
	switch o {
	case Success:
		return "success"
	case Failed:
		return "failed"
	case Detected:
		return "DETECTED"
	case Crashed:
		return "crashed"
	}
	return "?"
}

// Tally accumulates Monte-Carlo attack outcomes.
type Tally struct {
	Success, Failed, Detected, Crashed int
}

// Add records one outcome.
func (t *Tally) Add(o Outcome) {
	switch o {
	case Success:
		t.Success++
	case Failed:
		t.Failed++
	case Detected:
		t.Detected++
	case Crashed:
		t.Crashed++
	}
}

// Trials returns the total number of recorded outcomes.
func (t *Tally) Trials() int { return t.Success + t.Failed + t.Detected + t.Crashed }

// SuccessRate returns the fraction of successful attempts.
func (t *Tally) SuccessRate() float64 {
	if t.Trials() == 0 {
		return 0
	}
	return float64(t.Success) / float64(t.Trials())
}

// DetectionRate returns the fraction of attempts that detonated a booby
// trap.
func (t *Tally) DetectionRate() float64 {
	if t.Trials() == 0 {
		return 0
	}
	return float64(t.Detected) / float64(t.Trials())
}

func (t *Tally) String() string {
	return fmt.Sprintf("success=%d failed=%d detected=%d crashed=%d (n=%d)",
		t.Success, t.Failed, t.Detected, t.Crashed, t.Trials())
}
