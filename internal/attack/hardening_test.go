package attack

import (
	"reflect"
	"testing"

	"r2c/internal/defense"
	"r2c/internal/rt"
	"r2c/internal/sim"
	"r2c/internal/vm"
)

// checkedConfig is full R2C plus the Section 7.3 hardening.
func checkedConfig() defense.Config {
	c := defense.R2CFull()
	c.Name = "r2c-btra-checks"
	c.CheckBTRAsOnReturn = true
	return c
}

func TestBTRAChecksPreserveBehaviour(t *testing.T) {
	m := Victim()
	base, _, err := sim.Run(m, defense.Off(), 1, vm.EPYCRome())
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := sim.Run(m, checkedConfig(), 2, vm.EPYCRome())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Output, got.Output) {
		t.Fatal("consistency checks changed program behaviour")
	}
}

// TestBTRAChecksCatchCorruptionSpree: zeroing every return-address
// candidate (the brute version of the Section 7.3 side channel) must
// detonate a consistency check when the victim resumes.
func TestBTRAChecksCatchCorruptionSpree(t *testing.T) {
	s, err := NewScenario(checkedConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := s.RACandidates()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if s.IsBTRA(c) {
			if err := s.Write(c.Addr, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	o := s.ResumeOutcomeOnly()
	if o != Detected {
		t.Fatalf("BTRA corruption spree outcome = %v, want detected", o)
	}
	last := s.Proc.LastTrap()
	if last == nil || last.Kind != rt.TrapBTRACheck {
		t.Fatalf("trap = %v, want btra-check", last)
	}
}

// TestBTRAChecksDeterSideChannel: the single-candidate zeroing probe of
// Section 7.3 gets detected with probability ≈ 1/pre per affected call
// return; across a probing campaign at least some probes must detonate,
// giving the defender the reactive signal the paper proposes.
func TestBTRAChecksDeterSideChannel(t *testing.T) {
	detections := 0
	for seed := uint64(1); seed <= 12; seed++ {
		s, err := NewScenario(checkedConfig(), seed)
		if err != nil {
			t.Fatal(err)
		}
		cands, err := s.RACandidates()
		if err != nil {
			t.Fatal(err)
		}
		// Zero one BTRA candidate, as the probing attack does.
		var probe *Leaked
		for i := range cands {
			if s.IsBTRA(cands[i]) {
				probe = &cands[i]
				break
			}
		}
		if probe == nil {
			continue
		}
		if err := s.Write(probe.Addr, 0); err != nil {
			t.Fatal(err)
		}
		if o := s.ResumeOutcomeOnly(); o == Detected {
			detections++
		}
	}
	if detections == 0 {
		t.Fatal("no probe detected across 12 campaigns; the hardening is inert")
	}
	t.Logf("probing campaigns detected: %d/12", detections)
}

// TestWithoutChecksSpreeIsSilent contrasts the default configuration: the
// same corruption spree crashes (or passes silently) but is never detected
// as BTRA corruption — the remaining attack surface the paper acknowledges.
func TestWithoutChecksSpreeIsSilent(t *testing.T) {
	s, err := NewScenario(defense.R2CFull(), 5)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := s.RACandidates()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if s.IsBTRA(c) {
			if err := s.Write(c.Addr, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	s.ResumeOutcomeOnly()
	for _, tr := range s.Proc.Traps() {
		if tr.Kind == rt.TrapBTRACheck {
			t.Fatal("default config fired a consistency check")
		}
	}
}
