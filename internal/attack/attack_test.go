package attack

import (
	"testing"

	"r2c/internal/defense"
	"r2c/internal/sim"
	"r2c/internal/vm"
)

func TestVictimRunsCleanly(t *testing.T) {
	res, _, err := sim.Run(Victim(), defense.Off(), 1, vm.EPYCRome())
	if err != nil {
		t.Fatal(err)
	}
	if HasWin(res.Output) {
		t.Fatal("victim won without an attack")
	}
	// The benign dispatch result must appear.
	found := false
	for _, w := range res.Output {
		if w == NormalResult {
			found = true
		}
	}
	if !found {
		t.Fatalf("benign dispatch missing from output %v", res.Output)
	}
	// And under full R2C it behaves identically.
	res2, _, err := sim.Run(Victim(), defense.R2CFull(), 2, vm.EPYCRome())
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Output) != len(res.Output) {
		t.Fatalf("output length diverged: %d vs %d", len(res2.Output), len(res.Output))
	}
}

func TestScenarioPausesInHelper(t *testing.T) {
	for _, cfg := range []defense.Config{defense.Off(), defense.R2CFull()} {
		s, err := NewScenario(cfg, 5)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		pf := s.Proc.Img.FuncAt(s.Mach.CPU.PC)
		if pf == nil || pf.F.Name != SymHelper {
			t.Fatalf("%s: paused in %v, want helper", cfg.Name, pf)
		}
	}
}

func TestRACandidatesBaselineIsExact(t *testing.T) {
	s, err := NewScenario(defense.Off(), 7)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := s.RACandidates()
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 {
		t.Fatalf("baseline candidates = %d, want exactly 1 (the RA)", len(cands))
	}
	if !s.IsRealRA(cands[0]) {
		t.Fatalf("baseline candidate %#x is not the RA", cands[0].Value)
	}
}

func TestRACandidatesUnderR2C(t *testing.T) {
	cfg := defense.R2CFull()
	s, err := NewScenario(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := s.RACandidates()
	if err != nil {
		t.Fatal(err)
	}
	// helper's band: pre+1+post ≈ BTRAsPerCall+1 (plus alignment padding).
	if len(cands) < cfg.BTRAsPerCall {
		t.Fatalf("candidates = %d, want ≈ %d", len(cands), cfg.BTRAsPerCall+1)
	}
	real, btras := 0, 0
	for _, c := range cands {
		if s.IsRealRA(c) {
			real++
		}
		if s.IsBTRA(c) {
			btras++
		}
	}
	if real != 1 {
		t.Fatalf("real RAs in band = %d, want 1 (property A)", real)
	}
	if btras < cfg.BTRAsPerCall-2 {
		t.Fatalf("BTRAs in band = %d, want ≈ %d", btras, cfg.BTRAsPerCall)
	}
}

func TestClassifyFindsRegions(t *testing.T) {
	s, err := NewScenario(defense.R2CFull(), 11)
	if err != nil {
		t.Fatal(err)
	}
	leaks, err := s.LeakStack(2 * 4096)
	if err != nil {
		t.Fatal(err)
	}
	cl := s.Classify(leaks)
	if cl.Text == nil {
		t.Fatal("no text cluster")
	}
	if cl.Heap == nil {
		t.Fatal("no heap cluster")
	}
	// Oracle: the heap cluster must actually cover the victim's heap.
	base, brk := s.Proc.Heap.Bounds()
	if cl.Heap.Lo < base-(64<<20) || cl.Heap.Hi > brk+(64<<20) {
		t.Fatalf("heap cluster [%#x,%#x] does not match heap [%#x,%#x]",
			cl.Heap.Lo, cl.Heap.Hi, base, brk)
	}
	// Under R2C the heap cluster must contain BTDPs (the poisoning).
	btdps := 0
	for _, v := range cl.Heap.Values {
		if s.isBTDPValue(v) {
			btdps++
		}
	}
	if btdps == 0 {
		t.Fatal("no BTDPs mixed into the heap cluster")
	}
}

func TestAOCRSucceedsAgainstBaseline(t *testing.T) {
	wins := 0
	for seed := uint64(1); seed <= 5; seed++ {
		s, err := NewScenario(defense.Off(), seed)
		if err != nil {
			t.Fatal(err)
		}
		if o := s.AOCR(); o == Success {
			wins++
		} else {
			t.Logf("seed %d: %v", seed, o)
		}
	}
	if wins < 4 {
		t.Fatalf("AOCR against unprotected baseline won only %d/5", wins)
	}
}

func TestAOCRAgainstR2C(t *testing.T) {
	tally := Tally{}
	for seed := uint64(1); seed <= 10; seed++ {
		s, err := NewScenario(defense.R2CFull(), seed)
		if err != nil {
			t.Fatal(err)
		}
		tally.Add(s.AOCR())
	}
	t.Logf("AOCR vs R2C: %v", &tally)
	if tally.Success > 0 {
		t.Fatalf("AOCR succeeded against full R2C: %v", &tally)
	}
	if tally.Detected == 0 {
		t.Fatalf("no booby trap detections across 10 AOCR attempts: %v", &tally)
	}
}

func TestROPMatrixEndpoints(t *testing.T) {
	// Classic ROP: wins against the baseline, loses against R2C.
	s, err := NewScenario(defense.Off(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if o := s.ROP(); o != Success {
		t.Fatalf("ROP vs baseline = %v, want success", o)
	}
	fails := 0
	for seed := uint64(1); seed <= 5; seed++ {
		s, err := NewScenario(defense.R2CFull(), seed)
		if err != nil {
			t.Fatal(err)
		}
		if o := s.ROP(); o != Success {
			fails++
		}
	}
	if fails < 5 {
		t.Fatalf("ROP vs R2C succeeded %d/5 times", 5-fails)
	}
}

func TestJITROPStoppedByXOnly(t *testing.T) {
	s, err := NewScenario(defense.Off(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if o := s.JITROP(); o != Success {
		t.Fatalf("JIT-ROP vs baseline = %v, want success", o)
	}
	s2, err := NewScenario(defense.R2CFull(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if o := s2.JITROP(); o == Success {
		t.Fatal("JIT-ROP read execute-only text")
	}
}
