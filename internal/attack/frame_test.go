package attack

import (
	"testing"

	"r2c/internal/defense"
)

// TestMonocultureFramePrediction verifies the monoculture premise the
// attacks build on: against an undiversified baseline, the attacker's own
// copy of the binary predicts the victim's return-address slot exactly
// (Figure 2a's "predictable location"); under R2C the same prediction lands
// inside the BTRA band instead.
func TestMonocultureFramePrediction(t *testing.T) {
	s, err := NewScenario(defense.Off(), 21)
	if err != nil {
		t.Fatal(err)
	}
	off, ok := s.refHelperFrame()
	if !ok {
		t.Fatal("no reference frame info")
	}
	raAddr := s.RSP() + off
	l, err := s.Read(raAddr)
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsRealRA(l) {
		t.Fatalf("baseline frame prediction missed: %#x at %#x is not the RA", l.Value, raAddr)
	}

	// Under R2C the prediction is no better than a guess: across seeds it
	// must frequently hit a BTRA or a non-RA word (the victim's post-offset
	// and frame layout differ from the attacker's copy).
	hits := 0
	for seed := uint64(1); seed <= 8; seed++ {
		s2, err := NewScenario(defense.R2CFull(), seed)
		if err != nil {
			t.Fatal(err)
		}
		off2, ok := s2.refHelperFrame()
		if !ok {
			t.Fatal("no reference frame info")
		}
		l2, err := s2.Read(s2.RSP() + off2)
		if err != nil {
			continue // prediction may even fall off the frame
		}
		if s2.IsRealRA(l2) {
			hits++
		}
	}
	if hits > 4 {
		t.Fatalf("monoculture prediction still works under R2C: %d/8 hits", hits)
	}
}
