package attack

import (
	"testing"

	"r2c/internal/defense"
)

func TestBlindROPAgainstR2CRaisesAlarms(t *testing.T) {
	res, err := BlindROP(defense.R2CFull(), 31, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Probing blind against R2C must detonate traps: the text section is
	// salted with booby-trap functions and prolog traps (Section 4.1).
	if res.Detections == 0 {
		t.Fatalf("no detections across %d blind probes: %+v", res.Probes, res)
	}
	t.Logf("blind ROP vs R2C: %+v", res)
}

func TestBlindROPAgainstUndefendedWorker(t *testing.T) {
	// Against a worker with no traps at all, blind probing is silent: no
	// detections, and some probe eventually lands on a survivable
	// instruction (the Blind ROP premise).
	res, err := BlindROP(defense.Off(), 7, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detections != 0 {
		t.Fatalf("undefended worker produced detections: %+v", res)
	}
}

func TestFengShuiFiltersLessUnderR2C(t *testing.T) {
	const maxDelta = 4096 // the victim's two objects are allocated together
	// Without BTDPs every kept pointer is trivially safe; the question is
	// how much the pairing filter helps against R2C's poisoned cluster.
	r2c, err := FengShui(defense.R2CFull(), 5, maxDelta)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("feng shui vs R2C: %+v", r2c)
	// The paper grants that this refinement can identify some benign
	// pairs; the experiment's point is that it is not a clean separator:
	// either almost nothing pairs up (the filter starves) or BTDPs leak
	// into the kept set (guard pages also cluster). Either way the
	// attacker keeps fewer certainly-safe pointers than the plain cluster
	// contains.
	s, err := NewScenario(defense.R2CFull(), 5)
	if err != nil {
		t.Fatal(err)
	}
	leaks, err := s.LeakStack(2 * 4096)
	if err != nil {
		t.Fatal(err)
	}
	cl := s.Classify(leaks)
	total := len(dedup(cl.Heap.Values))
	if r2c.PairsFound >= total {
		t.Fatalf("feng shui filter kept everything (%d of %d)", r2c.PairsFound, total)
	}
}
