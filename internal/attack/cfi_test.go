package attack

import (
	"reflect"
	"testing"

	"r2c/internal/defense"
	"r2c/internal/rt"
	"r2c/internal/sim"
	"r2c/internal/vm"
)

// Section 8.2: backward-edge CFI (a shadow stack) is orthogonal to R2C —
// it kills every return-address corruption outright but does not stop
// AOCR's forward-edge whole-function reuse.

func TestShadowStackPreservesBehaviour(t *testing.T) {
	m := Victim()
	base, _, err := sim.Run(m, defense.Off(), 1, vm.EPYCRome())
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := sim.Run(m, defense.CFIShadowStack(), 1, vm.EPYCRome())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Output, got.Output) {
		t.Fatal("shadow stack changed behaviour")
	}
	// And combined with full R2C (the paper's "could strengthen each
	// other").
	combo := defense.R2CFull()
	combo.Name = "r2c+shadowstack"
	combo.ShadowStack = true
	got2, _, err := sim.Run(m, combo, 2, vm.EPYCRome())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Output, got2.Output) {
		t.Fatal("R2C + shadow stack changed behaviour")
	}
}

func TestShadowStackStopsRAOverwrite(t *testing.T) {
	s, err := NewScenario(defense.CFIShadowStack(), 3)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := s.RACandidates()
	if err != nil {
		t.Fatal(err)
	}
	// Without diversification there is exactly one candidate: the RA.
	if len(cands) != 1 || !s.IsRealRA(cands[0]) {
		t.Fatalf("unexpected candidates under CFI: %d", len(cands))
	}
	// Overwrite it with a valid code address (a classic ROP pivot).
	other := s.Proc.Img.Funcs[SymLogHandler].Start
	if err := s.Write(cands[0].Addr, other); err != nil {
		t.Fatal(err)
	}
	o := s.ResumeOutcomeOnly()
	if o != Detected {
		t.Fatalf("RA overwrite under shadow stack = %v, want detected", o)
	}
	last := s.Proc.LastTrap()
	if last == nil || last.Kind != rt.TrapShadowStack {
		t.Fatalf("trap = %v, want shadow-stack", last)
	}
}

func TestAOCRBeatsShadowStackAlone(t *testing.T) {
	// The forward-edge gap: AOCR corrupts a function pointer and a default
	// parameter; no return address is touched, so the shadow stack never
	// fires (Section 8.2's CFG-validity caveat).
	wins := 0
	for seed := uint64(1); seed <= 5; seed++ {
		s, err := NewScenario(defense.CFIShadowStack(), seed)
		if err != nil {
			t.Fatal(err)
		}
		if o := s.AOCR(); o == Success {
			wins++
		}
	}
	if wins < 4 {
		t.Fatalf("AOCR won only %d/5 against shadow-stack-only CFI", wins)
	}
}

func TestShadowStackPlusR2C(t *testing.T) {
	// Combined, AOCR is stopped by R2C's data diversification and RA
	// corruption by the shadow stack — the orthogonality claim.
	combo := defense.R2CFull()
	combo.Name = "r2c+shadowstack"
	combo.ShadowStack = true
	tally := Tally{}
	for seed := uint64(1); seed <= 5; seed++ {
		s, err := NewScenario(combo, seed)
		if err != nil {
			t.Fatal(err)
		}
		tally.Add(s.AOCR())
	}
	if tally.Success > 0 {
		t.Fatalf("AOCR won against R2C+CFI: %v", &tally)
	}
}
