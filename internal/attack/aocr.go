package attack

// This file implements the address-oblivious code reuse attack of Section
// 2.3 against the victim program, following the three demonstrated steps:
// (A) profile pointer locations on the stack, (B) leak heap data to reach
// the data section, and (C) use the data section layout to corrupt function
// default parameters and mount whole-function reuse. The attack never needs
// concrete gadget addresses — that is its point — so code-only
// diversification does not stop it; R2C's data diversification (BTDPs,
// global shuffling) does (Section 7.2).

// Region gives the attacker the mapped extent of the region containing
// addr. Crash-resistant probing can obtain this on real systems; R2C does
// not claim to hide region extents, only their contents' layout.
func (s *Scenario) Region(addr uint64) (lo, hi uint64, ok bool) {
	for _, r := range s.Proc.Space.Regions() {
		if addr >= r.Addr && addr < r.Addr+r.Size {
			return r.Addr, r.Addr + r.Size, true
		}
	}
	return 0, 0, false
}

// AOCR runs the full chain and returns the outcome. The booby traps give
// the defender a detection signal at two points: dereferencing a BTDP when
// following stage B's heap pointer, and (for the final transfer) landing in
// a trap.
func (s *Scenario) AOCR() Outcome {
	// --- Stage A: profile the stack (Figure 2a, attack A). ---
	leaks, err := s.LeakStack(2 * 4096)
	if err != nil {
		return Crashed
	}
	cl := s.Classify(leaks)
	if cl.Heap == nil || cl.Text == nil {
		return Failed
	}

	// --- Stage B: reach the heap (attack B). Stack-slot randomization
	// means no specific heap pointer can be targeted, but the cluster as a
	// whole is identifiable; the attacker walks its members in random
	// order — every dereference being exactly the choice BTDPs poison
	// (Section 4.2). ---
	heapPtrs := dedup(cl.Heap.Values)
	order := s.Rnd.Perm(len(heapPtrs))
	var dataPtr uint64
	found := false
	for _, idx := range order {
		ptr := heapPtrs[idx]
		words, o := s.leakObject(ptr)
		if o != Success {
			return o // a BTDP detonated (Detected) or the read crashed
		}
		if dataPtr, found = s.findDataPointer(words, cl); found {
			break
		}
		// Follow one heap→heap link before moving on (object graph walk).
		if next, okNext := s.findHeapPointer(words, cl, ptr); okNext {
			words, o = s.leakObject(next)
			if o != Success {
				return o
			}
			if dataPtr, found = s.findDataPointer(words, cl); found {
				break
			}
		}
	}
	if !found {
		return Failed
	}

	// --- Stage C: the data section (attack C). ---
	lo, hi, okR := s.Region(dataPtr)
	if !okR {
		return Failed
	}
	secret, okS := s.findHandlerTableEntry(lo, hi, cl)
	if !okS {
		return Failed
	}

	// Locate admin_ptr and secret_key relative to the banner anchor using
	// the monoculture copy's offsets. Global shuffling and padding
	// invalidate exactly this step (Section 7.2.2).
	refBanner, ok1 := s.RefImg.DataSyms[SymBanner]
	refAdmin, ok2 := s.RefImg.DataSyms[SymAdminPtr]
	refKey, ok3 := s.RefImg.DataSyms[SymSecretKey]
	if !ok1 || !ok2 || !ok3 {
		return Failed
	}
	adminAddr := dataPtr + (refAdmin.Addr - refBanner.Addr)
	keyAddr := dataPtr + (refKey.Addr - refBanner.Addr)
	if adminAddr < lo || adminAddr >= hi || keyAddr < lo || keyAddr >= hi {
		return Failed
	}

	// Re-randomizing defenses invalidate the harvested code pointer before
	// it is used — unless it is a translation-table locator (CPH-style),
	// which stays valid across re-randomization (Section 8.1: CodeArmor's
	// locators are "susceptible to AOCR" for this reason).
	if s.Stale(secret) && !s.Cfg.CPH {
		return Crashed
	}

	if err := s.Write(adminAddr, secret.Value); err != nil {
		return Crashed
	}
	if err := s.Write(keyAddr, MagicArg); err != nil {
		return Crashed
	}
	return s.Resume()
}

// leakObject reads an 8-word window at ptr — the heap disclosure.
func (s *Scenario) leakObject(ptr uint64) ([]Leaked, Outcome) {
	base := ptr &^ 7
	var words []Leaked
	for off := uint64(0); off < 64; off += 8 {
		w, err := s.Read(base + off)
		if err != nil {
			if s.Detections > 0 {
				return nil, Detected
			}
			return nil, Crashed
		}
		words = append(words, w)
	}
	return words, Success
}

// findDataPointer looks for a value between the text and heap clusters —
// a static-data pointer (the heap→data stepping stone).
func (s *Scenario) findDataPointer(words []Leaked, cl *Clusters) (uint64, bool) {
	for _, w := range words {
		v := w.Value
		if v < minPointer {
			continue
		}
		if v > cl.Text.Hi+(4<<20) && v < cl.Heap.Lo-(4<<20) {
			return v, true
		}
	}
	return 0, false
}

// findHeapPointer looks for a heap→heap link distinct from the source.
func (s *Scenario) findHeapPointer(words []Leaked, cl *Clusters, src uint64) (uint64, bool) {
	for _, w := range words {
		if cl.Heap.Contains(w.Value) && w.Value != src {
			return w.Value, true
		}
	}
	return 0, false
}

// findHandlerTableEntry scans the data region for the handler table: a run
// of exactly two adjacent code-range words (the structure layout AOCR
// assumes). Entry 1 is the whole-function-reuse target. Longer runs are
// skipped — under the AVX2 setup the data section is full of BTRA arrays,
// which are padded to at least four words and would otherwise drown the
// scan (an incidental camouflage benefit of R2C's arrays).
func (s *Scenario) findHandlerTableEntry(lo, hi uint64, cl *Clusters) (Leaked, bool) {
	var run []Leaked
	flushRun := func() (Leaked, bool) {
		if len(run) == 2 {
			return run[1], true
		}
		return Leaked{}, false
	}
	for addr := lo; addr+8 <= hi; addr += 8 {
		w, err := s.Read(addr)
		if err != nil {
			return Leaked{}, false
		}
		if cl.textRange(w.Value) {
			run = append(run, w)
			continue
		}
		if e, ok := flushRun(); ok {
			return e, true
		}
		run = run[:0]
	}
	return flushRun()
}

func dedup(vals []uint64) []uint64 {
	seen := make(map[uint64]bool, len(vals))
	var out []uint64
	for _, v := range vals {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
