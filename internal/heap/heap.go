// Package heap implements the simulated process heap: a glibc-malloc-like
// span allocator layered over the paged address space.
//
// The BTDP design (Section 5.2 of the paper) leans on four properties of the
// real allocator, all of which this implementation provides:
//
//  1. allocations come out of the heap's value range, so pointers into them
//     cluster with benign heap pointers under AOCR's statistical analysis;
//  2. page-aligned, page-sized allocations exist (AllocAligned), so a chunk
//     can be protected at page granularity;
//  3. an allocation's pages can have their permissions revoked (Protect),
//     turning the chunk into a guard page;
//  4. chunks that are allocated and never freed are never reused for other
//     allocations, so a guard page stays a guard page.
//
// Placement is randomized (seeded) so that the surviving guard pages from
// the constructor's allocate-then-free-a-subset dance end up scattered.
package heap

import (
	"fmt"
	"sort"

	"r2c/internal/mem"
	"r2c/internal/rng"
	"r2c/internal/telemetry"
)

// MinAlign is the minimum alignment of returned chunks, matching glibc.
const MinAlign = 16

// Allocator manages a [base, limit) heap region inside a Space.
type Allocator struct {
	space *mem.Space
	base  uint64
	limit uint64
	brk   uint64 // next fresh address
	rnd   *rng.RNG

	allocs map[uint64]uint64 // addr -> size of live allocations
	free   []span            // sorted, coalesced free spans below brk
	pages  map[uint64]int    // page number -> live allocation refcount

	liveBytes  uint64
	totalAlloc uint64
	numAllocs  uint64
	numFrees   uint64
}

type span struct{ addr, size uint64 }

// New creates an allocator over [base, limit). base must be page-aligned.
func New(space *mem.Space, base, limit uint64, r *rng.RNG) (*Allocator, error) {
	if base&mem.PageMask != 0 {
		return nil, fmt.Errorf("heap: base %#x not page aligned", base)
	}
	if limit <= base {
		return nil, fmt.Errorf("heap: empty region [%#x,%#x)", base, limit)
	}
	return &Allocator{
		space:  space,
		base:   base,
		limit:  limit,
		brk:    base,
		rnd:    r,
		allocs: make(map[uint64]uint64),
		pages:  make(map[uint64]int),
	}, nil
}

// Alloc returns a 16-byte aligned chunk of at least size bytes.
func (a *Allocator) Alloc(size uint64) (uint64, error) {
	return a.AllocAligned(size, MinAlign)
}

// AllocAligned returns a chunk of at least size bytes whose address is a
// multiple of align (a power of two, >= 16).
func (a *Allocator) AllocAligned(size, align uint64) (uint64, error) {
	if size == 0 {
		size = MinAlign
	}
	if align < MinAlign || align&(align-1) != 0 {
		return 0, fmt.Errorf("heap: bad alignment %d", align)
	}
	size = mem.AlignUp(size, MinAlign)

	// First try the free list. To scatter allocations, pick uniformly among
	// all fitting spans instead of first-fit.
	if addr, ok := a.takeFromFreeList(size, align); ok {
		a.commit(addr, size)
		return addr, nil
	}

	// Fresh allocation from brk with a small random pre-gap, so consecutive
	// fresh allocations are not byte-adjacent. The gap becomes free space.
	gap := uint64(a.rnd.Intn(4)) * MinAlign
	addr := mem.AlignUp(a.brk+gap, align)
	end := addr + size
	if end > a.limit {
		return 0, fmt.Errorf("heap: out of memory (want %d bytes, brk %#x, limit %#x)", size, a.brk, a.limit)
	}
	if addr > a.brk {
		a.insertFree(span{a.brk, addr - a.brk})
	}
	a.brk = end
	a.commit(addr, size)
	return addr, nil
}

func (a *Allocator) takeFromFreeList(size, align uint64) (uint64, bool) {
	type fit struct {
		idx  int
		addr uint64
	}
	var fits []fit
	for i, s := range a.free {
		start := mem.AlignUp(s.addr, align)
		if start+size <= s.addr+s.size {
			fits = append(fits, fit{i, start})
		}
	}
	if len(fits) == 0 {
		return 0, false
	}
	f := fits[a.rnd.Intn(len(fits))]
	s := a.free[f.idx]
	a.free = append(a.free[:f.idx], a.free[f.idx+1:]...)
	if f.addr > s.addr {
		a.insertFree(span{s.addr, f.addr - s.addr})
	}
	if rest := (s.addr + s.size) - (f.addr + size); rest > 0 {
		a.insertFree(span{f.addr + size, rest})
	}
	return f.addr, true
}

func (a *Allocator) insertFree(s span) {
	if s.size == 0 {
		return
	}
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].addr >= s.addr })
	a.free = append(a.free, span{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = s
	// Coalesce with neighbors.
	if i+1 < len(a.free) && a.free[i].addr+a.free[i].size == a.free[i+1].addr {
		a.free[i].size += a.free[i+1].size
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].addr+a.free[i-1].size == a.free[i].addr {
		a.free[i-1].size += a.free[i].size
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
}

// commit records the allocation and maps any pages it newly touches.
func (a *Allocator) commit(addr, size uint64) {
	a.allocs[addr] = size
	a.liveBytes += size
	a.totalAlloc += size
	a.numAllocs++
	first := addr >> mem.PageShift
	last := (addr + size - 1) >> mem.PageShift
	for p := first; p <= last; p++ {
		a.pages[p]++
		if a.pages[p] == 1 {
			// Fresh page: map it RW. Map cannot fail here because the
			// refcount says it is unmapped and the region is exclusive.
			if err := a.space.Map(p<<mem.PageShift, mem.PageSize, mem.PermRW); err != nil {
				panic(fmt.Sprintf("heap: internal map failure: %v", err))
			}
		}
	}
}

// Free releases the chunk at addr. Freeing an unknown address is an error
// (the simulated program is supposed to be memory-safe; attacker corruption
// happens through the attack API, not through Free).
func (a *Allocator) Free(addr uint64) error {
	size, ok := a.allocs[addr]
	if !ok {
		return fmt.Errorf("heap: free of unknown chunk %#x", addr)
	}
	delete(a.allocs, addr)
	a.liveBytes -= size
	a.numFrees++
	first := addr >> mem.PageShift
	last := (addr + size - 1) >> mem.PageShift
	for p := first; p <= last; p++ {
		a.pages[p]--
		if a.pages[p] == 0 {
			delete(a.pages, p)
			if err := a.space.Unmap(p<<mem.PageShift, mem.PageSize); err != nil {
				panic(fmt.Sprintf("heap: internal unmap failure: %v", err))
			}
		}
	}
	a.insertFree(span{addr, size})
	return nil
}

// Protect changes the permission of every page fully covered by the chunk at
// addr. The BTDP constructor calls this with PermNone on page-aligned,
// page-sized chunks to create guard pages.
func (a *Allocator) Protect(addr uint64, perm mem.Perm) error {
	size, ok := a.allocs[addr]
	if !ok {
		return fmt.Errorf("heap: protect of unknown chunk %#x", addr)
	}
	start := mem.AlignUp(addr, mem.PageSize)
	end := mem.AlignDown(addr+size, mem.PageSize)
	if end <= start {
		return fmt.Errorf("heap: chunk %#x+%d covers no full page", addr, size)
	}
	return a.space.Protect(start, end-start, perm)
}

// SizeOf returns the size of the live chunk at addr.
func (a *Allocator) SizeOf(addr uint64) (uint64, bool) {
	s, ok := a.allocs[addr]
	return s, ok
}

// Contains reports whether addr falls inside any live allocation.
func (a *Allocator) Contains(addr uint64) bool {
	// Linear probe over allocations is fine at simulation scale; tests and
	// the attacker use it, the hot path (Alloc/Free) does not.
	for base, size := range a.allocs {
		if addr >= base && addr < base+size {
			return true
		}
	}
	return false
}

// Bounds returns the heap region [base, brk) currently in use.
func (a *Allocator) Bounds() (base, brk uint64) { return a.base, a.brk }

// Stats describes allocator usage.
type Stats struct {
	LiveBytes  uint64
	LivePages  int
	TotalAlloc uint64
	NumAllocs  uint64
	NumFrees   uint64
}

// Stats returns a snapshot of allocator counters.
func (a *Allocator) Stats() Stats {
	return Stats{
		LiveBytes:  a.liveBytes,
		LivePages:  len(a.pages),
		TotalAlloc: a.totalAlloc,
		NumAllocs:  a.numAllocs,
		NumFrees:   a.numFrees,
	}
}

// PublishMetrics exports the allocator counters as gauges (absolute values,
// so repeated publishes are idempotent). The live-page gauge is the
// RSS-attribution companion to the VM's sampled-RSS metrics: guard pages
// created by the BTDP constructor stay live forever by design.
func (a *Allocator) PublishMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.Gauge("heap.live_bytes").Set(float64(a.liveBytes))
	reg.Gauge("heap.live_pages").Set(float64(len(a.pages)))
	reg.Gauge("heap.total_alloc_bytes").Set(float64(a.totalAlloc))
	reg.Gauge("heap.allocs").Set(float64(a.numAllocs))
	reg.Gauge("heap.frees").Set(float64(a.numFrees))
	reg.Gauge("heap.brk_bytes").Set(float64(a.brk - a.base))
}
