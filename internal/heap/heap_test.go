package heap

import (
	"testing"
	"testing/quick"

	"r2c/internal/mem"
	"r2c/internal/rng"
)

const (
	heapBase  = 0x20000000
	heapLimit = 0x30000000
)

func newHeap(t *testing.T, seed uint64) (*mem.Space, *Allocator) {
	t.Helper()
	s := mem.NewSpace()
	a, err := New(s, heapBase, heapLimit, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return s, a
}

func TestAllocReturnsUsableMemory(t *testing.T) {
	s, a := newHeap(t, 1)
	addr, err := a.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if addr < heapBase || addr >= heapLimit {
		t.Fatalf("allocation %#x outside heap range", addr)
	}
	if addr%MinAlign != 0 {
		t.Fatalf("allocation %#x not 16-byte aligned", addr)
	}
	if err := s.Write64(addr, 0xdeadbeef); err != nil {
		t.Fatalf("write to allocation failed: %v", err)
	}
	v, err := s.Read64(addr)
	if err != nil || v != 0xdeadbeef {
		t.Fatalf("read back = %#x, %v", v, err)
	}
}

func TestAllocationsDoNotOverlap(t *testing.T) {
	_, a := newHeap(t, 2)
	type chunk struct{ addr, size uint64 }
	var chunks []chunk
	for i := 0; i < 200; i++ {
		size := uint64(8 + i*7%300)
		addr, err := a.Alloc(size)
		if err != nil {
			t.Fatal(err)
		}
		chunks = append(chunks, chunk{addr, mem.AlignUp(size, MinAlign)})
	}
	for i := range chunks {
		for j := i + 1; j < len(chunks); j++ {
			a, b := chunks[i], chunks[j]
			if a.addr < b.addr+b.size && b.addr < a.addr+a.size {
				t.Fatalf("chunks overlap: %#x+%d and %#x+%d", a.addr, a.size, b.addr, b.size)
			}
		}
	}
}

func TestFreeAndReuse(t *testing.T) {
	_, a := newHeap(t, 3)
	addrs := make([]uint64, 50)
	for i := range addrs {
		var err error
		addrs[i], err = a.Alloc(128)
		if err != nil {
			t.Fatal(err)
		}
	}
	brkBefore := func() uint64 { _, b := a.Bounds(); return b }()
	for _, ad := range addrs {
		if err := a.Free(ad); err != nil {
			t.Fatal(err)
		}
	}
	// New allocations should come from the free list, not extend brk much.
	for i := 0; i < 50; i++ {
		if _, err := a.Alloc(128); err != nil {
			t.Fatal(err)
		}
	}
	if _, brk := a.Bounds(); brk > brkBefore+mem.PageSize {
		t.Fatalf("free list not reused: brk grew from %#x to %#x", brkBefore, brk)
	}
}

func TestDoubleFreeRejected(t *testing.T) {
	_, a := newHeap(t, 4)
	addr, _ := a.Alloc(32)
	if err := a.Free(addr); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(addr); err == nil {
		t.Fatal("double free succeeded")
	}
}

func TestFreeUnmapsExclusivePages(t *testing.T) {
	s, a := newHeap(t, 5)
	addr, err := a.AllocAligned(mem.PageSize, mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsMapped(addr) {
		t.Fatal("allocation page not mapped")
	}
	if err := a.Free(addr); err != nil {
		t.Fatal(err)
	}
	if s.IsMapped(addr) {
		t.Fatal("page still mapped after freeing its only chunk")
	}
}

func TestSharedPageSurvivesPartialFree(t *testing.T) {
	s, a := newHeap(t, 6)
	x, _ := a.Alloc(32)
	y, _ := a.Alloc(32)
	if x>>mem.PageShift != y>>mem.PageShift {
		t.Skip("allocations landed on different pages for this seed")
	}
	if err := a.Free(x); err != nil {
		t.Fatal(err)
	}
	if !s.IsMapped(y) {
		t.Fatal("shared page unmapped while second chunk is live")
	}
}

func TestPageAlignedAllocation(t *testing.T) {
	_, a := newHeap(t, 7)
	for i := 0; i < 20; i++ {
		addr, err := a.AllocAligned(mem.PageSize, mem.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		if addr&mem.PageMask != 0 {
			t.Fatalf("AllocAligned returned unaligned %#x", addr)
		}
	}
}

func TestGuardPageWorkflow(t *testing.T) {
	// The BTDP constructor's exact sequence: allocate page-sized page-aligned
	// chunks, free a subset, protect the survivors, verify faults.
	s, a := newHeap(t, 8)
	var pages []uint64
	for i := 0; i < 32; i++ {
		addr, err := a.AllocAligned(mem.PageSize, mem.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		pages = append(pages, addr)
	}
	kept := pages[:8]
	for _, p := range pages[8:] {
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range kept {
		if err := a.Protect(p, mem.PermNone); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range kept {
		if _, err := s.Read64(p + 0x10); err == nil {
			t.Fatalf("guard page %#x readable", p)
		}
	}
	// A guard chunk is never handed out again while it stays allocated.
	for i := 0; i < 64; i++ {
		addr, err := a.AllocAligned(mem.PageSize, mem.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range kept {
			if addr == p {
				t.Fatalf("guard page %#x reused", p)
			}
		}
	}
}

func TestProtectRequiresFullPage(t *testing.T) {
	_, a := newHeap(t, 9)
	addr, _ := a.Alloc(64)
	if err := a.Protect(addr, mem.PermNone); err == nil {
		t.Fatal("protect of sub-page chunk succeeded")
	}
}

func TestOutOfMemory(t *testing.T) {
	s := mem.NewSpace()
	a, err := New(s, 0x1000, 0x1000+4*mem.PageSize, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(100 * mem.PageSize); err == nil {
		t.Fatal("oversized allocation succeeded")
	}
}

func TestStats(t *testing.T) {
	_, a := newHeap(t, 10)
	x, _ := a.Alloc(100) // rounds to 112
	_, _ = a.Alloc(16)
	if err := a.Free(x); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.NumAllocs != 2 || st.NumFrees != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.LiveBytes != 16 {
		t.Fatalf("live bytes = %d, want 16", st.LiveBytes)
	}
}

func TestContains(t *testing.T) {
	_, a := newHeap(t, 11)
	addr, _ := a.Alloc(64)
	if !a.Contains(addr) || !a.Contains(addr+63) {
		t.Fatal("Contains misses live chunk")
	}
	if a.Contains(addr + 4096) {
		t.Fatal("Contains reports dead address")
	}
}

func TestAllocFreeQuick(t *testing.T) {
	// Property: an arbitrary interleaving of allocs and frees never yields
	// overlapping live chunks and never corrupts previously written data.
	err := quick.Check(func(seed uint64, ops []uint16) bool {
		s := mem.NewSpace()
		a, err := New(s, heapBase, heapLimit, rng.New(seed))
		if err != nil {
			return false
		}
		type chunk struct{ addr, size, tag uint64 }
		var live []chunk
		tag := uint64(1)
		for _, op := range ops {
			if op%3 == 0 && len(live) > 0 { // free one
				i := int(op) % len(live)
				if err := a.Free(live[i].addr); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			} else {
				size := uint64(op%500) + 8
				addr, err := a.Alloc(size)
				if err != nil {
					return false
				}
				if err := s.Write64(addr, tag); err != nil {
					return false
				}
				live = append(live, chunk{addr, size, tag})
				tag++
			}
		}
		for _, c := range live {
			v, err := s.Read64(c.addr)
			if err != nil || v != c.tag {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}
