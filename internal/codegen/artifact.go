// Package codegen lowers TIR modules to the simulated ISA and is where every
// per-function R2C transformation happens: BTRA call-site instrumentation
// (push and AVX2 setups), BTDP spill instrumentation, NOP insertion, prolog
// trap insertion, stack-slot randomization, register-allocation
// randomization, and offset-invariant addressing. Function and global
// shuffling happen later, in the linker (package image).
package codegen

import (
	"fmt"
	"strings"

	"r2c/internal/defense"
	"r2c/internal/isa"
	"r2c/internal/tir"
)

// AddrWord is a link-time-resolved 64-bit datum: either the address of a
// symbol (plus offset) or the return address of a call site. AVX2 BTRA
// arrays are sequences of AddrWords (Section 5.1.2: "a call-site specific
// array in the data section, prepared at compile time").
type AddrWord struct {
	Sym        string
	Off        int64
	RetAddr    bool
	CallSiteID int
	// BTRA marks booby-trap entries, for introspection and the runtime's
	// reroll support; invisible in memory.
	BTRA bool
}

// DataBlob is a code-generator-emitted data object (e.g. an AVX2 BTRA
// array) the linker must place in the data section.
type DataBlob struct {
	Name  string
	Words []AddrWord
}

// SlotKind classifies a stack-frame slot.
type SlotKind int

const (
	// SlotLocal is a TIR local (alloca).
	SlotLocal SlotKind = iota
	// SlotSpill holds a spilled virtual register.
	SlotSpill
	// SlotBTDP holds a booby-trapped data pointer written by the prologue.
	SlotBTDP
	// SlotPad is alignment padding.
	SlotPad
)

func (k SlotKind) String() string {
	switch k {
	case SlotLocal:
		return "local"
	case SlotSpill:
		return "spill"
	case SlotBTDP:
		return "btdp"
	case SlotPad:
		return "pad"
	}
	return "?"
}

// Slot describes one frame slot in the final (possibly randomized) layout.
// Offsets are relative to the post-prologue stack pointer.
type Slot struct {
	Kind   SlotKind
	Name   string
	Offset int64
	Size   uint64
}

// CallSite records the toolchain's ground truth about one lowered call
// site. The attack framework uses it as the oracle for judging attacks
// (e.g. "did the attacker pick the real RA or a BTRA?"); the VM uses the
// call-site ID for call counting.
type CallSite struct {
	ID     int
	Caller string
	Callee string // "" for indirect
	Tail   bool

	// Pre and Post are the BTRA counts before/above and after/below the
	// return address (after alignment padding). Zero when uninstrumented.
	Pre, Post int
	// BTRAs lists the booby-trap targets in stack order, topmost first;
	// entry Pre is where the RA sits (not included here).
	BTRAs []AddrWord
	// NumNOPs is the number of NOPs inserted before the site.
	NumNOPs int
	// ArraySym names the AVX2 setup array blob ("" for push setup).
	ArraySym string
	// StackArgs is the number of arguments passed on the stack.
	StackArgs int
	// CallInstrIndex is the index of the KCall/KCallInd in the function's
	// instruction slice.
	CallInstrIndex int
}

// Func is one compiled function.
type Func struct {
	Name      string
	Instrs    []isa.Instr
	Protected bool
	BoobyTrap bool
	Stub      bool

	// PostOffset is the callee-chosen number of BTRA words protected below
	// the return address (Section 5.1).
	PostOffset int
	// FrameSize is the byte size of the local frame (below saved regs).
	FrameSize int64
	// Slots is the final frame layout.
	Slots []Slot
	// CalleeSaved lists the callee-saved registers the prologue pushes.
	CalleeSaved []isa.Reg
	// RegAllocOrder is the allocation-pool order register allocation used —
	// the shuffled order under RandomizeRegAlloc, the fixed pool order
	// otherwise. The diversity auditor measures register-allocation
	// divergence from it; it is toolchain metadata, invisible at runtime.
	RegAllocOrder []isa.Reg
	// NumPrologTraps is the count of trap instructions hidden in the
	// prolog (Section 4.3).
	NumPrologTraps int
	// NumBTDPs is the number of BTDP slots the prologue populates.
	NumBTDPs int
	// CallSites lists the function's call sites in emission order.
	CallSites []CallSite
	// NumStackParams is the number of parameters received on the stack.
	// Without OIA the callee reads them rsp-relative (the frame pointer is
	// omitted, as -O3 code does); under OIA it reads them through the rbp
	// the caller parked at the first stack argument (Section 5.1.1).
	NumStackParams int
	// BlockStarts lists the sorted instruction indices that begin a basic
	// block in the lowered body (entry, branch targets, fall-throughs after
	// terminators). Toolchain metadata for the VM's predecoded fast path;
	// invisible at runtime.
	BlockStarts []int
}

// BlockBoundaries computes the sorted basic-block leader indices of an
// instruction sequence: index 0, every intra-sequence branch target, and
// the instruction after every block terminator.
func BlockBoundaries(instrs []isa.Instr) []int {
	if len(instrs) == 0 {
		return nil
	}
	leader := make([]bool, len(instrs))
	leader[0] = true
	for i := range instrs {
		in := &instrs[i]
		if in.EndsBlock() && i+1 < len(instrs) {
			leader[i+1] = true
		}
		switch in.Kind {
		case isa.KJmp, isa.KJz, isa.KJnz:
			if in.LocalTarget >= 0 && in.LocalTarget < len(instrs) {
				leader[in.LocalTarget] = true
			}
		}
	}
	var out []int
	for i, l := range leader {
		if l {
			out = append(out, i)
		}
	}
	return out
}

// Disasm renders the function's instructions with indices.
func (f *Func) Disasm() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s:\n", f.Name)
	for i := range f.Instrs {
		fmt.Fprintf(&sb, "  %3d: %s\n", i, f.Instrs[i].String())
	}
	return sb.String()
}

// Program is a fully lowered module, ready for linking.
type Program struct {
	Module *tir.Module
	Config defense.Config
	Seed   uint64

	// Funcs holds the module's functions in source order (the linker
	// shuffles). Includes runtime stubs and, when BTRAs are enabled, the
	// booby-trap functions.
	Funcs []*Func
	// Blobs holds codegen-emitted data (AVX2 BTRA arrays).
	Blobs []*DataBlob
	// NumCallSites is the total number of call sites (IDs are dense).
	NumCallSites int
}

// Func returns the compiled function with the given name, or nil.
func (p *Program) Func(name string) *Func {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Stub names for the simulated unprotected runtime (the paper compiles
// benchmarks against the unprotected system glibc, Section 6.2; calls into
// these are the "calls to unprotected code" of Section 7.4.1).
const (
	StubMalloc = "__rt_malloc"
	StubFree   = "__rt_free"
	StubOutput = "__rt_output"
	StubExit   = "__rt_exit"
)

// BTDP data-section symbols. The runtime constructor fills them at load
// time (Section 5.2).
const (
	// SymBTDPArrayPtr is the single heap pointer to the BTDP array
	// (hardened layout, Figure 5 right).
	SymBTDPArrayPtr = "__btdp_arrptr"
	// SymBTDPArray is the in-data-section array of the naive ablation
	// (Figure 5 left).
	SymBTDPArray = "__btdp_array"
	// SymBTDPDecoyPrefix prefixes the decoy BTDPs placed in the data
	// section ("these additional BTDPs never occur on the stack").
	SymBTDPDecoyPrefix = "__btdp_decoy"
)

// BoobyTrapSym returns the symbol name of booby-trap function i.
func BoobyTrapSym(i int) string { return fmt.Sprintf("__bt%d", i) }

// TrampolineSym returns the CPH trampoline symbol for a function (Readactor
// baseline).
func TrampolineSym(fn string) string { return "__tramp_" + fn }

// ArraySym returns the AVX2 BTRA array symbol for a call site.
func ArraySym(callSiteID int) string { return fmt.Sprintf("__btra_arr_cs%d", callSiteID) }
