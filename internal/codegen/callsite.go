package codegen

import (
	"r2c/internal/defense"
	"r2c/internal/isa"
	"r2c/internal/tir"
)

// pickBTRAs selects n booby-trap targets for a call site. Under the
// InsecureCalleeBTRAs ablation the set is keyed by callee so every call
// site to the same function shares it — violating property (C) of Section
// 4.1, which the attack suite exploits.
func (lw *lowerer) pickBTRAs(n int, callee string) []AddrWord {
	if lw.cfg.InsecureCalleeBTRAs {
		key := callee
		if key == "" {
			key = "<indirect>"
		}
		if set, ok := lw.calleeSets[key]; ok && len(set) >= n {
			return set[:n]
		}
		set := lw.freshBTRAs(n)
		lw.calleeSets[key] = set
		return set
	}
	return lw.freshBTRAs(n)
}

func (lw *lowerer) freshBTRAs(n int) []AddrWord {
	out := make([]AddrWord, n)
	for i := range out {
		// Offsets land on (4-byte padded ud2) instruction boundaries inside
		// the trap function, so a triggered BTRA always detonates cleanly.
		out[i] = AddrWord{
			Sym:  BoobyTrapSym(lw.rnd.Intn(lw.cfg.BTRAPoolSize)),
			Off:  4 * int64(lw.rnd.Intn(TrapFuncLen)),
			BTRA: true,
		}
	}
	return out
}

// emitCall lowers a (non-tail) call. calleeSym == "" means indirect through
// calleeReg. This is where BTRA insertion happens: the caller pushes (or
// vector-stores) randomly chosen BTRAs together with the pre-computed
// return address, positions the stack pointer above the return address
// slot, and lets the CALL instruction overwrite that slot with the very
// same value — so the stack image never changes after the setup and no
// race window exists (Section 5.1).
func (lw *lowerer) emitCall(dst tir.Reg, calleeSym string, calleeReg tir.Reg, args []tir.Reg, tail bool) {
	cfg := lw.cfg
	out := lw.out
	site := CallSite{
		ID:     lw.nextCallSite,
		Caller: lw.f.Name,
		Callee: calleeSym,
		Tail:   tail,
	}
	lw.nextCallSite++

	calleeProtected := false
	if calleeSym != "" {
		if cf := lw.mod.Func(calleeSym); cf != nil {
			calleeProtected = cf.Protected
		}
		// Stubs and other non-module symbols are unprotected.
	} else {
		// Indirect calls are assumed to target protected code.
		calleeProtected = true
	}

	// Section 7.4.2: unprotected direct callers of trampolined functions
	// go through the adapter; downgraded callees are called with the
	// baseline convention and without BTRAs everywhere.
	if !lw.f.Protected && calleeSym != "" {
		if tramp, ok := lw.trampolined[calleeSym]; ok {
			calleeSym = tramp
			site.Callee = tramp
			calleeProtected = true
		}
	}
	calleeDowngraded := calleeSym != "" && lw.affected[calleeSym]

	useBTRA := cfg.BTRAEnabled() && lw.f.Protected && !calleeDowngraded &&
		(calleeProtected || cfg.BTRAUnprotectedCalls)

	// NOP insertion at call sites (Section 4.3): randomizes the offset
	// between the return address and the calling function's start.
	if cfg.NOPMax > 0 && lw.f.Protected {
		site.NumNOPs = lw.rnd.IntRange(cfg.NOPMin, cfg.NOPMax)
		for i := 0; i < site.NumNOPs; i++ {
			lw.emit(isa.Instr{Kind: isa.KNop, LocalTarget: -1})
		}
	}

	// Register arguments.
	nReg := len(args)
	if nReg > len(isa.ArgRegs) {
		nReg = len(isa.ArgRegs)
	}
	for i := 0; i < nReg; i++ {
		src := lw.regOf(args[i], isa.R10)
		lw.emit(isa.Instr{Kind: isa.KMovReg, Dst: isa.ArgRegs[i], Src: src})
	}

	// Stack arguments, with 16-byte alignment padding. Under
	// offset-invariant addressing the caller saves its own rbp and parks
	// rbp at the first stack argument so the callee can address its stack
	// parameters independently of the varying pre-offset (Section 5.1.1).
	nStack := len(args) - nReg
	site.StackArgs = nStack
	// Unprotected callers model code R2C never compiled: they always use
	// the standard convention. Downgraded callees expect it from everyone.
	oia := cfg.OIAEnabled() && lw.f.Protected && !calleeDowngraded
	pad := 0
	if nStack > 0 {
		words := nStack
		if oia {
			words++ // saved rbp
		}
		if words%2 == 1 {
			pad = 1
			lw.emit(isa.Instr{Kind: isa.KPushImm, Imm: 0, LocalTarget: -1})
		}
		if oia {
			lw.emit(isa.Instr{Kind: isa.KPush, Src: isa.RBP})
		}
		for j := len(args) - 1; j >= nReg; j-- {
			src := lw.regOf(args[j], isa.R10)
			lw.emit(isa.Instr{Kind: isa.KPush, Src: src})
		}
		if oia {
			lw.emit(isa.Instr{Kind: isa.KLea, Dst: isa.RBP, Base: isa.RSP, Disp: 0})
		}
	}

	// Materialize an indirect callee after all scratch-clobbering work.
	var ind isa.Reg = isa.NoGPR
	if calleeSym == "" {
		ind = lw.regOf(calleeReg, isa.R11)
	}

	pre, post := 0, 0
	if useBTRA {
		// The callee chooses the post-offset; direct call sites push
		// exactly that many BTRAs below the RA. Indirect call sites cannot
		// synchronize and pick their own count (Section 5.1).
		if calleeSym != "" {
			if calleeProtected {
				post = lw.postOffsets[calleeSym]
			} // unprotected callees would clobber post BTRAs: push none
		} else {
			post = lw.rnd.Intn(min(maxPostOffset, cfg.BTRAsPerCall) + 1)
		}
		preRaw := cfg.BTRAsPerCall - post
		if preRaw < 0 {
			preRaw = 0
		}
		pre = preRaw
		// Alignment BTRA: an odd pre-offset would misalign the stack
		// (Section 5.1: "If the randomly chosen number of BTRAs before the
		// return address is odd, R2C inserts an additional BTRA").
		if pre%2 == 1 {
			pre++
		}
		site.Pre, site.Post = pre, post
		site.BTRAs = lw.pickBTRAs(pre+post, calleeSym)

		switch cfg.BTRASetup {
		case defense.BTRAPush:
			lw.emitPushSetup(&site, pre, post)
		case defense.BTRAAVX2:
			lw.emitAVXSetup(&site, pre, post)
		}
	}

	// The call itself.
	site.CallInstrIndex = len(lw.out.Instrs)
	if calleeSym != "" {
		lw.emit(isa.Instr{Kind: isa.KCall, Sym: calleeSym, CallSiteID: site.ID, LocalTarget: -1})
	} else {
		lw.emit(isa.Instr{Kind: isa.KCallInd, Src: ind, CallSiteID: site.ID, LocalTarget: -1})
	}

	// Section 7.3 hardening: before discarding the pre-offset, verify a
	// randomly chosen BTRA above the return-address slot still holds its
	// compile-time value; a mismatch means an attacker has been writing
	// over return-address candidates, and detonates immediately.
	if useBTRA && cfg.CheckBTRAsOnReturn && pre > 0 {
		idx := lw.rnd.Intn(pre)
		b := site.BTRAs[idx]
		// After ret, rsp sits just below the pre BTRAs: BTRAs[0] (the
		// topmost) is at rsp + (pre-1)*8, BTRAs[idx] at rsp+(pre-1-idx)*8.
		lw.emit(isa.Instr{Kind: isa.KLoad, Dst: isa.R10, Base: isa.RSP, Disp: int64(pre-1-idx) * 8})
		lw.emit(isa.Instr{Kind: isa.KMovImm, Dst: isa.R11, Sym: b.Sym, SymOff: b.Off})
		// rax still holds the call's return value: compare in scratch.
		lw.emit(isa.Instr{Kind: isa.KSet, Cmp: isa.CmpEq, Dst: isa.R10, A: isa.R10, B: isa.R11})
		// Skip the detonation when the value matches. The jump target is a
		// final instruction index (not a TIR block), so it bypasses the
		// block fixup.
		lw.emit(isa.Instr{Kind: isa.KJnz, Src: isa.R10, LocalTarget: len(lw.out.Instrs) + 2})
		lw.emit(isa.Instr{Kind: isa.KTrap, BTRA: true, LocalTarget: -1})
	}

	// Teardown, in Figure 3 order: the caller reverts the pre-offset (7),
	// then unwinds stack arguments and restores its frame pointer.
	if pre > 0 {
		lw.emit(isa.Instr{Kind: isa.KAluImm, Alu: isa.AluAdd, Dst: isa.RSP, Imm: uint64(pre * 8)})
	}
	if nStack > 0 {
		lw.emit(isa.Instr{Kind: isa.KAluImm, Alu: isa.AluAdd, Dst: isa.RSP, Imm: uint64(nStack * 8)})
		if oia {
			lw.emit(isa.Instr{Kind: isa.KPop, Dst: isa.RBP})
		}
		if pad > 0 {
			lw.emit(isa.Instr{Kind: isa.KAluImm, Alu: isa.AluAdd, Dst: isa.RSP, Imm: 8})
		}
	}

	if dst != tir.NoReg {
		lw.writeBack(dst, isa.RAX)
	}
	out.CallSites = append(out.CallSites, site)
}

// emitPushSetup emits the push-based BTRA sequence (Figure 3a): push the
// pre BTRAs, the return address, and the post BTRAs; then re-position rsp
// one word above the RA slot so CALL overwrites it with the same value.
func (lw *lowerer) emitPushSetup(site *CallSite, pre, post int) {
	for i := 0; i < pre; i++ {
		b := site.BTRAs[i]
		lw.emit(isa.Instr{Kind: isa.KPushImm, Sym: b.Sym, SymOff: b.Off, BTRA: true, LocalTarget: -1})
	}
	lw.emit(isa.Instr{Kind: isa.KPushImm, RetAddr: true, CallSiteID: site.ID, LocalTarget: -1})
	for i := pre; i < pre+post; i++ {
		b := site.BTRAs[i]
		lw.emit(isa.Instr{Kind: isa.KPushImm, Sym: b.Sym, SymOff: b.Off, BTRA: true, LocalTarget: -1})
	}
	// Step 2: position rsp above the return address slot.
	lw.emit(isa.Instr{Kind: isa.KAluImm, Alu: isa.AluAdd, Dst: isa.RSP, Imm: uint64((post + 1) * 8)})
}

// emitAVXSetup emits the vectorized BTRA sequence (Figure 4): bulk-copy a
// call-site specific address array from the data section onto the stack,
// clear vector state, and position rsp above the return address slot. The
// array holds the BTRAs and the return address; storing addresses in the
// data section is safe for the same reason the GOT is (Section 5.1.2).
func (lw *lowerer) emitAVXSetup(site *CallSite, pre, post int) {
	cfg := lw.cfg
	lanes := cfg.VectorWidthBits / 64
	laneBytes := int64(cfg.VectorWidthBits / 8)
	total := pre + 1 + post
	padded := (total + lanes - 1) / lanes * lanes

	// Build the array bottom-up: word j lands at blockBase + j*8 where
	// blockBase = S - padded*8 and S is rsp at sequence start. Bottom
	// words are padding, then post BTRAs, then the RA, then pre BTRAs with
	// the topmost BTRA last.
	words := make([]AddrWord, padded)
	j := 0
	for ; j < padded-total; j++ { // padding: extra booby-trap addresses
		w := lw.freshBTRAs(1)[0]
		words[j] = w
	}
	for i := pre + post - 1; i >= pre; i-- { // post BTRAs, lowest first
		words[j] = site.BTRAs[i]
		j++
	}
	words[j] = AddrWord{RetAddr: true, CallSiteID: site.ID}
	j++
	for i := pre - 1; i >= 0; i-- { // pre BTRAs; BTRAs[0] ends on top
		words[j] = site.BTRAs[i]
		j++
	}

	site.ArraySym = ArraySym(site.ID)
	lw.prog.Blobs = append(lw.prog.Blobs, &DataBlob{Name: site.ArraySym, Words: words})

	chunks := padded / lanes
	for c := 0; c < chunks; c++ {
		lw.emit(isa.Instr{
			Kind: isa.KVLoad, VDst: 13, Base: isa.NoGPR,
			Sym: site.ArraySym, SymOff: int64(c) * laneBytes,
			Imm: uint64(laneBytes), LocalTarget: -1,
		})
		lw.emit(isa.Instr{
			Kind: isa.KVStore, VSrc: 13, Base: isa.RSP,
			Disp: -int64(padded)*8 + int64(c)*laneBytes,
			Imm:  uint64(laneBytes), LocalTarget: -1,
		})
	}
	// Without vzeroupper the SSE/AVX transition penalty costs up to 50%
	// (Section 5.1.2); OmitVZeroUpper is the ablation demonstrating it.
	if !cfg.OmitVZeroUpper {
		lw.emit(isa.Instr{Kind: isa.KVZeroUpper, LocalTarget: -1})
	}
	if pre > 0 {
		lw.emit(isa.Instr{Kind: isa.KAluImm, Alu: isa.AluSub, Dst: isa.RSP, Imm: uint64(pre * 8)})
	}
}
