package codegen

import (
	"fmt"

	"r2c/internal/isa"
	"r2c/internal/tir"
)

// This file implements Section 7.4.2: calling functions with stack
// arguments across the protection boundary. Code not compiled by R2C uses
// the standard calling convention — it cannot park rbp at the first stack
// argument the way offset-invariant addressing expects — so a protected
// callee with stack parameters would read garbage when invoked from
// unprotected code (the three cases the paper hit in WebKit and Chromium).
//
// Two resolutions are implemented:
//
//   - the paper's default: detect the affected functions and disable BTRAs
//     and OIA for them ("opted for disabling the emission of BTRAs for the
//     affected functions"), falling back to baseline rsp-relative stack-
//     parameter access that every caller satisfies;
//
//   - the paper's sketched alternative: "automatically inserting a
//     trampoline for externally visible functions with stack parameters" —
//     a protected adapter that accepts the standard convention from
//     unprotected callers, re-pushes the stack arguments, parks rbp, and
//     calls the fully protected implementation.

// StackArgTrampolineSym names the Section 7.4.2 adapter for a function.
func StackArgTrampolineSym(fn string) string { return "__sa_tramp_" + fn }

// affectedStackArgFuncs returns the protected functions with stack
// parameters that unprotected code can call: direct callees of unprotected
// functions, plus — when any unprotected function makes indirect calls —
// every protected stack-parameter function whose address escapes (taken via
// AddrFunc or a function-pointer global), the callback case the paper hit
// in WebKit's XML parser.
func affectedStackArgFuncs(mod *tir.Module) map[string]bool {
	stackParams := func(f *tir.Function) bool {
		return f != nil && f.Protected && f.NParams > len(isa.ArgRegs)
	}

	affected := map[string]bool{}
	unprotectedIndirect := false
	for _, f := range mod.Funcs {
		if f.Protected {
			continue
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op != tir.OpCall {
					continue
				}
				if in.Sym == "" {
					unprotectedIndirect = true
					continue
				}
				if callee := mod.Func(in.Sym); stackParams(callee) {
					affected[in.Sym] = true
				}
			}
		}
	}
	if unprotectedIndirect {
		escapes := map[string]bool{}
		for _, g := range mod.Globals {
			if g.InitFunc != "" {
				escapes[g.InitFunc] = true
			}
			for _, fn := range g.InitFuncs {
				escapes[fn] = true
			}
		}
		for _, f := range mod.Funcs {
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					if in.Op == tir.OpAddrFunc {
						escapes[in.Sym] = true
					}
				}
			}
		}
		for name := range escapes {
			if stackParams(mod.Func(name)) {
				affected[name] = true
			}
		}
	}
	return affected
}

// buildStackArgTrampoline hand-lowers the Section 7.4.2 adapter for callee:
// it is entered with the standard convention (register args in place, stack
// args just above the return address), re-pushes the stack arguments, parks
// rbp at the first one per offset-invariant addressing, and calls the
// protected implementation. Register arguments pass through untouched.
func buildStackArgTrampoline(callee *Func, nParams int) *Func {
	nStack := nParams - len(isa.ArgRegs)
	tr := &Func{Name: StackArgTrampolineSym(callee.Name), Protected: true}
	emit := func(in isa.Instr) {
		if in.LocalTarget == 0 {
			in.LocalTarget = -1
		}
		tr.Instrs = append(tr.Instrs, in)
	}

	// Entry: rsp -> RA; incoming stack arg j at rsp + 8 + j*8.
	emit(isa.Instr{Kind: isa.KPush, Src: isa.RBP})
	pushed := 1
	// Alignment: entry rsp ≡ 8 (mod 16); the inner call needs ≡ 0, i.e. an
	// odd total push count.
	pad := 0
	if (1+nStack)%2 == 0 {
		pad = 1
		emit(isa.Instr{Kind: isa.KPushImm, Imm: 0})
		pushed++
	}
	for j := nStack - 1; j >= 0; j-- {
		disp := int64(8 + j*8 + pushed*8)
		emit(isa.Instr{Kind: isa.KLoad, Dst: isa.R10, Base: isa.RSP, Disp: disp})
		emit(isa.Instr{Kind: isa.KPush, Src: isa.R10})
		pushed++
	}
	emit(isa.Instr{Kind: isa.KLea, Dst: isa.RBP, Base: isa.RSP, Disp: 0})
	emit(isa.Instr{Kind: isa.KCall, Sym: callee.Name, CallSiteID: -1})
	emit(isa.Instr{Kind: isa.KAluImm, Alu: isa.AluAdd, Dst: isa.RSP, Imm: uint64(nStack * 8)})
	if pad == 1 {
		emit(isa.Instr{Kind: isa.KAluImm, Alu: isa.AluAdd, Dst: isa.RSP, Imm: 8})
	}
	emit(isa.Instr{Kind: isa.KPop, Dst: isa.RBP})
	emit(isa.Instr{Kind: isa.KRet})
	return tr
}

// validateTrampoline sanity-checks the adapter's shape (used by tests).
func validateTrampoline(tr *Func) error {
	if len(tr.Instrs) < 5 {
		return fmt.Errorf("trampoline %s too short", tr.Name)
	}
	if tr.Instrs[len(tr.Instrs)-1].Kind != isa.KRet {
		return fmt.Errorf("trampoline %s does not return", tr.Name)
	}
	return nil
}
