package codegen

import (
	"sort"

	"r2c/internal/isa"
	"r2c/internal/rng"
	"r2c/internal/tir"
)

// allocatablePool is the set of machine registers virtual registers may be
// assigned to. All are callee-saved, which keeps call sites trivial (no
// caller-saved live values to protect around calls) at the price of
// prologue pushes — a common strategy for simple backends. The pool order
// is the register-allocation randomization knob of Section 4.3: shuffling
// it diversifies both which registers hold which values and which spill
// slots the prologue pushes, so leaked frames differ across builds.
var allocatablePool = []isa.Reg{isa.RBX, isa.R12, isa.R13, isa.R14, isa.R15}

// loc is a virtual register's home: a machine register or a frame slot.
type loc struct {
	reg     isa.Reg // valid when spilled == false
	spilled bool
	slot    int // spill slot index when spilled
}

// allocation is the result of register allocation for one function.
type allocation struct {
	locs      []loc     // per virtual register
	usedPool  []isa.Reg // pool registers actually used, in pool order
	poolOrder []isa.Reg // the (possibly shuffled) allocation pool order
	numSpills int
}

// interval is a virtual register's live range over the linearized
// instruction index space.
type interval struct {
	vreg       tir.Reg
	start, end int
}

// liveIntervals computes conservative live intervals: each vreg lives from
// its first to its last textual occurrence, extended over any loop whose
// body it overlaps (a vreg read inside a loop is live across the back edge
// even if its last textual occurrence precedes the branch).
func liveIntervals(f *tir.Function) []interval {
	first := make([]int, f.NRegs)
	last := make([]int, f.NRegs)
	for i := range first {
		first[i] = -1
	}
	// Linearize: global instruction index over blocks in order.
	blockStart := make([]int, len(f.Blocks))
	idx := 0
	touch := func(r tir.Reg, at int) {
		if r < 0 {
			return
		}
		if first[r] == -1 {
			first[r] = at
		}
		last[r] = at
	}
	type backEdge struct{ targetStart, branchIdx int }
	var backEdges []backEdge
	for bi, b := range f.Blocks {
		blockStart[bi] = idx
		for _, in := range b.Instrs {
			touch(in.Dst, idx)
			touch(in.A, idx)
			touch(in.B, idx)
			for _, a := range in.Args {
				touch(a, idx)
			}
			if in.Op == tir.OpBr || in.Op == tir.OpCondBr {
				if in.Target <= bi {
					backEdges = append(backEdges, backEdge{-1 /*fill below*/, idx})
					backEdges[len(backEdges)-1].targetStart = in.Target // temp: block id
				}
				if in.Op == tir.OpCondBr && in.Else <= bi {
					backEdges = append(backEdges, backEdge{in.Else, idx})
				}
			}
			idx++
		}
	}
	for i := range backEdges {
		backEdges[i].targetStart = blockStart[backEdges[i].targetStart]
	}
	// Parameters are live from function entry.
	for p := 0; p < f.NParams; p++ {
		if first[p] == -1 {
			first[p] = 0
			last[p] = 0
		}
		first[p] = 0
	}
	// Extend intervals over loops to a fixpoint.
	for changed := true; changed; {
		changed = false
		for _, be := range backEdges {
			for r := 0; r < f.NRegs; r++ {
				if first[r] == -1 {
					continue
				}
				// Overlaps the loop body [targetStart, branchIdx]?
				if first[r] <= be.branchIdx && last[r] >= be.targetStart {
					if last[r] < be.branchIdx {
						last[r] = be.branchIdx
						changed = true
					}
					if first[r] > be.targetStart {
						first[r] = be.targetStart
						changed = true
					}
				}
			}
		}
	}
	var out []interval
	for r := 0; r < f.NRegs; r++ {
		if first[r] != -1 {
			out = append(out, interval{tir.Reg(r), first[r], last[r]})
		}
	}
	return out
}

// allocate runs a linear-scan register allocation over the pool. When
// randomize is true the pool order is shuffled (register-allocation
// randomization); otherwise the fixed order is used, giving the baseline a
// deterministic assignment.
func allocate(f *tir.Function, randomize bool, r *rng.RNG) allocation {
	pool := make([]isa.Reg, len(allocatablePool))
	copy(pool, allocatablePool)
	if randomize {
		r.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	}

	ivs := liveIntervals(f)
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].start != ivs[j].start {
			return ivs[i].start < ivs[j].start
		}
		return ivs[i].vreg < ivs[j].vreg
	})

	a := allocation{locs: make([]loc, f.NRegs), poolOrder: pool}
	for i := range a.locs {
		a.locs[i] = loc{spilled: true, slot: -1} // dead vregs default
	}
	freeRegs := append([]isa.Reg(nil), pool...)
	type active struct {
		end int
		reg isa.Reg
	}
	var act []active
	used := map[isa.Reg]bool{}
	nextSlot := 0

	for _, iv := range ivs {
		// Expire finished intervals.
		keep := act[:0]
		for _, ac := range act {
			if ac.end >= iv.start {
				keep = append(keep, ac)
			} else {
				freeRegs = append(freeRegs, ac.reg)
			}
		}
		act = keep
		if len(freeRegs) > 0 {
			reg := freeRegs[0]
			freeRegs = freeRegs[1:]
			a.locs[iv.vreg] = loc{reg: reg}
			act = append(act, active{iv.end, reg})
			used[reg] = true
			continue
		}
		// Spill the new interval (simplest policy; fine at our scale).
		a.locs[iv.vreg] = loc{spilled: true, slot: nextSlot}
		nextSlot++
	}
	a.numSpills = nextSlot
	for _, reg := range pool {
		if used[reg] {
			a.usedPool = append(a.usedPool, reg)
		}
	}
	return a
}
