package codegen

import (
	"testing"

	"r2c/internal/defense"
	"r2c/internal/isa"
	"r2c/internal/workload"
)

// TestPropertiesOverRandomPrograms checks the structural invariants of
// Sections 4.1 and 5.1 over randomly generated programs, for both setup
// sequences:
//
//   - pre-offsets are even (stack alignment, Section 5.1);
//   - pre+post covers the configured BTRA count (± the alignment pad);
//   - direct call sites to protected callees use the callee's post-offset;
//   - every BTRA operand resolves to a booby-trap symbol;
//   - each instrumented call site pushes its return address exactly once
//     (property A);
//   - no two call sites share an identical BTRA set (property C);
//   - AVX arrays carry exactly one RA word at index padded-(pre+1).
func TestPropertiesOverRandomPrograms(t *testing.T) {
	n := 30
	if testing.Short() {
		n = 6
	}
	for seed := uint64(1); seed <= uint64(n); seed++ {
		m := workload.Random(seed)
		for _, cfg := range []defense.Config{defense.R2CPush(), defense.R2CFull()} {
			p, err := Compile(m, cfg, seed)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, cfg.Name, err)
			}
			seen := map[string]int{}
			for _, f := range p.Funcs {
				for _, cs := range f.CallSites {
					if cs.Pre == 0 && cs.Post == 0 {
						continue // uninstrumented (tail call or downgraded)
					}
					if cs.Pre%2 != 0 {
						t.Fatalf("seed %d %s: odd pre at site %d", seed, cfg.Name, cs.ID)
					}
					total := cs.Pre + cs.Post
					if total < cfg.BTRAsPerCall || total > cfg.BTRAsPerCall+1 {
						t.Fatalf("seed %d %s: site %d has %d BTRAs", seed, cfg.Name, cs.ID, total)
					}
					if cs.Callee != "" {
						if callee := p.Func(cs.Callee); callee != nil && callee.Protected && cs.Post != callee.PostOffset {
							t.Fatalf("seed %d %s: site %d post mismatch", seed, cfg.Name, cs.ID)
						}
					}
					key := ""
					for _, b := range cs.BTRAs {
						key += b.Sym + "+"
					}
					seen[key]++
					if seen[key] > 1 && len(cs.BTRAs) >= 4 {
						t.Fatalf("seed %d %s: duplicate BTRA set across call sites", seed, cfg.Name)
					}
				}
				// Property A at the instruction level: one RA per site.
				raPerSite := map[int]int{}
				for i := range f.Instrs {
					in := &f.Instrs[i]
					if in.RetAddr {
						raPerSite[in.CallSiteID]++
					}
					if in.BTRA && in.Kind == isa.KPushImm && in.Sym == "" {
						t.Fatalf("seed %d: BTRA push without a trap symbol", seed)
					}
				}
				for id, c := range raPerSite {
					if c != 1 {
						t.Fatalf("seed %d %s: site %d has %d RA pushes", seed, cfg.Name, id, c)
					}
				}
			}
			// AVX arrays: exactly one RA word, at the documented index.
			for _, b := range p.Blobs {
				ras := 0
				raIdx := -1
				for i, w := range b.Words {
					if w.RetAddr {
						ras++
						raIdx = i
					}
				}
				if ras != 1 {
					t.Fatalf("seed %d: blob %s has %d RA words", seed, b.Name, ras)
				}
				var site *CallSite
				for _, f := range p.Funcs {
					for i := range f.CallSites {
						if f.CallSites[i].ArraySym == b.Name {
							site = &f.CallSites[i]
						}
					}
				}
				if site == nil {
					t.Fatalf("seed %d: blob %s is orphaned", seed, b.Name)
				}
				if want := len(b.Words) - (site.Pre + 1); raIdx != want {
					t.Fatalf("seed %d: blob %s RA at %d, want %d", seed, b.Name, raIdx, want)
				}
			}
		}
	}
}
