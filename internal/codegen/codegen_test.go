package codegen

import (
	"reflect"
	"strings"
	"testing"

	"r2c/internal/defense"
	"r2c/internal/isa"
	"r2c/internal/tir"
)

// testModule builds a module with the call shapes the passes care about:
// direct calls, indirect calls, tail calls, stack-argument calls, leaf
// functions with and without locals, and a call into unprotected code.
func testModule(t *testing.T) *tir.Module {
	t.Helper()
	mb := tir.NewModule("cgtest")
	mb.AddGlobal("g", 8, 3)

	leafNoFrame := mb.NewFunc("leaf_noframe", 1)
	leafNoFrame.Ret(leafNoFrame.Bin(tir.OpAdd, leafNoFrame.Param(0), leafNoFrame.Param(0)))

	leafFrame := mb.NewFunc("leaf_frame", 1)
	l := leafFrame.NewLocal("buf", 16)
	a := leafFrame.AddrLocal(l)
	leafFrame.Store(a, 0, leafFrame.Param(0))
	leafFrame.Ret(leafFrame.Load(a, 0))

	ext := mb.NewFunc("libc_like", 1)
	ext.Unprotected()
	ext.Ret(ext.Param(0))

	wide := mb.NewFunc("wide", 8)
	acc := wide.Param(0)
	for i := 1; i < 8; i++ {
		acc = wide.Bin(tir.OpAdd, acc, wide.Param(i))
	}
	wide.Ret(acc)

	tailer := mb.NewFunc("tailer", 1)
	tailer.TailCall("leaf_frame", tailer.Param(0))

	main := mb.NewFunc("main", 0)
	x := main.Const(5)
	r1 := main.Call("leaf_noframe", x)
	r2 := main.Call("leaf_frame", r1)
	r3 := main.Call("libc_like", r2)
	var args []tir.Reg
	for i := 0; i < 8; i++ {
		args = append(args, main.Const(uint64(i)))
	}
	r4 := main.Call("wide", args...)
	fp := main.AddrFunc("leaf_frame")
	r5 := main.CallIndirect(fp, r4)
	r6 := main.Call("tailer", r5)
	main.Output(r3)
	main.Output(r6)
	main.RetVoid()

	mb.SetEntry("main")
	return mb.MustBuild()
}

func compile(t *testing.T, cfg defense.Config, seed uint64) *Program {
	t.Helper()
	p, err := Compile(testModule(t), cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBaselineHasNoInstrumentation(t *testing.T) {
	p := compile(t, defense.Off(), 1)
	for _, f := range p.Funcs {
		if f.NumBTDPs != 0 || f.NumPrologTraps != 0 || f.PostOffset != 0 {
			t.Errorf("%s: baseline has instrumentation %+v", f.Name, f)
		}
		for _, cs := range f.CallSites {
			if cs.Pre != 0 || cs.Post != 0 || cs.NumNOPs != 0 {
				t.Errorf("%s: baseline call site instrumented: %+v", f.Name, cs)
			}
		}
		for i := range f.Instrs {
			if f.Instrs[i].BTRA {
				t.Errorf("%s: baseline emits BTRA push", f.Name)
			}
		}
	}
	if len(p.Blobs) != 0 {
		t.Error("baseline emitted BTRA arrays")
	}
}

func TestBTRACallSiteInvariants(t *testing.T) {
	for _, cfg := range []defense.Config{defense.BTRAPushOnly(), defense.BTRAAVXOnly()} {
		p := compile(t, cfg, 7)
		sites := 0
		for _, f := range p.Funcs {
			for _, cs := range f.CallSites {
				if cs.Tail {
					t.Errorf("tail call got a BTRA site: %+v", cs)
				}
				sites++
				// The alignment rule: pre must be even (Section 5.1).
				if cs.Pre%2 != 0 {
					t.Errorf("%s site %d: odd pre-offset %d", f.Name, cs.ID, cs.Pre)
				}
				// Total BTRAs ≈ configured count (pre+post = 10 or 11 with
				// the alignment pad).
				total := cs.Pre + cs.Post
				if total < cfg.BTRAsPerCall || total > cfg.BTRAsPerCall+1 {
					t.Errorf("%s site %d: %d BTRAs, want %d..%d",
						f.Name, cs.ID, total, cfg.BTRAsPerCall, cfg.BTRAsPerCall+1)
				}
				if len(cs.BTRAs) != total {
					t.Errorf("%s site %d: BTRA list length %d != pre+post %d",
						f.Name, cs.ID, len(cs.BTRAs), total)
				}
				// Direct calls to protected callees must use the callee's
				// post-offset (caller/callee cooperation, Section 5.1).
				if cs.Callee != "" {
					callee := p.Func(cs.Callee)
					if callee != nil && callee.Protected && cs.Post != callee.PostOffset {
						t.Errorf("site %d: post %d != callee %s post-offset %d",
							cs.ID, cs.Post, cs.Callee, callee.PostOffset)
					}
					// Unprotected callees would clobber post BTRAs: none
					// are pushed (Section 7.4.1).
					if callee != nil && !callee.Protected && cs.Post != 0 {
						t.Errorf("site %d: post BTRAs pushed for unprotected callee", cs.ID)
					}
				}
			}
		}
		if sites == 0 {
			t.Fatal("no call sites found")
		}
	}
}

func TestPropertyBAndCStatically(t *testing.T) {
	// Property B: the same seed reproduces identical BTRA sets (no run-time
	// dynamism). Property C: different call sites get different sets.
	p1 := compile(t, defense.BTRAPushOnly(), 11)
	p2 := compile(t, defense.BTRAPushOnly(), 11)
	var sets1, sets2 [][]AddrWord
	collect := func(p *Program, out *[][]AddrWord) {
		for _, f := range p.Funcs {
			for _, cs := range f.CallSites {
				*out = append(*out, cs.BTRAs)
			}
		}
	}
	collect(p1, &sets1)
	collect(p2, &sets2)
	if !reflect.DeepEqual(sets1, sets2) {
		t.Error("same seed produced different BTRA sets (property B)")
	}
	// Different call sites: sets must differ pairwise (whp).
	same := 0
	for i := range sets1 {
		for j := i + 1; j < len(sets1); j++ {
			if len(sets1[i]) > 0 && reflect.DeepEqual(sets1[i], sets1[j]) {
				same++
			}
		}
	}
	if same > 0 {
		t.Errorf("%d call-site pairs share identical BTRA sets (property C)", same)
	}
}

func TestCalleeBTRAAblationSharesSets(t *testing.T) {
	cfg := defense.BTRAPushOnly()
	cfg.InsecureCalleeBTRAs = true
	p := compile(t, cfg, 11)
	// Both calls to leaf_frame (from main and from tailer... tailer is a
	// tail call, so use main's direct + indirect? indirect sites share the
	// <indirect> set). Compare the two direct sites to leaf_frame if
	// present; at minimum the cache must key by callee.
	byCallee := map[string][][]AddrWord{}
	for _, f := range p.Funcs {
		for _, cs := range f.CallSites {
			byCallee[cs.Callee] = append(byCallee[cs.Callee], cs.BTRAs)
		}
	}
	for callee, sets := range byCallee {
		for i := 1; i < len(sets); i++ {
			n := len(sets[0])
			if len(sets[i]) < n {
				n = len(sets[i])
			}
			if !reflect.DeepEqual(sets[0][:n], sets[i][:n]) {
				t.Errorf("callee %q: ablation should share BTRA prefixes across sites", callee)
			}
		}
	}
}

func TestAVXArrayStructure(t *testing.T) {
	cfg := defense.BTRAAVXOnly()
	p := compile(t, cfg, 13)
	if len(p.Blobs) == 0 {
		t.Fatal("no AVX arrays emitted")
	}
	lanes := cfg.VectorWidthBits / 64
	for _, f := range p.Funcs {
		for _, cs := range f.CallSites {
			if cs.ArraySym == "" {
				continue
			}
			var blob *DataBlob
			for _, b := range p.Blobs {
				if b.Name == cs.ArraySym {
					blob = b
				}
			}
			if blob == nil {
				t.Fatalf("array %s missing", cs.ArraySym)
			}
			if len(blob.Words)%lanes != 0 {
				t.Errorf("array %s length %d not a multiple of %d lanes",
					blob.Name, len(blob.Words), lanes)
			}
			// Exactly one RA entry, at index padded-(pre+1) from the bottom.
			raIdx := -1
			for i, w := range blob.Words {
				if w.RetAddr {
					if raIdx != -1 {
						t.Errorf("array %s has multiple RA entries", blob.Name)
					}
					raIdx = i
					if w.CallSiteID != cs.ID {
						t.Errorf("array %s RA belongs to site %d, want %d",
							blob.Name, w.CallSiteID, cs.ID)
					}
				} else if !w.BTRA {
					t.Errorf("array %s word %d is neither RA nor BTRA", blob.Name, i)
				}
			}
			want := len(blob.Words) - (cs.Pre + 1)
			if raIdx != want {
				t.Errorf("array %s: RA at index %d, want %d (pre=%d post=%d)",
					blob.Name, raIdx, want, cs.Pre, cs.Post)
			}
		}
	}
}

func TestBTDPSkipOptimization(t *testing.T) {
	cfg := defense.BTDPOnly()
	found := false
	for seed := uint64(1); seed <= 8; seed++ {
		p, err := Compile(testModule(t), cfg, seed)
		if err != nil {
			t.Fatal(err)
		}
		lf := p.Func("leaf_noframe")
		if lf.NumBTDPs != 0 {
			t.Errorf("seed %d: frameless leaf got %d BTDPs (skip optimization)", seed, lf.NumBTDPs)
		}
		if p.Func("leaf_frame").NumBTDPs > 0 {
			found = true
		}
	}
	if !found {
		t.Error("no seed instrumented leaf_frame with BTDPs")
	}
}

func TestStackSlotAndRegallocRandomization(t *testing.T) {
	cfg := defense.LayoutOnly()
	p1 := compile(t, cfg, 21)
	p2 := compile(t, cfg, 22)
	f1, f2 := p1.Func("leaf_frame"), p2.Func("leaf_frame")
	// With a single local the slot layout may coincide; compare main which
	// has spills, plus the register pool order somewhere in the module.
	diff := false
	for _, name := range []string{"main", "wide", "leaf_frame"} {
		a, b := p1.Func(name), p2.Func(name)
		if !reflect.DeepEqual(a.Slots, b.Slots) || !reflect.DeepEqual(a.CalleeSaved, b.CalleeSaved) {
			diff = true
		}
	}
	if !diff {
		t.Error("layout randomization produced identical frames for different seeds")
	}
	_ = f1
	_ = f2
}

func TestPrologTrapsBehindJump(t *testing.T) {
	cfg := defense.PrologOnly()
	p := compile(t, cfg, 3)
	for _, f := range p.Funcs {
		if !f.Protected || f.BoobyTrap || f.Stub {
			continue
		}
		if f.NumPrologTraps < cfg.PrologTrapMin || f.NumPrologTraps > cfg.PrologTrapMax {
			t.Errorf("%s: %d prolog traps outside %d..%d",
				f.Name, f.NumPrologTraps, cfg.PrologTrapMin, cfg.PrologTrapMax)
		}
		if f.Instrs[0].Kind != isa.KJmp {
			t.Errorf("%s: prolog traps must hide behind an entry jump", f.Name)
		}
		for i := 1; i <= f.NumPrologTraps; i++ {
			if f.Instrs[i].Kind != isa.KTrap {
				t.Errorf("%s: instruction %d should be a trap", f.Name, i)
			}
		}
		if f.Instrs[0].LocalTarget != f.NumPrologTraps+1 {
			t.Errorf("%s: entry jump skips to %d, want %d",
				f.Name, f.Instrs[0].LocalTarget, f.NumPrologTraps+1)
		}
	}
}

func TestTailCallLowersToJump(t *testing.T) {
	p := compile(t, defense.R2CFull(), 5)
	f := p.Func("tailer")
	last := f.Instrs[len(f.Instrs)-1]
	if last.Kind != isa.KJmp || last.Sym != "leaf_frame" {
		t.Fatalf("tail call should end in jmp leaf_frame, got %v", last.String())
	}
	for i := range f.Instrs {
		if f.Instrs[i].Kind == isa.KCall {
			t.Error("tail call emitted a CALL (would push a return address)")
		}
	}
}

func TestBoobyTrapFunctionsGenerated(t *testing.T) {
	cfg := defense.BTRAPushOnly()
	p := compile(t, cfg, 9)
	traps := 0
	for _, f := range p.Funcs {
		if f.BoobyTrap {
			traps++
			if len(f.Instrs) != TrapFuncLen {
				t.Errorf("%s has %d instructions, want %d", f.Name, len(f.Instrs), TrapFuncLen)
			}
			for i := range f.Instrs {
				if f.Instrs[i].Kind != isa.KTrap {
					t.Errorf("%s instruction %d is not a trap", f.Name, i)
				}
			}
		}
	}
	if traps != cfg.BTRAPoolSize {
		t.Errorf("generated %d booby traps, want %d", traps, cfg.BTRAPoolSize)
	}
}

func TestCPHEmitsTrampolines(t *testing.T) {
	p := compile(t, defense.Readactor(), 9)
	tr := p.Func(TrampolineSym("leaf_frame"))
	if tr == nil {
		t.Fatal("no trampoline for leaf_frame")
	}
	if len(tr.Instrs) != 1 || tr.Instrs[0].Kind != isa.KJmp || tr.Instrs[0].Sym != "leaf_frame" {
		t.Fatalf("trampoline wrong: %s", tr.Disasm())
	}
	// Function pointers must resolve to the trampoline.
	f := p.Func("main")
	found := false
	for i := range f.Instrs {
		in := &f.Instrs[i]
		if in.Kind == isa.KMovImm && strings.HasPrefix(in.Sym, "__tramp_") {
			found = true
		}
	}
	if !found {
		t.Error("AddrFunc under CPH does not reference a trampoline")
	}
}

func TestDisasmMentionsBTRAs(t *testing.T) {
	p := compile(t, defense.BTRAPushOnly(), 2)
	d := p.Func("main").Disasm()
	if !strings.Contains(d, "<btra>") || !strings.Contains(d, "<ra:") {
		t.Errorf("disassembly lacks BTRA annotations:\n%s", d)
	}
}

func TestLiveIntervalLoopExtension(t *testing.T) {
	// A value defined before a loop and used inside it must stay allocated
	// across the whole loop (the back-edge extension in regalloc).
	mb := tir.NewModule("loops")
	f := mb.NewFunc("main", 0)
	keep := f.Const(123) // used inside the loop every iteration
	i := f.Const(0)
	n := f.Const(1000)
	head := f.NewBlock()
	body := f.NewBlock()
	exit := f.NewBlock()
	f.SetBlock(0)
	f.Br(head)
	f.SetBlock(head)
	c := f.Bin(tir.OpLt, i, n)
	f.CondBr(c, body, exit)
	f.SetBlock(body)
	// Lots of temporaries to pressure the 5-register pool.
	tmp := f.Bin(tir.OpAdd, i, keep)
	for k := 0; k < 8; k++ {
		tmp = f.Bin(tir.OpXor, tmp, f.Const(uint64(k)))
	}
	one := f.Const(1)
	f.BinTo(i, tir.OpAdd, i, one)
	f.Br(head)
	f.SetBlock(exit)
	f.Output(keep)
	f.RetVoid()
	mb.SetEntry("main")
	m := mb.MustBuild()

	ivs := liveIntervals(m.Func("main"))
	// keep (vreg of the first Const) must live until its Output use, past
	// every back edge.
	var keepEnd, lastBranch int
	for _, iv := range ivs {
		if iv.vreg == keep {
			keepEnd = iv.end
		}
	}
	idx := 0
	for _, b := range m.Func("main").Blocks {
		for _, in := range b.Instrs {
			if in.Op == tir.OpBr || in.Op == tir.OpCondBr {
				lastBranch = idx
			}
			idx++
		}
	}
	if keepEnd < lastBranch {
		t.Errorf("loop-invariant interval ends at %d before last branch %d", keepEnd, lastBranch)
	}
}
