package codegen

import (
	"testing"

	"r2c/internal/defense"
	"r2c/internal/isa"
	"r2c/internal/tir"
)

// boundaryModule reproduces the Section 7.4.2 situation: unprotected code
// (a system library stand-in) calls a protected function that takes stack
// arguments — directly (the WebKit unit-test case) and through a function
// pointer (the XML-callback case).
func boundaryModule(t *testing.T) *tir.Module {
	t.Helper()
	mb := tir.NewModule("boundary")

	// Protected, 8 parameters: two arrive on the stack.
	wide := mb.NewFunc("wide8", 8)
	acc := wide.Param(0)
	for i := 1; i < 8; i++ {
		acc = wide.Bin(tir.OpAdd, acc, wide.Param(i))
	}
	wide.Ret(acc)

	// Protected callback with stack args, address-escaped via a global.
	cb := mb.NewFunc("callback7", 7)
	a7 := cb.Bin(tir.OpXor, cb.Param(0), cb.Param(6))
	cb.Ret(a7)
	mb.AddFuncPtr("cb_ptr", "callback7")

	// The "library": unprotected code calling both.
	lib := mb.NewFunc("libwrap", 1)
	lib.Unprotected()
	var args []tir.Reg
	for i := 0; i < 8; i++ {
		c := lib.Const(uint64(i + 1))
		x := lib.Bin(tir.OpMul, lib.Param(0), c)
		args = append(args, x)
	}
	r := lib.Call("wide8", args...)
	fpA := lib.AddrGlobal("cb_ptr")
	fp := lib.Load(fpA, 0)
	r2 := lib.CallIndirect(fp, args[:7]...)
	lib.Ret(lib.Bin(tir.OpAdd, r, r2))

	main := mb.NewFunc("main", 0)
	v := main.Const(3)
	out := main.Call("libwrap", v)
	main.Output(out)
	// Protected code also calls wide8 directly (mixed callers).
	var margs []tir.Reg
	for i := 0; i < 8; i++ {
		margs = append(margs, main.Const(uint64(i+10)))
	}
	main.Output(main.Call("wide8", margs...))
	main.RetVoid()
	mb.SetEntry("main")
	return mb.MustBuild()
}

func TestAffectedDetection(t *testing.T) {
	m := boundaryModule(t)
	aff := affectedStackArgFuncs(m)
	if !aff["wide8"] {
		t.Error("wide8 (directly called from unprotected code) not detected")
	}
	if !aff["callback7"] {
		t.Error("callback7 (escaped, unprotected indirect calls exist) not detected")
	}
	if aff["libwrap"] || aff["main"] {
		t.Errorf("false positives: %v", aff)
	}
}

func TestDowngradeDisablesBTRAsForAffected(t *testing.T) {
	// The paper's default: affected functions are compiled without BTRAs
	// so every caller's convention works (Section 7.4.2).
	p, err := Compile(boundaryModule(t), defense.R2CFull(), 3)
	if err != nil {
		t.Fatal(err)
	}
	w := p.Func("wide8")
	if w.PostOffset != 0 {
		t.Errorf("downgraded wide8 keeps post-offset %d", w.PostOffset)
	}
	for _, f := range p.Funcs {
		for _, cs := range f.CallSites {
			if cs.Callee == "wide8" && (cs.Pre != 0 || cs.Post != 0) {
				t.Errorf("call site to downgraded wide8 still has BTRAs: %+v", cs)
			}
		}
	}
	// Non-affected functions keep their protection.
	mainF := p.Func("main")
	hasBTRA := false
	for _, cs := range mainF.CallSites {
		if cs.Pre > 0 {
			hasBTRA = true
		}
	}
	if !hasBTRA {
		t.Error("downgrade leaked to unaffected call sites")
	}
}

func TestTrampolineModeKeepsProtection(t *testing.T) {
	cfg := defense.R2CFull()
	cfg.StackArgTrampolines = true
	p, err := Compile(boundaryModule(t), cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr := p.Func(StackArgTrampolineSym("wide8"))
	if tr == nil {
		t.Fatal("no trampoline generated for wide8")
	}
	if err := validateTrampoline(tr); err != nil {
		t.Fatal(err)
	}
	// wide8 keeps its protection (a nonzero post-offset is possible again).
	found := false
	for _, f := range p.Funcs {
		for _, cs := range f.CallSites {
			if cs.Callee == "wide8" && f.Name == "main" && cs.Pre > 0 {
				found = true
			}
			// The unprotected caller must have been redirected.
			if f.Name == "libwrap" && cs.Callee == "wide8" {
				t.Error("unprotected caller still calls wide8 directly")
			}
		}
	}
	if !found {
		t.Error("protected caller of wide8 lost its BTRAs under trampoline mode")
	}
	redirected := false
	for _, cs := range p.Func("libwrap").CallSites {
		if cs.Callee == StackArgTrampolineSym("wide8") {
			redirected = true
		}
	}
	if !redirected {
		t.Error("libwrap not redirected to the trampoline")
	}
	// The escaped callback stays downgraded even in trampoline mode (the
	// paper's evaluation also deactivated those cases).
	if p.Func("callback7").PostOffset != 0 {
		t.Error("escaped callback not downgraded")
	}
}

func TestTrampolineShape(t *testing.T) {
	cfg := defense.R2CFull()
	cfg.StackArgTrampolines = true
	p, err := Compile(boundaryModule(t), cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	tr := p.Func(StackArgTrampolineSym("wide8"))
	// Must save/restore rbp, re-push both stack args, park rbp, and call.
	var pushes, loads int
	var calls int
	for i := range tr.Instrs {
		switch tr.Instrs[i].Kind {
		case isa.KPush:
			pushes++
		case isa.KLoad:
			loads++
		case isa.KCall:
			calls++
			if tr.Instrs[i].Sym != "wide8" {
				t.Errorf("trampoline calls %q", tr.Instrs[i].Sym)
			}
		}
	}
	if loads != 2 || calls != 1 {
		t.Errorf("trampoline shape: %d loads, %d calls (want 2, 1)\n%s",
			loads, calls, tr.Disasm())
	}
	if pushes < 3 { // rbp + two args
		t.Errorf("trampoline pushes = %d", pushes)
	}
}
