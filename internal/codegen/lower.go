package codegen

import (
	"fmt"

	"r2c/internal/defense"
	"r2c/internal/isa"
	"r2c/internal/rng"
	"r2c/internal/tir"
)

// TrapFuncLen is the number of (1-byte) trap instructions in each generated
// booby-trap function. BTRAs point at a random boundary inside one, so they
// share the text section's value range and executing them always traps.
const TrapFuncLen = 8

// maxPostOffset bounds the callee-chosen post-offset in BTRA words.
const maxPostOffset = 6

// Compile lowers a verified TIR module under the given defense
// configuration. All randomization derives from seed, so recompiling with
// the same seed reproduces the build bit-for-bit and recompiling with a new
// seed re-diversifies it (the paper recompiles each benchmark run with a
// fresh seed, Section 6.2).
func Compile(mod *tir.Module, cfg defense.Config, seed uint64) (*Program, error) {
	if err := mod.Verify(); err != nil {
		return nil, fmt.Errorf("codegen: %w", err)
	}
	if cfg.BTRAEnabled() && cfg.BTRAPoolSize <= 0 {
		return nil, fmt.Errorf("codegen: BTRAs enabled with empty booby-trap pool")
	}
	if cfg.BTRASetup == defense.BTRAAVX2 && cfg.VectorWidthBits != 256 && cfg.VectorWidthBits != 512 {
		return nil, fmt.Errorf("codegen: unsupported vector width %d", cfg.VectorWidthBits)
	}

	p := &Program{Module: mod, Config: cfg, Seed: seed}
	rootRnd := rng.New(seed)

	// Pre-compute every protected function's post-offset so direct call
	// sites can cooperate with their callees (Section 5.1: "For direct call
	// sites, R2C bounds the number of BTRAs after the return address at
	// compile-time to fit into the post-offset").
	postOffsets := map[string]int{}
	if cfg.BTRAEnabled() {
		por := rootRnd.Split()
		for _, f := range mod.Funcs {
			if f.Protected {
				bound := min(maxPostOffset, cfg.BTRAsPerCall)
				postOffsets[f.Name] = por.Intn(bound + 1)
			}
		}
	}

	lw := &lowerer{
		prog:        p,
		cfg:         &cfg,
		mod:         mod,
		postOffsets: postOffsets,
		affected:    map[string]bool{},
		trampolined: map[string]string{},
		calleeSets:  map[string][]AddrWord{},
	}
	// Section 7.4.2: protected stack-parameter functions reachable from
	// unprotected code either get downgraded (the paper's choice) or, with
	// StackArgTrampolines, keep protection behind an adapter.
	if cfg.OIAEnabled() {
		for name := range affectedStackArgFuncs(mod) {
			if cfg.StackArgTrampolines && directlyCalledFromUnprotected(mod, name) {
				lw.trampolined[name] = StackArgTrampolineSym(name)
				continue
			}
			lw.affected[name] = true
			postOffsets[name] = 0
		}
	}
	for _, f := range mod.Funcs {
		lw.rnd = rootRnd.Split()
		cf, err := lw.lowerFunc(f)
		if err != nil {
			return nil, fmt.Errorf("codegen: %s: %w", f.Name, err)
		}
		p.Funcs = append(p.Funcs, cf)
	}

	// Runtime stubs: the simulated unprotected libc (Section 6.2 compiles
	// against the unprotected system glibc).
	for _, s := range []struct {
		name string
		sys  isa.Sys
	}{
		{StubMalloc, isa.SysAlloc},
		{StubFree, isa.SysFree},
		{StubOutput, isa.SysOutput},
		{StubExit, isa.SysExit},
	} {
		p.Funcs = append(p.Funcs, &Func{
			Name: s.name,
			Stub: true,
			Instrs: []isa.Instr{
				{Kind: isa.KSys, Sys: s.sys, LocalTarget: -1},
				{Kind: isa.KRet, LocalTarget: -1},
			},
		})
	}

	// Booby-trap functions for BTRAs to point into.
	if cfg.BTRAEnabled() {
		for i := 0; i < cfg.BTRAPoolSize; i++ {
			bt := &Func{Name: BoobyTrapSym(i), BoobyTrap: true}
			for j := 0; j < TrapFuncLen; j++ {
				bt.Instrs = append(bt.Instrs, isa.Instr{Kind: isa.KTrap, LocalTarget: -1})
			}
			p.Funcs = append(p.Funcs, bt)
		}
	}

	// CPH trampolines (Readactor baseline): code pointers target these
	// jump stubs in execute-only memory instead of function entries.
	if cfg.CPH {
		for _, f := range mod.Funcs {
			if !f.Protected {
				continue
			}
			p.Funcs = append(p.Funcs, &Func{
				Name: TrampolineSym(f.Name),
				Instrs: []isa.Instr{
					{Kind: isa.KJmp, Sym: f.Name, LocalTarget: -1},
				},
			})
		}
	}
	// Emit the Section 7.4.2 adapters.
	for callee := range lw.trampolined {
		cf := p.Func(callee)
		tf := lw.mod.Func(callee)
		if cf == nil || tf == nil {
			return nil, fmt.Errorf("codegen: trampoline target %q missing", callee)
		}
		tr := buildStackArgTrampoline(cf, tf.NParams)
		if err := validateTrampoline(tr); err != nil {
			return nil, fmt.Errorf("codegen: %w", err)
		}
		p.Funcs = append(p.Funcs, tr)
	}
	p.NumCallSites = lw.nextCallSite
	for _, f := range p.Funcs {
		f.BlockStarts = BlockBoundaries(f.Instrs)
	}
	return p, nil
}

// directlyCalledFromUnprotected reports whether any unprotected function
// contains a direct call to name.
func directlyCalledFromUnprotected(mod *tir.Module, name string) bool {
	for _, f := range mod.Funcs {
		if f.Protected {
			continue
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == tir.OpCall && in.Sym == name {
					return true
				}
			}
		}
	}
	return false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// lowerer carries per-module and per-function lowering state.
type lowerer struct {
	prog *Program
	cfg  *defense.Config
	mod  *tir.Module
	rnd  *rng.RNG

	postOffsets map[string]int
	// affected are the Section 7.4.2 downgraded functions: compiled with
	// baseline stack-parameter access and no post-offset; call sites to
	// them get neither BTRAs nor the OIA rbp dance.
	affected map[string]bool
	// trampolined maps downgrade-exempt functions to their adapter symbol
	// (unprotected direct callers are redirected there).
	trampolined  map[string]string
	nextCallSite int
	// calleeSets caches per-callee BTRA sets for the InsecureCalleeBTRAs
	// ablation (property C of Section 4.1).
	calleeSets map[string][]AddrWord

	// Per-function state.
	f            *tir.Function
	tailEmitted  bool // the last lowered op was a tail call; skip its OpRet
	out          *Func
	alloc        allocation
	localOff     []int64 // TIR local index -> frame offset
	spillOff     []int64 // spill slot -> frame offset
	btdpOff      []int64 // BTDP slot -> frame offset
	spOffset     int64   // rsp displacement below frame base (inside call sequences)
	blockLabel   []int   // TIR block -> lowered instruction index
	pendingJumps []int   // lowered indices whose LocalTarget is a TIR block id
}

func (lw *lowerer) emit(in isa.Instr) int {
	if in.LocalTarget == 0 && in.Kind != isa.KJmp && in.Kind != isa.KJz && in.Kind != isa.KJnz {
		in.LocalTarget = -1
	}
	lw.out.Instrs = append(lw.out.Instrs, in)
	// Track the stack pointer for rsp-relative slot addressing inside call
	// sequences.
	switch in.Kind {
	case isa.KPush, isa.KPushImm:
		lw.spOffset += 8
	case isa.KPop:
		lw.spOffset -= 8
	case isa.KAluImm:
		if in.Dst == isa.RSP {
			switch in.Alu {
			case isa.AluSub:
				lw.spOffset += int64(in.Imm)
			case isa.AluAdd:
				lw.spOffset -= int64(in.Imm)
			}
		}
	}
	return len(lw.out.Instrs) - 1
}

// slotDisp returns the current rsp-relative displacement of a frame offset.
func (lw *lowerer) slotDisp(frameOff int64) int64 { return frameOff + lw.spOffset }

// regOf materializes vreg v in a machine register: its home register if it
// has one, otherwise a load into scratch.
func (lw *lowerer) regOf(v tir.Reg, scratch isa.Reg) isa.Reg {
	l := lw.alloc.locs[v]
	if !l.spilled {
		return l.reg
	}
	lw.emit(isa.Instr{Kind: isa.KLoad, Dst: scratch, Base: isa.RSP, Disp: lw.slotDisp(lw.spillOff[l.slot])})
	return scratch
}

// writeBack stores a machine register into vreg v's home.
func (lw *lowerer) writeBack(v tir.Reg, from isa.Reg) {
	l := lw.alloc.locs[v]
	if !l.spilled {
		if l.reg != from {
			lw.emit(isa.Instr{Kind: isa.KMovReg, Dst: l.reg, Src: from})
		}
		return
	}
	lw.emit(isa.Instr{Kind: isa.KStore, Base: isa.RSP, Disp: lw.slotDisp(lw.spillOff[l.slot]), Src: from})
}

func (lw *lowerer) lowerFunc(f *tir.Function) (*Func, error) {
	cfg := lw.cfg
	lw.f = f
	lw.out = &Func{Name: f.Name, Protected: f.Protected}
	lw.spOffset = 0
	lw.tailEmitted = false
	lw.pendingJumps = nil
	lw.blockLabel = make([]int, len(f.Blocks))

	lw.alloc = allocate(f, cfg.RandomizeRegAlloc, lw.rnd.Split())

	out := lw.out
	out.NumStackParams = f.NParams - len(isa.ArgRegs)
	if out.NumStackParams < 0 {
		out.NumStackParams = 0
	}
	if f.Protected && cfg.BTRAEnabled() && !lw.affected[f.Name] {
		out.PostOffset = lw.postOffsets[f.Name]
	}
	out.CalleeSaved = lw.alloc.usedPool
	out.RegAllocOrder = lw.alloc.poolOrder

	// BTDP count (Section 5.2: "How many BTDPs are written per function is
	// chosen randomly using compile-time parameters", 0..max; the
	// optimization skips functions without stack allocations).
	hasStackAllocs := len(f.Locals) > 0 || lw.alloc.numSpills > 0
	if cfg.BTDP && f.Protected && (hasStackAllocs || !cfg.BTDPSkipNoStackFuncs) {
		out.NumBTDPs = lw.rnd.Intn(cfg.BTDPMaxPerFunc + 1)
	}

	// Prolog traps (Section 4.3: 1..5 traps per prolog).
	if cfg.PrologTrapMax > 0 && f.Protected {
		out.NumPrologTraps = lw.rnd.IntRange(cfg.PrologTrapMin, cfg.PrologTrapMax)
	}

	lw.layoutFrame()
	lw.emitPrologue()

	for bi, b := range f.Blocks {
		lw.blockLabel[bi] = len(out.Instrs)
		for _, in := range b.Instrs {
			if err := lw.lowerInstr(in); err != nil {
				return nil, err
			}
		}
		if lw.spOffset != 0 {
			return nil, fmt.Errorf("block %d ends with unbalanced stack (%d)", bi, lw.spOffset)
		}
	}

	// Resolve intra-function jumps from TIR block ids to instruction
	// indices.
	for _, idx := range lw.pendingJumps {
		out.Instrs[idx].LocalTarget = lw.blockLabel[out.Instrs[idx].LocalTarget]
	}
	return out, nil
}

// layoutFrame assigns frame offsets to locals, spill slots and BTDP slots,
// randomizing their order when stack-slot randomization is enabled, and
// pads the frame so the stack stays 16-byte aligned at call sites.
func (lw *lowerer) layoutFrame() {
	f, out, cfg := lw.f, lw.out, lw.cfg

	type protoSlot struct {
		kind SlotKind
		name string
		size uint64
		idx  int
	}
	var slots []protoSlot
	for i, l := range f.Locals {
		size := (l.Size + 7) &^ 7
		if size == 0 {
			size = 8
		}
		slots = append(slots, protoSlot{SlotLocal, l.Name, size, i})
	}
	for i := 0; i < lw.alloc.numSpills; i++ {
		slots = append(slots, protoSlot{SlotSpill, fmt.Sprintf("spill%d", i), 8, i})
	}
	for i := 0; i < out.NumBTDPs; i++ {
		slots = append(slots, protoSlot{SlotBTDP, fmt.Sprintf("btdp%d", i), 8, i})
	}

	// Stack-slot randomization: permute the slot order. BTDP slots are
	// "allocated like stack slots for local variables. As a result, stack
	// slot randomization shuffles BTDPs with other stack objects" (§5.2).
	if cfg.ShuffleStackSlots {
		lw.rnd.Shuffle(len(slots), func(i, j int) { slots[i], slots[j] = slots[j], slots[i] })
	}

	lw.localOff = make([]int64, len(f.Locals))
	lw.spillOff = make([]int64, lw.alloc.numSpills)
	lw.btdpOff = make([]int64, out.NumBTDPs)
	var off int64
	for _, s := range slots {
		switch s.kind {
		case SlotLocal:
			lw.localOff[s.idx] = off
		case SlotSpill:
			lw.spillOff[s.idx] = off
		case SlotBTDP:
			lw.btdpOff[s.idx] = off
		}
		out.Slots = append(out.Slots, Slot{Kind: s.kind, Name: s.name, Offset: off, Size: s.size})
		off += int64(s.size)
	}

	// Alignment: the machine convention is rsp % 16 == 0 in function
	// bodies (so call sites start aligned) and rsp % 16 == 8 at function
	// entry. Entry rsp is S-(pre+1)*8 with pre even; then the prologue
	// subtracts post*8, pushes nPush words, and subtracts the frame.
	nPush := len(out.CalleeSaved)
	target := (8 * int64(1+nPush+out.PostOffset)) % 16
	pad := (target - off%16 + 16) % 16
	if pad > 0 {
		out.Slots = append(out.Slots, Slot{Kind: SlotPad, Name: "pad", Offset: off, Size: uint64(pad)})
		off += pad
	}
	out.FrameSize = off
}

func (lw *lowerer) emitPrologue() {
	out, cfg := lw.out, lw.cfg

	// Prolog traps, hidden behind a jump: normal control flow skips them;
	// an attacker computing gadget addresses relative to a leaked function
	// pointer lands in them (Section 4.3).
	if out.NumPrologTraps > 0 {
		lw.emit(isa.Instr{Kind: isa.KJmp, LocalTarget: out.NumPrologTraps + 1})
		for i := 0; i < out.NumPrologTraps; i++ {
			lw.emit(isa.Instr{Kind: isa.KTrap, LocalTarget: -1})
		}
	}

	// Step 4 of Figure 3: the callee protects the BTRAs below its return
	// address from its own spills by lowering rsp by the post-offset.
	if out.PostOffset > 0 {
		lw.emit(isa.Instr{Kind: isa.KAluImm, Alu: isa.AluSub, Dst: isa.RSP, Imm: uint64(out.PostOffset * 8)})
	}
	// The post-offset subtraction must not count toward slot addressing:
	// frame offsets are relative to post-prologue rsp.
	lw.spOffset = 0

	for _, r := range out.CalleeSaved {
		lw.emit(isa.Instr{Kind: isa.KPush, Src: r})
	}
	if out.FrameSize > 0 {
		lw.emit(isa.Instr{Kind: isa.KAluImm, Alu: isa.AluSub, Dst: isa.RSP, Imm: uint64(out.FrameSize)})
	}
	lw.spOffset = 0 // frame base established; offsets are rsp-relative

	// StackArmor-style zero initialization.
	if cfg.ZeroInitStack && out.FrameSize > 0 {
		lw.emit(isa.Instr{Kind: isa.KMovImm, Dst: isa.RAX, Imm: 0})
		for o := int64(0); o < out.FrameSize; o += 8 {
			lw.emit(isa.Instr{Kind: isa.KStore, Base: isa.RSP, Disp: o, Src: isa.RAX})
		}
	}

	// BTDP writes (Section 5.2). Hardened layout: the data section holds
	// only a pointer to the heap-allocated BTDP array; naive ablation: the
	// array itself is in the data section (Figure 5).
	if out.NumBTDPs > 0 {
		if cfg.BTDPNaiveDataArray {
			lw.emit(isa.Instr{Kind: isa.KMovImm, Dst: isa.R10, Sym: SymBTDPArray})
		} else {
			lw.emit(isa.Instr{Kind: isa.KMovImm, Dst: isa.R10, Sym: SymBTDPArrayPtr})
			lw.emit(isa.Instr{Kind: isa.KLoad, Dst: isa.R10, Base: isa.R10})
		}
		for i := 0; i < out.NumBTDPs; i++ {
			idx := lw.rnd.Intn(cfg.BTDPArrayLen)
			lw.emit(isa.Instr{Kind: isa.KLoad, Dst: isa.R11, Base: isa.R10, Disp: int64(idx) * 8})
			lw.emit(isa.Instr{Kind: isa.KStore, Base: isa.RSP, Disp: lw.btdpOff[i], Src: isa.R11})
		}
	}

	// Move parameters to their homes.
	for i := 0; i < lw.f.NParams && i < len(isa.ArgRegs); i++ {
		lw.writeBack(tir.Reg(i), isa.ArgRegs[i])
	}
	for j := len(isa.ArgRegs); j < lw.f.NParams; j++ {
		// Stack parameter. Under offset-invariant addressing the caller
		// parked rbp at the first stack argument (Section 5.1.1). Without
		// OIA the baseline omits the frame pointer entirely and reads the
		// argument rsp-relative — static, because without BTRAs the
		// distance to the arguments above the return address is fixed.
		argIdx := int64(j - len(isa.ArgRegs))
		if cfg.OIAEnabled() && !lw.affected[lw.f.Name] {
			lw.emit(isa.Instr{Kind: isa.KLoad, Dst: isa.R10, Base: isa.RBP, Disp: argIdx * 8})
		} else {
			disp := out.FrameSize + int64(len(out.CalleeSaved))*8 + 8 + argIdx*8
			lw.emit(isa.Instr{Kind: isa.KLoad, Dst: isa.R10, Base: isa.RSP, Disp: disp + lw.spOffset})
		}
		lw.writeBack(tir.Reg(j), isa.R10)
	}
}

func (lw *lowerer) emitEpilogue() {
	out := lw.out
	if out.FrameSize > 0 {
		lw.emit(isa.Instr{Kind: isa.KAluImm, Alu: isa.AluAdd, Dst: isa.RSP, Imm: uint64(out.FrameSize)})
	}
	for i := len(out.CalleeSaved) - 1; i >= 0; i-- {
		lw.emit(isa.Instr{Kind: isa.KPop, Dst: out.CalleeSaved[i]})
	}
	// Step 5 of Figure 3: revert the post-offset so ret pops the real RA.
	if out.PostOffset > 0 {
		lw.emit(isa.Instr{Kind: isa.KAluImm, Alu: isa.AluAdd, Dst: isa.RSP, Imm: uint64(out.PostOffset * 8)})
	}
	lw.emit(isa.Instr{Kind: isa.KRet})
	lw.spOffset = 0
}

var aluFor = map[tir.Op]isa.AluOp{
	tir.OpAdd: isa.AluAdd, tir.OpSub: isa.AluSub, tir.OpMul: isa.AluMul,
	tir.OpDiv: isa.AluDiv, tir.OpRem: isa.AluRem, tir.OpAnd: isa.AluAnd,
	tir.OpOr: isa.AluOr, tir.OpXor: isa.AluXor, tir.OpShl: isa.AluShl,
	tir.OpShr: isa.AluShr,
}

var cmpFor = map[tir.Op]isa.CmpOp{
	tir.OpEq: isa.CmpEq, tir.OpNeq: isa.CmpNeq, tir.OpLt: isa.CmpLt,
	tir.OpLeq: isa.CmpLeq, tir.OpGt: isa.CmpGt, tir.OpGeq: isa.CmpGeq,
}

func (lw *lowerer) lowerInstr(in tir.Instr) error {
	cfg := lw.cfg
	switch {
	case in.Op == tir.OpConst:
		l := lw.alloc.locs[in.Dst]
		if !l.spilled {
			lw.emit(isa.Instr{Kind: isa.KMovImm, Dst: l.reg, Imm: in.Imm})
		} else {
			lw.emit(isa.Instr{Kind: isa.KMovImm, Dst: isa.R10, Imm: in.Imm})
			lw.writeBack(in.Dst, isa.R10)
		}
	case in.Op == tir.OpMov:
		lw.writeBack(in.Dst, lw.regOf(in.A, isa.R10))
	case in.Op.IsBinary():
		if alu, ok := aluFor[in.Op]; ok {
			lw.emit(isa.Instr{Kind: isa.KMovReg, Dst: isa.RAX, Src: lw.regOf(in.A, isa.R10)})
			lw.emit(isa.Instr{Kind: isa.KAlu, Alu: alu, Dst: isa.RAX, Src: lw.regOf(in.B, isa.R10)})
			lw.writeBack(in.Dst, isa.RAX)
		} else {
			a := lw.regOf(in.A, isa.R10)
			b := lw.regOf(in.B, isa.R11)
			lw.emit(isa.Instr{Kind: isa.KSet, Cmp: cmpFor[in.Op], Dst: isa.RAX, A: a, B: b})
			lw.writeBack(in.Dst, isa.RAX)
		}
	case in.Op == tir.OpLoad:
		lw.emit(isa.Instr{Kind: isa.KLoad, Dst: isa.RAX, Base: lw.regOf(in.A, isa.R10), Disp: in.Off})
		lw.writeBack(in.Dst, isa.RAX)
	case in.Op == tir.OpStore:
		addr := lw.regOf(in.A, isa.R10)
		val := lw.regOf(in.B, isa.R11)
		lw.emit(isa.Instr{Kind: isa.KStore, Base: addr, Disp: in.Off, Src: val})
	case in.Op == tir.OpAddrLocal:
		lw.emit(isa.Instr{Kind: isa.KLea, Dst: isa.RAX, Base: isa.RSP, Disp: lw.slotDisp(lw.localOff[in.Local])})
		lw.writeBack(in.Dst, isa.RAX)
	case in.Op == tir.OpAddrGlobal:
		lw.emit(isa.Instr{Kind: isa.KMovImm, Dst: isa.RAX, Sym: in.Sym})
		lw.writeBack(in.Dst, isa.RAX)
	case in.Op == tir.OpAddrFunc:
		sym := in.Sym
		if cfg.CPH {
			sym = TrampolineSym(in.Sym)
		}
		lw.emit(isa.Instr{Kind: isa.KMovImm, Dst: isa.RAX, Sym: sym})
		lw.writeBack(in.Dst, isa.RAX)
	case in.Op == tir.OpAlloc:
		lw.emitCall(in.Dst, StubMalloc, tir.NoReg, []tir.Reg{in.A}, false)
	case in.Op == tir.OpFree:
		lw.emitCall(tir.NoReg, StubFree, tir.NoReg, []tir.Reg{in.A}, false)
	case in.Op == tir.OpOutput:
		lw.emitCall(tir.NoReg, StubOutput, tir.NoReg, []tir.Reg{in.A}, false)
	case in.Op == tir.OpCall:
		if in.Tail {
			if len(in.Args) > len(isa.ArgRegs) {
				return fmt.Errorf("tail call with stack arguments unsupported")
			}
			lw.emitTailCall(in.Sym, in.A, in.Args)
			return nil
		}
		lw.emitCall(in.Dst, in.Sym, in.A, in.Args, false)
	case in.Op == tir.OpBr:
		idx := lw.emit(isa.Instr{Kind: isa.KJmp, LocalTarget: in.Target})
		lw.pendingJumps = append(lw.pendingJumps, idx)
	case in.Op == tir.OpCondBr:
		cond := lw.regOf(in.A, isa.R10)
		idx := lw.emit(isa.Instr{Kind: isa.KJnz, Src: cond, LocalTarget: in.Target})
		lw.pendingJumps = append(lw.pendingJumps, idx)
		idx = lw.emit(isa.Instr{Kind: isa.KJmp, LocalTarget: in.Else})
		lw.pendingJumps = append(lw.pendingJumps, idx)
	case in.Op == tir.OpRet:
		if lw.tailEmitted {
			// The TIR builder pairs every tail call with a Ret terminator;
			// the jump already left the function.
			lw.tailEmitted = false
			return nil
		}
		if in.HasArg {
			if r := lw.regOf(in.A, isa.RAX); r != isa.RAX {
				lw.emit(isa.Instr{Kind: isa.KMovReg, Dst: isa.RAX, Src: r})
			}
		}
		lw.emitEpilogue()
	default:
		return fmt.Errorf("unhandled op %v", in.Op)
	}
	return nil
}

// emitTailCall lowers a tail call: tear down the frame, then jump. No
// return address is pushed, so no BTRAs are inserted (Section 7.1's call
// counting ignores tail calls for the same reason).
func (lw *lowerer) emitTailCall(callee string, calleeReg tir.Reg, args []tir.Reg) {
	for i, a := range args {
		src := lw.regOf(a, isa.R10)
		lw.emit(isa.Instr{Kind: isa.KMovReg, Dst: isa.ArgRegs[i], Src: src})
	}
	if callee == "" {
		// The TIR builder only produces direct tail calls; reaching this
		// means a hand-built module used an unsupported combination.
		panic("codegen: indirect tail calls are not supported")
	}
	_ = calleeReg
	out := lw.out
	if out.FrameSize > 0 {
		lw.emit(isa.Instr{Kind: isa.KAluImm, Alu: isa.AluAdd, Dst: isa.RSP, Imm: uint64(out.FrameSize)})
	}
	for i := len(out.CalleeSaved) - 1; i >= 0; i-- {
		lw.emit(isa.Instr{Kind: isa.KPop, Dst: out.CalleeSaved[i]})
	}
	if out.PostOffset > 0 {
		lw.emit(isa.Instr{Kind: isa.KAluImm, Alu: isa.AluAdd, Dst: isa.RSP, Imm: uint64(out.PostOffset * 8)})
	}
	lw.emit(isa.Instr{Kind: isa.KJmp, Sym: callee, LocalTarget: -1})
	lw.spOffset = 0
	lw.tailEmitted = true
}
