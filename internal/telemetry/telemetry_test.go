package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestKeyRoundTrip(t *testing.T) {
	cases := []struct {
		name   string
		labels []string
		want   string
	}{
		{"plain", nil, "plain"},
		{"vm.instr", []string{"kind", "call"}, "vm.instr{kind=call}"},
		{"m", []string{"b", "2", "a", "1"}, "m{a=1,b=2}"}, // sorted by label key
		{"odd", []string{"k", "v", "dangling"}, "odd{k=v}"},
	}
	for _, c := range cases {
		got := Key(c.name, c.labels...)
		if got != c.want {
			t.Errorf("Key(%q, %v) = %q, want %q", c.name, c.labels, got, c.want)
		}
		name, labels := ParseKey(got)
		if name != c.name {
			t.Errorf("ParseKey(%q) name = %q, want %q", got, name, c.name)
		}
		n := len(c.labels) / 2
		if len(labels) != n {
			t.Errorf("ParseKey(%q) labels = %v, want %d entries", got, labels, n)
		}
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines; run
// under -race this is the data-race gate for the whole package.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("c").Inc()
				r.Counter("labeled", "worker", string(rune('a'+w))).Inc()
				r.Gauge("g").Add(1)
				r.Gauge("peak").SetMax(float64(i))
				r.Histogram("h", []float64{10, 100, 1000}).Observe(float64(i % 2000))
				r.Timer("t").Observe(time.Microsecond)
				if i%100 == 0 {
					_ = r.Snapshot() // concurrent snapshots must be safe too
				}
			}
		}(w)
	}
	wg.Wait()

	if got := r.Counter("c").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("g").Value(); got != workers*perWorker {
		t.Errorf("gauge sum = %v, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("peak").Value(); got != perWorker-1 {
		t.Errorf("gauge max = %v, want %d", got, perWorker-1)
	}
	if got := r.Histogram("h", nil).Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got := r.Timer("t").Count(); got != workers*perWorker {
		t.Errorf("timer count = %d, want %d", got, workers*perWorker)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 10, 100})
	// Bounds are inclusive upper bounds: x <= bound lands in the bucket.
	for _, x := range []float64{0, 0.5, 1} { // bucket 0: x <= 1
		h.Observe(x)
	}
	for _, x := range []float64{1.0001, 5, 10} { // bucket 1: 1 < x <= 10
		h.Observe(x)
	}
	for _, x := range []float64{11, 100} { // bucket 2: 10 < x <= 100
		h.Observe(x)
	}
	for _, x := range []float64{100.5, 1e9} { // overflow: x > 100
		h.Observe(x)
	}
	s := r.Snapshot().Histograms["h"]
	want := []uint64{3, 3, 2, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 10 {
		t.Errorf("count = %d, want 10", s.Count)
	}
	if s.Sum == 0 {
		t.Errorf("sum = 0, want > 0")
	}
	// Unsorted bounds are sorted at creation.
	h2 := r.Histogram("h2", []float64{100, 1, 10})
	h2.Observe(5)
	if got := r.Snapshot().Histograms["h2"]; got.Counts[1] != 1 {
		t.Errorf("unsorted-bounds histogram: counts = %v, want observation in bucket 1", got.Counts)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("vm.instr", "kind", "call").Add(42)
	r.Counter("rt.traps", "kind", "btra").Add(3)
	r.Gauge("vm.icache.hit_rate").Set(0.97)
	r.Histogram("attack.leak_words", []float64{64, 512, 4096}).Observe(1024)
	r.Timer("bench.experiment", "name", "table1").Observe(3 * time.Second)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round-trip unmarshal: %v", err)
	}
	orig := r.Snapshot()
	if len(back.Counters) != len(orig.Counters) {
		t.Errorf("counters: got %d, want %d", len(back.Counters), len(orig.Counters))
	}
	for k, v := range orig.Counters {
		if back.Counters[k] != v {
			t.Errorf("counter %q: got %d, want %d", k, back.Counters[k], v)
		}
	}
	if back.Gauges["vm.icache.hit_rate"] != 0.97 {
		t.Errorf("gauge lost in round trip: %v", back.Gauges)
	}
	h := back.Histograms["attack.leak_words"]
	if h.Count != 1 || len(h.Bounds) != 3 || len(h.Counts) != 4 || h.Counts[3] != 0 || h.Counts[2] != 1 {
		t.Errorf("histogram mangled in round trip: %+v", h)
	}
	tm := back.Timers[Key("bench.experiment", "name", "table1")]
	if tm.Count != 1 || tm.TotalNs != int64(3*time.Second) {
		t.Errorf("timer mangled in round trip: %+v", tm)
	}
	// Two snapshots of the same state serialize identically (map keys are
	// sorted by encoding/json).
	var buf2 bytes.Buffer
	if err := r.WriteJSON(&buf2); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if buf.String() != buf2.String() {
		t.Errorf("snapshot JSON is not deterministic")
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	var o *Observer
	// None of these may panic.
	r.Counter("c").Add(1)
	r.Gauge("g").Set(1)
	r.Gauge("g").SetMax(1)
	r.Histogram("h", []float64{1}).Observe(1)
	r.Timer("t").Observe(time.Second)
	r.Timer("t").Time()()
	o.Counter("c").Inc()
	o.Gauge("g").Add(1)
	o.Histogram("h", nil).Observe(0)
	o.Timer("t").Time()()
	o.Emit("kind", nil)
	Emit(nil, "kind", nil)
	if o.Enabled() || o.Profiling() {
		t.Errorf("nil observer reports enabled")
	}
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Errorf("nil registry snapshot not empty")
	}
	if r.Counter("c").Value() != 0 || r.Gauge("g").Value() != 0 {
		t.Errorf("nil metrics returned nonzero values")
	}
}

func TestJSONLTracer(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONLTracer(&buf)
	tr.Emit("trap", map[string]any{"trap": "btra", "pc": uint64(0x5555)})
	tr.Emit("fault", map[string]any{"addr": uint64(16)})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if ev.Seq != 1 || ev.Kind != "trap" || ev.Attrs["trap"] != "btra" {
		t.Errorf("unexpected event: %+v", ev)
	}
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil || ev.Seq != 2 {
		t.Errorf("line 1 bad: %v %+v", err, ev)
	}
}

func TestTopCounters(t *testing.T) {
	r := NewRegistry()
	r.Counter("vm.func.self_cycles", "fn", "hot").Add(1000)
	r.Counter("vm.func.self_cycles", "fn", "warm").Add(100)
	r.Counter("vm.func.self_cycles", "fn", "cold").Add(10)
	r.Counter("other").Add(99999)
	top := r.Snapshot().TopCounters("vm.func.self_cycles", 2)
	if len(top) != 2 {
		t.Fatalf("got %d entries, want 2", len(top))
	}
	if name, labels := ParseKey(top[0].Key); name != "vm.func.self_cycles" || labels["fn"] != "hot" {
		t.Errorf("top entry = %q, want fn=hot", top[0].Key)
	}
	if top[1].Value != 100 {
		t.Errorf("second entry = %v, want 100", top[1].Value)
	}
}
