package telemetry

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
)

// This file holds the flag-level plumbing shared by the cmd/ binaries: every
// harness exposes the same -metrics-out FILE, -trace FILE, -trace-format,
// -profile and -listen flags, and Sinks turns those values into an Observer
// plus the matching teardown (write the JSON snapshot, flush and close the
// trace file).

// Trace formats accepted by the -trace-format flag.
const (
	// TraceJSONL is the line-delimited event/span stream (the default).
	TraceJSONL = "jsonl"
	// TraceChrome is the Chrome trace_event JSON document, loadable in
	// chrome://tracing and Perfetto.
	TraceChrome = "chrome"
)

// SinkOptions are the resolved values of the standard telemetry flags.
type SinkOptions struct {
	// MetricsOut is the -metrics-out path ("" disables).
	MetricsOut string
	// TraceOut is the -trace path ("" disables).
	TraceOut string
	// TraceFormat selects the trace file format: TraceJSONL (default) or
	// TraceChrome.
	TraceFormat string
	// Profile enables the per-function cycle profiler.
	Profile bool
	// EnsureRegistry forces a live Observer (with a registry) even when no
	// file sink was requested — the ops endpoint needs one to serve
	// /metrics from.
	EnsureRegistry bool
	// Meta is the provenance header stamped into the -metrics-out snapshot
	// (go version, GOOS/GOARCH, CPU count, git describe); nil omits it.
	Meta map[string]string
	// FlightCap is the -flight value: per-process flight-recorder capacity
	// in events (0 disables). A nonzero cap forces a live Observer so every
	// process the run creates carries a recorder.
	FlightCap int
}

// Sinks owns the file sinks behind the standard telemetry flags. A Sinks
// whose flags were all disabled has a nil Obs, so the simulation runs on the
// uninstrumented path.
type Sinks struct {
	// Obs is the observer to hand to the experiment drivers. Nil when no
	// telemetry flag was given.
	Obs *Observer

	metrics *os.File
	meta    map[string]string
	trace   *os.File
	chrome  *ChromeTracer
}

// OpenSinks assembles an Observer from the standard flag values; see
// OpenSinksOpts for the full set. Kept for callers without a trace-format or
// listen flag.
func OpenSinks(metricsOut, traceOut string, profile bool) (*Sinks, error) {
	return OpenSinksOpts(SinkOptions{MetricsOut: metricsOut, TraceOut: traceOut, Profile: profile})
}

// OpenSinksOpts assembles an Observer from the standard flag values. Files
// are opened eagerly, so a bad path fails before any experiment runs rather
// than after minutes of work. The caller must Close the result.
func OpenSinksOpts(o SinkOptions) (*Sinks, error) {
	s := &Sinks{}
	if o.MetricsOut == "" && o.TraceOut == "" && !o.Profile && !o.EnsureRegistry && o.FlightCap <= 0 {
		return s, nil
	}
	switch o.TraceFormat {
	case "", TraceJSONL, TraceChrome:
	default:
		return nil, fmt.Errorf("telemetry: unknown trace format %q (want %s or %s)", o.TraceFormat, TraceJSONL, TraceChrome)
	}
	obs := &Observer{Registry: NewRegistry(), ProfileFuncs: o.Profile, FlightCap: o.FlightCap}
	if o.MetricsOut != "" {
		f, err := os.Create(o.MetricsOut)
		if err != nil {
			return nil, fmt.Errorf("telemetry: open metrics sink: %w", err)
		}
		s.metrics = f
		s.meta = o.Meta
	}
	if o.TraceOut != "" {
		f, err := os.Create(o.TraceOut)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("telemetry: open trace sink: %w", err)
		}
		s.trace = f
		if o.TraceFormat == TraceChrome {
			s.chrome = NewChromeTracer(f)
			obs.Tracer = s.chrome
			obs.Spans = s.chrome
		} else {
			jl := NewJSONLTracer(f)
			obs.Tracer = jl
			obs.Spans = jl
		}
	}
	s.Obs = obs
	return s, nil
}

// Close flushes the metrics snapshot to -metrics-out (if set), flushes the
// Chrome trace document, and closes both files. Every failure is reported:
// the individual errors are combined with errors.Join, so a failed metrics
// write is never masked by a failed trace close (or vice versa).
func (s *Sinks) Close() error {
	var errs []error
	if s.metrics != nil {
		if s.Obs != nil {
			if err := s.Obs.Registry.WriteJSONMeta(s.metrics, s.meta); err != nil {
				errs = append(errs, fmt.Errorf("telemetry: write metrics snapshot: %w", err))
			}
		}
		if err := s.metrics.Close(); err != nil {
			errs = append(errs, err)
		}
		s.metrics = nil
	}
	if s.trace != nil {
		if s.chrome != nil {
			if err := s.chrome.Close(); err != nil {
				errs = append(errs, fmt.Errorf("telemetry: flush chrome trace: %w", err))
			}
			s.chrome = nil
		}
		if err := s.trace.Close(); err != nil {
			errs = append(errs, err)
		}
		s.trace = nil
	}
	return errors.Join(errs...)
}

// WriteHotFunctions renders the top-n hot-function table accumulated in the
// registry by the -profile runs: self cycles (with share of the total), the
// cumulative cycles of the function and its callees, and call counts,
// aggregated across every profiled run that published into the registry.
func (s *Sinks) WriteHotFunctions(w io.Writer, n int) {
	if s.Obs == nil || s.Obs.Registry == nil {
		return
	}
	snap := s.Obs.Registry.Snapshot()
	top := snap.TopCounters("vm.func.self_cycles", n)
	if len(top) == 0 {
		return
	}
	var total float64
	for _, kv := range snap.TopCounters("vm.func.self_cycles", 0) {
		total += kv.Value
	}
	fmt.Fprintf(w, "hot functions (aggregated over profiled runs):\n")
	fmt.Fprintf(w, "%4s %-24s %14s %7s %14s %10s\n", "#", "function", "self-cycles", "self%", "cum-cycles", "calls")
	for i, kv := range top {
		_, labels := ParseKey(kv.Key)
		fn := labels["fn"]
		cum := snap.Counters[Key("vm.func.cum_cycles", "fn", fn)]
		calls := snap.Counters[Key("vm.func.calls", "fn", fn)]
		pct := 0.0
		if total > 0 {
			pct = kv.Value / total * 100
		}
		fmt.Fprintf(w, "%4d %-24s %14.0f %6.1f%% %14d %10d\n", i+1, fn, kv.Value, pct, cum, calls)
	}
}

// WriteFolded renders the folded-stack cycle profile accumulated in the
// registry by the -profile runs: one "frame;frame;frame cycles" line per
// distinct call path, aggregated across every profiled run — the input
// flamegraph.pl and speedscope consume directly.
func (s *Sinks) WriteFolded(w io.Writer) {
	if s.Obs == nil || s.Obs.Registry == nil {
		return
	}
	snap := s.Obs.Registry.Snapshot()
	totals := map[string]uint64{}
	paths := make([]string, 0, len(snap.Counters))
	for k, v := range snap.Counters {
		base, labels := ParseKey(k)
		if base != "vm.stack.self_cycles" || labels["stack"] == "" {
			continue
		}
		if _, seen := totals[labels["stack"]]; !seen {
			paths = append(paths, labels["stack"])
		}
		totals[labels["stack"]] += v
	}
	sort.Strings(paths)
	for _, p := range paths {
		fmt.Fprintf(w, "%s %d\n", p, totals[p])
	}
}
