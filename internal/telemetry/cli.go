package telemetry

import (
	"fmt"
	"io"
	"os"
)

// This file holds the flag-level plumbing shared by the cmd/ binaries: every
// harness exposes the same -metrics-out FILE, -trace FILE and -profile flags,
// and Sinks turns those three values into an Observer plus the matching
// teardown (write the JSON snapshot, close the trace file).

// Sinks owns the file sinks behind the standard telemetry flags. A Sinks
// whose flags were all disabled has a nil Obs, so the simulation runs on the
// uninstrumented path.
type Sinks struct {
	// Obs is the observer to hand to the experiment drivers. Nil when no
	// telemetry flag was given.
	Obs *Observer

	metrics *os.File
	trace   *os.File
}

// OpenSinks assembles an Observer from the standard flag values. metricsOut
// and traceOut are file paths ("" disables); profile enables the
// per-function cycle profiler (its output lands in the registry, so it
// implies one). Both files are opened eagerly, so a bad path fails before
// any experiment runs rather than after minutes of work. The caller must
// Close the result.
func OpenSinks(metricsOut, traceOut string, profile bool) (*Sinks, error) {
	s := &Sinks{}
	if metricsOut == "" && traceOut == "" && !profile {
		return s, nil
	}
	obs := &Observer{Registry: NewRegistry(), ProfileFuncs: profile}
	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			return nil, fmt.Errorf("telemetry: open metrics sink: %w", err)
		}
		s.metrics = f
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("telemetry: open trace sink: %w", err)
		}
		s.trace = f
		obs.Tracer = NewJSONLTracer(f)
	}
	s.Obs = obs
	return s, nil
}

// Close flushes the metrics snapshot to -metrics-out (if set) and closes the
// trace file. It returns the first error encountered.
func (s *Sinks) Close() error {
	var first error
	if s.metrics != nil {
		if s.Obs != nil {
			if err := s.Obs.Registry.WriteJSON(s.metrics); err != nil {
				first = err
			}
		}
		if err := s.metrics.Close(); err != nil && first == nil {
			first = err
		}
		s.metrics = nil
	}
	if s.trace != nil {
		if err := s.trace.Close(); err != nil && first == nil {
			first = err
		}
		s.trace = nil
	}
	return first
}

// WriteHotFunctions renders the top-n hot-function table accumulated in the
// registry by the -profile runs: self cycles (with share of the total), the
// cumulative cycles of the function and its callees, and call counts,
// aggregated across every profiled run that published into the registry.
func (s *Sinks) WriteHotFunctions(w io.Writer, n int) {
	if s.Obs == nil || s.Obs.Registry == nil {
		return
	}
	snap := s.Obs.Registry.Snapshot()
	top := snap.TopCounters("vm.func.self_cycles", n)
	if len(top) == 0 {
		return
	}
	var total float64
	for _, kv := range snap.TopCounters("vm.func.self_cycles", 0) {
		total += kv.Value
	}
	fmt.Fprintf(w, "hot functions (aggregated over profiled runs):\n")
	fmt.Fprintf(w, "%4s %-24s %14s %7s %14s %10s\n", "#", "function", "self-cycles", "self%", "cum-cycles", "calls")
	for i, kv := range top {
		_, labels := ParseKey(kv.Key)
		fn := labels["fn"]
		cum := snap.Counters[Key("vm.func.cum_cycles", "fn", fn)]
		calls := snap.Counters[Key("vm.func.calls", "fn", fn)]
		pct := 0.0
		if total > 0 {
			pct = kv.Value / total * 100
		}
		fmt.Fprintf(w, "%4d %-24s %14.0f %6.1f%% %14d %10d\n", i+1, fn, kv.Value, pct, cum, calls)
	}
}
