package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file renders a registry snapshot in the Prometheus text exposition
// format (version 0.0.4), the format the ops endpoint's /metrics serves.
// Metric keys like "exec.cache.hits" become "exec_cache_hits"; label sets
// survive unchanged. Families are emitted in sorted order with one # TYPE
// line each, so the output is deterministic for a given snapshot and any
// Prometheus-compatible scraper (or promtool check metrics) accepts it.

// WritePrometheus writes the snapshot in Prometheus text exposition format.
func WritePrometheus(w io.Writer, s *Snapshot) error {
	if s == nil {
		return nil
	}
	pw := &promWriter{w: w}

	pw.family(countersOf(s.Counters), "counter", func(key string, line *strings.Builder) {
		fmt.Fprintf(line, " %d\n", s.Counters[key])
	})
	pw.family(countersOf(s.Gauges), "gauge", func(key string, line *strings.Builder) {
		fmt.Fprintf(line, " %v\n", s.Gauges[key])
	})
	pw.timers(s)
	pw.histograms(s)
	return pw.err
}

type promWriter struct {
	w   io.Writer
	err error
}

func (pw *promWriter) printf(format string, args ...any) {
	if pw.err != nil {
		return
	}
	_, pw.err = fmt.Fprintf(pw.w, format, args...)
}

// countersOf groups metric keys by family (the sanitized base name).
func countersOf[V any](m map[string]V) map[string][]string {
	fams := make(map[string][]string)
	for k := range m {
		base, _ := ParseKey(k)
		fams[promName(base)] = append(fams[promName(base)], k)
	}
	return fams
}

// family renders one metric family per sanitized base name: the # TYPE
// header, then every series sorted by key, with the value appended by emit.
func (pw *promWriter) family(fams map[string][]string, typ string, emit func(key string, line *strings.Builder)) {
	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, fam := range names {
		keys := fams[fam]
		sort.Strings(keys)
		pw.printf("# TYPE %s %s\n", fam, typ)
		for _, k := range keys {
			_, labels := ParseKey(k)
			var line strings.Builder
			line.WriteString(fam)
			line.WriteString(promLabels(labels))
			emit(k, &line)
			pw.printf("%s", line.String())
		}
	}
}

// timers render as three series per timer: accumulated seconds, observation
// count, and maximum observed seconds.
func (pw *promWriter) timers(s *Snapshot) {
	type sub struct {
		suffix, typ string
		value       func(TimerSnapshot) string
	}
	subs := []sub{
		{"_seconds_total", "counter", func(t TimerSnapshot) string { return fmt.Sprintf("%v", float64(t.TotalNs)/1e9) }},
		{"_count", "counter", func(t TimerSnapshot) string { return fmt.Sprintf("%d", t.Count) }},
		{"_max_seconds", "gauge", func(t TimerSnapshot) string { return fmt.Sprintf("%v", float64(t.MaxNs)/1e9) }},
	}
	fams := countersOf(s.Timers)
	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, fam := range names {
		keys := fams[fam]
		sort.Strings(keys)
		for _, sb := range subs {
			pw.printf("# TYPE %s%s %s\n", fam, sb.suffix, sb.typ)
			for _, k := range keys {
				_, labels := ParseKey(k)
				pw.printf("%s%s%s %s\n", fam, sb.suffix, promLabels(labels), sb.value(s.Timers[k]))
			}
		}
	}
}

// histograms render in the native Prometheus histogram form: cumulative
// _bucket series with le labels (including +Inf), plus _sum and _count.
func (pw *promWriter) histograms(s *Snapshot) {
	fams := countersOf(s.Histograms)
	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, fam := range names {
		keys := fams[fam]
		sort.Strings(keys)
		pw.printf("# TYPE %s histogram\n", fam)
		for _, k := range keys {
			_, labels := ParseKey(k)
			h := s.Histograms[k]
			cum := uint64(0)
			for i, bound := range h.Bounds {
				cum += h.Counts[i]
				pw.printf("%s_bucket%s %d\n", fam, promLabels(labels, "le", fmt.Sprintf("%v", bound)), cum)
			}
			pw.printf("%s_bucket%s %d\n", fam, promLabels(labels, "le", "+Inf"), h.Count)
			pw.printf("%s_sum%s %v\n", fam, promLabels(labels), h.Sum)
			pw.printf("%s_count%s %d\n", fam, promLabels(labels), h.Count)
		}
	}
}

// promName sanitizes a metric base name into the Prometheus charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabels renders a label block ("" when empty). extra holds appended
// key/value pairs (the histogram le label).
func promLabels(labels map[string]string, extra ...string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i := 0; i+1 < len(extra); i += 2 {
		keys = append(keys, extra[i])
	}
	if len(keys) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		v, ok := labels[k]
		if !ok {
			for j := 0; j+1 < len(extra); j += 2 {
				if extra[j] == k {
					v = extra[j+1]
				}
			}
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(promName(k))
		b.WriteString(`="`)
		b.WriteString(promEscape(v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}
