package telemetry

import "sort"

// FlightKind classifies one control-flow event captured by the flight
// recorder: the coarse event vocabulary a hardware last-branch-record or
// processor-trace buffer would expose, restricted to what the simulated ISA
// can observe cheaply at block boundaries.
type FlightKind uint8

const (
	// FlightCall: a direct call transferred control.
	FlightCall FlightKind = iota + 1
	// FlightCallInd: an indirect call transferred control (forward-edge
	// events — the ones AOCR gadget chains must forge).
	FlightCallInd
	// FlightRet: a return transferred control.
	FlightRet
	// FlightJump: a jump or taken conditional branch transferred control.
	FlightJump
	// FlightLoad: a scalar load touched an address within one page of a
	// BTDP guard page — the near-miss probes the paper's detection model
	// reasons about.
	FlightLoad
	// FlightProbe: an attacker-surface access (the attack framework's
	// arbitrary-read/-write oracle), recorded from outside the VM.
	FlightProbe
	// FlightFault: a memory fault stopped execution.
	FlightFault
	// FlightTrap: a booby trap detonated.
	FlightTrap
)

func (k FlightKind) String() string {
	switch k {
	case FlightCall:
		return "call"
	case FlightCallInd:
		return "call-ind"
	case FlightRet:
		return "ret"
	case FlightJump:
		return "jump"
	case FlightLoad:
		return "load"
	case FlightProbe:
		return "probe"
	case FlightFault:
		return "fault"
	case FlightTrap:
		return "trap"
	}
	return "?"
}

// FlightEvent is one recorded control-flow event. PC is the transferring
// instruction (or the probe source), To the destination (branch target,
// loaded/probed address), Instr the process's retired-instruction count at
// record time — the deterministic timestamp incidents correlate on.
type FlightEvent struct {
	Kind  FlightKind
	PC    uint64
	To    uint64
	Instr uint64
}

// FlightRecorder is a fixed-size, allocation-free ring of recent
// control-flow events — the software analogue of a flight data recorder:
// always armed, overwritten continuously, and snapshotted only when
// something detonates. Record is a store-and-increment on a
// power-of-two-masked buffer so the VM dispatch loops can call it at block
// boundaries without measurable cost; all methods are nil-safe so an
// unobserved process pays nothing.
//
// The recorder is owned by a single process and is not safe for concurrent
// use — the same single-writer discipline as the VM it instruments.
type FlightRecorder struct {
	buf  []FlightEvent
	mask uint64
	head uint64 // total events ever recorded; next slot is head&mask

	// Guard-zone geometry for NearGuard: sorted page base addresses plus a
	// [lo,hi) prefilter spanning all guards ± one page.
	guards   []uint64
	pageSize uint64
	guardLo  uint64
	guardHi  uint64
}

// NewFlightRecorder returns a recorder retaining the most recent cap events
// (rounded up to a power of two, minimum 16). cap <= 0 returns nil — the
// disabled recorder.
func NewFlightRecorder(cap int) *FlightRecorder {
	if cap <= 0 {
		return nil
	}
	n := 16
	for n < cap {
		n <<= 1
	}
	return &FlightRecorder{buf: make([]FlightEvent, n), mask: uint64(n - 1)}
}

// Record appends one event, overwriting the oldest when the ring is full.
// Nil-safe and allocation-free.
func (r *FlightRecorder) Record(k FlightKind, pc, to, instr uint64) {
	if r == nil {
		return
	}
	r.buf[r.head&r.mask] = FlightEvent{Kind: k, PC: pc, To: to, Instr: instr}
	r.head++
}

// ArmGuards installs the guard-page geometry NearGuard tests against:
// pages are page-base addresses (copied and sorted), pageSize their size.
// Nil-safe; arming with no pages disarms NearGuard.
func (r *FlightRecorder) ArmGuards(pages []uint64, pageSize uint64) {
	if r == nil {
		return
	}
	if len(pages) == 0 || pageSize == 0 {
		r.guards, r.guardLo, r.guardHi, r.pageSize = nil, 0, 0, 0
		return
	}
	g := append([]uint64(nil), pages...)
	sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
	r.guards = g
	r.pageSize = pageSize
	r.guardLo = g[0] - pageSize
	r.guardHi = g[len(g)-1] + 2*pageSize
}

// NearGuard reports whether addr falls within one page of an armed guard
// page (the guard page itself, or either adjacent page). The common case —
// an address nowhere near the guard zone — is two compares; only addresses
// inside the armed envelope pay the binary search. Nil-safe.
func (r *FlightRecorder) NearGuard(addr uint64) bool {
	if r == nil || len(r.guards) == 0 {
		return false
	}
	if addr < r.guardLo || addr >= r.guardHi {
		return false
	}
	page := addr - addr%r.pageSize
	for _, cand := range [3]uint64{page - r.pageSize, page, page + r.pageSize} {
		i := sort.Search(len(r.guards), func(i int) bool { return r.guards[i] >= cand })
		if i < len(r.guards) && r.guards[i] == cand {
			return true
		}
	}
	return false
}

// Events returns the retained events, oldest first. Nil-safe (returns nil).
func (r *FlightRecorder) Events() []FlightEvent {
	if r == nil || r.head == 0 {
		return nil
	}
	n := r.head
	if n > uint64(len(r.buf)) {
		n = uint64(len(r.buf))
	}
	out := make([]FlightEvent, 0, n)
	for i := r.head - n; i < r.head; i++ {
		out = append(out, r.buf[i&r.mask])
	}
	return out
}

// Total returns how many events were ever recorded (including overwritten
// ones). Nil-safe.
func (r *FlightRecorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.head
}

// Cap returns the ring capacity. Nil-safe.
func (r *FlightRecorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Reset clears the recorded events, keeping the armed guard geometry.
// Nil-safe.
func (r *FlightRecorder) Reset() {
	if r == nil {
		return
	}
	r.head = 0
	for i := range r.buf {
		r.buf[i] = FlightEvent{}
	}
}
