package telemetry

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Sinks.Close must report every teardown failure, not just the first: a
// failed metrics write may never mask a failed trace flush (or vice versa).
// Closing the files out from under the sinks makes both halves fail, and the
// joined error must mention each.
func TestSinksCloseJoinsErrors(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSinksOpts(SinkOptions{
		MetricsOut:  filepath.Join(dir, "m.json"),
		TraceOut:    filepath.Join(dir, "t.json"),
		TraceFormat: TraceChrome,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Obs.Counter("x").Inc()
	s.Obs.StartSpan("root", 1).End()
	// Sabotage both files so the snapshot write, the chrome flush, and both
	// closes all fail.
	if err := s.metrics.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.trace.Close(); err != nil {
		t.Fatal(err)
	}

	err = s.Close()
	if err == nil {
		t.Fatal("Close succeeded with both files sabotaged")
	}
	msg := err.Error()
	for _, want := range []string{"metrics snapshot", "chrome trace"} {
		if !strings.Contains(msg, want) {
			t.Errorf("joined error %q does not mention %q", msg, want)
		}
	}
	// Idempotent: the fields are cleared, so a second Close is a no-op.
	if err := s.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// The happy path writes both sinks and a second Close stays a no-op.
func TestSinksCloseWritesFiles(t *testing.T) {
	dir := t.TempDir()
	mpath := filepath.Join(dir, "m.json")
	tpath := filepath.Join(dir, "t.chrome.json")
	s, err := OpenSinksOpts(SinkOptions{MetricsOut: mpath, TraceOut: tpath, TraceFormat: TraceChrome})
	if err != nil {
		t.Fatal(err)
	}
	s.Obs.Counter("x").Inc()
	s.Obs.StartSpan("root", 1).End()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{mpath, tpath} {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(b) == 0 {
			t.Errorf("%s is empty after Close", p)
		}
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}
