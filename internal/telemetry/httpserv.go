package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"
)

// OpsServer is the live ops endpoint behind the -listen flag: while a long
// experiment run is in flight it serves
//
//	/metrics   — the telemetry registry in Prometheus text exposition format
//	/healthz   — liveness ("ok")
//	/progress  — a JSON progress snapshot from the harness (cells done/total,
//	             in-flight cells with their current span, cache hit rate, ETA)
//	/debug/pprof/* — the standard Go profiler endpoints
//
// The server is read-only and write-beside like the rest of the package:
// handlers only snapshot state, so scraping can never perturb a run.
type OpsServer struct {
	lis      net.Listener
	srv      *http.Server
	done     chan struct{}
	serveErr error
}

// OpsSources names the data sources behind the ops endpoints. Registry
// backs /metrics; each func() any backs one JSON endpoint (nil funcs serve
// "{}"). The funcs keep this package dependency-free: the harness wires in
// exec progress, the incident log and live alert evaluation as closures, so
// telemetry never imports the packages it observes.
type OpsSources struct {
	Registry  *Registry
	Progress  func() any // /progress — exec engine progress snapshot
	Incidents func() any // /incidents — incident timeline + campaign summaries
	Alerts    func() any // /alerts — live alert-rule evaluation
	// Series backs /timeseries (nil serves an empty snapshot) and feeds the
	// /dashboard sparklines.
	Series *SeriesSet
	// Health backs /healthz: a non-empty return is the degradation reason
	// and turns the endpoint into 503 "degraded: <reason>". Nil (or an
	// empty return) keeps the plain 200 "ok" liveness probe.
	Health func() string
}

// ServeOps starts the ops endpoint on addr (e.g. ":8642" or "127.0.0.1:0").
// reg backs /metrics (nil serves an empty exposition); progress backs
// /progress (nil serves "{}"; the returned value is marshaled as JSON).
// It is ServeOpsSources with only the pre-PR-8 sources wired.
func ServeOps(addr string, reg *Registry, progress func() any) (*OpsServer, error) {
	return ServeOpsSources(addr, OpsSources{Registry: reg, Progress: progress})
}

// jsonSource returns a handler serving src's value as indented JSON.
// Marshal happens before writing headers: a snapshot carrying a non-finite
// float (+Inf ETA, NaN quantile and friends) is not valid JSON, and
// encoding straight into the ResponseWriter would send a 200 with a
// silently truncated body. Sources are expected to pre-render such values
// (see FormatETA); if one slips through, report it.
func jsonSource(src func() any) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var v any = struct{}{}
		if src != nil {
			v = src()
		}
		body, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprintf(w, "{\"error\":%q}\n", err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(body, '\n'))
	}
}

// ServeOpsSources starts the ops endpoint with the full source set:
// /metrics, /healthz (degradation-aware when Health is wired), /progress,
// /incidents (the security observatory's incident timeline), /alerts (live
// alert-rule evaluation), /timeseries (windowed ring snapshots; ?series=
// filters by name or prefix, ?last=N trims each series to its newest N
// points), /dashboard (the self-contained live observatory page) and pprof. The
// listener is opened eagerly so a bad address fails before the run starts.
// The caller must Close the server; Close is graceful and waits for the
// serve goroutine, so no goroutine outlives it.
func ServeOpsSources(addr string, src OpsSources) (*OpsServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: ops listen %s: %w", addr, err)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if src.Health != nil {
			if reason := src.Health(); reason != "" {
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintln(w, "degraded: "+reason)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, src.Registry.Snapshot())
	})
	mux.HandleFunc("/progress", jsonSource(src.Progress))
	mux.HandleFunc("/incidents", jsonSource(src.Incidents))
	mux.HandleFunc("/alerts", jsonSource(src.Alerts))
	mux.HandleFunc("/timeseries", func(w http.ResponseWriter, r *http.Request) {
		var filter []string
		if q := r.URL.Query().Get("series"); q != "" {
			filter = strings.Split(q, ",")
		}
		last := 0
		if q := r.URL.Query().Get("last"); q != "" {
			if n, err := strconv.Atoi(q); err == nil && n > 0 {
				last = n
			}
		}
		// Snapshot is nil-safe: an unwired source serves the empty set.
		jsonSource(func() any { return src.Series.Snapshot(filter, last) })(w, r)
	})
	mux.HandleFunc("/dashboard", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write([]byte(DashboardHTML))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &OpsServer{
		lis:  lis,
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(lis); err != nil && err != http.ErrServerClosed {
			s.serveErr = err
		}
	}()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *OpsServer) Addr() string {
	if s == nil {
		return ""
	}
	return s.lis.Addr().String()
}

// URL returns the server's base URL.
func (s *OpsServer) URL() string {
	if s == nil {
		return ""
	}
	return "http://" + s.Addr()
}

// Close shuts the server down gracefully — stop accepting, drain in-flight
// requests, close idle connections — and waits for the serve goroutine to
// exit, so a completed run leaves no lingering goroutines behind. Safe on a
// nil receiver and idempotent.
func (s *OpsServer) Close() error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	<-s.done
	if err == nil {
		err = s.serveErr
	}
	return err
}
