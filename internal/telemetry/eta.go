package telemetry

import (
	"math"
	"time"
)

// FormatETA renders an estimated-time-remaining in milliseconds for humans
// and JSON: "n/a" when there is no meaningful estimate — a negative
// sentinel, NaN, or an infinity, the values a zero-completed-cells
// extrapolation produces — and a seconds-rounded duration string otherwise.
// Keeping the non-finite cases out of the payload matters beyond cosmetics:
// encoding/json refuses NaN/Inf, so an unguarded ETA turns the whole
// /progress response into an error.
func FormatETA(ms float64) string {
	if math.IsNaN(ms) || math.IsInf(ms, 0) || ms < 0 {
		return "n/a"
	}
	d := time.Duration(ms) * time.Millisecond
	if d >= time.Second {
		d = d.Round(time.Second)
	}
	return d.String()
}
