package telemetry

import (
	"os"
	"strings"
	"testing"
)

// The dashboard page is a committed artifact: any change to it must be
// deliberate, reviewed against the golden copy (go test -run Dashboard
// -update regenerates it).
func TestDashboardGolden(t *testing.T) {
	const path = "testdata/dashboard.golden.html"
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(DashboardHTML), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file: %v (regenerate with -update)", err)
	}
	if string(want) != DashboardHTML {
		t.Fatalf("DashboardHTML differs from %s — rerun with -update and review the diff", path)
	}
}

// Structural invariants the golden comparison alone would not explain when
// they break: the page stays self-contained and backtick-free (it lives in a
// Go raw string literal), polls every ops endpoint, and keeps a dark-mode
// palette.
func TestDashboardInvariants(t *testing.T) {
	page := DashboardHTML
	if strings.Contains(page, "`") {
		t.Error("dashboard contains a backtick — impossible inside the Go raw string literal that holds it")
	}
	for _, want := range []string{
		"<!DOCTYPE html>",
		"prefers-color-scheme: dark",
		`getJSON("/timeseries`,
		`getJSON("/progress")`,
		`getJSON("/alerts")`,
		`getText("/healthz")`,
		"id=\"alerts\"",
		"id=\"variants\"",
		"id=\"health\"",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
}
