package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

func opsGet(t *testing.T, client *http.Client, url string) (int, string) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestOpsServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("exec.cache.hits").Add(7)
	reg.Counter("rt.traps", "kind", "btra").Add(3)
	reg.Gauge("exec.pool.workers").Set(8)
	reg.Histogram("cell.ms", []float64{1, 10}, "phase", "build").Observe(4)
	reg.Timer("exec.cell").Observe(1500 * time.Millisecond)

	progress := func() any {
		return map[string]any{"done": 3, "total": 10}
	}
	s, err := ServeOps("127.0.0.1:0", reg, progress)
	if err != nil {
		t.Fatalf("ServeOps: %v", err)
	}
	defer s.Close()
	client := &http.Client{Timeout: 5 * time.Second}
	defer client.CloseIdleConnections()

	if code, body := opsGet(t, client, s.URL()+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}

	code, body := opsGet(t, client, s.URL()+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE exec_cache_hits counter",
		"exec_cache_hits 7",
		`rt_traps{kind="btra"} 3`,
		"exec_pool_workers 8",
		`cell_ms_bucket{phase="build",le="10"} 1`,
		`cell_ms_bucket{phase="build",le="+Inf"} 1`,
		`cell_ms_sum{phase="build"} 4`,
		"exec_cell_seconds_total 1.5",
		"exec_cell_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}
	// Structural validity of the exposition: every non-comment line is
	// "name{labels} value" with a parsable float value.
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("metrics line without value: %q", line)
		}
		var f float64
		if _, err := fmt.Sscanf(line[sp+1:], "%g", &f); err != nil {
			t.Errorf("metrics line value unparsable: %q", line)
		}
	}

	code, body = opsGet(t, client, s.URL()+"/progress")
	if code != 200 {
		t.Fatalf("/progress = %d", code)
	}
	var got map[string]any
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("/progress not JSON: %v\n%s", err, body)
	}
	if got["done"] != float64(3) || got["total"] != float64(10) {
		t.Errorf("/progress = %v", got)
	}

	if code, body := opsGet(t, client, s.URL()+"/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Errorf("/debug/pprof/cmdline = %d %q", code, body)
	}
}

func TestOpsServerNilBackends(t *testing.T) {
	s, err := ServeOps("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatalf("ServeOps: %v", err)
	}
	defer s.Close()
	client := &http.Client{Timeout: 5 * time.Second}
	defer client.CloseIdleConnections()
	if code, _ := opsGet(t, client, s.URL()+"/metrics"); code != 200 {
		t.Errorf("/metrics with nil registry = %d", code)
	}
	if code, body := opsGet(t, client, s.URL()+"/progress"); code != 200 || !strings.Contains(body, "{}") {
		t.Errorf("/progress with nil source = %d %q", code, body)
	}
}

func TestOpsServerBadAddressFailsEagerly(t *testing.T) {
	if _, err := ServeOps("127.0.0.1:99999", nil, nil); err == nil {
		t.Fatal("expected eager listen error for bad address")
	}
}

// TestOpsServerShutdownLeaksNoGoroutines is the lingering-goroutine gate:
// after Close returns — even with requests served in between — the process
// goroutine count must return to its baseline. Close is graceful (drains
// in-flight requests) and waits for the serve goroutine.
func TestOpsServerShutdownLeaksNoGoroutines(t *testing.T) {
	// Warm up lazy runtime/net pools so they do not count against the
	// baseline.
	s0, err := ServeOps("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatalf("ServeOps warmup: %v", err)
	}
	client := &http.Client{Timeout: 5 * time.Second}
	opsGet(t, client, s0.URL()+"/healthz")
	client.CloseIdleConnections()
	if err := s0.Close(); err != nil {
		t.Fatalf("warmup close: %v", err)
	}

	baseline := runtime.NumGoroutine()
	reg := NewRegistry()
	s, err := ServeOps("127.0.0.1:0", reg, func() any { return map[string]int{"done": 1} })
	if err != nil {
		t.Fatalf("ServeOps: %v", err)
	}
	for i := 0; i < 3; i++ {
		opsGet(t, client, s.URL()+"/metrics")
		opsGet(t, client, s.URL()+"/progress")
	}
	client.CloseIdleConnections()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	// Goroutine teardown is asynchronous at the margins (connection
	// goroutines unwind after Shutdown returns); poll briefly before
	// declaring a leak.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, after close %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// The observatory endpoints: /incidents and /alerts serve whatever their
// source closures return, as JSON; nil sources degrade to "{}" like
// /progress; a source yielding unmarshalable values (NaN) reports a 500 with
// an error body instead of a truncated response.
func TestOpsServerSourcesEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("rt.traps", "kind", "btra").Add(2)
	s, err := ServeOpsSources("127.0.0.1:0", OpsSources{
		Registry:  reg,
		Incidents: func() any { return map[string]any{"total": 2, "campaigns": []string{"t3"}} },
		Alerts: func() any {
			rules, perr := ParseAlertRules(strings.NewReader("traps: count(rt.traps) >= 1\n"))
			if perr != nil {
				t.Error(perr)
			}
			return EvalAlerts(rules, reg.Snapshot(), time.Second)
		},
	})
	if err != nil {
		t.Fatalf("ServeOpsSources: %v", err)
	}
	defer s.Close()
	client := &http.Client{Timeout: 5 * time.Second}
	defer client.CloseIdleConnections()

	code, body := opsGet(t, client, s.URL()+"/incidents")
	if code != 200 {
		t.Fatalf("/incidents = %d", code)
	}
	var inc map[string]any
	if err := json.Unmarshal([]byte(body), &inc); err != nil {
		t.Fatalf("/incidents not JSON: %v\n%s", err, body)
	}
	if inc["total"] != float64(2) {
		t.Errorf("/incidents = %v", inc)
	}

	code, body = opsGet(t, client, s.URL()+"/alerts")
	if code != 200 {
		t.Fatalf("/alerts = %d", code)
	}
	var states []AlertState
	if err := json.Unmarshal([]byte(body), &states); err != nil {
		t.Fatalf("/alerts not JSON: %v\n%s", err, body)
	}
	if len(states) != 1 || !states[0].Firing {
		t.Errorf("/alerts = %+v", states)
	}

	// /progress was not wired: it must still answer, with the empty object.
	if code, body := opsGet(t, client, s.URL()+"/progress"); code != 200 || !strings.Contains(body, "{}") {
		t.Errorf("/progress with nil source = %d %q", code, body)
	}
}

// /healthz reports degraded state (503 with the reason) whenever the wired
// Health source returns a non-empty string, and recovers to 200 "ok" when
// the condition clears.
func TestOpsServerHealthzDegraded(t *testing.T) {
	reason := "2 variant(s) quarantined, heal in flight"
	s, err := ServeOpsSources("127.0.0.1:0", OpsSources{
		Health: func() string { return reason },
	})
	if err != nil {
		t.Fatalf("ServeOpsSources: %v", err)
	}
	defer s.Close()
	client := &http.Client{Timeout: 5 * time.Second}
	defer client.CloseIdleConnections()

	code, body := opsGet(t, client, s.URL()+"/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "degraded: 2 variant(s) quarantined") {
		t.Errorf("/healthz while degraded = %d %q", code, body)
	}
	reason = ""
	if code, body := opsGet(t, client, s.URL()+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz after recovery = %d %q", code, body)
	}
}

func TestOpsServerTimeseriesEndpoint(t *testing.T) {
	ss := NewSeriesSet(8, nil)
	for i := 0; i < 5; i++ {
		ss.Sample(float64(i), "fleet.throughput.rps", float64(100+i))
		ss.Sample(float64(i), "fleet.sojourn.p99", 0.001*float64(i))
	}
	s, err := ServeOpsSources("127.0.0.1:0", OpsSources{Series: ss})
	if err != nil {
		t.Fatalf("ServeOpsSources: %v", err)
	}
	defer s.Close()
	client := &http.Client{Timeout: 5 * time.Second}
	defer client.CloseIdleConnections()

	decode := func(body string) SeriesSnapshot {
		t.Helper()
		var snap SeriesSnapshot
		if err := json.Unmarshal([]byte(body), &snap); err != nil {
			t.Fatalf("/timeseries not JSON: %v\n%s", err, body)
		}
		return snap
	}

	code, body := opsGet(t, client, s.URL()+"/timeseries")
	if code != 200 {
		t.Fatalf("/timeseries = %d", code)
	}
	if snap := decode(body); len(snap.Series) != 2 || snap.Now != 4 {
		t.Errorf("/timeseries = %+v", snap)
	}

	_, body = opsGet(t, client, s.URL()+"/timeseries?series=fleet.sojourn.p99&last=2")
	snap := decode(body)
	if len(snap.Series) != 1 || snap.Series[0].Name != "fleet.sojourn.p99" {
		t.Fatalf("filtered /timeseries = %+v", snap)
	}
	if pts := snap.Series[0].Points; len(pts) != 2 || pts[0][0] != 3 || pts[1][0] != 4 {
		t.Errorf("last=2 points = %v", pts)
	}

	// Bad ?last= values are ignored, not an error.
	if code, _ := opsGet(t, client, s.URL()+"/timeseries?last=banana"); code != 200 {
		t.Errorf("/timeseries?last=banana = %d", code)
	}
}

// An unwired Series source serves the empty snapshot, not a panic or a 500 —
// the same degrade-to-empty contract as /progress.
func TestOpsServerTimeseriesNilSource(t *testing.T) {
	s, err := ServeOpsSources("127.0.0.1:0", OpsSources{})
	if err != nil {
		t.Fatalf("ServeOpsSources: %v", err)
	}
	defer s.Close()
	client := &http.Client{Timeout: 5 * time.Second}
	defer client.CloseIdleConnections()
	code, body := opsGet(t, client, s.URL()+"/timeseries")
	if code != 200 {
		t.Fatalf("/timeseries with nil source = %d", code)
	}
	var snap SeriesSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil || len(snap.Series) != 0 {
		t.Errorf("/timeseries with nil source = %q (err %v)", body, err)
	}
}

func TestOpsServerDashboard(t *testing.T) {
	s, err := ServeOpsSources("127.0.0.1:0", OpsSources{})
	if err != nil {
		t.Fatalf("ServeOpsSources: %v", err)
	}
	defer s.Close()
	client := &http.Client{Timeout: 5 * time.Second}
	defer client.CloseIdleConnections()

	resp, err := client.Get(s.URL() + "/dashboard")
	if err != nil {
		t.Fatalf("GET /dashboard: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		t.Fatalf("/dashboard = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Errorf("/dashboard content type = %q", ct)
	}
	page := string(body)
	// Self-contained: no external scripts, stylesheets or images.
	for _, banned := range []string{"src=\"http", "href=\"http", "<script src", "<link rel"} {
		if strings.Contains(page, banned) {
			t.Errorf("/dashboard references an external asset (%q)", banned)
		}
	}
	for _, want := range []string{"/timeseries", "/progress", "/alerts", "/healthz"} {
		if !strings.Contains(page, want) {
			t.Errorf("/dashboard does not poll %s", want)
		}
	}
}

func TestOpsServerSourceMarshalError(t *testing.T) {
	s, err := ServeOpsSources("127.0.0.1:0", OpsSources{
		Incidents: func() any { return map[string]float64{"bad": math.NaN()} },
	})
	if err != nil {
		t.Fatalf("ServeOpsSources: %v", err)
	}
	defer s.Close()
	client := &http.Client{Timeout: 5 * time.Second}
	defer client.CloseIdleConnections()
	code, body := opsGet(t, client, s.URL()+"/incidents")
	if code != http.StatusInternalServerError || !strings.Contains(body, "error") {
		t.Errorf("/incidents with NaN source = %d %q", code, body)
	}
}
