package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

func opsGet(t *testing.T, client *http.Client, url string) (int, string) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestOpsServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("exec.cache.hits").Add(7)
	reg.Counter("rt.traps", "kind", "btra").Add(3)
	reg.Gauge("exec.pool.workers").Set(8)
	reg.Histogram("cell.ms", []float64{1, 10}, "phase", "build").Observe(4)
	reg.Timer("exec.cell").Observe(1500 * time.Millisecond)

	progress := func() any {
		return map[string]any{"done": 3, "total": 10}
	}
	s, err := ServeOps("127.0.0.1:0", reg, progress)
	if err != nil {
		t.Fatalf("ServeOps: %v", err)
	}
	defer s.Close()
	client := &http.Client{Timeout: 5 * time.Second}
	defer client.CloseIdleConnections()

	if code, body := opsGet(t, client, s.URL()+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}

	code, body := opsGet(t, client, s.URL()+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE exec_cache_hits counter",
		"exec_cache_hits 7",
		`rt_traps{kind="btra"} 3`,
		"exec_pool_workers 8",
		`cell_ms_bucket{phase="build",le="10"} 1`,
		`cell_ms_bucket{phase="build",le="+Inf"} 1`,
		`cell_ms_sum{phase="build"} 4`,
		"exec_cell_seconds_total 1.5",
		"exec_cell_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}
	// Structural validity of the exposition: every non-comment line is
	// "name{labels} value" with a parsable float value.
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("metrics line without value: %q", line)
		}
		var f float64
		if _, err := fmt.Sscanf(line[sp+1:], "%g", &f); err != nil {
			t.Errorf("metrics line value unparsable: %q", line)
		}
	}

	code, body = opsGet(t, client, s.URL()+"/progress")
	if code != 200 {
		t.Fatalf("/progress = %d", code)
	}
	var got map[string]any
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("/progress not JSON: %v\n%s", err, body)
	}
	if got["done"] != float64(3) || got["total"] != float64(10) {
		t.Errorf("/progress = %v", got)
	}

	if code, body := opsGet(t, client, s.URL()+"/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Errorf("/debug/pprof/cmdline = %d %q", code, body)
	}
}

func TestOpsServerNilBackends(t *testing.T) {
	s, err := ServeOps("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatalf("ServeOps: %v", err)
	}
	defer s.Close()
	client := &http.Client{Timeout: 5 * time.Second}
	defer client.CloseIdleConnections()
	if code, _ := opsGet(t, client, s.URL()+"/metrics"); code != 200 {
		t.Errorf("/metrics with nil registry = %d", code)
	}
	if code, body := opsGet(t, client, s.URL()+"/progress"); code != 200 || !strings.Contains(body, "{}") {
		t.Errorf("/progress with nil source = %d %q", code, body)
	}
}

func TestOpsServerBadAddressFailsEagerly(t *testing.T) {
	if _, err := ServeOps("127.0.0.1:99999", nil, nil); err == nil {
		t.Fatal("expected eager listen error for bad address")
	}
}

// TestOpsServerShutdownLeaksNoGoroutines is the lingering-goroutine gate:
// after Close returns — even with requests served in between — the process
// goroutine count must return to its baseline. Close is graceful (drains
// in-flight requests) and waits for the serve goroutine.
func TestOpsServerShutdownLeaksNoGoroutines(t *testing.T) {
	// Warm up lazy runtime/net pools so they do not count against the
	// baseline.
	s0, err := ServeOps("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatalf("ServeOps warmup: %v", err)
	}
	client := &http.Client{Timeout: 5 * time.Second}
	opsGet(t, client, s0.URL()+"/healthz")
	client.CloseIdleConnections()
	if err := s0.Close(); err != nil {
		t.Fatalf("warmup close: %v", err)
	}

	baseline := runtime.NumGoroutine()
	reg := NewRegistry()
	s, err := ServeOps("127.0.0.1:0", reg, func() any { return map[string]int{"done": 1} })
	if err != nil {
		t.Fatalf("ServeOps: %v", err)
	}
	for i := 0; i < 3; i++ {
		opsGet(t, client, s.URL()+"/metrics")
		opsGet(t, client, s.URL()+"/progress")
	}
	client.CloseIdleConnections()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	// Goroutine teardown is asynchronous at the margins (connection
	// goroutines unwind after Shutdown returns); poll briefly before
	// declaring a leak.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, after close %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// The observatory endpoints: /incidents and /alerts serve whatever their
// source closures return, as JSON; nil sources degrade to "{}" like
// /progress; a source yielding unmarshalable values (NaN) reports a 500 with
// an error body instead of a truncated response.
func TestOpsServerSourcesEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("rt.traps", "kind", "btra").Add(2)
	s, err := ServeOpsSources("127.0.0.1:0", OpsSources{
		Registry:  reg,
		Incidents: func() any { return map[string]any{"total": 2, "campaigns": []string{"t3"}} },
		Alerts: func() any {
			rules, perr := ParseAlertRules(strings.NewReader("traps: count(rt.traps) >= 1\n"))
			if perr != nil {
				t.Error(perr)
			}
			return EvalAlerts(rules, reg.Snapshot(), time.Second)
		},
	})
	if err != nil {
		t.Fatalf("ServeOpsSources: %v", err)
	}
	defer s.Close()
	client := &http.Client{Timeout: 5 * time.Second}
	defer client.CloseIdleConnections()

	code, body := opsGet(t, client, s.URL()+"/incidents")
	if code != 200 {
		t.Fatalf("/incidents = %d", code)
	}
	var inc map[string]any
	if err := json.Unmarshal([]byte(body), &inc); err != nil {
		t.Fatalf("/incidents not JSON: %v\n%s", err, body)
	}
	if inc["total"] != float64(2) {
		t.Errorf("/incidents = %v", inc)
	}

	code, body = opsGet(t, client, s.URL()+"/alerts")
	if code != 200 {
		t.Fatalf("/alerts = %d", code)
	}
	var states []AlertState
	if err := json.Unmarshal([]byte(body), &states); err != nil {
		t.Fatalf("/alerts not JSON: %v\n%s", err, body)
	}
	if len(states) != 1 || !states[0].Firing {
		t.Errorf("/alerts = %+v", states)
	}

	// /progress was not wired: it must still answer, with the empty object.
	if code, body := opsGet(t, client, s.URL()+"/progress"); code != 200 || !strings.Contains(body, "{}") {
		t.Errorf("/progress with nil source = %d %q", code, body)
	}
}

func TestOpsServerSourceMarshalError(t *testing.T) {
	s, err := ServeOpsSources("127.0.0.1:0", OpsSources{
		Incidents: func() any { return map[string]float64{"bad": math.NaN()} },
	})
	if err != nil {
		t.Fatalf("ServeOpsSources: %v", err)
	}
	defer s.Close()
	client := &http.Client{Timeout: 5 * time.Second}
	defer client.CloseIdleConnections()
	code, body := opsGet(t, client, s.URL()+"/incidents")
	if code != http.StatusInternalServerError || !strings.Contains(body, "error") {
		t.Errorf("/incidents with NaN source = %d %q", code, body)
	}
}
