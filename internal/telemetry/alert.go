package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Declarative alert rules over registry metrics — the CI-facing half of the
// security observatory. A rules file is line-oriented:
//
//	# attack pressure
//	trap-storm:    rate(rt.traps) > 100
//	any-trap:      count(rt.traps) > 0
//	slow-cells:    p99(exec.cell.seconds) > 0.5
//	cell-failures: count(exec.cell.failures) >= 1
//	guard-pages:   value(rt.btdp.guard_pages) < 4
//	btdp-reads:    count(attack.detections{via=btdp-read}) > 2
//
// Each rule is NAME ':' FN '(' METRIC ')' OP THRESHOLD. A bare metric name
// aggregates across every label set sharing that base name; a full key with
// {k=v,...} matches exactly one series. Rules are evaluated against registry
// snapshots — live on /alerts and once at exit, where any firing rule turns
// into a nonzero harness exit code so CI catches an attack-pressure or
// latency regression the same way it catches a test failure.
//
// The windowed functions evaluate against the time-series rings instead of
// the final snapshot, so a rule can fire on a *trend* mid-run — rising
// sojourn p99, quarantine churn, heal-latency creep — long before the end
// state shows it:
//
//	sojourn-burn:     burn_rate(fleet.sojourn.p99, 5, 50) > 2
//	quarantine-churn: rate_over(fleet.quarantines, 20) > 1
//	slow-window:      p99_over(fleet.variant.sojourn, 10) > 0.5
//	load-creep:       mean_over(fleet.slots.quarantined, 20) > 1.5
//
// Window arguments are in the sampler's clock units (simulated seconds for
// the fleet, completed cells for exec). rate_over is the summed per-series
// rate of change over the trailing window; mean_over / p99_over aggregate
// the windowed sample values; burn_rate is the short-window rate divided by
// the long-window rate — the scale-free "is it getting worse *right now*"
// signal. A windowed rule without a series set (or with no samples in the
// window) is Missing, never firing.

// AlertRule is one parsed threshold rule.
type AlertRule struct {
	Name      string  // rule identifier (unique per file)
	Fn        string  // count | value | sum | mean | rate | p50 | p90 | p99 | quantile | rate_over | mean_over | p99_over | burn_rate
	Metric    string  // metric base name or full key with labels
	Arg       float64 // quantile argument for fn "quantile"
	Window    float64 // trailing window for the windowed fns (burn_rate: the short window)
	Window2   float64 // burn_rate's long window
	Op        string  // > >= < <= == !=
	Threshold float64
	Line      int // source line, for error messages
}

// Windowed reports whether the rule evaluates against the time-series rings
// rather than the registry snapshot.
func (r AlertRule) Windowed() bool { return windowedFns[r.Fn] }

// Expr renders the rule's expression back in canonical form.
func (r AlertRule) Expr() string {
	switch {
	case r.Fn == "quantile":
		return fmt.Sprintf("quantile(%s, %g) %s %g", r.Metric, r.Arg, r.Op, r.Threshold)
	case r.Fn == "burn_rate":
		return fmt.Sprintf("burn_rate(%s, %g, %g) %s %g", r.Metric, r.Window, r.Window2, r.Op, r.Threshold)
	case windowedFns[r.Fn]:
		return fmt.Sprintf("%s(%s, %g) %s %g", r.Fn, r.Metric, r.Window, r.Op, r.Threshold)
	}
	return fmt.Sprintf("%s(%s) %s %g", r.Fn, r.Metric, r.Op, r.Threshold)
}

// AlertState is the outcome of evaluating one rule against a snapshot.
type AlertState struct {
	Rule      string  `json:"rule"`
	Expr      string  `json:"expr"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	Firing    bool    `json:"firing"`
	// Missing marks a rule whose metric has no data in the snapshot (or an
	// undefined quantile); missing rules never fire.
	Missing bool `json:"missing,omitempty"`
}

var alertFns = map[string]bool{
	"count": true, "value": true, "sum": true, "mean": true, "rate": true,
	"p50": true, "p90": true, "p99": true, "quantile": true,
	"rate_over": true, "mean_over": true, "p99_over": true, "burn_rate": true,
}

// windowedFns evaluate against the time-series rings.
var windowedFns = map[string]bool{
	"rate_over": true, "mean_over": true, "p99_over": true, "burn_rate": true,
}

var alertOps = map[string]bool{">": true, ">=": true, "<": true, "<=": true, "==": true, "!=": true}

// ParseAlertRules reads a rules file. Blank lines and #-comments are
// skipped; any malformed line is an error naming its line number, so a bad
// rules file fails the run up front rather than silently never firing.
func ParseAlertRules(r io.Reader) ([]AlertRule, error) {
	var rules []AlertRule
	seen := map[string]int{}
	sc := bufio.NewScanner(r)
	ln := 0
	for sc.Scan() {
		ln++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rule, err := parseAlertRule(line, ln)
		if err != nil {
			return nil, err
		}
		if prev, dup := seen[rule.Name]; dup {
			return nil, fmt.Errorf("alert rules line %d: duplicate rule name %q (first defined on line %d)", ln, rule.Name, prev)
		}
		seen[rule.Name] = ln
		rules = append(rules, rule)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("alert rules: %w", err)
	}
	return rules, nil
}

// LoadAlertRules reads and parses a rules file from disk.
func LoadAlertRules(path string) ([]AlertRule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("alert rules: %w", err)
	}
	defer f.Close()
	rules, err := ParseAlertRules(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rules, nil
}

func parseAlertRule(line string, ln int) (AlertRule, error) {
	bad := func(format string, args ...any) (AlertRule, error) {
		return AlertRule{}, fmt.Errorf("alert rules line %d: %s (in %q)", ln, fmt.Sprintf(format, args...), line)
	}
	name, rest, ok := strings.Cut(line, ":")
	if !ok {
		return bad("missing ':' after rule name")
	}
	name = strings.TrimSpace(name)
	if name == "" {
		return bad("empty rule name")
	}
	rest = strings.TrimSpace(rest)

	open := strings.IndexByte(rest, '(')
	closeIdx := strings.LastIndexByte(rest, ')')
	if open < 0 || closeIdx < open {
		return bad("expected FN(METRIC) OP THRESHOLD")
	}
	fn := strings.TrimSpace(rest[:open])
	if !alertFns[fn] {
		return bad("unknown function %q (want count, value, sum, mean, rate, p50, p90, p99, quantile, rate_over, mean_over, p99_over or burn_rate)", fn)
	}
	inner := strings.TrimSpace(rest[open+1 : closeIdx])
	rule := AlertRule{Name: name, Fn: fn, Line: ln}
	switch {
	case fn == "quantile":
		metric, argStr, ok := strings.Cut(inner, ",")
		if !ok {
			return bad("quantile needs two arguments: quantile(METRIC, q)")
		}
		q, err := strconv.ParseFloat(strings.TrimSpace(argStr), 64)
		if err != nil || q < 0 || q > 1 {
			return bad("quantile argument %q must be a number in [0,1]", strings.TrimSpace(argStr))
		}
		rule.Metric, rule.Arg = strings.TrimSpace(metric), q
	case fn == "burn_rate":
		parts := strings.Split(inner, ",")
		if len(parts) != 3 {
			return bad("burn_rate needs three arguments: burn_rate(METRIC, SHORT, LONG)")
		}
		short, err1 := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		long, err2 := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
		if err1 != nil || err2 != nil || short <= 0 || long <= short {
			return bad("burn_rate windows must satisfy 0 < SHORT < LONG, got %q, %q",
				strings.TrimSpace(parts[1]), strings.TrimSpace(parts[2]))
		}
		rule.Metric, rule.Window, rule.Window2 = strings.TrimSpace(parts[0]), short, long
	case windowedFns[fn]:
		metric, argStr, ok := strings.Cut(inner, ",")
		if !ok {
			return bad("%s needs two arguments: %s(METRIC, WINDOW)", fn, fn)
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(argStr), 64)
		if err != nil || w <= 0 {
			return bad("%s window %q must be a positive number", fn, strings.TrimSpace(argStr))
		}
		rule.Metric, rule.Window = strings.TrimSpace(metric), w
	default:
		rule.Metric = inner
	}
	if rule.Metric == "" {
		return bad("empty metric name")
	}

	tail := strings.Fields(rest[closeIdx+1:])
	if len(tail) != 2 {
		return bad("expected OP THRESHOLD after the metric")
	}
	if !alertOps[tail[0]] {
		return bad("unknown comparison %q (want >, >=, <, <=, == or !=)", tail[0])
	}
	thr, err := strconv.ParseFloat(tail[1], 64)
	if err != nil {
		return bad("threshold %q is not a number", tail[1])
	}
	rule.Op, rule.Threshold = tail[0], thr
	return rule, nil
}

// EvalAlerts evaluates every rule against one registry snapshot. elapsed is
// the observation window rate() divides by (clamped to at least 1ns);
// results come back in rule-file order. A metric with no data marks the
// rule Missing rather than firing, so an alert on rt.traps does not trip on
// a run that never armed a trap. Windowed rules are Missing here — they
// need a series snapshot; use EvalAlertsSeries.
func EvalAlerts(rules []AlertRule, snap *Snapshot, elapsed time.Duration) []AlertState {
	return EvalAlertsSeries(rules, snap, nil, elapsed)
}

// EvalAlertsSeries evaluates rules against a registry snapshot plus a
// time-series snapshot: point-in-time functions read snap, windowed
// functions read series. A nil series snapshot marks every windowed rule
// Missing, so rules files mixing both kinds stay loadable by harnesses that
// never sample.
func EvalAlertsSeries(rules []AlertRule, snap *Snapshot, series *SeriesSnapshot, elapsed time.Duration) []AlertState {
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	out := make([]AlertState, 0, len(rules))
	for _, r := range rules {
		st := AlertState{Rule: r.Name, Expr: r.Expr(), Threshold: r.Threshold}
		var (
			v  float64
			ok bool
		)
		if r.Windowed() {
			v, ok = evalWindowFn(r, series)
		} else {
			v, ok = evalAlertFn(r, snap, elapsed)
		}
		st.Value = v
		if !ok || math.IsNaN(v) {
			st.Missing = true
			st.Value = 0
		} else {
			st.Firing = alertCompare(v, r.Op, r.Threshold)
		}
		out = append(out, st)
	}
	return out
}

// evalWindowFn evaluates one windowed rule against a series snapshot.
func evalWindowFn(r AlertRule, sn *SeriesSnapshot) (float64, bool) {
	if sn == nil {
		return 0, false
	}
	switch r.Fn {
	case "rate_over":
		return sn.windowRate(r.Metric, r.Window)
	case "burn_rate":
		short, ok1 := sn.windowRate(r.Metric, r.Window)
		long, ok2 := sn.windowRate(r.Metric, r.Window2)
		// A flat long window has no baseline rate to burn against; the
		// ratio is undefined, not infinite pressure.
		if !ok1 || !ok2 || long == 0 {
			return 0, false
		}
		return short / long, true
	case "mean_over":
		vals := sn.windowValues(r.Metric, r.Window)
		if len(vals) == 0 {
			return 0, false
		}
		sum := 0.0
		for _, v := range vals {
			sum += v
		}
		return sum / float64(len(vals)), true
	case "p99_over":
		vals := sn.windowValues(r.Metric, r.Window)
		if len(vals) == 0 {
			return 0, false
		}
		sort.Float64s(vals)
		// Nearest-rank p99 over the raw windowed samples.
		idx := int(math.Ceil(0.99*float64(len(vals)))) - 1
		if idx < 0 {
			idx = 0
		}
		return vals[idx], true
	}
	return 0, false
}

func alertCompare(v float64, op string, thr float64) bool {
	switch op {
	case ">":
		return v > thr
	case ">=":
		return v >= thr
	case "<":
		return v < thr
	case "<=":
		return v <= thr
	case "==":
		return v == thr
	case "!=":
		return v != thr
	}
	return false
}

// metricSeries collects every snapshot key matching the rule's metric
// reference: an exact key when the reference carries labels, otherwise all
// keys whose base name matches.
func metricKeys[T any](m map[string]T, metric string) []string {
	if strings.Contains(metric, "{") {
		if _, ok := m[metric]; ok {
			return []string{metric}
		}
		return nil
	}
	var keys []string
	for k := range m {
		name, _ := ParseKey(k)
		if name == metric {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

func evalAlertFn(r AlertRule, snap *Snapshot, elapsed time.Duration) (float64, bool) {
	if snap == nil {
		return 0, false
	}
	switch r.Fn {
	case "count", "rate":
		// Counters first; timers also expose a count.
		var total uint64
		found := false
		for _, k := range metricKeys(snap.Counters, r.Metric) {
			total += snap.Counters[k]
			found = true
		}
		if !found {
			for _, k := range metricKeys(snap.Timers, r.Metric) {
				total += snap.Timers[k].Count
				found = true
			}
		}
		if !found {
			for _, k := range metricKeys(snap.Histograms, r.Metric) {
				total += snap.Histograms[k].Count
				found = true
			}
		}
		if !found {
			return 0, false
		}
		if r.Fn == "rate" {
			return float64(total) / elapsed.Seconds(), true
		}
		return float64(total), true
	case "value":
		keys := metricKeys(snap.Gauges, r.Metric)
		if len(keys) == 0 {
			return 0, false
		}
		// A bare name matching several gauge series takes the max — the
		// conservative choice for threshold alerts.
		v := snap.Gauges[keys[0]]
		for _, k := range keys[1:] {
			if snap.Gauges[k] > v {
				v = snap.Gauges[k]
			}
		}
		return v, true
	case "sum", "mean":
		var sum float64
		var n uint64
		found := false
		for _, k := range metricKeys(snap.Histograms, r.Metric) {
			sum += snap.Histograms[k].Sum
			n += snap.Histograms[k].Count
			found = true
		}
		if !found {
			for _, k := range metricKeys(snap.Timers, r.Metric) {
				sum += time.Duration(snap.Timers[k].TotalNs).Seconds()
				n += snap.Timers[k].Count
				found = true
			}
		}
		if !found {
			return 0, false
		}
		if r.Fn == "mean" {
			if n == 0 {
				return 0, false
			}
			return sum / float64(n), true
		}
		return sum, true
	default: // p50 / p90 / p99 / quantile
		q := r.Arg
		switch r.Fn {
		case "p50":
			q = 0.50
		case "p90":
			q = 0.90
		case "p99":
			q = 0.99
		}
		keys := metricKeys(snap.Histograms, r.Metric)
		if len(keys) == 0 {
			return 0, false
		}
		merged := snap.Histograms[keys[0]]
		for _, k := range keys[1:] {
			m, err := merged.Merge(snap.Histograms[k])
			if err != nil {
				return 0, false
			}
			merged = m
		}
		v := merged.Quantile(q)
		return v, !math.IsNaN(v)
	}
}

// FiringCount returns how many evaluated rules are firing.
func FiringCount(states []AlertState) int {
	n := 0
	for _, s := range states {
		if s.Firing {
			n++
		}
	}
	return n
}

// WriteAlertTable renders evaluated rules as an aligned text table — what
// the harnesses print at exit when -alert-rules is set.
func WriteAlertTable(w io.Writer, states []AlertState) {
	fmt.Fprintf(w, "%-8s %-20s %12s  %s\n", "state", "rule", "value", "expr")
	for _, s := range states {
		state := "ok"
		switch {
		case s.Firing:
			state = "FIRING"
		case s.Missing:
			state = "missing"
		}
		fmt.Fprintf(w, "%-8s %-20s %12.6g  %s\n", state, s.Rule, s.Value, s.Expr)
	}
}
