package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Declarative alert rules over registry metrics — the CI-facing half of the
// security observatory. A rules file is line-oriented:
//
//	# attack pressure
//	trap-storm:    rate(rt.traps) > 100
//	any-trap:      count(rt.traps) > 0
//	slow-cells:    p99(exec.cell.seconds) > 0.5
//	cell-failures: count(exec.cell.failures) >= 1
//	guard-pages:   value(rt.btdp.guard_pages) < 4
//	btdp-reads:    count(attack.detections{via=btdp-read}) > 2
//
// Each rule is NAME ':' FN '(' METRIC ')' OP THRESHOLD. A bare metric name
// aggregates across every label set sharing that base name; a full key with
// {k=v,...} matches exactly one series. Rules are evaluated against registry
// snapshots — live on /alerts and once at exit, where any firing rule turns
// into a nonzero harness exit code so CI catches an attack-pressure or
// latency regression the same way it catches a test failure.

// AlertRule is one parsed threshold rule.
type AlertRule struct {
	Name      string  // rule identifier (unique per file)
	Fn        string  // count | value | sum | mean | rate | p50 | p90 | p99 | quantile
	Metric    string  // metric base name or full key with labels
	Arg       float64 // quantile argument for fn "quantile"
	Op        string  // > >= < <= == !=
	Threshold float64
	Line      int // source line, for error messages
}

// Expr renders the rule's expression back in canonical form.
func (r AlertRule) Expr() string {
	if r.Fn == "quantile" {
		return fmt.Sprintf("quantile(%s, %g) %s %g", r.Metric, r.Arg, r.Op, r.Threshold)
	}
	return fmt.Sprintf("%s(%s) %s %g", r.Fn, r.Metric, r.Op, r.Threshold)
}

// AlertState is the outcome of evaluating one rule against a snapshot.
type AlertState struct {
	Rule      string  `json:"rule"`
	Expr      string  `json:"expr"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	Firing    bool    `json:"firing"`
	// Missing marks a rule whose metric has no data in the snapshot (or an
	// undefined quantile); missing rules never fire.
	Missing bool `json:"missing,omitempty"`
}

var alertFns = map[string]bool{
	"count": true, "value": true, "sum": true, "mean": true, "rate": true,
	"p50": true, "p90": true, "p99": true, "quantile": true,
}

var alertOps = map[string]bool{">": true, ">=": true, "<": true, "<=": true, "==": true, "!=": true}

// ParseAlertRules reads a rules file. Blank lines and #-comments are
// skipped; any malformed line is an error naming its line number, so a bad
// rules file fails the run up front rather than silently never firing.
func ParseAlertRules(r io.Reader) ([]AlertRule, error) {
	var rules []AlertRule
	seen := map[string]int{}
	sc := bufio.NewScanner(r)
	ln := 0
	for sc.Scan() {
		ln++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rule, err := parseAlertRule(line, ln)
		if err != nil {
			return nil, err
		}
		if prev, dup := seen[rule.Name]; dup {
			return nil, fmt.Errorf("alert rules line %d: duplicate rule name %q (first defined on line %d)", ln, rule.Name, prev)
		}
		seen[rule.Name] = ln
		rules = append(rules, rule)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("alert rules: %w", err)
	}
	return rules, nil
}

// LoadAlertRules reads and parses a rules file from disk.
func LoadAlertRules(path string) ([]AlertRule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("alert rules: %w", err)
	}
	defer f.Close()
	rules, err := ParseAlertRules(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rules, nil
}

func parseAlertRule(line string, ln int) (AlertRule, error) {
	bad := func(format string, args ...any) (AlertRule, error) {
		return AlertRule{}, fmt.Errorf("alert rules line %d: %s (in %q)", ln, fmt.Sprintf(format, args...), line)
	}
	name, rest, ok := strings.Cut(line, ":")
	if !ok {
		return bad("missing ':' after rule name")
	}
	name = strings.TrimSpace(name)
	if name == "" {
		return bad("empty rule name")
	}
	rest = strings.TrimSpace(rest)

	open := strings.IndexByte(rest, '(')
	closeIdx := strings.LastIndexByte(rest, ')')
	if open < 0 || closeIdx < open {
		return bad("expected FN(METRIC) OP THRESHOLD")
	}
	fn := strings.TrimSpace(rest[:open])
	if !alertFns[fn] {
		return bad("unknown function %q (want count, value, sum, mean, rate, p50, p90, p99 or quantile)", fn)
	}
	inner := strings.TrimSpace(rest[open+1 : closeIdx])
	rule := AlertRule{Name: name, Fn: fn, Line: ln}
	if fn == "quantile" {
		metric, argStr, ok := strings.Cut(inner, ",")
		if !ok {
			return bad("quantile needs two arguments: quantile(METRIC, q)")
		}
		q, err := strconv.ParseFloat(strings.TrimSpace(argStr), 64)
		if err != nil || q < 0 || q > 1 {
			return bad("quantile argument %q must be a number in [0,1]", strings.TrimSpace(argStr))
		}
		rule.Metric, rule.Arg = strings.TrimSpace(metric), q
	} else {
		rule.Metric = inner
	}
	if rule.Metric == "" {
		return bad("empty metric name")
	}

	tail := strings.Fields(rest[closeIdx+1:])
	if len(tail) != 2 {
		return bad("expected OP THRESHOLD after the metric")
	}
	if !alertOps[tail[0]] {
		return bad("unknown comparison %q (want >, >=, <, <=, == or !=)", tail[0])
	}
	thr, err := strconv.ParseFloat(tail[1], 64)
	if err != nil {
		return bad("threshold %q is not a number", tail[1])
	}
	rule.Op, rule.Threshold = tail[0], thr
	return rule, nil
}

// EvalAlerts evaluates every rule against one registry snapshot. elapsed is
// the observation window rate() divides by (clamped to at least 1ns);
// results come back in rule-file order. A metric with no data marks the
// rule Missing rather than firing, so an alert on rt.traps does not trip on
// a run that never armed a trap.
func EvalAlerts(rules []AlertRule, snap *Snapshot, elapsed time.Duration) []AlertState {
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	out := make([]AlertState, 0, len(rules))
	for _, r := range rules {
		st := AlertState{Rule: r.Name, Expr: r.Expr(), Threshold: r.Threshold}
		v, ok := evalAlertFn(r, snap, elapsed)
		st.Value = v
		if !ok || math.IsNaN(v) {
			st.Missing = true
			st.Value = 0
		} else {
			st.Firing = alertCompare(v, r.Op, r.Threshold)
		}
		out = append(out, st)
	}
	return out
}

func alertCompare(v float64, op string, thr float64) bool {
	switch op {
	case ">":
		return v > thr
	case ">=":
		return v >= thr
	case "<":
		return v < thr
	case "<=":
		return v <= thr
	case "==":
		return v == thr
	case "!=":
		return v != thr
	}
	return false
}

// metricSeries collects every snapshot key matching the rule's metric
// reference: an exact key when the reference carries labels, otherwise all
// keys whose base name matches.
func metricKeys[T any](m map[string]T, metric string) []string {
	if strings.Contains(metric, "{") {
		if _, ok := m[metric]; ok {
			return []string{metric}
		}
		return nil
	}
	var keys []string
	for k := range m {
		name, _ := ParseKey(k)
		if name == metric {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

func evalAlertFn(r AlertRule, snap *Snapshot, elapsed time.Duration) (float64, bool) {
	if snap == nil {
		return 0, false
	}
	switch r.Fn {
	case "count", "rate":
		// Counters first; timers also expose a count.
		var total uint64
		found := false
		for _, k := range metricKeys(snap.Counters, r.Metric) {
			total += snap.Counters[k]
			found = true
		}
		if !found {
			for _, k := range metricKeys(snap.Timers, r.Metric) {
				total += snap.Timers[k].Count
				found = true
			}
		}
		if !found {
			for _, k := range metricKeys(snap.Histograms, r.Metric) {
				total += snap.Histograms[k].Count
				found = true
			}
		}
		if !found {
			return 0, false
		}
		if r.Fn == "rate" {
			return float64(total) / elapsed.Seconds(), true
		}
		return float64(total), true
	case "value":
		keys := metricKeys(snap.Gauges, r.Metric)
		if len(keys) == 0 {
			return 0, false
		}
		// A bare name matching several gauge series takes the max — the
		// conservative choice for threshold alerts.
		v := snap.Gauges[keys[0]]
		for _, k := range keys[1:] {
			if snap.Gauges[k] > v {
				v = snap.Gauges[k]
			}
		}
		return v, true
	case "sum", "mean":
		var sum float64
		var n uint64
		found := false
		for _, k := range metricKeys(snap.Histograms, r.Metric) {
			sum += snap.Histograms[k].Sum
			n += snap.Histograms[k].Count
			found = true
		}
		if !found {
			for _, k := range metricKeys(snap.Timers, r.Metric) {
				sum += time.Duration(snap.Timers[k].TotalNs).Seconds()
				n += snap.Timers[k].Count
				found = true
			}
		}
		if !found {
			return 0, false
		}
		if r.Fn == "mean" {
			if n == 0 {
				return 0, false
			}
			return sum / float64(n), true
		}
		return sum, true
	default: // p50 / p90 / p99 / quantile
		q := r.Arg
		switch r.Fn {
		case "p50":
			q = 0.50
		case "p90":
			q = 0.90
		case "p99":
			q = 0.99
		}
		keys := metricKeys(snap.Histograms, r.Metric)
		if len(keys) == 0 {
			return 0, false
		}
		merged := snap.Histograms[keys[0]]
		for _, k := range keys[1:] {
			m, err := merged.Merge(snap.Histograms[k])
			if err != nil {
				return 0, false
			}
			merged = m
		}
		v := merged.Quantile(q)
		return v, !math.IsNaN(v)
	}
}

// FiringCount returns how many evaluated rules are firing.
func FiringCount(states []AlertState) int {
	n := 0
	for _, s := range states {
		if s.Firing {
			n++
		}
	}
	return n
}

// WriteAlertTable renders evaluated rules as an aligned text table — what
// the harnesses print at exit when -alert-rules is set.
func WriteAlertTable(w io.Writer, states []AlertState) {
	fmt.Fprintf(w, "%-8s %-20s %12s  %s\n", "state", "rule", "value", "expr")
	for _, s := range states {
		state := "ok"
		switch {
		case s.Firing:
			state = "FIRING"
		case s.Missing:
			state = "missing"
		}
		fmt.Fprintf(w, "%-8s %-20s %12.6g  %s\n", state, s.Rule, s.Value, s.Expr)
	}
}
