package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

func TestTimeSeriesRingOverwrite(t *testing.T) {
	obs := &Observer{Registry: NewRegistry()}
	ss := NewSeriesSet(4, obs)
	for i := 0; i < 10; i++ {
		ss.Sample(float64(i), "m", float64(i*i))
	}
	snap := ss.Snapshot(nil, 0)
	if len(snap.Series) != 1 {
		t.Fatalf("series count = %d, want 1", len(snap.Series))
	}
	sd := snap.Series[0]
	if len(sd.Points) != 4 {
		t.Fatalf("ring kept %d points, want 4 (the capacity)", len(sd.Points))
	}
	// The survivors are the newest four, oldest first.
	for i, p := range sd.Points {
		wantT := float64(6 + i)
		if p[0] != wantT || p[1] != wantT*wantT {
			t.Fatalf("point %d = %v, want [%g %g]", i, p, wantT, wantT*wantT)
		}
	}
	if sd.Dropped != 6 {
		t.Fatalf("per-series dropped = %d, want 6", sd.Dropped)
	}
	reg := obs.Reg().Snapshot()
	if got := reg.Counters["telemetry.series.dropped"]; got != 6 {
		t.Fatalf("telemetry.series.dropped = %d, want 6", got)
	}
	if snap.Now != 9 {
		t.Fatalf("snapshot now = %g, want 9", snap.Now)
	}
}

func TestSeriesSetSkipsNonFinite(t *testing.T) {
	ss := NewSeriesSet(8, nil)
	ss.Sample(1, "m", math.NaN())
	ss.Sample(2, "m", math.Inf(1))
	ss.Sample(3, "m", math.Inf(-1))
	ss.Sample(4, "m", 7)
	snap := ss.Snapshot(nil, 0)
	if len(snap.Series) != 1 || len(snap.Series[0].Points) != 1 {
		t.Fatalf("non-finite samples were not skipped: %+v", snap)
	}
	if p := snap.Series[0].Points[0]; p != (SeriesPoint{4, 7}) {
		t.Fatalf("surviving point = %v, want [4 7]", p)
	}
}

func TestSeriesSnapshotFilterAndLast(t *testing.T) {
	ss := NewSeriesSet(16, nil)
	for i := 0; i < 6; i++ {
		ss.Sample(float64(i), "fleet.sojourn.p99", float64(i))
		ss.Sample(float64(i), Key("fleet.variant.sojourn", "slot", "0"), float64(i))
		ss.Sample(float64(i), "exec.cells.done", float64(i))
	}

	// Exact name.
	snap := ss.Snapshot([]string{"fleet.sojourn.p99"}, 0)
	if len(snap.Series) != 1 || snap.Series[0].Name != "fleet.sojourn.p99" {
		t.Fatalf("exact filter: %+v", snap.Series)
	}
	// Bare prefix matches derived series and labeled families.
	snap = ss.Snapshot([]string{"fleet.sojourn", "fleet.variant.sojourn"}, 0)
	if len(snap.Series) != 2 {
		t.Fatalf("prefix filter kept %d series, want 2", len(snap.Series))
	}
	// A labeled reference is exact-only.
	snap = ss.Snapshot([]string{Key("fleet.variant.sojourn", "slot", "0")}, 0)
	if len(snap.Series) != 1 {
		t.Fatalf("labeled filter kept %d series, want 1", len(snap.Series))
	}
	// last trims each series to its newest points.
	snap = ss.Snapshot(nil, 2)
	for _, sd := range snap.Series {
		if len(sd.Points) != 2 || sd.Points[0][0] != 4 || sd.Points[1][0] != 5 {
			t.Fatalf("last=2 kept %v for %s", sd.Points, sd.Name)
		}
	}
}

func TestSeriesSetNilSafety(t *testing.T) {
	var ss *SeriesSet
	ss.Sample(1, "m", 2) // must not panic
	if got := ss.Now(); got != 0 {
		t.Fatalf("nil Now = %g", got)
	}
	snap := ss.Snapshot(nil, 0)
	if snap == nil || len(snap.Series) != 0 {
		t.Fatalf("nil snapshot = %+v", snap)
	}
	body, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal nil snapshot: %v", err)
	}
	if !bytes.Contains(body, []byte(`"series": []`)) && !bytes.Contains(body, []byte(`"series":[]`)) {
		t.Fatalf("nil snapshot marshals %s, want an empty series array", body)
	}
}

func TestSeriesWriteJSONIsValid(t *testing.T) {
	ss := NewSeriesSet(8, nil)
	ss.Sample(0.5, "a", 1)
	ss.Sample(1.5, "b", 2)
	var buf bytes.Buffer
	if err := ss.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var snap SeriesSnapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if len(snap.Series) != 2 || snap.Series[0].Name != "a" || snap.Series[1].Name != "b" {
		t.Fatalf("round-trip snapshot: %+v", snap)
	}
	if snap.Now != 1.5 {
		t.Fatalf("round-trip now = %g", snap.Now)
	}
}
