package telemetry

import (
	"strings"
	"testing"
	"time"
)

func mustParseRules(t *testing.T, text string) []AlertRule {
	t.Helper()
	rules, err := ParseAlertRules(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseAlertRules: %v", err)
	}
	return rules
}

func TestParseAlertRules(t *testing.T) {
	rules := mustParseRules(t, `
# attack pressure
trap-storm: rate(rt.traps) > 100
any-trap:   count(rt.traps) >= 1
slow-p99:   p99(exec.cell.seconds) > 0.5
guards:     value(rt.btdp.guard_pages) < 4
tail:       quantile(exec.run.cycles, 0.9) > 1e9
labeled:    count(attack.detections{via=btdp-read}) != 0
`)
	if len(rules) != 6 {
		t.Fatalf("parsed %d rules, want 6", len(rules))
	}
	r := rules[0]
	if r.Name != "trap-storm" || r.Fn != "rate" || r.Metric != "rt.traps" || r.Op != ">" || r.Threshold != 100 {
		t.Fatalf("rule 0 = %+v", r)
	}
	if rules[4].Arg != 0.9 {
		t.Fatalf("quantile arg = %v, want 0.9", rules[4].Arg)
	}
	if rules[5].Metric != "attack.detections{via=btdp-read}" {
		t.Fatalf("labeled metric = %q", rules[5].Metric)
	}
	if got := rules[2].Expr(); got != "p99(exec.cell.seconds) > 0.5" {
		t.Fatalf("Expr = %q", got)
	}
}

func TestParseAlertRulesErrors(t *testing.T) {
	for _, tc := range []struct{ text, wantErr string }{
		{"no-colon rate(x) > 1", "missing ':'"},
		{"r: frobnicate(x) > 1", "unknown function"},
		{"r: rate(x) ~ 1", "unknown comparison"},
		{"r: rate(x) > banana", "not a number"},
		{"r: rate() > 1", "empty metric"},
		{"r: quantile(x) > 1", "two arguments"},
		{"r: quantile(x, 3) > 1", "[0,1]"},
		{"r: rate(x) >", "OP THRESHOLD"},
		{"a: count(x) > 1\na: count(y) > 2", "duplicate rule name"},
	} {
		_, err := ParseAlertRules(strings.NewReader(tc.text))
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("ParseAlertRules(%q) err = %v, want substring %q", tc.text, err, tc.wantErr)
		}
	}
}

func TestEvalAlerts(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("rt.traps", "kind", "btra").Add(30)
	reg.Counter("rt.traps", "kind", "btdp").Add(12)
	reg.Gauge("rt.btdp.guard_pages").Set(2)
	h := reg.LogHist("exec.cell.seconds", LogScheme{Min: 0.001, Growth: 10, Buckets: 6})
	for i := 0; i < 95; i++ {
		h.Observe(0.005)
	}
	for i := 0; i < 5; i++ {
		h.Observe(5.0)
	}
	snap := reg.Snapshot()

	rules := mustParseRules(t, `
any-trap:   count(rt.traps) > 0
btra-only:  count(rt.traps{kind=btra}) == 30
trap-rate:  rate(rt.traps) > 10
low-guards: value(rt.btdp.guard_pages) < 4
slow-p99:   p99(exec.cell.seconds) > 1
fast-p50:   p50(exec.cell.seconds) > 1
no-data:    count(never.recorded) > 0
empty-hist: p99(never.observed) > 1
mean-ok:    mean(exec.cell.seconds) < 1
`)
	states := EvalAlerts(rules, snap, 2*time.Second)
	byName := map[string]AlertState{}
	for _, s := range states {
		byName[s.Rule] = s
	}

	for _, want := range []struct {
		rule   string
		firing bool
	}{
		{"any-trap", true},   // 42 total across label sets
		{"btra-only", true},  // exact-key match
		{"trap-rate", true},  // 42/2s = 21 > 10
		{"low-guards", true}, // 2 < 4
		{"slow-p99", true},   // 5% outliers at 5s put p99 in a slow bucket
		{"fast-p50", false},  // p50 is in the 5ms bucket
		{"mean-ok", true},    // mean ≈ 0.25
	} {
		s, ok := byName[want.rule]
		if !ok {
			t.Fatalf("rule %s missing from results", want.rule)
		}
		if s.Missing {
			t.Errorf("%s unexpectedly missing (value %v)", want.rule, s.Value)
		}
		if s.Firing != want.firing {
			t.Errorf("%s firing = %v (value %v), want %v", want.rule, s.Firing, s.Value, want.firing)
		}
	}

	// Metrics with no data are Missing, never firing — including quantiles
	// over empty histograms (NaN guard).
	for _, rule := range []string{"no-data", "empty-hist"} {
		s := byName[rule]
		if !s.Missing || s.Firing {
			t.Errorf("%s = %+v, want missing and not firing", rule, s)
		}
	}

	if got := FiringCount(states); got != 6 {
		t.Errorf("FiringCount = %d, want 6", got)
	}

	var sb strings.Builder
	WriteAlertTable(&sb, states)
	out := sb.String()
	for _, want := range []string{"FIRING", "missing", "any-trap", "rate(rt.traps) > 10"} {
		if !strings.Contains(out, want) {
			t.Errorf("alert table missing %q:\n%s", want, out)
		}
	}
}

func TestEvalAlertsElapsedClamp(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x").Add(5)
	rules := mustParseRules(t, "r: rate(x) > 0")
	states := EvalAlerts(rules, reg.Snapshot(), 0)
	if len(states) != 1 || !states[0].Firing {
		t.Fatalf("zero-elapsed eval = %+v, want firing (clamped window)", states)
	}
	if s := EvalAlerts(rules, nil, time.Second); !s[0].Missing {
		t.Fatalf("nil snapshot eval = %+v, want missing", s[0])
	}
}

func TestParseWindowedAlertRules(t *testing.T) {
	rules := mustParseRules(t, `
churn:  rate_over(fleet.quarantines, 20) > 1
creep:  mean_over(fleet.slots.quarantined, 20) > 1.5
tail:   p99_over(fleet.variant.sojourn, 10) > 0.5
burn:   burn_rate(fleet.sojourn.p99, 5, 50) > 2
`)
	if len(rules) != 4 {
		t.Fatalf("parsed %d rules, want 4", len(rules))
	}
	r := rules[0]
	if r.Fn != "rate_over" || r.Metric != "fleet.quarantines" || r.Window != 20 || !r.Windowed() {
		t.Fatalf("rate_over rule = %+v", r)
	}
	b := rules[3]
	if b.Window != 5 || b.Window2 != 50 {
		t.Fatalf("burn_rate windows = %g, %g", b.Window, b.Window2)
	}
	for i, want := range []string{
		"rate_over(fleet.quarantines, 20) > 1",
		"mean_over(fleet.slots.quarantined, 20) > 1.5",
		"p99_over(fleet.variant.sojourn, 10) > 0.5",
		"burn_rate(fleet.sojourn.p99, 5, 50) > 2",
	} {
		if got := rules[i].Expr(); got != want {
			t.Errorf("rule %d Expr = %q, want %q", i, got, want)
		}
	}
	if rules[0].Windowed() == false || mustParseRules(t, "r: count(x) > 0")[0].Windowed() {
		t.Error("Windowed() misclassifies rules")
	}

	for _, tc := range []struct{ text, wantErr string }{
		{"r: rate_over(x) > 1", "two arguments"},
		{"r: mean_over(x, 0) > 1", "positive number"},
		{"r: p99_over(x, -3) > 1", "positive number"},
		{"r: burn_rate(x, 5) > 1", "three arguments"},
		{"r: burn_rate(x, 50, 5) > 1", "0 < SHORT < LONG"},
		{"r: burn_rate(x, 0, 5) > 1", "0 < SHORT < LONG"},
	} {
		_, err := ParseAlertRules(strings.NewReader(tc.text))
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("ParseAlertRules(%q) err = %v, want substring %q", tc.text, err, tc.wantErr)
		}
	}
}

func TestEvalAlertsSeries(t *testing.T) {
	ss := NewSeriesSet(64, nil)
	// fleet.quarantines: flat at 0 until t=80, then 1 per tick — the churn
	// rule sees the recent slope, not the lifetime average.
	for i := 0; i <= 100; i++ {
		t_ := float64(i)
		q := 0.0
		if i > 80 {
			q = float64(i - 80)
		}
		ss.Sample(t_, "fleet.quarantines", q)
		// Sojourn p99 creeps up 10x over the last 10 ticks.
		v := 0.01
		if i > 90 {
			v = 0.01 * float64(i-89)
		}
		ss.Sample(t_, "fleet.sojourn.p99", v)
	}
	snap := ss.Snapshot(nil, 0)

	rules := mustParseRules(t, `
churn:     rate_over(fleet.quarantines, 10) > 0.5
flat:      rate_over(fleet.quarantines, 200) > 0.9
mean-tail: mean_over(fleet.sojourn.p99, 5) > 0.05
p99-tail:  p99_over(fleet.sojourn.p99, 10) > 0.08
burning:   burn_rate(fleet.sojourn.p99, 5, 100) > 2
no-series: rate_over(never.sampled, 10) > 0
`)
	states := EvalAlertsSeries(rules, &Snapshot{}, snap, time.Second)
	byName := map[string]AlertState{}
	for _, s := range states {
		byName[s.Rule] = s
	}
	for _, want := range []struct {
		rule   string
		firing bool
	}{
		{"churn", true},     // 1/tick over the last 10 ticks
		{"flat", false},     // lifetime slope is 20/100 = 0.2
		{"mean-tail", true}, // recent values near 0.1
		{"p99-tail", true},
		{"burning", true}, // short-window slope >> lifetime slope
	} {
		s := byName[want.rule]
		if s.Missing {
			t.Errorf("%s unexpectedly missing", want.rule)
		}
		if s.Firing != want.firing {
			t.Errorf("%s firing = %v (value %v), want %v", want.rule, s.Firing, s.Value, want.firing)
		}
	}
	if s := byName["no-series"]; !s.Missing || s.Firing {
		t.Errorf("no-series = %+v, want missing", s)
	}

	// Windowed rules without a series snapshot are Missing, never firing.
	for _, s := range EvalAlertsSeries(rules, &Snapshot{}, nil, time.Second) {
		if s.Firing || !s.Missing {
			t.Errorf("nil-series eval of %s = %+v, want missing", s.Rule, s)
		}
	}
}

func TestBurnRateFlatBaselineIsMissing(t *testing.T) {
	ss := NewSeriesSet(16, nil)
	for i := 0; i <= 10; i++ {
		ss.Sample(float64(i), "m", 3) // perfectly flat
	}
	rules := mustParseRules(t, "b: burn_rate(m, 2, 8) > 1")
	states := EvalAlertsSeries(rules, &Snapshot{}, ss.Snapshot(nil, 0), time.Second)
	if !states[0].Missing || states[0].Firing {
		t.Fatalf("flat burn_rate = %+v, want missing (no baseline rate)", states[0])
	}
}

// The committed example rules file must stay parseable — it is the first
// thing users copy.
func TestExampleRulesFileParses(t *testing.T) {
	rules, err := LoadAlertRules("../../alerts.example.rules")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) < 4 {
		t.Fatalf("example file has only %d rules", len(rules))
	}
	// Against an empty snapshot every rule is missing, none firing.
	states := EvalAlerts(rules, &Snapshot{}, time.Second)
	for _, s := range states {
		if s.Firing || !s.Missing {
			t.Errorf("rule %s on empty snapshot: %+v", s.Rule, s)
		}
	}
}
