package telemetry

import (
	"sort"
	"sync"
	"time"
)

// This file is the hierarchical span tracer: wall-clock timed regions with
// parent links, deterministic IDs and free-form attributes, designed for the
// pipeline's build/execute phases (cell → cache-lookup/build → compile/link →
// execute). Like every other hook in the package, a nil *Span or a missing
// sink turns the instrumentation into a no-op, and spans are strictly
// write-beside: they read the clock but never feed anything back into the
// simulation, so the determinism gate keeps holding with spans enabled.
//
// Span IDs are content-derived, not allocated from a shared counter: an ID is
// a hash of (parent ID, name, caller-chosen key). Two runs of the same
// pipeline therefore assign the same IDs to the same logical spans no matter
// how many workers interleave — the property the -jobs 1 vs -jobs 8 trace
// comparison tests pin down. Wall-clock fields still differ between runs;
// only identity and structure are deterministic.

// SpanData is the serialized form of one finished span.
type SpanData struct {
	// ID and Parent identify the span and its enclosing span (Parent is 0
	// for root spans). IDs are deterministic hashes of the span's position
	// in the tree, not allocation order.
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Name   string `json:"name"`
	// StartNs is the wall-clock start in Unix nanoseconds; DurNs the
	// duration.
	StartNs int64 `json:"start_ns"`
	DurNs   int64 `json:"dur_ns"`
	// TID is the lane the span ran on (worker index in the exec pool);
	// exporters with a thread axis (Chrome trace_event) group by it.
	TID int `json:"tid,omitempty"`
	// Attrs is the structured payload (cache hit/miss, worker id, seeds).
	Attrs map[string]any `json:"attrs,omitempty"`
}

// SpanSink receives finished spans. Implementations must be safe for
// concurrent use; recording must never influence the simulation.
type SpanSink interface {
	RecordSpan(SpanData)
}

// SpanID derives the deterministic ID for a span from its parent's ID, its
// name and a caller-chosen key (FNV-1a over the three). Use the key to
// distinguish same-named siblings — e.g. the cell index under one batch; 0
// is fine when the name is unique within the parent.
func SpanID(parent uint64, name string, key uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(parent)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	mix(key)
	if h == 0 {
		h = 1 // 0 is the "no parent" sentinel
	}
	return h
}

// Span is one in-flight timed region. A span is owned by the goroutine that
// started it: SetAttr/SetTID/End are not safe to call concurrently on the
// same span, but distinct spans (including siblings under one parent) are
// independent. All methods are safe on a nil receiver.
type Span struct {
	sink  SpanSink
	id    uint64
	paren uint64
	name  string
	start time.Time
	tid   int
	attrs map[string]any
	ended bool
}

// StartSpan begins a root span recording into sink. A nil sink returns a nil
// span, whose whole subtree collapses into no-ops.
func StartSpan(sink SpanSink, name string, key uint64) *Span {
	if sink == nil {
		return nil
	}
	return &Span{
		sink:  sink,
		id:    SpanID(0, name, key),
		name:  name,
		start: time.Now(),
	}
}

// Child begins a sub-span. key distinguishes same-named siblings (use the
// item index); pass 0 when the name is unique within this parent.
func (sp *Span) Child(name string, key uint64) *Span {
	if sp == nil {
		return nil
	}
	return &Span{
		sink:  sp.sink,
		id:    SpanID(sp.id, name, key),
		paren: sp.id,
		name:  name,
		start: time.Now(),
		tid:   sp.tid,
	}
}

// ID returns the span's deterministic ID (0 for a nil span).
func (sp *Span) ID() uint64 {
	if sp == nil {
		return 0
	}
	return sp.id
}

// SetAttr attaches one attribute. Values should be JSON-friendly scalars.
func (sp *Span) SetAttr(k string, v any) {
	if sp == nil {
		return
	}
	if sp.attrs == nil {
		sp.attrs = make(map[string]any)
	}
	sp.attrs[k] = v
}

// SetTID assigns the span's lane (worker index). Children started afterwards
// inherit it.
func (sp *Span) SetTID(tid int) {
	if sp == nil {
		return
	}
	sp.tid = tid
}

// End finishes the span and delivers it to the sink. End is idempotent; a
// second call is ignored, so `defer sp.End()` composes with early explicit
// ends.
func (sp *Span) End() {
	if sp == nil || sp.ended {
		return
	}
	sp.ended = true
	sp.sink.RecordSpan(SpanData{
		ID:      sp.id,
		Parent:  sp.paren,
		Name:    sp.name,
		StartNs: sp.start.UnixNano(),
		DurNs:   int64(time.Since(sp.start)),
		TID:     sp.tid,
		Attrs:   sp.attrs,
	})
}

// SpanCollector buffers finished spans in memory, for tests and programmatic
// readers.
type SpanCollector struct {
	mu    sync.Mutex
	spans []SpanData
}

// RecordSpan appends the span.
func (c *SpanCollector) RecordSpan(d SpanData) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.spans = append(c.spans, d)
}

// Spans returns a copy of everything collected so far, sorted by ID (the
// deterministic order, independent of which worker finished first).
func (c *SpanCollector) Spans() []SpanData {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := append([]SpanData(nil), c.spans...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByName returns the collected spans with the given name, sorted by ID.
func (c *SpanCollector) ByName(name string) []SpanData {
	var out []SpanData
	for _, d := range c.Spans() {
		if d.Name == name {
			out = append(out, d)
		}
	}
	return out
}
