package telemetry

import (
	"encoding/json"
	"io"
	"sync"
)

// Event is one structured occurrence on the event stream: a booby-trap
// detonation, a memory fault, a BTDP-constructor completion, an attacker
// probe, an experiment milestone. Attrs hold the event's payload; values
// should be JSON-friendly scalars (strings, integers rendered as uint64,
// booleans) so the JSONL form stays machine-readable.
type Event struct {
	// Seq is a per-tracer sequence number assigned at emission time.
	Seq uint64 `json:"seq"`
	// Kind names the event class, e.g. "trap", "fault", "btdp-init",
	// "attack.probe", "attack.outcome".
	Kind string `json:"kind"`
	// Attrs is the structured payload.
	Attrs map[string]any `json:"attrs,omitempty"`
}

// Tracer receives structured events. Implementations must be safe for
// concurrent use; emission must never influence the simulation.
type Tracer interface {
	Emit(kind string, attrs map[string]any)
}

// Emit sends an event to t, tolerating a nil tracer.
func Emit(t Tracer, kind string, attrs map[string]any) {
	if t != nil {
		t.Emit(kind, attrs)
	}
}

// JSONLTracer writes one JSON object per event to an io.Writer — the
// -trace FILE format. Events carry a monotonically increasing sequence
// number so interleavings are reconstructible.
type JSONLTracer struct {
	mu  sync.Mutex
	w   io.Writer
	seq uint64
}

// NewJSONLTracer wraps w.
func NewJSONLTracer(w io.Writer) *JSONLTracer { return &JSONLTracer{w: w} }

// Emit writes the event as one JSON line. Write errors are swallowed: a
// broken trace sink must not abort a simulation mid-experiment.
func (t *JSONLTracer) Emit(kind string, attrs map[string]any) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	b, err := json.Marshal(Event{Seq: t.seq, Kind: kind, Attrs: attrs})
	if err != nil {
		return
	}
	b = append(b, '\n')
	t.w.Write(b)
}

// RecordSpan writes a finished span as one {"kind":"span",...} JSON line on
// the same stream, so the JSONL trace interleaves spans with events and a
// single file reconstructs the whole run.
func (t *JSONLTracer) RecordSpan(d SpanData) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	b, err := json.Marshal(struct {
		Seq  uint64   `json:"seq"`
		Kind string   `json:"kind"`
		Span SpanData `json:"span"`
	}{t.seq, "span", d})
	if err != nil {
		return
	}
	b = append(b, '\n')
	t.w.Write(b)
}

// Collector buffers events in memory, for tests and programmatic readers.
type Collector struct {
	mu     sync.Mutex
	events []Event
}

// Emit appends the event.
func (c *Collector) Emit(kind string, attrs map[string]any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, Event{Seq: uint64(len(c.events) + 1), Kind: kind, Attrs: attrs})
}

// Events returns a copy of everything collected so far.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// Kinds returns the count of collected events per kind.
func (c *Collector) Kinds() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := map[string]int{}
	for _, e := range c.events {
		m[e.Kind]++
	}
	return m
}

// MultiTracer fans one event out to several tracers.
type MultiTracer []Tracer

// Emit forwards to every non-nil tracer.
func (m MultiTracer) Emit(kind string, attrs map[string]any) {
	for _, t := range m {
		Emit(t, kind, attrs)
	}
}

// Observer bundles the two sinks a component may report into — a metrics
// registry and an event tracer — plus the knobs that enable optional,
// costlier collection. A nil *Observer (or nil fields) disables everything;
// every method is nil-safe, so instrumented code calls straight through.
type Observer struct {
	Registry *Registry
	Tracer   Tracer
	// Spans receives finished pipeline spans (cell lifecycle, compile/link,
	// execute). Nil disables span tracing.
	Spans SpanSink
	// ProfileFuncs enables the per-function simulated-cycle profiler in
	// runs driven through sim.RunObserved.
	ProfileFuncs bool
	// FlightCap sizes the per-process control-flow flight recorder (rounded
	// up to a power of two). Zero disables recording — the default, so
	// unobserved and metrics-only runs pay nothing in the dispatch loops.
	FlightCap int
}

// FlightRecorderCap returns the configured flight-recorder capacity; zero
// (including on a nil observer) means recording is disabled.
func (o *Observer) FlightRecorderCap() int {
	if o == nil {
		return 0
	}
	return o.FlightCap
}

// Enabled reports whether the observer has any live sink.
func (o *Observer) Enabled() bool {
	return o != nil && (o.Registry != nil || o.Tracer != nil || o.Spans != nil)
}

// Reg returns the registry (nil when absent).
func (o *Observer) Reg() *Registry {
	if o == nil {
		return nil
	}
	return o.Registry
}

// Counter is a nil-safe shortcut for Reg().Counter.
func (o *Observer) Counter(name string, labels ...string) *Counter {
	return o.Reg().Counter(name, labels...)
}

// Gauge is a nil-safe shortcut for Reg().Gauge.
func (o *Observer) Gauge(name string, labels ...string) *Gauge {
	return o.Reg().Gauge(name, labels...)
}

// Histogram is a nil-safe shortcut for Reg().Histogram.
func (o *Observer) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	return o.Reg().Histogram(name, bounds, labels...)
}

// LogHist is a nil-safe shortcut for Reg().LogHist.
func (o *Observer) LogHist(name string, s LogScheme, labels ...string) *LogHist {
	return o.Reg().LogHist(name, s, labels...)
}

// Timer is a nil-safe shortcut for Reg().Timer.
func (o *Observer) Timer(name string, labels ...string) *Timer {
	return o.Reg().Timer(name, labels...)
}

// Emit sends an event to the tracer, if any.
func (o *Observer) Emit(kind string, attrs map[string]any) {
	if o == nil {
		return
	}
	Emit(o.Tracer, kind, attrs)
}

// StartSpan begins a root span against the observer's span sink. With no
// sink (or a nil observer) it returns a nil span, whose whole subtree is a
// no-op.
func (o *Observer) StartSpan(name string, key uint64) *Span {
	if o == nil {
		return nil
	}
	return StartSpan(o.Spans, name, key)
}

// Profiling reports whether per-function profiling was requested.
func (o *Observer) Profiling() bool { return o != nil && o.ProfileFuncs }
