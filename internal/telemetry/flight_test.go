package telemetry

import "testing"

func TestFlightRecorderNilSafe(t *testing.T) {
	var r *FlightRecorder
	r.Record(FlightCall, 1, 2, 3)
	r.ArmGuards([]uint64{0x1000}, 0x1000)
	if r.NearGuard(0x1000) {
		t.Fatal("nil recorder must not match guards")
	}
	if r.Events() != nil || r.Total() != 0 || r.Cap() != 0 {
		t.Fatal("nil recorder must report empty state")
	}
	r.Reset()
	if NewFlightRecorder(0) != nil || NewFlightRecorder(-4) != nil {
		t.Fatal("cap <= 0 must return the disabled (nil) recorder")
	}
}

func TestFlightRecorderCapRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{1, 16}, {16, 16}, {17, 32}, {100, 128}, {256, 256},
	} {
		if got := NewFlightRecorder(tc.in).Cap(); got != tc.want {
			t.Errorf("NewFlightRecorder(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestFlightRecorderOrderAndWrap(t *testing.T) {
	r := NewFlightRecorder(16)
	for i := uint64(0); i < 40; i++ {
		r.Record(FlightJump, i, i+1, i*10)
	}
	if r.Total() != 40 {
		t.Fatalf("Total = %d, want 40", r.Total())
	}
	evs := r.Events()
	if len(evs) != 16 {
		t.Fatalf("len(Events) = %d, want 16 (ring cap)", len(evs))
	}
	for j, ev := range evs {
		want := uint64(40 - 16 + j)
		if ev.PC != want || ev.To != want+1 || ev.Instr != want*10 {
			t.Fatalf("event %d = %+v, want PC %d (oldest-first after wrap)", j, ev, want)
		}
	}

	r.Reset()
	if r.Total() != 0 || r.Events() != nil {
		t.Fatal("Reset must clear the ring")
	}
	r.Record(FlightRet, 7, 8, 9)
	got := r.Events()
	if len(got) != 1 || got[0] != (FlightEvent{Kind: FlightRet, PC: 7, To: 8, Instr: 9}) {
		t.Fatalf("post-Reset Events = %+v", got)
	}
}

func TestFlightRecorderNearGuard(t *testing.T) {
	r := NewFlightRecorder(16)
	const pg = uint64(0x1000)
	r.ArmGuards([]uint64{0x30_000, 0x10_000}, pg) // unsorted on purpose

	for _, tc := range []struct {
		addr uint64
		want bool
	}{
		{0x10_000, true},     // on the guard page
		{0x10_008, true},     // inside the guard page
		{0x0F_FF8, true},     // page just below
		{0x11_000, true},     // page just above
		{0x12_000, false},    // two pages above
		{0x0E_000, false},    // two pages below
		{0x30_FFF, true},     // tail of second guard
		{0x32_000, false},    // past envelope of second guard
		{0x0, false},         // far below prefilter
		{0xFFFF_FFFF, false}, // far above prefilter
		{0x2F_000, true},     // page below second guard
		{0x20_000, false},    // between guards, outside both envelopes
	} {
		if got := r.NearGuard(tc.addr); got != tc.want {
			t.Errorf("NearGuard(%#x) = %v, want %v", tc.addr, got, tc.want)
		}
	}

	r.ArmGuards(nil, pg)
	if r.NearGuard(0x10_000) {
		t.Fatal("disarmed recorder must not match")
	}
}

func TestFlightKindString(t *testing.T) {
	for k, want := range map[FlightKind]string{
		FlightCall: "call", FlightCallInd: "call-ind", FlightRet: "ret",
		FlightJump: "jump", FlightLoad: "load", FlightProbe: "probe",
		FlightFault: "fault", FlightTrap: "trap", FlightKind(0): "?",
	} {
		if got := k.String(); got != want {
			t.Errorf("FlightKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

// Record must stay allocation-free: it runs inside the VM dispatch loops.
func TestFlightRecorderRecordNoAlloc(t *testing.T) {
	r := NewFlightRecorder(64)
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(FlightCall, 0x400000, 0x400100, 12345)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f per call, want 0", allocs)
	}
}
