package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// Golden test of the text exposition format: a small registry covering all
// four metric kinds must render exactly this, byte for byte. Any formatting
// drift (family ordering, label rendering, cumulative buckets) breaks
// Prometheus-compatible scrapers silently, so it gets caught here instead.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("exec.cache.hits").Add(3)
	r.Counter("vm.traps", "kind", "btra").Add(2)
	r.Counter("vm.traps", "kind", "btdp").Add(1)
	r.Gauge("exec.pool.workers").Set(8)
	r.Timer("build.link").Observe(1500 * time.Millisecond)
	h := r.Histogram("audit.nop.len", []float64{1, 2, 4}, "config", "r2c-full")
	for _, v := range []float64{1, 1, 2, 3, 9} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}

	want := strings.Join([]string{
		`# TYPE exec_cache_hits counter`,
		`exec_cache_hits 3`,
		`# TYPE vm_traps counter`,
		`vm_traps{kind="btdp"} 1`,
		`vm_traps{kind="btra"} 2`,
		`# TYPE exec_pool_workers gauge`,
		`exec_pool_workers 8`,
		`# TYPE build_link_seconds_total counter`,
		`build_link_seconds_total 1.5`,
		`# TYPE build_link_count counter`,
		`build_link_count 1`,
		`# TYPE build_link_max_seconds gauge`,
		`build_link_max_seconds 1.5`,
		`# TYPE audit_nop_len histogram`,
		`audit_nop_len_bucket{config="r2c-full",le="1"} 2`,
		`audit_nop_len_bucket{config="r2c-full",le="2"} 3`,
		`audit_nop_len_bucket{config="r2c-full",le="4"} 4`,
		`audit_nop_len_bucket{config="r2c-full",le="+Inf"} 5`,
		`audit_nop_len_sum{config="r2c-full"} 16`,
		`audit_nop_len_count{config="r2c-full"} 5`,
		``,
	}, "\n")
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// The exposition must stay inside the Prometheus charset and escape label
// values, whatever the metric keys look like.
func TestWritePrometheusSanitizes(t *testing.T) {
	r := NewRegistry()
	r.Counter("9weird.name-x", "la.bel", "va\"lue\nwith\\escapes").Add(1)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "# TYPE _9weird_name_x counter\n_9weird_name_x{la_bel=\"va\\\"lue\\nwith\\\\escapes\"} 1\n"
	if got != want {
		t.Errorf("sanitized exposition mismatch:\n--- got ---\n%q\n--- want ---\n%q", got, want)
	}
}

// A nil snapshot writes nothing and reports no error.
func TestWritePrometheusNilSnapshot(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil snapshot rendered %q", buf.String())
	}
}
