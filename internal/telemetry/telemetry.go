// Package telemetry is the observability substrate for the simulator: a
// zero-dependency metrics registry (atomic counters, gauges, fixed-bucket
// histograms, labeled timers) plus a pluggable event tracer. Every hook in
// the stack is nil-safe — a nil *Registry, nil metric handle, nil Tracer or
// nil *Observer turns the corresponding instrumentation into a no-op — so
// instrumented code never has to branch on "is telemetry on".
//
// Telemetry is strictly write-beside: nothing in this package feeds back
// into the simulation. The determinism test in internal/sim asserts that a
// fully-instrumented run produces bit-identical results (cycles, output,
// RNG-derived load-time state) to an uninstrumented one, so instrumentation
// can never perturb a paper number.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Key builds the canonical metric key "name{k=v,...}" from a name and
// alternating label key/value pairs. With no labels the key is just the
// name. Label pairs are sorted by key so the same label set always yields
// the same metric, regardless of argument order.
func Key(name string, labels ...string) string {
	if len(labels) == 0 {
		return name
	}
	n := len(labels) / 2 * 2 // ignore a trailing odd label
	type kv struct{ k, v string }
	pairs := make([]kv, 0, n/2)
	for i := 0; i < n; i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteByte('=')
		b.WriteString(p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// ParseKey splits a metric key produced by Key back into its name and label
// map. Keys without labels return a nil map.
func ParseKey(key string) (name string, labels map[string]string) {
	i := strings.IndexByte(key, '{')
	if i < 0 || !strings.HasSuffix(key, "}") {
		return key, nil
	}
	name = key[:i]
	body := key[i+1 : len(key)-1]
	if body == "" {
		return name, nil
	}
	labels = make(map[string]string)
	for _, part := range strings.Split(body, ",") {
		if eq := strings.IndexByte(part, '='); eq >= 0 {
			labels[part[:eq]] = part[eq+1:]
		}
	}
	return name, labels
}

// Counter is a monotonically increasing atomic counter. All methods are
// safe on a nil receiver (no-op / zero).
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 value that can be set, added to, or raised to
// a maximum. All methods are safe on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds v.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// SetMax raises the gauge to v if v is larger (peak tracking, e.g. max RSS).
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: observation x lands in the first
// bucket whose upper bound satisfies x <= bound; values above every bound
// land in the implicit overflow bucket. All methods are nil-safe.
type Histogram struct {
	bounds []float64 // ascending upper bounds (inclusive)
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    Gauge
}

// Observe records one value.
func (h *Histogram) Observe(x float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket counts are small and fixed; this beats binary
	// search for the typical <16-bucket histogram.
	i := 0
	for i < len(h.bounds) && x > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(x)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// Timer accumulates wall-clock durations under a label — experiment phases,
// whole harness runs. Wall time never feeds back into the simulation, so
// timers are deterministically safe even though their readings are not.
type Timer struct {
	ns    atomic.Int64
	count atomic.Uint64
	max   atomic.Int64
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	t.ns.Add(int64(d))
	t.count.Add(1)
	for {
		old := t.max.Load()
		if old >= int64(d) || t.max.CompareAndSwap(old, int64(d)) {
			return
		}
	}
}

// Time starts the timer and returns a stop function that records the
// elapsed duration when called.
func (t *Timer) Time() func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() { t.Observe(time.Since(start)) }
}

// Total returns the accumulated duration.
func (t *Timer) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.ns.Load())
}

// Count returns the number of recorded durations.
func (t *Timer) Count() uint64 {
	if t == nil {
		return 0
	}
	return t.count.Load()
}

// Registry holds named metrics. Lookup is lock-protected; updates on the
// returned handles are lock-free. A nil *Registry hands out nil handles,
// whose methods are no-ops, so callers never branch on enablement.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	logHists   map[string]*LogHist
	timers     map[string]*Timer
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		logHists:   make(map[string]*LogHist),
		timers:     make(map[string]*Timer),
	}
}

// Counter returns (creating if needed) the counter for name+labels.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	k := Key(name, labels...)
	r.mu.RLock()
	c := r.counters[k]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[k]; c == nil {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge for name+labels.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	k := Key(name, labels...)
	r.mu.RLock()
	g := r.gauges[k]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[k]; g == nil {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns (creating if needed) the histogram for name+labels.
// bounds are the ascending inclusive upper bounds; they are fixed at first
// creation and later calls with different bounds return the existing
// histogram unchanged.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	k := Key(name, labels...)
	r.mu.RLock()
	h := r.histograms[k]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[k]; h == nil {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
		r.histograms[k] = h
	}
	return h
}

// Timer returns (creating if needed) the timer for name+labels.
func (r *Registry) Timer(name string, labels ...string) *Timer {
	if r == nil {
		return nil
	}
	k := Key(name, labels...)
	r.mu.RLock()
	t := r.timers[k]
	r.mu.RUnlock()
	if t != nil {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t = r.timers[k]; t == nil {
		t = &Timer{}
		r.timers[k] = t
	}
	return t
}

// HistogramSnapshot is the serialized form of one histogram.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"` // ascending inclusive upper bounds
	Counts []uint64  `json:"counts"` // len(Bounds)+1; last is overflow
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// TimerSnapshot is the serialized form of one timer.
type TimerSnapshot struct {
	TotalNs int64  `json:"total_ns"`
	Count   uint64 `json:"count"`
	MaxNs   int64  `json:"max_ns"`
}

// Snapshot is a point-in-time copy of a registry, serializable to JSON.
// Map keys are the canonical metric keys from Key. Log-bucketed histograms
// appear in Histograms alongside the fixed-bucket ones — the serialized
// shape (bounds, per-bucket counts, count, sum) is shared.
type Snapshot struct {
	// Meta is the optional provenance header (-metrics-out stamps go
	// version, GOOS/GOARCH, CPU count, git describe here) so snapshots
	// from different machines stay interpretable side by side. It is not a
	// metric and nothing in the registry populates it.
	Meta       map[string]string            `json:"meta,omitempty"`
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Timers     map[string]TimerSnapshot     `json:"timers,omitempty"`
}

// Snapshot copies the registry's current values. Safe to call while other
// goroutines keep updating metrics. A nil registry yields an empty snapshot.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
		Timers:     map[string]TimerSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for k, c := range r.counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range r.gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range r.histograms {
		hs := HistogramSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]uint64, len(h.counts)),
			Count:  h.count.Load(),
			Sum:    h.sum.Value(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[k] = hs
	}
	for k, h := range r.logHists {
		s.Histograms[k] = h.Snapshot()
	}
	for k, t := range r.timers {
		s.Timers[k] = TimerSnapshot{TotalNs: t.ns.Load(), Count: t.count.Load(), MaxNs: t.max.Load()}
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON (the -metrics-out
// format). encoding/json sorts map keys, so the output is deterministic for
// a given set of values.
func (r *Registry) WriteJSON(w io.Writer) error {
	return r.WriteJSONMeta(w, nil)
}

// WriteJSONMeta is WriteJSON with a provenance header attached to the
// snapshot, so a -metrics-out file records the environment that produced it.
func (r *Registry) WriteJSONMeta(w io.Writer, meta map[string]string) error {
	s := r.Snapshot()
	s.Meta = meta
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// KV is one metric key with its numeric value, for sorted reports.
type KV struct {
	Key   string
	Value float64
}

// TopCounters returns the counters whose name (the part before any label
// block) equals name, sorted descending by value, at most n entries. It is
// the query behind the hot-function table.
func (s *Snapshot) TopCounters(name string, n int) []KV {
	var out []KV
	for k, v := range s.Counters {
		if base, _ := ParseKey(k); base == name {
			out = append(out, KV{k, float64(v)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Value != out[j].Value {
			return out[i].Value > out[j].Value
		}
		return out[i].Key < out[j].Key
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Fprintf is a tiny formatting helper used by reports; it ignores a nil
// writer so report rendering is as nil-safe as the metric hooks.
func Fprintf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}
