package telemetry

import (
	"bufio"
	"errors"
	"math"
	"net/http"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"
)

// testScheme keeps goldens easy to reason about: bounds 1, 2, 4, ..., 512.
var testScheme = LogScheme{Min: 1, Growth: 2, Buckets: 10}

func TestLogSchemeBounds(t *testing.T) {
	got := LogScheme{Min: 1, Growth: 2, Buckets: 4}.Bounds()
	want := []float64{1, 2, 4, 8}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Bounds() = %v, want %v", got, want)
	}
	if (LogScheme{}).Bounds() != nil {
		t.Errorf("zero scheme Bounds() != nil")
	}
	for _, s := range []LogScheme{LatencyScheme, CycleScheme} {
		if !s.Valid() {
			t.Errorf("default scheme %+v not valid", s)
		}
		b := s.Bounds()
		if len(b) != s.Buckets {
			t.Errorf("scheme %+v: %d bounds, want %d", s, len(b), s.Buckets)
		}
		for i := 1; i < len(b); i++ {
			if b[i] <= b[i-1] {
				t.Errorf("scheme %+v: bounds not ascending at %d", s, i)
			}
		}
	}
	for _, s := range []LogScheme{{Min: 0, Growth: 2, Buckets: 4}, {Min: 1, Growth: 1, Buckets: 4}, {Min: 1, Growth: 2, Buckets: 0}} {
		if s.Valid() {
			t.Errorf("scheme %+v unexpectedly valid", s)
		}
		if NewLogHist(s) != nil {
			t.Errorf("NewLogHist(%+v) != nil", s)
		}
	}
}

// TestLogHistQuantileGolden pins the estimator against closed-form answers:
// linear interpolation inside the containing bucket, first bucket from 0,
// overflow clamped to the last finite bound.
func TestLogHistQuantileGolden(t *testing.T) {
	// Four observations of 3 land in the (2, 4] bucket: the quantile walks
	// linearly from 2 to 4.
	h := NewLogHist(testScheme)
	for i := 0; i < 4; i++ {
		h.Observe(3)
	}
	s := h.Snapshot()
	for _, tc := range []struct{ q, want float64 }{
		{0, 2}, {0.25, 2.5}, {0.5, 3}, {0.75, 3.5}, {1, 4},
	} {
		if got := s.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}

	// First bucket interpolates from 0, not from the bound below it.
	h2 := NewLogHist(testScheme)
	h2.Observe(0.5)
	if got := h2.Snapshot().Quantile(0.5); got != 0.5 {
		t.Errorf("first-bucket Quantile(0.5) = %v, want 0.5", got)
	}

	// Overflow clamps to the last finite bound instead of inventing mass.
	h3 := NewLogHist(testScheme)
	h3.Observe(1e6)
	if got := h3.Snapshot().Quantile(0.99); got != 512 {
		t.Errorf("overflow Quantile(0.99) = %v, want 512", got)
	}

	// Two-bucket split: 2 obs in (1,2], 2 obs in (2,4]; the median sits at
	// the shared bound, p75 halfway up the second bucket.
	h4 := NewLogHist(testScheme)
	h4.Observe(1.5)
	h4.Observe(1.5)
	h4.Observe(3)
	h4.Observe(3)
	s4 := h4.Snapshot()
	if got := s4.Quantile(0.5); got != 2 {
		t.Errorf("split Quantile(0.5) = %v, want 2", got)
	}
	if got := s4.Quantile(0.75); got != 3 {
		t.Errorf("split Quantile(0.75) = %v, want 3", got)
	}

	if got := (HistogramSnapshot{}).Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty Quantile(0.5) = %v, want NaN", got)
	}
}

func TestLogHistMergeAssociative(t *testing.T) {
	mk := func(vals ...float64) HistogramSnapshot {
		h := NewLogHist(testScheme)
		for _, v := range vals {
			h.Observe(v)
		}
		return h.Snapshot()
	}
	a := mk(0.5, 3, 700)
	b := mk(1.5, 1.5, 100)
	c := mk(9, 10000)

	ab, err := a.Merge(b)
	if err != nil {
		t.Fatal(err)
	}
	abc1, err := ab.Merge(c)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := b.Merge(c)
	if err != nil {
		t.Fatal(err)
	}
	abc2, err := a.Merge(bc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(abc1, abc2) {
		t.Errorf("merge not associative: %+v vs %+v", abc1, abc2)
	}
	if abc1.Count != 8 {
		t.Errorf("merged Count = %d, want 8", abc1.Count)
	}

	// Merging with an empty snapshot is the identity in either order.
	if got, err := a.Merge(HistogramSnapshot{}); err != nil || !reflect.DeepEqual(got, a) {
		t.Errorf("merge with empty: %+v, %v", got, err)
	}
	if got, err := (HistogramSnapshot{}).Merge(a); err != nil || !reflect.DeepEqual(got, a) {
		t.Errorf("empty merge: %+v, %v", got, err)
	}

	// Different schemes refuse to merge rather than mislabel mass.
	other := NewLogHist(LogScheme{Min: 10, Growth: 3, Buckets: 10})
	other.Observe(15)
	if _, err := a.Merge(other.Snapshot()); err == nil {
		t.Errorf("merge across schemes did not error")
	}
}

func TestLogHistNilSafe(t *testing.T) {
	var h *LogHist
	h.Observe(1) // must not panic
	if h.Count() != 0 || h.Sum() != 0 {
		t.Errorf("nil hist Count/Sum = %d/%v", h.Count(), h.Sum())
	}
	if s := h.Snapshot(); s.Count != 0 {
		t.Errorf("nil hist Snapshot = %+v", s)
	}
	if (h.Scheme() != LogScheme{}) {
		t.Errorf("nil hist Scheme = %+v", h.Scheme())
	}
	var r *Registry
	if r.LogHist("x", testScheme) != nil {
		t.Errorf("nil registry LogHist != nil")
	}
}

func TestRegistryLogHist(t *testing.T) {
	reg := NewRegistry()
	h := reg.LogHist("exec.cell.seconds", testScheme)
	if h == nil {
		t.Fatal("registry LogHist = nil")
	}
	if reg.LogHist("exec.cell.seconds", LogScheme{Min: 9, Growth: 9, Buckets: 9}) != h {
		t.Errorf("second LogHist call did not return the existing histogram")
	}
	h.Observe(3)
	h.Observe(100)
	snap := reg.Snapshot()
	hs, ok := snap.Histograms["exec.cell.seconds"]
	if !ok {
		t.Fatalf("snapshot lacks the log histogram; has %v", snap.Histograms)
	}
	if hs.Count != 2 || hs.Sum != 103 {
		t.Errorf("snapshot count/sum = %d/%v, want 2/103", hs.Count, hs.Sum)
	}
}

// TestLogHistPrometheusExposition pins the property a scraper relies on: the
// /metrics endpoint serves the cell-latency log histogram as a well-formed
// Prometheus histogram — cumulative, nondecreasing _bucket series ending in
// le="+Inf", whose value equals _count.
func TestLogHistPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.LogHist("exec.cell.seconds", testScheme)
	for _, v := range []float64{0.5, 3, 3, 9, 10000} {
		h.Observe(v)
	}

	s, err := ServeOps("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatalf("ServeOps: %v", err)
	}
	defer s.Close()
	client := &http.Client{Timeout: 5 * time.Second}
	defer client.CloseIdleConnections()
	resp, err := client.Get(s.URL() + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}

	var (
		sawType    bool
		buckets    []uint64
		infCount   = uint64(math.MaxUint64)
		count      = uint64(math.MaxUint64)
		sawSum     bool
		scanner    = bufio.NewScanner(resp.Body)
		parseValue = func(line string) uint64 {
			f := strings.Fields(line)
			n, err := strconv.ParseUint(f[len(f)-1], 10, 64)
			if err != nil {
				t.Fatalf("bad sample value in %q: %v", line, err)
			}
			return n
		}
	)
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case line == "# TYPE exec_cell_seconds histogram":
			sawType = true
		case strings.HasPrefix(line, "exec_cell_seconds_bucket{"):
			if strings.Contains(line, `le="+Inf"`) {
				infCount = parseValue(line)
			} else {
				buckets = append(buckets, parseValue(line))
			}
		case strings.HasPrefix(line, "exec_cell_seconds_sum"):
			sawSum = true
		case strings.HasPrefix(line, "exec_cell_seconds_count"):
			count = parseValue(line)
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatalf("scan /metrics: %v", err)
	}
	if !sawType {
		t.Errorf("missing # TYPE exec_cell_seconds histogram")
	}
	if !sawSum {
		t.Errorf("missing exec_cell_seconds_sum")
	}
	if len(buckets) != testScheme.Buckets {
		t.Errorf("%d finite buckets, want %d", len(buckets), testScheme.Buckets)
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] < buckets[i-1] {
			t.Errorf("bucket series not cumulative at %d: %v", i, buckets)
		}
	}
	if count != 5 || infCount != 5 {
		t.Errorf("count = %d, le=+Inf = %d, want 5 observations", count, infCount)
	}
	if len(buckets) > 0 && buckets[len(buckets)-1] != 4 {
		// 0.5, 3, 3, 9 are within the finite bounds; 10000 only in +Inf.
		t.Errorf("last finite bucket = %d, want 4", buckets[len(buckets)-1])
	}
}

// Satellite (PR 8): Merge on mismatched schemes must return the typed
// *BucketMismatchError so callers can distinguish schema drift from I/O
// failures, and Quantile must be well-defined at its edges.
func TestLogHistMergeBucketMismatchTyped(t *testing.T) {
	a := NewLogHist(LogScheme{Min: 1, Growth: 2, Buckets: 4})
	b := NewLogHist(LogScheme{Min: 1, Growth: 2, Buckets: 6})
	c := NewLogHist(LogScheme{Min: 2, Growth: 2, Buckets: 4})
	a.Observe(3)
	b.Observe(3)
	c.Observe(3)

	_, err := a.Snapshot().Merge(b.Snapshot())
	var bm *BucketMismatchError
	if !errors.As(err, &bm) {
		t.Fatalf("length mismatch: err = %v, want *BucketMismatchError", err)
	}
	if bm.Bucket != -1 || bm.LenA != 4 || bm.LenB != 6 {
		t.Fatalf("length mismatch detail = %+v", bm)
	}
	if !strings.Contains(bm.Error(), "4 vs 6 bounds") {
		t.Fatalf("length mismatch message = %q", bm.Error())
	}

	_, err = a.Snapshot().Merge(c.Snapshot())
	bm = nil
	if !errors.As(err, &bm) {
		t.Fatalf("bound mismatch: err = %v, want *BucketMismatchError", err)
	}
	if bm.Bucket != 0 || bm.A != 1 || bm.B != 2 {
		t.Fatalf("bound mismatch detail = %+v", bm)
	}
	if !strings.Contains(bm.Error(), "bucket 0") {
		t.Fatalf("bound mismatch message = %q", bm.Error())
	}

	// Same scheme still merges cleanly.
	if _, err := a.Snapshot().Merge(a.Snapshot()); err != nil {
		t.Fatalf("same-scheme merge: %v", err)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	// Empty histogram: every quantile is NaN (callers must guard before
	// JSON-marshaling).
	empty := NewLogHist(testScheme).Snapshot()
	for _, q := range []float64{0, 0.5, 1} {
		if v := empty.Quantile(q); !math.IsNaN(v) {
			t.Errorf("empty.Quantile(%v) = %v, want NaN", q, v)
		}
	}
	if v := (HistogramSnapshot{}).Quantile(0.5); !math.IsNaN(v) {
		t.Errorf("zero-value snapshot Quantile = %v, want NaN", v)
	}

	// Single populated bucket: all quantiles land within that bucket's
	// range (0 to its upper bound, interpolated).
	h := NewLogHist(testScheme)
	h.Observe(3) // bucket with bound 4
	s := h.Snapshot()
	for _, q := range []float64{0, 0.25, 0.5, 1} {
		v := s.Quantile(q)
		if math.IsNaN(v) || v < 2 || v > 4 {
			t.Errorf("single-bucket Quantile(%v) = %v, want within (2,4]", q, v)
		}
	}
	if s.Quantile(0) > s.Quantile(1) {
		t.Errorf("Quantile(0)=%v > Quantile(1)=%v", s.Quantile(0), s.Quantile(1))
	}

	// q outside [0,1] clamps; NaN q is NaN.
	if s.Quantile(-5) != s.Quantile(0) || s.Quantile(5) != s.Quantile(1) {
		t.Error("out-of-range q must clamp to [0,1]")
	}
	if !math.IsNaN(s.Quantile(math.NaN())) {
		t.Error("Quantile(NaN) must be NaN")
	}

	// Overflow-only data: quantiles clamp to the last finite bound.
	o := NewLogHist(testScheme)
	o.Observe(1e9)
	last := testScheme.Bounds()[testScheme.Buckets-1]
	if v := o.Snapshot().Quantile(0.99); v != last {
		t.Errorf("overflow Quantile = %v, want last bound %v", v, last)
	}
}
