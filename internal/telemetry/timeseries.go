package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
)

// Time-series layer: fixed-capacity rings of (t, v) samples, one per metric
// name, fed on deterministic ticks by whoever owns the relevant clock (the
// fleet's simulated clock, the exec engine's completed-cell count). The
// rings give every scalar metric a trajectory — the temporal dimension the
// windowed alert functions and the /timeseries + /dashboard endpoints read —
// without touching the registry: a sample is an explicit, clock-stamped
// observation, so the ring contents are byte-identical at any -jobs width
// as long as the sampler's clock is.

// DefaultSeriesCap is the per-series ring capacity when the caller does not
// choose one: enough for a few hundred ticks of trajectory at sparkline
// resolution while keeping a fleet-sized set comfortably in cache.
const DefaultSeriesCap = 512

// TimeSeries is one named series: a fixed-capacity ring of (t, v) samples.
// Pushing past capacity overwrites the oldest sample and counts it as
// dropped — the ring never allocates after construction.
type TimeSeries struct {
	name    string
	t, v    []float64
	head    int // index of the oldest sample
	n       int
	dropped uint64
}

func newTimeSeries(name string, capacity int) *TimeSeries {
	return &TimeSeries{name: name, t: make([]float64, capacity), v: make([]float64, capacity)}
}

// push appends one sample, reporting whether it overwrote the oldest.
func (s *TimeSeries) push(t, v float64) bool {
	if s.n < len(s.t) {
		i := (s.head + s.n) % len(s.t)
		s.t[i], s.v[i] = t, v
		s.n++
		return false
	}
	s.t[s.head], s.v[s.head] = t, v
	s.head = (s.head + 1) % len(s.t)
	s.dropped++
	return true
}

// Len returns the number of live samples.
func (s *TimeSeries) Len() int { return s.n }

// At returns the i-th oldest live sample.
func (s *TimeSeries) At(i int) (t, v float64) {
	j := (s.head + i) % len(s.t)
	return s.t[j], s.v[j]
}

// Dropped returns how many samples ring overwrite has discarded.
func (s *TimeSeries) Dropped() uint64 { return s.dropped }

// SeriesSet is a concurrency-safe collection of TimeSeries rings. The
// sampler side calls Sample from the loop that owns the clock; the consumer
// side (ops endpoints, -timeseries-out, windowed alerts) reads immutable
// Snapshot views. A nil SeriesSet ignores samples and snapshots empty, so
// sampling call sites need no guards — the same write-beside contract as
// the Observer.
type SeriesSet struct {
	mu     sync.Mutex
	cap    int
	obs    *Observer
	series map[string]*TimeSeries
	now    float64
}

// NewSeriesSet returns a set whose rings hold capacity samples each
// (<= 0 picks DefaultSeriesCap). obs, when non-nil, receives the
// telemetry.series.dropped counter on ring overwrite.
func NewSeriesSet(capacity int, obs *Observer) *SeriesSet {
	if capacity <= 0 {
		capacity = DefaultSeriesCap
	}
	return &SeriesSet{cap: capacity, obs: obs, series: map[string]*TimeSeries{}}
}

// Sample records value v for the named series at time t. Non-finite values
// are skipped — NaN is how an empty histogram quantile says "no data yet",
// and a NaN in a ring would poison every JSON marshal downstream.
func (ss *SeriesSet) Sample(t float64, name string, v float64) {
	if ss == nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	ss.mu.Lock()
	s := ss.series[name]
	if s == nil {
		s = newTimeSeries(name, ss.cap)
		ss.series[name] = s
	}
	overwrote := s.push(t, v)
	if t > ss.now {
		ss.now = t
	}
	ss.mu.Unlock()
	if overwrote {
		ss.obs.Counter("telemetry.series.dropped").Inc()
	}
}

// Now returns the largest sample time seen so far — the reference point the
// windowed alert functions measure their windows back from.
func (ss *SeriesSet) Now() float64 {
	if ss == nil {
		return 0
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.now
}

// SeriesPoint is one (t, v) sample, marshaled as the two-element array
// [t, v] — half the JSON of an object per point at sparkline densities.
type SeriesPoint [2]float64

// SeriesData is one series in a snapshot.
type SeriesData struct {
	Name string `json:"name"`
	// Dropped counts samples lost to ring overwrite over the series'
	// lifetime — the per-series view of telemetry.series.dropped.
	Dropped uint64        `json:"dropped,omitempty"`
	Points  []SeriesPoint `json:"points"`
}

// SeriesSnapshot is an immutable point-in-time view of a SeriesSet, sorted
// by series name so it marshals deterministically.
type SeriesSnapshot struct {
	Now    float64      `json:"now"`
	Series []SeriesData `json:"series"`
}

// matchSeries reports whether a series name matches a metric reference: an
// exact match, or — for a bare reference — any series sharing that base
// name (label sets) or dotted prefix (derived series like NAME.p99).
func matchSeries(name, metric string) bool {
	if name == metric {
		return true
	}
	if strings.Contains(metric, "{") {
		return false
	}
	return strings.HasPrefix(name, metric+".") || strings.HasPrefix(name, metric+"{")
}

// Snapshot copies the current rings out. filter, when non-empty, keeps only
// series matching one of the references (matchSeries semantics — the
// ?series= parameter); last > 0 keeps only each series' newest last points
// (the ?last= parameter).
func (ss *SeriesSet) Snapshot(filter []string, last int) *SeriesSnapshot {
	snap := &SeriesSnapshot{Series: []SeriesData{}}
	if ss == nil {
		return snap
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	snap.Now = ss.now
	names := make([]string, 0, len(ss.series))
	for name := range ss.series {
		if len(filter) > 0 {
			keep := false
			for _, f := range filter {
				if matchSeries(name, f) {
					keep = true
					break
				}
			}
			if !keep {
				continue
			}
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := ss.series[name]
		start := 0
		if last > 0 && s.n > last {
			start = s.n - last
		}
		sd := SeriesData{Name: name, Dropped: s.dropped, Points: make([]SeriesPoint, 0, s.n-start)}
		for i := start; i < s.n; i++ {
			t, v := s.At(i)
			sd.Points = append(sd.Points, SeriesPoint{t, v})
		}
		snap.Series = append(snap.Series, sd)
	}
	return snap
}

// WriteJSON writes the full snapshot as indented JSON — the -timeseries-out
// artifact. Deterministic samplers make it byte-identical across runs and
// -jobs widths.
func (ss *SeriesSet) WriteJSON(w io.Writer) error {
	body, err := json.MarshalIndent(ss.Snapshot(nil, 0), "", "  ")
	if err != nil {
		return fmt.Errorf("telemetry: marshal timeseries: %w", err)
	}
	_, err = w.Write(append(body, '\n'))
	return err
}

// window returns every point of series matching metric with t inside the
// trailing window [now-w, now], concatenated per series in name order.
func (sn *SeriesSnapshot) window(metric string, w float64) [][]SeriesPoint {
	if sn == nil {
		return nil
	}
	var out [][]SeriesPoint
	for _, sd := range sn.Series {
		if !matchSeries(sd.Name, metric) {
			continue
		}
		var pts []SeriesPoint
		for _, p := range sd.Points {
			if p[0] >= sn.Now-w {
				pts = append(pts, p)
			}
		}
		if len(pts) > 0 {
			out = append(out, pts)
		}
	}
	return out
}

// windowRate is the summed per-series rate of change over the trailing
// window: (last - first) / (t_last - t_first) for each matching series with
// at least two spanning samples. For a sampled cumulative counter this is
// its event rate; for a sampled gauge its slope.
func (sn *SeriesSnapshot) windowRate(metric string, w float64) (float64, bool) {
	total, found := 0.0, false
	for _, pts := range sn.window(metric, w) {
		first, last := pts[0], pts[len(pts)-1]
		if last[0] <= first[0] {
			continue
		}
		total += (last[1] - first[1]) / (last[0] - first[0])
		found = true
	}
	return total, found
}

// windowValues flattens every matching sample value in the trailing window.
func (sn *SeriesSnapshot) windowValues(metric string, w float64) []float64 {
	var vals []float64
	for _, pts := range sn.window(metric, w) {
		for _, p := range pts {
			vals = append(vals, p[1])
		}
	}
	return vals
}
