package telemetry

// DashboardHTML is the /dashboard page: a single self-contained live
// observatory for a serving fleet — stat tiles, SVG sparklines over
// /timeseries, per-variant health from /progress, and the live alert table
// from /alerts — with zero external assets, so it works from a scratch
// container or an air-gapped lab box. The page only polls the read-only
// JSON endpoints; it can never perturb a run. Golden-file tested
// (testdata/dashboard.golden.html), so any edit is a reviewed diff.
const DashboardHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>R2C fleet observatory</title>
<style>
  :root {
    color-scheme: light;
    --surface-1: #fcfcfb;
    --page: #f9f9f7;
    --ink-1: #0b0b0b;
    --ink-2: #52514e;
    --ink-muted: #898781;
    --grid: #e1e0d9;
    --baseline: #c3c2b7;
    --ring: rgba(11,11,11,0.10);
    --series-1: #2a78d6;
    --series-2: #eb6834;
    --series-3: #1baf7a;
    --status-good: #0ca30c;
    --status-warn: #fab219;
    --status-crit: #d03b3b;
  }
  @media (prefers-color-scheme: dark) {
    :root {
      color-scheme: dark;
      --surface-1: #1a1a19;
      --page: #0d0d0d;
      --ink-1: #ffffff;
      --ink-2: #c3c2b7;
      --ink-muted: #898781;
      --grid: #2c2c2a;
      --baseline: #383835;
      --ring: rgba(255,255,255,0.10);
      --series-1: #3987e5;
      --series-2: #d95926;
      --series-3: #199e70;
    }
  }
  * { box-sizing: border-box; }
  body {
    margin: 0; padding: 16px 20px 28px;
    background: var(--page); color: var(--ink-1);
    font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
  }
  header { display: flex; align-items: baseline; gap: 12px; flex-wrap: wrap; margin-bottom: 14px; }
  h1 { font-size: 17px; font-weight: 650; margin: 0; }
  .sub { color: var(--ink-muted); font-size: 12px; }
  .badge { font-size: 12px; font-weight: 600; padding: 2px 10px; border-radius: 999px; border: 1px solid var(--ring); background: var(--surface-1); }
  .badge .dot { margin-right: 6px; }
  .tiles { display: grid; grid-template-columns: repeat(auto-fit, minmax(150px, 1fr)); gap: 10px; margin-bottom: 14px; }
  .tile { background: var(--surface-1); border: 1px solid var(--ring); border-radius: 8px; padding: 10px 14px; }
  .tile .label { color: var(--ink-2); font-size: 12px; }
  .tile .value { font-size: 26px; font-weight: 650; margin-top: 2px; }
  .tile .hint { color: var(--ink-muted); font-size: 11px; }
  .cards { display: grid; grid-template-columns: repeat(auto-fit, minmax(320px, 1fr)); gap: 10px; margin-bottom: 14px; }
  .card { background: var(--surface-1); border: 1px solid var(--ring); border-radius: 8px; padding: 12px 14px; }
  .card h2 { font-size: 13px; font-weight: 650; margin: 0 0 2px; }
  .legend { display: flex; gap: 14px; font-size: 11px; color: var(--ink-2); margin: 2px 0 6px; }
  .chip { display: inline-block; width: 10px; height: 10px; border-radius: 2px; margin-right: 5px; vertical-align: -1px; }
  svg.spark { display: block; width: 100%; height: 96px; }
  svg.spark .base { stroke: var(--baseline); stroke-width: 1; }
  svg.spark polyline { fill: none; stroke-width: 2; stroke-linejoin: round; stroke-linecap: round; }
  svg.spark text { font: 11px system-ui, -apple-system, "Segoe UI", sans-serif; fill: var(--ink-2); }
  table { width: 100%; border-collapse: collapse; font-size: 13px; }
  th { text-align: left; color: var(--ink-2); font-weight: 600; font-size: 12px; border-bottom: 1px solid var(--grid); padding: 4px 10px 4px 0; }
  td { border-bottom: 1px solid var(--grid); padding: 4px 10px 4px 0; font-variant-numeric: tabular-nums; }
  .state { font-weight: 600; }
  .muted { color: var(--ink-muted); }
  .firing { color: var(--status-crit); font-weight: 650; }
  footer { margin-top: 14px; color: var(--ink-muted); font-size: 11px; }
</style>
</head>
<body>
<header>
  <h1>R2C fleet observatory</h1>
  <span class="badge" id="health"><span class="dot">○</span>connecting…</span>
  <span class="sub" id="clock"></span>
</header>

<div class="tiles">
  <div class="tile"><div class="label">Requests served</div><div class="value" id="t-served">–</div><div class="hint" id="t-served-hint"></div></div>
  <div class="tile"><div class="label">Throughput (sim req/s)</div><div class="value" id="t-rps">–</div></div>
  <div class="tile"><div class="label">Quarantines</div><div class="value" id="t-quar">–</div></div>
  <div class="tile"><div class="label">Recoveries</div><div class="value" id="t-recov">–</div></div>
  <div class="tile"><div class="label">Alerts firing</div><div class="value" id="t-alerts">–</div></div>
</div>

<div class="cards">
  <div class="card">
    <h2>Throughput</h2>
    <div class="legend"><span><span class="chip" style="background:var(--series-1)"></span>fleet.throughput.rps</span></div>
    <div id="c-thru"></div>
  </div>
  <div class="card">
    <h2>Sojourn latency (sim seconds)</h2>
    <div class="legend">
      <span><span class="chip" style="background:var(--series-1)"></span>p50</span>
      <span><span class="chip" style="background:var(--series-2)"></span>p99</span>
    </div>
    <div id="c-sojourn"></div>
  </div>
  <div class="card">
    <h2>Quarantine / heal events (cumulative)</h2>
    <div class="legend">
      <span><span class="chip" style="background:var(--series-2)"></span>quarantines</span>
      <span><span class="chip" style="background:var(--series-3)"></span>recoveries</span>
    </div>
    <div id="c-heal"></div>
  </div>
</div>

<div class="cards">
  <div class="card">
    <h2>Variants</h2>
    <table>
      <thead><tr><th>slot</th><th>state</th><th>gen</th><th>seed</th><th>served</th></tr></thead>
      <tbody id="variants"><tr><td colspan="5" class="muted">waiting for /progress…</td></tr></tbody>
    </table>
  </div>
  <div class="card">
    <h2>Alerts</h2>
    <table>
      <thead><tr><th>state</th><th>rule</th><th>value</th><th>expr</th></tr></thead>
      <tbody id="alerts"><tr><td colspan="4" class="muted">no alert rules wired (-alert-rules)</td></tr></tbody>
    </table>
  </div>
</div>

<footer>Polls /timeseries, /progress, /alerts and /healthz every 2s. All times are the run's deterministic simulated clock.</footer>

<script>
"use strict";
var SERIES_VARS = ["--series-1", "--series-2", "--series-3"];
function cssVar(name) {
  return getComputedStyle(document.documentElement).getPropertyValue(name).trim();
}
function fmt(v) {
  if (!isFinite(v)) return "–";
  if (v !== 0 && Math.abs(v) < 0.001) return v.toExponential(2);
  return String(Number(v.toPrecision(4)));
}
// spark renders one fixed-order multi-series sparkline: shared time domain,
// one shared y-scale (one axis), 2px strokes, baseline hairline, and a
// direct label on each series' last value (ink, not series color).
function spark(seriesList) {
  var W = 600, H = 96, PAD = 6, LABELW = 64;
  var tmin = Infinity, tmax = -Infinity, vmin = Infinity, vmax = -Infinity, any = false;
  seriesList.forEach(function (s) {
    (s.points || []).forEach(function (p) {
      any = true;
      if (p[0] < tmin) tmin = p[0];
      if (p[0] > tmax) tmax = p[0];
      if (p[1] < vmin) vmin = p[1];
      if (p[1] > vmax) vmax = p[1];
    });
  });
  if (!any) return '<div class="muted" style="font-size:12px">no samples yet</div>';
  if (tmax === tmin) tmax = tmin + 1;
  if (vmax === vmin) { vmax = vmin + 1; vmin = vmin - 1; }
  var sx = function (t) { return PAD + (t - tmin) / (tmax - tmin) * (W - 2 * PAD - LABELW); };
  var sy = function (v) { return H - PAD - (v - vmin) / (vmax - vmin) * (H - 2 * PAD); };
  var out = '<svg class="spark" viewBox="0 0 ' + W + ' ' + H + '" preserveAspectRatio="none" role="img">';
  out += '<line class="base" x1="' + PAD + '" y1="' + (H - PAD) + '" x2="' + (W - PAD - LABELW) + '" y2="' + (H - PAD) + '"/>';
  seriesList.forEach(function (s, i) {
    var pts = s.points || [];
    if (!pts.length) return;
    var coords = pts.map(function (p) { return sx(p[0]).toFixed(1) + "," + sy(p[1]).toFixed(1); }).join(" ");
    var color = cssVar(SERIES_VARS[i % SERIES_VARS.length]);
    out += '<polyline points="' + coords + '" stroke="' + color + '"/>';
    var last = pts[pts.length - 1];
    var y = Math.min(H - PAD, Math.max(10, sy(last[1]) + 4));
    out += '<text x="' + (W - PAD - LABELW + 6) + '" y="' + y.toFixed(1) + '">' + fmt(last[1]) + "</text>";
  });
  return out + "</svg>";
}
function byName(ts, name) {
  var all = (ts && ts.series) || [];
  for (var i = 0; i < all.length; i++) if (all[i].name === name) return all[i];
  return { points: [] };
}
var STATE_ICON = { serving: ["●", "--status-good"], quarantined: ["▲", "--status-warn"], failed: ["■", "--status-crit"] };
function stateCell(state) {
  var s = STATE_ICON[state] || ["○", "--ink-muted"];
  return '<span class="state"><span style="color:var(' + s[1] + ')">' + s[0] + "</span> " + state + "</span>";
}
function esc(s) {
  return String(s).replace(/&/g, "&amp;").replace(/</g, "&lt;").replace(/>/g, "&gt;");
}
function getJSON(url) {
  return fetch(url).then(function (r) { return r.ok ? r.json() : null; }).catch(function () { return null; });
}
function getText(url) {
  return fetch(url).then(function (r) { return r.text().then(function (t) { return { status: r.status, body: t }; }); })
    .catch(function () { return null; });
}
function refresh() {
  getJSON("/timeseries?last=240").then(function (ts) {
    if (!ts) return;
    document.getElementById("clock").textContent = "sim clock " + fmt(ts.now) + "s";
    document.getElementById("c-thru").innerHTML = spark([byName(ts, "fleet.throughput.rps")]);
    document.getElementById("c-sojourn").innerHTML = spark([byName(ts, "fleet.sojourn.p50"), byName(ts, "fleet.sojourn.p99")]);
    document.getElementById("c-heal").innerHTML = spark([byName(ts, "fleet.quarantines"), byName(ts, "fleet.recoveries")]);
  });
  getJSON("/progress").then(function (p) {
    if (!p) return;
    if (typeof p.served === "number") {
      document.getElementById("t-served").textContent = fmt(p.served);
      document.getElementById("t-served-hint").textContent = "of " + fmt(p.requests);
    }
    document.getElementById("t-quar").textContent = fmt(p.quarantines);
    document.getElementById("t-recov").textContent = fmt(p.recoveries);
    if (p.sim_clock_seconds > 0 && p.served > 0) {
      document.getElementById("t-rps").textContent = fmt(p.served / p.sim_clock_seconds);
    }
    var rows = (p.slots || []).map(function (s) {
      return "<tr><td>" + esc(s.id) + "</td><td>" + stateCell(s.state) + "</td><td>" + esc(s.gen) +
        "</td><td>" + esc(s.seed) + "</td><td>" + esc(s.served) + "</td></tr>";
    });
    if (rows.length) document.getElementById("variants").innerHTML = rows.join("");
  });
  getJSON("/alerts").then(function (a) {
    if (!a || !a.length) return;
    var firing = 0;
    var rows = a.map(function (st) {
      var cls = "muted", label = "ok";
      if (st.firing) { firing++; cls = "firing"; label = "■ FIRING"; }
      else if (st.missing) { label = "missing"; }
      else { cls = "state"; label = "● ok"; }
      return '<tr><td class="' + cls + '">' + label + "</td><td>" + esc(st.rule) + "</td><td>" +
        fmt(st.value) + "</td><td class=\"muted\">" + esc(st.expr) + "</td></tr>";
    });
    document.getElementById("t-alerts").textContent = String(firing);
    document.getElementById("alerts").innerHTML = rows.join("");
  });
  getText("/healthz").then(function (h) {
    var el = document.getElementById("health");
    if (!h) { el.innerHTML = '<span class="dot" style="color:var(--ink-muted)">○</span>unreachable'; return; }
    if (h.status === 200) {
      el.innerHTML = '<span class="dot" style="color:var(--status-good)">●</span>healthy';
    } else {
      el.innerHTML = '<span class="dot" style="color:var(--status-warn)">▲</span>' + esc(h.body.trim());
    }
  });
}
refresh();
setInterval(refresh, 2000);
</script>
</body>
</html>
`
