package telemetry

import (
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestFormatETA(t *testing.T) {
	for _, tc := range []struct {
		ms   float64
		want string
	}{
		{math.NaN(), "n/a"},
		{math.Inf(1), "n/a"},
		{math.Inf(-1), "n/a"},
		{-1, "n/a"},
		{0, "0s"},
		{250, "250ms"},
		{1500, "2s"},
		{90_000, "1m30s"},
	} {
		if got := FormatETA(tc.ms); got != tc.want {
			t.Errorf("FormatETA(%v) = %q, want %q", tc.ms, got, tc.want)
		}
	}
}

// A progress source that leaks a NaN into the payload must yield a JSON
// error response, not a broken half-written body.
func TestProgressUnmarshalableSource(t *testing.T) {
	s, err := ServeOps("127.0.0.1:0", NewRegistry(), func() any {
		return map[string]float64{"eta_ms": math.NaN()}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(s.URL() + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("/progress with NaN source = %d, want 500", resp.StatusCode)
	}
	var body strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		body.Write(buf[:n])
		if err != nil {
			break
		}
	}
	var payload struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal([]byte(body.String()), &payload); err != nil {
		t.Fatalf("error response is not JSON: %v\n%s", err, body.String())
	}
	if payload.Error == "" {
		t.Error("error response carries no message")
	}
}
