package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// ChromeTracer renders spans and events in the Chrome trace_event JSON
// format (the "JSON Array Format" of the trace-event spec), so a -trace file
// opens directly in chrome://tracing or https://ui.perfetto.dev. Spans
// become complete ("X") events on a per-worker thread axis; structured
// events (traps, faults, probes) become instant ("i") events.
//
// Everything is buffered and written on Close: trace_event is a single JSON
// document, and buffering also lets the exporter order spans by their
// deterministic IDs, so two runs of the same pipeline produce the same span
// sequence regardless of worker interleaving (instant events keep arrival
// order; their interleaving is inherently scheduling-dependent).
type ChromeTracer struct {
	mu     sync.Mutex
	w      io.Writer
	spans  []SpanData
	events []chromeInstant
	seq    uint64
	closed bool
}

type chromeInstant struct {
	seq   uint64
	kind  string
	attrs map[string]any
}

// chromeEvent is one trace_event record. Perfetto wants ts/dur in
// microseconds; fractional microseconds keep the nanosecond resolution.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	ID    string         `json:"id,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// NewChromeTracer wraps w. The caller must Close to flush the document.
func NewChromeTracer(w io.Writer) *ChromeTracer { return &ChromeTracer{w: w} }

// RecordSpan buffers one finished span.
func (t *ChromeTracer) RecordSpan(d SpanData) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	t.spans = append(t.spans, d)
}

// Emit buffers one structured event as an instant marker.
func (t *ChromeTracer) Emit(kind string, attrs map[string]any) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	t.seq++
	t.events = append(t.events, chromeInstant{seq: t.seq, kind: kind, attrs: attrs})
}

// Close writes the buffered trace as one {"traceEvents":[...]} document and
// marks the tracer closed (later records are dropped). It never writes
// twice. The timebase is the earliest buffered timestamp, so ts values stay
// small and the trace opens centered.
func (t *ChromeTracer) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	return writeChromeTrace(t.w, t.spans, t.events)
}

func writeChromeTrace(w io.Writer, spans []SpanData, events []chromeInstant) error {
	// Deterministic span order: sort by content-derived ID, then start (two
	// spans share an ID only if a caller reused a (parent, name, key)
	// triple, e.g. retries of the same phase).
	spans = append([]SpanData(nil), spans...)
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].ID != spans[j].ID {
			return spans[i].ID < spans[j].ID
		}
		return spans[i].StartNs < spans[j].StartNs
	})

	var base int64
	for i, d := range spans {
		if i == 0 || d.StartNs < base {
			base = d.StartNs
		}
	}

	out := make([]chromeEvent, 0, len(spans)+len(events))
	for _, d := range spans {
		dur := float64(d.DurNs) / 1e3
		args := make(map[string]any, len(d.Attrs)+2)
		for k, v := range d.Attrs {
			args[k] = v
		}
		args["span_id"] = formatSpanID(d.ID)
		if d.Parent != 0 {
			args["parent"] = formatSpanID(d.Parent)
		}
		out = append(out, chromeEvent{
			Name:  d.Name,
			Phase: "X",
			TS:    float64(d.StartNs-base) / 1e3,
			Dur:   &dur,
			PID:   1,
			TID:   d.TID,
			ID:    formatSpanID(d.ID),
			Args:  args,
		})
	}
	// Instant events have no timestamps of their own (the event stream is
	// ordered by sequence number, not wall clock); place them on a sequence
	// axis at the timebase so they are visible without implying timing.
	for _, e := range events {
		out = append(out, chromeEvent{
			Name:  e.kind,
			Phase: "i",
			TS:    float64(e.seq),
			PID:   1,
			TID:   0,
			Scope: "p",
			Args:  e.attrs,
		})
	}

	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: out, DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// formatSpanID renders a span ID as fixed-width hex, the stable string form
// used in args (JSON numbers lose precision above 2^53).
func formatSpanID(id uint64) string {
	const hexdigits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexdigits[id&0xf]
		id >>= 4
	}
	return string(b[:])
}
